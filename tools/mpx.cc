// mpx — command-line front end for the metricprox library.
//
// Run any built-in proximity workload over any built-in dataset, under any
// bound scheme, with full oracle-call accounting:
//
//   mpx mst     --dataset=sf --n=256 --scheme=tri --bootstrap
//   mpx knn     --dataset=dna --n=200 --k=5 --scheme=laesa
//   mpx cluster --method=pam --l=10 --dataset=urbangb --scheme=tri
//   mpx join    --radius=8 --dataset=flickr --scheme=tri --bootstrap
//   mpx diameter --dataset=random --n=64 --scheme=splub
//
// Common flags:
//   --dataset=sf|urbangb|flickr|dna|clustered|random   (default sf)
//   --n=<objects>            --seed=<seed>
//   --scheme=none|tri|splub|adm|adm-classic|laesa|tlaesa|dft|tri+laesa
//   --bootstrap              resolve a landmark star first (tri/splub/adm)
//   --landmarks=<k>          0 = ceil(log2 n)
//   --oracle-cost=<seconds>  simulated per-call latency
//   --verify                 wrap the oracle in metric-axiom spot checks
//   --audit                  run twice — bare, then with decision
//                            certification on — and assert byte-identical
//                            outputs, identical oracle calls and zero failed
//                            certificates (docs/ARCHITECTURE.md,
//                            "Verification & audit mode")
//   --eps=<slack>            approximate mode: a comparison whose bound
//                            interval has relative gap <= eps resolves
//                            without the oracle (0 <= eps < 1; 0 = exact;
//                            counted as decided_by_slack). Only workloads
//                            with an approximate contract accept it:
//                            mst (prim|boruvka), knn, cluster (pam|dbscan).
//                            NOTE: DBSCAN's neighborhood radius, formerly
//                            --eps, is now --radius.
//   --oracle-budget=<k>      hard cap on workload-phase oracle calls
//                            (bootstrap/scheme construction are not
//                            charged). Once spent, remaining comparisons
//                            resolve by slack where the bounds allow;
//                            otherwise the run exits with a
//                            ResourceExhausted error.
//   --weak-alpha=<a>         dual-oracle mode: derive a deterministic weak
//                            (cheap, noisy) oracle from the dataset oracle,
//                            advertising multiplicative error a (>= 1). Its
//                            certified interval [w/a, w*a] joins the bound
//                            intersection as a third source and decides
//                            comparisons without a strong-oracle call
//                            (counted as decided_by_weak) — outputs stay
//                            byte-identical to the weak-free exact run as
//                            long as the model holds, and detected
//                            violations fail the run instead of corrupting
//                            an answer. Same workload gate as --eps:
//                            mst (prim|boruvka), knn, cluster (pam|dbscan).
//   --weak-floor=<f>         additive error floor of the weak model (>= 0)
//   --weak-seed=<seed>       seed of the per-pair error draw (default: --seed)
//   --weak-cost=<seconds>    simulated per-call weak-oracle latency; lands
//                            in weak_simulated_seconds / completion time
//   --save-graph=<path>      checkpoint resolved distances afterwards
//   --load-graph=<path>      start from a checkpoint (same dataset/seed!)
//   --threads=<k>            cap parallel batch workers (0 = env/hardware)
//   --simd=scalar|sse2|avx2|auto  pin the bound-kernel tier (default: the
//                            METRICPROX_SIMD env var, else the CPU probe;
//                            a tier above the hardware's degrades with a
//                            warning). The executed tier lands in the run
//                            report as kernel_dispatch.
//
// Fault tolerance (stacked as oracle -> faults -> retry -> resolver):
//   --retry-attempts=<k>     enable retries: attempts per pair (1 = no retry)
//   --retry-backoff=<s>      initial backoff        (default 1e-4)
//   --retry-max-backoff=<s>  backoff cap            (default 1e-2)
//   --retry-deadline=<s>     overall deadline per verb (0 = none)
//   --fault-rate=<p>         inject transient failures with probability p
//   --fault-spike-rate=<p>   inject virtual latency spikes
//   --fault-spike-seconds=<s> spike duration
//   --fault-timeout=<s>      per-call timeout (spike >= timeout fails)
//   --fault-consecutive=<k>  force success after k consecutive failures of
//                            one pair (0 = never: a permanent outage)
//   --fault-seed=<seed>      seed of the deterministic fault pattern
//
// Persistence (durable cross-run distance store; docs/ARCHITECTURE.md):
//   --store=<path>           record every resolved edge to <path>.wal and
//                            warm-start from <path>.snap + <path>.wal; the
//                            store is fingerprinted by dataset/n/seed/oracle
//   --store-readonly         answer from the store, never write to it
//   --store-no-warm-start    skip the bulk graph load (store stays purely
//                            an oracle-layer cache)
//
// Store maintenance (no dataset needed):
//   mpx store info    --store=<path>    shape, fingerprint, torn-tail bytes
//   mpx store verify  --store=<path>    validate headers and CRCs end to end
//   mpx store compact --store=<path>    fold the WAL into the snapshot
//
// Telemetry (docs/ARCHITECTURE.md, "Telemetry & tracing"; off by default,
// and when off the run is byte-identical to a build without it):
//   --stats-json=<path>      write the run report as versioned JSON
//                            (tools/schema/run_report_schema.json)
//   --trace=<path>           stream decision/bound/oracle/store events as
//                            JSONL (tools/schema/trace_schema.json)
//   --trace-limit=<k>        keep at most k events (0 = unlimited); the
//                            footer reports how many were dropped
//
// Live observability (docs/ARCHITECTURE.md, "Live observability"):
//   --obs-dir=<dir>          attach an ObservabilityHub: causal spans
//                            (resolve/bound/oracle_rtt, plus the coalescer
//                            span vocabulary under session pools) flow into
//                            a flight-recorder ring teed in front of the
//                            --trace sink, gauges and counters land in
//                            <dir>/metrics.jsonl + <dir>/metrics.prom, and
//                            flight-*.jsonl dumps freeze the last events on
//                            resource exhaustion, deadline blowups, CHECK
//                            failures, stalls, or request
//   --metrics-interval=<s>   metrics sampler period (requires --obs-dir;
//                            0 = only the final on-exit sample)
//   --obs-dump-on-exit       always write a flight-exit-*.jsonl dump at
//                            shutdown (the deterministic CI artifact)
//
// Live-run inspection (no dataset needed):
//   mpx obs export --obs-dir=<dir>   print the current Prometheus-style
//                                    exposition (<dir>/metrics.prom)
//   mpx obs dump   --obs-dir=<dir>   ask the live run to snapshot its
//                                    flight ring (touches DUMP_REQUEST;
//                                    the hub polls and writes
//                                    flight-request-*.jsonl)

#include <bit>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "algo/boruvka.h"
#include "algo/clarans.h"
#include "algo/dbscan.h"
#include "algo/join.h"
#include "algo/kcenter.h"
#include "algo/knn_graph.h"
#include "algo/kruskal.h"
#include "algo/linkage.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "algo/search.h"
#include "bounds/pivots.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "bounds/weak.h"
#include "check/certify.h"
#include "core/simd.h"
#include "core/stats.h"
#include "data/datasets.h"
#include "graph/graph_io.h"
#include "harness/flags.h"
#include "harness/table.h"
#include "obs/hub.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "oracle/fault_injection.h"
#include "oracle/retry.h"
#include "oracle/wrappers.h"
#include "store/distance_store.h"
#include "store/persistent_oracle.h"

namespace metricprox {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "mpx: %s\n", message.c_str());
  return 1;
}

/// Flag sanity checks, applied before any value is cast to an unsigned or
/// handed to the middleware: a negative or NaN rate used to wrap silently
/// or poison every probability comparison downstream.
Status RequireFinite(const char* flag, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    return Status::InvalidArgument(std::string(flag) +
                                   " must be a finite number");
  }
  return Status::OK();
}

Status RequireNonNegative(const char* flag, double v) {
  MP_RETURN_IF_ERROR(RequireFinite(flag, v));
  if (v < 0.0) {
    return Status::InvalidArgument(std::string(flag) +
                                   " must be non-negative");
  }
  return Status::OK();
}

Status RequireProbability(const char* flag, double v) {
  MP_RETURN_IF_ERROR(RequireNonNegative(flag, v));
  if (v > 1.0) {
    return Status::InvalidArgument(std::string(flag) +
                                   " is a probability and must be <= 1");
  }
  return Status::OK();
}

Status RequireNonNegativeInt(const char* flag, int64_t v) {
  if (v < 0) {
    return Status::InvalidArgument(std::string(flag) +
                                   " must be non-negative");
  }
  return Status::OK();
}

StatusOr<Dataset> MakeDataset(const std::string& name, ObjectId n,
                              uint64_t seed) {
  if (name == "sf") return MakeSfPoiLike(n, seed);
  if (name == "urbangb") return MakeUrbanGbLike(n, seed);
  if (name == "flickr") return MakeFlickrLike(n, 256, seed);
  if (name == "dna") return MakeDnaLike(n, 80, seed);
  if (name == "clustered") {
    return MakeClusteredEuclidean(n, 3, 6, 0.05, seed);
  }
  if (name == "random") return MakeRandomMetric(n, seed);
  return Status::InvalidArgument("unknown dataset: " + name);
}

/// Writes `contents` to `path` (overwriting), surfacing the first error.
Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  Status status;
  if (std::fwrite(contents.data(), 1, contents.size(), file) !=
      contents.size()) {
    status = Status::IoError("short write to " + path);
  }
  if (std::fclose(file) != 0 && status.ok()) {
    status = Status::IoError("close failed for " + path);
  }
  return status;
}

int RunCommand(const std::string& command, const Flags& flags, ObjectId n,
               uint64_t seed, BoundedResolver* resolver_ptr, bool quiet,
               double* checksum);

int Run(const std::string& command, const Flags& flags) {
  const int64_t n_raw = flags.GetInt("n", 256);
  if (n_raw < 2) return Fail("--n must be at least 2");
  const ObjectId n = static_cast<ObjectId>(n_raw);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string dataset_name = flags.GetString("dataset", "sf");
  const std::string scheme_name = flags.GetString("scheme", "tri");
  const bool bootstrap = flags.GetBool("bootstrap", false);
  const int64_t landmarks_raw = flags.GetInt("landmarks", 0);
  const double oracle_cost = flags.GetDouble("oracle-cost", 0.0);
  const bool verify = flags.GetBool("verify", false);
  const bool audit = flags.GetBool("audit", false);
  const std::string save_graph = flags.GetString("save-graph", "");
  const std::string load_graph = flags.GetString("load-graph", "");
  const int64_t threads_raw = flags.GetInt("threads", 0);

  RetryOptions retry;
  const int64_t retry_attempts = flags.GetInt("retry-attempts", 0);
  retry.max_attempts = retry_attempts > 0
                           ? static_cast<uint32_t>(retry_attempts)
                           : retry.max_attempts;
  retry.initial_backoff_seconds =
      flags.GetDouble("retry-backoff", retry.initial_backoff_seconds);
  retry.max_backoff_seconds =
      flags.GetDouble("retry-max-backoff", retry.max_backoff_seconds);
  retry.deadline_seconds = flags.GetDouble("retry-deadline", 0.0);
  retry.seed = seed;

  FaultInjectionOptions fault;
  fault.failure_rate = flags.GetDouble("fault-rate", 0.0);
  fault.spike_rate = flags.GetDouble("fault-spike-rate", 0.0);
  fault.spike_seconds = flags.GetDouble("fault-spike-seconds", 0.0);
  fault.per_call_timeout_seconds = flags.GetDouble("fault-timeout", 0.0);
  const int64_t fault_consecutive = flags.GetInt(
      "fault-consecutive", fault.max_consecutive_failures);
  fault.seed = static_cast<uint64_t>(
      flags.GetInt("fault-seed", static_cast<int>(seed % 1000000)));

  const std::string store_path = flags.GetString("store", "");
  const bool store_readonly = flags.GetBool("store-readonly", false);
  const bool store_no_warm_start = flags.GetBool("store-no-warm-start", false);

  const std::string stats_json = flags.GetString("stats-json", "");
  const std::string trace_path = flags.GetString("trace", "");
  const int64_t trace_limit = flags.GetInt("trace-limit", 0);
  const std::string simd_flag = flags.GetString("simd", "");

  const std::string obs_dir = flags.GetString("obs-dir", "");
  const double metrics_interval = flags.GetDouble("metrics-interval", 0.0);
  const bool obs_dump_on_exit = flags.GetBool("obs-dump-on-exit", false);

  const double approx_eps = flags.GetDouble("eps", 0.0);
  const bool has_budget_flag = flags.Has("oracle-budget");
  const int64_t oracle_budget_raw = flags.GetInt("oracle-budget", 0);

  const bool has_weak_alpha = flags.Has("weak-alpha");
  const double weak_alpha = flags.GetDouble("weak-alpha", 0.0);
  const bool has_weak_floor = flags.Has("weak-floor");
  const double weak_floor = flags.GetDouble("weak-floor", 0.0);
  const bool has_weak_seed = flags.Has("weak-seed");
  const uint64_t weak_seed = static_cast<uint64_t>(
      flags.GetInt("weak-seed", static_cast<int64_t>(seed)));
  const bool has_weak_cost = flags.Has("weak-cost");
  const double weak_cost = flags.GetDouble("weak-cost", 0.0);

  // Reject malformed numerics and inconsistent combos before anything is
  // cast, stacked or opened — a bad flag must never silently misbehave.
  for (const Status& s : {
           RequireNonNegativeInt("--landmarks", landmarks_raw),
           RequireNonNegativeInt("--threads", threads_raw),
           RequireNonNegativeInt("--retry-attempts", retry_attempts),
           RequireNonNegativeInt("--fault-consecutive", fault_consecutive),
           RequireNonNegativeInt("--trace-limit", trace_limit),
           RequireNonNegative("--oracle-cost", oracle_cost),
           RequireNonNegative("--retry-backoff",
                              retry.initial_backoff_seconds),
           RequireNonNegative("--retry-max-backoff",
                              retry.max_backoff_seconds),
           RequireNonNegative("--retry-deadline", retry.deadline_seconds),
           RequireProbability("--fault-rate", fault.failure_rate),
           RequireProbability("--fault-spike-rate", fault.spike_rate),
           RequireNonNegative("--fault-spike-seconds", fault.spike_seconds),
           RequireNonNegative("--fault-timeout",
                              fault.per_call_timeout_seconds),
           RequireNonNegative("--eps", approx_eps),
           RequireNonNegative("--weak-floor", weak_floor),
           RequireNonNegative("--weak-cost", weak_cost),
           RequireNonNegative("--metrics-interval", metrics_interval),
       }) {
    if (!s.ok()) return Fail(s.ToString());
  }
  if (has_weak_alpha && !(std::isfinite(weak_alpha) && weak_alpha >= 1.0)) {
    return Fail(
        "--weak-alpha must be a finite factor >= 1: it is the weak oracle's "
        "advertised multiplicative error bound, and a factor below 1 would "
        "claim the estimate is better than exact");
  }
  if (!has_weak_alpha &&
      (has_weak_floor || has_weak_seed || has_weak_cost)) {
    return Fail(
        "--weak-floor/--weak-seed/--weak-cost configure the weak oracle and "
        "require --weak-alpha=<a> to enable it");
  }
  if (!std::isfinite(weak_floor)) {
    return Fail("--weak-floor must be finite");
  }
  if (!std::isfinite(weak_cost)) {
    return Fail("--weak-cost must be finite");
  }
  if (approx_eps >= 1.0) {
    return Fail(
        "--eps must be below 1: it is a relative bound-interval gap, and a "
        "gap of 1 would accept comparisons the bounds say nothing about");
  }
  if (has_budget_flag && oracle_budget_raw <= 0) {
    return Fail(
        "--oracle-budget must be a positive call count (omit the flag for "
        "an unlimited budget)");
  }
  const bool approx_active = approx_eps > 0.0 || oracle_budget_raw > 0;
  if (oracle_budget_raw > 0 && store_no_warm_start) {
    return Fail(
        "--oracle-budget cannot be combined with --store-no-warm-start: "
        "distances already durable in the store would be re-charged against "
        "the budget instead of entering the graph as warm cache hits");
  }
  if (approx_active) {
    // The (1+eps) contract is only proved for threshold/winner-selection
    // workloads whose proof verbs stay exact; everything else must not
    // silently accept a slack policy it would ignore or miscount.
    bool contract = false;
    if (command == "mst") {
      const std::string algorithm = flags.GetString("algorithm", "prim");
      contract = algorithm == "prim" || algorithm == "boruvka";
    } else if (command == "knn") {
      contract = true;
    } else if (command == "cluster") {
      const std::string method = flags.GetString("method", "pam");
      contract = method == "pam" || method == "dbscan";
    }
    if (!contract) {
      return Fail(
          "--eps/--oracle-budget require a workload with an approximate "
          "contract: mst (--algorithm=prim|boruvka), knn, or cluster "
          "(--method=pam|dbscan)");
    }
  }
  const bool weak_active = has_weak_alpha;
  if (weak_active) {
    // Same workload gate as the approximate contract: the dual-oracle bound
    // source is only plumbed through the threshold/winner-selection
    // workloads, and a workload that would silently ignore the weak oracle
    // must not accept its flags.
    bool weak_supported = false;
    if (command == "mst") {
      const std::string algorithm = flags.GetString("algorithm", "prim");
      weak_supported = algorithm == "prim" || algorithm == "boruvka";
    } else if (command == "knn") {
      weak_supported = true;
    } else if (command == "cluster") {
      const std::string method = flags.GetString("method", "pam");
      weak_supported = method == "pam" || method == "dbscan";
    }
    if (!weak_supported) {
      return Fail(
          "--weak-alpha requires a workload wired for dual-oracle "
          "resolution: mst (--algorithm=prim|boruvka), knn, or cluster "
          "(--method=pam|dbscan)");
    }
  }
  if (command == "cluster" && flags.GetString("method", "pam") == "dbscan" &&
      flags.Has("eps") && !flags.Has("radius")) {
    // Legacy DBSCAN spelling trap: in this CLI --eps is the
    // approximate-resolution slack, never the neighborhood radius. Without
    // --radius the flag would silently run an approximate DBSCAN at the
    // default radius instead of the query the user meant.
    return Fail(
        "DBSCAN's neighborhood radius is spelled --radius, not --eps "
        "(--eps is the approximate-resolution slack). Pass --radius=<r>, "
        "optionally alongside --eps=<slack> for approximate resolution");
  }
  if (store_readonly && store_path.empty()) {
    return Fail("--store-readonly requires --store=<path>");
  }
  if (trace_limit > 0 && trace_path.empty()) {
    return Fail("--trace-limit requires --trace=<path>");
  }
  if ((metrics_interval > 0.0 || obs_dump_on_exit) && obs_dir.empty()) {
    return Fail(
        "--metrics-interval/--obs-dump-on-exit require --obs-dir=<dir>");
  }
  if (store_no_warm_start && store_path.empty()) {
    return Fail("--store-no-warm-start requires --store=<path>");
  }
  if (audit && !store_path.empty()) {
    return Fail(
        "--audit cannot be combined with --store: the unaudited pass would "
        "warm the store and the audited pass would replay it with zero "
        "oracle calls, voiding the A-B comparison");
  }
  // Pin the kernel tier before any resolver exists so the stamped
  // kernel_dispatch matches what actually executes.
  if (!simd_flag.empty()) {
    if (simd_flag == "auto") {
      simd::SetTier(simd::DetectedTier());
    } else {
      const StatusOr<simd::Tier> tier = simd::ParseTier(simd_flag);
      if (!tier.ok()) return Fail("--simd: " + tier.status().ToString());
      const simd::Tier applied = simd::SetTier(*tier);
      if (applied != *tier) {
        std::fprintf(stderr,
                     "mpx: --simd=%s not supported by this CPU; using %s\n",
                     simd_flag.c_str(),
                     std::string(simd::TierName(applied)).c_str());
      }
    }
  }

  const uint32_t landmarks = static_cast<uint32_t>(landmarks_raw);
  const unsigned threads = static_cast<unsigned>(threads_raw);
  fault.max_consecutive_failures = static_cast<uint32_t>(fault_consecutive);
  const bool inject_faults =
      fault.failure_rate > 0.0 || fault.spike_rate > 0.0;

  StatusOr<Dataset> dataset = MakeDataset(dataset_name, n, seed);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  StatusOr<SchemeKind> scheme = ParseSchemeKind(scheme_name);
  if (!scheme.ok()) return Fail(scheme.status().ToString());

  // Oracle stack: base -> (verify) -> simulated cost -> (faults) -> (retry).
  DistanceOracle* oracle = dataset->oracle.get();
  std::unique_ptr<VerifyingOracle> verifier;
  if (verify) {
    verifier = std::make_unique<VerifyingOracle>(oracle, 32);
    oracle = verifier.get();
  }
  SimulatedCostOracle costed(oracle, oracle_cost);
  DistanceOracle* top = &costed;
  std::unique_ptr<FaultInjectingOracle> faulty;
  if (inject_faults) {
    faulty = std::make_unique<FaultInjectingOracle>(top, fault);
    top = faulty.get();
  }
  std::unique_ptr<RetryingOracle> retrying;
  if (retry_attempts > 0) {
    retrying = std::make_unique<RetryingOracle>(top, retry);
    top = retrying.get();
  }
  // The persistence layer tops the stack: a store hit skips simulated cost,
  // injected faults and retries alike.
  std::unique_ptr<DistanceStore> store;
  std::unique_ptr<PersistentOracle> persistent;
  if (!store_path.empty()) {
    std::ostringstream identity;
    identity << "dataset=" << dataset->name << ";n=" << n << ";seed=" << seed
             << ";oracle=" << dataset->oracle->name();
    const StoreFingerprint fp = MakeStoreFingerprint(identity.str(), n);
    StoreOptions store_options;
    store_options.read_only = store_readonly;
    StatusOr<std::unique_ptr<DistanceStore>> opened =
        DistanceStore::Open(store_path, fp, store_options);
    if (!opened.ok()) return Fail(opened.status().ToString());
    store = std::move(*opened);
    persistent = std::make_unique<PersistentOracle>(top, store.get());
    top = persistent.get();
  }
  if (threads > 0) top->set_batch_workers(threads);

  // Telemetry bundle: histograms fill whenever the bundle is attached (so
  // --stats-json alone gets quantiles); events flow only when --trace adds
  // a sink. Attachment happens via attach_telemetry below — under --audit,
  // only before the final (reported) pass, so the A-B baseline stays bare.
  std::ostringstream trace_id_stream;
  trace_id_stream << "mpx-" << command << "-" << dataset_name << "-n" << n
                  << "-seed" << seed;
  const std::string trace_id = trace_id_stream.str();
  std::optional<Telemetry> telemetry;
  std::unique_ptr<JsonlTraceSink> trace_sink;
  // Declared after trace_sink so the hub (and its final flight dump /
  // metrics sample) shuts down while the trace sink still exists.
  std::unique_ptr<ObservabilityHub> hub;
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<JsonlTraceSink>(
        trace_path, trace_id, static_cast<uint64_t>(trace_limit));
    if (!trace_sink->status().ok()) {
      return Fail("cannot open --trace file: " +
                  trace_sink->status().ToString());
    }
  }
  if (!obs_dir.empty()) {
    // Live observability: the hub's pool-level bundle replaces the local
    // one. Its flight recorder tees every event into the ring (and onward
    // to the --trace sink when present), its sampler writes metrics.jsonl/
    // metrics.prom under --obs-dir, and CHECK failures dump the ring.
    ObservabilityHubOptions hub_options;
    hub_options.dir = obs_dir;
    hub_options.metrics_interval_seconds = metrics_interval;
    hub_options.dump_on_exit = obs_dump_on_exit;
    hub_options.trace_id = trace_id;
    hub_options.sink = trace_sink.get();
    hub = std::make_unique<ObservabilityHub>(std::move(hub_options));
    hub->InstallFatalHook();
  } else if (!stats_json.empty() || !trace_path.empty() ||
             (audit && (approx_active || weak_active))) {
    // An approximate audit needs the slack_realized_error histogram to
    // check realized error against --eps, so the bundle is forced on even
    // without --stats-json/--trace (attachment is proven side-effect-free).
    telemetry.emplace();
    telemetry->trace_id = trace_id;
    if (trace_sink != nullptr) telemetry->sink = trace_sink.get();
  }
  Telemetry* const telemetry_ptr =
      hub != nullptr ? hub->pool_telemetry()
                     : (telemetry.has_value() ? &*telemetry : nullptr);
  const auto attach_telemetry = [&] {
    costed.SetTelemetry(telemetry_ptr);
    if (retrying != nullptr) retrying->SetTelemetry(telemetry_ptr);
    if (persistent != nullptr) persistent->SetTelemetry(telemetry_ptr);
    if (store != nullptr) store->SetTelemetry(telemetry_ptr);
  };

  std::string approx_desc;
  if (approx_active) {
    std::ostringstream os;
    if (approx_eps > 0.0) os << " eps=" << approx_eps;
    if (oracle_budget_raw > 0) os << " oracle-budget=" << oracle_budget_raw;
    approx_desc = os.str();
  }
  std::string weak_desc;
  if (weak_active) {
    std::ostringstream os;
    os << " weak-alpha=" << weak_alpha;
    if (weak_floor > 0.0) os << " weak-floor=" << weak_floor;
    if (has_weak_seed) os << " weak-seed=" << weak_seed;
    weak_desc = os.str();
  }
  std::printf("mpx %s: dataset=%s n=%u scheme=%s%s seed=%llu%s%s%s\n",
              command.c_str(), dataset->name.c_str(), n,
              SchemeKindName(*scheme).data(), bootstrap ? "+bootstrap" : "",
              static_cast<unsigned long long>(seed),
              audit ? " audit=on" : "", approx_desc.c_str(),
              weak_desc.c_str());

  uint64_t warm_loaded = 0;
  // One full execution of the command from a fresh graph. Everything that
  // can reach the oracle — bootstrap, scheme construction and the command
  // itself — runs inside the fallible scope, so an oracle whose retries or
  // deadline are exhausted produces an error exit instead of an abort.
  // With `with_cert`, a CertifyingResolver wraps the scheme for the
  // duration of the command.
  const auto execute_pass =
      [&](Telemetry* pass_telemetry, bool with_cert, bool quiet,
          PartialDistanceGraph* graph_out, ResolverStats* stats_out,
          CertificationStats* cert_out, double* checksum_out,
          double* wall_out) -> int {
    PartialDistanceGraph graph(n);
    if (!load_graph.empty()) {
      StatusOr<PartialDistanceGraph> loaded = LoadGraph(load_graph);
      if (!loaded.ok()) return Fail(loaded.status().ToString());
      if (loaded->num_objects() != n) {
        return Fail("checkpoint has a different object count");
      }
      graph = std::move(*loaded);
      if (!quiet) {
        std::printf("resumed %zu resolved distances from %s\n",
                    graph.num_edges(), load_graph.c_str());
      }
    }
    if (store != nullptr && !store_no_warm_start) {
      const std::vector<WeightedEdge> warm = store->Edges();
      graph.InsertEdges(warm);
      warm_loaded = warm.size();
      if (warm_loaded > 0 && !quiet) {
        std::printf("warm start: %llu stored distances from %s\n",
                    static_cast<unsigned long long>(warm_loaded),
                    store_path.c_str());
      }
    }
    BoundedResolver resolver(top, &graph);
    resolver.SetTelemetry(pass_telemetry);

    // Dual-oracle mode: the weak oracle is derived from the *base* dataset
    // oracle — below the verify / cost / fault / retry middleware — because
    // a weak estimate is cheap by definition and is never a strong-oracle
    // call (it does not hit the store, cannot fault, and is not billed
    // --oracle-cost). Both audit passes get identical settings, so the A-B
    // comparison is weak-vs-weak.
    std::optional<WeakOracle> weak_oracle;
    std::optional<WeakBounder> weak_bounder;
    if (weak_active) {
      WeakOracle::Options weak_options;
      weak_options.alpha = weak_alpha;
      weak_options.floor = weak_floor;
      weak_options.seed = weak_seed;
      weak_options.cost_seconds = weak_cost;
      weak_oracle.emplace(dataset->oracle.get(), weak_options);
      weak_bounder.emplace(&*weak_oracle);
      resolver.SetWeakBounder(&*weak_bounder);
    }

    Stopwatch watch;
    int exit_code = 0;
    std::unique_ptr<Bounder> bounder_keepalive;
    std::optional<CertifyingResolver> certifying;
    const StatusOr<double> outcome = resolver.RunFallible([&](
        BoundedResolver*) -> double {
      if (bootstrap) {
        BootstrapWithLandmarks(
            &resolver, landmarks > 0 ? landmarks : DefaultNumLandmarks(n),
            seed);
      }
      SchemeOptions options;
      options.num_landmarks = landmarks;
      options.max_distance = dataset->max_distance;
      options.seed = seed;
      auto bounder = MakeAndAttachScheme(*scheme, &resolver, options);
      if (!bounder.ok()) {
        exit_code = Fail(bounder.status().ToString());
        return 0.0;
      }
      bounder_keepalive = std::move(bounder).value();
      if (with_cert) certifying.emplace(&resolver, dataset->max_distance);

      // The approximate policy goes live only now: bootstrap and scheme
      // construction stay exact and are not charged against the budget.
      if (approx_active) {
        resolver.SetPolicy(ResolutionPolicy{
            approx_eps, static_cast<uint64_t>(oracle_budget_raw)});
      }

      watch.Restart();
      exit_code = RunCommand(command, flags, n, seed, &resolver, quiet,
                             checksum_out);
      return 0.0;
    });
    if (!outcome.ok()) {
      if (outcome.status().code() == StatusCode::kResourceExhausted) {
        return Fail("oracle budget exceeded: " +
                    std::string(outcome.status().message()) +
                    " (raise --oracle-budget, or loosen --eps so more "
                    "comparisons can resolve by slack)");
      }
      if (outcome.status().code() == StatusCode::kFailedPrecondition) {
        // The weak-model violation path: never a wrong answer, always a
        // loud failure naming the pair and the advertised interval.
        return Fail(std::string(outcome.status().message()));
      }
      return Fail("oracle transport failed: " + outcome.status().ToString());
    }
    if (exit_code != 0) return exit_code;
    *wall_out = watch.ElapsedSeconds();
    *stats_out = resolver.stats();
    if (weak_oracle.has_value()) {
      stats_out->weak_simulated_seconds = weak_oracle->simulated_seconds();
    }
    if (certifying.has_value()) *cert_out = certifying->stats();
    *graph_out = std::move(graph);
    return 0;
  };

  PartialDistanceGraph graph(n);  // the (final) pass's graph, for --save-graph
  ResolverStats stats;
  CertificationStats certification;
  double checksum = 0.0;
  double wall = 0.0;
  if (audit) {
    ResolverStats bare_stats;
    CertificationStats bare_certs;
    double bare_checksum = 0.0;
    double bare_wall = 0.0;
    PartialDistanceGraph bare_graph(n);
    int rc = execute_pass(/*pass_telemetry=*/nullptr, /*with_cert=*/false,
                          /*quiet=*/true, &bare_graph, &bare_stats,
                          &bare_certs, &bare_checksum, &bare_wall);
    if (rc != 0) return rc;
    attach_telemetry();
    rc = execute_pass(telemetry_ptr, /*with_cert=*/true, /*quiet=*/false,
                      &graph, &stats, &certification, &checksum, &wall);
    if (rc != 0) return rc;

    // Byte-level comparison: the audit asserts bit-identical outputs, not
    // outputs within a tolerance.
    const bool outputs_identical = std::bit_cast<uint64_t>(bare_checksum) ==
                                   std::bit_cast<uint64_t>(checksum);
    const bool calls_identical =
        bare_stats.oracle_calls == stats.oracle_calls;
    TablePrinter audit_table({"metric", "unaudited", "audited"});
    {
      char a[64], b[64];
      std::snprintf(a, sizeof(a), "%.17g", bare_checksum);
      std::snprintf(b, sizeof(b), "%.17g", checksum);
      audit_table.NewRow().AddCell("output checksum").AddCell(a).AddCell(b);
    }
    audit_table.NewRow()
        .AddCell("oracle calls")
        .AddUint(bare_stats.oracle_calls)
        .AddUint(stats.oracle_calls);
    audit_table.Print("\nAudit");
    std::printf(
        "certs_emitted=%llu certs_verified=%llu certs_failed=%llu "
        "certs_uncertified=%llu\n",
        static_cast<unsigned long long>(certification.emitted),
        static_cast<unsigned long long>(certification.verified),
        static_cast<unsigned long long>(certification.failed),
        static_cast<unsigned long long>(certification.uncertified));
    if (!certification.first_failure.empty()) {
      std::printf("first failed certificate: %s\n",
                  certification.first_failure.c_str());
    }
    Histogram::Summary slack_err;
    if (telemetry_ptr != nullptr) {
      slack_err = telemetry_ptr->slack_realized_error.Summarize();
    }
    if (approx_active) {
      std::printf("decided_by_slack=%llu budget_exhausted=%llu\n",
                  static_cast<unsigned long long>(stats.decided_by_slack),
                  static_cast<unsigned long long>(stats.budget_exhausted));
      if (slack_err.count > 0) {
        std::printf(
            "slack realized error: p50=%.4g p99=%.4g max=%.4g over %llu "
            "slack decisions\n",
            slack_err.p50, slack_err.p99, slack_err.max,
            static_cast<unsigned long long>(slack_err.count));
      }
    }
    if (weak_active) {
      std::printf("decided_by_weak=%llu weak_calls=%llu\n",
                  static_cast<unsigned long long>(stats.decided_by_weak),
                  static_cast<unsigned long long>(stats.weak_calls));
      Histogram::Summary weak_width;
      if (telemetry_ptr != nullptr) {
        weak_width = telemetry_ptr->weak_interval_width.Summarize();
      }
      if (weak_width.count > 0) {
        std::printf(
            "weak interval width: p50=%.4g p90=%.4g p99=%.4g over %llu "
            "weak consults\n",
            weak_width.p50, weak_width.p90, weak_width.p99,
            static_cast<unsigned long long>(weak_width.count));
      }
    }
    // The advertised (1+eps) contract: unless the budget forced wider
    // decisions, no slack decision may have realized more relative error
    // than --eps admitted.
    const bool error_within_eps =
        !(approx_eps > 0.0 && stats.budget_exhausted == 0 &&
          slack_err.max > approx_eps);
    if (!outputs_identical || !calls_identical ||
        certification.failed > 0 || !error_within_eps) {
      std::string why;
      if (!outputs_identical) why += " outputs differ;";
      if (!calls_identical) why += " oracle calls differ;";
      if (certification.failed > 0) why += " certificates failed;";
      if (!error_within_eps) why += " realized slack error exceeds --eps;";
      return Fail("audit FAILED:" + why);
    }
    std::printf(
        "audit PASSED: outputs byte-identical, oracle calls identical, "
        "all emitted certificates verified%s\n",
        approx_active ? "; every slack decision certified and realized "
                        "error within eps"
                      : "");
    stats.certs_emitted = certification.emitted;
    stats.certs_verified = certification.verified;
    stats.certs_failed = certification.failed;
    stats.certs_uncertified = certification.uncertified;
  } else {
    attach_telemetry();
    int rc = execute_pass(telemetry_ptr, /*with_cert=*/false,
                          /*quiet=*/false, &graph, &stats, &certification,
                          &checksum, &wall);
    if (rc != 0) return rc;
  }

  if (const Status s = flags.FailOnUnused(); !s.ok()) {
    return Fail(s.ToString());
  }
  if (retrying != nullptr) retrying->AccumulateStats(&stats);
  stats.store_loaded_edges = warm_loaded;
  if (persistent != nullptr) persistent->AccumulateStats(&stats);
  stats.simulated_oracle_seconds = costed.simulated_seconds();
  if (hub != nullptr) {
    // Headline run counters land in the registry under the pool cell
    // (session 0) so `mpx obs export` has them in the exposition.
    MetricsRegistry& metrics = hub->metrics();
    const std::string& tenant = hub->options().tenant;
    metrics.CounterAdd(tenant, 0, "oracle_calls", stats.oracle_calls);
    metrics.CounterAdd(tenant, 0, "decided_by_bounds",
                       stats.decided_by_bounds);
    metrics.CounterAdd(tenant, 0, "decided_by_cache", stats.decided_by_cache);
    metrics.CounterAdd(tenant, 0, "comparisons", stats.comparisons);
    metrics.GaugeSet(tenant, 0, "wall_seconds", wall);
    // One explicit sample so even a shorter-than-interval run reports (and
    // persists) a time-series point before the counters are folded in.
    hub->SampleNow();
    hub->AccumulateStats(&stats);
  }

  RunInfo run_info;
  run_info.command = command;
  run_info.dataset = dataset->name;
  run_info.scheme = std::string(SchemeKindName(*scheme));
  run_info.n = n;
  run_info.seed = seed;
  run_info.trace_id = trace_id;
  run_info.have_store = store != nullptr;
  run_info.audit = audit;
  run_info.oracle_cost_seconds = oracle_cost;
  run_info.wall_seconds = wall;
  const RunReport report(run_info, stats, telemetry_ptr);
  std::fputs(report.ToText().c_str(), stdout);
  if (!stats_json.empty()) {
    if (const Status s = WriteFile(stats_json, report.ToJson() + "\n");
        !s.ok()) {
      return Fail("stats-json write failed: " + s.ToString());
    }
    std::printf("stats: JSON report written to %s\n", stats_json.c_str());
  }
  if (trace_sink != nullptr) {
    const uint64_t trace_written = trace_sink->written();
    const uint64_t trace_dropped = trace_sink->dropped();
    if (const Status s = trace_sink->Close(); !s.ok()) {
      return Fail("trace write failed: " + s.ToString());
    }
    std::printf("trace: %llu events written to %s (%llu dropped)\n",
                static_cast<unsigned long long>(trace_written),
                trace_path.c_str(),
                static_cast<unsigned long long>(trace_dropped));
  }
  if (faulty != nullptr) {
    std::printf(
        "injected faults: %llu failures, %llu spikes, %llu timeouts\n",
        static_cast<unsigned long long>(faulty->injected_failures()),
        static_cast<unsigned long long>(faulty->injected_spikes()),
        static_cast<unsigned long long>(faulty->injected_timeouts()));
  }
  if (verifier != nullptr) {
    std::printf("metric spot checks passed: %llu\n",
                static_cast<unsigned long long>(verifier->checks_performed()));
  }
  if (!save_graph.empty()) {
    const Status s = SaveGraph(graph, save_graph);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("checkpointed %zu resolved distances to %s\n",
                graph.num_edges(), save_graph.c_str());
  }
  if (store != nullptr) {
    if (persistent->store_write_failures() > 0) {
      std::fprintf(stderr,
                   "mpx: warning: %llu store writes failed (%s); the store "
                   "served as a cache only\n",
                   static_cast<unsigned long long>(
                       persistent->store_write_failures()),
                   persistent->store_status().ToString().c_str());
    }
    const size_t durable = store->size();
    const Status s = store->Close();
    if (!s.ok()) return Fail("store close failed: " + s.ToString());
    std::printf("store: %zu distances durable at %s%s\n", durable,
                store_path.c_str(), store_readonly ? " (read-only)" : "");
  }
  return 0;
}

/// The `mpx store <info|verify|compact>` maintenance verbs. They read the
/// fingerprint from the files themselves, so no dataset flags are needed.
int RunStore(const std::string& verb, const Flags& flags) {
  const std::string store_path = flags.GetString("store", "");
  if (store_path.empty()) {
    return Fail("mpx store " + verb + " requires --store=<path>");
  }
  if (const Status s = flags.FailOnUnused(); !s.ok()) {
    return Fail(s.ToString());
  }

  if (verb == "info" || verb == "verify") {
    StatusOr<StoreScanResult> scan = DistanceStore::Scan(store_path);
    if (!scan.ok()) {
      if (verb == "verify") {
        return Fail("store verify FAILED: " + scan.status().ToString());
      }
      return Fail(scan.status().ToString());
    }
    TablePrinter table({"field", "value"});
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(
                      scan->fingerprint.identity_hash));
    table.NewRow().AddCell("identity hash").AddCell(hash);
    table.NewRow().AddCell("objects").AddUint(scan->fingerprint.num_objects);
    table.NewRow()
        .AddCell("snapshot edges")
        .AddUint(scan->has_snapshot ? scan->snapshot_edges : 0);
    table.NewRow()
        .AddCell("wal records")
        .AddUint(scan->has_wal ? scan->wal_records : 0);
    table.NewRow().AddCell("unique edges").AddUint(scan->unique_edges);
    table.NewRow().AddCell("torn tail bytes").AddUint(scan->torn_tail_bytes);
    table.Print("Store " + store_path);
    if (verb == "verify") {
      if (scan->torn_tail_bytes > 0) {
        std::printf("store verify PASSED with a torn WAL tail of %llu bytes "
                    "(recoverable: the next writable open truncates it)\n",
                    static_cast<unsigned long long>(scan->torn_tail_bytes));
      } else {
        std::printf("store verify PASSED\n");
      }
    }
    return 0;
  }

  if (verb == "compact") {
    StatusOr<StoreFingerprint> fp = DistanceStore::ReadFingerprint(store_path);
    if (!fp.ok()) return Fail(fp.status().ToString());
    StatusOr<std::unique_ptr<DistanceStore>> opened =
        DistanceStore::Open(store_path, *fp);
    if (!opened.ok()) return Fail(opened.status().ToString());
    DistanceStore& store = **opened;
    const size_t edges = store.size();
    if (const Status s = store.Compact(); !s.ok()) {
      return Fail("compaction failed: " + s.ToString());
    }
    if (const Status s = store.Close(); !s.ok()) {
      return Fail("store close failed: " + s.ToString());
    }
    std::printf("compacted %zu edges into %s\n", edges,
                DistanceStore::SnapshotPath(store_path).c_str());
    return 0;
  }

  return Fail("unknown store verb: " + verb + " (info|verify|compact)");
}

/// The `mpx obs <export|dump>` live-run verbs. Both operate purely on the
/// --obs-dir artifacts, so they can inspect a run owned by another process.
int RunObs(const std::string& verb, const Flags& flags) {
  const std::string dir = flags.GetString("obs-dir", "");
  if (dir.empty()) {
    return Fail("mpx obs " + verb + " requires --obs-dir=<dir>");
  }
  if (const Status s = flags.FailOnUnused(); !s.ok()) {
    return Fail(s.ToString());
  }

  if (verb == "export") {
    const std::string path = dir + "/metrics.prom";
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return Fail("no exposition at " + path +
                  " (is a run with --obs-dir writing here, and has its "
                  "sampler ticked at least once?)");
    }
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
      std::fwrite(buf, 1, got, stdout);
    }
    std::fclose(file);
    return 0;
  }

  if (verb == "dump") {
    // The hub's background thread polls for this sentinel and answers with
    // a flight-request-*.jsonl snapshot, then removes the file.
    const std::string sentinel = dir + "/DUMP_REQUEST";
    if (const Status s = WriteFile(sentinel, ""); !s.ok()) {
      return Fail(s.ToString());
    }
    std::printf(
        "dump requested: the live run will write flight-request-*.jsonl "
        "under %s within its poll interval\n",
        dir.c_str());
    return 0;
  }

  return Fail("unknown obs verb: " + verb + " (export|dump)");
}

/// The command dispatch, extracted so Run() can execute it inside the
/// resolver's fallible scope (twice under --audit). Returns a process exit
/// code; `*checksum` receives the command's headline value (MST weight,
/// mean k-th distance, ...) for the audit's byte-identity comparison, and
/// `quiet` suppresses the result lines on the audit's baseline pass.
int RunCommand(const std::string& command, const Flags& flags, ObjectId n,
               uint64_t seed, BoundedResolver* resolver_ptr, bool quiet,
               double* checksum) {
  BoundedResolver& resolver = *resolver_ptr;
  if (command == "mst") {
    const std::string algorithm = flags.GetString("algorithm", "prim");
    MstResult mst;
    if (algorithm == "prim") {
      mst = PrimMst(&resolver);
    } else if (algorithm == "kruskal") {
      mst = KruskalMst(&resolver);
    } else if (algorithm == "boruvka") {
      mst = BoruvkaMst(&resolver);
    } else {
      return Fail("unknown --algorithm (prim|kruskal|boruvka)");
    }
    *checksum = mst.total_weight;
    if (!quiet) {
      std::printf("MST: %zu edges, total weight %.6f\n", mst.edges.size(),
                  mst.total_weight);
    }
  } else if (command == "knn") {
    const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 5));
    const KnnGraph knn = BuildKnnGraph(&resolver, KnnGraphOptions{k});
    double mean = 0.0;
    for (const auto& row : knn) mean += row.back().distance;
    *checksum = mean / static_cast<double>(n);
    if (!quiet) {
      std::printf("%u-NN graph built; mean k-th distance %.6f\n", k,
                  mean / static_cast<double>(n));
    }
  } else if (command == "cluster") {
    const std::string method = flags.GetString("method", "pam");
    const uint32_t l = static_cast<uint32_t>(flags.GetInt("l", 10));
    if (method == "pam") {
      PamOptions pam;
      pam.num_medoids = l;
      const ClusteringResult c = PamCluster(&resolver, pam);
      *checksum = c.total_deviation;
      if (!quiet) {
        std::printf("PAM: %u medoids, total deviation %.6f, %u swap "
                    "rounds\n",
                    l, c.total_deviation, c.iterations);
      }
    } else if (method == "clarans") {
      ClaransOptions clarans;
      clarans.num_medoids = l;
      clarans.seed = seed;
      const ClusteringResult c = ClaransCluster(&resolver, clarans);
      *checksum = c.total_deviation;
      if (!quiet) {
        std::printf("CLARANS: %u medoids, total deviation %.6f\n", l,
                    c.total_deviation);
      }
    } else if (method == "kcenter") {
      const KCenterResult c = KCenterCluster(&resolver, l);
      *checksum = c.radius;
      if (!quiet) {
        std::printf("k-center: %u centers, radius %.6f\n", l, c.radius);
      }
    } else if (method == "dbscan") {
      DbscanOptions dbscan;
      // The neighborhood radius is --radius (like join); --eps is the
      // global approximate-resolution slack.
      dbscan.eps = flags.GetDouble("radius", 1.0);
      dbscan.min_pts = static_cast<uint32_t>(flags.GetInt("min-pts", 4));
      const DbscanResult c = DbscanCluster(&resolver, dbscan);
      uint32_t noise = 0;
      for (const int32_t label : c.labels) {
        if (label == DbscanResult::kNoise) ++noise;
      }
      *checksum = static_cast<double>(c.num_clusters) * 1e6 +
                  static_cast<double>(noise);
      if (!quiet) {
        std::printf("DBSCAN(radius=%.3f, minPts=%u): %u clusters, %u noise "
                    "points\n",
                    dbscan.eps, dbscan.min_pts, c.num_clusters, noise);
      }
    } else if (method == "linkage") {
      const SingleLinkageResult c = SingleLinkageCluster(&resolver);
      double height_sum = 0.0;
      for (const auto& merge : c.merges) height_sum += merge.height;
      *checksum = height_sum;
      if (!quiet) {
        std::printf("single-linkage: %zu merges, heights %.4f .. %.4f\n",
                    c.merges.size(), c.merges.front().height,
                    c.merges.back().height);
      }
    } else {
      return Fail("unknown --method (pam|clarans|dbscan|kcenter|linkage)");
    }
  } else if (command == "join") {
    const double radius = flags.GetDouble("radius", 1.0);
    const auto matches = SimilarityJoin(&resolver, radius);
    *checksum = static_cast<double>(matches.size());
    if (!quiet) {
      std::printf("similarity join (radius %.4f): %zu matching pairs\n",
                  radius, matches.size());
    }
  } else if (command == "diameter") {
    const DiameterEstimate d = ApproximateDiameter(&resolver);
    *checksum = d.distance;
    if (!quiet) {
      std::printf("diameter >= %.6f (between objects %u and %u; 2-approx)\n",
                  d.distance, d.u, d.v);
    }
  } else {
    return Fail("unknown command: " + command +
                " (mst|knn|cluster|join|diameter)");
  }
  return 0;
}

}  // namespace
}  // namespace metricprox

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: mpx <mst|knn|cluster|join|diameter> [--flags]\n"
                 "       mpx store <info|verify|compact> --store=<path>\n"
                 "       mpx obs <export|dump> --obs-dir=<dir>\n"
                 "run `head -120 tools/mpx.cc` for the flag reference\n");
    return 1;
  }
  const std::string command = argv[1];
  if (command == "obs") {
    if (argc < 3 || argv[2][0] == '-') {
      std::fprintf(stderr, "usage: mpx obs <export|dump> --obs-dir=<dir>\n");
      return 1;
    }
    const std::string verb = argv[2];
    auto flags = metricprox::Flags::Parse(argc - 2, argv + 2);
    if (!flags.ok()) {
      std::fprintf(stderr, "mpx: %s\n", flags.status().ToString().c_str());
      return 1;
    }
    return metricprox::RunObs(verb, *flags);
  }
  if (command == "store") {
    if (argc < 3 || argv[2][0] == '-') {
      std::fprintf(stderr,
                   "usage: mpx store <info|verify|compact> --store=<path>\n");
      return 1;
    }
    const std::string verb = argv[2];
    auto flags = metricprox::Flags::Parse(argc - 2, argv + 2);
    if (!flags.ok()) {
      std::fprintf(stderr, "mpx: %s\n", flags.status().ToString().c_str());
      return 1;
    }
    return metricprox::RunStore(verb, *flags);
  }
  auto flags = metricprox::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "mpx: %s\n", flags.status().ToString().c_str());
    return 1;
  }
  return metricprox::Run(command, *flags);
}
