// mpx — command-line front end for the metricprox library.
//
// Run any built-in proximity workload over any built-in dataset, under any
// bound scheme, with full oracle-call accounting:
//
//   mpx mst     --dataset=sf --n=256 --scheme=tri --bootstrap
//   mpx knn     --dataset=dna --n=200 --k=5 --scheme=laesa
//   mpx cluster --method=pam --l=10 --dataset=urbangb --scheme=tri
//   mpx join    --radius=8 --dataset=flickr --scheme=tri --bootstrap
//   mpx diameter --dataset=random --n=64 --scheme=splub
//
// Common flags:
//   --dataset=sf|urbangb|flickr|dna|clustered|random   (default sf)
//   --n=<objects>            --seed=<seed>
//   --scheme=none|tri|splub|adm|adm-classic|laesa|tlaesa|dft|tri+laesa
//   --bootstrap              resolve a landmark star first (tri/splub/adm)
//   --landmarks=<k>          0 = ceil(log2 n)
//   --oracle-cost=<seconds>  simulated per-call latency
//   --verify                 wrap the oracle in metric-axiom spot checks
//   --save-graph=<path>      checkpoint resolved distances afterwards
//   --load-graph=<path>      start from a checkpoint (same dataset/seed!)

#include <cstdio>
#include <memory>
#include <string>

#include "algo/boruvka.h"
#include "algo/clarans.h"
#include "algo/dbscan.h"
#include "algo/join.h"
#include "algo/kcenter.h"
#include "algo/knn_graph.h"
#include "algo/kruskal.h"
#include "algo/linkage.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "algo/search.h"
#include "bounds/pivots.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "core/stats.h"
#include "data/datasets.h"
#include "graph/graph_io.h"
#include "harness/flags.h"
#include "harness/table.h"
#include "oracle/wrappers.h"

namespace metricprox {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "mpx: %s\n", message.c_str());
  return 1;
}

StatusOr<Dataset> MakeDataset(const std::string& name, ObjectId n,
                              uint64_t seed) {
  if (name == "sf") return MakeSfPoiLike(n, seed);
  if (name == "urbangb") return MakeUrbanGbLike(n, seed);
  if (name == "flickr") return MakeFlickrLike(n, 256, seed);
  if (name == "dna") return MakeDnaLike(n, 80, seed);
  if (name == "clustered") {
    return MakeClusteredEuclidean(n, 3, 6, 0.05, seed);
  }
  if (name == "random") return MakeRandomMetric(n, seed);
  return Status::InvalidArgument("unknown dataset: " + name);
}

void PrintStats(const BoundedResolver& resolver, ObjectId n,
                double oracle_cost, double simulated_seconds,
                double wall_seconds) {
  const ResolverStats& s = resolver.stats();
  const uint64_t all_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  TablePrinter table({"metric", "value"});
  table.NewRow().AddCell("oracle calls").AddUint(s.oracle_calls);
  table.NewRow().AddCell("all-pairs budget").AddUint(all_pairs);
  table.NewRow().AddCell("calls saved (%)").AddPercent(
      1.0 - static_cast<double>(s.oracle_calls) /
                static_cast<double>(all_pairs));
  table.NewRow().AddCell("comparisons").AddUint(s.comparisons);
  table.NewRow().AddCell("decided by bounds").AddUint(s.decided_by_bounds);
  table.NewRow().AddCell("decided by cache").AddUint(s.decided_by_cache);
  table.NewRow().AddCell("decided by oracle").AddUint(s.decided_by_oracle);
  table.NewRow().AddCell("scheme CPU (s)").AddDouble(s.bounder_seconds, 4);
  table.NewRow().AddCell("wall time (s)").AddDouble(wall_seconds, 3);
  if (oracle_cost > 0) {
    table.NewRow()
        .AddCell("simulated oracle time (s)")
        .AddDouble(simulated_seconds, 1);
    table.NewRow()
        .AddCell("completion time (s)")
        .AddDouble(wall_seconds + simulated_seconds, 1);
  }
  table.Print("\nAccounting");
}

int Run(const std::string& command, const Flags& flags) {
  const ObjectId n = static_cast<ObjectId>(flags.GetInt("n", 256));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string dataset_name = flags.GetString("dataset", "sf");
  const std::string scheme_name = flags.GetString("scheme", "tri");
  const bool bootstrap = flags.GetBool("bootstrap", false);
  const uint32_t landmarks =
      static_cast<uint32_t>(flags.GetInt("landmarks", 0));
  const double oracle_cost = flags.GetDouble("oracle-cost", 0.0);
  const bool verify = flags.GetBool("verify", false);
  const std::string save_graph = flags.GetString("save-graph", "");
  const std::string load_graph = flags.GetString("load-graph", "");

  StatusOr<Dataset> dataset = MakeDataset(dataset_name, n, seed);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  StatusOr<SchemeKind> scheme = ParseSchemeKind(scheme_name);
  if (!scheme.ok()) return Fail(scheme.status().ToString());

  // Oracle stack: base -> (verify) -> simulated cost.
  DistanceOracle* oracle = dataset->oracle.get();
  std::unique_ptr<VerifyingOracle> verifier;
  if (verify) {
    verifier = std::make_unique<VerifyingOracle>(oracle, 32);
    oracle = verifier.get();
  }
  SimulatedCostOracle costed(oracle, oracle_cost);

  PartialDistanceGraph graph(n);
  if (!load_graph.empty()) {
    StatusOr<PartialDistanceGraph> loaded = LoadGraph(load_graph);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    if (loaded->num_objects() != n) {
      return Fail("checkpoint has a different object count");
    }
    graph = std::move(*loaded);
    std::printf("resumed %zu resolved distances from %s\n",
                graph.num_edges(), load_graph.c_str());
  }
  BoundedResolver resolver(&costed, &graph);
  if (bootstrap) {
    BootstrapWithLandmarks(
        &resolver, landmarks > 0 ? landmarks : DefaultNumLandmarks(n), seed);
  }
  SchemeOptions options;
  options.num_landmarks = landmarks;
  options.max_distance = dataset->max_distance;
  options.seed = seed;
  auto bounder = MakeAndAttachScheme(*scheme, &resolver, options);
  if (!bounder.ok()) return Fail(bounder.status().ToString());

  std::printf("mpx %s: dataset=%s n=%u scheme=%s%s seed=%llu\n",
              command.c_str(), dataset->name.c_str(), n,
              SchemeKindName(*scheme).data(), bootstrap ? "+bootstrap" : "",
              static_cast<unsigned long long>(seed));

  Stopwatch watch;
  if (command == "mst") {
    const std::string algorithm = flags.GetString("algorithm", "prim");
    MstResult mst;
    if (algorithm == "prim") {
      mst = PrimMst(&resolver);
    } else if (algorithm == "kruskal") {
      mst = KruskalMst(&resolver);
    } else if (algorithm == "boruvka") {
      mst = BoruvkaMst(&resolver);
    } else {
      return Fail("unknown --algorithm (prim|kruskal|boruvka)");
    }
    std::printf("MST: %zu edges, total weight %.6f\n", mst.edges.size(),
                mst.total_weight);
  } else if (command == "knn") {
    const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 5));
    const KnnGraph knn = BuildKnnGraph(&resolver, KnnGraphOptions{k});
    double mean = 0.0;
    for (const auto& row : knn) mean += row.back().distance;
    std::printf("%u-NN graph built; mean k-th distance %.6f\n", k,
                mean / static_cast<double>(n));
  } else if (command == "cluster") {
    const std::string method = flags.GetString("method", "pam");
    const uint32_t l = static_cast<uint32_t>(flags.GetInt("l", 10));
    if (method == "pam") {
      PamOptions pam;
      pam.num_medoids = l;
      const ClusteringResult c = PamCluster(&resolver, pam);
      std::printf("PAM: %u medoids, total deviation %.6f, %u swap rounds\n",
                  l, c.total_deviation, c.iterations);
    } else if (method == "clarans") {
      ClaransOptions clarans;
      clarans.num_medoids = l;
      clarans.seed = seed;
      const ClusteringResult c = ClaransCluster(&resolver, clarans);
      std::printf("CLARANS: %u medoids, total deviation %.6f\n", l,
                  c.total_deviation);
    } else if (method == "kcenter") {
      const KCenterResult c = KCenterCluster(&resolver, l);
      std::printf("k-center: %u centers, radius %.6f\n", l, c.radius);
    } else if (method == "dbscan") {
      DbscanOptions dbscan;
      dbscan.eps = flags.GetDouble("eps", 1.0);
      dbscan.min_pts = static_cast<uint32_t>(flags.GetInt("min-pts", 4));
      const DbscanResult c = DbscanCluster(&resolver, dbscan);
      uint32_t noise = 0;
      for (const int32_t label : c.labels) {
        if (label == DbscanResult::kNoise) ++noise;
      }
      std::printf("DBSCAN(eps=%.3f, minPts=%u): %u clusters, %u noise "
                  "points\n",
                  dbscan.eps, dbscan.min_pts, c.num_clusters, noise);
    } else if (method == "linkage") {
      const SingleLinkageResult c = SingleLinkageCluster(&resolver);
      std::printf("single-linkage: %zu merges, heights %.4f .. %.4f\n",
                  c.merges.size(), c.merges.front().height,
                  c.merges.back().height);
    } else {
      return Fail("unknown --method (pam|clarans|dbscan|kcenter|linkage)");
    }
  } else if (command == "join") {
    const double radius = flags.GetDouble("radius", 1.0);
    const auto matches = SimilarityJoin(&resolver, radius);
    std::printf("similarity join (radius %.4f): %zu matching pairs\n",
                radius, matches.size());
  } else if (command == "diameter") {
    const DiameterEstimate d = ApproximateDiameter(&resolver);
    std::printf("diameter >= %.6f (between objects %u and %u; 2-approx)\n",
                d.distance, d.u, d.v);
  } else {
    return Fail("unknown command: " + command +
                " (mst|knn|cluster|join|diameter)");
  }
  const double wall = watch.ElapsedSeconds();

  if (const Status s = flags.FailOnUnused(); !s.ok()) {
    return Fail(s.ToString());
  }
  PrintStats(resolver, n, oracle_cost, costed.simulated_seconds(), wall);
  if (verifier != nullptr) {
    std::printf("metric spot checks passed: %llu\n",
                static_cast<unsigned long long>(verifier->checks_performed()));
  }
  if (!save_graph.empty()) {
    const Status s = SaveGraph(graph, save_graph);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("checkpointed %zu resolved distances to %s\n",
                graph.num_edges(), save_graph.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace metricprox

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: mpx <mst|knn|cluster|join|diameter> [--flags]\n"
                 "run `head -30 tools/mpx.cc` for the flag reference\n");
    return 1;
  }
  const std::string command = argv[1];
  auto flags = metricprox::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "mpx: %s\n", flags.status().ToString().c_str());
    return 1;
  }
  return metricprox::Run(command, *flags);
}
