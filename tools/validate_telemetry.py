#!/usr/bin/env python3
"""Validate mpx telemetry artifacts against their checked-in schemas.

Stdlib only (no jsonschema dependency): implements exactly the JSON-Schema
subset the schemas in tools/schema/ use — type (string or list of strings),
required, properties, additionalProperties (boolean), enum, const,
minimum, maximum, and $ref into the document's $defs.

Usage:
  validate_telemetry.py report  <stats.json>    # mpx --stats-json output
  validate_telemetry.py trace   <trace.jsonl>   # mpx --trace output
  validate_telemetry.py bench   <BENCH_*.json>  # bench BenchJson output
  validate_telemetry.py spans   <trace.jsonl>   # span-tree well-formedness
  validate_telemetry.py metrics <metrics.jsonl> # --obs-dir time-series

Beyond per-object schema checks, `trace` mode verifies the stream shape
(header first, footer last), strictly increasing seq values, and that the
footer's events_written equals the number of event lines.

`spans` mode re-runs the `trace` checks, then verifies the causal-span
stream: every span_end matches an earlier span_begin of the same name,
every parent_span_id / link_span_id references a known span, a parent
begins before its children, and (for coalesced runs) the cross-session
accounting identity holds — the summed coalesce_submit span cardinality
equals the summed batch_ship cardinality plus the coalesce_dedup events,
i.e. every submitted pair was either shipped over the wire exactly once or
joined a sibling session's in-flight pair. A flight-recorder dump
(schema metricprox-flight) is also accepted: its ring may have evicted the
oldest begins, so tree completeness is only enforced for spans whose
begin survived.

`metrics` mode validates a metrics.jsonl time-series: one self-describing
JSON object per sampler tick with strictly increasing tick numbers,
non-decreasing timestamps, and well-formed counter/gauge/histogram
samples (counters must also be non-decreasing per (tenant, session,
metric) cell across ticks).

Exit status 0 = valid; 1 = validation failure (details on stderr).
"""

import json
import os
import sys

SCHEMA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "schema")


class ValidationError(Exception):
    pass


def _type_ok(value, type_name):
    if type_name == "object":
        return isinstance(value, dict)
    if type_name == "array":
        return isinstance(value, list)
    if type_name == "string":
        return isinstance(value, str)
    if type_name == "boolean":
        return isinstance(value, bool)
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "null":
        return value is None
    raise ValidationError(f"schema uses unsupported type {type_name!r}")


def validate(value, schema, root, path="$"):
    """Validates `value` against `schema`; `root` resolves $ref into $defs."""
    if "$ref" in schema:
        ref = schema["$ref"]
        prefix = "#/$defs/"
        if not ref.startswith(prefix):
            raise ValidationError(f"{path}: unsupported $ref {ref!r}")
        name = ref[len(prefix):]
        if name not in root.get("$defs", {}):
            raise ValidationError(f"{path}: unknown $defs entry {name!r}")
        return validate(value, root["$defs"][name], root, path)

    if "const" in schema and value != schema["const"]:
        raise ValidationError(
            f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        raise ValidationError(f"{path}: {value!r} not in enum")

    if "type" in schema:
        types = schema["type"]
        if isinstance(types, str):
            types = [types]
        if not any(_type_ok(value, t) for t in types):
            raise ValidationError(
                f"{path}: expected type {types}, got {type(value).__name__}")

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            raise ValidationError(
                f"{path}: {value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            raise ValidationError(
                f"{path}: {value} > maximum {schema['maximum']}")

    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                raise ValidationError(f"{path}: missing required key {key!r}")
        if schema.get("additionalProperties", True) is False:
            extra = sorted(set(value) - set(props))
            if extra:
                raise ValidationError(f"{path}: unexpected keys {extra}")
        for key, subschema in props.items():
            if key in value:
                validate(value[key], subschema, root, f"{path}.{key}")


def load_schema(name):
    with open(os.path.join(SCHEMA_DIR, name), encoding="utf-8") as f:
        return json.load(f)


def validate_report(path):
    schema = load_schema("run_report_schema.json")
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    validate(report, schema, schema)

    # Cross-field invariants the schema language cannot express.
    stats = report["stats"]
    known_keys = set(schema["properties"]["stats"]["required"])
    unknown = sorted(set(stats) - known_keys)
    if unknown:
        raise ValidationError(
            f"stats: unknown keys {unknown} (a new ResolverStats field must "
            f"be added to run_report_schema.json and this validator)")
    decided = (stats["decided_by_bounds"] + stats["decided_by_cache"] +
               stats["decided_by_oracle"] + stats["decided_by_slack"] +
               stats["decided_by_weak"] + stats["undecided"])
    if decided != stats["comparisons"]:
        raise ValidationError(
            f"stats: decisions {decided} != comparisons "
            f"{stats['comparisons']}")
    if stats["budget_exhausted"] > stats["decided_by_slack"]:
        raise ValidationError(
            f"stats: budget_exhausted {stats['budget_exhausted']} > "
            f"decided_by_slack {stats['decided_by_slack']} (budget-forced "
            f"decisions are a subset of slack decisions)")
    if stats["decided_by_weak"] > stats["weak_calls"]:
        raise ValidationError(
            f"stats: decided_by_weak {stats['decided_by_weak']} > "
            f"weak_calls {stats['weak_calls']} (every weak decision "
            f"requires at least one weak consult)")
    if stats["shared_graph_hits"] > stats["oracle_calls"]:
        raise ValidationError(
            f"stats: shared_graph_hits {stats['shared_graph_hits']} > "
            f"oracle_calls {stats['oracle_calls']} (a shared-graph hit is a "
            f"resolver oracle call answered by the pool's shared graph)")
    if stats["sessions_active"] == 0 and (
            stats["coalesced_batches"] > 0 or
            stats["cross_session_dedup_hits"] > 0 or
            stats["shared_graph_hits"] > 0):
        raise ValidationError(
            "stats: session-layer counters are nonzero but sessions_active "
            "is 0 (only SessionPool runs produce coalesced_batches / "
            "cross_session_dedup_hits / shared_graph_hits)")
    hists = report["telemetry"]["histograms"]
    if not report["telemetry"]["enabled"]:
        for name, hist in hists.items():
            if hist["count"] != 0:
                raise ValidationError(
                    f"telemetry disabled but {name}.count != 0")
    for name, hist in hists.items():
        if hist["count"] > 0 and not (
                hist["min"] <= hist["p50"] <= hist["p90"] <= hist["p99"]
                <= hist["max"]):
            raise ValidationError(f"{name}: quantiles out of order")
    print(f"report OK: {path} "
          f"(oracle_calls={stats['oracle_calls']}, "
          f"telemetry={'on' if report['telemetry']['enabled'] else 'off'})")


def validate_trace(path):
    schema = load_schema("trace_schema.json")
    with open(path, encoding="utf-8") as f:
        lines = [line for line in f.read().splitlines() if line]
    if len(lines) < 2:
        raise ValidationError("trace needs at least a header and a footer")
    objects = []
    for number, line in enumerate(lines, start=1):
        try:
            objects.append(json.loads(line))
        except json.JSONDecodeError as e:
            raise ValidationError(f"line {number}: not JSON: {e}") from e

    validate(objects[0], {"$ref": "#/$defs/header"}, schema, "header")
    validate(objects[-1], {"$ref": "#/$defs/footer"}, schema, "footer")
    events = objects[1:-1]
    last_seq = -1
    for k, event in enumerate(events):
        validate(event, {"$ref": "#/$defs/event"}, schema, f"event[{k}]")
        if event["seq"] <= last_seq:
            raise ValidationError(
                f"event[{k}]: seq {event['seq']} not increasing "
                f"(previous {last_seq})")
        last_seq = event["seq"]

    footer = objects[-1]
    if footer["events_written"] != len(events):
        raise ValidationError(
            f"footer says events_written={footer['events_written']}, "
            f"file has {len(events)} event lines")
    kinds = sorted({e["kind"] for e in events})
    print(f"trace OK: {path} ({len(events)} events, "
          f"{footer['events_dropped']} dropped, kinds: {', '.join(kinds)})")


def _load_event_stream(path):
    """Loads a trace or flight-dump JSONL: (header, events, footer, kind).

    `kind` is "trace" or "flight". Schema-validates every event line and
    checks strictly increasing seq; trace footers additionally must match
    the event-line count (a flight ring legitimately evicts).
    """
    schema = load_schema("trace_schema.json")
    with open(path, encoding="utf-8") as f:
        lines = [line for line in f.read().splitlines() if line]
    if len(lines) < 2:
        raise ValidationError("stream needs at least a header and a footer")
    objects = []
    for number, line in enumerate(lines, start=1):
        try:
            objects.append(json.loads(line))
        except json.JSONDecodeError as e:
            raise ValidationError(f"line {number}: not JSON: {e}") from e

    header, events, footer = objects[0], objects[1:-1], objects[-1]
    if header.get("schema") == "metricprox-flight":
        stream_kind = "flight"
        if header.get("schema_version") != 1:
            raise ValidationError("flight header: schema_version != 1")
        if "reason" not in header:
            raise ValidationError("flight header: missing reason")
        if footer.get("flight_footer") is not True:
            raise ValidationError("flight footer: missing flight_footer")
        if footer.get("events_written") != len(events):
            raise ValidationError(
                f"flight footer says events_written="
                f"{footer.get('events_written')}, file has {len(events)}")
    else:
        stream_kind = "trace"
        validate(header, {"$ref": "#/$defs/header"}, schema, "header")
        validate(footer, {"$ref": "#/$defs/footer"}, schema, "footer")
        if footer["events_written"] != len(events):
            raise ValidationError(
                f"footer says events_written={footer['events_written']}, "
                f"file has {len(events)} event lines")
    last_seq = -1
    for k, event in enumerate(events):
        validate(event, {"$ref": "#/$defs/event"}, schema, f"event[{k}]")
        if event["seq"] <= last_seq:
            raise ValidationError(
                f"event[{k}]: seq {event['seq']} not increasing "
                f"(previous {last_seq})")
        last_seq = event["seq"]
    return header, events, footer, stream_kind


def validate_spans(path):
    _, events, _, stream_kind = _load_event_stream(path)
    ring = stream_kind == "flight"  # oldest begins may be evicted

    # Pass 1: collect begins. span ids are pool-unique (one TraceClock), so
    # a reused id is a bug, not an artifact of merging sessions.
    begins = {}  # span_id -> begin event
    ends = {}    # span_id -> end event
    for k, event in enumerate(events):
        kind = event["kind"]
        if kind == "span_begin":
            sid = event.get("span_id")
            if not sid:
                raise ValidationError(f"event[{k}]: span_begin without id")
            if sid in begins:
                raise ValidationError(f"event[{k}]: span id {sid} reused")
            begins[sid] = event
        elif kind == "span_end":
            sid = event.get("span_id")
            if not sid:
                raise ValidationError(f"event[{k}]: span_end without id")
            if sid in ends:
                raise ValidationError(
                    f"event[{k}]: span id {sid} ended twice")
            ends[sid] = event

    # Pass 2: structural checks.
    for sid, end in ends.items():
        begin = begins.get(sid)
        if begin is None:
            if ring:
                continue  # its begin fell off the ring
            raise ValidationError(
                f"span {sid} ({end.get('name')}): end without begin")
        if begin.get("name") != end.get("name"):
            raise ValidationError(
                f"span {sid}: begin name {begin.get('name')!r} != end name "
                f"{end.get('name')!r}")
        if begin.get("session_id", 0) != end.get("session_id", 0):
            raise ValidationError(
                f"span {sid}: begin/end session_id mismatch")
        if begin["seq"] >= end["seq"]:
            raise ValidationError(f"span {sid}: begin seq after end seq")
    for sid, begin in begins.items():
        parent = begin.get("parent_span_id", 0)
        if parent:
            pbegin = begins.get(parent)
            if pbegin is None:
                if not ring:
                    raise ValidationError(
                        f"span {sid} ({begin.get('name')}): unknown parent "
                        f"{parent}")
            elif pbegin["seq"] >= begin["seq"]:
                raise ValidationError(
                    f"span {sid}: parent {parent} begins after child")
            pend = ends.get(parent)
            if pend is not None and sid in ends and (
                    pend["seq"] <= ends[sid]["seq"]):
                raise ValidationError(
                    f"span {sid}: parent {parent} ends before child ends "
                    f"(spans are strictly nested per thread)")
        if not ring and sid not in ends:
            raise ValidationError(
                f"span {sid} ({begin.get('name')}): begin without end")
    known = set(begins) | set(ends)
    for sid, end in ends.items():
        link = end.get("link_span_id", 0)
        if link and link not in known and not ring:
            raise ValidationError(
                f"span {sid}: link_span_id {link} references no span")

    # Pass 3: the cross-session coalescing identity. Over a complete trace,
    # every pair counted by a coalesce_submit span was either shipped in
    # exactly one batch_ship round-trip or joined a pair another submission
    # already had in flight (one coalesce_dedup event each).
    submitted = sum(e.get("count", 0) for e in ends.values()
                    if e.get("name") == "coalesce_submit")
    shipped = sum(e.get("count", 0) for e in ends.values()
                  if e.get("name") == "batch_ship")
    dedup = sum(e.get("count", 1) for e in events
                if e["kind"] == "coalesce_dedup")
    if not ring and submitted != shipped + dedup:
        raise ValidationError(
            f"coalescing identity violated: submitted {submitted} != "
            f"shipped {shipped} + dedup {dedup}")

    # Per-session oracle_rtt spans must link somewhere real when coalescing
    # was active (the direct path leaves link unset).
    names = {}
    for sid, begin in begins.items():
        names.setdefault(begin.get("name"), 0)
        names[begin.get("name")] += 1
    summary = ", ".join(f"{name}={count}"
                        for name, count in sorted(names.items()))
    print(f"spans OK: {path} ({len(begins)} begins, {len(ends)} ends"
          f"{' [ring]' if ring else ''}; submitted={submitted} "
          f"shipped={shipped} dedup={dedup}; {summary})")


METRIC_SAMPLE_SCHEMA = {
    "type": "object",
    "required": ["tenant", "session", "metric", "kind"],
    "additionalProperties": False,
    "properties": {
        "tenant": {"type": "string"},
        "session": {"type": "integer", "minimum": 0},
        "metric": {"type": "string"},
        "kind": {"enum": ["counter", "gauge", "histogram"]},
        "value": {"type": "number"},
        "count": {"type": "integer", "minimum": 0},
        "sum": {"type": ["number", "null"]},
        "p50": {"type": ["number", "null"]},
        "p90": {"type": ["number", "null"]},
        "p99": {"type": ["number", "null"]},
    },
}

METRIC_LINE_SCHEMA = {
    "type": "object",
    "required": ["schema", "schema_version", "tick", "t_ns", "samples"],
    "additionalProperties": False,
    "properties": {
        "schema": {"const": "metricprox-metrics"},
        "schema_version": {"const": 1},
        "tick": {"type": "integer", "minimum": 1},
        "t_ns": {"type": "integer", "minimum": 0},
        "samples": {"type": "array"},
    },
}


def validate_metrics(path):
    with open(path, encoding="utf-8") as f:
        lines = [line for line in f.read().splitlines() if line]
    if not lines:
        raise ValidationError("metrics time-series is empty")
    last_tick, last_t_ns = 0, -1
    counters = {}  # (tenant, session, metric) -> last value
    total_samples = 0
    for number, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValidationError(f"line {number}: not JSON: {e}") from e
        validate(obj, METRIC_LINE_SCHEMA, METRIC_LINE_SCHEMA,
                 path=f"line[{number}]")
        if obj["tick"] <= last_tick:
            raise ValidationError(
                f"line {number}: tick {obj['tick']} not increasing "
                f"(previous {last_tick})")
        if obj["t_ns"] < last_t_ns:
            raise ValidationError(
                f"line {number}: t_ns went backwards")
        last_tick, last_t_ns = obj["tick"], obj["t_ns"]
        for k, sample in enumerate(obj["samples"]):
            where = f"line[{number}].samples[{k}]"
            validate(sample, METRIC_SAMPLE_SCHEMA, METRIC_SAMPLE_SCHEMA,
                     path=where)
            kind = sample["kind"]
            if kind in ("counter", "gauge") and "value" not in sample:
                raise ValidationError(f"{where}: {kind} without value")
            if kind == "histogram" and "count" not in sample:
                raise ValidationError(f"{where}: histogram without count")
            if kind == "counter":
                cell = (sample["tenant"], sample["session"],
                        sample["metric"])
                if sample["value"] < counters.get(cell, 0):
                    raise ValidationError(
                        f"{where}: counter {cell} went backwards "
                        f"({counters[cell]} -> {sample['value']})")
                counters[cell] = sample["value"]
            total_samples += 1
    print(f"metrics OK: {path} ({len(lines)} ticks, {total_samples} "
          f"samples, {len(counters)} counter cells)")


def validate_bench(path):
    with open(path, encoding="utf-8") as f:
        bench = json.load(f)
    schema = {
        "type": "object",
        "required": ["schema", "schema_version", "bench", "rows"],
        "additionalProperties": False,
        "properties": {
            "schema": {"const": "metricprox-bench"},
            "schema_version": {"const": 1},
            "bench": {"type": "string"},
            "rows": {"type": "array"},
        },
    }
    validate(bench, schema, schema)
    if not bench["rows"]:
        raise ValidationError("bench JSON has no rows")
    for k, row in enumerate(bench["rows"]):
        if not isinstance(row, dict) or not row:
            raise ValidationError(f"rows[{k}]: not a non-empty object")
        if "kernel" in row:
            validate_kernel_row(row, k)
    print(f"bench OK: {path} ({len(bench['rows'])} rows)")


# Rows emitted by bench_micro_bounds' kernel-dispatch A/B. The speedup is
# recomputed from the timings so a hand-edited JSON can't claim a win the
# measurements don't support.
KERNEL_ROW_SCHEMA = {
    "type": "object",
    "required": ["kernel", "tier", "scalar_ns", "dispatched_ns", "speedup"],
    "additionalProperties": False,
    "properties": {
        "kernel": {"enum": ["pivot_scan", "tri_merge", "batch_distance"]},
        "tier": {"enum": ["scalar", "sse2", "avx2"]},
        "scalar_ns": {"type": "number", "minimum": 0},
        "dispatched_ns": {"type": "number", "minimum": 0},
        "speedup": {"type": "number", "minimum": 0},
    },
}


def validate_kernel_row(row, k):
    validate(row, KERNEL_ROW_SCHEMA, KERNEL_ROW_SCHEMA,
             path=f"rows[{k}]")
    if row["dispatched_ns"] > 0:
        expected = row["scalar_ns"] / row["dispatched_ns"]
        if abs(row["speedup"] - expected) > 1e-6 * max(1.0, expected):
            raise ValidationError(
                f"rows[{k}]: speedup {row['speedup']} does not match "
                f"scalar_ns/dispatched_ns = {expected}")


def main(argv):
    # Both spellings are accepted: `spans file` and `--mode spans file`.
    if len(argv) == 4 and argv[1] == "--mode":
        argv = [argv[0], argv[2], argv[3]]
    modes = ("report", "trace", "bench", "spans", "metrics")
    if len(argv) != 3 or argv[1] not in modes:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        {"report": validate_report,
         "trace": validate_trace,
         "bench": validate_bench,
         "spans": validate_spans,
         "metrics": validate_metrics}[argv[1]](argv[2])
    except ValidationError as e:
        print(f"validate_telemetry: {argv[2]}: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
