// Scenario: build a minimum spanning tree over points of interest whose
// pairwise distances come from a routing service (simulated here by a
// synthetic road network — each oracle call is one "API request", billed
// at a configurable latency). This is the paper's motivating application:
// with a 1.2 s round-trip per request, saving half the calls saves hours.
//
//   $ ./poi_mst --n=300 --api-latency=1.2

#include <cstdio>
#include <tuple>

#include "algo/prim.h"
#include "bounds/resolver.h"
#include "bounds/pivots.h"
#include "bounds/scheme.h"
#include "data/datasets.h"
#include "harness/flags.h"
#include "harness/table.h"
#include "oracle/wrappers.h"

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 300));
  const double latency = flags->GetDouble("api-latency", 1.2);
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // A city's POIs pinned to a road network; distances are shortest paths
  // over it (a genuine metric, like driving distances).
  Dataset city = MakeSfPoiLike(n, /*seed=*/2024);
  std::printf("Dataset: %u POIs on a synthetic road network; each distance "
              "lookup simulates a %.1f s API round-trip.\n\n",
              n, latency);

  TablePrinter table(
      {"scheme", "API calls", "simulated API hours", "MST weight"});
  for (const auto& [label, scheme, bootstrap] :
       {std::tuple<const char*, SchemeKind, bool>{"without-plug",
                                                  SchemeKind::kNone, false},
        {"tri (bootstrapped)", SchemeKind::kTri, true},
        {"laesa", SchemeKind::kLaesa, false}}) {
    SimulatedCostOracle api(city.oracle.get(), latency);
    PartialDistanceGraph graph(n);
    BoundedResolver resolver(&api, &graph);
    if (bootstrap) {
      BootstrapWithLandmarks(&resolver, DefaultNumLandmarks(n), 7);
    }
    SchemeOptions options;
    auto attached = MakeAndAttachScheme(scheme, &resolver, options);
    if (!attached.ok()) {
      std::fprintf(stderr, "%s\n", attached.status().ToString().c_str());
      return 1;
    }

    const MstResult mst = PrimMst(&resolver);
    table.NewRow()
        .AddCell(label)
        .AddUint(resolver.stats().oracle_calls)
        .AddDouble(api.simulated_seconds() / 3600.0, 2)
        .AddDouble(mst.total_weight, 2);
  }
  table.Print("Prim's MST over routing-API distances");
  std::printf(
      "\nIdentical trees, very different bills: every scheme returns the "
      "exact MST, only the number of API round-trips changes.\n");
  return 0;
}
