// Scenario: near-duplicate detection over tag/shingle sets under Jaccard
// distance — the classical record-linkage workload. A similarity self-join
// with radius r finds every pair at Jaccard distance <= r; the Tri Scheme
// discards far pairs without evaluating their (expensive, for real
// documents) set intersection.
//
//   $ ./dedup_jaccard --n=400 --radius=0.35

#include <cstdio>
#include <random>
#include <set>
#include <vector>

#include "algo/join.h"
#include "bounds/pivots.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "harness/flags.h"
#include "oracle/set_oracle.h"

namespace {

// Documents as shingle-id sets: a few templates, each instance a mutated
// copy (drop/add a few elements) — duplicates share most shingles.
std::vector<std::vector<uint32_t>> MakeDocuments(uint32_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const uint32_t kTemplates = 24;
  const uint32_t kUniverse = 4000;
  const uint32_t kSetSize = 60;

  std::vector<std::vector<uint32_t>> templates(kTemplates);
  for (auto& t : templates) {
    std::set<uint32_t> s;
    while (s.size() < kSetSize) s.insert(rng() % kUniverse);
    t.assign(s.begin(), s.end());
  }
  std::set<std::vector<uint32_t>> seen;
  std::vector<std::vector<uint32_t>> docs;
  while (docs.size() < n) {
    const auto& base = templates[rng() % kTemplates];
    std::set<uint32_t> s(base.begin(), base.end());
    const uint32_t edits = 1 + rng() % 8;
    for (uint32_t e = 0; e < edits; ++e) {
      if (rng() % 2 == 0 && s.size() > 8) {
        auto it = s.begin();
        std::advance(it, rng() % s.size());
        s.erase(it);
      } else {
        s.insert(rng() % kUniverse);
      }
    }
    std::vector<uint32_t> doc(s.begin(), s.end());
    if (seen.insert(doc).second) docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 400));
  const double radius = flags->GetDouble("radius", 0.35);
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  JaccardOracle oracle(MakeDocuments(n, 77));
  PartialDistanceGraph graph(n);
  BoundedResolver resolver(&oracle, &graph);
  BootstrapWithLandmarks(&resolver, DefaultNumLandmarks(n), 5);
  SchemeOptions options;
  auto scheme = MakeAndAttachScheme(SchemeKind::kTri, &resolver, options);
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }

  const auto matches = SimilarityJoin(&resolver, radius);

  const uint64_t all_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  std::printf("%u documents, Jaccard radius %.2f: %zu near-duplicate "
              "pairs\n",
              n, radius, matches.size());
  std::printf("set intersections evaluated: %llu of %llu (%.1f%% skipped "
              "via triangle pruning)\n",
              static_cast<unsigned long long>(resolver.stats().oracle_calls),
              static_cast<unsigned long long>(all_pairs),
              100.0 * (1.0 - static_cast<double>(resolver.stats().oracle_calls) /
                                 static_cast<double>(all_pairs)));
  for (size_t m = 0; m < matches.size() && m < 5; ++m) {
    std::printf("  e.g. documents %u and %u at distance %.3f\n",
                matches[m].u, matches[m].v, matches[m].weight);
  }
  return 0;
}
