// Scenario: nearest-neighbor search over DNA sequences under Levenshtein
// (edit) distance — the paper's bioinformatics application class. The edit
// distance is a true metric, so triangle pruning applies, and each
// evaluation is an O(len^2) dynamic program worth skipping.
//
//   $ ./dna_knn --n=200 --length=160 --k=3

#include <cstdio>

#include "algo/knn_graph.h"
#include "bounds/resolver.h"
#include "bounds/pivots.h"
#include "bounds/scheme.h"
#include "core/stats.h"
#include "data/datasets.h"
#include "harness/flags.h"
#include "oracle/string_oracle.h"

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 200));
  const size_t length = static_cast<size_t>(flags->GetInt("length", 160));
  const uint32_t k = static_cast<uint32_t>(flags->GetInt("k", 3));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Dataset dna = MakeDnaLike(n, length, /*seed=*/5);
  auto* oracle = static_cast<LevenshteinOracle*>(dna.oracle.get());

  PartialDistanceGraph graph(n);
  BoundedResolver resolver(oracle, &graph);
  BootstrapWithLandmarks(&resolver, DefaultNumLandmarks(n), 3);
  SchemeOptions options;
  auto scheme = MakeAndAttachScheme(SchemeKind::kTri, &resolver, options);
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }

  Stopwatch watch;
  const KnnGraph knn = BuildKnnGraph(&resolver, KnnGraphOptions{k});
  const double elapsed = watch.ElapsedSeconds();

  const uint64_t all_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  std::printf("%u sequences of ~%zu bases; exact %u-NN graph built in "
              "%.2f s\n",
              n, length, k, elapsed);
  std::printf("edit-distance evaluations: %llu of %llu possible (%.1f%% "
              "saved by triangle pruning)\n",
              static_cast<unsigned long long>(resolver.stats().oracle_calls),
              static_cast<unsigned long long>(all_pairs),
              100.0 * (1.0 - static_cast<double>(resolver.stats().oracle_calls) /
                                 static_cast<double>(all_pairs)));

  std::printf("\nsequence 0 (%zu bases): %.32s...\n",
              oracle->strings()[0].size(), oracle->strings()[0].c_str());
  for (const KnnNeighbor& nb : knn[0]) {
    std::printf("  neighbor %3u at edit distance %.0f: %.32s...\n", nb.id,
                nb.distance, oracle->strings()[nb.id].c_str());
  }
  return 0;
}
