// Quickstart: plug the Tri Scheme into a k-NN-graph build and count the
// expensive distance calls it avoids.
//
//   $ ./quickstart
//
// Walkthrough of the public API:
//   1. wrap your expensive distance function as a DistanceOracle,
//   2. stack a PartialDistanceGraph and a BoundedResolver on top,
//   3. attach a bound scheme (here: Tri Scheme bootstrapped with
//      log2(n) landmarks),
//   4. run any proximity algorithm written against the resolver —
//      the result is exactly what the oracle-only run would produce.

#include <cstdio>

#include "algo/knn_graph.h"
#include "bounds/resolver.h"
#include "bounds/pivots.h"
#include "bounds/scheme.h"
#include "data/synthetic.h"
#include "graph/partial_graph.h"
#include "oracle/vector_oracle.h"

int main() {
  using namespace metricprox;

  // 1. The "expensive" oracle: Euclidean distance over clustered points.
  //    (Swap in your own DistanceOracle subclass: a map API, an edit
  //    distance, an image comparator, ...)
  const ObjectId n = 400;
  VectorOracle oracle(
      GaussianMixturePoints(n, /*dim=*/2, /*num_clusters=*/8,
                            /*range=*/100.0, /*spread=*/2.0, /*seed=*/1),
      VectorMetric::kEuclidean);

  // 2. The framework stack.
  PartialDistanceGraph graph(n);
  BoundedResolver resolver(&oracle, &graph);

  // 3. Attach the Tri Scheme, seeded with a landmark bootstrap. The
  //    bootstrap's oracle calls are charged to the resolver's stats like
  //    any others.
  BootstrapWithLandmarks(&resolver, DefaultNumLandmarks(n), /*seed=*/7);
  SchemeOptions options;
  auto scheme = MakeAndAttachScheme(SchemeKind::kTri, &resolver, options);
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }

  // 4. Build the exact 5-NN graph.
  const KnnGraph knn = BuildKnnGraph(&resolver, KnnGraphOptions{5});

  const ResolverStats& stats = resolver.stats();
  const uint64_t all_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  std::printf("objects:                   %u\n", n);
  std::printf("all pairwise distances:    %llu\n",
              static_cast<unsigned long long>(all_pairs));
  std::printf("oracle calls actually made: %llu (%.1f%% of all pairs)\n",
              static_cast<unsigned long long>(stats.oracle_calls),
              100.0 * static_cast<double>(stats.oracle_calls) /
                  static_cast<double>(all_pairs));
  std::printf("comparisons decided by bounds alone: %llu\n",
              static_cast<unsigned long long>(stats.decided_by_bounds));
  std::printf("object 0's nearest neighbor: %u (distance %.3f)\n",
              knn[0][0].id, knn[0][0].distance);
  std::printf("\nThe returned graph is bit-identical to the one a "
              "plain oracle-only build produces.\n");
  return 0;
}
