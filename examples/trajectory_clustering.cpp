// Scenario: cluster GPS traces under the discrete Fréchet distance — a
// genuine metric whose evaluation is an O(len^2) dynamic program, i.e. an
// expensive oracle. Single-linkage clustering runs on the bound-augmented
// MST, and the oracle is wrapped in VerifyingOracle, the staging-time
// guard that spot-checks the metric axioms online (the #1 integration bug
// with user-provided distance functions is a silently non-metric one).
//
//   $ ./trajectory_clustering --n=150 --length=48 --families=5

#include <cstdio>
#include <vector>

#include "algo/linkage.h"
#include "bounds/pivots.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "harness/flags.h"
#include "oracle/trajectory_oracle.h"
#include "oracle/wrappers.h"

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 150));
  const size_t length = static_cast<size_t>(flags->GetInt("length", 48));
  const uint32_t families =
      static_cast<uint32_t>(flags->GetInt("families", 5));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  FrechetOracle frechet(
      RandomWalkTrajectories(n, length, families, /*jitter=*/0.25, 17));
  VerifyingOracle oracle(&frechet, /*check_every=*/64);

  PartialDistanceGraph graph(n);
  BoundedResolver resolver(&oracle, &graph);
  BootstrapWithLandmarks(&resolver, DefaultNumLandmarks(n), 3);
  SchemeOptions options;
  auto scheme = MakeAndAttachScheme(SchemeKind::kTri, &resolver, options);
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }

  const SingleLinkageResult dendrogram = SingleLinkageCluster(&resolver);
  const std::vector<uint32_t> labels = dendrogram.LabelsForK(families);

  std::vector<uint32_t> sizes(families, 0);
  for (const uint32_t label : labels) ++sizes[label];

  const uint64_t all_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  std::printf("%u trajectories (%zu points each), %u-way single-linkage "
              "cut:\n",
              n, length, families);
  for (uint32_t c = 0; c < families; ++c) {
    std::printf("  cluster %u: %u trajectories\n", c, sizes[c]);
  }
  std::printf("\nFrechet evaluations: %llu of %llu possible (%.1f%% saved)\n",
              static_cast<unsigned long long>(resolver.stats().oracle_calls),
              static_cast<unsigned long long>(all_pairs),
              100.0 * (1.0 - static_cast<double>(resolver.stats().oracle_calls) /
                                 static_cast<double>(all_pairs)));
  std::printf("metric-axiom spot checks performed by VerifyingOracle: %llu\n",
              static_cast<unsigned long long>(oracle.checks_performed()));
  std::printf("dendrogram: first merge at %.3f, last at %.3f\n",
              dendrogram.merges.front().height,
              dendrogram.merges.back().height);
  return 0;
}
