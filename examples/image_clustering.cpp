// Scenario: k-medoid clustering of image feature vectors (Flickr-like:
// 256-dimensional descriptors with low intrinsic dimension), where each
// exact distance evaluation is costly. PAM plugged with the Tri Scheme
// returns the exact same medoids while evaluating only a fraction of the
// pairwise distances.
//
//   $ ./image_clustering --n=256 --clusters=10

#include <cstdio>

#include "algo/pam.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "data/datasets.h"
#include "harness/flags.h"

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 256));
  const uint32_t clusters =
      static_cast<uint32_t>(flags->GetInt("clusters", 10));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Dataset images = MakeFlickrLike(n, /*dim=*/256, /*seed=*/99);
  PamOptions pam_options;
  pam_options.num_medoids = clusters;

  // Oracle-only run (the original algorithm).
  ClusteringResult vanilla;
  uint64_t vanilla_calls = 0;
  {
    PartialDistanceGraph graph(n);
    BoundedResolver resolver(images.oracle.get(), &graph);
    vanilla = PamCluster(&resolver, pam_options);
    vanilla_calls = resolver.stats().oracle_calls;
  }

  // The same algorithm plugged with the Tri Scheme.
  ClusteringResult plugged;
  uint64_t plugged_calls = 0;
  {
    PartialDistanceGraph graph(n);
    BoundedResolver resolver(images.oracle.get(), &graph);
    SchemeOptions options;
    auto scheme = MakeAndAttachScheme(SchemeKind::kTri, &resolver, options);
    if (!scheme.ok()) {
      std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
      return 1;
    }
    plugged = PamCluster(&resolver, pam_options);
    plugged_calls = resolver.stats().oracle_calls;
  }

  std::printf("PAM over %u images, %u medoids\n", n, clusters);
  std::printf("  oracle-only:   %llu distance evaluations, TD = %.4f\n",
              static_cast<unsigned long long>(vanilla_calls),
              vanilla.total_deviation);
  std::printf("  + Tri Scheme:  %llu distance evaluations, TD = %.4f\n",
              static_cast<unsigned long long>(plugged_calls),
              plugged.total_deviation);
  const bool same_medoids = vanilla.medoids == plugged.medoids;
  std::printf("  identical medoids: %s;  calls saved: %.1f%%\n",
              same_medoids ? "yes" : "NO (bug!)",
              100.0 *
                  (static_cast<double>(vanilla_calls) -
                   static_cast<double>(plugged_calls)) /
                  static_cast<double>(vanilla_calls));
  std::printf("  medoid ids:");
  for (const ObjectId m : plugged.medoids) std::printf(" %u", m);
  std::printf("\n");
  return same_medoids ? 0 : 1;
}
