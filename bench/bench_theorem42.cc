// Empirical validation of the paper's Theorem 4.2: the expected Tri Scheme
// lookup cost is O(m/n) — linear in the average degree of the partial
// graph. We fix n, sweep the number of resolved edges m, and measure both
// the mean work per query (common-neighbor merge steps, i.e. deg(i) +
// deg(j) touches) and the wall time per query. Both should scale linearly
// with m/n; the table prints their ratios so the constancy is visible.
//
// Flags: --n=512  --queries=4000  --seed=42

#include <cstdio>
#include <random>
#include <vector>

#include "bench/common.h"
#include "bounds/resolver.h"
#include "bounds/tri.h"
#include "core/stats.h"
#include "harness/flags.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 512));
  const size_t queries = static_cast<size_t>(flags->GetInt("queries", 4000));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Dataset dataset = MakeSfPoiLike(n, seed);
  TablePrinter table({"m (edges)", "m/n", "mean deg(i)+deg(j)", "ns/query",
                      "ns per (m/n)"});

  for (const double fraction : {0.01, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    PartialDistanceGraph graph(n);
    BoundedResolver resolver(dataset.oracle.get(), &graph);
    const size_t target = static_cast<size_t>(
        fraction * static_cast<double>(benchutil::PairCount(n)));
    std::mt19937_64 rng(seed + 1);
    while (graph.num_edges() < target) {
      const ObjectId i = static_cast<ObjectId>(rng() % n);
      const ObjectId j = static_cast<ObjectId>(rng() % n);
      if (i == j || graph.Has(i, j)) continue;
      resolver.Distance(i, j);
    }

    // Sample unknown pairs uniformly (Theorem 4.2's uninformed prior).
    std::vector<std::pair<ObjectId, ObjectId>> sample;
    while (sample.size() < queries) {
      const ObjectId i = static_cast<ObjectId>(rng() % n);
      const ObjectId j = static_cast<ObjectId>(rng() % n);
      if (i == j || graph.Has(i, j)) continue;
      sample.emplace_back(i, j);
    }

    double total_degree = 0.0;
    for (const auto& [i, j] : sample) {
      total_degree += static_cast<double>(graph.Degree(i) + graph.Degree(j));
    }

    TriBounder tri(&graph);
    Stopwatch watch;
    double sink = 0.0;
    for (const auto& [i, j] : sample) {
      sink += tri.Bounds(i, j).lo;
    }
    const double ns =
        watch.ElapsedSeconds() * 1e9 / static_cast<double>(queries);
    if (sink < -1.0) std::printf("impossible\n");  // keep the loop live

    const double m_over_n =
        static_cast<double>(graph.num_edges()) / static_cast<double>(n);
    table.NewRow()
        .AddUint(graph.num_edges())
        .AddDouble(m_over_n, 1)
        .AddDouble(total_degree / static_cast<double>(queries), 1)
        .AddDouble(ns, 1)
        .AddDouble(ns / m_over_n, 2);
  }
  table.Print(
      "Theorem 4.2 — expected Tri lookup cost is O(m/n): the last column "
      "(time normalized by m/n) should be roughly constant");
  return 0;
}
