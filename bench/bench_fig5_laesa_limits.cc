// Reproduces paper Figure 5: limitations of the landmark baselines.
//  (a) LAESA/TLAESA answer bound queries fastest but with the loosest
//      bounds (companion to Figure 3a; here we report the save-up each
//      scheme actually achieves inside Prim at the same landmark budget),
//  (b) the "ideal number of landmarks" problem: total oracle calls as a
//      function of the landmark count form a U-shape whose minimum varies
//      by dataset and algorithm, with no way to know it in advance. The
//      bootstrapped Tri Scheme is far less sensitive: landmark edges are
//      just seed triangles.
//
// Flags: --n=512  --seed=42

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "bounds/pivots.h"
#include "harness/flags.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 512));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Dataset dataset = MakeSfPoiLike(n, seed);
  const Workload workload = benchutil::PrimWorkload();
  const uint32_t logn = DefaultNumLandmarks(n);

  // --- (b) landmark count sweep ---
  std::vector<uint32_t> ks = {2, logn / 2, logn, 2 * logn, 3 * logn,
                              4 * logn, 6 * logn};
  TablePrinter sweep({"# landmarks", "LAESA calls", "TLAESA calls",
                      "Tri (bootstrap k) calls"});
  double reference_value = 0.0;
  bool have_reference = false;
  for (const uint32_t k : ks) {
    if (k == 0) continue;
    auto run = [&](SchemeKind scheme, bool bootstrap) {
      WorkloadConfig config;
      config.scheme = scheme;
      config.bootstrap = bootstrap;
      config.num_landmarks = k;
      config.seed = seed;
      return RunWorkload(dataset.oracle.get(), config, workload);
    };
    const WorkloadResult laesa = run(SchemeKind::kLaesa, false);
    const WorkloadResult tlaesa = run(SchemeKind::kTlaesa, false);
    const WorkloadResult tri = run(SchemeKind::kTri, true);
    if (!have_reference) {
      reference_value = laesa.value;
      have_reference = true;
    }
    for (const WorkloadResult* r : {&laesa, &tlaesa, &tri}) {
      benchutil::CheckSameResult(reference_value, r->value, "fig5 sweep");
    }
    sweep.NewRow()
        .AddUint(k)
        .AddUint(laesa.total_calls)
        .AddUint(tlaesa.total_calls)
        .AddUint(tri.total_calls);
  }
  sweep.Print(
      "Figure 5b — the ideal-#landmarks selection problem (Prim, SF-like): "
      "LAESA/TLAESA totals are U-shaped in k; Tri is insensitive");

  // --- (a) at the default budget, quality vs speed inside the algorithm ---
  TablePrinter summary({"scheme", "total calls", "save vs without (%)",
                        "CPU overhead (s)"});
  WorkloadConfig none;
  none.scheme = SchemeKind::kNone;
  none.seed = seed;
  const WorkloadResult base = RunWorkload(dataset.oracle.get(), none, workload);
  for (const auto& [label, scheme, bootstrap] :
       {std::tuple<const char*, SchemeKind, bool>{"tri", SchemeKind::kTri,
                                                  true},
        {"laesa", SchemeKind::kLaesa, false},
        {"tlaesa", SchemeKind::kTlaesa, false}}) {
    WorkloadConfig config;
    config.scheme = scheme;
    config.bootstrap = bootstrap;
    config.num_landmarks = logn;
    config.seed = seed;
    const WorkloadResult r = RunWorkload(dataset.oracle.get(), config, workload);
    benchutil::CheckSameResult(base.value, r.value, "fig5 summary");
    summary.NewRow()
        .AddCell(label)
        .AddUint(r.total_calls)
        .AddPercent(SaveFraction(r.total_calls, base.total_calls))
        .AddDouble(r.stats.bounder_seconds, 4);
  }
  summary.Print(
      "\nFigure 5a — fast-but-loose: landmark schemes spend the least CPU "
      "but save the fewest oracle calls (k = log2 n)");
  return 0;
}
