// Cross-workload warm start through the persistent distance store: a kNN
// graph, an MST and a k-medoid clustering run back to back over ONE shared
// store (the paper's motivating pipeline — several proximity problems over
// the same expensive metric space). Each workload first runs cold and
// storeless to establish its baseline call count, then as part of the
// shared-store sequence, where everything an earlier workload already paid
// for is answered from disk. Checksums are asserted identical between the
// two, so the store's reuse is provably exact, not approximate.
//
// Flags: --sizes=128,256   --seed=42   --dataset=sf
//        --k=4 (kNN)       --l=5 (PAM medoids)

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/logging.h"
#include "harness/flags.h"
#include "harness/table.h"
#include "store/distance_store.h"

namespace {

using metricprox::Dataset;
using metricprox::DistanceStore;
using metricprox::MakeStoreFingerprint;
using metricprox::ObjectId;
using metricprox::RunWorkload;
using metricprox::SchemeKind;
using metricprox::StatusOr;
using metricprox::StoreFingerprint;
using metricprox::TablePrinter;
using metricprox::Workload;
using metricprox::WorkloadConfig;
using metricprox::WorkloadResult;
using metricprox::benchutil::CheckSameResult;
using metricprox::benchutil::PairCount;

std::vector<ObjectId> ParseSizes(const std::string& csv) {
  std::vector<ObjectId> sizes;
  size_t begin = 0;
  while (begin < csv.size()) {
    size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    sizes.push_back(
        static_cast<ObjectId>(std::stoul(csv.substr(begin, end - begin))));
    begin = end + 1;
  }
  return sizes;
}

struct Stage {
  std::string label;
  Workload workload;
};

void RunSequence(const Dataset& dataset, ObjectId n, uint64_t seed,
                 uint32_t k, uint32_t l) {
  const std::vector<Stage> stages = {
      {"knn-graph", metricprox::benchutil::KnnWorkload(k)},
      {"mst-prim", metricprox::benchutil::PrimWorkload()},
      {"pam-medoid", metricprox::benchutil::PamWorkload(l)},
  };

  WorkloadConfig config;
  config.scheme = SchemeKind::kTri;
  config.bootstrap = true;
  config.seed = seed;
  config.max_distance = dataset.max_distance;

  // One store for the whole sequence, fingerprinted like the CLI does.
  const std::string base =
      std::filesystem::temp_directory_path() /
      ("bench_warm_start_" + std::to_string(n));
  std::filesystem::remove(DistanceStore::SnapshotPath(base));
  std::filesystem::remove(DistanceStore::WalPath(base));
  const StoreFingerprint fp = MakeStoreFingerprint(
      "bench=warm-start;dataset=" + dataset.name + ";n=" +
          std::to_string(n) + ";seed=" + std::to_string(seed),
      n);
  StatusOr<std::unique_ptr<DistanceStore>> store = DistanceStore::Open(base, fp);
  CHECK(store.ok()) << store.status();

  TablePrinter table({"workload", "cold calls", "shared-store calls",
                      "store edges", "saved (%)"});
  uint64_t cold_total = 0;
  uint64_t warm_total = 0;
  for (const Stage& stage : stages) {
    config.store = nullptr;
    const WorkloadResult cold =
        RunWorkload(dataset.oracle.get(), config, stage.workload);

    config.store = store->get();
    const WorkloadResult warm =
        RunWorkload(dataset.oracle.get(), config, stage.workload);
    CheckSameResult(cold.value, warm.value,
                    stage.label + " via shared store (n=" +
                        std::to_string(n) + ")");

    cold_total += cold.total_calls;
    warm_total += warm.total_calls;
    table.NewRow()
        .AddCell(stage.label)
        .AddUint(cold.total_calls)
        .AddUint(warm.total_calls)
        .AddUint((*store)->size())
        .AddPercent(metricprox::SaveFraction(warm.total_calls,
                                             cold.total_calls));
  }
  table.NewRow()
      .AddCell("TOTAL")
      .AddUint(cold_total)
      .AddUint(warm_total)
      .AddUint((*store)->size())
      .AddPercent(metricprox::SaveFraction(warm_total, cold_total));
  table.Print(dataset.name + ", n=" + std::to_string(n) + " (" +
              std::to_string(PairCount(n)) + " pairs), knn(k=" +
              std::to_string(k) + ") -> mst -> pam(l=" + std::to_string(l) +
              ") over one store");

  const metricprox::Status closed = (*store)->Close();
  CHECK(closed.ok()) << closed;
  std::filesystem::remove(DistanceStore::SnapshotPath(base));
  std::filesystem::remove(DistanceStore::WalPath(base));
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = metricprox::Flags::Parse(argc, argv);
  CHECK(flags.ok()) << flags.status();
  const std::vector<ObjectId> sizes =
      ParseSizes(flags->GetString("sizes", "128,256"));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  const std::string dataset_name = flags->GetString("dataset", "sf");
  const uint32_t k = static_cast<uint32_t>(flags->GetInt("k", 4));
  const uint32_t l = static_cast<uint32_t>(flags->GetInt("l", 5));

  std::printf("Cross-workload warm start: each workload cold/storeless vs "
              "inside a shared-store sequence.\nChecksums are asserted "
              "identical; every saved call is answered from disk.\n");
  for (const ObjectId n : sizes) {
    Dataset dataset =
        dataset_name == "random"
            ? metricprox::MakeRandomMetric(n, seed)
            : dataset_name == "urbangb"
                ? metricprox::MakeUrbanGbLike(n, seed)
                : metricprox::MakeSfPoiLike(n, seed);
    RunSequence(dataset, n, seed, k, l);
  }
  return 0;
}
