// Reproduces paper Figure 9: sensitivity to the proximity algorithms' own
// parameters, and the CPU-overhead side of the trade (fewer oracle calls at
// the price of more local computation).
//  (a) KNNrp distance calls as k grows,
//  (b) PAM local CPU overhead as l grows,
//  (c) CLARANS local CPU overhead as l grows,
//  (d) KNNrp local CPU overhead as k grows.
// "CPU overhead" = time spent inside the bound scheme (bounds + updates),
// the paper's total-minus-oracle time.
//
// Flags: --n=384  --n-cluster=192  --seed=42

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "harness/flags.h"
#include "harness/table.h"

namespace {

using metricprox::Dataset;
using metricprox::ObjectId;
using metricprox::SchemeKind;
using metricprox::Workload;
using metricprox::WorkloadConfig;
using metricprox::WorkloadResult;

struct SchemeOutcome {
  uint64_t calls;
  double overhead_seconds;
};

SchemeOutcome RunScheme(Dataset* dataset, SchemeKind scheme, bool bootstrap,
                        const Workload& workload, uint64_t seed,
                        double* checksum) {
  WorkloadConfig config;
  config.scheme = scheme;
  config.bootstrap = bootstrap;
  config.seed = seed;
  const WorkloadResult r = RunWorkload(dataset->oracle.get(), config, workload);
  if (*checksum == 0.0) {
    *checksum = r.value;
  } else {
    metricprox::benchutil::CheckSameResult(*checksum, r.value, "fig9");
  }
  return SchemeOutcome{r.total_calls, r.stats.bounder_seconds};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 384));
  const ObjectId n_cluster =
      static_cast<ObjectId>(flags->GetInt("n-cluster", 192));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // --- (a) + (d): KNNrp varying k ---
  {
    Dataset dataset = MakeSfPoiLike(n, seed);
    TablePrinter table({"k", "without-plug calls", "tri calls", "laesa calls",
                        "tri CPU overhead (s)", "laesa CPU overhead (s)"});
    for (const uint32_t k : {1u, 3u, 5u, 10u, 15u, 20u}) {
      const Workload workload = benchutil::KnnWorkload(k);
      double checksum = 0.0;
      const SchemeOutcome none =
          RunScheme(&dataset, SchemeKind::kNone, false, workload, seed,
                    &checksum);
      const SchemeOutcome tri = RunScheme(&dataset, SchemeKind::kTri, true,
                                          workload, seed, &checksum);
      const SchemeOutcome laesa = RunScheme(
          &dataset, SchemeKind::kLaesa, false, workload, seed, &checksum);
      table.NewRow()
          .AddUint(k)
          .AddUint(none.calls)
          .AddUint(tri.calls)
          .AddUint(laesa.calls)
          .AddDouble(tri.overhead_seconds, 4)
          .AddDouble(laesa.overhead_seconds, 4);
    }
    table.Print(
        "Figure 9a/9d — KNNrp: distance calls and local CPU overhead vs k "
        "(SF-POI-like)");
    std::printf("\n");
  }

  // --- (b) + (c): PAM / CLARANS varying l ---
  for (const bool clarans : {false, true}) {
    Dataset dataset = MakeSfPoiLike(n_cluster, seed);
    TablePrinter table({"l", "tri calls", "tri CPU overhead (s)",
                        "laesa calls", "laesa CPU overhead (s)"});
    for (const uint32_t l : {4u, 8u, 10u, 14u, 20u}) {
      const Workload workload =
          clarans ? benchutil::ClaransWorkload(l, seed + 9)
                  : benchutil::PamWorkload(l);
      double checksum = 0.0;
      const SchemeOutcome tri = RunScheme(&dataset, SchemeKind::kTri, true,
                                          workload, seed, &checksum);
      const SchemeOutcome laesa = RunScheme(
          &dataset, SchemeKind::kLaesa, false, workload, seed, &checksum);
      table.NewRow()
          .AddUint(l)
          .AddUint(tri.calls)
          .AddDouble(tri.overhead_seconds, 4)
          .AddUint(laesa.calls)
          .AddDouble(laesa.overhead_seconds, 4);
    }
    table.Print(clarans ? "Figure 9c — CLARANS local CPU overhead vs l "
                          "(SF-POI-like)"
                        : "Figure 9b — PAM local CPU overhead vs l "
                          "(SF-POI-like)");
    std::printf("\n");
  }
  return 0;
}
