// Beyond the paper's figures: how does the *plug-in framework* compare
// with classical metric *index structures* (related work §6.1) on the
// all-k-NN workload? Indexes pay a construction phase and answer queries
// with their own triangle pruning; the framework pays nothing up front
// (or a landmark bootstrap) and prunes through evolving bounds. All
// distance calls are routed through a shared BoundedResolver so caching is
// identical and counts are comparable.
//
//  (a) SF-POI-like road metric: VP-tree vs Tri-plugged k-NN build,
//  (b) DNA edit distance (integer metric): BK-tree vs VP-tree vs Tri.
//
// Flags: --n=384  --k=5  --seed=42

#include <cstdio>

#include "algo/knn_graph.h"
#include "bench/common.h"
#include "bounds/pivots.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "harness/flags.h"
#include "harness/table.h"
#include "index/bktree.h"
#include "index/fqt.h"
#include "index/gnat.h"
#include "index/mtree.h"
#include "index/vptree.h"

namespace {

using namespace metricprox;

struct Outcome {
  uint64_t construction_calls;
  uint64_t query_calls;
  double checksum;
};

double Checksum(const std::vector<KnnNeighbor>& neighbors) {
  double acc = 0.0;
  for (const KnnNeighbor& nb : neighbors) acc += nb.distance;
  return acc;
}

// All-k-NN through an index built and queried via a caching resolver.
template <typename MakeIndex, typename Query>
Outcome RunIndex(DistanceOracle* oracle, MakeIndex&& make_index,
                 Query&& query) {
  PartialDistanceGraph graph(oracle->num_objects());
  BoundedResolver resolver(oracle, &graph);
  const ResolveFn resolve = [&resolver](ObjectId a, ObjectId b) {
    return resolver.Distance(a, b);
  };
  auto index = make_index(resolve);
  Outcome out;
  out.construction_calls = resolver.stats().oracle_calls;
  out.checksum = 0.0;
  for (ObjectId q = 0; q < oracle->num_objects(); ++q) {
    out.checksum += Checksum(query(index, q, resolve));
  }
  out.query_calls = resolver.stats().oracle_calls - out.construction_calls;
  return out;
}

Outcome RunFramework(DistanceOracle* oracle, uint32_t k, uint64_t seed) {
  PartialDistanceGraph graph(oracle->num_objects());
  BoundedResolver resolver(oracle, &graph);
  BootstrapWithLandmarks(&resolver, DefaultNumLandmarks(oracle->num_objects()),
                         seed);
  SchemeOptions options;
  auto scheme = MakeAndAttachScheme(SchemeKind::kTri, &resolver, options);
  CHECK(scheme.ok()) << scheme.status();
  Outcome out;
  out.construction_calls = resolver.stats().oracle_calls;
  const KnnGraph knn = BuildKnnGraph(&resolver, KnnGraphOptions{k});
  out.checksum = 0.0;
  for (const auto& neighbors : knn) out.checksum += Checksum(neighbors);
  out.query_calls = resolver.stats().oracle_calls - out.construction_calls;
  return out;
}

void EmitRow(TablePrinter* table, const char* label, const Outcome& o) {
  table->NewRow()
      .AddCell(label)
      .AddUint(o.construction_calls)
      .AddUint(o.query_calls)
      .AddUint(o.construction_calls + o.query_calls);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 384));
  const uint32_t k = static_cast<uint32_t>(flags->GetInt("k", 5));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // --- (a) road metric ---
  {
    Dataset dataset = MakeSfPoiLike(n, seed);
    const Outcome framework = RunFramework(dataset.oracle.get(), k, seed);
    const Outcome vptree = RunIndex(
        dataset.oracle.get(),
        [&](const ResolveFn& resolve) {
          return VpTree(n, VpTreeOptions{8, seed}, resolve);
        },
        [&](const VpTree& tree, ObjectId q, const ResolveFn& resolve) {
          return tree.Knn(q, k, resolve);
        });
    const Outcome mtree = RunIndex(
        dataset.oracle.get(),
        [&](const ResolveFn& resolve) {
          return MTree(n, MTreeOptions{}, resolve);
        },
        [&](const MTree& tree, ObjectId q, const ResolveFn& resolve) {
          return tree.Knn(q, k, resolve);
        });
    benchutil::CheckSameResult(framework.checksum, vptree.checksum,
                               "index bench road");
    const Outcome gnat = RunIndex(
        dataset.oracle.get(),
        [&](const ResolveFn& resolve) {
          GnatOptions gnat_options;
          gnat_options.seed = seed;
          return Gnat(n, gnat_options, resolve);
        },
        [&](const Gnat& tree, ObjectId q, const ResolveFn& resolve) {
          return tree.Knn(q, k, resolve);
        });
    benchutil::CheckSameResult(framework.checksum, mtree.checksum,
                               "index bench road mtree");
    benchutil::CheckSameResult(framework.checksum, gnat.checksum,
                               "index bench road gnat");
    TablePrinter table({"method", "construction calls", "query calls",
                        "total calls"});
    EmitRow(&table, "framework (tri+bootstrap)", framework);
    EmitRow(&table, "vp-tree", vptree);
    EmitRow(&table, "m-tree", mtree);
    EmitRow(&table, "gnat", gnat);
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Index baselines (a) — all-%u-NN, SF-POI-like, n=%u", k, n);
    table.Print(title);
    std::printf("\n");
  }

  // --- (b) integer edit-distance metric ---
  {
    Dataset dataset = MakeDnaLike(n / 2, /*length=*/64, seed);
    const ObjectId dn = dataset.oracle->num_objects();
    const Outcome framework = RunFramework(dataset.oracle.get(), k, seed);
    const Outcome vptree = RunIndex(
        dataset.oracle.get(),
        [&](const ResolveFn& resolve) {
          return VpTree(dn, VpTreeOptions{8, seed}, resolve);
        },
        [&](const VpTree& tree, ObjectId q, const ResolveFn& resolve) {
          return tree.Knn(q, k, resolve);
        });
    const Outcome bktree = RunIndex(
        dataset.oracle.get(),
        [&](const ResolveFn& resolve) { return BkTree(dn, resolve); },
        [&](const BkTree& tree, ObjectId q, const ResolveFn& resolve) {
          return tree.Knn(q, k, resolve);
        });
    const Outcome mtree = RunIndex(
        dataset.oracle.get(),
        [&](const ResolveFn& resolve) {
          return MTree(dn, MTreeOptions{}, resolve);
        },
        [&](const MTree& tree, ObjectId q, const ResolveFn& resolve) {
          return tree.Knn(q, k, resolve);
        });
    benchutil::CheckSameResult(framework.checksum, vptree.checksum,
                               "index bench dna vpt");
    benchutil::CheckSameResult(framework.checksum, bktree.checksum,
                               "index bench dna bkt");
    const Outcome fqt = RunIndex(
        dataset.oracle.get(),
        [&](const ResolveFn& resolve) {
          FqtOptions fqt_options;
          fqt_options.seed = seed;
          return Fqt(dn, fqt_options, resolve);
        },
        [&](const Fqt& tree, ObjectId q, const ResolveFn& resolve) {
          return tree.Knn(q, k, resolve);
        });
    benchutil::CheckSameResult(framework.checksum, mtree.checksum,
                               "index bench dna mtree");
    benchutil::CheckSameResult(framework.checksum, fqt.checksum,
                               "index bench dna fqt");
    TablePrinter table({"method", "construction calls", "query calls",
                        "total calls"});
    EmitRow(&table, "framework (tri+bootstrap)", framework);
    EmitRow(&table, "vp-tree", vptree);
    EmitRow(&table, "m-tree", mtree);
    EmitRow(&table, "bk-tree", bktree);
    EmitRow(&table, "fqt", fqt);
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Index baselines (b) — all-%u-NN, DNA edit distance, n=%u",
                  k, dn);
    table.Print(title);
  }
  return 0;
}
