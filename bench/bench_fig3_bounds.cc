// Reproduces paper Figure 3: quality and cost of the bound schemes.
//  (a) relative error of each scheme's bounds vs ADM's exact bounds
//      (SPLUB must be 0; Tri much tighter than LAESA/TLAESA),
//  (b) Tri Scheme's LB-UB gap shrinking as the number of resolved edges
//      grows,
//  (c) per-query / per-update CPU time (ADM not scalable; SPLUB exact but
//      slower than Tri; Tri orders of magnitude faster).
//
// Flags: --n=384  --queries=1500  --seed=42

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "bench/common.h"
#include "bounds/adm.h"
#include "bounds/laesa.h"
#include "bounds/pivots.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "bounds/splub.h"
#include "bounds/tlaesa.h"
#include "bounds/tri.h"
#include "core/stats.h"
#include "harness/flags.h"
#include "harness/table.h"

namespace metricprox {
namespace {

struct QueryPair {
  ObjectId i;
  ObjectId j;
};

// Resolves random extra pairs so the shared partial graph looks like a
// mid-run proximity algorithm's.
void FillWithRandomEdges(BoundedResolver* resolver, size_t target_edges,
                         uint64_t seed) {
  std::mt19937_64 rng(seed + 1);
  const ObjectId n = resolver->num_objects();
  while (resolver->graph().num_edges() < target_edges) {
    const ObjectId i = static_cast<ObjectId>(rng() % n);
    const ObjectId j = static_cast<ObjectId>(rng() % n);
    if (i == j || resolver->Known(i, j)) continue;
    resolver->Distance(i, j);
  }
}

std::vector<QueryPair> SampleUnknownPairs(const PartialDistanceGraph& graph,
                                          size_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<QueryPair> pairs;
  const ObjectId n = graph.num_objects();
  while (pairs.size() < count) {
    const ObjectId i = static_cast<ObjectId>(rng() % n);
    const ObjectId j = static_cast<ObjectId>(rng() % n);
    if (i == j || graph.Has(i, j)) continue;
    pairs.push_back(QueryPair{i, j});
  }
  return pairs;
}

struct QualityRow {
  double lb_rel_err = 0.0;   // mean (lb_adm - lb) / lb_adm over lb_adm > 0
  double ub_rel_err = 0.0;   // mean (ub - ub_adm) / ub_adm
  double micros_per_query = 0.0;
};

QualityRow MeasureScheme(Bounder* bounder, const std::vector<QueryPair>& q,
                         const std::vector<Interval>& adm_bounds) {
  QualityRow row;
  size_t lb_samples = 0;
  Stopwatch watch;
  for (size_t idx = 0; idx < q.size(); ++idx) {
    const Interval b = bounder->Bounds(q[idx].i, q[idx].j);
    const Interval& exact = adm_bounds[idx];
    if (exact.lo > 1e-12) {
      row.lb_rel_err += (exact.lo - b.lo) / exact.lo;
      ++lb_samples;
    }
    if (exact.hi > 1e-12 && b.hi != kInfDistance) {
      row.ub_rel_err += (b.hi - exact.hi) / exact.hi;
    }
  }
  row.micros_per_query =
      watch.ElapsedSeconds() * 1e6 / static_cast<double>(q.size());
  if (lb_samples > 0) row.lb_rel_err /= static_cast<double>(lb_samples);
  row.ub_rel_err /= static_cast<double>(q.size());
  return row;
}

}  // namespace
}  // namespace metricprox

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 384));
  const size_t queries = static_cast<size_t>(flags->GetInt("queries", 1500));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Dataset dataset = MakeSfPoiLike(n, seed);
  PartialDistanceGraph graph(n);
  BoundedResolver resolver(dataset.oracle.get(), &graph);

  // Baseline construction is routed through the resolver so every distance
  // the landmark schemes precompute is also visible to the graph-reading
  // schemes — ADM's bounds are then tightest by construction, and relative
  // errors are guaranteed non-negative (an apples-to-apples information
  // budget).
  const ResolveFn via_resolver = [&](ObjectId a, ObjectId b) {
    return resolver.Distance(a, b);
  };
  auto laesa =
      LaesaBounder::Build(n, DefaultNumLandmarks(n), via_resolver, seed);
  TlaesaBounder::Options tl_options;
  tl_options.seed = seed;
  auto tlaesa = TlaesaBounder::Build(n, tl_options, via_resolver);

  const size_t target_edges = benchutil::PairCount(n) / 20;  // 5% resolved
  FillWithRandomEdges(&resolver, target_edges, seed);
  const std::vector<QueryPair> q =
      SampleUnknownPairs(graph, queries, seed + 2);

  // --- (a) bound quality vs ADM + (c) per-query time ---
  Stopwatch adm_build_watch;
  AdmBounder adm(&graph);
  const double adm_update_seconds = adm_build_watch.ElapsedSeconds();

  std::vector<Interval> adm_bounds;
  adm_bounds.reserve(q.size());
  Stopwatch adm_query_watch;
  for (const QueryPair& p : q) adm_bounds.push_back(adm.Bounds(p.i, p.j));
  const double adm_micros =
      adm_query_watch.ElapsedSeconds() * 1e6 / static_cast<double>(q.size());

  SplubBounder splub(&graph);
  TriBounder tri(&graph);

  const QualityRow splub_row = MeasureScheme(&splub, q, adm_bounds);
  const QualityRow tri_row = MeasureScheme(&tri, q, adm_bounds);
  const QualityRow laesa_row = MeasureScheme(laesa.get(), q, adm_bounds);
  const QualityRow tlaesa_row = MeasureScheme(tlaesa.get(), q, adm_bounds);

  TablePrinter quality({"scheme", "LB rel.err vs ADM", "UB rel.err vs ADM",
                        "us/query"});
  quality.NewRow().AddCell("adm").AddDouble(0.0, 4).AddDouble(0.0, 4).AddDouble(
      adm_micros, 2);
  quality.NewRow()
      .AddCell("splub")
      .AddDouble(splub_row.lb_rel_err, 4)
      .AddDouble(splub_row.ub_rel_err, 4)
      .AddDouble(splub_row.micros_per_query, 2);
  quality.NewRow()
      .AddCell("tri")
      .AddDouble(tri_row.lb_rel_err, 4)
      .AddDouble(tri_row.ub_rel_err, 4)
      .AddDouble(tri_row.micros_per_query, 2);
  quality.NewRow()
      .AddCell("laesa")
      .AddDouble(laesa_row.lb_rel_err, 4)
      .AddDouble(laesa_row.ub_rel_err, 4)
      .AddDouble(laesa_row.micros_per_query, 2);
  quality.NewRow()
      .AddCell("tlaesa")
      .AddDouble(tlaesa_row.lb_rel_err, 4)
      .AddDouble(tlaesa_row.ub_rel_err, 4)
      .AddDouble(tlaesa_row.micros_per_query, 2);
  quality.Print(
      "Figure 3a/3c — bound quality vs ADM and per-query CPU time "
      "(SF-like, 5% of pairs resolved)");
  std::printf("ADM one-time matrix construction: %.3f s (O(n^2) per update)\n\n",
              adm_update_seconds);

  // SPLUB must equal ADM exactly (paper Section 5.2(2)).
  for (size_t idx = 0; idx < q.size(); ++idx) {
    const Interval s = splub.Bounds(q[idx].i, q[idx].j);
    benchutil::CheckSameResult(adm_bounds[idx].lo, s.lo, "fig3 splub lb");
    if (adm_bounds[idx].hi != kInfDistance) {
      benchutil::CheckSameResult(adm_bounds[idx].hi, s.hi, "fig3 splub ub");
    }
  }

  // --- (b) Tri gap vs number of resolved edges ---
  TablePrinter gap({"# resolved edges", "% of pairs", "Tri mean LB", "Tri mean UB",
                    "mean (UB-LB) gap"});
  for (const double fraction : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    PartialDistanceGraph g2(n);
    BoundedResolver r2(dataset.oracle.get(), &g2);
    const size_t target =
        static_cast<size_t>(fraction * static_cast<double>(benchutil::PairCount(n)));
    FillWithRandomEdges(&r2, target, seed);
    TriBounder tri2(&g2);
    const std::vector<QueryPair> q2 = SampleUnknownPairs(g2, queries, seed + 3);
    double mean_lb = 0.0;
    double mean_ub = 0.0;
    double mean_gap = 0.0;
    size_t finite = 0;
    for (const QueryPair& p : q2) {
      const Interval b = tri2.Bounds(p.i, p.j);
      if (b.hi == kInfDistance) continue;
      mean_lb += b.lo;
      mean_ub += b.hi;
      mean_gap += b.hi - b.lo;
      ++finite;
    }
    if (finite > 0) {
      mean_lb /= static_cast<double>(finite);
      mean_ub /= static_cast<double>(finite);
      mean_gap /= static_cast<double>(finite);
    }
    gap.NewRow()
        .AddUint(g2.num_edges())
        .AddPercent(fraction)
        .AddDouble(mean_lb, 3)
        .AddDouble(mean_ub, 3)
        .AddDouble(mean_gap, 3);
  }
  gap.Print("Figure 3b — Tri Scheme LB-UB gap vs resolved edges (SF-like)");
  return 0;
}
