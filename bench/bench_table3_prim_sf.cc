// Reproduces paper Table 3: expensive oracle-call counts for Prim's
// algorithm on the SF-POI-like road-network dataset (same columns as
// Table 2 / bench_table2_prim_urbangb).
//
// Flags: --sizes=64,128,256,512,1024   --seed=42

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "harness/flags.h"

namespace {

std::vector<metricprox::ObjectId> ParseSizes(const std::string& csv) {
  std::vector<metricprox::ObjectId> sizes;
  std::stringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    sizes.push_back(static_cast<metricprox::ObjectId>(std::stoul(token)));
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = metricprox::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const std::vector<metricprox::ObjectId> sizes =
      ParseSizes(flags->GetString("sizes", "64,128,256,512,1024"));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  const metricprox::Status unused = flags->FailOnUnused();
  if (!unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }

  metricprox::benchutil::RunPrimOracleCallTable(
      "Table 3 — SF-POI-like [oracle call count], Prim's algorithm, "
      "k = log2(n)",
      [](metricprox::ObjectId n, uint64_t s) {
        return metricprox::MakeSfPoiLike(n, s);
      },
      sizes, seed);
  return 0;
}
