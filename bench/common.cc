#include "bench/common.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "algo/clarans.h"
#include "bounds/pivots.h"
#include "harness/table.h"
#include "algo/knn_graph.h"
#include "algo/kruskal.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "core/logging.h"
#include "obs/trace.h"

namespace metricprox {
namespace benchutil {

Workload PrimWorkload() {
  return [](BoundedResolver* resolver) {
    return PrimMst(resolver).total_weight;
  };
}

Workload KruskalWorkload() {
  return [](BoundedResolver* resolver) {
    return KruskalMst(resolver).total_weight;
  };
}

Workload KnnWorkload(uint32_t k) {
  return [k](BoundedResolver* resolver) {
    const KnnGraph graph = BuildKnnGraph(resolver, KnnGraphOptions{k});
    double checksum = 0.0;
    for (const auto& neighbors : graph) {
      for (const KnnNeighbor& nb : neighbors) checksum += nb.distance;
    }
    return checksum;
  };
}

Workload PamWorkload(uint32_t num_medoids) {
  return [num_medoids](BoundedResolver* resolver) {
    PamOptions options;
    options.num_medoids = num_medoids;
    return PamCluster(resolver, options).total_deviation;
  };
}

Workload ClaransWorkload(uint32_t num_medoids, uint64_t seed) {
  return [num_medoids, seed](BoundedResolver* resolver) {
    ClaransOptions options;
    options.num_medoids = num_medoids;
    options.seed = seed;
    return ClaransCluster(resolver, options).total_deviation;
  };
}

std::vector<SchemeRow> StandardSchemes(uint64_t seed) {
  std::vector<SchemeRow> rows;
  {
    WorkloadConfig config;
    config.scheme = SchemeKind::kNone;
    config.seed = seed;
    rows.push_back({"without-plug", config});
  }
  {
    WorkloadConfig config;
    config.scheme = SchemeKind::kTri;
    config.seed = seed;
    rows.push_back({"ts-nb", config});
  }
  {
    WorkloadConfig config;
    config.scheme = SchemeKind::kTri;
    config.bootstrap = true;
    config.seed = seed;
    rows.push_back({"tri", config});
  }
  {
    WorkloadConfig config;
    config.scheme = SchemeKind::kLaesa;
    config.seed = seed;
    rows.push_back({"laesa", config});
  }
  {
    WorkloadConfig config;
    config.scheme = SchemeKind::kTlaesa;
    config.seed = seed;
    rows.push_back({"tlaesa", config});
  }
  return rows;
}

void CheckSameResult(double a, double b, const std::string& context) {
  const double tolerance = 1e-6 * (1.0 + std::abs(a));
  CHECK_LE(std::abs(a - b), tolerance)
      << "exactness violated in " << context << ": " << a << " vs " << b;
}

BenchJson::BenchJson(std::string title) : title_(std::move(title)) {
  // Slug: lowercase alphanumerics, every other run of characters -> one '_'.
  bool pending_sep = false;
  for (const char c : title_) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !slug_.empty()) slug_.push_back('_');
      pending_sep = false;
      slug_.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else {
      pending_sep = true;
    }
  }
  if (slug_.empty()) slug_ = "bench";
}

BenchJson& BenchJson::NewRow() {
  rows_.emplace_back();
  return *this;
}

BenchJson& BenchJson::Add(const std::string& key, uint64_t value) {
  CHECK(!rows_.empty()) << "Add before NewRow";
  std::string member;
  obsjson::AppendString(&member, key);
  member += ':';
  member += std::to_string(value);
  rows_.back().push_back(std::move(member));
  return *this;
}

BenchJson& BenchJson::Add(const std::string& key, double value) {
  CHECK(!rows_.empty()) << "Add before NewRow";
  std::string member;
  obsjson::AppendString(&member, key);
  member += ':';
  obsjson::AppendDouble(&member, value);
  rows_.back().push_back(std::move(member));
  return *this;
}

BenchJson& BenchJson::Add(const std::string& key, const std::string& value) {
  CHECK(!rows_.empty()) << "Add before NewRow";
  std::string member;
  obsjson::AppendString(&member, key);
  member += ':';
  obsjson::AppendString(&member, value);
  rows_.back().push_back(std::move(member));
  return *this;
}

std::string BenchJson::ToJson() const {
  std::string out = "{\"schema\":\"metricprox-bench\",\"schema_version\":1,";
  out += "\"bench\":";
  obsjson::AppendString(&out, title_);
  out += ",\"rows\":[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ',';
    out += '{';
    for (size_t m = 0; m < rows_[r].size(); ++m) {
      if (m > 0) out += ',';
      out += rows_[r][m];
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string BenchJson::Write() const {
  const char* dir = std::getenv("METRICPROX_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return "";
  const std::string path = std::string(dir) + "/BENCH_" + slug_ + ".json";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return "";
  }
  const std::string json = ToJson() + "\n";
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  if (std::fclose(file) != 0 || !ok) {
    std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
    return "";
  }
  std::printf("bench json: %s\n", path.c_str());
  return path;
}

void RunCallCountSweep(
    const std::string& title,
    const std::function<Dataset(ObjectId, uint64_t)>& make_dataset,
    const std::function<Workload(ObjectId)>& make_workload,
    const std::vector<ObjectId>& sizes, uint64_t seed) {
  TablePrinter table({"n", "# pairs", "Without Plug", "Tri Scheme",
                      "save vs w/o (%)", "LAESA", "save (%)", "TLAESA",
                      "save (%)"});
  BenchJson json(title);
  for (const ObjectId n : sizes) {
    Dataset dataset = make_dataset(n, seed);
    const Workload workload = make_workload(n);
    auto run = [&](SchemeKind scheme, bool bootstrap) {
      WorkloadConfig config;
      config.scheme = scheme;
      config.bootstrap = bootstrap;
      config.seed = seed;
      return RunWorkload(dataset.oracle.get(), config, workload);
    };
    const WorkloadResult without = run(SchemeKind::kNone, false);
    const WorkloadResult tri = run(SchemeKind::kTri, true);
    const WorkloadResult laesa = run(SchemeKind::kLaesa, false);
    const WorkloadResult tlaesa = run(SchemeKind::kTlaesa, false);
    for (const WorkloadResult* r : {&tri, &laesa, &tlaesa}) {
      CheckSameResult(without.value, r->value, title);
    }
    table.NewRow()
        .AddUint(n)
        .AddUint(PairCount(n))
        .AddUint(without.total_calls)
        .AddUint(tri.total_calls)
        .AddPercent(SaveFraction(tri.total_calls, without.total_calls))
        .AddUint(laesa.total_calls)
        .AddPercent(SaveFraction(tri.total_calls, laesa.total_calls))
        .AddUint(tlaesa.total_calls)
        .AddPercent(SaveFraction(tri.total_calls, tlaesa.total_calls));
    json.NewRow()
        .Add("n", static_cast<uint64_t>(n))
        .Add("pairs", PairCount(n))
        .Add("without_plug_calls", without.total_calls)
        .Add("tri_calls", tri.total_calls)
        .Add("laesa_calls", laesa.total_calls)
        .Add("tlaesa_calls", tlaesa.total_calls)
        .Add("save_vs_without",
             SaveFraction(tri.total_calls, without.total_calls))
        .Add("save_vs_laesa",
             SaveFraction(tri.total_calls, laesa.total_calls))
        .Add("save_vs_tlaesa",
             SaveFraction(tri.total_calls, tlaesa.total_calls));
  }
  table.Print(title);
  std::printf("\n");
  json.Write();
}

BestBaselineResult RunBestLandmarkBaseline(DistanceOracle* oracle,
                                           SchemeKind scheme,
                                           const Workload& workload,
                                           uint64_t seed) {
  // The paper compares against "the empirically found best (lowest) count
  // for distance calls in LAESA and TLAESA": sweep multiples of log2(n)
  // and keep the cheapest run.
  const uint32_t base = DefaultNumLandmarks(oracle->num_objects());
  BestBaselineResult best;
  bool first = true;
  for (const uint32_t k :
       {base / 2 > 0 ? base / 2 : 1, base, 2 * base, 3 * base, 4 * base}) {
    WorkloadConfig config;
    config.scheme = scheme;
    config.num_landmarks = k;
    config.seed = seed;
    WorkloadResult result = RunWorkload(oracle, config, workload);
    if (first || result.total_calls < best.result.total_calls) {
      best.result = std::move(result);
      best.num_landmarks = k;
      first = false;
    }
  }
  return best;
}

void RunPrimOracleCallTable(
    const std::string& title,
    const std::function<Dataset(ObjectId, uint64_t)>& make_dataset,
    const std::vector<ObjectId>& sizes, uint64_t seed) {
  TablePrinter table({"# of Edges", "Without Plug", "TS-NB", "Bootstrap",
                      "Tri Scheme (k)", "LAESA (k)", "Save (%)", "TLAESA (k)",
                      "Save (%)"});
  BenchJson json(title);
  const Workload workload = PrimWorkload();
  for (const ObjectId n : sizes) {
    Dataset dataset = make_dataset(n, seed);
    const uint32_t landmarks = DefaultNumLandmarks(n);

    auto run = [&](SchemeKind scheme, bool bootstrap) {
      WorkloadConfig config;
      config.scheme = scheme;
      config.bootstrap = bootstrap;
      config.num_landmarks = landmarks;
      config.seed = seed;
      return RunWorkload(dataset.oracle.get(), config, workload);
    };

    const WorkloadResult without = run(SchemeKind::kNone, false);
    const WorkloadResult ts_nb = run(SchemeKind::kTri, false);
    const WorkloadResult tri = run(SchemeKind::kTri, true);
    const BestBaselineResult laesa = RunBestLandmarkBaseline(
        dataset.oracle.get(), SchemeKind::kLaesa, workload, seed);
    const BestBaselineResult tlaesa = RunBestLandmarkBaseline(
        dataset.oracle.get(), SchemeKind::kTlaesa, workload, seed);
    for (const WorkloadResult* r :
         {&ts_nb, &tri, &laesa.result, &tlaesa.result}) {
      CheckSameResult(without.value, r->value, "prim table");
    }

    auto with_k = [](const WorkloadResult& r, uint32_t k) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%llu (%u)",
                    static_cast<unsigned long long>(r.total_calls), k);
      return std::string(buf);
    };

    table.NewRow()
        .AddUint(PairCount(n))
        .AddUint(without.total_calls)
        .AddUint(ts_nb.total_calls)
        .AddUint(tri.construction_calls)
        .AddCell(with_k(tri, landmarks))
        .AddCell(with_k(laesa.result, laesa.num_landmarks))
        .AddPercent(SaveFraction(tri.total_calls, laesa.result.total_calls))
        .AddCell(with_k(tlaesa.result, tlaesa.num_landmarks))
        .AddPercent(
            SaveFraction(tri.total_calls, tlaesa.result.total_calls));
    json.NewRow()
        .Add("n", static_cast<uint64_t>(n))
        .Add("pairs", PairCount(n))
        .Add("without_plug_calls", without.total_calls)
        .Add("ts_nb_calls", ts_nb.total_calls)
        .Add("bootstrap_calls", tri.construction_calls)
        .Add("tri_calls", tri.total_calls)
        .Add("tri_landmarks", static_cast<uint64_t>(landmarks))
        .Add("laesa_calls", laesa.result.total_calls)
        .Add("laesa_landmarks", static_cast<uint64_t>(laesa.num_landmarks))
        .Add("save_vs_laesa",
             SaveFraction(tri.total_calls, laesa.result.total_calls))
        .Add("tlaesa_calls", tlaesa.result.total_calls)
        .Add("tlaesa_landmarks",
             static_cast<uint64_t>(tlaesa.num_landmarks))
        .Add("save_vs_tlaesa",
             SaveFraction(tri.total_calls, tlaesa.result.total_calls));
  }
  table.Print(title);
  json.Write();
}

}  // namespace benchutil
}  // namespace metricprox
