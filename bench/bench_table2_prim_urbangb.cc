// Reproduces paper Table 2: expensive oracle-call counts for Prim's
// algorithm on the UrbanGB-like road-network dataset, comparing
// Without-Plug / TS-NB / Tri Scheme (bootstrapped) / LAESA / TLAESA with
// k = ceil(log2 n) landmarks.
//
// Flags: --sizes=64,128,256,512,1024   --seed=42
//
// Expected shape (see EXPERIMENTS.md): Tri Scheme saves a growing fraction
// of calls relative to LAESA/TLAESA as the size increases; TS-NB always
// beats both landmark baselines.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "harness/flags.h"

namespace {

std::vector<metricprox::ObjectId> ParseSizes(const std::string& csv) {
  std::vector<metricprox::ObjectId> sizes;
  std::stringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    sizes.push_back(static_cast<metricprox::ObjectId>(std::stoul(token)));
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = metricprox::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const std::vector<metricprox::ObjectId> sizes =
      ParseSizes(flags->GetString("sizes", "64,128,256,512,1024"));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  const metricprox::Status unused = flags->FailOnUnused();
  if (!unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }

  metricprox::benchutil::RunPrimOracleCallTable(
      "Table 2 — UrbanGB-like [oracle call count], Prim's algorithm, "
      "k = log2(n)",
      [](metricprox::ObjectId n, uint64_t s) {
        return metricprox::MakeUrbanGbLike(n, s);
      },
      sizes, seed);
  return 0;
}
