// Reproduces paper Figure 8:
//  (a) PAM completion time as the oracle cost varies (0 .. 2.5 s/call),
//  (b) CLARANS completion time likewise,
//  (c) PAM distance calls as the number of clusters l varies,
//  (d) CLARANS distance calls as l varies.
// Completion = measured CPU + simulated oracle latency (DESIGN.md §4).
//
// Flags: --n=192  --n-l=256  --seed=42

#include <cstdio>
#include <tuple>
#include <vector>

#include "bench/common.h"
#include "harness/flags.h"
#include "harness/table.h"

namespace {

using metricprox::Dataset;
using metricprox::ObjectId;
using metricprox::SchemeKind;
using metricprox::Workload;
using metricprox::WorkloadConfig;
using metricprox::WorkloadResult;

void CompletionTimeTable(const char* title, Dataset* dataset,
                         const Workload& workload, uint64_t seed) {
  metricprox::TablePrinter table({"oracle cost (s)", "without-plug (s)",
                                  "tri (s)", "laesa (s)", "tlaesa (s)",
                                  "tri save vs laesa (%)"});
  for (const double cost : {0.0, 0.1, 0.5, 1.2, 2.5}) {
    std::vector<double> completion;
    double reference = 0.0;
    double tri_s = 0.0;
    double laesa_s = 0.0;
    bool first = true;
    for (const auto& [scheme, bootstrap] :
         {std::pair<SchemeKind, bool>{SchemeKind::kNone, false},
          {SchemeKind::kTri, true},
          {SchemeKind::kLaesa, false},
          {SchemeKind::kTlaesa, false}}) {
      WorkloadConfig config;
      config.scheme = scheme;
      config.bootstrap = bootstrap;
      config.oracle_cost_seconds = cost;
      config.seed = seed;
      const WorkloadResult r =
          RunWorkload(dataset->oracle.get(), config, workload);
      if (first) {
        reference = r.value;
        first = false;
      } else {
        metricprox::benchutil::CheckSameResult(reference, r.value, title);
      }
      completion.push_back(r.completion_seconds);
      if (scheme == SchemeKind::kTri) tri_s = r.completion_seconds;
      if (scheme == SchemeKind::kLaesa) laesa_s = r.completion_seconds;
    }
    table.NewRow()
        .AddDouble(cost, 1)
        .AddDouble(completion[0], 1)
        .AddDouble(completion[1], 1)
        .AddDouble(completion[2], 1)
        .AddDouble(completion[3], 1)
        .AddPercent(laesa_s > 0 ? (laesa_s - tri_s) / laesa_s : 0.0);
  }
  table.Print(title);
  std::printf("\n");
}

void CallsVsL(const char* title, Dataset* dataset, bool clarans,
              uint64_t seed) {
  metricprox::TablePrinter table(
      {"l", "without-plug", "tri", "laesa", "tlaesa"});
  for (const uint32_t l : {4u, 6u, 8u, 10u, 14u, 20u}) {
    const Workload workload =
        clarans ? metricprox::benchutil::ClaransWorkload(l, seed + 9)
                : metricprox::benchutil::PamWorkload(l);
    std::vector<uint64_t> calls;
    double reference = 0.0;
    bool first = true;
    for (const auto& [scheme, bootstrap] :
         {std::pair<SchemeKind, bool>{SchemeKind::kNone, false},
          {SchemeKind::kTri, true},
          {SchemeKind::kLaesa, false},
          {SchemeKind::kTlaesa, false}}) {
      WorkloadConfig config;
      config.scheme = scheme;
      config.bootstrap = bootstrap;
      config.seed = seed;
      const WorkloadResult r =
          RunWorkload(dataset->oracle.get(), config, workload);
      if (first) {
        reference = r.value;
        first = false;
      } else {
        metricprox::benchutil::CheckSameResult(reference, r.value, title);
      }
      calls.push_back(r.total_calls);
    }
    table.NewRow()
        .AddUint(l)
        .AddUint(calls[0])
        .AddUint(calls[1])
        .AddUint(calls[2])
        .AddUint(calls[3]);
  }
  table.Print(title);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 192));
  const ObjectId n_l = static_cast<ObjectId>(flags->GetInt("n-l", 256));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Dataset time_dataset = MakeUrbanGbLike(n, seed);
  CompletionTimeTable(
      "Figure 8a — PAM (l=10) completion time vs oracle cost "
      "(UrbanGB-like)",
      &time_dataset, benchutil::PamWorkload(10), seed);
  CompletionTimeTable(
      "Figure 8b — CLARANS (l=10) completion time vs oracle cost "
      "(UrbanGB-like)",
      &time_dataset, benchutil::ClaransWorkload(10, seed + 9), seed);

  Dataset l_dataset = MakeSfPoiLike(n_l, seed);
  CallsVsL("Figure 8c — PAM distance calls vs number of clusters l "
           "(SF-POI-like)",
           &l_dataset, /*clarans=*/false, seed);
  CallsVsL("Figure 8d — CLARANS distance calls vs number of clusters l "
           "(SF-POI-like)",
           &l_dataset, /*clarans=*/true, seed);
  return 0;
}
