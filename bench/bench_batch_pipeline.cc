// Batched-vs-scalar resolution pipeline: for each (dataset, algorithm,
// scheme) cell, runs the workload once with the batch transport (undecided
// remainders shipped through one parallel BatchDistance per verb) and once
// with the scalar transport (a per-pair Distance loop), then reports wall
// time, oracle-call counts, and round-trip amortization. Outputs are
// checked identical across transports — the pipeline's core guarantee.
//
// Flags: --sizes=128,256,512   --seed=42

#include <cstdint>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "harness/flags.h"

namespace {

using metricprox::Dataset;
using metricprox::ObjectId;
using metricprox::RunWorkload;
using metricprox::SchemeKind;
using metricprox::Workload;
using metricprox::WorkloadConfig;
using metricprox::WorkloadResult;

std::vector<ObjectId> ParseSizes(const std::string& csv) {
  std::vector<ObjectId> sizes;
  std::stringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    sizes.push_back(static_cast<ObjectId>(std::stoul(token)));
  }
  return sizes;
}

struct Cell {
  const char* label;
  SchemeKind scheme;
  bool bootstrap;
};

void RunTable(const std::string& title,
              const std::function<Dataset(ObjectId, uint64_t)>& make_dataset,
              const std::vector<ObjectId>& sizes, uint64_t seed) {
  std::printf("\n%s\n", title.c_str());
  std::printf(
      "%6s %-10s %12s %12s %12s %10s %10s %10s\n", "n", "scheme", "calls",
      "round-trips", "amortize", "scalar(s)", "batch(s)", "speedup");
  const std::vector<Cell> cells = {
      {"none", SchemeKind::kNone, false},
      {"tri", SchemeKind::kTri, true},
      {"laesa", SchemeKind::kLaesa, false},
  };
  const Workload workload = metricprox::benchutil::PrimWorkload();
  metricprox::benchutil::BenchJson json(title);
  for (const ObjectId n : sizes) {
    Dataset dataset = make_dataset(n, seed);
    for (const Cell& cell : cells) {
      WorkloadConfig config;
      config.scheme = cell.scheme;
      config.bootstrap = cell.bootstrap;
      config.max_distance = dataset.max_distance;
      config.seed = seed;

      config.batch_transport = false;
      const WorkloadResult scalar =
          RunWorkload(dataset.oracle.get(), config, workload);
      config.batch_transport = true;
      const WorkloadResult batched =
          RunWorkload(dataset.oracle.get(), config, workload);

      metricprox::benchutil::CheckSameResult(
          batched.value, scalar.value,
          std::string(cell.label) + " n=" + std::to_string(n));
      // Identical decision sequence => identical call counts; report the
      // shared count once and the round-trip compression next to it.
      const uint64_t calls = batched.total_calls;
      const uint64_t trips = batched.stats.batch_calls;
      const double amortize =
          trips > 0 ? static_cast<double>(batched.stats.batch_resolved_pairs) /
                          static_cast<double>(trips)
                    : 0.0;
      const double speedup = batched.wall_seconds > 0.0
                                 ? scalar.wall_seconds / batched.wall_seconds
                                 : 0.0;
      std::printf("%6u %-10s %12llu %12llu %11.1fx %10.4f %10.4f %9.2fx\n", n,
                  cell.label, static_cast<unsigned long long>(calls),
                  static_cast<unsigned long long>(trips), amortize,
                  scalar.wall_seconds, batched.wall_seconds, speedup);
      json.NewRow()
          .Add("n", static_cast<uint64_t>(n))
          .Add("scheme", std::string(cell.label))
          .Add("calls", calls)
          .Add("round_trips", trips)
          .Add("amortize", amortize)
          .Add("scalar_seconds", scalar.wall_seconds)
          .Add("batch_seconds", batched.wall_seconds)
          .Add("speedup", speedup);
    }
  }
  json.Write();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = metricprox::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const std::vector<ObjectId> sizes =
      ParseSizes(flags->GetString("sizes", "128,256,512"));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  const metricprox::Status unused = flags->FailOnUnused();
  if (!unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }

  RunTable(
      "Batched pipeline — SF-POI-like road network, Prim's algorithm",
      [](ObjectId n, uint64_t s) { return metricprox::MakeSfPoiLike(n, s); },
      sizes, seed);
  RunTable(
      "Batched pipeline — clustered Euclidean (synthetic), Prim's algorithm",
      [](ObjectId n, uint64_t s) {
        return metricprox::MakeClusteredEuclidean(n, 4, 8, 0.05, s);
      },
      sizes, seed);
  return 0;
}
