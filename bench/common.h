#ifndef METRICPROX_BENCH_COMMON_H_
#define METRICPROX_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "harness/experiment.h"

namespace metricprox {
namespace benchutil {

/// n*(n-1)/2 — the "# of Edges" column of the paper's tables.
inline uint64_t PairCount(ObjectId n) {
  return static_cast<uint64_t>(n) * (n - 1) / 2;
}

/// Ready-made workloads (checksum = MST weight / total deviation / k-NN
/// distance sum) so every bench can assert scheme-independence of results.
Workload PrimWorkload();
Workload KruskalWorkload();
Workload KnnWorkload(uint32_t k);
Workload PamWorkload(uint32_t num_medoids);
Workload ClaransWorkload(uint32_t num_medoids, uint64_t seed);

/// A labelled scheme configuration (one column/row of a paper table).
struct SchemeRow {
  std::string label;
  WorkloadConfig config;
};

/// The paper's standard comparison set: Without Plug, TS-NB (Tri without
/// bootstrap), Tri Scheme (bootstrapped), LAESA, TLAESA.
std::vector<SchemeRow> StandardSchemes(uint64_t seed = 42);

/// CHECK-fails if two workload checksums disagree beyond fp tolerance —
/// every bench verifies the exactness invariant as a side effect.
void CheckSameResult(double a, double b, const std::string& context);

/// A landmark-baseline run at its empirically best landmark count (the
/// paper's methodology for the LAESA/TLAESA columns).
struct BestBaselineResult {
  WorkloadResult result;
  uint32_t num_landmarks = 0;
};

/// Runs `scheme` (LAESA or TLAESA) over a sweep of landmark counts
/// (multiples of log2 n) and returns the cheapest run in oracle calls.
BestBaselineResult RunBestLandmarkBaseline(DistanceOracle* oracle,
                                           SchemeKind scheme,
                                           const Workload& workload,
                                           uint64_t seed);

/// Emits a generic oracle-call-count sweep: one row per size with columns
/// WithoutPlug / Tri (bootstrapped) / LAESA / TLAESA plus save percentages
/// (k = ceil(log2 n) landmarks everywhere). Used by the Figure 6/7 benches.
void RunCallCountSweep(
    const std::string& title,
    const std::function<Dataset(ObjectId, uint64_t)>& make_dataset,
    const std::function<Workload(ObjectId)>& make_workload,
    const std::vector<ObjectId>& sizes, uint64_t seed);

/// Emits a Table-2/3-style oracle-call-count table for Prim's algorithm:
/// one row per size, columns WithoutPlug / TS-NB / Bootstrap / TriScheme /
/// LAESA / Save% / TLAESA / Save%, with k = ceil(log2 n) landmarks.
void RunPrimOracleCallTable(
    const std::string& title,
    const std::function<Dataset(ObjectId, uint64_t)>& make_dataset,
    const std::vector<ObjectId>& sizes, uint64_t seed);

/// Machine-readable companion to the printed tables: collects labelled
/// key/value rows and, when the METRICPROX_BENCH_JSON_DIR environment
/// variable names a directory, writes them as BENCH_<slug>.json there so
/// call-count trajectories can be tracked run over run. Without the
/// variable Write() is a no-op, so interactive bench runs stay file-free.
class BenchJson {
 public:
  explicit BenchJson(std::string title);

  /// Starts a new row (one measured configuration / table line).
  BenchJson& NewRow();
  BenchJson& Add(const std::string& key, uint64_t value);
  BenchJson& Add(const std::string& key, double value);
  BenchJson& Add(const std::string& key, const std::string& value);

  /// Single JSON document: {"schema":"metricprox-bench",...,"rows":[...]}.
  std::string ToJson() const;

  /// Writes BENCH_<slug>.json under $METRICPROX_BENCH_JSON_DIR and returns
  /// the path, or returns "" when the variable is unset. Failures are
  /// reported on stderr but never fail the bench.
  std::string Write() const;

 private:
  std::string title_;
  std::string slug_;
  /// Each row is a list of pre-encoded `"key":value` JSON members.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace benchutil
}  // namespace metricprox

#endif  // METRICPROX_BENCH_COMMON_H_
