// Certification overhead: what does running with --audit-style online
// verification cost? Each cell runs one workload twice through
// AuditWorkload — bare, then with the CertifyingBounder + Verifier in the
// loop — asserts the A-B invariants (byte-identical outputs, identical
// oracle calls, zero failed certificates), and reports the wall-time
// overhead of emitting and independently checking every certificate.
//
// Flags: --sizes=128,256   --seed=42   --dataset=sf   --k=4   --l=5

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/logging.h"
#include "data/datasets.h"
#include "harness/experiment.h"
#include "harness/flags.h"
#include "harness/table.h"

namespace {

using metricprox::AuditReport;
using metricprox::AuditWorkload;
using metricprox::Dataset;
using metricprox::ObjectId;
using metricprox::SchemeKind;
using metricprox::SchemeKindName;
using metricprox::StatusOr;
using metricprox::TablePrinter;
using metricprox::Workload;
using metricprox::WorkloadConfig;
using metricprox::benchutil::PairCount;

std::vector<ObjectId> ParseSizes(const std::string& csv) {
  std::vector<ObjectId> sizes;
  size_t begin = 0;
  while (begin < csv.size()) {
    size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    sizes.push_back(
        static_cast<ObjectId>(std::stoul(csv.substr(begin, end - begin))));
    begin = end + 1;
  }
  return sizes;
}

struct Stage {
  std::string label;
  Workload workload;
};

void RunMatrix(const Dataset& dataset, ObjectId n, uint64_t seed, uint32_t k,
               uint32_t l) {
  const std::vector<Stage> stages = {
      {"knn-graph", metricprox::benchutil::KnnWorkload(k)},
      {"mst-prim", metricprox::benchutil::PrimWorkload()},
      {"pam-medoid", metricprox::benchutil::PamWorkload(l)},
  };

  TablePrinter table({"workload", "scheme", "bare (ms)", "certified (ms)",
                      "overhead", "certs", "certs/ms"});
  for (const Stage& stage : stages) {
    for (SchemeKind scheme : {SchemeKind::kTri, SchemeKind::kSplub}) {
      WorkloadConfig config;
      config.scheme = scheme;
      config.bootstrap = true;
      config.seed = seed;
      config.max_distance = dataset.max_distance;

      const StatusOr<AuditReport> report =
          AuditWorkload(dataset.oracle.get(), config, stage.workload);
      CHECK(report.ok()) << report.status();
      CHECK(report->passed())
          << stage.label << "/" << SchemeKindName(scheme)
          << ": audit invariants violated (outputs_identical="
          << report->outputs_identical
          << " calls_identical=" << report->calls_identical
          << " failed=" << report->certification.failed << ")";

      const double bare_ms = report->unaudited.wall_seconds * 1e3;
      const double cert_ms = report->audited.wall_seconds * 1e3;
      const uint64_t certs = report->certification.emitted;
      table.NewRow()
          .AddCell(stage.label)
          .AddCell(std::string(SchemeKindName(scheme)))
          .AddDouble(bare_ms, 3)
          .AddDouble(cert_ms, 3)
          .AddCell(bare_ms > 0.0
                       ? std::to_string(static_cast<int>(
                             100.0 * (cert_ms - bare_ms) / bare_ms)) + "%"
                       : "-")
          .AddUint(certs)
          .AddDouble(cert_ms > 0.0 ? static_cast<double>(certs) / cert_ms
                                   : 0.0,
                     1);
    }
  }
  table.Print(dataset.name + ", n=" + std::to_string(n) + " (" +
              std::to_string(PairCount(n)) +
              " pairs): emit + verify every bound decision");
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = metricprox::Flags::Parse(argc, argv);
  CHECK(flags.ok()) << flags.status();
  const std::vector<ObjectId> sizes =
      ParseSizes(flags->GetString("sizes", "128,256"));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  const std::string dataset_name = flags->GetString("dataset", "sf");
  const uint32_t k = static_cast<uint32_t>(flags->GetInt("k", 4));
  const uint32_t l = static_cast<uint32_t>(flags->GetInt("l", 5));
  const metricprox::Status unused = flags->FailOnUnused();
  if (!unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }

  std::printf(
      "Certification overhead: every cell is an A-B run (bare vs certified) "
      "with byte-identical\noutputs, identical oracle calls and 100%% "
      "verified certificates asserted as a side effect.\n");
  for (const ObjectId n : sizes) {
    Dataset dataset =
        dataset_name == "random"
            ? metricprox::MakeRandomMetric(n, seed)
            : dataset_name == "urbangb"
                ? metricprox::MakeUrbanGbLike(n, seed)
                : metricprox::MakeSfPoiLike(n, seed);
    RunMatrix(dataset, n, seed, k, l);
  }
  return 0;
}
