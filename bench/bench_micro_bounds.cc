// Google-benchmark microbenchmarks for the per-operation costs behind
// Figure 3c: a single bound query / update under each scheme, plus the
// graph and Dijkstra substrate operations they decompose into.

#include <benchmark/benchmark.h>

#include <memory>
#include <random>

#include "bounds/adm.h"
#include "bounds/laesa.h"
#include "bounds/pivots.h"
#include "bounds/splub.h"
#include "bounds/tlaesa.h"
#include "bounds/tri.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "data/datasets.h"
#include "graph/dijkstra.h"

namespace metricprox {
namespace {

constexpr ObjectId kN = 256;

// Shared fixture state: an SF-like dataset with ~8% of pairs resolved.
struct Fixture {
  Fixture() : dataset(MakeSfPoiLike(kN, 42)), graph(kN) {
    BoundedResolver resolver(dataset.oracle.get(), &graph);
    BootstrapWithLandmarks(&resolver, DefaultNumLandmarks(kN), 1);
    std::mt19937_64 rng(2);
    while (graph.num_edges() <
           static_cast<size_t>(kN) * (kN - 1) / 2 / 12) {
      const ObjectId i = static_cast<ObjectId>(rng() % kN);
      const ObjectId j = static_cast<ObjectId>(rng() % kN);
      if (i == j || graph.Has(i, j)) continue;
      resolver.Distance(i, j);
    }
  }

  std::pair<ObjectId, ObjectId> RandomUnknownPair(std::mt19937_64* rng) const {
    while (true) {
      const ObjectId i = static_cast<ObjectId>((*rng)() % kN);
      const ObjectId j = static_cast<ObjectId>((*rng)() % kN);
      if (i != j && !graph.Has(i, j)) return {i, j};
    }
  }

  Dataset dataset;
  PartialDistanceGraph graph;
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_TriBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  TriBounder tri(&f.graph);
  std::mt19937_64 rng(3);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(tri.Bounds(i, j));
  }
}
BENCHMARK(BM_TriBoundsQuery);

void BM_SplubBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  SplubBounder splub(&f.graph);
  std::mt19937_64 rng(4);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(splub.Bounds(i, j));
  }
}
BENCHMARK(BM_SplubBoundsQuery);

void BM_AdmBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  static AdmBounder* adm = new AdmBounder(&f.graph);  // O(n^2 m) build, once
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(adm->Bounds(i, j));
  }
}
BENCHMARK(BM_AdmBoundsQuery);

void BM_AdmUpdate(benchmark::State& state) {
  Fixture& f = SharedFixture();
  AdmBounder adm(&f.graph);
  std::mt19937_64 rng(6);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    // Measures the O(n^2) relaxation pass; the value is synthetic but
    // valid (below any existing upper bound path or not — both realistic).
    adm.OnEdgeResolved(i, j, 1.0);
  }
}
BENCHMARK(BM_AdmUpdate);

void BM_LaesaBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  static std::unique_ptr<LaesaBounder> laesa = LaesaBounder::Build(
      kN, DefaultNumLandmarks(kN),
      [&](ObjectId a, ObjectId b) { return f.dataset.oracle->Distance(a, b); },
      7);
  std::mt19937_64 rng(8);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(laesa->Bounds(i, j));
  }
}
BENCHMARK(BM_LaesaBoundsQuery);

void BM_TlaesaBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  static std::unique_ptr<TlaesaBounder> tlaesa = [] {
    Fixture& fx = SharedFixture();
    TlaesaBounder::Options options;
    options.seed = 9;
    return TlaesaBounder::Build(kN, options, [&fx](ObjectId a, ObjectId b) {
      return fx.dataset.oracle->Distance(a, b);
    });
  }();
  std::mt19937_64 rng(10);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(tlaesa->Bounds(i, j));
  }
}
BENCHMARK(BM_TlaesaBoundsQuery);

void BM_GraphInsertAndLookup(benchmark::State& state) {
  std::mt19937_64 rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    PartialDistanceGraph graph(kN);
    state.ResumeTiming();
    for (int e = 0; e < 512; ++e) {
      const ObjectId i = static_cast<ObjectId>(rng() % kN);
      const ObjectId j = static_cast<ObjectId>(rng() % kN);
      if (i == j || graph.Has(i, j)) continue;
      graph.Insert(i, j, 1.0);
    }
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_GraphInsertAndLookup);

void BM_DijkstraOverPartialGraph(benchmark::State& state) {
  Fixture& f = SharedFixture();
  DijkstraSolver solver(kN);
  std::vector<double> out;
  std::mt19937_64 rng(12);
  for (auto _ : state) {
    solver.Solve(f.graph, static_cast<ObjectId>(rng() % kN), &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DijkstraOverPartialGraph);

}  // namespace
}  // namespace metricprox

BENCHMARK_MAIN();
