// Google-benchmark microbenchmarks for the per-operation costs behind
// Figure 3c: a single bound query / update under each scheme, plus the
// graph and Dijkstra substrate operations they decompose into — and a
// per-kernel scalar-vs-dispatched A/B (pivot-scan, tri-merge reduction,
// batch-distance) emitted through BenchJson so the SIMD dispatch layer's
// payoff is tracked run over run.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <random>

#include "bench/common.h"
#include "bounds/adm.h"
#include "core/simd.h"
#include "bounds/laesa.h"
#include "bounds/pivots.h"
#include "bounds/splub.h"
#include "bounds/tlaesa.h"
#include "bounds/tri.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "data/datasets.h"
#include "graph/dijkstra.h"

namespace metricprox {
namespace {

constexpr ObjectId kN = 256;

// Shared fixture state: an SF-like dataset with ~8% of pairs resolved.
struct Fixture {
  Fixture() : dataset(MakeSfPoiLike(kN, 42)), graph(kN) {
    BoundedResolver resolver(dataset.oracle.get(), &graph);
    BootstrapWithLandmarks(&resolver, DefaultNumLandmarks(kN), 1);
    std::mt19937_64 rng(2);
    while (graph.num_edges() <
           static_cast<size_t>(kN) * (kN - 1) / 2 / 12) {
      const ObjectId i = static_cast<ObjectId>(rng() % kN);
      const ObjectId j = static_cast<ObjectId>(rng() % kN);
      if (i == j || graph.Has(i, j)) continue;
      resolver.Distance(i, j);
    }
  }

  std::pair<ObjectId, ObjectId> RandomUnknownPair(std::mt19937_64* rng) const {
    while (true) {
      const ObjectId i = static_cast<ObjectId>((*rng)() % kN);
      const ObjectId j = static_cast<ObjectId>((*rng)() % kN);
      if (i != j && !graph.Has(i, j)) return {i, j};
    }
  }

  Dataset dataset;
  PartialDistanceGraph graph;
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_TriBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  TriBounder tri(&f.graph);
  std::mt19937_64 rng(3);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(tri.Bounds(i, j));
  }
}
BENCHMARK(BM_TriBoundsQuery);

void BM_SplubBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  SplubBounder splub(&f.graph);
  std::mt19937_64 rng(4);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(splub.Bounds(i, j));
  }
}
BENCHMARK(BM_SplubBoundsQuery);

void BM_AdmBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  static AdmBounder* adm = new AdmBounder(&f.graph);  // O(n^2 m) build, once
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(adm->Bounds(i, j));
  }
}
BENCHMARK(BM_AdmBoundsQuery);

void BM_AdmUpdate(benchmark::State& state) {
  Fixture& f = SharedFixture();
  AdmBounder adm(&f.graph);
  std::mt19937_64 rng(6);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    // Measures the O(n^2) relaxation pass; the value is synthetic but
    // valid (below any existing upper bound path or not — both realistic).
    adm.OnEdgeResolved(i, j, 1.0);
  }
}
BENCHMARK(BM_AdmUpdate);

void BM_LaesaBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  static std::unique_ptr<LaesaBounder> laesa = LaesaBounder::Build(
      kN, DefaultNumLandmarks(kN),
      [&](ObjectId a, ObjectId b) { return f.dataset.oracle->Distance(a, b); },
      7);
  std::mt19937_64 rng(8);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(laesa->Bounds(i, j));
  }
}
BENCHMARK(BM_LaesaBoundsQuery);

void BM_TlaesaBoundsQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  static std::unique_ptr<TlaesaBounder> tlaesa = [] {
    Fixture& fx = SharedFixture();
    TlaesaBounder::Options options;
    options.seed = 9;
    return TlaesaBounder::Build(kN, options, [&fx](ObjectId a, ObjectId b) {
      return fx.dataset.oracle->Distance(a, b);
    });
  }();
  std::mt19937_64 rng(10);
  for (auto _ : state) {
    const auto [i, j] = f.RandomUnknownPair(&rng);
    benchmark::DoNotOptimize(tlaesa->Bounds(i, j));
  }
}
BENCHMARK(BM_TlaesaBoundsQuery);

void BM_GraphInsertAndLookup(benchmark::State& state) {
  std::mt19937_64 rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    PartialDistanceGraph graph(kN);
    state.ResumeTiming();
    for (int e = 0; e < 512; ++e) {
      const ObjectId i = static_cast<ObjectId>(rng() % kN);
      const ObjectId j = static_cast<ObjectId>(rng() % kN);
      if (i == j || graph.Has(i, j)) continue;
      graph.Insert(i, j, 1.0);
    }
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_GraphInsertAndLookup);

void BM_DijkstraOverPartialGraph(benchmark::State& state) {
  Fixture& f = SharedFixture();
  DijkstraSolver solver(kN);
  std::vector<double> out;
  std::mt19937_64 rng(12);
  for (auto _ : state) {
    solver.Solve(f.graph, static_cast<ObjectId>(rng() % kN), &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DijkstraOverPartialGraph);

}  // namespace

// ---------------------------------------------------------------------------
// Kernel dispatch A/B: the same operands through the scalar reference and
// the dispatched (hardware-best) kernel, best-of-R wall time per call.
// ---------------------------------------------------------------------------

namespace {

// Sized like a generous LAESA configuration / a well-resolved Tri
// neighborhood — big enough that vector width matters, small enough to stay
// realistic for the n=256 fixture above.
constexpr size_t kKernelLen = 48;
constexpr size_t kKernelRows = 64;
constexpr int kKernelRounds = 7;

double BestOfNs(int iters_per_round, const std::function<void()>& body) {
  double best = 1e300;
  for (int round = 0; round < kKernelRounds; ++round) {
    const auto start = std::chrono::steady_clock::now();
    for (int it = 0; it < iters_per_round; ++it) body();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        iters_per_round;
    if (ns < best) best = ns;
  }
  return best;
}

void EmitKernelSpeedups() {
  const simd::Tier tier = simd::DetectedTier();
  const simd::KernelTable& scalar = simd::KernelsForTier(simd::Tier::kScalar);
  const simd::KernelTable& dispatched = simd::KernelsForTier(tier);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(0.0, 2.0);

  // Shared operand pool: kKernelRows rows of kKernelLen doubles.
  std::vector<std::vector<double>> rows(kKernelRows);
  for (auto& row : rows) {
    row.resize(kKernelLen);
    for (double& v : row) v = dist(rng);
  }

  benchutil::BenchJson json("Micro kernel dispatch");
  std::printf("\nKernel dispatch (scalar vs %s, len=%zu)\n",
              std::string(simd::TierName(tier)).c_str(), kKernelLen);

  const auto emit = [&](const char* kernel, double scalar_ns,
                        double dispatched_ns) {
    const double speedup = scalar_ns / dispatched_ns;
    json.NewRow()
        .Add("kernel", std::string(kernel))
        .Add("tier", std::string(simd::TierName(tier)))
        .Add("scalar_ns", scalar_ns)
        .Add("dispatched_ns", dispatched_ns)
        .Add("speedup", speedup);
    std::printf("  %-16s scalar %8.1f ns   dispatched %8.1f ns   %.2fx\n",
                kernel, scalar_ns, dispatched_ns, speedup);
  };

  {
    size_t k = 0;
    double sink = 0.0;
    const auto run = [&](const simd::KernelTable& table) {
      const Interval iv =
          table.pivot_scan(rows[k % kKernelRows].data(),
                           rows[(k + 1) % kKernelRows].data(), kKernelLen);
      sink += iv.lo;
      ++k;
    };
    const double s = BestOfNs(20000, [&] { run(scalar); });
    const double d = BestOfNs(20000, [&] { run(dispatched); });
    benchmark::DoNotOptimize(sink);
    emit("pivot_scan", s, d);
  }

  {
    size_t k = 0;
    double sink = 0.0;
    const double rho = 2.0;
    const auto run = [&](const simd::KernelTable& table) {
      const Interval iv = table.tri_reduce(
          rows[k % kKernelRows].data(), rows[(k + 1) % kKernelRows].data(),
          kKernelLen, rho, 1.0 / rho);
      sink += iv.hi;
      ++k;
    };
    const double s = BestOfNs(20000, [&] { run(scalar); });
    const double d = BestOfNs(20000, [&] { run(dispatched); });
    benchmark::DoNotOptimize(sink);
    emit("tri_merge", s, d);
  }

  {
    constexpr size_t kDim = 4;
    constexpr size_t kPairs = 256;
    std::vector<double> points(static_cast<size_t>(kN) * kDim);
    for (double& v : points) v = dist(rng);
    std::vector<IdPair> pairs(kPairs);
    for (IdPair& p : pairs) {
      p.i = static_cast<ObjectId>(rng() % kN);
      p.j = static_cast<ObjectId>(rng() % kN);
    }
    std::vector<double> out(kPairs);
    const auto run = [&](const simd::KernelTable& table) {
      table.batch_distance(points.data(), kDim, pairs.data(), kPairs,
                           out.data(), simd::DistanceKind::kL2);
    };
    const double s = BestOfNs(200, [&] { run(scalar); }) / kPairs;
    const double d = BestOfNs(200, [&] { run(dispatched); }) / kPairs;
    benchmark::DoNotOptimize(out.data());
    emit("batch_distance", s, d);
  }

  json.Write();
}

}  // namespace
}  // namespace metricprox

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  metricprox::EmitKernelSpeedups();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
