// Multi-session resolution bench: N concurrent sessions running the same
// k-NN workload over one dataset, resolved three ways —
//   independent:  each session is a plain unshared resolver (the pre-pool
//                 baseline: every session pays every oracle call itself);
//   pooled:       sessions share a SessionPool's striped graph (a pair any
//                 session resolved is free for the others);
//   coalesced:    pooled + the cross-session BatchCoalescer (overlapping
//                 in-flight pairs from different sessions ride one
//                 BatchDistance round-trip);
//   coalesced+obs: the coalesced mode with a live ObservabilityHub attached
//                 (causal spans into the flight ring, per-session metrics)
//                 — the price of leaving observability on in production.
// Outputs are checked byte-identical across all modes, and the emitted
// BENCH JSON records base-oracle pair counts so validate_telemetry.py can
// pin the headline claim: shared/coalesced sessions spend strictly fewer
// base oracle calls than independent runs.
//
// Flags: --sizes=96,192   --sessions=3   --seed=42

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/knn_graph.h"
#include "bench/common.h"
#include "bounds/resolver.h"
#include "bounds/tri.h"
#include "core/logging.h"
#include "core/stats.h"
#include "data/datasets.h"
#include "graph/partial_graph.h"
#include "harness/flags.h"
#include "obs/hub.h"
#include "oracle/wrappers.h"
#include "service/session.h"

namespace {

using metricprox::BoundedResolver;
using metricprox::CountingOracle;
using metricprox::Dataset;
using metricprox::KnnGraphOptions;
using metricprox::KnnNeighbor;
using metricprox::ObjectId;
using metricprox::ObservabilityHub;
using metricprox::PartialDistanceGraph;
using metricprox::ResolverSession;
using metricprox::SessionPool;
using metricprox::SessionPoolOptions;
using metricprox::Stopwatch;
using metricprox::TriBounder;

std::vector<ObjectId> ParseSizes(const std::string& csv) {
  std::vector<ObjectId> sizes;
  std::stringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    sizes.push_back(static_cast<ObjectId>(std::stoul(token)));
  }
  return sizes;
}

std::vector<double> KnnBlob(BoundedResolver* resolver) {
  std::vector<double> blob;
  for (const auto& row : BuildKnnGraph(resolver, KnnGraphOptions{3})) {
    for (const KnnNeighbor& nb : row) {
      blob.push_back(nb.id);
      blob.push_back(nb.distance);
    }
  }
  return blob;
}

struct ModeResult {
  std::vector<std::vector<double>> blobs;  // one per session
  uint64_t base_pairs = 0;                 // pairs billed to the base oracle
  uint64_t spans_emitted = 0;              // causal spans (hub modes only)
  double wall_seconds = 0.0;
};

ModeResult RunIndependent(const Dataset& dataset, unsigned sessions) {
  ModeResult result;
  result.blobs.resize(sessions);
  CountingOracle counting(dataset.oracle.get());
  Stopwatch watch;
  // Sequential on purpose: independent sessions sharing nothing would race
  // on the (single-threaded) base oracle middleware if run concurrently.
  for (unsigned s = 0; s < sessions; ++s) {
    PartialDistanceGraph graph(counting.num_objects());
    BoundedResolver resolver(&counting, &graph);
    TriBounder bounder(&graph);
    resolver.SetBounder(&bounder);
    result.blobs[s] = KnnBlob(&resolver);
  }
  result.wall_seconds = watch.ElapsedSeconds();
  result.base_pairs = counting.calls();
  return result;
}

ModeResult RunPooled(const Dataset& dataset, unsigned sessions,
                     bool coalesced, bool observed = false) {
  ModeResult result;
  result.blobs.resize(sessions);
  CountingOracle counting(dataset.oracle.get());
  // The hub (when measuring the observed mode) spans into its in-memory
  // flight ring only — no directory, so the bench measures instrumentation
  // cost, not disk I/O.
  std::unique_ptr<ObservabilityHub> hub;
  if (observed) hub = std::make_unique<ObservabilityHub>();
  SessionPoolOptions options;
  options.enable_coalescer = coalesced;
  options.hub = hub.get();
  SessionPool pool(&counting, options);
  std::vector<std::unique_ptr<ResolverSession>> handles;
  for (unsigned s = 0; s < sessions; ++s) {
    handles.push_back(pool.OpenSession());
  }
  Stopwatch watch;
  std::vector<std::thread> threads;
  for (unsigned s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      handles[s]->UseTriBounds();
      result.blobs[s] = KnnBlob(&handles[s]->resolver());
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = watch.ElapsedSeconds();
  result.base_pairs = counting.calls();
  if (hub != nullptr) result.spans_emitted = hub->flight().spans_seen();
  return result;
}

void RunBench(const std::vector<ObjectId>& sizes, unsigned sessions,
              uint64_t seed) {
  std::printf("\nConcurrent sessions — clustered Euclidean, %u x k-NN(3)\n",
              sessions);
  std::printf("%6s %-13s %14s %12s %10s\n", "n", "mode", "base pairs",
              "vs indep", "wall(s)");
  metricprox::benchutil::BenchJson json("Concurrent session coalescing");
  for (const ObjectId n : sizes) {
    Dataset dataset = metricprox::MakeClusteredEuclidean(n, 4, 8, 0.05, seed);
    const ModeResult independent = RunIndependent(dataset, sessions);
    const ModeResult pooled =
        RunPooled(dataset, sessions, /*coalesced=*/false);
    const ModeResult coalesced =
        RunPooled(dataset, sessions, /*coalesced=*/true);
    const ModeResult observed =
        RunPooled(dataset, sessions, /*coalesced=*/true, /*observed=*/true);

    // The exactness invariant: sharing, coalescing and live observability
    // change WHERE a pair is resolved (or who watches it), never any
    // session's output.
    for (unsigned s = 0; s < sessions; ++s) {
      CHECK(pooled.blobs[s] == independent.blobs[s])
          << "pooled session " << s << " diverged at n=" << n;
      CHECK(coalesced.blobs[s] == independent.blobs[s])
          << "coalesced session " << s << " diverged at n=" << n;
      CHECK(observed.blobs[s] == independent.blobs[s])
          << "observed session " << s << " diverged at n=" << n;
    }
    CHECK_LE(pooled.base_pairs, independent.base_pairs);
    CHECK_LE(coalesced.base_pairs, independent.base_pairs);
    CHECK_LE(observed.base_pairs, independent.base_pairs);
    CHECK_GT(observed.spans_emitted, 0u) << "hub attached but no spans";
    CHECK_GT(sessions, 1u) << "coalescing needs concurrent sessions";
    // >= 2 sessions over one dataset: sharing must save real calls.
    CHECK_LT(coalesced.base_pairs, independent.base_pairs);

    struct Row {
      const char* mode;
      const ModeResult* result;
    };
    const Row rows[] = {{"independent", &independent},
                        {"pooled", &pooled},
                        {"coalesced", &coalesced},
                        {"coalesced+obs", &observed}};
    for (const Row& row : rows) {
      const double save =
          independent.base_pairs > 0
              ? 100.0 * (1.0 - static_cast<double>(row.result->base_pairs) /
                                   static_cast<double>(independent.base_pairs))
              : 0.0;
      std::printf("%6u %-13s %14llu %11.1f%% %10.4f\n", n, row.mode,
                  static_cast<unsigned long long>(row.result->base_pairs),
                  save, row.result->wall_seconds);
      json.NewRow()
          .Add("n", static_cast<uint64_t>(n))
          .Add("mode", std::string(row.mode))
          .Add("sessions", static_cast<uint64_t>(sessions))
          .Add("base_oracle_pairs", row.result->base_pairs)
          .Add("saved_vs_independent_pct", save)
          .Add("spans_emitted", row.result->spans_emitted)
          .Add("wall_seconds", row.result->wall_seconds);
    }
  }
  json.Write();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = metricprox::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const std::vector<ObjectId> sizes =
      ParseSizes(flags->GetString("sizes", "96,192"));
  const unsigned sessions =
      static_cast<unsigned>(flags->GetInt("sessions", 3));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  const metricprox::Status unused = flags->FailOnUnused();
  if (!unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }
  RunBench(sizes, sessions, seed);
  return 0;
}
