// Reproduces paper Figure 7: CLARANS / PAM save-ups on the remaining
// datasets, and end-to-end Prim completion time under an expensive oracle.
//  (a) CLARANS (l = 10) on SF-POI-like, varying size,
//  (b) PAM (l = 10) on Flickr-like (256-dim Euclidean), varying size,
//  (c) CLARANS (l = 10) on UrbanGB-like, varying size,
//  (d) Prim completion time with a simulated 1.2 s-per-call oracle
//      (completion = measured CPU + calls * 1.2 s; see DESIGN.md §4).
//
// Flags: --seed=42  --oracle-cost=1.2  --n-time=256

#include <cstdio>
#include <tuple>
#include <vector>

#include "bench/common.h"
#include "harness/flags.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  const double oracle_cost = flags->GetDouble("oracle-cost", 1.2);
  const ObjectId n_time = static_cast<ObjectId>(flags->GetInt("n-time", 256));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const std::vector<ObjectId> sizes = {64, 128, 256};
  benchutil::RunCallCountSweep(
      "Figure 7a — CLARANS (l=10) distance calls vs size (SF-POI-like)",
      [](ObjectId n, uint64_t s) { return MakeSfPoiLike(n, s); },
      [seed](ObjectId) { return benchutil::ClaransWorkload(10, seed + 9); },
      sizes, seed);

  benchutil::RunCallCountSweep(
      "Figure 7b — PAM (l=10) distance calls vs size (Flickr-like, 256-d)",
      [](ObjectId n, uint64_t s) { return MakeFlickrLike(n, 256, s); },
      [](ObjectId) { return benchutil::PamWorkload(10); }, sizes, seed);

  benchutil::RunCallCountSweep(
      "Figure 7c — CLARANS (l=10) distance calls vs size (UrbanGB-like)",
      [](ObjectId n, uint64_t s) { return MakeUrbanGbLike(n, s); },
      [seed](ObjectId) { return benchutil::ClaransWorkload(10, seed + 9); },
      sizes, seed);

  // --- (d) Prim completion time with an expensive oracle ---
  Dataset dataset = MakeUrbanGbLike(n_time, seed);
  const Workload workload = benchutil::PrimWorkload();
  TablePrinter table({"scheme", "oracle calls", "CPU (s)",
                      "oracle time (s, simulated)", "completion (s)"});
  double reference = 0.0;
  bool first = true;
  for (const auto& [label, scheme, bootstrap] :
       {std::tuple<const char*, SchemeKind, bool>{"without-plug",
                                                  SchemeKind::kNone, false},
        {"tri", SchemeKind::kTri, true},
        {"laesa", SchemeKind::kLaesa, false},
        {"tlaesa", SchemeKind::kTlaesa, false}}) {
    WorkloadConfig config;
    config.scheme = scheme;
    config.bootstrap = bootstrap;
    config.oracle_cost_seconds = oracle_cost;
    config.seed = seed;
    const WorkloadResult r = RunWorkload(dataset.oracle.get(), config, workload);
    if (first) {
      reference = r.value;
      first = false;
    } else {
      benchutil::CheckSameResult(reference, r.value, "fig7d");
    }
    table.NewRow()
        .AddCell(label)
        .AddUint(r.total_calls)
        .AddDouble(r.wall_seconds, 3)
        .AddDouble(r.stats.simulated_oracle_seconds, 1)
        .AddDouble(r.completion_seconds, 1);
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "Figure 7d — Prim completion time, %.1f s oracle "
                "(UrbanGB-like, n=%u)",
                oracle_cost, n_time);
  table.Print(title);
  return 0;
}
