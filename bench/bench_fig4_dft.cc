// Reproduces paper Figure 4: DIRECT FEASIBILITY TEST (DFT) vs ADM on tiny
// complete graphs, inside Prim's algorithm.
//  (a) DFT consistently needs fewer oracle calls than ADM (paper: 27-58%),
//  (b) but its running time explodes with the graph size (paper: hours for
//      a few hundred edges; our from-scratch simplex replaces CPLEX, see
//      DESIGN.md, so absolute times differ while the blow-up shape holds).
//
// Flags: --sizes=8,10,12  --seed=42   (n=14 adds ~a minute of LP time)

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "algo/prim.h"
#include "bench/common.h"
#include "harness/flags.h"
#include "harness/table.h"

namespace {

std::vector<metricprox::ObjectId> ParseSizes(const std::string& csv) {
  std::vector<metricprox::ObjectId> sizes;
  std::stringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    sizes.push_back(static_cast<metricprox::ObjectId>(std::stoul(token)));
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const std::vector<ObjectId> sizes =
      ParseSizes(flags->GetString("sizes", "8,10,12"));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  TablePrinter table({"# of Edges", "Without Plug", "ADM calls",
                      "ADM-tight calls", "DFT calls", "DFT save vs ADM (%)",
                      "ADM time (s)", "DFT time (s)"});
  // Lazy-key Prim: every decision is a two-unknown comparison, the paper's
  // general IF-statement form.
  const Workload workload = [](BoundedResolver* resolver) {
    return PrimMstLazy(resolver).total_weight;
  };
  for (const ObjectId n : sizes) {
    Dataset dataset =
        MakeClusteredEuclidean(n, 2, /*num_clusters=*/3, /*spread=*/0.04, seed);

    auto run = [&](SchemeKind scheme) {
      WorkloadConfig config;
      config.scheme = scheme;
      config.max_distance = dataset.max_distance;
      config.seed = seed;
      return RunWorkload(dataset.oracle.get(), config, workload);
    };
    const WorkloadResult none = run(SchemeKind::kNone);
    const WorkloadResult adm_classic = run(SchemeKind::kAdmClassic);
    const WorkloadResult adm_tight = run(SchemeKind::kAdm);
    const WorkloadResult dft = run(SchemeKind::kDft);
    benchutil::CheckSameResult(none.value, adm_classic.value, "fig4 adm");
    benchutil::CheckSameResult(none.value, adm_tight.value, "fig4 adm-tight");
    benchutil::CheckSameResult(none.value, dft.value, "fig4 dft");

    table.NewRow()
        .AddUint(benchutil::PairCount(n))
        .AddUint(none.total_calls)
        .AddUint(adm_classic.total_calls)
        .AddUint(adm_tight.total_calls)
        .AddUint(dft.total_calls)
        .AddPercent(
            SaveFraction(dft.total_calls, adm_classic.total_calls))
        .AddDouble(adm_classic.wall_seconds, 4)
        .AddDouble(dft.wall_seconds, 4);
  }
  table.Print(
      "Figure 4 — DFT vs ADM inside (lazy-key) Prim's algorithm "
      "(clustered Euclidean, 3 tight clusters)");
  std::printf(
      "\nNotes. \"ADM\" uses the classical incremental matrix updates, "
      "whose lower bounds go stale — the headroom DFT exploits (Fig 4a's "
      "save-up). \"ADM-tight\" recomputes the tightest wrap bound per "
      "query; DFT can only beat it through joint two-variable reasoning, "
      "which our measurements show is rare (see EXPERIMENTS.md). DFT time "
      "grows superlinearly in the edge count — the paper's scalability "
      "wall (4b); our from-scratch simplex stands in for CPLEX.\n");
  return 0;
}
