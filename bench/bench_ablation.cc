// Ablations beyond the paper's figures, probing the design choices
// DESIGN.md calls out:
//  (1) bootstrap landmark count for the Tri Scheme (0 = TS-NB) — how many
//      seed triangles are worth their construction cost,
//  (2) construction-cost breakdown per scheme (what each plug-in pays
//      before the proximity algorithm starts),
//  (3) the same Tri-vs-baselines comparison across *all five* proximity
//      algorithms on one dataset, to show the plug-in is workload-agnostic.
//
// Flags: --n=256  --seed=42

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "algo/boruvka.h"
#include "algo/join.h"
#include "algo/dbscan.h"
#include "algo/kcenter.h"
#include "algo/tsp.h"
#include "bench/common.h"
#include "bounds/scheme.h"
#include "oracle/vector_oracle.h"
#include "bounds/pivots.h"
#include "harness/flags.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 256));
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Dataset dataset = MakeSfPoiLike(n, seed);
  const uint32_t logn = DefaultNumLandmarks(n);

  // --- (1) bootstrap landmark count for Tri (Prim) ---
  {
    TablePrinter table({"bootstrap landmarks", "construction calls",
                        "workload calls", "total calls"});
    const Workload workload = benchutil::PrimWorkload();
    double reference = 0.0;
    for (const uint32_t k : {0u, 2u, logn / 2, logn, 2 * logn, 3 * logn}) {
      WorkloadConfig config;
      config.scheme = SchemeKind::kTri;
      config.bootstrap = k > 0;
      config.num_landmarks = k > 0 ? k : 1;
      config.seed = seed;
      const WorkloadResult r =
          RunWorkload(dataset.oracle.get(), config, workload);
      if (reference == 0.0) {
        reference = r.value;
      } else {
        benchutil::CheckSameResult(reference, r.value, "ablation bootstrap");
      }
      table.NewRow()
          .AddUint(k)
          .AddUint(r.construction_calls)
          .AddUint(r.total_calls - r.construction_calls)
          .AddUint(r.total_calls);
    }
    table.Print(
        "Ablation 1 — Tri Scheme bootstrap budget (Prim, SF-like): seed "
        "triangles pay for themselves up to ~log2 n landmarks");
    std::printf("\n");
  }

  // --- (2) construction cost per scheme ---
  {
    TablePrinter table({"scheme", "construction calls",
                        "% of all-pairs budget"});
    const Workload noop = [](BoundedResolver*) { return 0.0; };
    for (const auto& [label, scheme, bootstrap] :
         {std::tuple<const char*, SchemeKind, bool>{"tri (no bootstrap)",
                                                    SchemeKind::kTri, false},
          {"tri (bootstrap)", SchemeKind::kTri, true},
          {"laesa", SchemeKind::kLaesa, false},
          {"tlaesa", SchemeKind::kTlaesa, false},
          {"adm", SchemeKind::kAdm, false}}) {
      WorkloadConfig config;
      config.scheme = scheme;
      config.bootstrap = bootstrap;
      config.seed = seed;
      const WorkloadResult r = RunWorkload(dataset.oracle.get(), config, noop);
      table.NewRow()
          .AddCell(label)
          .AddUint(r.construction_calls)
          .AddPercent(static_cast<double>(r.construction_calls) /
                      static_cast<double>(benchutil::PairCount(n)));
    }
    table.Print("Ablation 2 — construction-time oracle calls per scheme");
    std::printf("\n");
  }

  // --- (3) one dataset, every proximity algorithm ---
  {
    TablePrinter table({"algorithm", "without-plug", "ts-nb", "tri (bootstrap)",
                        "best save (%)"});
    const std::vector<std::pair<const char*, Workload>> workloads = {
        {"prim-mst", benchutil::PrimWorkload()},
        {"kruskal-mst", benchutil::KruskalWorkload()},
        {"boruvka-mst",
         [](BoundedResolver* r) { return BoruvkaMst(r).total_weight; }},
        {"knn-graph (k=5)", benchutil::KnnWorkload(5)},
        {"pam (l=10)", benchutil::PamWorkload(10)},
        {"clarans (l=10)", benchutil::ClaransWorkload(10, seed + 9)},
        {"k-center (k=8)",
         [](BoundedResolver* r) { return KCenterCluster(r, 8).radius; }},
        {"dbscan",
         [](BoundedResolver* r) {
           DbscanOptions options;
           options.eps = 12.0;
           options.min_pts = 4;
           return static_cast<double>(DbscanCluster(r, options).num_clusters);
         }},
        {"tsp-2approx",
         [](BoundedResolver* r) { return TspTwoApproximation(r).length; }},
        {"similarity-join",
         [](BoundedResolver* r) {
           double checksum = 0.0;
           for (const WeightedEdge& e : SimilarityJoin(r, 12.0)) {
             checksum += e.weight;
           }
           return checksum;
         }},
    };
    for (const auto& [label, workload] : workloads) {
      WorkloadConfig none;
      none.scheme = SchemeKind::kNone;
      none.seed = seed;
      const WorkloadResult base =
          RunWorkload(dataset.oracle.get(), none, workload);
      WorkloadConfig ts_nb_config;
      ts_nb_config.scheme = SchemeKind::kTri;
      ts_nb_config.seed = seed;
      const WorkloadResult ts_nb =
          RunWorkload(dataset.oracle.get(), ts_nb_config, workload);
      WorkloadConfig tri;
      tri.scheme = SchemeKind::kTri;
      tri.bootstrap = true;
      tri.seed = seed;
      const WorkloadResult plugged =
          RunWorkload(dataset.oracle.get(), tri, workload);
      benchutil::CheckSameResult(base.value, ts_nb.value, label);
      benchutil::CheckSameResult(base.value, plugged.value, label);
      const uint64_t best =
          std::min(ts_nb.total_calls, plugged.total_calls);
      table.NewRow()
          .AddCell(label)
          .AddUint(base.total_calls)
          .AddUint(ts_nb.total_calls)
          .AddUint(plugged.total_calls)
          .AddPercent(SaveFraction(best, base.total_calls));
    }
    table.Print(
        "Ablation 3 — the plug-in is algorithm-agnostic (SF-like, includes "
        "the paper's future-work adaptations k-center and TSP). For cheap "
        "algorithms (k-center: only k*n calls), the bootstrap cannot "
        "amortize — use TS-NB there");
  }
  // --- (4) hybrid scheme: is Tri ∧ LAESA worth the double query cost? ---
  {
    TablePrinter table({"scheme", "total calls", "CPU overhead (s)"});
    const Workload workload = benchutil::PrimWorkload();
    double reference = 0.0;
    for (const auto& [label, scheme, bootstrap] :
         {std::tuple<const char*, SchemeKind, bool>{"tri (bootstrap)",
                                                    SchemeKind::kTri, true},
          {"laesa", SchemeKind::kLaesa, false},
          {"tri+laesa (hybrid)", SchemeKind::kHybrid, false}}) {
      WorkloadConfig config;
      config.scheme = scheme;
      config.bootstrap = bootstrap;
      config.seed = seed;
      const WorkloadResult r =
          RunWorkload(dataset.oracle.get(), config, workload);
      if (reference == 0.0) {
        reference = r.value;
      } else {
        benchutil::CheckSameResult(reference, r.value, "ablation hybrid");
      }
      table.NewRow()
          .AddCell(label)
          .AddUint(r.total_calls)
          .AddDouble(r.stats.bounder_seconds, 4);
    }
    table.Print(
        "\nAblation 4 — hybrid Tri ∧ LAESA (Prim, SF-like): the landmark "
        "table doubles as the bootstrap, so the hybrid matches Tri's calls "
        "with LAESA's cold-start coverage");
  }
  // --- (5) relaxed triangle inequality: rho=2 Tri on squared Euclidean ---
  {
    Dataset squared = MakeClusteredEuclidean(n, 2, 6, 0.03, seed);
    // Re-wrap the same points under the squared metric.
    auto* base = static_cast<VectorOracle*>(squared.oracle.get());
    VectorOracle squared_oracle(base->points(), VectorMetric::kSquaredEuclidean);
    const Workload workload = benchutil::PrimWorkload();

    WorkloadConfig none;
    none.scheme = SchemeKind::kNone;
    none.seed = seed;
    const WorkloadResult plain = RunWorkload(&squared_oracle, none, workload);

    WorkloadConfig tri_rho;
    tri_rho.scheme = SchemeKind::kTri;
    tri_rho.bootstrap = true;
    tri_rho.rho = 2.0;
    tri_rho.seed = seed;
    const WorkloadResult relaxed =
        RunWorkload(&squared_oracle, tri_rho, workload);
    benchutil::CheckSameResult(plain.value, relaxed.value, "ablation rho");

    TablePrinter table({"scheme", "total calls", "save (%)"});
    table.NewRow().AddCell("without-plug").AddUint(plain.total_calls).AddPercent(0.0);
    table.NewRow()
        .AddCell("tri (rho=2)")
        .AddUint(relaxed.total_calls)
        .AddPercent(SaveFraction(relaxed.total_calls, plain.total_calls));
    table.Print(
        "\nAblation 5 — relaxed triangle inequality: Prim over *squared* "
        "Euclidean (a rho=2 semimetric) with the rho-aware Tri Scheme "
        "still returns the exact MST and still saves");
  }
  return 0;
}
