// Dual-oracle sweep: how much strong-oracle spend does a weak (cheap,
// noisy) oracle remove at different advertised error factors? Each cell is
// an A-B run against the weak-free baseline of the same configuration —
// byte-identical outputs are asserted as a side effect (the exactness
// theorem extended to the third bound source) — and reports strong calls,
// weak calls, the weak-decided share and wall time. Rows land in BENCH
// JSON through the env-gated BenchJson path (METRICPROX_BENCH_JSON_DIR).
//
// Flags: --n=480   --clusters=48   --spread=0.003   --seed=31   --k=4

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/boruvka.h"
#include "bench/common.h"
#include "core/logging.h"
#include "data/datasets.h"
#include "harness/experiment.h"
#include "harness/flags.h"
#include "harness/table.h"

namespace {

using metricprox::BoundedResolver;
using metricprox::BoruvkaMst;
using metricprox::Dataset;
using metricprox::ObjectId;
using metricprox::RunWorkload;
using metricprox::SchemeKind;
using metricprox::Workload;
using metricprox::WorkloadConfig;
using metricprox::WorkloadResult;
using metricprox::benchutil::BenchJson;
using metricprox::benchutil::PairCount;

constexpr double kAlphas[] = {1.05, 1.25, 2.0};

struct Stage {
  std::string label;
  Workload workload;
};

}  // namespace

int main(int argc, char** argv) {
  auto flags = metricprox::Flags::Parse(argc, argv);
  CHECK(flags.ok()) << flags.status();
  const ObjectId n = static_cast<ObjectId>(flags->GetInt("n", 480));
  const uint32_t clusters =
      static_cast<uint32_t>(flags->GetInt("clusters", 48));
  const double spread = flags->GetDouble("spread", 0.003);
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 31));
  const uint32_t k = static_cast<uint32_t>(flags->GetInt("k", 4));
  const metricprox::Status unused = flags->FailOnUnused();
  if (!unused.ok()) {
    std::fprintf(stderr, "%s\n", unused.ToString().c_str());
    return 1;
  }

  Dataset dataset =
      metricprox::MakeClusteredEuclidean(n, 2, clusters, spread, seed);
  const std::vector<Stage> stages = {
      {"knn-graph", metricprox::benchutil::KnnWorkload(k)},
      {"mst-boruvka",
       [](BoundedResolver* r) { return BoruvkaMst(r).total_weight; }},
      {"mst-prim", metricprox::benchutil::PrimWorkload()},
  };

  std::printf(
      "Dual-oracle sweep on %u points in %u tight clusters (%llu pairs): "
      "each alpha row is\nan A-B run vs the weak-free baseline with "
      "byte-identical outputs asserted.\n",
      static_cast<unsigned>(n), static_cast<unsigned>(clusters),
      static_cast<unsigned long long>(PairCount(n)));

  BenchJson json("dual oracle sweep");
  metricprox::TablePrinter table({"workload", "alpha", "strong calls",
                                  "save", "weak calls", "weak-decided",
                                  "wall (ms)"});
  for (const Stage& stage : stages) {
    WorkloadConfig base;
    base.scheme = SchemeKind::kNone;
    base.seed = seed;
    const WorkloadResult baseline =
        RunWorkload(dataset.oracle.get(), base, stage.workload);
    table.NewRow()
        .AddCell(stage.label)
        .AddCell("-")
        .AddUint(baseline.stats.oracle_calls)
        .AddCell("-")
        .AddUint(0)
        .AddUint(0)
        .AddDouble(baseline.wall_seconds * 1e3, 3);
    json.NewRow()
        .Add("workload", stage.label)
        .Add("alpha", 0.0)
        .Add("strong_calls", baseline.stats.oracle_calls)
        .Add("weak_calls", uint64_t{0})
        .Add("decided_by_weak", uint64_t{0})
        .Add("wall_ms", baseline.wall_seconds * 1e3);

    for (const double alpha : kAlphas) {
      WorkloadConfig weak = base;
      weak.weak_alpha = alpha;
      const WorkloadResult informed =
          RunWorkload(dataset.oracle.get(), weak, stage.workload);
      metricprox::benchutil::CheckSameResult(
          baseline.value, informed.value,
          stage.label + " alpha=" + std::to_string(alpha));
      const double save =
          metricprox::SaveFraction(informed.stats.oracle_calls,
                                   baseline.stats.oracle_calls);
      table.NewRow()
          .AddCell(stage.label)
          .AddDouble(alpha, 2)
          .AddUint(informed.stats.oracle_calls)
          .AddCell(std::to_string(static_cast<int>(100.0 * save)) + "%")
          .AddUint(informed.stats.weak_calls)
          .AddUint(informed.stats.decided_by_weak)
          .AddDouble(informed.wall_seconds * 1e3, 3);
      json.NewRow()
          .Add("workload", stage.label)
          .Add("alpha", alpha)
          .Add("strong_calls", informed.stats.oracle_calls)
          .Add("weak_calls", informed.stats.weak_calls)
          .Add("decided_by_weak", informed.stats.decided_by_weak)
          .Add("wall_ms", informed.wall_seconds * 1e3)
          .Add("save_fraction", save);
    }
  }
  table.Print("clustered n=" + std::to_string(n) +
              ": strong-oracle spend vs weak error factor");
  const std::string written = json.Write();
  if (!written.empty()) {
    std::printf("BENCH JSON: %s\n", written.c_str());
  }
  return 0;
}
