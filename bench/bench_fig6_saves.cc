// Reproduces paper Figure 6: oracle-call save-ups of the Tri Scheme inside
// four proximity workloads, growing with dataset size.
//  (a) Kruskal's MST on UrbanGB-like,
//  (b) KNNrp-style k-NN graph construction (k = 5) on UrbanGB-like,
//  (c) PAM (l = 10) on UrbanGB-like,
//  (d) PAM (l = 10) on SF-POI-like.
//
// Flags: --seed=42  --big=true (adds one larger size per sub-figure)

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "harness/flags.h"

int main(int argc, char** argv) {
  using namespace metricprox;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  const bool big = flags->GetBool("big", false);
  if (const Status s = flags->FailOnUnused(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::vector<ObjectId> mst_sizes = {128, 256, 512};
  std::vector<ObjectId> knn_sizes = {128, 256, 512};
  std::vector<ObjectId> pam_sizes = {64, 128, 256};
  if (big) {
    mst_sizes.push_back(1024);
    knn_sizes.push_back(1024);
    pam_sizes.push_back(384);
  }

  const auto urbangb = [](ObjectId n, uint64_t s) {
    return MakeUrbanGbLike(n, s);
  };
  const auto sf = [](ObjectId n, uint64_t s) { return MakeSfPoiLike(n, s); };

  benchutil::RunCallCountSweep(
      "Figure 6a — Kruskal's algorithm distance save-up (UrbanGB-like)",
      urbangb, [](ObjectId) { return benchutil::KruskalWorkload(); },
      mst_sizes, seed);

  benchutil::RunCallCountSweep(
      "Figure 6b — KNNrp (k=5) distance save-up (UrbanGB-like)", urbangb,
      [](ObjectId) { return benchutil::KnnWorkload(5); }, knn_sizes, seed);

  benchutil::RunCallCountSweep(
      "Figure 6c — PAM (l=10) distance calls vs size (UrbanGB-like)",
      urbangb, [](ObjectId) { return benchutil::PamWorkload(10); },
      pam_sizes, seed);

  benchutil::RunCallCountSweep(
      "Figure 6d — PAM (l=10) distance calls vs size (SF-POI-like)", sf,
      [](ObjectId) { return benchutil::PamWorkload(10); }, pam_sizes, seed);
  return 0;
}
