// End-to-end metamorphic stress test: random (dataset, scheme, algorithm)
// configurations, each asserting the framework's two global invariants —
//   (1) the plugged run's output equals the unplugged run's, and
//   (2) the plugged run never makes more oracle calls than all-pairs.
// This is the broad net behind the per-module tests: any bounder returning
// an interval that misses the true distance, or any algorithm mishandling
// a tie, shows up here as a checksum mismatch on some configuration.

#include <cmath>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/clarans.h"
#include "algo/dbscan.h"
#include "algo/kcenter.h"
#include "algo/knn_graph.h"
#include "algo/kruskal.h"
#include "algo/linkage.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "algo/search.h"
#include "bounds/scheme.h"
#include "data/datasets.h"
#include "harness/experiment.h"

namespace metricprox {
namespace {

struct StressCase {
  const char* dataset;
  const char* algorithm;
  SchemeKind scheme;
  bool bootstrap;
};

Dataset MakeDataset(const std::string& name, ObjectId n, uint64_t seed) {
  if (name == "sf") return MakeSfPoiLike(n, seed);
  if (name == "urbangb") return MakeUrbanGbLike(n, seed);
  if (name == "flickr") return MakeFlickrLike(n, 64, seed);
  if (name == "dna") return MakeDnaLike(n, 40, seed);
  if (name == "clustered") return MakeClusteredEuclidean(n, 3, 4, 0.05, seed);
  return MakeRandomMetric(n, seed);
}

Workload MakeWorkload(const std::string& name, uint64_t seed) {
  if (name == "prim") {
    return [](BoundedResolver* r) { return PrimMst(r).total_weight; };
  }
  if (name == "prim-lazy") {
    return [](BoundedResolver* r) { return PrimMstLazy(r).total_weight; };
  }
  if (name == "kruskal") {
    return [](BoundedResolver* r) { return KruskalMst(r).total_weight; };
  }
  if (name == "knn") {
    return [](BoundedResolver* r) {
      double acc = 0.0;
      for (const auto& row : BuildKnnGraph(r, KnnGraphOptions{3})) {
        for (const KnnNeighbor& nb : row) acc += nb.distance;
      }
      return acc;
    };
  }
  if (name == "pam") {
    return [](BoundedResolver* r) {
      PamOptions options;
      options.num_medoids = 4;
      const ClusteringResult c = PamCluster(r, options);
      double acc = c.total_deviation;
      for (const ObjectId m : c.medoids) acc += m;  // medoid identity too
      return acc;
    };
  }
  if (name == "clarans") {
    return [seed](BoundedResolver* r) {
      ClaransOptions options;
      options.num_medoids = 4;
      options.seed = seed;
      return ClaransCluster(r, options).total_deviation;
    };
  }
  if (name == "kcenter") {
    return [](BoundedResolver* r) {
      const KCenterResult c = KCenterCluster(r, 5);
      double acc = c.radius;
      for (const ObjectId center : c.centers) acc += center;
      return acc;
    };
  }
  if (name == "dbscan") {
    return [](BoundedResolver* r) {
      DbscanOptions options;
      options.eps = 0.45;
      options.min_pts = 3;
      const DbscanResult c = DbscanCluster(r, options);
      double acc = c.num_clusters;
      for (size_t o = 0; o < c.labels.size(); ++o) {
        acc += static_cast<double>(c.labels[o]) * static_cast<double>(o + 1);
      }
      return acc;
    };
  }
  if (name == "linkage") {
    return [](BoundedResolver* r) {
      double acc = 0.0;
      for (const LinkageMerge& m : SingleLinkageCluster(r).merges) {
        acc += m.height;
      }
      return acc;
    };
  }
  // diameter
  return [](BoundedResolver* r) {
    const DiameterEstimate d = ApproximateDiameter(r);
    return d.distance + d.u + d.v;
  };
}

class StressTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, const char*, SchemeKind>> {};

TEST_P(StressTest, PluggedEqualsUnpluggedAndNeverOverpays) {
  const auto [dataset_name, algorithm, scheme] = GetParam();
  const ObjectId n = 48;
  const uint64_t seed = 1234;
  Dataset dataset = MakeDataset(dataset_name, n, seed);
  const Workload workload = MakeWorkload(algorithm, seed);

  WorkloadConfig vanilla;
  vanilla.scheme = SchemeKind::kNone;
  vanilla.seed = seed;
  const WorkloadResult base =
      RunWorkload(dataset.oracle.get(), vanilla, workload);

  WorkloadConfig plugged;
  plugged.scheme = scheme;
  plugged.bootstrap = (scheme == SchemeKind::kTri);
  plugged.seed = seed;
  plugged.max_distance = dataset.max_distance;
  const WorkloadResult got =
      RunWorkload(dataset.oracle.get(), plugged, workload);

  EXPECT_NEAR(got.value, base.value, 1e-6 * (1.0 + std::abs(base.value)))
      << dataset_name << "/" << algorithm << "/" << SchemeKindName(scheme);
  const uint64_t all_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  EXPECT_LE(got.total_calls, all_pairs);
  EXPECT_LE(base.total_calls, all_pairs);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StressTest,
    ::testing::Combine(
        ::testing::Values("sf", "flickr", "dna", "clustered", "random"),
        ::testing::Values("prim", "prim-lazy", "kruskal", "knn", "pam",
                          "clarans", "kcenter", "linkage", "dbscan",
                          "diameter"),
        ::testing::Values(SchemeKind::kTri, SchemeKind::kLaesa,
                          SchemeKind::kTlaesa, SchemeKind::kHybrid)));

// ---------------------------------------------------------------------------
// Batch-transport equivalence: the batched pipeline (one BatchDistance
// round-trip per undecided remainder) and the scalar pipeline (a per-pair
// Distance loop) must produce byte-identical outputs and identical resolver
// counters for every algorithm x scheme x seed — the resolver makes every
// decision before any resolution, so the transport can never influence the
// result. A single diverging double or counter fails here.
// ---------------------------------------------------------------------------

struct EquivalenceRun {
  // Flattened algorithm output: ids and distances in structure order.
  std::vector<double> blob;
  ResolverStats stats;
};

EquivalenceRun RunForEquivalence(const Dataset& dataset,
                                 const std::string& algorithm,
                                 SchemeKind scheme, uint64_t seed,
                                 double max_distance, bool batch_transport) {
  PartialDistanceGraph graph(dataset.oracle->num_objects());
  BoundedResolver resolver(dataset.oracle.get(), &graph);
  resolver.SetBatchTransport(batch_transport);
  SchemeOptions options;
  options.seed = seed;
  options.max_distance = max_distance;
  StatusOr<std::unique_ptr<Bounder>> bounder =
      MakeAndAttachScheme(scheme, &resolver, options);
  CHECK(bounder.ok()) << bounder.status();

  EquivalenceRun run;
  auto push_edge = [&run](const WeightedEdge& e) {
    run.blob.push_back(e.u);
    run.blob.push_back(e.v);
    run.blob.push_back(e.weight);
  };
  if (algorithm == "prim") {
    for (const WeightedEdge& e : PrimMst(&resolver).edges) push_edge(e);
  } else if (algorithm == "boruvka") {
    for (const WeightedEdge& e : BoruvkaMst(&resolver).edges) push_edge(e);
  } else if (algorithm == "knn") {
    for (const auto& row : BuildKnnGraph(&resolver, KnnGraphOptions{3})) {
      for (const KnnNeighbor& nb : row) {
        run.blob.push_back(nb.id);
        run.blob.push_back(nb.distance);
      }
    }
  } else {  // pam
    PamOptions options_pam;
    options_pam.num_medoids = 4;
    const ClusteringResult c = PamCluster(&resolver, options_pam);
    for (const ObjectId m : c.medoids) run.blob.push_back(m);
    for (const uint32_t a : c.assignment) run.blob.push_back(a);
    run.blob.push_back(c.total_deviation);
    run.blob.push_back(c.iterations);
  }
  run.stats = resolver.stats();
  return run;
}

class BatchEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, const char*, SchemeKind, uint64_t>> {};

TEST_P(BatchEquivalenceTest, TransportsProduceIdenticalOutputsAndCalls) {
  const auto [dataset_name, algorithm, scheme, seed] = GetParam();
  const ObjectId n = 40;
  Dataset dataset = MakeDataset(dataset_name, n, seed);

  const EquivalenceRun batched = RunForEquivalence(
      dataset, algorithm, scheme, seed, dataset.max_distance, true);
  const EquivalenceRun scalar = RunForEquivalence(
      dataset, algorithm, scheme, seed, dataset.max_distance, false);

  // Byte-identical structures (exact double equality, element by element).
  EXPECT_EQ(batched.blob, scalar.blob)
      << dataset_name << "/" << algorithm << "/" << SchemeKindName(scheme);
  // Identical decision accounting: same oracle_calls, same comparison
  // partition, same bound queries. Only batch_* attribution may differ.
  EXPECT_EQ(batched.stats.oracle_calls, scalar.stats.oracle_calls);
  EXPECT_EQ(batched.stats.comparisons, scalar.stats.comparisons);
  EXPECT_EQ(batched.stats.decided_by_bounds, scalar.stats.decided_by_bounds);
  EXPECT_EQ(batched.stats.decided_by_cache, scalar.stats.decided_by_cache);
  EXPECT_EQ(batched.stats.decided_by_oracle, scalar.stats.decided_by_oracle);
  EXPECT_EQ(batched.stats.bound_queries, scalar.stats.bound_queries);
  EXPECT_EQ(scalar.stats.batch_calls, 0u);
  EXPECT_LE(batched.stats.batch_resolved_pairs, batched.stats.oracle_calls);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BatchEquivalenceTest,
    ::testing::Combine(::testing::Values("sf", "dna", "random"),
                       ::testing::Values("prim", "boruvka", "knn", "pam"),
                       ::testing::Values(SchemeKind::kTri, SchemeKind::kLaesa,
                                         SchemeKind::kTlaesa,
                                         SchemeKind::kHybrid),
                       ::testing::Values(1234u, 99u)));

// On road-network data the whole point of batching is amortization: a
// Dijkstra row answers many pairs, so shipping the undecided remainder as
// one BatchDistance must take >= 4x fewer oracle round-trips than the
// scalar path's one-call-per-pair — without spending a single extra call.
TEST(BatchRoundTripTest, BatchedPrimAmortizesRoadNetworkRoundTrips) {
  const ObjectId n = 48;
  const uint64_t seed = 1234;
  for (const SchemeKind scheme : {SchemeKind::kNone, SchemeKind::kTri}) {
    Dataset dataset = MakeDataset("sf", n, seed);
    const EquivalenceRun batched = RunForEquivalence(
        dataset, "prim", scheme, seed, dataset.max_distance, true);
    const EquivalenceRun scalar = RunForEquivalence(
        dataset, "prim", scheme, seed, dataset.max_distance, false);

    // No call regression: the batched transport spends exactly the calls
    // the scalar transport would have.
    EXPECT_EQ(batched.stats.oracle_calls, scalar.stats.oracle_calls);
    // Scalar issues one round-trip per oracle call; batched must need at
    // least 4x fewer round-trips for the same pairs.
    ASSERT_GT(batched.stats.batch_calls, 0u);
    EXPECT_LE(batched.stats.batch_calls * 4, scalar.stats.oracle_calls)
        << SchemeKindName(scheme);
    EXPECT_EQ(batched.stats.batch_resolved_pairs, batched.stats.oracle_calls)
        << "every Prim resolution should flow through the batch path";
  }
}

}  // namespace
}  // namespace metricprox
