// End-to-end metamorphic stress test: random (dataset, scheme, algorithm)
// configurations, each asserting the framework's two global invariants —
//   (1) the plugged run's output equals the unplugged run's, and
//   (2) the plugged run never makes more oracle calls than all-pairs.
// This is the broad net behind the per-module tests: any bounder returning
// an interval that misses the true distance, or any algorithm mishandling
// a tie, shows up here as a checksum mismatch on some configuration.

#include <cmath>

#include <gtest/gtest.h>

#include "algo/clarans.h"
#include "algo/dbscan.h"
#include "algo/kcenter.h"
#include "algo/knn_graph.h"
#include "algo/kruskal.h"
#include "algo/linkage.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "algo/search.h"
#include "bounds/scheme.h"
#include "data/datasets.h"
#include "harness/experiment.h"

namespace metricprox {
namespace {

struct StressCase {
  const char* dataset;
  const char* algorithm;
  SchemeKind scheme;
  bool bootstrap;
};

Dataset MakeDataset(const std::string& name, ObjectId n, uint64_t seed) {
  if (name == "sf") return MakeSfPoiLike(n, seed);
  if (name == "urbangb") return MakeUrbanGbLike(n, seed);
  if (name == "flickr") return MakeFlickrLike(n, 64, seed);
  if (name == "dna") return MakeDnaLike(n, 40, seed);
  if (name == "clustered") return MakeClusteredEuclidean(n, 3, 4, 0.05, seed);
  return MakeRandomMetric(n, seed);
}

Workload MakeWorkload(const std::string& name, uint64_t seed) {
  if (name == "prim") {
    return [](BoundedResolver* r) { return PrimMst(r).total_weight; };
  }
  if (name == "prim-lazy") {
    return [](BoundedResolver* r) { return PrimMstLazy(r).total_weight; };
  }
  if (name == "kruskal") {
    return [](BoundedResolver* r) { return KruskalMst(r).total_weight; };
  }
  if (name == "knn") {
    return [](BoundedResolver* r) {
      double acc = 0.0;
      for (const auto& row : BuildKnnGraph(r, KnnGraphOptions{3})) {
        for (const KnnNeighbor& nb : row) acc += nb.distance;
      }
      return acc;
    };
  }
  if (name == "pam") {
    return [](BoundedResolver* r) {
      PamOptions options;
      options.num_medoids = 4;
      const ClusteringResult c = PamCluster(r, options);
      double acc = c.total_deviation;
      for (const ObjectId m : c.medoids) acc += m;  // medoid identity too
      return acc;
    };
  }
  if (name == "clarans") {
    return [seed](BoundedResolver* r) {
      ClaransOptions options;
      options.num_medoids = 4;
      options.seed = seed;
      return ClaransCluster(r, options).total_deviation;
    };
  }
  if (name == "kcenter") {
    return [](BoundedResolver* r) {
      const KCenterResult c = KCenterCluster(r, 5);
      double acc = c.radius;
      for (const ObjectId center : c.centers) acc += center;
      return acc;
    };
  }
  if (name == "dbscan") {
    return [](BoundedResolver* r) {
      DbscanOptions options;
      options.eps = 0.45;
      options.min_pts = 3;
      const DbscanResult c = DbscanCluster(r, options);
      double acc = c.num_clusters;
      for (size_t o = 0; o < c.labels.size(); ++o) {
        acc += static_cast<double>(c.labels[o]) * static_cast<double>(o + 1);
      }
      return acc;
    };
  }
  if (name == "linkage") {
    return [](BoundedResolver* r) {
      double acc = 0.0;
      for (const LinkageMerge& m : SingleLinkageCluster(r).merges) {
        acc += m.height;
      }
      return acc;
    };
  }
  // diameter
  return [](BoundedResolver* r) {
    const DiameterEstimate d = ApproximateDiameter(r);
    return d.distance + d.u + d.v;
  };
}

class StressTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, const char*, SchemeKind>> {};

TEST_P(StressTest, PluggedEqualsUnpluggedAndNeverOverpays) {
  const auto [dataset_name, algorithm, scheme] = GetParam();
  const ObjectId n = 48;
  const uint64_t seed = 1234;
  Dataset dataset = MakeDataset(dataset_name, n, seed);
  const Workload workload = MakeWorkload(algorithm, seed);

  WorkloadConfig vanilla;
  vanilla.scheme = SchemeKind::kNone;
  vanilla.seed = seed;
  const WorkloadResult base =
      RunWorkload(dataset.oracle.get(), vanilla, workload);

  WorkloadConfig plugged;
  plugged.scheme = scheme;
  plugged.bootstrap = (scheme == SchemeKind::kTri);
  plugged.seed = seed;
  plugged.max_distance = dataset.max_distance;
  const WorkloadResult got =
      RunWorkload(dataset.oracle.get(), plugged, workload);

  EXPECT_NEAR(got.value, base.value, 1e-6 * (1.0 + std::abs(base.value)))
      << dataset_name << "/" << algorithm << "/" << SchemeKindName(scheme);
  const uint64_t all_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  EXPECT_LE(got.total_calls, all_pairs);
  EXPECT_LE(base.total_calls, all_pairs);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StressTest,
    ::testing::Combine(
        ::testing::Values("sf", "flickr", "dna", "clustered", "random"),
        ::testing::Values("prim", "prim-lazy", "kruskal", "knn", "pam",
                          "clarans", "kcenter", "linkage", "dbscan",
                          "diameter"),
        ::testing::Values(SchemeKind::kTri, SchemeKind::kLaesa,
                          SchemeKind::kTlaesa, SchemeKind::kHybrid)));

}  // namespace
}  // namespace metricprox
