#include "algo/knn_graph.h"

#include <gtest/gtest.h>

#include "algo/reference.h"
#include "bounds/scheme.h"
#include "data/synthetic.h"
#include "oracle/string_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

TEST(KnnGraphTest, MatchesReferenceWithoutPlug) {
  const ObjectId n = 24;
  ResolverStack stack = MakeRandomStack(n, 51);
  KnnGraphOptions options;
  options.k = 4;
  const KnnGraph got = BuildKnnGraph(stack.resolver.get(), options);
  const KnnGraph expected = ReferenceKnnGraph(stack.oracle.get(), 4);
  ASSERT_EQ(got.size(), expected.size());
  for (ObjectId u = 0; u < n; ++u) {
    ASSERT_EQ(got[u], expected[u]) << "object " << u;
  }
}

TEST(KnnGraphTest, NeighborsSortedAscending) {
  ResolverStack stack = MakeRandomStack(20, 52);
  const KnnGraph g = BuildKnnGraph(stack.resolver.get(), KnnGraphOptions{5});
  for (const auto& nbrs : g) {
    ASSERT_EQ(nbrs.size(), 5u);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_TRUE(nbrs[i - 1].distance < nbrs[i].distance ||
                  (nbrs[i - 1].distance == nbrs[i].distance &&
                   nbrs[i - 1].id < nbrs[i].id));
    }
  }
}

class KnnSchemeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, uint32_t>> {};

TEST_P(KnnSchemeEquivalenceTest, SameGraphUnderEveryScheme) {
  const auto [kind, k] = GetParam();
  const ObjectId n = 20;
  ResolverStack stack = MakeRandomStack(n, 53);
  const KnnGraph expected = ReferenceKnnGraph(stack.oracle.get(), k);

  ResolverStack plugged = MakeRandomStack(n, 53);
  SchemeOptions options;
  auto bounder = MakeAndAttachScheme(kind, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  const KnnGraph got = BuildKnnGraph(plugged.resolver.get(), KnnGraphOptions{k});
  for (ObjectId u = 0; u < n; ++u) {
    ASSERT_EQ(got[u], expected[u])
        << "scheme " << SchemeKindName(kind) << " object " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndK, KnnSchemeEquivalenceTest,
    ::testing::Combine(::testing::Values(SchemeKind::kNone, SchemeKind::kTri,
                                         SchemeKind::kSplub,
                                         SchemeKind::kLaesa,
                                         SchemeKind::kTlaesa),
                       ::testing::Values(1u, 3u, 7u)));

TEST(KnnGraphTest, TieHeavyIntegerMetricStillMatchesReference) {
  // Edit distance produces many exact ties — the hardest case for the
  // (distance, id) tie-break logic.
  std::vector<std::string> strings =
      DnaFamilyStrings(30, 24, /*num_families=*/3, /*mutations=*/2, 99);
  auto make_oracle = [&]() {
    return std::make_unique<LevenshteinOracle>(strings);
  };
  auto reference_oracle = make_oracle();
  const KnnGraph expected = ReferenceKnnGraph(reference_oracle.get(), 5);

  for (SchemeKind kind : {SchemeKind::kNone, SchemeKind::kTri,
                          SchemeKind::kSplub, SchemeKind::kLaesa}) {
    auto oracle = make_oracle();
    PartialDistanceGraph graph(30);
    BoundedResolver resolver(oracle.get(), &graph);
    SchemeOptions options;
    auto bounder = MakeAndAttachScheme(kind, &resolver, options);
    ASSERT_TRUE(bounder.ok());
    const KnnGraph got = BuildKnnGraph(&resolver, KnnGraphOptions{5});
    for (ObjectId u = 0; u < 30; ++u) {
      ASSERT_EQ(got[u], expected[u])
          << "scheme " << SchemeKindName(kind) << " object " << u;
    }
  }
}

TEST(KnnGraphTest, TriSavesCallsOnClusteredData) {
  const ObjectId n = 64;
  auto make_stack = [&]() {
    ResolverStack stack;
    stack.oracle = std::make_unique<VectorOracle>(
        GaussianMixturePoints(n, 2, 4, 100.0, 1.5, 7),
        VectorMetric::kEuclidean);
    stack.graph = std::make_unique<PartialDistanceGraph>(n);
    stack.resolver = std::make_unique<BoundedResolver>(stack.oracle.get(),
                                                       stack.graph.get());
    return stack;
  };
  ResolverStack vanilla = make_stack();
  BuildKnnGraph(vanilla.resolver.get(), KnnGraphOptions{5});
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = make_stack();
  BootstrapWithLandmarks(plugged.resolver.get(), 6, 1);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  BuildKnnGraph(plugged.resolver.get(), KnnGraphOptions{5});
  EXPECT_LT(plugged.resolver->stats().oracle_calls, baseline);
}

TEST(KnnGraphTest, RequiresMoreObjectsThanK) {
  ResolverStack stack = MakeRandomStack(5, 54);
  EXPECT_DEATH(BuildKnnGraph(stack.resolver.get(), KnnGraphOptions{5}),
               "more objects");
}

}  // namespace
}  // namespace metricprox
