#include "algo/search.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "algo/reference.h"
#include "bounds/scheme.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

TEST(KnnSearchTest, MatchesReferenceGraphRow) {
  const ObjectId n = 24;
  ResolverStack stack = MakeRandomStack(n, 81);
  const KnnGraph expected = ReferenceKnnGraph(stack.oracle.get(), 4);
  for (ObjectId q = 0; q < n; ++q) {
    ASSERT_EQ(KnnSearch(stack.resolver.get(), q, 4), expected[q]);
  }
}

class KnnSearchSchemeTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(KnnSearchSchemeTest, SchemeIndependentResult) {
  const ObjectId n = 20;
  ResolverStack stack = MakeRandomStack(n, 82);
  const KnnGraph expected = ReferenceKnnGraph(stack.oracle.get(), 3);

  ResolverStack plugged = MakeRandomStack(n, 82);
  SchemeOptions options;
  auto bounder = MakeAndAttachScheme(GetParam(), plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  for (ObjectId q = 0; q < n; ++q) {
    ASSERT_EQ(KnnSearch(plugged.resolver.get(), q, 3), expected[q])
        << SchemeKindName(GetParam()) << " query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, KnnSearchSchemeTest,
                         ::testing::Values(SchemeKind::kTri,
                                           SchemeKind::kSplub,
                                           SchemeKind::kLaesa,
                                           SchemeKind::kTlaesa));

TEST(RangeSearchTest, MatchesBruteForce) {
  const ObjectId n = 26;
  ResolverStack stack = MakeRandomStack(n, 83);
  for (const double radius : {0.0, 0.3, 0.6, 0.9, 1.5}) {
    for (ObjectId q = 0; q < n; q += 5) {
      const auto hits = RangeSearch(stack.resolver.get(), q, radius);
      std::vector<KnnNeighbor> brute;
      for (ObjectId v = 0; v < n; ++v) {
        if (v == q) continue;
        const double d = stack.oracle->Distance(q, v);
        if (d <= radius) brute.push_back(KnnNeighbor{v, d});
      }
      std::sort(brute.begin(), brute.end(),
                [](const KnnNeighbor& a, const KnnNeighbor& b) {
                  if (a.distance != b.distance) return a.distance < b.distance;
                  return a.id < b.id;
                });
      ASSERT_EQ(hits, brute) << "q=" << q << " radius=" << radius;
    }
  }
}

TEST(RangeSearchTest, SchemeSavesCallsOnTightRadius) {
  const ObjectId n = 40;
  ResolverStack vanilla = MakeRandomStack(n, 84);
  RangeSearch(vanilla.resolver.get(), 0, 0.2);
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = MakeRandomStack(n, 84);
  BootstrapWithLandmarks(plugged.resolver.get(), 5, 1);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const uint64_t before = plugged.resolver->stats().oracle_calls;
  RangeSearch(plugged.resolver.get(), 0, 0.2);
  const uint64_t query_calls = plugged.resolver->stats().oracle_calls - before;
  // The query itself must resolve fewer pairs than the unpruned scan.
  EXPECT_LT(query_calls, baseline);
}

TEST(ApproximateDiameterTest, AtLeastHalfTheTrueDiameter) {
  for (uint64_t seed : {85ull, 86ull, 87ull}) {
    const ObjectId n = 30;
    ResolverStack stack = MakeRandomStack(n, seed);
    const DiameterEstimate est = ApproximateDiameter(stack.resolver.get());
    double diameter = 0.0;
    for (ObjectId i = 0; i < n; ++i) {
      for (ObjectId j = i + 1; j < n; ++j) {
        diameter = std::max(diameter, stack.oracle->Distance(i, j));
      }
    }
    EXPECT_DOUBLE_EQ(stack.oracle->Distance(est.u, est.v), est.distance);
    EXPECT_GE(est.distance, diameter / 2.0 - 1e-12);
    EXPECT_LE(est.distance, diameter + 1e-12);
  }
}

TEST(ApproximateDiameterTest, SchemeIndependentResult) {
  const ObjectId n = 26;
  ResolverStack vanilla = MakeRandomStack(n, 88);
  const DiameterEstimate expected = ApproximateDiameter(vanilla.resolver.get());

  ResolverStack plugged = MakeRandomStack(n, 88);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const DiameterEstimate got = ApproximateDiameter(plugged.resolver.get());
  EXPECT_EQ(got.u, expected.u);
  EXPECT_EQ(got.v, expected.v);
  EXPECT_DOUBLE_EQ(got.distance, expected.distance);
}

TEST(ClosestPairTest, MatchesBruteForce) {
  for (uint64_t seed : {90ull, 91ull, 92ull}) {
    const ObjectId n = 30;
    ResolverStack stack = MakeRandomStack(n, seed);
    const WeightedEdge got = ClosestPair(stack.resolver.get());
    WeightedEdge brute{kInvalidObject, kInvalidObject, kInfDistance};
    for (ObjectId u = 0; u < n; ++u) {
      for (ObjectId v = u + 1; v < n; ++v) {
        const double d = stack.oracle->Distance(u, v);
        if (d < brute.weight) brute = WeightedEdge{u, v, d};
      }
    }
    EXPECT_EQ(got.u, brute.u) << "seed " << seed;
    EXPECT_EQ(got.v, brute.v) << "seed " << seed;
    EXPECT_DOUBLE_EQ(got.weight, brute.weight);
  }
}

TEST(ClosestPairTest, SchemeIndependentAndSaves) {
  const ObjectId n = 64;
  ResolverStack vanilla = MakeRandomStack(n, 93);
  const WeightedEdge expected = ClosestPair(vanilla.resolver.get());
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = MakeRandomStack(n, 93);
  BootstrapWithLandmarks(plugged.resolver.get(), 6, 1);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const WeightedEdge got = ClosestPair(plugged.resolver.get());
  EXPECT_EQ(got.u, expected.u);
  EXPECT_EQ(got.v, expected.v);
  EXPECT_DOUBLE_EQ(got.weight, expected.weight);
  EXPECT_LT(plugged.resolver->stats().oracle_calls, baseline);
}

TEST(KnnSearchTest, InvalidArgumentsDie) {
  ResolverStack stack = MakeRandomStack(6, 89);
  EXPECT_DEATH(KnnSearch(stack.resolver.get(), 0, 6), "Check");
  EXPECT_DEATH(RangeSearch(stack.resolver.get(), 0, -1.0), "Check");
}

}  // namespace
}  // namespace metricprox
