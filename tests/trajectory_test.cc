#include "oracle/trajectory_oracle.h"

#include <cmath>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

TEST(FrechetTest, IdenticalTrajectoriesAreAtZero) {
  const Trajectory t = {{0, 0}, {1, 0}, {2, 1}};
  EXPECT_DOUBLE_EQ(FrechetOracle::DiscreteFrechet(t, t), 0.0);
}

TEST(FrechetTest, ParallelSegmentsAtConstantOffset) {
  // Two horizontal three-point lines, vertical offset 2: the dog leash
  // never needs to exceed 2.
  const Trajectory p = {{0, 0}, {1, 0}, {2, 0}};
  const Trajectory q = {{0, 2}, {1, 2}, {2, 2}};
  EXPECT_NEAR(FrechetOracle::DiscreteFrechet(p, q), 2.0, 1e-12);
}

TEST(FrechetTest, OrderMattersUnlikeHausdorff) {
  // Same point sets, opposite traversal order: the coupling must go
  // backwards, so the Fréchet distance is the full span, not 0.
  const Trajectory p = {{0, 0}, {5, 0}};
  const Trajectory q = {{5, 0}, {0, 0}};
  EXPECT_NEAR(FrechetOracle::DiscreteFrechet(p, q), 5.0, 1e-12);
}

TEST(FrechetTest, SymmetricInArguments) {
  const Trajectory p = {{0, 0}, {1, 2}, {4, 1}, {5, 5}};
  const Trajectory q = {{0, 1}, {2, 2}, {5, 4}};
  EXPECT_DOUBLE_EQ(FrechetOracle::DiscreteFrechet(p, q),
                   FrechetOracle::DiscreteFrechet(q, p));
}

TEST(FrechetTest, LowerBoundedByEndpointDistances) {
  // The coupling must pair the first points and the last points.
  const Trajectory p = {{0, 0}, {1, 1}};
  const Trajectory q = {{3, 4}, {1, 1}};
  const double d = FrechetOracle::DiscreteFrechet(p, q);
  EXPECT_GE(d, 5.0 - 1e-12);  // ||p0 - q0|| = 5
}

TEST(FrechetOracleTest, MetricPropertySweepOnRandomWalks) {
  const ObjectId n = 18;
  FrechetOracle oracle(
      RandomWalkTrajectories(n, /*length=*/16, /*num_families=*/4,
                             /*jitter=*/0.3, /*seed=*/7));
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      const double dij = oracle.Distance(i, j);
      ASSERT_GT(dij, 0.0) << "generator produced coincident trajectories";
      ASSERT_DOUBLE_EQ(dij, oracle.Distance(j, i));
      for (ObjectId k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        ASSERT_LE(dij, oracle.Distance(i, k) + oracle.Distance(k, j) + 1e-9)
            << "(" << i << "," << j << ") via " << k;
      }
    }
  }
}

TEST(RandomWalkTrajectoriesTest, FamiliesAreFrechetClusters) {
  // Same-family trajectories stay within a few jitter radii; cross-family
  // distances reflect the separated anchor walks.
  const std::vector<Trajectory> ts =
      RandomWalkTrajectories(30, 20, /*num_families=*/3, /*jitter=*/0.1, 11);
  ASSERT_EQ(ts.size(), 30u);
  double min_cross = 1e300;
  double max_within = 0.0;
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      const double d = FrechetOracle::DiscreteFrechet(ts[i], ts[j]);
      if (d < 2.0) {
        max_within = std::max(max_within, d);
      } else {
        min_cross = std::min(min_cross, d);
      }
    }
  }
  // With 100-unit-spread anchors vs 0.1 jitter, the two populations are
  // well separated.
  EXPECT_LT(max_within * 3.0, min_cross);
}

TEST(FrechetOracleTest, EmptyTrajectoryDies) {
  std::vector<Trajectory> bad = {{{0, 0}}, {}};
  EXPECT_DEATH({ FrechetOracle o(std::move(bad)); }, "empty");
}

}  // namespace
}  // namespace metricprox
