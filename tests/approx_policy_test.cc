// Tests for the approximate-resolution policy (ResolutionPolicy): slack
// decisions, hard oracle budgets, the counter invariant
//   decided_by_bounds + cache + oracle + slack + undecided == comparisons,
// exact-mode byte-identity, the eps metamorphic contract, and slack
// certificates end to end.

#include <bit>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/knn_graph.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "bounds/pivots.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "check/certify.h"
#include "check/verifier.h"
#include "core/bounder.h"
#include "harness/experiment.h"
#include "obs/telemetry.h"
#include "oracle/matrix_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::FamilyMetric;
using testing_util::MakeFamilyStack;
using testing_util::MetricFamily;
using testing_util::ResolverStack;

uint64_t DecidedTotal(const ResolverStats& s) {
  return s.decided_by_bounds + s.decided_by_cache + s.decided_by_oracle +
         s.decided_by_slack + s.undecided;
}

// ---------------------------------------------------------------------------
// SlackRelativeGap arithmetic.
// ---------------------------------------------------------------------------

TEST(SlackRelativeGapTest, Arithmetic) {
  EXPECT_EQ(SlackRelativeGap(Interval::Unbounded()), 1.0);
  EXPECT_EQ(SlackRelativeGap(Interval::Exact(0.3)), 0.0);
  EXPECT_EQ(SlackRelativeGap(Interval::Exact(0.0)), 0.0);  // lo == hi wins
  EXPECT_DOUBLE_EQ(SlackRelativeGap(Interval(0.9, 1.0)), 0.1 / 1.0);
  EXPECT_DOUBLE_EQ(SlackRelativeGap(Interval(0.0, 0.5)), 1.0);
  // Negative lower bounds clamp to 0 before the gap is taken.
  EXPECT_DOUBLE_EQ(SlackRelativeGap(Interval(-0.2, 0.5)), 1.0);
  EXPECT_DOUBLE_EQ(SlackRelativeGap(Interval(0.25, 0.5)), 0.5);
}

// ---------------------------------------------------------------------------
// Exact mode: installing the default policy must be byte-identical to never
// installing one — same checksums (compared as raw bits), same counters.
// ---------------------------------------------------------------------------

struct WorkloadCase {
  const char* name;
  Workload run;
};

std::vector<WorkloadCase> AllWorkloads() {
  return {
      {"prim",
       [](BoundedResolver* r) { return PrimMst(r).total_weight; }},
      {"boruvka",
       [](BoundedResolver* r) { return BoruvkaMst(r).total_weight; }},
      {"knn",
       [](BoundedResolver* r) {
         const KnnGraph g = BuildKnnGraph(r, KnnGraphOptions{3});
         double mean = 0.0;
         for (const auto& row : g) mean += row.back().distance;
         return mean / static_cast<double>(g.size());
       }},
      {"pam",
       [](BoundedResolver* r) {
         PamOptions o;
         o.num_medoids = 3;
         return PamCluster(r, o).total_deviation;
       }},
  };
}

struct ManualRun {
  double value = 0.0;
  ResolverStats stats;
};

ManualRun RunManual(SchemeKind scheme, const Workload& workload,
                    bool install_policy, const ResolutionPolicy& policy) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, 36, 7);
  ManualRun run;
  std::unique_ptr<Bounder> keepalive;
  const StatusOr<double> value =
      stack.resolver->RunFallible([&](BoundedResolver* r) -> double {
        BootstrapWithLandmarks(r, 6, 7);
        SchemeOptions options;
        auto bounder = MakeAndAttachScheme(scheme, r, options);
        CHECK(bounder.ok()) << bounder.status();
        keepalive = std::move(bounder).value();
        if (install_policy) r->SetPolicy(policy);
        return workload(r);
      });
  CHECK(value.ok()) << value.status();
  run.value = *value;
  run.stats = stack.resolver->stats();
  return run;
}

TEST(ExactPolicyTest, DefaultPolicyIsByteIdenticalToNoPolicy) {
  for (const SchemeKind scheme :
       {SchemeKind::kTri, SchemeKind::kSplub, SchemeKind::kLaesa}) {
    for (const WorkloadCase& w : AllWorkloads()) {
      const ManualRun bare =
          RunManual(scheme, w.run, /*install_policy=*/false, {});
      const ManualRun exact =
          RunManual(scheme, w.run, /*install_policy=*/true,
                    ResolutionPolicy{0.0, 0});
      const std::string label = std::string(SchemeKindName(scheme)) + "/" +
                                w.name;
      EXPECT_EQ(std::bit_cast<uint64_t>(bare.value),
                std::bit_cast<uint64_t>(exact.value))
          << label;
      EXPECT_EQ(bare.stats.oracle_calls, exact.stats.oracle_calls) << label;
      EXPECT_EQ(bare.stats.comparisons, exact.stats.comparisons) << label;
      EXPECT_EQ(bare.stats.decided_by_bounds, exact.stats.decided_by_bounds)
          << label;
      EXPECT_EQ(bare.stats.decided_by_cache, exact.stats.decided_by_cache)
          << label;
      EXPECT_EQ(bare.stats.decided_by_oracle, exact.stats.decided_by_oracle)
          << label;
      EXPECT_EQ(bare.stats.undecided, exact.stats.undecided) << label;
      EXPECT_EQ(bare.stats.bound_queries, exact.stats.bound_queries) << label;
      EXPECT_EQ(exact.stats.decided_by_slack, 0u) << label;
      EXPECT_EQ(exact.stats.budget_exhausted, 0u) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Metamorphic contract over eps: exact runs never slack-decide; approximate
// runs never spend more oracle calls than the exact run; realized error
// stays within eps whenever no budget forced a decision; and the counter
// invariant holds everywhere.
// ---------------------------------------------------------------------------

TEST(MetamorphicTest, GrowingEpsNeverCostsMoreAndStaysWithinContract) {
  MatrixOracle oracle(FamilyMetric(MetricFamily::kUniform, 32, 11), 32);
  for (const SchemeKind scheme :
       {SchemeKind::kTri, SchemeKind::kSplub, SchemeKind::kLaesa}) {
    for (const WorkloadCase& w : AllWorkloads()) {
      const std::string label = std::string(SchemeKindName(scheme)) + "/" +
                                w.name;
      uint64_t previous_calls = 0;
      bool first = true;
      for (const double eps : {0.0, 0.01, 0.1}) {
        Telemetry telemetry;
        WorkloadConfig config;
        config.scheme = scheme;
        config.bootstrap =
            scheme == SchemeKind::kTri || scheme == SchemeKind::kSplub;
        config.seed = 11;
        config.eps = eps;
        config.telemetry = &telemetry;
        const StatusOr<WorkloadResult> result =
            TryRunWorkload(&oracle, config, w.run);
        ASSERT_TRUE(result.ok()) << label << " eps=" << eps;
        const ResolverStats& s = result->stats;
        EXPECT_EQ(DecidedTotal(s), s.comparisons)
            << label << " eps=" << eps;
        EXPECT_EQ(s.budget_exhausted, 0u) << label << " eps=" << eps;
        const Histogram::Summary err =
            telemetry.slack_realized_error.Summarize();
        if (eps == 0.0) {
          EXPECT_EQ(s.decided_by_slack, 0u) << label;
          EXPECT_EQ(err.count, 0u) << label;
        } else if (err.count > 0) {
          EXPECT_LE(err.max, eps) << label << " eps=" << eps;
          EXPECT_EQ(err.count, s.decided_by_slack) << label;
        }
        if (!first) {
          EXPECT_LE(s.oracle_calls, previous_calls)
              << label << ": eps=" << eps
              << " spent more oracle calls than the previous tighter eps";
        }
        previous_calls = s.oracle_calls;
        first = false;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Budget semantics.
// ---------------------------------------------------------------------------

TEST(BudgetTest, DistanceFailsCleanlyWhenExhaustedWithoutSlackFallback) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, 16, 3);
  stack.resolver->SetPolicy(ResolutionPolicy{0.0, 3});
  const StatusOr<double> result =
      stack.resolver->RunFallible([](BoundedResolver* r) -> double {
        double sum = 0.0;
        for (ObjectId j = 1; j < 10; ++j) sum += r->Distance(0, j);
        return sum;
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stack.resolver->budget_spent(), 3u);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 3u);
  // A budget failure is not an oracle failure.
  EXPECT_EQ(stack.resolver->stats().oracle_failures, 0u);
  // Edges resolved before the cap stay durable, like a transport failure.
  EXPECT_TRUE(stack.resolver->Known(0, 1));
  EXPECT_TRUE(stack.resolver->Known(0, 3));
  EXPECT_FALSE(stack.resolver->Known(0, 5));
}

TEST(BudgetTest, ResolveAllIsAllOrNothingUnderBudget) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, 16, 4);
  stack.resolver->SetPolicy(ResolutionPolicy{0.0, 2});
  const std::vector<IdPair> pairs = {
      {0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 1} /* duplicate */};
  const StatusOr<double> result =
      stack.resolver->RunFallible([&](BoundedResolver* r) -> double {
        r->ResolveAll(pairs);
        return 0.0;
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The gate fires before anything ships: no partial batch, nothing spent.
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 0u);
  EXPECT_EQ(stack.resolver->budget_spent(), 0u);
}

TEST(BudgetTest, SetPolicyResetsSpend) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, 12, 5);
  stack.resolver->SetPolicy(ResolutionPolicy{0.0, 4});
  (void)stack.resolver->RunFallible([](BoundedResolver* r) -> double {
    r->Distance(0, 1);
    r->Distance(0, 2);
    return 0.0;
  });
  EXPECT_EQ(stack.resolver->budget_spent(), 2u);
  stack.resolver->SetPolicy(ResolutionPolicy{0.0, 4});
  EXPECT_EQ(stack.resolver->budget_spent(), 0u);
  EXPECT_EQ(stack.resolver->policy().oracle_budget, 4u);
}

TEST(BudgetTest, PairLessWithInfiniteBoundsSurfacesResourceExhausted) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, 12, 6);
  stack.resolver->SetPolicy(ResolutionPolicy{0.0, 1});
  const StatusOr<double> result =
      stack.resolver->RunFallible([](BoundedResolver* r) -> double {
        r->Distance(0, 1);  // spends the whole budget
        // No bounder attached: intervals are unbounded, so there is no
        // slack fallback and the comparison must fail, not guess.
        return r->PairLess(2, 3, 4, 5) ? 1.0 : 0.0;
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// The satellite regression: FilterLessThan hitting the budget mid-batch
// must attribute every comparison exactly once (counter invariant), never
// resolve a pair twice, and answer duplicates consistently.
TEST(BudgetTest, FilterLessThanMidBatchKeepsInvariantAndNeverDoubleCounts) {
  // Near-degenerate metric: all distances land in a narrow band, so with a
  // star scaffold at 0 the Tri intervals of non-star pairs are finite but
  // far too wide for eps = 0 to slack-decide — every surviving pair enters
  // the budget partition deterministically.
  ResolverStack stack = MakeFamilyStack(MetricFamily::kNearDegenerate, 24, 8);
  const ObjectId n = stack.oracle->num_objects();
  std::unique_ptr<Bounder> keepalive;
  std::vector<bool> out;
  const std::vector<IdPair> pairs = {
      {1, 2},  {3, 4},   {5, 6},  {7, 8}, {9, 10},
      {11, 12}, {13, 14}, {15, 16},
      {1, 2} /* duplicate */, {2, 1} /* symmetric */, {4, 4} /* self */};
  constexpr uint64_t kBudget = 3;
  uint64_t scaffold_calls = 0;
  const StatusOr<double> result =
      stack.resolver->RunFallible([&](BoundedResolver* r) -> double {
        for (ObjectId j = 1; j < n; ++j) r->Distance(0, j);
        scaffold_calls = r->stats().oracle_calls;
        SchemeOptions options;
        auto bounder = MakeAndAttachScheme(SchemeKind::kTri, r, options);
        CHECK(bounder.ok()) << bounder.status();
        keepalive = std::move(bounder).value();
        r->SetPolicy(ResolutionPolicy{0.0, kBudget});
        out = r->FilterLessThan(pairs, 0.9);
        return 0.0;
      });
  ASSERT_TRUE(result.ok()) << result.status();
  const ResolverStats& s = stack.resolver->stats();

  ASSERT_EQ(out.size(), pairs.size());
  // Every comparison attributed exactly once, even across the budget edge.
  EXPECT_EQ(s.comparisons, pairs.size());
  EXPECT_EQ(DecidedTotal(s), s.comparisons);
  // The budget is a hard cap and every forced decision is accounted for.
  EXPECT_EQ(stack.resolver->budget_spent(), kBudget);
  EXPECT_EQ(s.oracle_calls, scaffold_calls + kBudget);
  EXPECT_GE(s.budget_exhausted, 5u) << "8 unique pairs, budget 3";
  EXPECT_LE(s.budget_exhausted, s.decided_by_slack);
  // No pair was resolved twice: edges = scaffold star + shipped pairs.
  EXPECT_EQ(stack.resolver->graph().num_edges(),
            static_cast<size_t>(scaffold_calls + kBudget));
  // Duplicates and symmetric repeats of one pair answer identically.
  EXPECT_EQ(out[8], out[0]);
  EXPECT_EQ(out[9], out[0]);
  // The self pair is a cache decision: 0 < 0.9.
  EXPECT_TRUE(out[10]);
  // Shipped pairs answer exactly.
  for (size_t k = 0; k < 8; ++k) {
    if (stack.resolver->Known(pairs[k].i, pairs[k].j)) {
      EXPECT_EQ(out[k],
                stack.oracle->Distance(pairs[k].i, pairs[k].j) < 0.9)
          << "pair " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Slack decisions happen, and carry certificates that verify.
// ---------------------------------------------------------------------------

TEST(SlackDecisionTest, LooseEpsTradesOracleCallsForSlackDecisions) {
  const ManualRun exact =
      RunManual(SchemeKind::kTri, AllWorkloads()[0].run,
                /*install_policy=*/false, {});
  const ManualRun approx =
      RunManual(SchemeKind::kTri, AllWorkloads()[0].run,
                /*install_policy=*/true, ResolutionPolicy{0.3, 0});
  EXPECT_GT(approx.stats.decided_by_slack, 0u)
      << "eps=0.3 over bootstrapped Tri bounds should slack-decide "
         "something";
  EXPECT_LE(approx.stats.oracle_calls, exact.stats.oracle_calls);
  EXPECT_EQ(DecidedTotal(approx.stats), approx.stats.comparisons);
  EXPECT_EQ(approx.stats.budget_exhausted, 0u);
}

TEST(SlackCertTest, AuditedApproximateRunVerifiesEverySlackCertificate) {
  MatrixOracle oracle(FamilyMetric(MetricFamily::kUniform, 32, 13), 32);
  WorkloadConfig config;
  config.scheme = SchemeKind::kTri;
  config.bootstrap = true;
  config.seed = 13;
  config.eps = 0.25;
  config.audit = true;
  const StatusOr<WorkloadResult> result = TryRunWorkload(
      &oracle, config,
      [](BoundedResolver* r) { return PrimMst(r).total_weight; });
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->stats.decided_by_slack, 0u);
  EXPECT_GT(result->certification.emitted, 0u);
  EXPECT_EQ(result->certification.failed, 0u)
      << result->certification.first_failure;
  EXPECT_EQ(result->certification.verified, result->certification.emitted);
}

TEST(SlackCertTest, VerifierAcceptsConsistentSlackCertificates) {
  PartialDistanceGraph graph(4);
  Verifier verifier(&graph, Verifier::Options{1.0});

  CertifiedDecision cd;
  cd.decision.verb = DecisionVerb::kLessThan;
  cd.decision.i = 0;
  cd.decision.j = 2;
  cd.decision.threshold = 0.6;
  cd.decision.outcome = true;  // midpoint 0.45 < 0.6
  cd.cert_ij.kind = BoundCertificate::Kind::kSlack;
  cd.cert_ij.lb = 0.4;
  cd.cert_ij.ub = 0.5;
  cd.cert_ij.slack = SlackWitness{0.4, 0.5, 0.25, 0.2};
  EXPECT_TRUE(verifier.Check(cd).ok());

  // Advertised error may exceed eps (the budget-forced case): still valid,
  // the *advertised* number just has to be honest.
  cd.cert_ij.slack.eps = 0.05;
  EXPECT_TRUE(verifier.Check(cd).ok());
}

TEST(SlackCertTest, VerifierRejectsTamperedSlackCertificates) {
  PartialDistanceGraph graph(4);
  Verifier verifier(&graph, Verifier::Options{1.0});

  const auto make = [] {
    CertifiedDecision cd;
    cd.decision.verb = DecisionVerb::kLessThan;
    cd.decision.i = 0;
    cd.decision.j = 2;
    cd.decision.threshold = 0.6;
    cd.decision.outcome = true;
    cd.cert_ij.kind = BoundCertificate::Kind::kSlack;
    cd.cert_ij.lb = 0.4;
    cd.cert_ij.ub = 0.5;
    cd.cert_ij.slack = SlackWitness{0.4, 0.5, 0.25, 0.2};
    return cd;
  };

  {
    // Flipped outcome: the midpoint says true, the record says false.
    CertifiedDecision cd = make();
    cd.decision.outcome = false;
    EXPECT_FALSE(verifier.Check(cd).ok());
  }
  {
    // Understated error: the certificate advertises less error than the
    // interval actually admits ((0.5-0.4)/0.5 = 0.2).
    CertifiedDecision cd = make();
    cd.cert_ij.slack.advertised_error = 0.05;
    EXPECT_FALSE(verifier.Check(cd).ok());
  }
  {
    // Inverted interval.
    CertifiedDecision cd = make();
    cd.cert_ij.slack.lo = 0.7;
    EXPECT_FALSE(verifier.Check(cd).ok());
  }
  {
    // An unbounded interval can never justify a slack decision.
    CertifiedDecision cd = make();
    cd.cert_ij.slack.hi = kInfDistance;
    EXPECT_FALSE(verifier.Check(cd).ok());
  }
  {
    // Slack certificates never back a proof verb.
    CertifiedDecision cd = make();
    cd.decision.verb = DecisionVerb::kGreaterThan;
    EXPECT_FALSE(verifier.Check(cd).ok());
  }
  {
    // A PairLess slack decision needs a slack certificate on both sides.
    CertifiedDecision cd = make();
    cd.decision.verb = DecisionVerb::kPairLess;
    cd.decision.k = 1;
    cd.decision.l = 3;
    EXPECT_FALSE(verifier.Check(cd).ok());
  }
}

TEST(SlackCertTest, PairLessSlackCertificatesCompareMidpoints) {
  PartialDistanceGraph graph(4);
  Verifier verifier(&graph, Verifier::Options{1.0});

  CertifiedDecision cd;
  cd.decision.verb = DecisionVerb::kPairLess;
  cd.decision.i = 0;
  cd.decision.j = 1;
  cd.decision.k = 2;
  cd.decision.l = 3;
  cd.cert_ij.kind = BoundCertificate::Kind::kSlack;
  cd.cert_ij.slack = SlackWitness{0.40, 0.50, 0.25, 0.2};  // midpoint 0.45
  cd.cert_kl.kind = BoundCertificate::Kind::kSlack;
  cd.cert_kl.slack = SlackWitness{0.60, 0.70, 0.25, 1.0 / 7.0};  // 0.65
  cd.decision.outcome = true;  // 0.45 < 0.65
  EXPECT_TRUE(verifier.Check(cd).ok());
  cd.decision.outcome = false;
  EXPECT_FALSE(verifier.Check(cd).ok());
}

}  // namespace
}  // namespace metricprox
