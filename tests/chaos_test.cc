// Chaos stress test: every algorithm x scheme configuration is run three
// times — fault-free, and under >= 10% injected transient faults with a
// retry layer, once per transport — and all three runs must produce
// byte-identical outputs and identical oracle_calls. Faults live strictly
// below the resolver, so retrying a failed attempt may cost wall time and
// retry counters but can never change a decision, an answer, or the
// one-call-per-unique-pair accounting.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/knn_graph.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "data/datasets.h"
#include "graph/partial_graph.h"
#include "harness/experiment.h"
#include "oracle/fault_injection.h"
#include "oracle/retry.h"
#include "store/distance_store.h"

namespace metricprox {
namespace {

Dataset MakeDataset(const std::string& name, ObjectId n, uint64_t seed) {
  if (name == "sf") return MakeSfPoiLike(n, seed);
  if (name == "dna") return MakeDnaLike(n, 40, seed);
  return MakeRandomMetric(n, seed);
}

FaultInjectionOptions ChaosFaults(uint64_t seed) {
  FaultInjectionOptions fault;
  fault.failure_rate = 0.15;  // >= 10% of attempts fail transiently
  fault.max_consecutive_failures = 2;
  fault.seed = seed ^ 0xfau;
  return fault;
}

RetryOptions ChaosRetry(uint64_t seed) {
  RetryOptions retry;
  retry.max_attempts = 5;  // > max_consecutive_failures: success guaranteed
  retry.initial_backoff_seconds = 1e-7;
  retry.max_backoff_seconds = 1e-6;
  retry.seed = seed;
  return retry;
}

struct ChaosRun {
  std::vector<double> blob;  // flattened algorithm output
  ResolverStats stats;
  Status status = Status::OK();
};

ChaosRun RunMaybeFaulted(const Dataset& dataset, const std::string& algorithm,
                         SchemeKind scheme, uint64_t seed, double max_distance,
                         bool inject_faults, bool batch_transport) {
  DistanceOracle* top = dataset.oracle.get();
  std::optional<FaultInjectingOracle> faulty;
  std::optional<RetryingOracle> retrying;
  if (inject_faults) {
    faulty.emplace(top, ChaosFaults(seed));
    retrying.emplace(&*faulty, ChaosRetry(seed));
    top = &*retrying;
  }

  PartialDistanceGraph graph(dataset.oracle->num_objects());
  BoundedResolver resolver(top, &graph);
  resolver.SetBatchTransport(batch_transport);

  ChaosRun run;
  auto push_edge = [&run](const WeightedEdge& e) {
    run.blob.push_back(e.u);
    run.blob.push_back(e.v);
    run.blob.push_back(e.weight);
  };
  std::unique_ptr<Bounder> bounder_keepalive;
  const StatusOr<double> outcome =
      resolver.RunFallible([&](BoundedResolver* r) -> double {
        SchemeOptions options;
        options.seed = seed;
        options.max_distance = max_distance;
        StatusOr<std::unique_ptr<Bounder>> bounder =
            MakeAndAttachScheme(scheme, r, options);
        CHECK(bounder.ok()) << bounder.status();
        bounder_keepalive = std::move(bounder).value();

        if (algorithm == "prim") {
          for (const WeightedEdge& e : PrimMst(r).edges) push_edge(e);
        } else if (algorithm == "boruvka") {
          for (const WeightedEdge& e : BoruvkaMst(r).edges) push_edge(e);
        } else if (algorithm == "knn") {
          for (const auto& row : BuildKnnGraph(r, KnnGraphOptions{3})) {
            for (const KnnNeighbor& nb : row) {
              run.blob.push_back(nb.id);
              run.blob.push_back(nb.distance);
            }
          }
        } else {  // pam
          PamOptions options_pam;
          options_pam.num_medoids = 4;
          const ClusteringResult c = PamCluster(r, options_pam);
          for (const ObjectId m : c.medoids) run.blob.push_back(m);
          for (const uint32_t a : c.assignment) run.blob.push_back(a);
          run.blob.push_back(c.total_deviation);
        }
        return 0.0;
      });
  run.status = outcome.ok() ? Status::OK() : outcome.status();
  run.stats = resolver.stats();
  if (retrying.has_value()) retrying->AccumulateStats(&run.stats);
  return run;
}

class ChaosEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, const char*, SchemeKind>> {};

TEST_P(ChaosEquivalenceTest, FaultsNeverChangeOutputsOrCallCounts) {
  const auto [dataset_name, algorithm, scheme] = GetParam();
  const ObjectId n = 36;
  const uint64_t seed = 1234;
  Dataset dataset = MakeDataset(dataset_name, n, seed);

  const ChaosRun clean = RunMaybeFaulted(dataset, algorithm, scheme, seed,
                                         dataset.max_distance,
                                         /*inject_faults=*/false,
                                         /*batch_transport=*/true);
  const ChaosRun chaotic_batched = RunMaybeFaulted(
      dataset, algorithm, scheme, seed, dataset.max_distance,
      /*inject_faults=*/true, /*batch_transport=*/true);
  const ChaosRun chaotic_scalar = RunMaybeFaulted(
      dataset, algorithm, scheme, seed, dataset.max_distance,
      /*inject_faults=*/true, /*batch_transport=*/false);

  ASSERT_TRUE(clean.status.ok());
  ASSERT_TRUE(chaotic_batched.status.ok()) << chaotic_batched.status;
  ASSERT_TRUE(chaotic_scalar.status.ok()) << chaotic_scalar.status;

  // Byte-identical outputs, element by element.
  EXPECT_EQ(clean.blob, chaotic_batched.blob)
      << dataset_name << "/" << algorithm << "/" << SchemeKindName(scheme);
  EXPECT_EQ(clean.blob, chaotic_scalar.blob);

  // Identical decision accounting in all three runs: the fault layer can
  // cost retries, never extra oracle calls or different decisions.
  for (const ChaosRun* run : {&chaotic_batched, &chaotic_scalar}) {
    EXPECT_EQ(run->stats.oracle_calls, clean.stats.oracle_calls);
    EXPECT_EQ(run->stats.comparisons, clean.stats.comparisons);
    EXPECT_EQ(run->stats.decided_by_cache, clean.stats.decided_by_cache);
    EXPECT_EQ(run->stats.decided_by_bounds, clean.stats.decided_by_bounds);
    EXPECT_EQ(run->stats.decided_by_oracle, clean.stats.decided_by_oracle);
    EXPECT_EQ(run->stats.undecided, clean.stats.undecided);
    EXPECT_EQ(run->stats.oracle_failures, 0u);
  }
  EXPECT_EQ(clean.stats.oracle_retries, 0u);
  // The chaos actually bit: at 15% failure rate some attempts were retried.
  EXPECT_GT(chaotic_batched.stats.oracle_retries +
                chaotic_scalar.stats.oracle_retries,
            0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosEquivalenceTest,
    ::testing::Combine(::testing::Values("sf", "dna", "random"),
                       ::testing::Values("prim", "boruvka", "knn", "pam"),
                       ::testing::Values(SchemeKind::kTri, SchemeKind::kLaesa,
                                         SchemeKind::kHybrid)));

// The harness-level variant: TryRunWorkload under chaos equals RunWorkload
// without it, and the merged stats expose the retry traffic.
TEST(ChaosHarnessTest, TryRunWorkloadSurvivesFaultsWithEqualChecksum) {
  const ObjectId n = 32;
  const uint64_t seed = 77;
  Dataset dataset = MakeDataset("random", n, seed);
  const Workload workload = [](BoundedResolver* r) {
    return PrimMst(r).total_weight;
  };

  WorkloadConfig clean;
  clean.scheme = SchemeKind::kLaesa;
  clean.seed = seed;
  const WorkloadResult base = RunWorkload(dataset.oracle.get(), clean, workload);

  WorkloadConfig chaos = clean;
  chaos.inject_faults = true;
  chaos.fault = ChaosFaults(seed);
  chaos.enable_retry = true;
  chaos.retry = ChaosRetry(seed);
  const StatusOr<WorkloadResult> got =
      TryRunWorkload(dataset.oracle.get(), chaos, workload);

  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->value, base.value);
  EXPECT_EQ(got->total_calls, base.total_calls);
  EXPECT_GT(got->stats.oracle_retries, 0u);
  EXPECT_GT(got->stats.retry_backoff_seconds, 0.0);
  EXPECT_EQ(got->stats.oracle_failures, 0u);
}

// A permanently dead oracle under a finite deadline must surface as a
// non-OK Status from the harness — not a process abort.
TEST(ChaosHarnessTest, ExhaustedDeadlineReturnsStatusInsteadOfAborting) {
  const ObjectId n = 16;
  const uint64_t seed = 5;
  Dataset dataset = MakeDataset("random", n, seed);
  const Workload workload = [](BoundedResolver* r) {
    return PrimMst(r).total_weight;
  };

  WorkloadConfig config;
  config.scheme = SchemeKind::kNone;
  config.seed = seed;
  config.inject_faults = true;
  config.fault.failure_rate = 1.0;
  config.fault.max_consecutive_failures = 0;  // permanent outage
  config.enable_retry = true;
  config.retry.max_attempts = 100;
  config.retry.initial_backoff_seconds = 1e-3;
  config.retry.deadline_seconds = 1e-4;  // always shorter than one backoff

  const StatusOr<WorkloadResult> got =
      TryRunWorkload(dataset.oracle.get(), config, workload);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

// Persistence under chaos: populating a store through >= 10% injected
// faults, then re-running warm under the same faults, must reproduce the
// clean storeless checksum byte for byte — and the warm run never reaches
// the oracle at all, so there is nothing left for the faults to bite.
TEST(ChaosHarnessTest, WarmStoreUnderFaultsKeepsOutputsByteIdentical) {
  const ObjectId n = 32;
  const uint64_t seed = 91;
  Dataset dataset = MakeDataset("sf", n, seed);
  const Workload workload = [](BoundedResolver* r) {
    return PrimMst(r).total_weight;
  };

  WorkloadConfig clean;
  clean.scheme = SchemeKind::kTri;
  clean.seed = seed;
  const WorkloadResult base =
      RunWorkload(dataset.oracle.get(), clean, workload);

  const std::string path = ::testing::TempDir() + "/chaos_store";
  std::filesystem::remove(DistanceStore::SnapshotPath(path));
  std::filesystem::remove(DistanceStore::WalPath(path));
  const StoreFingerprint fp = MakeStoreFingerprint("chaos-warm", n);

  WorkloadConfig chaos = clean;
  chaos.inject_faults = true;
  chaos.fault = ChaosFaults(seed);
  chaos.enable_retry = true;
  chaos.retry = ChaosRetry(seed);

  // Cold run under faults populates the store through the retry layer.
  {
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(path, fp);
    ASSERT_TRUE(store.ok()) << store.status();
    chaos.store = store->get();
    const StatusOr<WorkloadResult> cold =
        TryRunWorkload(dataset.oracle.get(), chaos, workload);
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_EQ(cold->value, base.value);
    EXPECT_EQ(cold->total_calls, base.total_calls);
    EXPECT_EQ(cold->stats.wal_appends, base.total_calls);
    EXPECT_GT(cold->stats.oracle_retries, 0u);
    ASSERT_TRUE((*store)->Close().ok());
  }

  // Warm run under the same fault pattern: identical checksum, zero oracle
  // calls, zero retries — the store absorbed the whole workload.
  {
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(path, fp);
    ASSERT_TRUE(store.ok()) << store.status();
    chaos.store = store->get();
    const StatusOr<WorkloadResult> warm =
        TryRunWorkload(dataset.oracle.get(), chaos, workload);
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(warm->value, base.value);
    EXPECT_EQ(warm->total_calls, 0u);
    EXPECT_EQ(warm->stats.store_loaded_edges, base.total_calls);
    EXPECT_EQ(warm->stats.oracle_retries, 0u);
    ASSERT_TRUE((*store)->Close().ok());
  }
}

}  // namespace
}  // namespace metricprox
