#include "core/status.h"

#include <gtest/gtest.h>

namespace metricprox {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kIoError, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded}) {
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, RetryableCodesCarryCodeAndMessage) {
  const Status u = Status::Unavailable("flaky transport");
  EXPECT_EQ(u.code(), StatusCode::kUnavailable);
  EXPECT_EQ(u.ToString(), "Unavailable: flaky transport");
  const Status d = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: too slow");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  const std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, ValueOnErrorDies) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_DEATH({ (void)v.value(); }, "boom");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    MP_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIoError);

  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    MP_RETURN_IF_ERROR(succeeds());
    return Status::Unimplemented("reached");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace metricprox
