#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "algo/reference.h"
#include "bounds/resolver.h"
#include "data/synthetic.h"
#include "index/bktree.h"
#include "index/fqt.h"
#include "index/gnat.h"
#include "index/vptree.h"
#include "oracle/string_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

ResolveFn RawResolve(DistanceOracle* oracle) {
  return [oracle](ObjectId a, ObjectId b) { return oracle->Distance(a, b); };
}

// ---- VP-tree ----

class VpTreeKnnTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(VpTreeKnnTest, MatchesReferenceForEveryQuery) {
  const ObjectId n = 40;
  ResolverStack stack = MakeRandomStack(n, 61);
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  VpTree tree(n, VpTreeOptions{4, 9}, resolve);
  const uint32_t k = GetParam();
  const KnnGraph expected = ReferenceKnnGraph(stack.oracle.get(), k);
  for (ObjectId q = 0; q < n; ++q) {
    ASSERT_EQ(tree.Knn(q, k, resolve), expected[q]) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, VpTreeKnnTest, ::testing::Values(1u, 3u, 8u));

TEST(VpTreeTest, RangeMatchesBruteForce) {
  const ObjectId n = 32;
  ResolverStack stack = MakeRandomStack(n, 62);
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  VpTree tree(n, VpTreeOptions{}, resolve);
  for (const double radius : {0.2, 0.5, 0.8}) {
    for (ObjectId q = 0; q < n; q += 7) {
      std::vector<KnnNeighbor> brute;
      for (ObjectId v = 0; v < n; ++v) {
        if (v == q) continue;
        const double d = stack.oracle->Distance(q, v);
        if (d <= radius) brute.push_back(KnnNeighbor{v, d});
      }
      std::sort(brute.begin(), brute.end(),
                [](const KnnNeighbor& a, const KnnNeighbor& b) {
                  if (a.distance != b.distance) return a.distance < b.distance;
                  return a.id < b.id;
                });
      ASSERT_EQ(tree.Range(q, radius, resolve), brute)
          << "q=" << q << " radius=" << radius;
    }
  }
}

TEST(VpTreeTest, SearchThroughResolverPrunesRepeatQueries) {
  // Routing the tree's calls through a BoundedResolver shares the cache:
  // a repeated query is nearly free.
  const ObjectId n = 48;
  ResolverStack stack = MakeRandomStack(n, 63);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.resolver->Distance(a, b);
  };
  VpTree tree(n, VpTreeOptions{}, resolve);
  tree.Knn(5, 3, resolve);
  const uint64_t after_first = stack.resolver->stats().oracle_calls;
  tree.Knn(5, 3, resolve);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, after_first);
}

TEST(VpTreeTest, BuildCostIsSubquadratic) {
  const ObjectId n = 256;
  ResolverStack stack = MakeRandomStack(n, 64);
  uint64_t calls = 0;
  const ResolveFn counting = [&](ObjectId a, ObjectId b) {
    ++calls;
    return stack.oracle->Distance(a, b);
  };
  VpTree tree(n, VpTreeOptions{}, counting);
  // ~n log2(n/leaf) levels of partitioning, far below n^2/2 = 32640.
  EXPECT_LT(calls, static_cast<uint64_t>(n) * 16);
  EXPECT_GT(tree.num_nodes(), 1u);
}

TEST(VpTreeTest, TieHeavyMetricStillExact) {
  std::vector<std::string> strings =
      DnaFamilyStrings(28, 20, /*num_families=*/3, /*mutations=*/2, 65);
  LevenshteinOracle oracle(strings);
  const ResolveFn resolve = RawResolve(&oracle);
  VpTree tree(28, VpTreeOptions{3, 1}, resolve);
  const KnnGraph expected = ReferenceKnnGraph(&oracle, 4);
  for (ObjectId q = 0; q < 28; ++q) {
    ASSERT_EQ(tree.Knn(q, 4, resolve), expected[q]) << "query " << q;
  }
}

// ---- GNAT ----

class GnatKnnTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GnatKnnTest, MatchesReferenceForEveryQuery) {
  const ObjectId n = 40;
  ResolverStack stack = MakeRandomStack(n, 161);
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  GnatOptions options;
  options.degree = 4;
  options.leaf_size = 5;
  options.seed = 3;
  Gnat gnat(n, options, resolve);
  const uint32_t k = GetParam();
  const KnnGraph expected = ReferenceKnnGraph(stack.oracle.get(), k);
  for (ObjectId q = 0; q < n; ++q) {
    ASSERT_EQ(gnat.Knn(q, k, resolve), expected[q]) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, GnatKnnTest, ::testing::Values(1u, 3u, 8u));

TEST(GnatTest, RangeMatchesBruteForce) {
  const ObjectId n = 34;
  ResolverStack stack = MakeRandomStack(n, 162);
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  Gnat gnat(n, GnatOptions{}, resolve);
  for (const double radius : {0.25, 0.5, 0.85}) {
    for (ObjectId q = 0; q < n; q += 6) {
      std::vector<KnnNeighbor> brute;
      for (ObjectId v = 0; v < n; ++v) {
        if (v == q) continue;
        const double d = stack.oracle->Distance(q, v);
        if (d <= radius) brute.push_back(KnnNeighbor{v, d});
      }
      std::sort(brute.begin(), brute.end(),
                [](const KnnNeighbor& a, const KnnNeighbor& b) {
                  if (a.distance != b.distance) return a.distance < b.distance;
                  return a.id < b.id;
                });
      ASSERT_EQ(gnat.Range(q, radius, resolve), brute)
          << "q=" << q << " radius=" << radius;
    }
  }
}

TEST(GnatTest, TieHeavyMetricStillExact) {
  std::vector<std::string> strings =
      DnaFamilyStrings(30, 20, /*num_families=*/3, /*mutations=*/2, 163);
  LevenshteinOracle oracle(strings);
  const ResolveFn resolve = RawResolve(&oracle);
  GnatOptions options;
  options.degree = 3;
  options.leaf_size = 4;
  Gnat gnat(30, options, resolve);
  const KnnGraph expected = ReferenceKnnGraph(&oracle, 4);
  for (ObjectId q = 0; q < 30; ++q) {
    ASSERT_EQ(gnat.Knn(q, 4, resolve), expected[q]) << "query " << q;
  }
}

TEST(GnatTest, AnnulusEliminationPrunesOnTightRange) {
  const ObjectId n = 160;
  ResolverStack stack = MakeRandomStack(n, 164);
  Gnat gnat(n, GnatOptions{}, RawResolve(stack.oracle.get()));
  uint64_t calls = 0;
  const ResolveFn counting = [&](ObjectId a, ObjectId b) {
    ++calls;
    return stack.oracle->Distance(a, b);
  };
  gnat.Range(0, 0.15, counting);
  EXPECT_LT(calls, static_cast<uint64_t>(n - 1));
}

// ---- FQT ----

TEST(FqtTest, KnnMatchesReferenceOnContinuousMetric) {
  const ObjectId n = 36;
  ResolverStack stack = MakeRandomStack(n, 171);
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  FqtOptions options;
  options.bucket_width = 0.08;  // distances live in (0, 1]
  options.seed = 5;
  Fqt fqt(n, options, resolve);
  const KnnGraph expected = ReferenceKnnGraph(stack.oracle.get(), 4);
  for (ObjectId q = 0; q < n; ++q) {
    ASSERT_EQ(fqt.Knn(q, 4, resolve), expected[q]) << "query " << q;
  }
}

TEST(FqtTest, RangeMatchesBruteForceOnEditDistance) {
  std::vector<std::string> strings =
      DnaFamilyStrings(28, 18, /*num_families=*/3, /*mutations=*/2, 172);
  LevenshteinOracle oracle(strings);
  const ResolveFn resolve = RawResolve(&oracle);
  Fqt fqt(28, FqtOptions{}, resolve);  // width 1: the natural integer fit
  for (const double radius : {0.0, 3.0, 7.0}) {
    for (ObjectId q = 0; q < 28; q += 5) {
      std::vector<KnnNeighbor> brute;
      for (ObjectId v = 0; v < 28; ++v) {
        if (v == q) continue;
        const double d = oracle.Distance(q, v);
        if (d <= radius) brute.push_back(KnnNeighbor{v, d});
      }
      std::sort(brute.begin(), brute.end(),
                [](const KnnNeighbor& a, const KnnNeighbor& b) {
                  if (a.distance != b.distance) return a.distance < b.distance;
                  return a.id < b.id;
                });
      ASSERT_EQ(fqt.Range(q, radius, resolve), brute)
          << "q=" << q << " radius=" << radius;
    }
  }
}

TEST(FqtTest, FixedQueriesShareLevelPivotDistances) {
  // One call per level pivot per query, regardless of branching: a range
  // query's pivot-call count is bounded by the level count.
  std::vector<std::string> strings =
      DnaFamilyStrings(80, 24, /*num_families=*/5, /*mutations=*/2, 173);
  LevenshteinOracle oracle(strings);
  Fqt fqt(80, FqtOptions{}, RawResolve(&oracle));
  uint64_t calls = 0;
  const ResolveFn counting = [&](ObjectId a, ObjectId b) {
    ++calls;
    return oracle.Distance(a, b);
  };
  fqt.Range(0, 1.0, counting);  // tight radius: few bucket members touched
  EXPECT_LT(calls, static_cast<uint64_t>(fqt.num_levels()) + 20);
}

// ---- BK-tree ----

TEST(BkTreeTest, KnnMatchesReferenceOnEditDistance) {
  std::vector<std::string> strings =
      DnaFamilyStrings(30, 18, /*num_families=*/4, /*mutations=*/2, 66);
  LevenshteinOracle oracle(strings);
  const ResolveFn resolve = RawResolve(&oracle);
  BkTree tree(30, resolve);
  const KnnGraph expected = ReferenceKnnGraph(&oracle, 3);
  for (ObjectId q = 0; q < 30; ++q) {
    ASSERT_EQ(tree.Knn(q, 3, resolve), expected[q]) << "query " << q;
  }
}

TEST(BkTreeTest, RangeMatchesBruteForce) {
  std::vector<std::string> strings =
      DnaFamilyStrings(26, 16, /*num_families=*/3, /*mutations=*/2, 67);
  LevenshteinOracle oracle(strings);
  const ResolveFn resolve = RawResolve(&oracle);
  BkTree tree(26, resolve);
  for (const double radius : {0.0, 2.0, 5.0, 9.0}) {
    for (ObjectId q = 0; q < 26; q += 5) {
      std::vector<KnnNeighbor> brute;
      for (ObjectId v = 0; v < 26; ++v) {
        if (v == q) continue;
        const double d = oracle.Distance(q, v);
        if (d <= radius) brute.push_back(KnnNeighbor{v, d});
      }
      std::sort(brute.begin(), brute.end(),
                [](const KnnNeighbor& a, const KnnNeighbor& b) {
                  if (a.distance != b.distance) return a.distance < b.distance;
                  return a.id < b.id;
                });
      ASSERT_EQ(tree.Range(q, radius, resolve), brute)
          << "q=" << q << " radius=" << radius;
    }
  }
}

TEST(BkTreeTest, RangeQueryPrunesSubtrees) {
  std::vector<std::string> strings =
      DnaFamilyStrings(60, 24, /*num_families=*/5, /*mutations=*/2, 68);
  LevenshteinOracle oracle(strings);
  const ResolveFn resolve = RawResolve(&oracle);
  BkTree tree(60, resolve);
  uint64_t calls = 0;
  const ResolveFn counting = [&](ObjectId a, ObjectId b) {
    ++calls;
    return oracle.Distance(a, b);
  };
  tree.Range(0, 2.0, counting);
  // A tight radius must not touch every object.
  EXPECT_LT(calls, 59u);
}

TEST(BkTreeTest, RejectsNonIntegerDistances) {
  ResolverStack stack = MakeRandomStack(6, 69);  // continuous distances
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  EXPECT_DEATH({ BkTree tree(6, resolve); }, "integer");
}

TEST(BkTreeTest, DepthAndNodeCountReported) {
  std::vector<std::string> strings =
      DnaFamilyStrings(20, 16, /*num_families=*/2, /*mutations=*/3, 70);
  LevenshteinOracle oracle(strings);
  BkTree tree(20, RawResolve(&oracle));
  EXPECT_EQ(tree.num_nodes(), 20u);
  EXPECT_GE(tree.depth(), 1u);
  EXPECT_LT(tree.depth(), 20u);
}

}  // namespace
}  // namespace metricprox
