// Concurrency regression for the shared-telemetry plane (obs v2): many
// session threads hammering ONE Telemetry bundle / one pool TraceClock /
// one flight-recorder sink / one MetricsRegistry / one ObservabilityHub at
// once must lose nothing and collide nowhere. These tests are the TSan
// payload of the obs-live-smoke CI job — the assertions also pin the
// lock-free accounting (unique seq, unique span ids, exact counter sums)
// that a data race would corrupt long before TSan flags it.

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight.h"
#include "obs/hub.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace metricprox {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 400;

TEST(ObsConcurrencyTest, SharedBundleEmitsWithoutLossOrCollision) {
  RingBufferTraceSink sink(1u << 16);
  Telemetry telemetry;
  telemetry.sink = &sink;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry, t] {
      for (int k = 0; k < kOpsPerThread; ++k) {
        ScopedSpan outer(&telemetry, "resolve", static_cast<uint64_t>(k));
        ScopedSpan inner(&telemetry, "bound");
        TraceEvent event;
        event.kind = TraceEventKind::kOracleCall;
        event.i = static_cast<ObjectId>(t);
        event.j = static_cast<ObjectId>(k);
        telemetry.Emit(event);
        telemetry.oracle_latency_seconds.Record(0.001 * k);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // 2 spans (begin+end each) + 1 event per op, nothing dropped.
  const uint64_t expected =
      static_cast<uint64_t>(kThreads) * kOpsPerThread * 5;
  EXPECT_EQ(sink.emitted(), expected);
  EXPECT_EQ(sink.dropped(), 0u);
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), expected);

  // The shared atomic clock hands out every seq exactly once; the sink's
  // internal lock makes the snapshot a permutation of [0, expected).
  std::set<uint64_t> seqs;
  std::set<uint64_t> begun;
  std::set<uint64_t> ended;
  for (const TraceEvent& e : events) {
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
    EXPECT_LT(e.seq, expected);
    if (e.kind == TraceEventKind::kSpanBegin) {
      EXPECT_TRUE(begun.insert(e.span_id).second)
          << "span id reused " << e.span_id;
    } else if (e.kind == TraceEventKind::kSpanEnd) {
      EXPECT_TRUE(ended.insert(e.span_id).second);
    }
  }
  EXPECT_EQ(begun.size(), static_cast<size_t>(kThreads) * kOpsPerThread * 2);
  EXPECT_EQ(begun, ended);  // every span closed exactly once
  // The internally synchronized histogram lost no samples either.
  EXPECT_EQ(telemetry.oracle_latency_seconds.count(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsConcurrencyTest, RegistryCountsExactlyUnderContention) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      const uint64_t session = static_cast<uint64_t>(t % 2);  // forced overlap
      for (int k = 0; k < kOpsPerThread; ++k) {
        registry.CounterAdd("acme", session, "oracle_calls");
        registry.CounterAdd("acme", 0, "pool_total", 2);
        registry.GaugeSet("acme", session, "depth", static_cast<double>(k));
        registry.HistogramRecord("acme", 0, "latency", 0.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  uint64_t per_session_sum = 0;
  for (const MetricSample& s : registry.Snapshot()) {
    if (s.metric == "oracle_calls") per_session_sum += s.counter;
    if (s.metric == "pool_total") {
      EXPECT_EQ(s.counter,
                static_cast<uint64_t>(kThreads) * kOpsPerThread * 2);
    }
    if (s.metric == "latency") {
      EXPECT_EQ(s.hist.count, static_cast<uint64_t>(kThreads) * kOpsPerThread);
    }
    if (s.metric == "depth") {
      EXPECT_EQ(s.gauge, static_cast<double>(kOpsPerThread - 1));
    }
  }
  EXPECT_EQ(per_session_sum, static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsConcurrencyTest, HubSessionBundlesRaceSafelyWithDumpsAndSamples) {
  ObservabilityHubOptions options;
  options.flight_capacity = 1u << 16;
  options.poll_interval_seconds = 0.001;  // keep the background thread busy
  ObservabilityHub hub(options);

  // Threads race SessionTelemetry creation (including on the SAME id),
  // span emission through their bundle, fan-out mirroring into a sibling's
  // bundle, and metric updates — while the main thread snapshots, samples
  // and dumps the live ring.
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hub, &go, t] {
      while (!go.load()) std::this_thread::yield();
      const uint64_t id = static_cast<uint64_t>(t / 2 + 1);  // shared ids
      Telemetry* mine = hub.SessionTelemetry(id, "acme");
      Telemetry* sibling =
          hub.SessionTelemetry(static_cast<uint64_t>(t / 2 + 1) % 4 + 1,
                               "acme");
      std::vector<FanoutTarget> targets = {FanoutTarget{sibling, 0}};
      for (int k = 0; k < kOpsPerThread; ++k) {
        ScopedSpan span(mine, "resolve");
        if (k % 8 == 0) {
          ScopedFanout fanout(&targets);
          TraceEvent event;
          event.kind = TraceEventKind::kRetry;
          FanoutEmit(mine, event);
        }
        hub.metrics().CounterAdd("acme", id, "ops");
      }
    });
  }
  go.store(true);
  for (int k = 0; k < 20; ++k) {
    (void)hub.flight().Snapshot();
    hub.SampleNow();
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly one span per op pool-wide, ids unique across all bundles.
  EXPECT_EQ(hub.flight().spans_seen(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  std::set<uint64_t> span_ids;
  for (const TraceEvent& e : hub.flight().Snapshot()) {
    if (e.kind == TraceEventKind::kSpanBegin) {
      EXPECT_TRUE(span_ids.insert(e.span_id).second);
      EXPECT_GE(e.session_id, 1u);  // every bundle is session-tagged
    }
  }
  uint64_t ops = 0;
  for (const MetricSample& s : hub.metrics().Snapshot()) {
    if (s.metric == "ops") ops += s.counter;
  }
  EXPECT_EQ(ops, static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsConcurrencyTest, FlightDumpRacesEmit) {
  const std::string path =
      ::testing::TempDir() + "/obs_concurrency_flight.jsonl";
  FlightRecorder flight(nullptr, 256);
  Telemetry telemetry;
  telemetry.sink = &flight;

  std::atomic<bool> stop{false};
  std::thread emitter([&] {
    while (!stop.load()) {
      ScopedSpan span(&telemetry, "resolve");
    }
  });
  for (int k = 0; k < 50; ++k) {
    EXPECT_TRUE(flight.Dump(path, "race").ok());
  }
  stop.store(true);
  emitter.join();
  EXPECT_EQ(flight.dumps(), 50u);
}

}  // namespace
}  // namespace metricprox
