// Durability tests for the persistent distance store: WAL round-trips,
// compaction, torn-write recovery, fingerprint isolation, the
// PersistentOracle middleware, and cross-run warm starts through the
// harness. File-system effects are confined to ::testing::TempDir().

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/prim.h"
#include "core/oracle.h"
#include "core/status.h"
#include "data/datasets.h"
#include "harness/experiment.h"
#include "store/distance_store.h"
#include "store/persistent_oracle.h"

namespace metricprox {
namespace {

/// A fresh store base path in the test temp dir with no files behind it.
std::string StorePath(const std::string& name) {
  const std::string base = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(DistanceStore::SnapshotPath(base));
  std::filesystem::remove(DistanceStore::WalPath(base));
  return base;
}

std::unique_ptr<DistanceStore> MustOpen(const std::string& base,
                                        const StoreFingerprint& fp,
                                        const StoreOptions& options = {}) {
  StatusOr<std::unique_ptr<DistanceStore>> store =
      DistanceStore::Open(base, fp, options);
  CHECK(store.ok()) << store.status();
  return std::move(store).value();
}

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

/// Counts every call that reaches the base oracle, so tests can assert
/// which pairs the store absorbed.
class CountingOracle : public DistanceOracle {
 public:
  explicit CountingOracle(DistanceOracle* base) : base_(base) {}

  double Distance(ObjectId i, ObjectId j) override {
    ++calls_;
    return base_->Distance(i, j);
  }
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override {
    calls_ += pairs.size();
    base_->BatchDistance(pairs, out);
  }

  ObjectId num_objects() const override { return base_->num_objects(); }
  std::string_view name() const override { return "counting"; }

  uint64_t calls() const { return calls_; }

 private:
  DistanceOracle* base_;  // not owned
  uint64_t calls_ = 0;
};

TEST(StoreFingerprintTest, IdentityAndCountBothMatter) {
  const StoreFingerprint a = MakeStoreFingerprint("dataset=sf;seed=1", 100);
  EXPECT_EQ(a, MakeStoreFingerprint("dataset=sf;seed=1", 100));
  EXPECT_NE(a, MakeStoreFingerprint("dataset=sf;seed=2", 100));
  EXPECT_NE(a, MakeStoreFingerprint("dataset=sf;seed=1", 101));
  EXPECT_NE(a.identity_hash,
            MakeStoreFingerprint("dataset=sf;seed=2", 100).identity_hash);
}

TEST(DistanceStoreTest, RoundTripThroughCompaction) {
  const std::string base = StorePath("round_trip");
  const StoreFingerprint fp = MakeStoreFingerprint("round-trip", 10);
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp);
    ASSERT_TRUE(store->Record(0, 1, 1.5).ok());
    ASSERT_TRUE(store->Record(3, 2, 0.25).ok());
    ASSERT_TRUE(store->Record(7, 9, 4.0).ok());
    EXPECT_EQ(store->size(), 3u);
    ASSERT_TRUE(store->Close().ok());  // compacts into the snapshot
  }
  EXPECT_TRUE(std::filesystem::exists(DistanceStore::SnapshotPath(base)));

  std::unique_ptr<DistanceStore> reopened = MustOpen(base, fp);
  EXPECT_EQ(reopened->size(), 3u);
  EXPECT_EQ(reopened->Lookup(0, 1), 1.5);
  EXPECT_EQ(reopened->Lookup(2, 3), 0.25);  // symmetric key
  EXPECT_EQ(reopened->Lookup(9, 7), 4.0);
  EXPECT_FALSE(reopened->Lookup(0, 2).has_value());

  // Edges() is the deterministic warm-start payload: u < v, sorted.
  const std::vector<WeightedEdge> edges = reopened->Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].u, 0u);
  EXPECT_EQ(edges[0].v, 1u);
  EXPECT_EQ(edges[1].u, 2u);
  EXPECT_EQ(edges[1].v, 3u);
  EXPECT_EQ(edges[2].u, 7u);
  EXPECT_EQ(edges[2].v, 9u);
}

TEST(DistanceStoreTest, WalReplayWithoutSnapshot) {
  const std::string base = StorePath("wal_replay");
  const StoreFingerprint fp = MakeStoreFingerprint("wal-replay", 8);
  StoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp, no_compact);
    ASSERT_TRUE(store->Record(1, 2, 3.0).ok());
    ASSERT_TRUE(store->Record(4, 5, 6.0).ok());
    ASSERT_TRUE(store->Close().ok());
  }
  EXPECT_FALSE(std::filesystem::exists(DistanceStore::SnapshotPath(base)));

  std::unique_ptr<DistanceStore> reopened = MustOpen(base, fp, no_compact);
  EXPECT_EQ(reopened->size(), 2u);
  EXPECT_EQ(reopened->Lookup(1, 2), 3.0);
  EXPECT_EQ(reopened->Lookup(4, 5), 6.0);
  EXPECT_EQ(reopened->counters().recovered_records, 2u);
  EXPECT_EQ(reopened->counters().torn_bytes_discarded, 0u);
}

TEST(DistanceStoreTest, CompactFoldsWalIntoSnapshot) {
  const std::string base = StorePath("compact");
  const StoreFingerprint fp = MakeStoreFingerprint("compact", 6);
  std::unique_ptr<DistanceStore> store = MustOpen(base, fp);
  ASSERT_TRUE(store->Record(0, 1, 1.0).ok());
  ASSERT_TRUE(store->Record(2, 3, 2.0).ok());
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_EQ(store->counters().compactions, 1u);

  StatusOr<StoreScanResult> scan = DistanceStore::Scan(base);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->has_snapshot);
  EXPECT_EQ(scan->snapshot_edges, 2u);
  EXPECT_EQ(scan->wal_records, 0u);  // WAL truncated back to its header
  EXPECT_EQ(scan->unique_edges, 2u);

  // Appends after a compaction land in the (now empty) WAL and survive.
  ASSERT_TRUE(store->Record(4, 5, 3.0).ok());
  ASSERT_TRUE(store->Close().ok());
  std::unique_ptr<DistanceStore> reopened = MustOpen(base, fp);
  EXPECT_EQ(reopened->size(), 3u);
  EXPECT_EQ(reopened->Lookup(4, 5), 3.0);
}

TEST(DistanceStoreTest, TornTailIsTruncatedAndValidPrefixKept) {
  const std::string base = StorePath("torn");
  const StoreFingerprint fp = MakeStoreFingerprint("torn", 8);
  StoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp, no_compact);
    ASSERT_TRUE(store->Record(0, 1, 1.0).ok());
    ASSERT_TRUE(store->Record(2, 3, 2.0).ok());
    ASSERT_TRUE(store->Record(4, 5, 3.0).ok());
    ASSERT_TRUE(store->Close().ok());
  }

  // Simulate a crash mid-append: cut the last record in half.
  const std::string wal = DistanceStore::WalPath(base);
  const uint64_t intact = FileSize(wal);
  std::filesystem::resize_file(wal, intact - 7);

  // A read-only scan reports the tear without repairing it.
  StatusOr<StoreScanResult> scan = DistanceStore::Scan(base);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->wal_records, 2u);
  EXPECT_EQ(scan->torn_tail_bytes, 13u);  // 20-byte record minus the 7 cut
  EXPECT_EQ(FileSize(wal), intact - 7);

  // A writable open replays the valid prefix and truncates the tail.
  std::unique_ptr<DistanceStore> store = MustOpen(base, fp, no_compact);
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->Lookup(0, 1), 1.0);
  EXPECT_EQ(store->Lookup(2, 3), 2.0);
  EXPECT_FALSE(store->Lookup(4, 5).has_value());
  EXPECT_EQ(store->counters().recovered_records, 2u);
  EXPECT_EQ(store->counters().torn_bytes_discarded, 13u);

  // The store is appendable again right where the tear was.
  ASSERT_TRUE(store->Record(4, 5, 3.5).ok());
  ASSERT_TRUE(store->Close().ok());
  std::unique_ptr<DistanceStore> reopened = MustOpen(base, fp, no_compact);
  EXPECT_EQ(reopened->size(), 3u);
  EXPECT_EQ(reopened->Lookup(4, 5), 3.5);
}

TEST(DistanceStoreTest, CorruptedRecordBodyStopsReplayAtTheFlip) {
  const std::string base = StorePath("bitflip");
  const StoreFingerprint fp = MakeStoreFingerprint("bitflip", 8);
  StoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp, no_compact);
    ASSERT_TRUE(store->Record(0, 1, 1.0).ok());
    ASSERT_TRUE(store->Record(2, 3, 2.0).ok());
    ASSERT_TRUE(store->Close().ok());
  }
  // Flip one byte inside the second record's payload: its CRC now fails,
  // so replay keeps the first record and discards everything after.
  const std::string wal = DistanceStore::WalPath(base);
  {
    std::fstream f(wal, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24 + 20 + 8);  // header + record 0 + into record 1's distance
    char byte = 0x7f;
    f.write(&byte, 1);
  }
  std::unique_ptr<DistanceStore> store = MustOpen(base, fp, no_compact);
  EXPECT_EQ(store->size(), 1u);
  EXPECT_EQ(store->Lookup(0, 1), 1.0);
  EXPECT_EQ(store->counters().torn_bytes_discarded, 20u);
}

TEST(DistanceStoreTest, FingerprintMismatchIsRejected) {
  const std::string base = StorePath("mismatch");
  const StoreFingerprint fp = MakeStoreFingerprint("dataset=a", 16);
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp);
    ASSERT_TRUE(store->Record(0, 1, 1.0).ok());
    ASSERT_TRUE(store->Close().ok());
  }
  // Wrong identity, wrong count, or both: every combination is refused.
  for (const StoreFingerprint& wrong :
       {MakeStoreFingerprint("dataset=b", 16),
        MakeStoreFingerprint("dataset=a", 17)}) {
    StatusOr<std::unique_ptr<DistanceStore>> opened =
        DistanceStore::Open(base, wrong);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
  }
  // ReadFingerprint recovers the true identity from the files alone.
  StatusOr<StoreFingerprint> read = DistanceStore::ReadFingerprint(base);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, fp);
}

TEST(DistanceStoreTest, ReadOnlyModeNeverWrites) {
  const std::string base = StorePath("readonly");
  const StoreFingerprint fp = MakeStoreFingerprint("readonly", 8);
  StoreOptions no_compact;
  no_compact.compact_on_close = false;
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp, no_compact);
    ASSERT_TRUE(store->Record(0, 1, 1.0).ok());
    ASSERT_TRUE(store->Close().ok());
  }
  const uint64_t wal_size = FileSize(DistanceStore::WalPath(base));

  StoreOptions read_only;
  read_only.read_only = true;
  std::unique_ptr<DistanceStore> store = MustOpen(base, fp, read_only);
  EXPECT_TRUE(store->read_only());
  EXPECT_EQ(store->Lookup(0, 1), 1.0);
  EXPECT_TRUE(store->Record(2, 3, 2.0).ok());  // silently dropped
  EXPECT_FALSE(store->Lookup(2, 3).has_value());
  EXPECT_EQ(store->Compact().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store->Close().ok());
  EXPECT_EQ(FileSize(DistanceStore::WalPath(base)), wal_size);
  EXPECT_FALSE(std::filesystem::exists(DistanceStore::SnapshotPath(base)));
}

TEST(DistanceStoreTest, ReadOnlyOpenOfMissingStoreIsNotFound) {
  const std::string base = StorePath("missing");
  StoreOptions read_only;
  read_only.read_only = true;
  StatusOr<std::unique_ptr<DistanceStore>> opened =
      DistanceStore::Open(base, MakeStoreFingerprint("missing", 4), read_only);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST(DistanceStoreTest, RecordValidatesDistances) {
  const std::string base = StorePath("validate");
  std::unique_ptr<DistanceStore> store =
      MustOpen(base, MakeStoreFingerprint("validate", 8));
  EXPECT_EQ(store->Record(0, 1, -1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store
                ->Record(0, 1, std::numeric_limits<double>::quiet_NaN())
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(store->Record(0, 1, 2.0).ok());
  EXPECT_TRUE(store->Record(1, 0, 2.0).ok());  // exact duplicate: no-op
  EXPECT_EQ(store->counters().wal_appends, 1u);
  // A different distance for a stored pair means a different metric space.
  EXPECT_EQ(store->Record(0, 1, 2.5).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store->Close().ok());
}

TEST(PersistentOracleTest, HitsSkipTheBaseOracleAcrossSessions) {
  Dataset dataset = MakeRandomMetric(12, 7);
  CountingOracle counting(dataset.oracle.get());
  const std::string base = StorePath("middleware");
  const StoreFingerprint fp = MakeStoreFingerprint("middleware", 12);

  double first = 0.0;
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp);
    PersistentOracle oracle(&counting, store.get());
    first = oracle.Distance(3, 4);
    EXPECT_EQ(counting.calls(), 1u);
    EXPECT_EQ(oracle.Distance(4, 3), first);  // store hit, symmetric key
    EXPECT_EQ(counting.calls(), 1u);
    EXPECT_EQ(oracle.store_hits(), 1u);
    EXPECT_EQ(oracle.store_misses(), 1u);
    EXPECT_EQ(oracle.wal_appends(), 1u);
    EXPECT_EQ(oracle.store_write_failures(), 0u);
    ASSERT_TRUE(store->Close().ok());
  }

  // A new session over the same files answers without the base oracle.
  std::unique_ptr<DistanceStore> store = MustOpen(base, fp);
  PersistentOracle oracle(&counting, store.get());
  EXPECT_EQ(oracle.Distance(3, 4), first);
  EXPECT_EQ(counting.calls(), 1u);
  EXPECT_EQ(oracle.store_hits(), 1u);
  ASSERT_TRUE(store->Close().ok());
}

TEST(PersistentOracleTest, BatchSplitsIntoHitsAndResidualMisses) {
  Dataset dataset = MakeRandomMetric(12, 9);
  CountingOracle counting(dataset.oracle.get());
  const std::string base = StorePath("batch_split");
  std::unique_ptr<DistanceStore> store =
      MustOpen(base, MakeStoreFingerprint("batch-split", 12));
  PersistentOracle oracle(&counting, store.get());

  const double d01 = oracle.Distance(0, 1);
  ASSERT_EQ(counting.calls(), 1u);

  const std::vector<IdPair> pairs = {IdPair{0, 1}, IdPair{2, 3}, IdPair{4, 5}};
  std::vector<double> out(pairs.size());
  oracle.BatchDistance(pairs, out);
  // Only the two unseen pairs reached the base; the hit came from the store.
  EXPECT_EQ(counting.calls(), 3u);
  EXPECT_EQ(out[0], d01);
  EXPECT_EQ(out[1], dataset.oracle->Distance(2, 3));
  EXPECT_EQ(out[2], dataset.oracle->Distance(4, 5));
  EXPECT_EQ(oracle.store_hits(), 1u);
  EXPECT_EQ(oracle.store_misses(), 3u);

  // The fallible batch takes the same split path.
  std::vector<double> out2(pairs.size());
  std::vector<Status> statuses(pairs.size());
  ASSERT_TRUE(oracle.TryBatchDistance(pairs, out2, statuses).ok());
  EXPECT_EQ(out2, out);
  EXPECT_EQ(counting.calls(), 3u);  // all three were hits this time

  ResolverStats stats;
  oracle.AccumulateStats(&stats);
  EXPECT_EQ(stats.store_hits, 4u);
  EXPECT_EQ(stats.store_misses, 3u);
  EXPECT_EQ(stats.wal_appends, 3u);
  ASSERT_TRUE(store->Close().ok());
}

TEST(StoreHarnessTest, SecondRunAnswersEntirelyFromTheStore) {
  const ObjectId n = 28;
  const uint64_t seed = 11;
  Dataset dataset = MakeRandomMetric(n, seed);
  const Workload workload = [](BoundedResolver* r) {
    return PrimMst(r).total_weight;
  };
  const std::string base = StorePath("harness_warm");
  const StoreFingerprint fp = MakeStoreFingerprint("harness-warm", n);

  WorkloadConfig config;
  config.scheme = SchemeKind::kTri;
  config.seed = seed;

  double cold_value = 0.0;
  uint64_t cold_calls = 0;
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp);
    config.store = store.get();
    const WorkloadResult cold =
        RunWorkload(dataset.oracle.get(), config, workload);
    cold_value = cold.value;
    cold_calls = cold.total_calls;
    EXPECT_GT(cold_calls, 0u);
    EXPECT_EQ(cold.stats.store_hits, 0u);
    EXPECT_EQ(cold.stats.store_misses, cold_calls);
    EXPECT_EQ(cold.stats.wal_appends, cold_calls);
    EXPECT_EQ(cold.stats.store_loaded_edges, 0u);
    ASSERT_TRUE(store->Close().ok());
  }

  // Warm start: every previously paid pair is a resolver cache hit, so the
  // second run makes ZERO oracle calls and produces the same checksum.
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp);
    config.store = store.get();
    const WorkloadResult warm =
        RunWorkload(dataset.oracle.get(), config, workload);
    EXPECT_EQ(warm.value, cold_value);
    EXPECT_EQ(warm.total_calls, 0u);
    EXPECT_EQ(warm.stats.store_loaded_edges, cold_calls);
    ASSERT_TRUE(store->Close().ok());
  }

  // Without warm start the store still absorbs every miss at the oracle
  // layer: same checksum, zero wal appends, all hits.
  {
    std::unique_ptr<DistanceStore> store = MustOpen(base, fp);
    config.store = store.get();
    config.store_warm_start = false;
    const WorkloadResult cached =
        RunWorkload(dataset.oracle.get(), config, workload);
    EXPECT_EQ(cached.value, cold_value);
    EXPECT_EQ(cached.stats.store_hits, cold_calls);
    EXPECT_EQ(cached.stats.store_misses, 0u);
    EXPECT_EQ(cached.stats.wal_appends, 0u);
    ASSERT_TRUE(store->Close().ok());
  }
}

}  // namespace
}  // namespace metricprox
