// Deterministic fuzz tests for DistanceStore's WAL recovery: seeded
// truncations, bit flips and record splices applied to a real WAL file.
// The contract under any corruption is
//   * Open() never crashes — it returns OK or a clean Status;
//   * a recovered store never serves a wrong edge (every surviving record
//     matches the generating metric exactly);
//   * truncation and in-record corruption recover exactly the longest valid
//     record prefix;
//   * snapshot corruption is a clean, explicit error.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/logging.h"
#include "core/status.h"
#include "store/distance_store.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::FamilyMetric;
using testing_util::MetricFamily;

constexpr ObjectId kN = 16;
constexpr size_t kWalHeaderSize = 24;  // mirrors store/distance_store.cc
constexpr size_t kWalRecordSize = 20;

// ctest runs every test case as its own process of this binary, in
// parallel — paths must be unique per case, not just per binary.
std::string FreshPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string base = ::testing::TempDir() + "/" + name + "_" +
                           (info ? info->name() : "setup");
  std::filesystem::remove(DistanceStore::SnapshotPath(base));
  std::filesystem::remove(DistanceStore::WalPath(base));
  return base;
}

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The shared fuzz corpus: a WAL holding `kRecords` appends, in a known
/// order, from a known metric.
class WalFuzzTest : public ::testing::Test {
 protected:
  static constexpr size_t kRecords = 40;

  WalFuzzTest()
      : truth_(FamilyMetric(MetricFamily::kUniform, kN, 3)),
        fp_(MakeStoreFingerprint("fuzz;n=16;seed=3", kN)) {
    const std::string base = FreshPath("walfuzz_corpus");
    StoreOptions options;
    options.compact_on_close = false;  // keep every record in the WAL
    options.fsync_every = 0;
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(base, fp_, options);
    CHECK(store.ok()) << store.status();
    for (ObjectId i = 0; i < kN && edges_.size() < kRecords; ++i) {
      for (ObjectId j = i + 1; j < kN && edges_.size() < kRecords; ++j) {
        CHECK((*store)->Record(i, j, truth_[i * kN + j]).ok());
        edges_.push_back({i, j, truth_[i * kN + j]});
      }
    }
    CHECK((*store)->Close().ok());
    wal_bytes_ = ReadFile(DistanceStore::WalPath(base));
    CHECK_EQ(wal_bytes_.size(), kWalHeaderSize + kRecords * kWalRecordSize);
  }

  /// Opens a store over `bytes` written as a fresh WAL (no snapshot).
  StatusOr<std::unique_ptr<DistanceStore>> OpenMutated(
      const std::vector<char>& bytes, bool read_only) {
    const std::string base = FreshPath("walfuzz_case");
    WriteFile(DistanceStore::WalPath(base), bytes);
    StoreOptions options;
    options.read_only = read_only;
    options.compact_on_close = false;
    return DistanceStore::Open(base, fp_, options);
  }

  /// Asserts the corruption contract on one mutated WAL image. Returns the
  /// number of recovered edges when Open succeeded, or -1 on a clean error.
  int CheckContract(const std::vector<char>& bytes, bool read_only) {
    StatusOr<std::unique_ptr<DistanceStore>> store =
        OpenMutated(bytes, read_only);
    if (!store.ok()) {
      // Clean, typed failure — never a crash, never an OK store with bad
      // data. IoError never applies here (the file exists and is readable).
      EXPECT_TRUE(store.status().code() == StatusCode::kInvalidArgument ||
                  store.status().code() == StatusCode::kFailedPrecondition)
          << store.status();
      return -1;
    }
    for (const WeightedEdge& e : (*store)->Edges()) {
      EXPECT_EQ(e.weight, truth_[e.u * kN + e.v])
          << "wrong edge (" << e.u << "," << e.v << ") served after recovery";
    }
    return static_cast<int>((*store)->size());
  }

  std::vector<double> truth_;
  StoreFingerprint fp_;
  std::vector<WeightedEdge> edges_;
  std::vector<char> wal_bytes_;
};

TEST_F(WalFuzzTest, TruncationRecoversLongestValidPrefix) {
  // Every truncation length, including mid-header and mid-record cuts.
  for (size_t len = 0; len <= wal_bytes_.size(); ++len) {
    std::vector<char> cut(wal_bytes_.begin(), wal_bytes_.begin() + len);
    const bool read_only = (len % 2) == 0;  // alternate both open modes
    const int recovered = CheckContract(cut, read_only);
    if (len < kWalHeaderSize) {
      // Torn header: salvaged as an empty store, not an error.
      ASSERT_EQ(recovered, 0) << "len=" << len;
      continue;
    }
    const int full = static_cast<int>((len - kWalHeaderSize) / kWalRecordSize);
    ASSERT_EQ(recovered, full) << "len=" << len;
  }
}

TEST_F(WalFuzzTest, TruncatedTailIsRepairedAndReopensClean) {
  // A writable open truncates the torn tail; the next open must see a
  // pristine WAL with the same prefix and zero torn bytes.
  const size_t cut_len = kWalHeaderSize + 7 * kWalRecordSize + 11;
  const std::string base = FreshPath("walfuzz_repair");
  WriteFile(DistanceStore::WalPath(base),
            std::vector<char>(wal_bytes_.begin(), wal_bytes_.begin() + cut_len));
  StoreOptions options;
  options.compact_on_close = false;
  {
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(base, fp_, options);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_EQ((*store)->size(), 7u);
    EXPECT_EQ((*store)->counters().torn_bytes_discarded, 11u);
    ASSERT_TRUE((*store)->Close().ok());
  }
  EXPECT_EQ(std::filesystem::file_size(DistanceStore::WalPath(base)),
            kWalHeaderSize + 7 * kWalRecordSize);
  StatusOr<std::unique_ptr<DistanceStore>> again =
      DistanceStore::Open(base, fp_, options);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ((*again)->size(), 7u);
  EXPECT_EQ((*again)->counters().torn_bytes_discarded, 0u);
}

TEST_F(WalFuzzTest, SingleBitFlipsNeverServeWrongEdges) {
  // CRC32 detects every single-bit error, so a flip either breaks the
  // header (clean error) or marks its record as the start of the torn tail
  // (prefix recovery). Seeded positions cover header, body and CRC bytes.
  std::mt19937_64 rng(2024);
  for (int iter = 0; iter < 120; ++iter) {
    const size_t pos = rng() % wal_bytes_.size();
    const int bit = static_cast<int>(rng() % 8);
    std::vector<char> flipped = wal_bytes_;
    flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << bit));
    const int recovered = CheckContract(flipped, /*read_only=*/true);
    if (pos < kWalHeaderSize) {
      EXPECT_EQ(recovered, -1) << "header flip at " << pos << " not rejected";
    } else {
      const int hit = static_cast<int>((pos - kWalHeaderSize) / kWalRecordSize);
      EXPECT_EQ(recovered, hit)
          << "flip at byte " << pos << " bit " << bit << " of record " << hit;
    }
  }
}

TEST_F(WalFuzzTest, RandomByteSplicesNeverCrashNorServeWrongEdges) {
  // Insert, delete or overwrite a random run of bytes at a random offset.
  // Whatever happens, the contract holds: clean status or truth-only edges.
  std::mt19937_64 rng(77);
  for (int iter = 0; iter < 150; ++iter) {
    std::vector<char> bytes = wal_bytes_;
    const size_t pos = kWalHeaderSize + rng() % (bytes.size() - kWalHeaderSize);
    const size_t len = 1 + rng() % 24;
    switch (rng() % 3) {
      case 0: {  // insert garbage
        std::vector<char> junk(len);
        for (char& c : junk) c = static_cast<char>(rng());
        bytes.insert(bytes.begin() + pos, junk.begin(), junk.end());
        break;
      }
      case 1:  // delete a run
        bytes.erase(bytes.begin() + pos,
                    bytes.begin() + std::min(bytes.size(), pos + len));
        break;
      default:  // overwrite in place
        for (size_t b = pos; b < std::min(bytes.size(), pos + len); ++b) {
          bytes[b] = static_cast<char>(rng());
        }
        break;
    }
    CheckContract(bytes, (iter % 2) == 0);
  }
}

TEST_F(WalFuzzTest, DuplicateRecordSpliceIsIdempotent) {
  // Re-inserting a copy of an existing record at a record boundary keeps
  // every CRC aligned and valid; replay dedups it and recovers everything.
  std::vector<char> bytes = wal_bytes_;
  const size_t src = kWalHeaderSize + 4 * kWalRecordSize;
  const std::vector<char> record(bytes.begin() + src,
                                 bytes.begin() + src + kWalRecordSize);
  const size_t dst = kWalHeaderSize + 20 * kWalRecordSize;
  bytes.insert(bytes.begin() + dst, record.begin(), record.end());
  const int recovered = CheckContract(bytes, /*read_only=*/true);
  EXPECT_EQ(recovered, static_cast<int>(kRecords));
}

TEST_F(WalFuzzTest, ConflictingRecordSpliceIsACleanError) {
  // Splice in records from a *different* metric with the same fingerprint:
  // their CRCs are valid, but the first pair that collides with a different
  // distance must be rejected, not silently accepted.
  const std::string base = FreshPath("walfuzz_conflict");
  const std::vector<double> other = FamilyMetric(MetricFamily::kUniform, kN, 4);
  StoreOptions options;
  options.compact_on_close = false;
  {
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(base, fp_, options);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE((*store)->Record(0, 1, other[0 * kN + 1]).ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  const std::vector<char> other_wal = ReadFile(DistanceStore::WalPath(base));
  std::vector<char> spliced = wal_bytes_;
  spliced.insert(spliced.end(), other_wal.begin() + kWalHeaderSize,
                 other_wal.end());
  StatusOr<std::unique_ptr<DistanceStore>> store =
      OpenMutated(spliced, /*read_only=*/true);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WalFuzzTest, ForeignFingerprintIsRefused) {
  const std::string base = FreshPath("walfuzz_foreign");
  WriteFile(DistanceStore::WalPath(base), wal_bytes_);
  StoreOptions options;
  options.read_only = true;
  const StatusOr<std::unique_ptr<DistanceStore>> store = DistanceStore::Open(
      base, MakeStoreFingerprint("fuzz;n=16;seed=4", kN), options);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotFuzzTest, CorruptedSnapshotsAreCleanErrors) {
  // Build a compacted store (snapshot + empty WAL), then corrupt the
  // snapshot: flips and truncations must surface as InvalidArgument, never
  // as an OK store over damaged data.
  const std::vector<double> truth = FamilyMetric(MetricFamily::kUniform, kN, 9);
  const StoreFingerprint fp = MakeStoreFingerprint("snapfuzz;n=16;seed=9", kN);
  const std::string base = FreshPath("snapfuzz_corpus");
  {
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(base, fp, {});
    ASSERT_TRUE(store.ok()) << store.status();
    for (ObjectId i = 0; i < kN; ++i) {
      for (ObjectId j = i + 1; j < kN && j < i + 4; ++j) {
        ASSERT_TRUE((*store)->Record(i, j, truth[i * kN + j]).ok());
      }
    }
    ASSERT_TRUE((*store)->Close().ok());  // compacts into the snapshot
  }
  const std::vector<char> snap = ReadFile(DistanceStore::SnapshotPath(base));
  ASSERT_GT(snap.size(), 32u);

  std::mt19937_64 rng(5);
  const std::string case_base = FreshPath("snapfuzz_case");
  StoreOptions read_only;
  read_only.read_only = true;
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<char> bytes = snap;
    if (iter % 2 == 0) {
      const size_t pos = rng() % bytes.size();
      bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << (rng() % 8)));
    } else {
      bytes.resize(rng() % bytes.size());
    }
    std::filesystem::remove(DistanceStore::WalPath(case_base));
    WriteFile(DistanceStore::SnapshotPath(case_base), bytes);
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(case_base, fp, read_only);
    if (store.ok()) {
      // Only possible if the mutation left the snapshot fully valid — then
      // every edge must still match the truth.
      for (const WeightedEdge& e : (*store)->Edges()) {
        ASSERT_EQ(e.weight, truth[e.u * kN + e.v]);
      }
    } else {
      EXPECT_TRUE(store.status().code() == StatusCode::kInvalidArgument ||
                  store.status().code() == StatusCode::kFailedPrecondition ||
                  store.status().code() == StatusCode::kNotFound)
          << store.status();
    }
  }
}

}  // namespace
}  // namespace metricprox
