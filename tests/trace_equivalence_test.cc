// Traced-vs-untraced equivalence: attaching the full telemetry bundle (ring
// sink + histograms) to a run must change nothing observable — outputs are
// byte-identical and every decision counter matches, under both transports,
// across the audit matrix of algorithms x schemes. Telemetry only watches
// the distance path; gap probes read bounds without resolving, so even
// bound_queries and bounder_seconds-adjacent counters stay equal. As a
// bonus the ring snapshot is cross-checked against the counters: the trace
// is not just harmless, it is a faithful transcript of the decisions.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/knn_graph.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "core/logging.h"
#include "data/datasets.h"
#include "graph/partial_graph.h"
#include "obs/hub.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "service/session.h"

namespace metricprox {
namespace {

struct RunOutput {
  std::vector<double> blob;  // flattened algorithm output
  ResolverStats stats;
};

RunOutput RunOnce(const Dataset& dataset, const std::string& algorithm,
                  SchemeKind scheme, uint64_t seed, bool batch_transport,
                  Telemetry* telemetry) {
  PartialDistanceGraph graph(dataset.oracle->num_objects());
  BoundedResolver resolver(dataset.oracle.get(), &graph);
  resolver.SetBatchTransport(batch_transport);
  resolver.SetTelemetry(telemetry);

  RunOutput run;
  auto push_edge = [&run](const WeightedEdge& e) {
    run.blob.push_back(e.u);
    run.blob.push_back(e.v);
    run.blob.push_back(e.weight);
  };
  std::unique_ptr<Bounder> bounder_keepalive;
  const StatusOr<double> outcome =
      resolver.RunFallible([&](BoundedResolver* r) -> double {
        SchemeOptions options;
        options.seed = seed;
        options.max_distance = dataset.max_distance;
        StatusOr<std::unique_ptr<Bounder>> bounder =
            MakeAndAttachScheme(scheme, r, options);
        CHECK(bounder.ok()) << bounder.status();
        bounder_keepalive = std::move(bounder).value();

        if (algorithm == "prim") {
          for (const WeightedEdge& e : PrimMst(r).edges) push_edge(e);
        } else if (algorithm == "boruvka") {
          for (const WeightedEdge& e : BoruvkaMst(r).edges) push_edge(e);
        } else if (algorithm == "knn") {
          for (const auto& row : BuildKnnGraph(r, KnnGraphOptions{3})) {
            for (const KnnNeighbor& nb : row) {
              run.blob.push_back(nb.id);
              run.blob.push_back(nb.distance);
            }
          }
        } else {  // pam
          PamOptions options_pam;
          options_pam.num_medoids = 4;
          const ClusteringResult c = PamCluster(r, options_pam);
          for (const ObjectId m : c.medoids) run.blob.push_back(m);
          for (const uint32_t a : c.assignment) run.blob.push_back(a);
          run.blob.push_back(c.total_deviation);
        }
        return 0.0;
      });
  CHECK(outcome.ok()) << outcome.status();
  run.stats = resolver.stats();
  return run;
}

uint64_t CountKind(const std::vector<TraceEvent>& events,
                   TraceEventKind kind) {
  uint64_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void ExpectIdentical(const RunOutput& bare, const RunOutput& traced,
                     const std::string& context) {
  // Byte-identical outputs: compare the raw doubles, not within tolerance.
  ASSERT_EQ(bare.blob.size(), traced.blob.size()) << context;
  for (size_t k = 0; k < bare.blob.size(); ++k) {
    EXPECT_EQ(bare.blob[k], traced.blob[k]) << context << " blob[" << k << "]";
  }
  const ResolverStats& a = bare.stats;
  const ResolverStats& b = traced.stats;
  EXPECT_EQ(a.oracle_calls, b.oracle_calls) << context;
  EXPECT_EQ(a.comparisons, b.comparisons) << context;
  EXPECT_EQ(a.decided_by_bounds, b.decided_by_bounds) << context;
  EXPECT_EQ(a.decided_by_cache, b.decided_by_cache) << context;
  EXPECT_EQ(a.decided_by_oracle, b.decided_by_oracle) << context;
  EXPECT_EQ(a.undecided, b.undecided) << context;
  // Gap probes bypass the resolver's Bounds() verb, so the bound-query
  // accounting is equal too — telemetry never shows up in the counters.
  EXPECT_EQ(a.bound_queries, b.bound_queries) << context;
  EXPECT_EQ(a.batch_calls, b.batch_calls) << context;
  EXPECT_EQ(a.batch_resolved_pairs, b.batch_resolved_pairs) << context;
}

void ExpectFaithfulTrace(const RunOutput& traced,
                         const std::vector<TraceEvent>& events,
                         bool batch_transport, const std::string& context) {
  const ResolverStats& s = traced.stats;
  EXPECT_EQ(CountKind(events, TraceEventKind::kComparison), s.comparisons)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kDecidedByBounds),
            s.decided_by_bounds)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kDecidedByCache),
            s.decided_by_cache)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kDecidedByOracle),
            s.decided_by_oracle)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kUndecided), s.undecided)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kBatchShipped), s.batch_calls)
      << context;
  // Every oracle resolution is on the wire exactly once: per pair via
  // oracle_call on the scalar path, rolled into batch_shipped.count on the
  // batch path.
  uint64_t resolved = CountKind(events, TraceEventKind::kOracleCall);
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kBatchShipped) resolved += e.count;
  }
  EXPECT_EQ(resolved, s.oracle_calls) << context;
  if (!batch_transport) {
    EXPECT_EQ(CountKind(events, TraceEventKind::kOracleCall), s.oracle_calls)
        << context;
  }
}

Dataset MakeNamedDataset(const std::string& name, ObjectId n, uint64_t seed) {
  if (name == "sf") return MakeSfPoiLike(n, seed);
  if (name == "dna") return MakeDnaLike(n, 40, seed);
  return MakeRandomMetric(n, seed);
}

class TraceEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(TraceEquivalenceTest, TracedRunIsByteIdentical) {
  const std::string dataset_name = std::get<0>(GetParam());
  const std::string algorithm = std::get<1>(GetParam());
  const uint64_t seed = 42;
  const ObjectId n = dataset_name == "sf" ? 48
                     : dataset_name == "dna" ? 32
                                             : 36;
  const Dataset dataset = MakeNamedDataset(dataset_name, n, seed);
  // DFT solves dense LPs per undecided comparison and rebuilds its
  // constraint system after every resolution, so its audit-matrix leg runs
  // on a shrunken instance (same sizing as certificate_test's DFT cell).
  const Dataset small = MakeNamedDataset(
      dataset_name, algorithm == "pam" ? 10 : 12, seed);

  for (const SchemeKind scheme :
       {SchemeKind::kTri, SchemeKind::kSplub, SchemeKind::kDft}) {
    const Dataset& data = scheme == SchemeKind::kDft ? small : dataset;
    for (const bool batch_transport : {false, true}) {
      const std::string context =
          dataset_name + "/" + algorithm + "/" +
          std::string(SchemeKindName(scheme)) +
          (batch_transport ? "/batch" : "/serial");

      const RunOutput bare = RunOnce(data, algorithm, scheme, seed,
                                     batch_transport, nullptr);

      RingBufferTraceSink sink(1u << 20);
      Telemetry telemetry;
      telemetry.sink = &sink;
      telemetry.trace_id = context;
      const RunOutput traced = RunOnce(data, algorithm, scheme, seed,
                                       batch_transport, &telemetry);

      ExpectIdentical(bare, traced, context);
      ASSERT_EQ(sink.dropped(), 0u) << context << ": grow the ring";
      const std::vector<TraceEvent> events = sink.Snapshot();
      EXPECT_GT(events.size(), 0u) << context;
      ExpectFaithfulTrace(traced, events, batch_transport, context);
      // Sequence numbers are gap-free in emission order.
      for (size_t k = 0; k < events.size(); ++k) {
        ASSERT_EQ(events[k].seq, k) << context;
      }
      // Histograms filled alongside the events.
      EXPECT_GT(telemetry.bound_gap.count(), 0u) << context;
      EXPECT_GT(telemetry.oracle_latency_seconds.count(), 0u) << context;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AuditMatrix, TraceEquivalenceTest,
    ::testing::Combine(::testing::Values("sf", "random", "dna"),
                       ::testing::Values("prim", "boruvka", "knn", "pam")),
    [](const ::testing::TestParamInfo<TraceEquivalenceTest::ParamType>&
           info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// --------------------------------------------------------------------------
// The concurrent pooled extension (obs v2): attaching an ObservabilityHub to
// a SessionPool running the full algorithm matrix CONCURRENTLY (one session
// per algorithm) must also change nothing — per-session outputs stay
// byte-identical to the untraced pooled run and every schedule-independent
// counter matches — while the merged pool-wide trace carries well-formed
// causal span trees whose coalescing identity reconciles with the
// coalescer's own counters: sum(coalesce_submit counts) == pairs_shipped +
// dedup_hits. This is the in-process twin of validate_telemetry.py --mode
// spans, and the TSan payload for hub-attached pools.

constexpr const char* kPoolAlgorithms[] = {"knn", "prim", "boruvka", "pam"};

void RunPoolAlgorithm(BoundedResolver* r, const std::string& algorithm,
                      std::vector<double>* blob) {
  auto push_edge = [blob](const WeightedEdge& e) {
    blob->push_back(e.u);
    blob->push_back(e.v);
    blob->push_back(e.weight);
  };
  if (algorithm == "prim") {
    for (const WeightedEdge& e : PrimMst(r).edges) push_edge(e);
  } else if (algorithm == "boruvka") {
    for (const WeightedEdge& e : BoruvkaMst(r).edges) push_edge(e);
  } else if (algorithm == "knn") {
    for (const auto& row : BuildKnnGraph(r, KnnGraphOptions{3})) {
      for (const KnnNeighbor& nb : row) {
        blob->push_back(nb.id);
        blob->push_back(nb.distance);
      }
    }
  } else {  // pam
    PamOptions options;
    options.num_medoids = 4;
    const ClusteringResult c = PamCluster(r, options);
    for (const ObjectId m : c.medoids) blob->push_back(m);
    for (const uint32_t a : c.assignment) blob->push_back(a);
    blob->push_back(c.total_deviation);
  }
}

struct PoolMatrixResult {
  std::vector<RunOutput> runs;
  CoalescerCounters coalescer;
};

PoolMatrixResult RunPoolMatrix(const Dataset& dataset, bool batch_transport,
                               bool enable_coalescer, ObservabilityHub* hub) {
  SessionPoolOptions options;
  options.enable_coalescer = enable_coalescer;
  options.hub = hub;
  SessionPool pool(dataset.oracle.get(), options);
  std::vector<std::unique_ptr<ResolverSession>> sessions;
  for (size_t s = 0; s < std::size(kPoolAlgorithms); ++s) {
    SessionOptions session_options;
    session_options.tag = kPoolAlgorithms[s];
    sessions.push_back(pool.OpenSession(session_options));
  }
  PoolMatrixResult result;
  result.runs.resize(sessions.size());
  std::vector<std::thread> threads;
  for (size_t s = 0; s < sessions.size(); ++s) {
    threads.emplace_back([&, s] {
      sessions[s]->UseTriBounds();
      sessions[s]->resolver().SetBatchTransport(batch_transport);
      RunPoolAlgorithm(&sessions[s]->resolver(), kPoolAlgorithms[s],
                       &result.runs[s].blob);
      result.runs[s].stats = sessions[s]->Stats();
    });
  }
  for (std::thread& t : threads) t.join();
  if (pool.coalescer() != nullptr) {
    result.coalescer = pool.coalescer()->counters();
  }
  return result;
}

/// The C++ version of the validator's spans mode, plus cross-checks the
/// trace-stream identity against the coalescer's own accounting.
void ExpectWellFormedSpanTrees(const std::vector<TraceEvent>& events,
                               bool enable_coalescer,
                               const CoalescerCounters& cc,
                               const std::string& context) {
  std::map<uint64_t, const TraceEvent*> begins;
  std::map<uint64_t, const TraceEvent*> ends;
  std::set<uint64_t> seqs;
  uint64_t dedup_joins = 0;
  for (const TraceEvent& e : events) {
    // The pool clock stamps seq atomically before the sink locks, so the
    // ring order may interleave — but every seq is handed out exactly once.
    EXPECT_TRUE(seqs.insert(e.seq).second)
        << context << " duplicate seq " << e.seq;
    if (e.kind == TraceEventKind::kSpanBegin) {
      EXPECT_TRUE(begins.emplace(e.span_id, &e).second)
          << context << " span id reused: " << e.span_id;
    } else if (e.kind == TraceEventKind::kSpanEnd) {
      EXPECT_TRUE(ends.emplace(e.span_id, &e).second)
          << context << " span ended twice: " << e.span_id;
    } else if (e.kind == TraceEventKind::kCoalesceDedup) {
      dedup_joins += e.count;
    }
  }
  ASSERT_EQ(begins.size(), ends.size()) << context << " unclosed spans";
  EXPECT_GT(begins.size(), 0u) << context;

  const std::set<std::string> vocabulary = {
      "resolve", "bound", "coalesce_submit", "batch_ship", "oracle_rtt"};
  uint64_t submitted = 0;
  uint64_t shipped = 0;
  for (const auto& [id, end] : ends) {
    const auto begin_it = begins.find(id);
    ASSERT_NE(begin_it, begins.end())
        << context << " span_end without begin: " << id;
    const TraceEvent* begin = begin_it->second;
    EXPECT_EQ(begin->name, end->name) << context << " span " << id;
    EXPECT_EQ(begin->session_id, end->session_id) << context << " span " << id;
    EXPECT_LT(begin->seq, end->seq) << context << " span " << id;
    EXPECT_TRUE(vocabulary.count(begin->name) > 0)
        << context << " unknown span name: " << begin->name;
    if (begin->parent_span_id != 0) {
      // Parents are implicit (thread-local stack), so a child's lifetime is
      // strictly inside its parent's: begin after, end before.
      const auto parent_begin = begins.find(begin->parent_span_id);
      ASSERT_NE(parent_begin, begins.end())
          << context << " dangling parent of span " << id;
      const auto parent_end = ends.find(begin->parent_span_id);
      ASSERT_NE(parent_end, ends.end()) << context;
      EXPECT_LT(parent_begin->second->seq, begin->seq) << context;
      EXPECT_GT(parent_end->second->seq, end->seq) << context;
    }
    if (end->link_span_id != 0) {
      // A waiter's oracle_rtt links to the (possibly foreign-session)
      // batch_ship span that actually carried its pairs.
      const auto link = begins.find(end->link_span_id);
      ASSERT_NE(link, begins.end())
          << context << " dangling link from span " << id;
      EXPECT_EQ(link->second->name, "batch_ship") << context;
      EXPECT_EQ(end->name, "oracle_rtt") << context;
    }
    if (end->name == "resolve" || end->name == "bound") {
      EXPECT_GE(begin->session_id, 1u)
          << context << " session-side span without a session tag";
    }
    if (end->name == "batch_ship") {
      // Flusher-side root span on the pool bundle: no session, no parent.
      EXPECT_EQ(begin->session_id, 0u) << context;
      EXPECT_EQ(begin->parent_span_id, 0u) << context;
      shipped += end->count;
    }
    if (end->name == "coalesce_submit") submitted += end->count;
  }

  // The trace-stream identity: every submitted pair either went over the
  // wire or joined another session's in-flight pair — and the span stream
  // agrees exactly with the coalescer's counters.
  EXPECT_EQ(submitted, shipped + dedup_joins) << context;
  if (enable_coalescer) {
    EXPECT_EQ(shipped, cc.pairs_shipped) << context;
    EXPECT_EQ(dedup_joins, cc.dedup_hits) << context;
  } else {
    EXPECT_EQ(submitted, 0u) << context;
    EXPECT_EQ(shipped, 0u) << context;
    EXPECT_EQ(dedup_joins, 0u) << context;
  }
}

class PooledTraceEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(PooledTraceEquivalenceTest, ConcurrentTracedPoolIsByteIdentical) {
  const auto [batch_transport, enable_coalescer] = GetParam();
  const std::string context = std::string("pooled") +
                              (batch_transport ? "/batch" : "/serial") +
                              (enable_coalescer ? "/coalesced" : "/direct");
  const ObjectId n = 36;
  const Dataset dataset = MakeRandomMetric(n, /*seed=*/1234);

  const PoolMatrixResult bare =
      RunPoolMatrix(dataset, batch_transport, enable_coalescer, nullptr);

  constexpr size_t kRingCapacity = 1u << 20;
  ObservabilityHubOptions hub_options;
  hub_options.flight_capacity = kRingCapacity;
  hub_options.tenant = "equivalence";
  ObservabilityHub hub(hub_options);
  const PoolMatrixResult traced =
      RunPoolMatrix(dataset, batch_transport, enable_coalescer, &hub);

  ASSERT_EQ(bare.runs.size(), traced.runs.size());
  for (size_t s = 0; s < bare.runs.size(); ++s) {
    ExpectIdentical(bare.runs[s], traced.runs[s],
                    context + "/" + kPoolAlgorithms[s]);
  }

  const std::vector<TraceEvent> events = hub.flight().Snapshot();
  ASSERT_LT(events.size(), kRingCapacity) << context << ": grow the ring";
  ExpectWellFormedSpanTrees(events, enable_coalescer, traced.coalescer,
                            context);

  // Per session, the merged trace is still a faithful transcript: filter
  // by session tag and replay the single-run cross-checks.
  for (size_t s = 0; s < traced.runs.size(); ++s) {
    std::vector<TraceEvent> session_events;
    for (const TraceEvent& e : events) {
      if (e.session_id == s + 1) session_events.push_back(e);
    }
    ExpectFaithfulTrace(traced.runs[s], session_events, batch_transport,
                        context + "/" + kPoolAlgorithms[s]);
  }

  // The hub's fold-in matches the ring: one spans_emitted per span_begin.
  uint64_t begins = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kSpanBegin) ++begins;
  }
  ResolverStats obs_stats;
  hub.AccumulateStats(&obs_stats);
  EXPECT_EQ(obs_stats.spans_emitted, begins) << context;
}

INSTANTIATE_TEST_SUITE_P(
    TransportByCoalescing, PooledTraceEquivalenceTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<PooledTraceEquivalenceTest::ParamType>&
           info) {
      return std::string(std::get<0>(info.param) ? "batch" : "serial") +
             (std::get<1>(info.param) ? "_coalesced" : "_direct");
    });

}  // namespace
}  // namespace metricprox
