// Traced-vs-untraced equivalence: attaching the full telemetry bundle (ring
// sink + histograms) to a run must change nothing observable — outputs are
// byte-identical and every decision counter matches, under both transports,
// across the audit matrix of algorithms x schemes. Telemetry only watches
// the distance path; gap probes read bounds without resolving, so even
// bound_queries and bounder_seconds-adjacent counters stay equal. As a
// bonus the ring snapshot is cross-checked against the counters: the trace
// is not just harmless, it is a faithful transcript of the decisions.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/knn_graph.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "core/logging.h"
#include "data/datasets.h"
#include "graph/partial_graph.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace metricprox {
namespace {

struct RunOutput {
  std::vector<double> blob;  // flattened algorithm output
  ResolverStats stats;
};

RunOutput RunOnce(const Dataset& dataset, const std::string& algorithm,
                  SchemeKind scheme, uint64_t seed, bool batch_transport,
                  Telemetry* telemetry) {
  PartialDistanceGraph graph(dataset.oracle->num_objects());
  BoundedResolver resolver(dataset.oracle.get(), &graph);
  resolver.SetBatchTransport(batch_transport);
  resolver.SetTelemetry(telemetry);

  RunOutput run;
  auto push_edge = [&run](const WeightedEdge& e) {
    run.blob.push_back(e.u);
    run.blob.push_back(e.v);
    run.blob.push_back(e.weight);
  };
  std::unique_ptr<Bounder> bounder_keepalive;
  const StatusOr<double> outcome =
      resolver.RunFallible([&](BoundedResolver* r) -> double {
        SchemeOptions options;
        options.seed = seed;
        options.max_distance = dataset.max_distance;
        StatusOr<std::unique_ptr<Bounder>> bounder =
            MakeAndAttachScheme(scheme, r, options);
        CHECK(bounder.ok()) << bounder.status();
        bounder_keepalive = std::move(bounder).value();

        if (algorithm == "prim") {
          for (const WeightedEdge& e : PrimMst(r).edges) push_edge(e);
        } else if (algorithm == "boruvka") {
          for (const WeightedEdge& e : BoruvkaMst(r).edges) push_edge(e);
        } else if (algorithm == "knn") {
          for (const auto& row : BuildKnnGraph(r, KnnGraphOptions{3})) {
            for (const KnnNeighbor& nb : row) {
              run.blob.push_back(nb.id);
              run.blob.push_back(nb.distance);
            }
          }
        } else {  // pam
          PamOptions options_pam;
          options_pam.num_medoids = 4;
          const ClusteringResult c = PamCluster(r, options_pam);
          for (const ObjectId m : c.medoids) run.blob.push_back(m);
          for (const uint32_t a : c.assignment) run.blob.push_back(a);
          run.blob.push_back(c.total_deviation);
        }
        return 0.0;
      });
  CHECK(outcome.ok()) << outcome.status();
  run.stats = resolver.stats();
  return run;
}

uint64_t CountKind(const std::vector<TraceEvent>& events,
                   TraceEventKind kind) {
  uint64_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void ExpectIdentical(const RunOutput& bare, const RunOutput& traced,
                     const std::string& context) {
  // Byte-identical outputs: compare the raw doubles, not within tolerance.
  ASSERT_EQ(bare.blob.size(), traced.blob.size()) << context;
  for (size_t k = 0; k < bare.blob.size(); ++k) {
    EXPECT_EQ(bare.blob[k], traced.blob[k]) << context << " blob[" << k << "]";
  }
  const ResolverStats& a = bare.stats;
  const ResolverStats& b = traced.stats;
  EXPECT_EQ(a.oracle_calls, b.oracle_calls) << context;
  EXPECT_EQ(a.comparisons, b.comparisons) << context;
  EXPECT_EQ(a.decided_by_bounds, b.decided_by_bounds) << context;
  EXPECT_EQ(a.decided_by_cache, b.decided_by_cache) << context;
  EXPECT_EQ(a.decided_by_oracle, b.decided_by_oracle) << context;
  EXPECT_EQ(a.undecided, b.undecided) << context;
  // Gap probes bypass the resolver's Bounds() verb, so the bound-query
  // accounting is equal too — telemetry never shows up in the counters.
  EXPECT_EQ(a.bound_queries, b.bound_queries) << context;
  EXPECT_EQ(a.batch_calls, b.batch_calls) << context;
  EXPECT_EQ(a.batch_resolved_pairs, b.batch_resolved_pairs) << context;
}

void ExpectFaithfulTrace(const RunOutput& traced,
                         const std::vector<TraceEvent>& events,
                         bool batch_transport, const std::string& context) {
  const ResolverStats& s = traced.stats;
  EXPECT_EQ(CountKind(events, TraceEventKind::kComparison), s.comparisons)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kDecidedByBounds),
            s.decided_by_bounds)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kDecidedByCache),
            s.decided_by_cache)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kDecidedByOracle),
            s.decided_by_oracle)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kUndecided), s.undecided)
      << context;
  EXPECT_EQ(CountKind(events, TraceEventKind::kBatchShipped), s.batch_calls)
      << context;
  // Every oracle resolution is on the wire exactly once: per pair via
  // oracle_call on the scalar path, rolled into batch_shipped.count on the
  // batch path.
  uint64_t resolved = CountKind(events, TraceEventKind::kOracleCall);
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kBatchShipped) resolved += e.count;
  }
  EXPECT_EQ(resolved, s.oracle_calls) << context;
  if (!batch_transport) {
    EXPECT_EQ(CountKind(events, TraceEventKind::kOracleCall), s.oracle_calls)
        << context;
  }
}

Dataset MakeNamedDataset(const std::string& name, ObjectId n, uint64_t seed) {
  if (name == "sf") return MakeSfPoiLike(n, seed);
  if (name == "dna") return MakeDnaLike(n, 40, seed);
  return MakeRandomMetric(n, seed);
}

class TraceEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(TraceEquivalenceTest, TracedRunIsByteIdentical) {
  const std::string dataset_name = std::get<0>(GetParam());
  const std::string algorithm = std::get<1>(GetParam());
  const uint64_t seed = 42;
  const ObjectId n = dataset_name == "sf" ? 48
                     : dataset_name == "dna" ? 32
                                             : 36;
  const Dataset dataset = MakeNamedDataset(dataset_name, n, seed);
  // DFT solves dense LPs per undecided comparison and rebuilds its
  // constraint system after every resolution, so its audit-matrix leg runs
  // on a shrunken instance (same sizing as certificate_test's DFT cell).
  const Dataset small = MakeNamedDataset(
      dataset_name, algorithm == "pam" ? 10 : 12, seed);

  for (const SchemeKind scheme :
       {SchemeKind::kTri, SchemeKind::kSplub, SchemeKind::kDft}) {
    const Dataset& data = scheme == SchemeKind::kDft ? small : dataset;
    for (const bool batch_transport : {false, true}) {
      const std::string context =
          dataset_name + "/" + algorithm + "/" +
          std::string(SchemeKindName(scheme)) +
          (batch_transport ? "/batch" : "/serial");

      const RunOutput bare = RunOnce(data, algorithm, scheme, seed,
                                     batch_transport, nullptr);

      RingBufferTraceSink sink(1u << 20);
      Telemetry telemetry;
      telemetry.sink = &sink;
      telemetry.trace_id = context;
      const RunOutput traced = RunOnce(data, algorithm, scheme, seed,
                                       batch_transport, &telemetry);

      ExpectIdentical(bare, traced, context);
      ASSERT_EQ(sink.dropped(), 0u) << context << ": grow the ring";
      const std::vector<TraceEvent> events = sink.Snapshot();
      EXPECT_GT(events.size(), 0u) << context;
      ExpectFaithfulTrace(traced, events, batch_transport, context);
      // Sequence numbers are gap-free in emission order.
      for (size_t k = 0; k < events.size(); ++k) {
        ASSERT_EQ(events[k].seq, k) << context;
      }
      // Histograms filled alongside the events.
      EXPECT_GT(telemetry.bound_gap.count(), 0u) << context;
      EXPECT_GT(telemetry.oracle_latency_seconds.count(), 0u) << context;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AuditMatrix, TraceEquivalenceTest,
    ::testing::Combine(::testing::Values("sf", "random", "dna"),
                       ::testing::Values("prim", "boruvka", "knn", "pam")),
    [](const ::testing::TestParamInfo<TraceEquivalenceTest::ParamType>&
           info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace metricprox
