// Unit coverage of the live-observability layer (obs v2): causal ScopedSpan
// parenting and inertness, FanoutEmit mirroring, the lock-striped
// MetricsRegistry with its two renderings, the FlightRecorder ring/tee and
// its dump file, and the ObservabilityHub (session bundles, gauge probes,
// sampler artifacts, dump-request sentinel, stall watchdog, stats fold-in).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/stats.h"
#include "obs/flight.h"
#include "obs/hub.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace metricprox {
namespace {

std::vector<TraceEvent> OfKind(const std::vector<TraceEvent>& events,
                               TraceEventKind kind) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/obs_live_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// Spins (bounded) until `done` returns true; hub background work runs on
/// its own thread, so tests that observe it must wait, not sleep blindly.
bool WaitFor(const std::function<bool()>& done, double timeout_seconds = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// ---------------------------------------------------------------- spans --

TEST(ScopedSpanTest, EmitsMatchingBeginAndEndWithImplicitParent) {
  RingBufferTraceSink sink(64);
  Telemetry telemetry;
  telemetry.sink = &sink;
  telemetry.session_id = 7;
  telemetry.tenant = "acme";

  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    ScopedSpan outer(&telemetry, "resolve", 3);
    ASSERT_TRUE(outer.active());
    outer_id = outer.id();
    ASSERT_NE(outer_id, 0u);
    EXPECT_EQ(ScopedSpan::CurrentSpanId(), outer_id);
    {
      ScopedSpan inner(&telemetry, "bound", 2);
      inner_id = inner.id();
      EXPECT_NE(inner_id, outer_id);
      EXPECT_EQ(ScopedSpan::CurrentSpanId(), inner_id);
    }
    EXPECT_EQ(ScopedSpan::CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(ScopedSpan::CurrentSpanId(), 0u);

  const std::vector<TraceEvent> events = sink.Snapshot();
  const std::vector<TraceEvent> begins =
      OfKind(events, TraceEventKind::kSpanBegin);
  const std::vector<TraceEvent> ends = OfKind(events, TraceEventKind::kSpanEnd);
  ASSERT_EQ(begins.size(), 2u);
  ASSERT_EQ(ends.size(), 2u);
  // Outer begins first, ends last (LIFO nesting), and the inner span names
  // the outer as its implicit parent.
  EXPECT_EQ(begins[0].span_id, outer_id);
  EXPECT_EQ(begins[0].name, "resolve");
  EXPECT_EQ(begins[0].parent_span_id, 0u);
  EXPECT_EQ(begins[1].span_id, inner_id);
  EXPECT_EQ(begins[1].name, "bound");
  EXPECT_EQ(begins[1].parent_span_id, outer_id);
  EXPECT_EQ(ends[0].span_id, inner_id);
  EXPECT_EQ(ends[1].span_id, outer_id);
  EXPECT_EQ(ends[1].count, 3u);
  // Session/tenant identity is stamped onto every span event.
  for (const TraceEvent& e : begins) {
    EXPECT_EQ(e.session_id, 7u);
    EXPECT_EQ(e.tenant, "acme");
  }
  // The end carries a measured (non-negative, finite) duration.
  EXPECT_GE(ends[1].seconds, 0.0);
}

TEST(ScopedSpanTest, NullTelemetryIsFullyInert) {
  {
    ScopedSpan span(nullptr, "resolve", 5);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    // An inert span must not appear on the thread's parent stack, or an A/B
    // run would parent real spans differently.
    EXPECT_EQ(ScopedSpan::CurrentSpanId(), 0u);
  }
  // A sinkless telemetry is equally inert: no span ids may be consumed, so
  // traced and untraced runs allocate identical id sequences later.
  Telemetry untraced;
  {
    ScopedSpan span(&untraced, "resolve");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(ScopedSpan::CurrentSpanId(), 0u);
  }
  RingBufferTraceSink sink(8);
  untraced.sink = &sink;
  ScopedSpan first(&untraced, "resolve");
  EXPECT_EQ(first.id(), 1u);  // nothing was burned while inert
}

TEST(ScopedSpanTest, LinkAndCountAreCarriedOnEnd) {
  RingBufferTraceSink sink(8);
  Telemetry telemetry;
  telemetry.sink = &sink;
  {
    ScopedSpan span(&telemetry, "oracle_rtt", 1);
    span.set_link(99);
    span.set_count(4);
  }
  const std::vector<TraceEvent> ends =
      OfKind(sink.Snapshot(), TraceEventKind::kSpanEnd);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0].link_span_id, 99u);
  EXPECT_EQ(ends[0].count, 4u);
}

TEST(FanoutEmitTest, MirrorsToTargetsWithLinkAndIdentityStamping) {
  RingBufferTraceSink primary_sink(8);
  RingBufferTraceSink waiter_sink(8);
  Telemetry primary;
  primary.sink = &primary_sink;
  Telemetry waiter;
  waiter.sink = &waiter_sink;
  waiter.session_id = 3;
  waiter.tenant = "acme";

  std::vector<FanoutTarget> targets;
  targets.push_back(FanoutTarget{&waiter, /*link_span_id=*/42});
  targets.push_back(FanoutTarget{&primary, /*link_span_id=*/42});  // skipped
  {
    ScopedFanout fanout(&targets);
    TraceEvent event;
    event.kind = TraceEventKind::kRetry;
    event.count = 2;
    FanoutEmit(&primary, event);
  }
  // Primary got the original, the waiter a mirrored copy with its session
  // identity and the ship-span link; the primary was not double-emitted.
  ASSERT_EQ(primary_sink.emitted(), 1u);
  ASSERT_EQ(waiter_sink.emitted(), 1u);
  const TraceEvent copy = waiter_sink.Snapshot()[0];
  EXPECT_EQ(copy.kind, TraceEventKind::kRetry);
  EXPECT_EQ(copy.count, 2u);
  EXPECT_EQ(copy.link_span_id, 42u);
  EXPECT_EQ(copy.session_id, 3u);
  EXPECT_EQ(copy.tenant, "acme");

  // Outside the scope the ambient target list is gone.
  TraceEvent after;
  after.kind = TraceEventKind::kRetry;
  FanoutEmit(&primary, after);
  EXPECT_EQ(primary_sink.emitted(), 2u);
  EXPECT_EQ(waiter_sink.emitted(), 1u);
}

TEST(FanoutEmitTest, MirrorsEvenWithoutAPrimaryBundle) {
  // The middleware stack may run untraced (null telemetry) while shipping a
  // coalesced batch whose waiters ARE traced — mirroring must still happen.
  RingBufferTraceSink waiter_sink(8);
  Telemetry waiter;
  waiter.sink = &waiter_sink;
  std::vector<FanoutTarget> targets = {FanoutTarget{&waiter, 0}};
  ScopedFanout fanout(&targets);
  TraceEvent event;
  event.kind = TraceEventKind::kBackoff;
  event.seconds = 0.25;
  FanoutEmit(nullptr, event);
  ASSERT_EQ(waiter_sink.emitted(), 1u);
  EXPECT_EQ(waiter_sink.Snapshot()[0].kind, TraceEventKind::kBackoff);
}

// -------------------------------------------------------------- metrics --

TEST(MetricsRegistryTest, UpsertsAndSortedSnapshot) {
  MetricsRegistry registry;
  registry.CounterAdd("acme", 1, "oracle_calls", 5);
  registry.CounterAdd("acme", 1, "oracle_calls", 7);
  registry.CounterAdd("acme", 2, "oracle_calls");
  registry.GaugeSet("acme", 0, "queue_depth", 3.0);
  registry.GaugeSet("acme", 0, "queue_depth", 1.5);  // last write wins
  registry.HistogramRecord("acme", 1, "batch_size", 8.0);
  registry.HistogramRecord("acme", 1, "batch_size", 16.0);

  const std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  // Sorted by (metric, tenant, session).
  EXPECT_EQ(samples[0].metric, "batch_size");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[0].hist.count, 2u);
  EXPECT_EQ(samples[0].hist.sum, 24.0);
  EXPECT_EQ(samples[1].metric, "oracle_calls");
  EXPECT_EQ(samples[1].session, 1u);
  EXPECT_EQ(samples[1].counter, 12u);
  EXPECT_EQ(samples[2].metric, "oracle_calls");
  EXPECT_EQ(samples[2].session, 2u);
  EXPECT_EQ(samples[2].counter, 1u);
  EXPECT_EQ(samples[3].metric, "queue_depth");
  EXPECT_EQ(samples[3].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[3].gauge, 1.5);
}

TEST(MetricsRegistryTest, PrometheusRenderingIsLintable) {
  MetricsRegistry registry;
  registry.CounterAdd("a\"b\\c", 4, "oracle calls!", 9);
  registry.GaugeSet("default", 0, "wall_seconds", 2.5);
  registry.HistogramRecord("default", 1, "latency", 0.5);
  const std::string prom = registry.RenderPrometheus();

  // Metric names are sanitized into the Prometheus charset and prefixed.
  EXPECT_NE(prom.find("# TYPE mpx_oracle_calls_ counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE mpx_wall_seconds gauge"), std::string::npos);
  // Histograms export as summaries with quantile labels + _sum/_count.
  EXPECT_NE(prom.find("# TYPE mpx_latency summary"), std::string::npos);
  EXPECT_NE(prom.find("mpx_latency{tenant=\"default\",session=\"1\","
                      "quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("mpx_latency_count{tenant=\"default\",session=\"1\"} 1"),
            std::string::npos);
  // Label values escape backslash and quote.
  EXPECT_NE(prom.find("tenant=\"a\\\"b\\\\c\",session=\"4\"} 9"),
            std::string::npos);
  // Every line is either a comment or a sample ending in a value.
  EXPECT_EQ(prom.back(), '\n');
}

TEST(MetricsRegistryTest, JsonLineCarriesEveryCell) {
  MetricsRegistry registry;
  registry.CounterAdd("t", 1, "c", 3);
  registry.GaugeSet("t", 0, "g", 1.25);
  registry.HistogramRecord("t", 2, "h", 4.0);
  std::string line;
  registry.AppendJsonLine(&line, /*tick=*/5, /*t_ns=*/123);
  EXPECT_NE(line.find("\"schema\":\"metricprox-metrics\""), std::string::npos);
  EXPECT_NE(line.find("\"tick\":5"), std::string::npos);
  EXPECT_NE(line.find("\"t_ns\":123"), std::string::npos);
  EXPECT_NE(line.find("\"metric\":\"c\",\"kind\":\"counter\",\"value\":3"),
            std::string::npos);
  EXPECT_NE(line.find("\"metric\":\"g\",\"kind\":\"gauge\",\"value\":1.25"),
            std::string::npos);
  EXPECT_NE(line.find("\"kind\":\"histogram\",\"count\":1"),
            std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

// --------------------------------------------------------------- flight --

TEST(FlightRecorderTest, TeesDownstreamAndKeepsBoundedRing) {
  RingBufferTraceSink downstream(1024);
  FlightRecorder flight(&downstream, /*capacity=*/4);
  Telemetry telemetry;
  telemetry.sink = &flight;

  for (int k = 0; k < 10; ++k) {
    ScopedSpan span(&telemetry, "resolve");
  }
  // Downstream saw everything; the ring kept only the most recent 4.
  EXPECT_EQ(downstream.emitted(), 20u);
  EXPECT_EQ(flight.Snapshot().size(), 4u);
  EXPECT_EQ(flight.spans_seen(), 10u);  // kSpanBegin only
}

TEST(FlightRecorderTest, DumpWritesHeaderEventsFooter) {
  const std::string dir = ScratchDir("flight_dump");
  std::filesystem::create_directories(dir);
  FlightRecorder flight(nullptr, 16);
  Telemetry telemetry;
  telemetry.sink = &flight;
  { ScopedSpan span(&telemetry, "resolve", 2); }

  const std::string path = dir + "/flight.jsonl";
  ASSERT_TRUE(flight.Dump(path, "unit test: stall?").ok());
  EXPECT_EQ(flight.dumps(), 1u);

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);  // header + begin + end + footer
  EXPECT_NE(lines[0].find("\"schema\":\"metricprox-flight\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("unit test: stall?"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"span_begin\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"span_end\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"flight_footer\":true"), std::string::npos);
  EXPECT_NE(lines[3].find("\"events_written\":2"), std::string::npos);
}

// ------------------------------------------------------------------ hub --

TEST(ObservabilityHubTest, SessionBundlesShareClockAndStayStable) {
  ObservabilityHub hub;
  Telemetry* s1 = hub.SessionTelemetry(1, "acme");
  Telemetry* s2 = hub.SessionTelemetry(2, "acme");
  EXPECT_NE(s1, s2);
  EXPECT_EQ(hub.SessionTelemetry(1, "acme"), s1);  // stable address
  EXPECT_EQ(s1->session_id, 1u);
  EXPECT_EQ(s1->tenant, "acme");
  EXPECT_EQ(s1->shared_clock, &hub.trace_clock());
  EXPECT_EQ(s2->shared_clock, &hub.trace_clock());
  EXPECT_EQ(hub.pool_telemetry()->shared_clock, &hub.trace_clock());

  // Span ids drawn from different bundles never collide (one pool-wide
  // id space), and everything lands in the one flight ring.
  const uint64_t a = s1->NextSpanId();
  const uint64_t b = s2->NextSpanId();
  const uint64_t c = hub.pool_telemetry()->NextSpanId();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  { ScopedSpan span(s1, "resolve"); }
  { ScopedSpan span(s2, "resolve"); }
  EXPECT_EQ(hub.flight().spans_seen(), 2u);
}

TEST(ObservabilityHubTest, SampleNowWritesSeriesAndExposition) {
  const std::string dir = ScratchDir("sample");
  {
    ObservabilityHubOptions options;
    options.dir = dir;
    options.tenant = "acme";
    ObservabilityHub hub(options);
    double depth = 4.0;
    hub.AddGaugeProbe(&depth, "acme", 0, "queue_depth",
                      [&depth] { return depth; });
    hub.metrics().CounterAdd("acme", 1, "oracle_calls", 11);
    hub.SampleNow();
    hub.RemoveGaugeProbes(&depth);

    ResolverStats stats;
    hub.AccumulateStats(&stats);
    EXPECT_GE(stats.metrics_samples, 1u);
  }  // destructor takes one final sample — both artifacts must survive it

  const std::vector<std::string> series = ReadLines(dir + "/metrics.jsonl");
  ASSERT_GE(series.size(), 1u);
  EXPECT_NE(series[0].find("\"metric\":\"queue_depth\""), std::string::npos);
  EXPECT_NE(series[0].find("\"metric\":\"oracle_calls\",\"kind\":\"counter\","
                           "\"value\":11"),
            std::string::npos);
  // Built-in hub gauges give the exposition content even in an idle run.
  std::ifstream expo(dir + "/metrics.prom");
  ASSERT_TRUE(expo.good());
  std::string prom((std::istreambuf_iterator<char>(expo)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(prom.find("mpx_spans_emitted"), std::string::npos);
  EXPECT_NE(prom.find("mpx_oracle_calls{tenant=\"acme\",session=\"1\"} 11"),
            std::string::npos);
}

TEST(ObservabilityHubTest, DumpRequestSentinelIsAnswered) {
  const std::string dir = ScratchDir("sentinel");
  ObservabilityHubOptions options;
  options.dir = dir;
  options.poll_interval_seconds = 0.005;
  ObservabilityHub hub(options);
  { ScopedSpan span(hub.pool_telemetry(), "resolve"); }

  // What `mpx obs dump` does: touch the sentinel, the background thread
  // answers with a flight-request-*.jsonl snapshot and removes the file.
  std::ofstream(dir + "/DUMP_REQUEST").close();
  ASSERT_TRUE(WaitFor([&] { return hub.flight().dumps() >= 1; }));
  ASSERT_TRUE(WaitFor(
      [&] { return !std::filesystem::exists(dir + "/DUMP_REQUEST"); }));
  bool found = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    found |= entry.path().filename().string().rfind("flight-request-", 0) == 0;
  }
  EXPECT_TRUE(found);
}

TEST(ObservabilityHubTest, WatchdogFlagsOneStallEpisodeAndRearms) {
  const std::string dir = ScratchDir("watchdog");
  ObservabilityHubOptions options;
  options.dir = dir;
  options.poll_interval_seconds = 0.005;
  options.stall_factor = 10.0;
  ObservabilityHub hub(options);

  // Synthetic coalescer probe: oldest waiter "stuck" far past the linger
  // allowance, then recovered.
  std::atomic<double> oldest{5.0};
  hub.SetStallProbe(/*linger_seconds=*/0.01,
                    [&oldest] { return oldest.load(); });
  ASSERT_TRUE(WaitFor([&] { return hub.watchdog_stalls() >= 1; }));
  // One episode = one counter tick + one dump, however long it persists.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(hub.watchdog_stalls(), 1u);
  EXPECT_EQ(hub.flight().dumps(), 1u);

  // Recovery below half the threshold re-arms; a second stall is a second
  // episode.
  oldest.store(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  oldest.store(5.0);
  ASSERT_TRUE(WaitFor([&] { return hub.watchdog_stalls() >= 2; }));
  hub.ClearStallProbe();

  bool found = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    found |= entry.path().filename().string().rfind("flight-stall-", 0) == 0;
  }
  EXPECT_TRUE(found);
}

TEST(ObservabilityHubTest, ExitDumpAndStatsFoldIn) {
  const std::string dir = ScratchDir("exit");
  ResolverStats stats;
  {
    ObservabilityHubOptions options;
    options.dir = dir;
    options.dump_on_exit = true;
    ObservabilityHub hub(options);
    { ScopedSpan span(hub.pool_telemetry(), "resolve"); }
    hub.SampleNow();
    hub.AccumulateStats(&stats);
    EXPECT_EQ(stats.spans_emitted, 1u);
    EXPECT_GE(stats.metrics_samples, 1u);
  }
  EXPECT_TRUE(std::filesystem::exists(dir + "/flight-exit-1.jsonl"));
}

}  // namespace
}  // namespace metricprox
