#include "index/mtree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "algo/reference.h"
#include "bounds/resolver.h"
#include "data/synthetic.h"
#include "oracle/string_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

ResolveFn RawResolve(DistanceOracle* oracle) {
  return [oracle](ObjectId a, ObjectId b) { return oracle->Distance(a, b); };
}

class MTreeCapacityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MTreeCapacityTest, InvariantsHoldAfterBulkBuild) {
  const ObjectId n = 60;
  ResolverStack stack = MakeRandomStack(n, 41);
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  MTreeOptions options;
  options.node_capacity = GetParam();
  MTree tree(n, options, resolve);
  EXPECT_GT(tree.num_nodes(), 1u);
  EXPECT_GE(tree.height(), 2u);
  tree.ValidateInvariants(n, resolve);
}

INSTANTIATE_TEST_SUITE_P(Capacities, MTreeCapacityTest,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(MTreeTest, KnnMatchesReferenceForEveryQuery) {
  const ObjectId n = 44;
  ResolverStack stack = MakeRandomStack(n, 42);
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  MTree tree(n, MTreeOptions{}, resolve);
  for (const uint32_t k : {1u, 4u, 9u}) {
    const KnnGraph expected = ReferenceKnnGraph(stack.oracle.get(), k);
    for (ObjectId q = 0; q < n; ++q) {
      ASSERT_EQ(tree.Knn(q, k, resolve), expected[q])
          << "k=" << k << " query " << q;
    }
  }
}

TEST(MTreeTest, RangeMatchesBruteForce) {
  const ObjectId n = 36;
  ResolverStack stack = MakeRandomStack(n, 43);
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  MTree tree(n, MTreeOptions{}, resolve);
  for (const double radius : {0.0, 0.3, 0.6, 1.0}) {
    for (ObjectId q = 0; q < n; q += 6) {
      std::vector<KnnNeighbor> brute;
      for (ObjectId v = 0; v < n; ++v) {
        if (v == q) continue;
        const double d = stack.oracle->Distance(q, v);
        if (d <= radius) brute.push_back(KnnNeighbor{v, d});
      }
      std::sort(brute.begin(), brute.end(),
                [](const KnnNeighbor& a, const KnnNeighbor& b) {
                  if (a.distance != b.distance) return a.distance < b.distance;
                  return a.id < b.id;
                });
      ASSERT_EQ(tree.Range(q, radius, resolve), brute)
          << "q=" << q << " radius=" << radius;
    }
  }
}

TEST(MTreeTest, TieHeavyIntegerMetricStillExact) {
  std::vector<std::string> strings =
      DnaFamilyStrings(32, 20, /*num_families=*/3, /*mutations=*/2, 44);
  LevenshteinOracle oracle(strings);
  const ResolveFn resolve = RawResolve(&oracle);
  MTreeOptions options;
  options.node_capacity = 4;
  MTree tree(32, options, resolve);
  tree.ValidateInvariants(32, resolve);
  const KnnGraph expected = ReferenceKnnGraph(&oracle, 5);
  for (ObjectId q = 0; q < 32; ++q) {
    ASSERT_EQ(tree.Knn(q, 5, resolve), expected[q]) << "query " << q;
  }
}

TEST(MTreeTest, ParentDistancePruningSavesCallsOnRangeQueries) {
  // Route calls through a resolver so the counter only grows on genuinely
  // new pairs, then compare a tight-range query against the n-1 scan.
  const ObjectId n = 120;
  ResolverStack stack = MakeRandomStack(n, 45, /*roughness=*/0.9);
  MTree tree(n, MTreeOptions{}, RawResolve(stack.oracle.get()));
  uint64_t calls = 0;
  const ResolveFn counting = [&](ObjectId a, ObjectId b) {
    ++calls;
    return stack.oracle->Distance(a, b);
  };
  tree.Range(3, 0.2, counting);
  EXPECT_LT(calls, static_cast<uint64_t>(n - 1));
}

TEST(MTreeTest, SharedResolverMakesRepeatQueriesFree) {
  const ObjectId n = 40;
  ResolverStack stack = MakeRandomStack(n, 46);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.resolver->Distance(a, b);
  };
  MTree tree(n, MTreeOptions{}, resolve);
  tree.Knn(7, 3, resolve);
  const uint64_t after_first = stack.resolver->stats().oracle_calls;
  tree.Knn(7, 3, resolve);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, after_first);
}

TEST(MTreeTest, TinyCapacityDeepTree) {
  const ObjectId n = 50;
  ResolverStack stack = MakeRandomStack(n, 47);
  const ResolveFn resolve = RawResolve(stack.oracle.get());
  MTreeOptions options;
  options.node_capacity = 2;
  MTree tree(n, options, resolve);
  EXPECT_GE(tree.height(), 4u);
  tree.ValidateInvariants(n, resolve);
}

}  // namespace
}  // namespace metricprox
