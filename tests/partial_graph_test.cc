#include "graph/partial_graph.h"

#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

TEST(PartialGraphTest, EmptyGraphHasNoEdges) {
  PartialDistanceGraph g(5);
  EXPECT_EQ(g.num_objects(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.Has(0, 1));
  EXPECT_FALSE(g.Get(0, 1).has_value());
  EXPECT_TRUE(g.Neighbors(0).empty());
}

TEST(PartialGraphTest, InsertIsSymmetric) {
  PartialDistanceGraph g(4);
  g.Insert(2, 0, 0.75);
  EXPECT_TRUE(g.Has(0, 2));
  EXPECT_TRUE(g.Has(2, 0));
  EXPECT_DOUBLE_EQ(*g.Get(0, 2), 0.75);
  EXPECT_DOUBLE_EQ(*g.Get(2, 0), 0.75);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_EQ(g.Degree(1), 0u);
}

TEST(PartialGraphTest, AdjacencySortedById) {
  PartialDistanceGraph g(6);
  g.Insert(3, 5, 0.1);
  g.Insert(3, 1, 0.2);
  g.Insert(3, 4, 0.3);
  g.Insert(3, 0, 0.4);
  const auto& nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1].id, nbrs[i].id);
  }
}

TEST(PartialGraphTest, EdgesListPreservesInsertionOrder) {
  PartialDistanceGraph g(4);
  g.Insert(0, 1, 0.5);
  g.Insert(2, 3, 0.6);
  ASSERT_EQ(g.edges().size(), 2u);
  EXPECT_EQ(g.edges()[0].u, 0u);
  EXPECT_EQ(g.edges()[1].weight, 0.6);
}

TEST(PartialGraphTest, DuplicateInsertDies) {
  PartialDistanceGraph g(3);
  g.Insert(0, 1, 0.5);
  EXPECT_DEATH(g.Insert(1, 0, 0.7), "duplicate");
}

TEST(PartialGraphTest, NegativeDistanceDies) {
  PartialDistanceGraph g(3);
  EXPECT_DEATH(g.Insert(0, 1, -0.1), "negative");
}

TEST(PartialGraphTest, SelfEdgeDies) {
  PartialDistanceGraph g(3);
  EXPECT_DEATH(g.Insert(1, 1, 0.5), "self-edge");
}

TEST(PartialGraphTest, InsertEdgesMatchesSequentialInserts) {
  std::mt19937_64 rng(11);
  const ObjectId n = 25;
  std::vector<WeightedEdge> batch;
  std::set<std::pair<ObjectId, ObjectId>> used;
  while (batch.size() < 80) {
    ObjectId a = static_cast<ObjectId>(rng() % n);
    ObjectId b = static_cast<ObjectId>(rng() % n);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!used.insert({a, b}).second) continue;
    batch.push_back(
        WeightedEdge{a, b, 0.01 * static_cast<double>(rng() % 100 + 1)});
  }

  PartialDistanceGraph bulk(n);
  bulk.InsertEdges(batch);
  PartialDistanceGraph sequential(n);
  for (const WeightedEdge& e : batch) sequential.Insert(e.u, e.v, e.weight);

  ASSERT_EQ(bulk.num_edges(), sequential.num_edges());
  for (size_t k = 0; k < batch.size(); ++k) {
    EXPECT_EQ(bulk.edges()[k], sequential.edges()[k]);
  }
  for (ObjectId i = 0; i < n; ++i) {
    const auto& a = bulk.Neighbors(i);
    const auto& b = sequential.Neighbors(i);
    ASSERT_EQ(a.size(), b.size()) << "node " << i;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].id, b[k].id);
      EXPECT_DOUBLE_EQ(a[k].distance, b[k].distance);
    }
    for (ObjectId j = 0; j < n; ++j) {
      if (i == j) continue;
      ASSERT_EQ(bulk.Get(i, j), sequential.Get(i, j));
    }
  }
}

TEST(PartialGraphTest, InsertEdgesExactDuplicateWithinBatchIsNoOp) {
  PartialDistanceGraph g(4);
  const std::vector<WeightedEdge> batch = {WeightedEdge{0, 1, 0.5},
                                           WeightedEdge{1, 0, 0.5}};
  g.InsertEdges(batch);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Get(0, 1), 0.5);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(PartialGraphTest, InsertEdgesExactDuplicateOfExistingIsNoOp) {
  PartialDistanceGraph g(4);
  g.Insert(2, 3, 0.25);
  const std::vector<WeightedEdge> batch = {WeightedEdge{3, 2, 0.25},
                                           WeightedEdge{0, 2, 0.75}};
  g.InsertEdges(batch);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Get(2, 3), 0.25);
  EXPECT_EQ(g.Get(0, 2), 0.75);
  // The adjacency list stays sorted and duplicate-free after the skip.
  ASSERT_EQ(g.Degree(2), 2u);
  EXPECT_EQ(g.Neighbors(2)[0].id, 0u);
  EXPECT_EQ(g.Neighbors(2)[1].id, 3u);
}

TEST(PartialGraphTest, InsertEdgesRepeatedBulkLoadIsIdempotent) {
  // The store warm-start path loads the same edge set at every run; the
  // second load must leave the graph bit-for-bit unchanged.
  PartialDistanceGraph g(5);
  const std::vector<WeightedEdge> batch = {WeightedEdge{0, 1, 1.0},
                                           WeightedEdge{1, 2, 2.0},
                                           WeightedEdge{3, 4, 0.5}};
  g.InsertEdges(batch);
  g.InsertEdges(batch);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edges().size(), 3u);
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(PartialGraphTest, InsertEdgesConflictingDuplicateDies) {
  PartialDistanceGraph g(4);
  g.Insert(2, 3, 0.25);
  const std::vector<WeightedEdge> batch = {WeightedEdge{3, 2, 0.75}};
  EXPECT_DEATH(g.InsertEdges(batch), "conflicting duplicate");
}

TEST(PartialGraphTest, InsertEdgesConflictingWithinBatchDies) {
  PartialDistanceGraph g(4);
  const std::vector<WeightedEdge> batch = {WeightedEdge{0, 1, 0.5},
                                           WeightedEdge{1, 0, 0.6}};
  EXPECT_DEATH(g.InsertEdges(batch), "conflicting duplicate");
}

// The CSR-style SoA mirror (AdjacencyView) must agree with the AoS
// adjacency (Neighbors) after every mutation path: it is the operand the
// SIMD tri-kernel reads, so a divergence would silently change bounds.
void ExpectViewConsistent(const PartialDistanceGraph& g) {
  for (ObjectId i = 0; i < g.num_objects(); ++i) {
    const PartialDistanceGraph::AdjacencyColumns view = g.AdjacencyView(i);
    const auto& nbrs = g.Neighbors(i);
    ASSERT_EQ(view.ids.size(), nbrs.size()) << "node " << i;
    ASSERT_EQ(view.distances.size(), nbrs.size()) << "node " << i;
    for (size_t k = 0; k < nbrs.size(); ++k) {
      EXPECT_EQ(view.ids[k], nbrs[k].id) << "node " << i << " slot " << k;
      // Bitwise: the columns are copies of the same doubles, not recomputed.
      EXPECT_EQ(view.distances[k], nbrs[k].distance)
          << "node " << i << " slot " << k;
    }
    // Strictly ascending ids — the merge-intersection kernel requires it.
    for (size_t k = 1; k < view.ids.size(); ++k) {
      EXPECT_LT(view.ids[k - 1], view.ids[k]) << "node " << i;
    }
  }
}

TEST(PartialGraphTest, AdjacencyViewEmptyForIsolatedNodes) {
  PartialDistanceGraph g(3);
  for (ObjectId i = 0; i < 3; ++i) {
    const auto view = g.AdjacencyView(i);
    EXPECT_TRUE(view.ids.empty());
    EXPECT_TRUE(view.distances.empty());
  }
  g.Insert(0, 2, 0.5);
  EXPECT_TRUE(g.AdjacencyView(1).ids.empty());
  ASSERT_EQ(g.AdjacencyView(0).ids.size(), 1u);
  EXPECT_EQ(g.AdjacencyView(0).ids[0], 2u);
  EXPECT_EQ(g.AdjacencyView(0).distances[0], 0.5);
  ASSERT_EQ(g.AdjacencyView(2).ids.size(), 1u);
  EXPECT_EQ(g.AdjacencyView(2).ids[0], 0u);
}

TEST(PartialGraphTest, AdjacencyViewConsistentAfterInterleavedMutations) {
  // Interleave single inserts with bulk loads the way resolver + warm-start
  // do in a real run, checking the mirror after every step.
  std::mt19937_64 rng(23);
  const ObjectId n = 20;
  PartialDistanceGraph g(n);
  std::set<std::pair<ObjectId, ObjectId>> used;
  std::vector<WeightedEdge> pending;
  for (int step = 0; step < 120; ++step) {
    ObjectId a = static_cast<ObjectId>(rng() % n);
    ObjectId b = static_cast<ObjectId>(rng() % n);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!used.insert({a, b}).second) continue;
    const double d = 0.01 * static_cast<double>(rng() % 100 + 1);
    if (rng() % 2 == 0) {
      g.Insert(a, b, d);
    } else {
      pending.push_back(WeightedEdge{a, b, d});
      if (pending.size() == 5) {
        g.InsertEdges(pending);
        pending.clear();
      }
    }
    if (step % 10 == 0) ExpectViewConsistent(g);
  }
  if (!pending.empty()) g.InsertEdges(pending);
  ExpectViewConsistent(g);
}

TEST(PartialGraphTest, AdjacencyViewConsistentThroughDuplicateSkip) {
  // The exact-duplicate skip path in InsertEdges must leave the mirror
  // untouched, including when the duplicate shares a batch with new edges.
  PartialDistanceGraph g(5);
  g.Insert(1, 3, 0.25);
  const std::vector<WeightedEdge> batch = {
      WeightedEdge{3, 1, 0.25}, WeightedEdge{1, 0, 0.5},
      WeightedEdge{0, 1, 0.5}};
  g.InsertEdges(batch);
  EXPECT_EQ(g.num_edges(), 2u);
  ExpectViewConsistent(g);
  ASSERT_EQ(g.AdjacencyView(1).ids.size(), 2u);
  EXPECT_EQ(g.AdjacencyView(1).ids[0], 0u);
  EXPECT_EQ(g.AdjacencyView(1).ids[1], 3u);
}

TEST(PartialGraphTest, AdjacencyViewConsistentAfterWarmStartReload) {
  // Store warm start bulk-loads the same edges every run; the second load
  // must leave the mirror bit-for-bit unchanged.
  const std::vector<WeightedEdge> batch = {WeightedEdge{0, 1, 1.0},
                                           WeightedEdge{1, 2, 2.0},
                                           WeightedEdge{3, 4, 0.5}};
  PartialDistanceGraph g(5);
  g.InsertEdges(batch);
  std::vector<std::vector<ObjectId>> ids_before(5);
  std::vector<std::vector<double>> dist_before(5);
  for (ObjectId i = 0; i < 5; ++i) {
    const auto view = g.AdjacencyView(i);
    ids_before[i].assign(view.ids.begin(), view.ids.end());
    dist_before[i].assign(view.distances.begin(), view.distances.end());
  }
  g.InsertEdges(batch);
  ExpectViewConsistent(g);
  for (ObjectId i = 0; i < 5; ++i) {
    const auto view = g.AdjacencyView(i);
    ASSERT_EQ(view.ids.size(), ids_before[i].size());
    for (size_t k = 0; k < view.ids.size(); ++k) {
      EXPECT_EQ(view.ids[k], ids_before[i][k]);
      EXPECT_EQ(view.distances[k], dist_before[i][k]);
    }
  }
}

TEST(PartialGraphTest, CommonNeighborMergeFindsExactlyTheTriangles) {
  PartialDistanceGraph g(7);
  // Common neighbors of (0, 1): 2 and 5. Neighbor 3 only touches 0,
  // neighbor 4 only touches 1.
  g.Insert(0, 2, 0.1);
  g.Insert(1, 2, 0.2);
  g.Insert(0, 3, 0.3);
  g.Insert(1, 4, 0.4);
  g.Insert(0, 5, 0.5);
  g.Insert(1, 5, 0.6);

  std::set<ObjectId> found;
  g.ForEachCommonNeighbor(0, 1, [&](ObjectId c, double d0, double d1) {
    found.insert(c);
    if (c == 2) {
      EXPECT_DOUBLE_EQ(d0, 0.1);
      EXPECT_DOUBLE_EQ(d1, 0.2);
    } else {
      EXPECT_DOUBLE_EQ(d0, 0.5);
      EXPECT_DOUBLE_EQ(d1, 0.6);
    }
  });
  EXPECT_EQ(found, (std::set<ObjectId>{2, 5}));
}

TEST(PartialGraphTest, CommonNeighborsMatchBruteForceOnRandomGraphs) {
  std::mt19937_64 rng(7);
  const ObjectId n = 30;
  PartialDistanceGraph g(n);
  std::set<std::pair<ObjectId, ObjectId>> inserted;
  for (int e = 0; e < 150; ++e) {
    ObjectId a = static_cast<ObjectId>(rng() % n);
    ObjectId b = static_cast<ObjectId>(rng() % n);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!inserted.insert({a, b}).second) continue;
    g.Insert(a, b, 0.01 * static_cast<double>(rng() % 100 + 1));
  }
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      std::set<ObjectId> merged;
      g.ForEachCommonNeighbor(i, j,
                              [&](ObjectId c, double, double) { merged.insert(c); });
      std::set<ObjectId> brute;
      for (ObjectId c = 0; c < n; ++c) {
        if (c != i && c != j && g.Has(i, c) && g.Has(j, c)) brute.insert(c);
      }
      ASSERT_EQ(merged, brute) << "pair (" << i << ", " << j << ")";
    }
  }
}

}  // namespace
}  // namespace metricprox
