// Metamorphic tests: apply an output-predictable transformation to the
// input metric — relabel the objects, scale every distance by an exact
// power of two, duplicate a point — and assert the workloads respond
// exactly as the transformation dictates, both without a scheme and with
// bound schemes plugged in.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "algo/knn_graph.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "harness/experiment.h"
#include "oracle/matrix_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::FamilyMetric;
using testing_util::MetricFamily;

constexpr ObjectId kN = 24;
constexpr uint64_t kSeed = 13;

std::vector<ObjectId> RandomPermutation(ObjectId n, uint64_t seed) {
  std::vector<ObjectId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

/// m'[perm[i]][perm[j]] = m[i][j]: the same metric space with new ids.
std::vector<double> PermuteMatrix(const std::vector<double>& m, ObjectId n,
                                  const std::vector<ObjectId>& perm) {
  std::vector<double> out(m.size());
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = 0; j < n; ++j) {
      out[perm[i] * n + perm[j]] = m[i * n + j];
    }
  }
  return out;
}

/// The same space with object `src` present twice (the new copy is id n).
/// The result is a pseudo-metric: d(src, n) = 0 between distinct ids.
std::vector<double> DuplicateMatrix(const std::vector<double>& m, ObjectId n,
                                    ObjectId src) {
  const ObjectId nn = n + 1;
  std::vector<double> out(static_cast<size_t>(nn) * nn, 0.0);
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = 0; j < n; ++j) out[i * nn + j] = m[i * n + j];
  }
  for (ObjectId i = 0; i < n; ++i) {
    out[i * nn + n] = m[i * n + src];
    out[n * nn + i] = m[src * n + i];
  }
  return out;
}

WorkloadResult RunOn(const std::vector<double>& matrix, ObjectId n,
                   SchemeKind scheme, const Workload& workload,
                   double max_distance = 1.0) {
  MatrixOracle oracle(matrix, n);
  WorkloadConfig config;
  config.scheme = scheme;
  config.bootstrap = scheme != SchemeKind::kNone;
  config.max_distance = max_distance;
  return RunWorkload(&oracle, config, workload);
}

const Workload kMst = [](BoundedResolver* r) {
  return PrimMst(r).total_weight;
};
const Workload kPam = [](BoundedResolver* r) {
  return PamCluster(r, {.num_medoids = 3}).total_deviation;
};

// ---------------------------------------------------------------------------
// Id permutation: outputs are preserved modulo relabeling; oracle_calls are
// permutation-invariant only without a scheme (landmark choices and
// tie-breaks inside the schemes legitimately depend on ids).
// ---------------------------------------------------------------------------

TEST(MetamorphicPermutationTest, MstWeightInvariant) {
  const std::vector<double> base = FamilyMetric(MetricFamily::kUniform, kN, kSeed);
  const std::vector<ObjectId> perm = RandomPermutation(kN, 99);
  const std::vector<double> permuted = PermuteMatrix(base, kN, perm);

  const WorkloadResult a = RunOn(base, kN, SchemeKind::kNone, kMst);
  const WorkloadResult b = RunOn(permuted, kN, SchemeKind::kNone, kMst);
  EXPECT_NEAR(a.value, b.value, 1e-9);
  EXPECT_EQ(a.stats.oracle_calls, b.stats.oracle_calls);

  for (SchemeKind scheme : {SchemeKind::kTri, SchemeKind::kSplub}) {
    const WorkloadResult sa = RunOn(base, kN, scheme, kMst);
    const WorkloadResult sb = RunOn(permuted, kN, scheme, kMst);
    EXPECT_NEAR(sa.value, a.value, 1e-9);
    EXPECT_NEAR(sb.value, b.value, 1e-9);
  }
}

TEST(MetamorphicPermutationTest, KnnGraphMapsThroughThePermutation) {
  const std::vector<double> base = FamilyMetric(MetricFamily::kUniform, kN, kSeed);
  const std::vector<ObjectId> perm = RandomPermutation(kN, 7);
  const std::vector<double> permuted = PermuteMatrix(base, kN, perm);

  MatrixOracle oracle_a(base, kN);
  MatrixOracle oracle_b(permuted, kN);
  KnnGraph ga, gb;
  {
    PartialDistanceGraph graph(kN);
    BoundedResolver r(&oracle_a, &graph);
    ga = BuildKnnGraph(&r, {.k = 3});
  }
  {
    PartialDistanceGraph graph(kN);
    BoundedResolver r(&oracle_b, &graph);
    gb = BuildKnnGraph(&r, {.k = 3});
  }
  for (ObjectId u = 0; u < kN; ++u) {
    ASSERT_EQ(ga[u].size(), gb[perm[u]].size());
    // Map u's base neighbors through the permutation; the permuted run must
    // list exactly those (distances are exact oracle reads, so equality is
    // exact; neighbor order may differ because ties break by new ids).
    std::vector<KnnNeighbor> mapped;
    for (const KnnNeighbor& nb : ga[u]) mapped.push_back({perm[nb.id], nb.distance});
    std::vector<KnnNeighbor> theirs = gb[perm[u]];
    auto by_id = [](const KnnNeighbor& x, const KnnNeighbor& y) {
      return x.id < y.id;
    };
    std::sort(mapped.begin(), mapped.end(), by_id);
    std::sort(theirs.begin(), theirs.end(), by_id);
    EXPECT_EQ(mapped, theirs) << "node " << u;
  }
}

TEST(MetamorphicPermutationTest, PamDeviationInvariant) {
  const std::vector<double> base = FamilyMetric(MetricFamily::kUniform, kN, kSeed);
  const std::vector<ObjectId> perm = RandomPermutation(kN, 21);
  const std::vector<double> permuted = PermuteMatrix(base, kN, perm);
  const WorkloadResult a = RunOn(base, kN, SchemeKind::kNone, kPam);
  const WorkloadResult b = RunOn(permuted, kN, SchemeKind::kNone, kPam);
  EXPECT_NEAR(a.value, b.value, 1e-9);
  EXPECT_EQ(a.stats.oracle_calls, b.stats.oracle_calls);
}

// ---------------------------------------------------------------------------
// Global scaling by 4.0: multiplying every distance by an exact power of two
// scales every floating-point sum and comparison operand exactly, so every
// decision — and therefore every counter — is identical, and the outputs
// are bitwise 4x the originals.
// ---------------------------------------------------------------------------

TEST(MetamorphicScalingTest, ScaleBy4IsExactAcrossSchemes) {
  const std::vector<double> base = FamilyMetric(MetricFamily::kUniform, kN, kSeed);
  std::vector<double> scaled = base;
  for (double& v : scaled) v *= 4.0;

  for (SchemeKind scheme :
       {SchemeKind::kNone, SchemeKind::kTri, SchemeKind::kSplub}) {
    SCOPED_TRACE(SchemeKindName(scheme));
    for (const Workload& w : {kMst, kPam}) {
      const WorkloadResult a = RunOn(base, kN, scheme, w, /*max_distance=*/1.0);
      const WorkloadResult b =
          RunOn(scaled, kN, scheme, w, /*max_distance=*/4.0);
      EXPECT_EQ(b.value, 4.0 * a.value);  // exact, not approximate
      EXPECT_EQ(a.stats.oracle_calls, b.stats.oracle_calls);
      EXPECT_EQ(a.stats.comparisons, b.stats.comparisons);
      EXPECT_EQ(a.stats.decided_by_bounds, b.stats.decided_by_bounds);
    }
  }
}

// ---------------------------------------------------------------------------
// Duplicate-point insertion: adding an exact copy of an object (a
// pseudo-metric: one zero distance between distinct ids) changes outputs in
// fully predictable ways, and the schemes stay exact on it.
// ---------------------------------------------------------------------------

TEST(MetamorphicDuplicateTest, MstWeightGainsExactlyAZeroEdge) {
  const std::vector<double> base = FamilyMetric(MetricFamily::kUniform, kN, kSeed);
  const std::vector<double> dup = DuplicateMatrix(base, kN, /*src=*/0);
  const WorkloadResult a = RunOn(base, kN, SchemeKind::kNone, kMst);
  const WorkloadResult b = RunOn(dup, kN + 1, SchemeKind::kNone, kMst);
  // The duplicate connects through its 0-weight edge; every other MST edge
  // is unchanged.
  EXPECT_NEAR(a.value, b.value, 1e-12);
}

TEST(MetamorphicDuplicateTest, KnnDistancesNeverGrow) {
  const std::vector<double> base = FamilyMetric(MetricFamily::kUniform, kN, kSeed);
  const std::vector<double> dup = DuplicateMatrix(base, kN, /*src=*/0);
  MatrixOracle oracle_a(base, kN);
  MatrixOracle oracle_b(dup, kN + 1);
  KnnGraph ga, gb;
  {
    PartialDistanceGraph graph(kN);
    BoundedResolver r(&oracle_a, &graph);
    ga = BuildKnnGraph(&r, {.k = 3});
  }
  {
    PartialDistanceGraph graph(kN + 1);
    BoundedResolver r(&oracle_b, &graph);
    gb = BuildKnnGraph(&r, {.k = 3});
  }
  // A new candidate can only tighten a neighbor list: the j-th nearest
  // distance of every original node is <= its original value.
  for (ObjectId u = 0; u < kN; ++u) {
    ASSERT_EQ(ga[u].size(), gb[u].size());
    for (size_t j = 0; j < ga[u].size(); ++j) {
      EXPECT_LE(gb[u][j].distance, ga[u][j].distance) << "node " << u;
    }
  }
  // The duplicate and its source are each other's zero-distance neighbor.
  ASSERT_FALSE(gb[0].empty());
  ASSERT_FALSE(gb[kN].empty());
  EXPECT_EQ(gb[0][0].id, kN);
  EXPECT_EQ(gb[0][0].distance, 0.0);
  EXPECT_EQ(gb[kN][0].id, 0u);
  EXPECT_EQ(gb[kN][0].distance, 0.0);
}

TEST(MetamorphicDuplicateTest, SchemesStayExactOnThePseudoMetric) {
  // The zero edge makes the space a pseudo-metric; triangle-inequality
  // bounds remain valid there, so plugged runs must still reproduce the
  // vanilla outputs exactly.
  const std::vector<double> base = FamilyMetric(MetricFamily::kUniform, kN, kSeed);
  const std::vector<double> dup = DuplicateMatrix(base, kN, /*src=*/0);
  for (const Workload& w : {kMst, kPam}) {
    const WorkloadResult vanilla = RunOn(dup, kN + 1, SchemeKind::kNone, w);
    for (SchemeKind scheme : {SchemeKind::kTri, SchemeKind::kSplub}) {
      const WorkloadResult plugged = RunOn(dup, kN + 1, scheme, w);
      EXPECT_NEAR(plugged.value, vanilla.value, 1e-9)
          << SchemeKindName(scheme);
    }
  }
}

}  // namespace
}  // namespace metricprox
