// Unit tests for the weak-oracle layer: the WeakOracle error model
// (determinism, symmetry, honesty) and the WeakBounder that converts weak
// answers into certified intervals (memoization, violation detection).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "bounds/weak.h"
#include "core/bounder.h"
#include "core/types.h"
#include "oracle/weak_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeFamilyStack;
using testing_util::MetricFamily;
using testing_util::ResolverStack;

constexpr ObjectId kN = 16;

WeakOracle::Options MakeOptions(double alpha, double floor, uint64_t seed) {
  WeakOracle::Options options;
  options.alpha = alpha;
  options.floor = floor;
  options.seed = seed;
  return options;
}

TEST(WeakOracleTest, EstimatesAreDeterministicPerSeedAndPair) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, kN, 7);
  WeakOracle a(stack.oracle.get(), MakeOptions(1.5, 0.02, 11));
  WeakOracle b(stack.oracle.get(), MakeOptions(1.5, 0.02, 11));
  WeakOracle other_seed(stack.oracle.get(), MakeOptions(1.5, 0.02, 12));
  bool any_differs = false;
  for (ObjectId i = 0; i < kN; ++i) {
    for (ObjectId j = i + 1; j < kN; ++j) {
      const double w = a.Estimate(i, j);
      EXPECT_EQ(w, a.Estimate(i, j)) << "not stable across repeat calls";
      EXPECT_EQ(w, b.Estimate(i, j)) << "not a pure function of (seed,pair)";
      if (other_seed.Estimate(i, j) != w) any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs) << "seed does not enter the error draw";
}

TEST(WeakOracleTest, EstimatesAreSymmetric) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kClustered, kN, 3);
  WeakOracle weak(stack.oracle.get(), MakeOptions(2.0, 0.05, 5));
  for (ObjectId i = 0; i < kN; ++i) {
    for (ObjectId j = i + 1; j < kN; ++j) {
      EXPECT_EQ(weak.Estimate(i, j), weak.Estimate(j, i));
    }
  }
}

TEST(WeakOracleTest, HonestEstimatesSatisfyTheAdvertisedModel) {
  for (MetricFamily family :
       {MetricFamily::kUniform, MetricFamily::kClustered}) {
    ResolverStack stack = MakeFamilyStack(family, kN, 9);
    for (double alpha : {1.0, 1.05, 1.5, 3.0}) {
      for (double floor : {0.0, 0.05}) {
        WeakOracle weak(stack.oracle.get(), MakeOptions(alpha, floor, 17));
        for (ObjectId i = 0; i < kN; ++i) {
          for (ObjectId j = i + 1; j < kN; ++j) {
            const double d = stack.oracle->Distance(i, j);
            const double w = weak.Estimate(i, j);
            const Interval advertised =
                WeakModelInterval(WeakModel{w, alpha, floor});
            EXPECT_GE(d, advertised.lo - 1e-12)
                << "alpha=" << alpha << " floor=" << floor << " pair (" << i
                << "," << j << ")";
            EXPECT_LE(d, advertised.hi + 1e-12)
                << "alpha=" << alpha << " floor=" << floor << " pair (" << i
                << "," << j << ")";
          }
        }
      }
    }
  }
}

TEST(WeakOracleTest, AlphaOneFloorZeroIsExact) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, kN, 21);
  WeakOracle weak(stack.oracle.get(), MakeOptions(1.0, 0.0, 42));
  for (ObjectId i = 0; i < kN; ++i) {
    for (ObjectId j = i + 1; j < kN; ++j) {
      EXPECT_DOUBLE_EQ(weak.Estimate(i, j), stack.oracle->Distance(i, j));
    }
  }
}

TEST(WeakOracleTest, ChargesCallsAndSimulatedCost) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, kN, 2);
  WeakOracle::Options options = MakeOptions(1.5, 0.0, 1);
  options.cost_seconds = 0.25;
  WeakOracle weak(stack.oracle.get(), options);
  EXPECT_EQ(weak.calls(), 0u);
  weak.Estimate(0, 1);
  weak.Estimate(0, 1);
  weak.Estimate(2, 3);
  EXPECT_EQ(weak.calls(), 3u);
  EXPECT_DOUBLE_EQ(weak.simulated_seconds(), 0.75);
}

TEST(WeakModelIntervalTest, DerivationAndEdgeCases) {
  // Multiplicative only.
  const Interval m = WeakModelInterval(WeakModel{2.0, 1.25, 0.0});
  EXPECT_DOUBLE_EQ(m.lo, 2.0 / 1.25);
  EXPECT_DOUBLE_EQ(m.hi, 2.0 * 1.25);
  // Additive floor widens both sides and clamps the lower end at zero.
  const Interval f = WeakModelInterval(WeakModel{0.1, 1.0, 0.3});
  EXPECT_DOUBLE_EQ(f.lo, 0.0);
  EXPECT_DOUBLE_EQ(f.hi, 0.4);
  // Exact model collapses to a point.
  const Interval e = WeakModelInterval(WeakModel{0.7, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(e.lo, 0.7);
  EXPECT_DOUBLE_EQ(e.hi, 0.7);
}

TEST(WeakBounderTest, MemoizesOneEstimatePerPair) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, kN, 4);
  WeakOracle weak_oracle(stack.oracle.get(), MakeOptions(1.5, 0.0, 6));
  WeakBounder bounder(&weak_oracle);
  const Interval first = bounder.Bounds(1, 5);
  for (int k = 0; k < 5; ++k) {
    const Interval again = bounder.Bounds(1, 5);
    EXPECT_EQ(again.lo, first.lo);
    EXPECT_EQ(again.hi, first.hi);
  }
  // Symmetric queries share the memo entry.
  const Interval mirrored = bounder.Bounds(5, 1);
  EXPECT_EQ(mirrored.lo, first.lo);
  EXPECT_EQ(mirrored.hi, first.hi);
  EXPECT_EQ(weak_oracle.calls(), 1u);
  bounder.Bounds(2, 9);
  EXPECT_EQ(weak_oracle.calls(), 2u);
}

TEST(WeakBounderTest, ModelForMatchesBounds) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, kN, 8);
  WeakOracle weak_oracle(stack.oracle.get(), MakeOptions(1.25, 0.01, 2));
  WeakBounder bounder(&weak_oracle);
  const WeakModel model = bounder.ModelFor(3, 11);
  EXPECT_DOUBLE_EQ(model.alpha, 1.25);
  EXPECT_DOUBLE_EQ(model.floor, 0.01);
  const Interval advertised = WeakModelInterval(model);
  const Interval bounds = bounder.Bounds(3, 11);
  EXPECT_EQ(bounds.lo, advertised.lo);
  EXPECT_EQ(bounds.hi, advertised.hi);
  EXPECT_EQ(weak_oracle.calls(), 1u);
}

TEST(WeakBounderTest, HonestResolutionsNeverTripTheViolationLatch) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kClustered, kN, 5);
  WeakOracle weak_oracle(stack.oracle.get(), MakeOptions(1.25, 0.02, 3));
  WeakBounder bounder(&weak_oracle);
  for (ObjectId i = 0; i < kN; ++i) {
    for (ObjectId j = i + 1; j < kN; ++j) {
      bounder.Bounds(i, j);
      bounder.OnEdgeResolved(i, j, stack.oracle->Distance(i, j));
    }
  }
  EXPECT_FALSE(bounder.violated()) << bounder.violation_detail();
}

TEST(WeakBounderTest, ViolatingResolutionLatchesWithDetail) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, kN, 6);
  WeakOracle weak_oracle(stack.oracle.get(), MakeOptions(1.05, 0.0, 4));
  WeakBounder bounder(&weak_oracle);
  const Interval advertised = bounder.Bounds(2, 7);
  // A "resolved" distance far above the advertised interval.
  bounder.OnEdgeResolved(2, 7, advertised.hi * 3.0 + 1.0);
  ASSERT_TRUE(bounder.violated());
  EXPECT_NE(bounder.violation_detail().find("advertised weak interval"),
            std::string::npos)
      << bounder.violation_detail();
  // The latch is sticky: a later honest resolution does not clear it.
  bounder.Bounds(3, 8);
  bounder.OnEdgeResolved(3, 8, stack.oracle->Distance(3, 8));
  EXPECT_TRUE(bounder.violated());
}

TEST(WeakBounderTest, ResolutionsOfUnconsultedPairsAreIgnored) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, kN, 10);
  WeakOracle weak_oracle(stack.oracle.get(), MakeOptions(1.05, 0.0, 9));
  WeakBounder bounder(&weak_oracle);
  // No estimate was ever produced for (0, 1), so there is no advertised
  // interval to violate — even an absurd distance is accepted.
  bounder.OnEdgeResolved(0, 1, 1e9);
  EXPECT_FALSE(bounder.violated());
}

}  // namespace
}  // namespace metricprox
