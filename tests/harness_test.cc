#include <gtest/gtest.h>

#include "algo/prim.h"
#include "data/datasets.h"
#include "harness/experiment.h"
#include "harness/flags.h"
#include "harness/table.h"

namespace metricprox {
namespace {

// ---- TablePrinter ----

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter table({"name", "count"});
  table.NewRow().AddCell("alpha").AddUint(12);
  table.NewRow().AddCell("b").AddUint(34567);
  const std::string out = table.ToString("Title");
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("34567"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TablePrinterTest, NumericFormatting) {
  TablePrinter table({"d", "pct", "i"});
  table.NewRow().AddDouble(3.14159, 3).AddPercent(0.4213).AddInt(-5);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("3.142"), std::string::npos);
  EXPECT_NE(out.find("42.13"), std::string::npos);
  EXPECT_NE(out.find("-5"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesSpecialCells) {
  TablePrinter table({"name", "note"});
  table.NewRow().AddCell("plain").AddCell("a,b");
  table.NewRow().AddCell("q\"q").AddUint(7);
  const std::string csv = table.ToCsv();
  EXPECT_EQ(csv, "name,note\nplain,\"a,b\"\n\"q\"\"q\",7\n");
}

TEST(TablePrinterTest, OverflowingRowDies) {
  TablePrinter table({"only"});
  table.NewRow().AddCell("x");
  EXPECT_DEATH(table.AddCell("y"), "overflow");
}

// ---- Flags ----

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--n=128", "--scheme=tri", "--verbose",
                        "--rate=0.5"};
  auto flags = Flags::Parse(5, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 0), 128);
  EXPECT_EQ(flags->GetString("scheme", ""), "tri");
  EXPECT_TRUE(flags->GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags->GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(flags->GetInt("missing", 7), 7);
  EXPECT_TRUE(flags->FailOnUnused().ok());
}

TEST(FlagsTest, RejectsMalformedTokens) {
  const char* argv[] = {"prog", "nodashes"};
  EXPECT_FALSE(Flags::Parse(2, argv).ok());
}

TEST(FlagsTest, FailOnUnusedCatchesTypos) {
  const char* argv[] = {"prog", "--typo=1"};
  auto flags = Flags::Parse(2, argv);
  ASSERT_TRUE(flags.ok());
  const Status status = flags->FailOnUnused();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("typo"), std::string::npos);
}

// ---- RunWorkload ----

TEST(RunWorkloadTest, CountsAndChecksumsAreConsistent) {
  Dataset dataset = MakeRandomMetric(24, 3);
  WorkloadConfig config;
  config.scheme = SchemeKind::kNone;
  const Workload workload = [](BoundedResolver* resolver) {
    return PrimMst(resolver).total_weight;
  };
  const WorkloadResult result = RunWorkload(dataset.oracle.get(), config, workload);
  EXPECT_EQ(result.total_calls, 24u * 23u / 2u);  // without plug: all pairs
  EXPECT_EQ(result.construction_calls, 0u);
  EXPECT_GT(result.value, 0.0);
  EXPECT_GE(result.completion_seconds, result.wall_seconds);
}

TEST(RunWorkloadTest, SimulatedLatencyAccumulates) {
  Dataset dataset = MakeRandomMetric(12, 4);
  WorkloadConfig config;
  config.scheme = SchemeKind::kNone;
  config.oracle_cost_seconds = 0.25;
  const WorkloadResult result = RunWorkload(
      dataset.oracle.get(), config,
      [](BoundedResolver* r) { return PrimMst(r).total_weight; });
  EXPECT_DOUBLE_EQ(result.stats.simulated_oracle_seconds,
                   0.25 * static_cast<double>(result.total_calls));
  EXPECT_NEAR(result.completion_seconds - result.wall_seconds,
              result.stats.simulated_oracle_seconds, 1e-9);
}

TEST(RunWorkloadTest, SchemesAgreeOnChecksumAndTriSavesOnStructuredData) {
  Dataset dataset = MakeSfPoiLike(48, 5);
  const Workload workload = [](BoundedResolver* resolver) {
    return PrimMst(resolver).total_weight;
  };
  WorkloadConfig vanilla;
  vanilla.scheme = SchemeKind::kNone;
  const WorkloadResult base = RunWorkload(dataset.oracle.get(), vanilla, workload);

  WorkloadConfig tri;
  tri.scheme = SchemeKind::kTri;
  tri.bootstrap = true;
  const WorkloadResult plugged = RunWorkload(dataset.oracle.get(), tri, workload);

  EXPECT_NEAR(base.value, plugged.value, 1e-9);
  EXPECT_GT(plugged.construction_calls, 0u);
  EXPECT_LT(plugged.total_calls, base.total_calls);
}

TEST(SaveFractionTest, HandlesEdgeCases) {
  EXPECT_DOUBLE_EQ(SaveFraction(50, 100), 0.5);
  EXPECT_DOUBLE_EQ(SaveFraction(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(SaveFraction(150, 100), -0.5);
  EXPECT_DOUBLE_EQ(SaveFraction(10, 0), 0.0);
}

}  // namespace
}  // namespace metricprox
