// Unit tests for the observability subsystem (src/obs/): histogram edge
// cases, trace sinks and the JSONL wire format, the telemetry bundle, and
// the X-macro-driven run report — including the pin that the JSON `stats`
// object carries exactly one key per ResolverStats field.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/stats.h"
#include "core/types.h"
#include "obs/histogram.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace metricprox {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, EmptyReportsZerosNeverNaN) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 0.0) << "q=" << q;
  }
  const Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  for (const double v : {s.min, s.max, s.sum, s.mean, s.p50, s.p90, s.p99}) {
    EXPECT_FALSE(std::isnan(v));
    EXPECT_EQ(v, 0.0);
  }
}

TEST(HistogramTest, SingleSampleIsReportedExactly) {
  Histogram h;
  h.Record(3.7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 3.7);
  EXPECT_EQ(h.max(), 3.7);
  EXPECT_EQ(h.sum(), 3.7);
  EXPECT_EQ(h.mean(), 3.7);
  // The bucket midpoint is clamped into [min, max] = [3.7, 3.7].
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 3.7) << "q=" << q;
  }
}

TEST(HistogramTest, BelowFirstBucketLandsInUnderflow) {
  Histogram h;
  h.Record(1e-300);  // far below the first octave at 2^-64
  h.Record(0.0);
  h.Record(-5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), 1e-300);
  // All three share the underflow bucket; quantiles stay within the exact
  // observed range instead of inventing a 2^-64-scale value.
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_GE(h.Quantile(q), -5.0);
    EXPECT_LE(h.Quantile(q), 1e-300);
  }
}

TEST(HistogramTest, OverflowBucketCatchesHugeAndInfinite) {
  Histogram h;
  h.Record(1e300);  // above the last octave at 2^64
  h.Record(kInf);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 1e300);
  EXPECT_TRUE(std::isinf(h.max()));
  EXPECT_GE(h.Quantile(0.5), 1e300);
}

TEST(HistogramTest, NaNSamplesAreDropped) {
  Histogram h;
  h.Record(kNaN);
  EXPECT_EQ(h.count(), 0u);
  h.Record(2.0);
  h.Record(kNaN);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 2.0);
}

TEST(HistogramTest, QuantileRelativeErrorIsBoundedBySubBuckets) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  // 4 sub-buckets per octave => <= 12.5% relative error from the midpoint.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 0.125 * 500.0);
  EXPECT_NEAR(h.Quantile(0.9), 900.0, 0.125 * 900.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 0.125 * 990.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
}

Histogram MakeFilled(std::initializer_list<double> values) {
  Histogram h;
  for (const double v : values) h.Record(v);
  return h;
}

void ExpectSameDistribution(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_EQ(a.Quantile(q), b.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  const Histogram a = MakeFilled({1e-9, 3.0, 4.5, 1e6});
  const Histogram b = MakeFilled({0.25, 0.26, 700.0});
  const Histogram c = MakeFilled({2.0, 2.0, 2.0, 1e-30, kInf});

  Histogram ab_c = a;   // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  Histogram bc = b;     // a + (b + c)
  bc.Merge(c);
  Histogram a_bc = a;
  a_bc.Merge(bc);
  ExpectSameDistribution(ab_c, a_bc);

  Histogram ba = b;     // b + a == a + b
  ba.Merge(a);
  Histogram ab = a;
  ab.Merge(b);
  ExpectSameDistribution(ab, ba);
}

TEST(HistogramTest, MergeIntoEmptyEqualsSource) {
  const Histogram a = MakeFilled({0.5, 7.0, 42.0});
  Histogram empty;
  empty.Merge(a);
  ExpectSameDistribution(empty, a);
  // Merging an empty histogram is a no-op.
  Histogram copy = a;
  copy.Merge(Histogram());
  ExpectSameDistribution(copy, a);
}

// ---------------------------------------------------------------------------
// Trace sinks

TraceEvent EventWithSeq(uint64_t seq) {
  TraceEvent event;
  event.kind = TraceEventKind::kOracleCall;
  event.seq = seq;
  return event;
}

TEST(RingBufferTraceSinkTest, KeepsNewestOldestFirstAndCountsDropped) {
  RingBufferTraceSink sink(4);
  for (uint64_t s = 0; s < 10; ++s) sink.Emit(EventWithSeq(s));
  EXPECT_EQ(sink.emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].seq, 6u + k);  // oldest surviving event first
  }
}

TEST(RingBufferTraceSinkTest, PartialFillSnapshotsInOrder) {
  RingBufferTraceSink sink(8);
  for (uint64_t s = 0; s < 3; ++s) sink.Emit(EventWithSeq(s));
  EXPECT_EQ(sink.dropped(), 0u);
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[2].seq, 2u);
}

TEST(TraceEventJsonTest, UnsetFieldsAreOmitted) {
  TraceEvent event;
  event.kind = TraceEventKind::kComparison;
  event.seq = 7;
  const std::string json = TraceEventToJson(event);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"comparison\""), std::string::npos);
  // Ids default to kInvalidObject, doubles to NaN, count to 0 — all absent.
  EXPECT_EQ(json.find("\"i\":"), std::string::npos);
  EXPECT_EQ(json.find("\"j\":"), std::string::npos);
  EXPECT_EQ(json.find("\"lb\":"), std::string::npos);
  EXPECT_EQ(json.find("\"threshold\":"), std::string::npos);
  EXPECT_EQ(json.find("\"count\":"), std::string::npos);
}

TEST(TraceEventJsonTest, SetFieldsAppearAndInfinityBecomesNull) {
  TraceEvent event;
  event.kind = TraceEventKind::kBoundInterval;
  event.i = 3;
  event.j = 9;
  event.lb = 1.5;
  event.ub = kInf;
  event.threshold = 2.0;
  const std::string json = TraceEventToJson(event);
  EXPECT_NE(json.find("\"kind\":\"bound_interval\""), std::string::npos);
  EXPECT_NE(json.find("\"i\":3"), std::string::npos);
  EXPECT_NE(json.find("\"j\":9"), std::string::npos);
  EXPECT_NE(json.find("\"lb\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"ub\":null"), std::string::npos);  // strict JSON
  EXPECT_NE(json.find("\"threshold\":2"), std::string::npos);
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(JsonlTraceSinkTest, WritesHeaderEventsAndFooter) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mp_trace_basic.jsonl")
          .string();
  {
    JsonlTraceSink sink(path, "test-run", /*limit=*/0);
    ASSERT_TRUE(sink.status().ok()) << sink.status();
    for (uint64_t s = 0; s < 3; ++s) sink.Emit(EventWithSeq(s));
    EXPECT_EQ(sink.written(), 3u);
    EXPECT_EQ(sink.dropped(), 0u);
    ASSERT_TRUE(sink.Close().ok());
  }
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 5u);  // header + 3 events + footer
  EXPECT_NE(lines.front().find("\"schema\":\"metricprox-trace\""),
            std::string::npos);
  EXPECT_NE(lines.front().find("\"trace_id\":\"test-run\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines.back().find("\"trace_footer\":true"), std::string::npos);
  EXPECT_NE(lines.back().find("\"events_written\":3"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(JsonlTraceSinkTest, LimitBoundsTheFileAndCountsDrops) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mp_trace_limit.jsonl")
          .string();
  {
    JsonlTraceSink sink(path, "limited", /*limit=*/2);
    for (uint64_t s = 0; s < 5; ++s) sink.Emit(EventWithSeq(s));
    EXPECT_EQ(sink.written(), 2u);
    EXPECT_EQ(sink.dropped(), 3u);
    ASSERT_TRUE(sink.Close().ok());
  }
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);  // header + 2 events + footer
  EXPECT_NE(lines.back().find("\"events_dropped\":3"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(JsonlTraceSinkTest, UnwritablePathFailsGracefully) {
  JsonlTraceSink sink("/nonexistent-dir/trace.jsonl", "x", 0);
  EXPECT_FALSE(sink.status().ok());
  sink.Emit(EventWithSeq(0));  // no-op, must not crash
  EXPECT_EQ(sink.written(), 0u);
  EXPECT_FALSE(sink.Close().ok());
}

// ---------------------------------------------------------------------------
// Telemetry bundle

TEST(TelemetryTest, EmitStampsMonotonicSequence) {
  RingBufferTraceSink sink(16);
  Telemetry telemetry;
  telemetry.sink = &sink;
  EXPECT_TRUE(telemetry.tracing());
  for (int k = 0; k < 3; ++k) {
    TraceEvent event;
    event.kind = TraceEventKind::kRetry;
    telemetry.Emit(event);
  }
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_LE(events[0].t_ns, events[2].t_ns);
}

TEST(TelemetryTest, EmitWithoutSinkIsANoOp) {
  Telemetry telemetry;
  EXPECT_FALSE(telemetry.tracing());
  telemetry.Emit(TraceEvent{});  // must not crash
  telemetry.bound_gap.Record(0.5);  // histograms still usable sink-less
  EXPECT_EQ(telemetry.bound_gap.count(), 1u);
}

TEST(TelemetryTest, RelativeBoundGap) {
  EXPECT_DOUBLE_EQ(RelativeBoundGap(Interval{2.0, 8.0}), 0.75);
  EXPECT_DOUBLE_EQ(RelativeBoundGap(Interval{3.0, 3.0}), 0.0);
  // Negative lower bounds clamp to zero before the ratio.
  EXPECT_DOUBLE_EQ(RelativeBoundGap(Interval{-1.0, 4.0}), 1.0);
  // Uninformative intervals say "the bounds said nothing".
  EXPECT_DOUBLE_EQ(RelativeBoundGap(Interval{0.0, kInf}), 1.0);
  EXPECT_DOUBLE_EQ(RelativeBoundGap(Interval{0.0, 0.0}), 1.0);
}

// ---------------------------------------------------------------------------
// X-macro stats + RunReport

TEST(ResolverStatsTest, FieldListMatchesXMacro) {
  const std::vector<std::string_view> names = ResolverStatsFieldNames();
  EXPECT_EQ(names.size(), kResolverStatsFieldCount);
  // Spot-check a few anchors across the list.
  EXPECT_EQ(names.front(), "oracle_calls");
  EXPECT_NE(std::find(names.begin(), names.end(), "decided_by_bounds"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "retry_backoff_seconds"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "certs_uncertified"),
            names.end());
}

TEST(ResolverStatsTest, ToStringMentionsEveryField) {
  ResolverStats stats;
  const std::string text = stats.ToString();
  for (const std::string_view name : ResolverStatsFieldNames()) {
    EXPECT_NE(text.find(std::string(name) + "="), std::string::npos)
        << "missing " << name;
  }
}

RunInfo TestRunInfo() {
  RunInfo info;
  info.command = "mst";
  info.dataset = "sf-poi-like";
  info.scheme = "tri";
  info.n = 64;
  info.seed = 42;
  info.trace_id = "test-trace";
  info.wall_seconds = 0.5;
  return info;
}

/// Extracts the member keys of the first `"stats":{...}` object. The stats
/// object holds only numeric values, so a brace scan suffices.
std::vector<std::string> StatsJsonKeys(const std::string& json) {
  const size_t start = json.find("\"stats\":{");
  EXPECT_NE(start, std::string::npos);
  const size_t open = start + std::string("\"stats\":{").size() - 1;
  const size_t close = json.find('}', open);
  EXPECT_NE(close, std::string::npos);
  const std::string body = json.substr(open + 1, close - open - 1);
  std::vector<std::string> keys;
  size_t pos = 0;
  while ((pos = body.find('"', pos)) != std::string::npos) {
    const size_t end = body.find('"', pos + 1);
    EXPECT_NE(end, std::string::npos);
    keys.push_back(body.substr(pos + 1, end - pos - 1));
    // Skip to the next member (the value never contains a quote).
    pos = body.find(',', end);
    if (pos == std::string::npos) break;
  }
  return keys;
}

TEST(RunReportTest, JsonStatsHasExactlyOneKeyPerXMacroField) {
  ResolverStats stats;
  stats.oracle_calls = 11;
  stats.decided_by_bounds = 7;
  stats.bounder_seconds = 0.25;
  const RunReport report(TestRunInfo(), stats, nullptr);
  const std::vector<std::string> keys = StatsJsonKeys(report.ToJson());
  const std::vector<std::string_view> names = ResolverStatsFieldNames();
  ASSERT_EQ(keys.size(), names.size());
  for (size_t k = 0; k < names.size(); ++k) {
    EXPECT_EQ(keys[k], names[k]) << "field order diverged at index " << k;
  }
}

TEST(RunReportTest, JsonCarriesRunMetadataAndSchema) {
  ResolverStats stats;
  stats.oracle_calls = 5;
  const RunReport report(TestRunInfo(), stats, nullptr);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\":\"metricprox-run-report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"mst\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"test-trace\""), std::string::npos);
  EXPECT_NE(json.find("\"oracle_calls\":5"), std::string::npos);
  EXPECT_NE(json.find("\"telemetry\":{\"enabled\":false"),
            std::string::npos);
}

TEST(RunReportTest, JsonTelemetryHistogramsWhenAttached) {
  ResolverStats stats;
  Telemetry telemetry;
  telemetry.oracle_latency_seconds.Record(0.001);
  telemetry.oracle_latency_seconds.Record(0.003);
  telemetry.batch_size.Record(8.0);
  telemetry.bound_gap.Record(0.5);
  const RunReport report(TestRunInfo(), stats, &telemetry);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"telemetry\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"oracle_latency_seconds\":{\"count\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"batch_size\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bound_gap\":{\"count\":1"), std::string::npos);
  // Every histogram block carries the quantile keys.
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(RunReportTest, TextReproducesAccountingPipeTable) {
  ResolverStats stats;
  stats.oracle_calls = 10;
  stats.comparisons = 20;
  const RunReport report(TestRunInfo(), stats, nullptr);
  const std::string text = report.ToText();
  EXPECT_NE(text.find("\nAccounting\n"), std::string::npos);
  // The store-roundtrip CI step parses `| oracle calls | N |` with awk -F'|'
  // and strips spaces, so the cells are space-padded and pipe-delimited.
  EXPECT_NE(text.find("oracle calls |"), std::string::npos);
  EXPECT_NE(text.find(" 10 |"), std::string::npos);
  EXPECT_NE(text.find("|---"), std::string::npos);
  // Telemetry rows only appear once histograms hold samples.
  EXPECT_EQ(text.find("oracle latency p50"), std::string::npos);

  Telemetry telemetry;
  telemetry.oracle_latency_seconds.Record(0.5);
  const RunReport traced(TestRunInfo(), stats, &telemetry);
  EXPECT_NE(traced.ToText().find("oracle latency p50"), std::string::npos);
}

TEST(RunReportTest, ConditionalRowGroupsFollowTheCounters) {
  ResolverStats stats;
  stats.oracle_retries = 2;
  RunInfo info = TestRunInfo();
  info.have_store = true;
  info.oracle_cost_seconds = 1.2;
  const RunReport report(info, stats, nullptr);
  const std::string text = report.ToText();
  EXPECT_NE(text.find("oracle retries"), std::string::npos);
  EXPECT_NE(text.find("store hits"), std::string::npos);
  EXPECT_NE(text.find("completion time (s)"), std::string::npos);
  EXPECT_EQ(text.find("certs emitted"), std::string::npos);
}

}  // namespace
}  // namespace metricprox
