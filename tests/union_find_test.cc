#include "graph/union_find.h"

#include <random>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

TEST(UnionFindTest, StartsFullySeparated) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_TRUE(uf.Connected(2, 2));
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_TRUE(uf.Union(0, 3));
  EXPECT_EQ(uf.num_components(), 1u);
  EXPECT_TRUE(uf.Connected(1, 2));
}

TEST(UnionFindTest, TransitivityOverChain) {
  const uint32_t n = 100;
  UnionFind uf(n);
  for (uint32_t i = 0; i + 1 < n; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_components(), 1u);
  EXPECT_TRUE(uf.Connected(0, n - 1));
}

TEST(UnionFindTest, RandomizedAgainstNaiveLabels) {
  std::mt19937_64 rng(99);
  const uint32_t n = 64;
  UnionFind uf(n);
  std::vector<uint32_t> label(n);
  for (uint32_t i = 0; i < n; ++i) label[i] = i;

  for (int step = 0; step < 500; ++step) {
    const uint32_t a = static_cast<uint32_t>(rng() % n);
    const uint32_t b = static_cast<uint32_t>(rng() % n);
    if (rng() % 2 == 0) {
      const bool merged = uf.Union(a, b);
      EXPECT_EQ(merged, label[a] != label[b]);
      if (label[a] != label[b]) {
        const uint32_t from = label[b];
        const uint32_t to = label[a];
        for (uint32_t i = 0; i < n; ++i) {
          if (label[i] == from) label[i] = to;
        }
      }
    } else {
      EXPECT_EQ(uf.Connected(a, b), label[a] == label[b]);
    }
  }
}

}  // namespace
}  // namespace metricprox
