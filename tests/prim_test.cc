#include "algo/prim.h"

#include <set>

#include <gtest/gtest.h>

#include "algo/reference.h"
#include "bounds/scheme.h"
#include "graph/union_find.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

std::set<EdgeKey> EdgeSet(const MstResult& mst) {
  std::set<EdgeKey> keys;
  for (const WeightedEdge& e : mst.edges) keys.insert(EdgeKey(e.u, e.v));
  return keys;
}

TEST(PrimTest, TinyHandCheckedTree) {
  // Path metric on a line 0 - 1 - 2 - 3 with unit steps: the MST is the
  // path itself with weight 3 (matrix = |i-j| distances).
  const ObjectId n = 4;
  std::vector<double> m(n * n, 0.0);
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = 0; j < n; ++j) {
      m[i * n + j] = std::abs(static_cast<int>(i) - static_cast<int>(j));
    }
  }
  auto oracle = MatrixOracle::Create(std::move(m), n);
  ASSERT_TRUE(oracle.ok());
  PartialDistanceGraph graph(n);
  BoundedResolver resolver(&*oracle, &graph);
  const MstResult mst = PrimMst(&resolver);
  ASSERT_EQ(mst.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(mst.total_weight, 3.0);
  EXPECT_EQ(EdgeSet(mst),
            (std::set<EdgeKey>{EdgeKey(0, 1), EdgeKey(1, 2), EdgeKey(2, 3)}));
}

TEST(PrimTest, WithoutPlugResolvesEveryPair) {
  const ObjectId n = 16;
  ResolverStack stack = MakeRandomStack(n, 111);
  const MstResult mst = PrimMst(stack.resolver.get());
  EXPECT_EQ(mst.edges.size(), static_cast<size_t>(n - 1));
  // The "Without Plug" column of Tables 2/3: all n(n-1)/2 oracle calls.
  EXPECT_EQ(stack.resolver->stats().oracle_calls,
            static_cast<uint64_t>(n) * (n - 1) / 2);
}

TEST(PrimTest, ResultIsASpanningTree) {
  const ObjectId n = 24;
  ResolverStack stack = MakeRandomStack(n, 222);
  const MstResult mst = PrimMst(stack.resolver.get());
  ASSERT_EQ(mst.edges.size(), static_cast<size_t>(n - 1));
  UnionFind uf(n);
  for (const WeightedEdge& e : mst.edges) {
    EXPECT_TRUE(uf.Union(e.u, e.v)) << "cycle in MST";
    EXPECT_DOUBLE_EQ(e.weight, stack.oracle->Distance(e.u, e.v));
  }
  EXPECT_EQ(uf.num_components(), 1u);
}

// The paper's exactness guarantee: identical output under every scheme.
class PrimSchemeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, uint64_t>> {};

TEST_P(PrimSchemeEquivalenceTest, MatchesReferenceUnderScheme) {
  const auto [kind, seed] = GetParam();
  const ObjectId n = 18;
  ResolverStack stack = MakeRandomStack(n, seed);
  const MstResult reference = ReferencePrimMst(stack.oracle.get());

  ResolverStack plugged = MakeRandomStack(n, seed);  // fresh identical metric
  SchemeOptions options;
  options.seed = seed;
  auto bounder = MakeAndAttachScheme(kind, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  const MstResult mst = PrimMst(plugged.resolver.get());

  EXPECT_NEAR(mst.total_weight, reference.total_weight, 1e-9);
  EXPECT_EQ(EdgeSet(mst), EdgeSet(reference))
      << "scheme " << SchemeKindName(kind) << " changed the MST";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PrimSchemeEquivalenceTest,
    ::testing::Combine(::testing::Values(SchemeKind::kNone, SchemeKind::kTri,
                                         SchemeKind::kSplub, SchemeKind::kAdm,
                                         SchemeKind::kLaesa,
                                         SchemeKind::kTlaesa),
                       ::testing::Values(7, 21)));

// Lazy-key Prim issues only PairLess comparisons; output must still match.
class PrimLazySchemeEquivalenceTest
    : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(PrimLazySchemeEquivalenceTest, LazyVariantMatchesReference) {
  const SchemeKind kind = GetParam();
  const ObjectId n = 16;
  ResolverStack stack = MakeRandomStack(n, 77);
  const MstResult reference = ReferencePrimMst(stack.oracle.get());

  ResolverStack plugged = MakeRandomStack(n, 77);
  SchemeOptions options;
  auto bounder = MakeAndAttachScheme(kind, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const MstResult mst = PrimMstLazy(plugged.resolver.get());
  EXPECT_NEAR(mst.total_weight, reference.total_weight, 1e-9);
  EXPECT_EQ(EdgeSet(mst), EdgeSet(reference))
      << "scheme " << SchemeKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PrimLazySchemeEquivalenceTest,
                         ::testing::Values(SchemeKind::kNone, SchemeKind::kTri,
                                           SchemeKind::kSplub, SchemeKind::kAdm,
                                           SchemeKind::kAdmClassic,
                                           SchemeKind::kLaesa,
                                           SchemeKind::kTlaesa));

TEST(PrimTest, DftSchemeAlsoPreservesTheTree) {
  // DFT is LP-heavy, so keep this instance tiny but real.
  const ObjectId n = 8;
  ResolverStack stack = MakeRandomStack(n, 33);
  const MstResult reference = ReferencePrimMst(stack.oracle.get());
  ResolverStack plugged = MakeRandomStack(n, 33);
  SchemeOptions options;
  options.max_distance = 1.0;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kDft, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const MstResult mst = PrimMst(plugged.resolver.get());
  EXPECT_NEAR(mst.total_weight, reference.total_weight, 1e-9);
  EXPECT_LE(plugged.resolver->stats().oracle_calls,
            static_cast<uint64_t>(n) * (n - 1) / 2);
}

TEST(PrimTest, TriWithBootstrapSavesCallsOnClusteredData) {
  // Clustered 2-D Euclidean data: triangle bounds have real pruning power,
  // so Tri + bootstrap must beat the unplugged run.
  const ObjectId n = 64;
  auto make_stack = [&]() {
    ResolverStack stack;
    stack.oracle = std::make_unique<VectorOracle>(
        GaussianMixturePoints(n, 2, /*num_clusters=*/4, /*range=*/100.0,
                              /*spread=*/1.5, /*seed=*/5),
        VectorMetric::kEuclidean);
    stack.graph = std::make_unique<PartialDistanceGraph>(n);
    stack.resolver = std::make_unique<BoundedResolver>(stack.oracle.get(),
                                                       stack.graph.get());
    return stack;
  };

  ResolverStack vanilla = make_stack();
  const MstResult reference = PrimMst(vanilla.resolver.get());
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = make_stack();
  BootstrapWithLandmarks(plugged.resolver.get(), 6, 1);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const MstResult mst = PrimMst(plugged.resolver.get());
  EXPECT_NEAR(mst.total_weight, reference.total_weight, 1e-9);
  EXPECT_LT(plugged.resolver->stats().oracle_calls, baseline)
      << "Tri+bootstrap must beat the unplugged run on clustered data";
}

}  // namespace
}  // namespace metricprox
