// BatchCoalescer: cross-session pending-pair dedup, linger-window and
// batch-full flush semantics, per-waiter deadline expiry, backpressure, and
// a seeded fault-injection chaos variant. The core accounting property
// pinned here: a symmetric pair submitted by any number of concurrent
// sessions inside one pending window is charged to the base oracle exactly
// once, and EVERY submitter receives its result — no lost and no
// double-delivered resolutions, even when the transport underneath fails
// transiently and retries.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/status.h"
#include "core/types.h"
#include "data/datasets.h"
#include "oracle/fault_injection.h"
#include "oracle/retry.h"
#include "oracle/wrappers.h"
#include "service/coalescer.h"

namespace metricprox {
namespace {

/// Spins until the coalescer holds exactly `expected` pending pairs (the
/// deterministic rendezvous point for manual-flush tests).
void AwaitPending(const BatchCoalescer& coalescer, size_t expected) {
  while (coalescer.PendingPairs() != expected) {
    std::this_thread::yield();
  }
}

Status ResolveOne(BatchCoalescer* coalescer, IdPair pair, double* out,
                  BatchCoalescer::Deadline deadline = {}) {
  Status status;
  return coalescer->Resolve(std::span<const IdPair>(&pair, 1),
                            std::span<double>(out, 1),
                            std::span<Status>(&status, 1), deadline);
}

TEST(CoalescerTest, ManualFlushResolvesEverySubmitterOnce) {
  const ObjectId n = 16;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/3);
  CountingOracle counting(dataset.oracle.get());
  CoalescerOptions options;
  options.manual_flush = true;
  BatchCoalescer coalescer(&counting, options);

  // Four waiters, two distinct pairs: (1,2) submitted three times — twice
  // in the canonical orientation, once flipped — and (3,4) once.
  const IdPair submissions[] = {{1, 2}, {2, 1}, {1, 2}, {3, 4}};
  double results[4] = {};
  Status statuses[4];
  std::vector<std::thread> waiters;
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&, w] {
      statuses[w] = ResolveOne(&coalescer, submissions[w], &results[w]);
    });
  }
  AwaitPending(coalescer, 2);  // symmetric dedup: only two distinct pairs
  EXPECT_EQ(coalescer.FlushNow(), 2u);
  for (std::thread& t : waiters) t.join();

  const double d12 = dataset.oracle->Distance(1, 2);
  const double d34 = dataset.oracle->Distance(3, 4);
  for (int w = 0; w < 4; ++w) EXPECT_TRUE(statuses[w].ok()) << statuses[w];
  EXPECT_EQ(results[0], d12);
  EXPECT_EQ(results[1], d12);  // flipped orientation, same EdgeKey
  EXPECT_EQ(results[2], d12);
  EXPECT_EQ(results[3], d34);

  // The base oracle was charged once per DISTINCT pair (the verification
  // reads above bypass the counting wrapper), and the counters agree.
  EXPECT_EQ(counting.calls(), 2u);
  const CoalescerCounters counters = coalescer.counters();
  EXPECT_EQ(counters.batches_shipped, 1u);
  EXPECT_EQ(counters.pairs_shipped, 2u);
  EXPECT_EQ(counters.dedup_hits, 2u);  // two joins onto the pending (1,2)
  EXPECT_EQ(counters.deadline_expirations, 0u);
  EXPECT_EQ(coalescer.PendingPairs(), 0u);
}

TEST(CoalescerTest, NotACacheResolvedPairShipsAgain) {
  const ObjectId n = 8;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/21);
  CountingOracle counting(dataset.oracle.get());
  CoalescerOptions options;
  options.manual_flush = true;
  BatchCoalescer coalescer(&counting, options);
  for (int round = 0; round < 2; ++round) {
    double result = 0.0;
    Status status;
    std::thread waiter([&] {
      status = ResolveOne(&coalescer, IdPair{2, 5}, &result);
    });
    AwaitPending(coalescer, 1);
    coalescer.FlushNow();
    waiter.join();
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(result, dataset.oracle->Distance(2, 5));
  }
  // Two rounds, two charges: memoization is the graph/store layers' job.
  EXPECT_EQ(counting.calls(), 2u);
  EXPECT_EQ(coalescer.counters().dedup_hits, 0u);
}

TEST(CoalescerTest, SelfPairsResolveToZeroWithoutShipping) {
  const ObjectId n = 8;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/13);
  CountingOracle counting(dataset.oracle.get());
  CoalescerOptions options;
  options.manual_flush = true;
  BatchCoalescer coalescer(&counting, options);
  double out = -1.0;
  EXPECT_TRUE(ResolveOne(&coalescer, IdPair{5, 5}, &out).ok());
  EXPECT_EQ(out, 0.0);
  EXPECT_EQ(counting.calls(), 0u);
  EXPECT_EQ(coalescer.PendingPairs(), 0u);
}

TEST(CoalescerTest, LingerWindowCoalescesConcurrentSubmitters) {
  const ObjectId n = 32;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/17);
  CountingOracle counting(dataset.oracle.get());
  CoalescerOptions options;
  options.linger_seconds = 0.25;  // generous: all submitters fit the window
  BatchCoalescer coalescer(&counting, options);

  const unsigned submitters = 8;
  std::vector<double> results(submitters, 0.0);
  std::vector<Status> statuses(submitters);
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < submitters; ++w) {
    threads.emplace_back([&, w] {
      const IdPair pair{static_cast<ObjectId>(w), static_cast<ObjectId>(w + 8)};
      statuses[w] = ResolveOne(&coalescer, pair, &results[w]);
    });
  }
  for (std::thread& t : threads) t.join();

  for (unsigned w = 0; w < submitters; ++w) {
    ASSERT_TRUE(statuses[w].ok()) << statuses[w];
    EXPECT_EQ(results[w], dataset.oracle->Distance(w, w + 8));
  }
  // The linger window merged distinct sessions' pairs into shared
  // round-trips: strictly fewer batches than submitters (typically one).
  const CoalescerCounters counters = coalescer.counters();
  EXPECT_EQ(counters.pairs_shipped, submitters);
  EXPECT_GE(counters.batches_shipped, 1u);
  EXPECT_LT(counters.batches_shipped, submitters);
}

TEST(CoalescerTest, FullBatchShipsWithoutWaitingOutTheLinger) {
  const ObjectId n = 16;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/29);
  CoalescerOptions options;
  options.linger_seconds = 60.0;  // would time the test out if honored
  options.max_batch_pairs = 4;
  BatchCoalescer coalescer(dataset.oracle.get(), options);
  std::vector<std::thread> threads;
  std::vector<double> results(4, 0.0);
  for (unsigned w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      const IdPair pair{static_cast<ObjectId>(w), static_cast<ObjectId>(w + 4)};
      ASSERT_TRUE(ResolveOne(&coalescer, pair, &results[w]).ok());
    });
  }
  // Joining at all (within the test timeout) proves the batch-full path
  // shipped without sleeping the 60 s window.
  for (std::thread& t : threads) t.join();
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_EQ(results[w], dataset.oracle->Distance(w, w + 4));
  }
}

TEST(CoalescerTest, DeadlineExpiresOnlyTheAffectedWaiter) {
  const ObjectId n = 8;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/31);
  CoalescerOptions options;
  options.manual_flush = true;  // nothing ships until we say so
  BatchCoalescer coalescer(dataset.oracle.get(), options);

  // Waiter B first: no deadline, pair (2, 1). Then waiter A joins the same
  // (symmetric) pair under a tight deadline.
  double result_b = -1.0;
  Status status_b;
  std::thread waiter_b([&] {
    status_b = ResolveOne(&coalescer, IdPair{2, 1}, &result_b);
  });
  AwaitPending(coalescer, 1);
  double result_a = -1.0;
  Status status_a;
  std::thread waiter_a([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
    status_a = ResolveOne(&coalescer, IdPair{1, 2}, &result_a, deadline);
  });

  waiter_a.join();  // expires: the batch is deliberately held back
  EXPECT_EQ(status_a.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(coalescer.counters().deadline_expirations, 1u);

  // The pair is STILL pending — A's expiry must not cancel B's wait.
  EXPECT_EQ(coalescer.PendingPairs(), 1u);
  coalescer.FlushNow();
  waiter_b.join();
  EXPECT_TRUE(status_b.ok()) << status_b;
  EXPECT_EQ(result_b, dataset.oracle->Distance(1, 2));
}

TEST(CoalescerTest, BackpressureBlocksThenDrains) {
  const ObjectId n = 16;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/37);
  CoalescerOptions options;
  options.manual_flush = true;
  options.max_pending_pairs = 2;
  BatchCoalescer coalescer(dataset.oracle.get(), options);

  std::atomic<int> resolved{0};
  std::vector<double> results(3, 0.0);
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      const IdPair pair{static_cast<ObjectId>(w), static_cast<ObjectId>(w + 8)};
      ASSERT_TRUE(ResolveOne(&coalescer, pair, &results[w]).ok());
      resolved.fetch_add(1);
    });
  }
  // Exactly two pairs fit; the third submitter is blocked in backpressure.
  AwaitPending(coalescer, 2);
  EXPECT_EQ(resolved.load(), 0);
  coalescer.FlushNow();  // drains the two, admits the third
  AwaitPending(coalescer, 1);
  coalescer.FlushNow();
  for (std::thread& t : threads) t.join();
  for (unsigned w = 0; w < 3; ++w) {
    EXPECT_EQ(results[w], dataset.oracle->Distance(w, w + 8));
  }
  EXPECT_EQ(coalescer.counters().pairs_shipped, 3u);
}

TEST(CoalescerTest, BackpressureDeadlineSurfacesDeadlineExceeded) {
  const ObjectId n = 16;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/41);
  CoalescerOptions options;
  options.manual_flush = true;
  options.max_pending_pairs = 1;
  BatchCoalescer coalescer(dataset.oracle.get(), options);

  double first = 0.0;
  Status first_status;
  std::thread occupant([&] {
    first_status = ResolveOne(&coalescer, IdPair{1, 2}, &first);
  });
  AwaitPending(coalescer, 1);

  // The pending set is full and nobody flushes: this submitter's deadline
  // elapses inside backpressure.
  double blocked = 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  const Status status =
      ResolveOne(&coalescer, IdPair{3, 4}, &blocked, deadline);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);

  coalescer.FlushNow();
  occupant.join();
  EXPECT_TRUE(first_status.ok());
  EXPECT_EQ(first, dataset.oracle->Distance(1, 2));
}

TEST(CoalescerTest, DestructorDrainsPendingWaiters) {
  const ObjectId n = 8;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/43);
  double result = 0.0;
  Status status;
  std::thread waiter;
  {
    CoalescerOptions options;
    options.manual_flush = true;
    BatchCoalescer coalescer(dataset.oracle.get(), options);
    waiter = std::thread([&] {
      status = ResolveOne(&coalescer, IdPair{2, 6}, &result);
    });
    AwaitPending(coalescer, 1);
    // No FlushNow: destruction itself must ship the remainder so the
    // waiter is released with a real result, not left hanging.
  }
  waiter.join();
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(result, dataset.oracle->Distance(2, 6));
}

// Chaos: many concurrent submitters with heavy pair overlap, a transiently
// failing transport and a retry layer underneath the coalescer. Every
// submitter must see OK and the exact oracle distance for every pair —
// nothing lost, nothing double-delivered, dedup still charged per join.
TEST(CoalescerChaosTest, FaultyRetriedTransportLosesNothing) {
  const ObjectId n = 24;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/4747);
  FaultInjectionOptions fault;
  fault.failure_rate = 0.15;
  fault.max_consecutive_failures = 2;
  fault.seed = 909;
  FaultInjectingOracle faulty(dataset.oracle.get(), fault);
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_seconds = 1e-7;
  retry.max_backoff_seconds = 1e-6;
  retry.seed = 909;
  RetryingOracle retrying(&faulty, retry);
  CountingOracle counting(&retrying);

  CoalescerOptions options;
  options.linger_seconds = 0.002;
  options.max_batch_pairs = 16;
  BatchCoalescer coalescer(&counting, options);

  const unsigned submitters = 6;
  const unsigned rounds = 5;
  std::vector<std::vector<double>> results(
      submitters, std::vector<double>(rounds, -1.0));
  std::vector<Status> worst(submitters);
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < submitters; ++w) {
    threads.emplace_back([&, w] {
      for (unsigned r = 0; r < rounds; ++r) {
        // Overlapping pair universe: submitter w and w+1 share pairs each
        // round, so in-flight joins happen constantly.
        const ObjectId i = static_cast<ObjectId>((w + r) % 12);
        const ObjectId j = static_cast<ObjectId>(12 + (w * r) % 12);
        const Status status =
            ResolveOne(&coalescer, IdPair{i, j}, &results[w][r]);
        if (!status.ok()) worst[w] = status;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (unsigned w = 0; w < submitters; ++w) {
    EXPECT_TRUE(worst[w].ok()) << worst[w];
    for (unsigned r = 0; r < rounds; ++r) {
      const ObjectId i = static_cast<ObjectId>((w + r) % 12);
      const ObjectId j = static_cast<ObjectId>(12 + (w * r) % 12);
      EXPECT_EQ(results[w][r], dataset.oracle->Distance(i, j))
          << "submitter " << w << " round " << r;
    }
  }
  const CoalescerCounters counters = coalescer.counters();
  // Conservation: every submission either shipped or joined a pending pair.
  EXPECT_EQ(counters.pairs_shipped + counters.dedup_hits,
            static_cast<uint64_t>(submitters) * rounds);
  // The retried transport billed exactly the shipped pairs — retries cost
  // attempts, never extra charged pairs (RetryingOracle bills per pair).
  EXPECT_EQ(counting.calls(), counters.pairs_shipped);
  EXPECT_EQ(counters.deadline_expirations, 0u);
}

}  // namespace
}  // namespace metricprox
