// End-to-end dual-oracle resolution through the harness: weak-informed runs
// must be byte-identical to the weak-free exact runs (the exactness theorem
// extended to the third bound source) while spending a fraction of the
// strong-oracle calls, and the weak channel's accounting must hold up.

#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/knn_graph.h"
#include "algo/prim.h"
#include "data/datasets.h"
#include "harness/experiment.h"

namespace metricprox {
namespace {

/// Many tight, well-separated clusters: the regime the dual-oracle model is
/// built for — most comparisons are cluster-scale vs. point-scale, so even
/// a 25%-error estimate decides them without a strong call.
Dataset MakeTightClusters(ObjectId n, uint64_t seed) {
  return MakeClusteredEuclidean(n, 2, 10, 0.01, seed);
}

const Workload kMstWorkload = [](BoundedResolver* r) {
  return PrimMst(r).total_weight;
};

/// Boruvka routes its per-component nearest-edge scans through the batch
/// min-finding verbs, where weak estimates also steer the resolution order
/// — the configuration the ISSUE's >= 3x acceptance bar targets.
const Workload kBoruvkaWorkload = [](BoundedResolver* r) {
  return BoruvkaMst(r).total_weight;
};

const Workload kKnnWorkload = [](BoundedResolver* r) {
  KnnGraphOptions options;
  options.k = 4;
  const KnnGraph graph = BuildKnnGraph(r, options);
  double sum = 0.0;
  for (const auto& neighbors : graph) {
    if (!neighbors.empty()) sum += neighbors.back().distance;
  }
  return sum;
};

bool BitIdentical(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

TEST(WeakResolutionTest, KnnByteIdenticalWithThreefoldFewerStrongCalls) {
  // 48 tight clusters of 10 points: measured 4.0-4.1x across seeds, so the
  // 3x bar has real margin.
  Dataset dataset = MakeClusteredEuclidean(480, 2, 48, 0.003, 31);
  WorkloadConfig base;
  base.scheme = SchemeKind::kNone;
  const WorkloadResult exact =
      RunWorkload(dataset.oracle.get(), base, kKnnWorkload);

  WorkloadConfig weak = base;
  weak.weak_alpha = 1.25;
  const WorkloadResult informed =
      RunWorkload(dataset.oracle.get(), weak, kKnnWorkload);

  EXPECT_TRUE(BitIdentical(exact.value, informed.value))
      << exact.value << " vs " << informed.value;
  EXPECT_GT(informed.stats.decided_by_weak, 0u);
  EXPECT_GE(informed.stats.weak_calls, informed.stats.decided_by_weak);
  // The acceptance bar: the weak channel absorbs enough comparisons that
  // strong-oracle spend drops at least 3x at alpha = 1.25.
  EXPECT_GE(exact.stats.oracle_calls, 3 * informed.stats.oracle_calls)
      << "weak-free " << exact.stats.oracle_calls << " vs weak-informed "
      << informed.stats.oracle_calls;
}

TEST(WeakResolutionTest, MstByteIdenticalWithThreefoldFewerStrongCalls) {
  // Boruvka's nearest-edge scans go through the weak-steered batch pipeline:
  // measured 11-15x at alpha=1.25 on this geometry (Prim's per-pair key
  // comparisons are intrinsically near-tied and cap out lower).
  Dataset dataset = MakeClusteredEuclidean(480, 2, 48, 0.003, 37);
  WorkloadConfig base;
  base.scheme = SchemeKind::kNone;
  const WorkloadResult exact =
      RunWorkload(dataset.oracle.get(), base, kBoruvkaWorkload);

  WorkloadConfig weak = base;
  weak.weak_alpha = 1.25;
  const WorkloadResult informed =
      RunWorkload(dataset.oracle.get(), weak, kBoruvkaWorkload);

  EXPECT_TRUE(BitIdentical(exact.value, informed.value))
      << exact.value << " vs " << informed.value;
  EXPECT_GT(informed.stats.decided_by_weak, 0u);
  EXPECT_GE(exact.stats.oracle_calls, 3 * informed.stats.oracle_calls)
      << "weak-free " << exact.stats.oracle_calls << " vs weak-informed "
      << informed.stats.oracle_calls;
}

TEST(WeakResolutionTest, ByteIdenticalAcrossSchemesAndSeeds) {
  // The exactness property does not depend on the scheme, the workload or
  // the weak seed: a weak-informed run always reproduces the exact answer.
  for (uint64_t seed : {1ull, 2ull}) {
    Dataset dataset = MakeClusteredEuclidean(96, 3, 4, 0.05, seed);
    for (SchemeKind scheme : {SchemeKind::kNone, SchemeKind::kTri}) {
      for (const Workload& workload :
           {kMstWorkload, kBoruvkaWorkload, kKnnWorkload}) {
        WorkloadConfig base;
        base.scheme = scheme;
        base.bootstrap = scheme != SchemeKind::kNone;
        base.seed = seed;
        const WorkloadResult exact =
            RunWorkload(dataset.oracle.get(), base, workload);
        for (double alpha : {1.05, 1.5, 3.0}) {
          WorkloadConfig weak = base;
          weak.weak_alpha = alpha;
          weak.weak_seed = seed + 100;
          const WorkloadResult informed =
              RunWorkload(dataset.oracle.get(), weak, workload);
          EXPECT_TRUE(BitIdentical(exact.value, informed.value))
              << "scheme=" << static_cast<int>(scheme) << " seed=" << seed
              << " alpha=" << alpha;
          // With no scheme the weak channel can only remove strong calls.
          // (With a graph-reading scheme it may cost a few extra: weak
          // decisions keep resolved edges out of the partial graph, so
          // later Tri bounds start from less information.)
          if (scheme == SchemeKind::kNone) {
            EXPECT_LE(informed.stats.oracle_calls, exact.stats.oracle_calls)
                << "weak oracle increased strong-oracle spend";
          }
        }
      }
    }
  }
}

TEST(WeakResolutionTest, WeakFloorPreservesExactness) {
  Dataset dataset = MakeTightClusters(120, 11);
  WorkloadConfig base;
  base.scheme = SchemeKind::kNone;
  const WorkloadResult exact =
      RunWorkload(dataset.oracle.get(), base, kMstWorkload);
  WorkloadConfig weak = base;
  weak.weak_alpha = 1.25;
  weak.weak_floor = 0.01;
  const WorkloadResult informed =
      RunWorkload(dataset.oracle.get(), weak, kMstWorkload);
  EXPECT_TRUE(BitIdentical(exact.value, informed.value));
}

TEST(WeakResolutionTest, WeakCostAccruesIntoCompletionTime) {
  Dataset dataset = MakeTightClusters(96, 13);
  WorkloadConfig weak;
  weak.scheme = SchemeKind::kNone;
  weak.weak_alpha = 1.25;
  weak.weak_cost_seconds = 0.001;
  const WorkloadResult result =
      RunWorkload(dataset.oracle.get(), weak, kMstWorkload);
  EXPECT_GT(result.stats.weak_calls, 0u);
  EXPECT_GT(result.stats.weak_simulated_seconds, 0.0);
  EXPECT_NEAR(result.completion_seconds - result.wall_seconds,
              result.stats.weak_simulated_seconds, 1e-9);
}

TEST(WeakResolutionTest, AuditVerifiesEveryWeakCertificate) {
  Dataset dataset = MakeTightClusters(96, 17);
  WorkloadConfig config;
  config.scheme = SchemeKind::kTri;
  config.bootstrap = true;
  config.weak_alpha = 1.25;
  const StatusOr<AuditReport> report =
      AuditWorkload(dataset.oracle.get(), config, kMstWorkload);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->passed()) << report->certification.first_failure;
  EXPECT_GT(report->audited.stats.decided_by_weak, 0u);
  EXPECT_EQ(report->certification.failed, 0u);
  EXPECT_EQ(report->certification.verified, report->certification.emitted);
}

TEST(WeakResolutionTest, CounterInvariantHoldsWithWeakActive) {
  Dataset dataset = MakeTightClusters(120, 19);
  WorkloadConfig weak;
  weak.scheme = SchemeKind::kTri;
  weak.bootstrap = true;
  weak.weak_alpha = 1.5;
  const WorkloadResult result =
      RunWorkload(dataset.oracle.get(), weak, kMstWorkload);
  const ResolverStats& s = result.stats;
  EXPECT_EQ(s.comparisons, s.decided_by_cache + s.decided_by_bounds +
                               s.decided_by_oracle + s.decided_by_slack +
                               s.decided_by_weak + s.undecided);
  EXPECT_GE(s.weak_calls, s.decided_by_weak);
}

}  // namespace
}  // namespace metricprox
