#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "bounds/adm.h"
#include "bounds/adm_classic.h"
#include "bounds/hybrid.h"
#include "bounds/laesa.h"
#include "bounds/pivots.h"
#include "bounds/scheme.h"
#include "bounds/splub.h"
#include "bounds/tlaesa.h"
#include "bounds/tri.h"
#include "core/bounder.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ReferenceBounds;
using testing_util::ResolveRandomPairs;
using testing_util::ResolverStack;

TEST(TriBounderTest, PaperRunningExampleEdge14) {
  // With dist(1,3) = 0.8 and dist(3,4) = 0.1 known, object 3 is the only
  // common neighbor of (1, 4): bounds are [0.7, 0.9] (Section 3.1).
  PartialDistanceGraph graph(7);
  graph.Insert(1, 3, 0.8);
  graph.Insert(3, 4, 0.1);
  TriBounder tri(&graph);
  const Interval b = tri.Bounds(1, 4);
  EXPECT_NEAR(b.lo, 0.7, 1e-12);
  EXPECT_NEAR(b.hi, 0.9, 1e-12);
}

TEST(TriBounderTest, NoCommonNeighborGivesUnboundedInterval) {
  PartialDistanceGraph graph(5);
  graph.Insert(0, 1, 0.2);
  graph.Insert(2, 3, 0.2);
  TriBounder tri(&graph);
  const Interval b = tri.Bounds(0, 3);
  EXPECT_DOUBLE_EQ(b.lo, 0.0);
  EXPECT_EQ(b.hi, kInfDistance);
}

TEST(TriBounderTest, PicksBestTriangleAmongSeveral) {
  PartialDistanceGraph graph(5);
  // Two triangles over (0, 1): via 2 -> [0.1, 0.9]; via 3 -> [0.3, 0.7].
  graph.Insert(0, 2, 0.5);
  graph.Insert(1, 2, 0.4);
  graph.Insert(0, 3, 0.5);
  graph.Insert(1, 3, 0.2);
  TriBounder tri(&graph);
  const Interval b = tri.Bounds(0, 1);
  EXPECT_NEAR(b.lo, 0.3, 1e-12);
  EXPECT_NEAR(b.hi, 0.7, 1e-12);
}

TEST(SplubBounderTest, UpperBoundIsShortestPathNotJustTriangle) {
  PartialDistanceGraph graph(4);
  // Path 0-2-3-1 of length 0.3 upper-bounds (0,1); Tri sees no triangle.
  graph.Insert(0, 2, 0.1);
  graph.Insert(2, 3, 0.1);
  graph.Insert(3, 1, 0.1);
  SplubBounder splub(&graph);
  EXPECT_NEAR(splub.Bounds(0, 1).hi, 0.3, 1e-12);
  TriBounder tri(&graph);
  EXPECT_EQ(tri.Bounds(0, 1).hi, kInfDistance);
}

TEST(SplubBounderTest, LowerBoundWrapsLongEdgeOverPaths) {
  PartialDistanceGraph graph(5);
  // Long known edge (0, 1) = 0.9; short hops 0-2 (0.1) and 1-3 (0.1).
  // Wrap: dist(2,3) >= 0.9 - 0.1 - 0.1 = 0.7 (paper Figure 2 geometry).
  graph.Insert(0, 1, 0.9);
  graph.Insert(0, 2, 0.1);
  graph.Insert(1, 3, 0.1);
  SplubBounder splub(&graph);
  EXPECT_NEAR(splub.Bounds(2, 3).lo, 0.7, 1e-12);
}

TEST(SplubBounderTest, BulkInsertEdgesInvalidatesMemoizedSourceRow) {
  PartialDistanceGraph graph(5);
  graph.Insert(0, 2, 0.4);
  graph.Insert(2, 1, 0.4);
  SplubBounder splub(&graph);
  // Warm the memoized source row for source 0: sp(0, 1) = 0.8 via 0-2-1.
  EXPECT_NEAR(splub.Bounds(0, 1).hi, 0.8, 1e-12);
  // Bulk-insert a 0-3-1 shortcut of length 0.2 through InsertEdges — the
  // batch pipeline's path, which bumps num_edges without touching the
  // bounder. The (source, num_edges) memo key must treat that as stale;
  // a bounder that kept the old row would report 0.8 and over-bound.
  const std::vector<ResolvedEdge> shortcut = {ResolvedEdge{0, 3, 0.1},
                                              ResolvedEdge{3, 1, 0.1}};
  graph.InsertEdges(shortcut);
  const Interval after = splub.Bounds(0, 1);
  EXPECT_NEAR(after.hi, 0.2, 1e-12);
  // And the recomputed row is bit-identical to a cold solve.
  SplubBounder fresh(&graph);
  const Interval reference = fresh.Bounds(0, 1);
  EXPECT_EQ(after.lo, reference.lo);
  EXPECT_EQ(after.hi, reference.hi);
}

// ---- Cross-scheme properties on random metric instances ----

struct SchemeCase {
  SchemeKind kind;
  // Bounds must be exactly the tightest (SPLUB/ADM) vs merely valid.
  bool tightest;
};

class BounderPropertyTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, uint64_t>> {};

TEST_P(BounderPropertyTest, BoundsAlwaysContainTrueDistance) {
  const auto [kind, seed] = GetParam();
  const ObjectId n = 24;
  ResolverStack stack = MakeRandomStack(n, seed);
  SchemeOptions options;
  options.seed = seed;
  auto bounder = MakeAndAttachScheme(kind, stack.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  ResolveRandomPairs(stack.resolver.get(), 60, seed + 1);

  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      const double truth = stack.oracle->Distance(i, j);
      const Interval b = stack.resolver->Bounds(i, j);
      ASSERT_LE(b.lo, truth + 1e-9)
          << SchemeKindName(kind) << " lb broken at (" << i << "," << j << ")";
      ASSERT_GE(b.hi, truth - 1e-9)
          << SchemeKindName(kind) << " ub broken at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, BounderPropertyTest,
    ::testing::Combine(::testing::Values(SchemeKind::kTri, SchemeKind::kSplub,
                                         SchemeKind::kAdm,
                                         SchemeKind::kAdmClassic,
                                         SchemeKind::kLaesa,
                                         SchemeKind::kTlaesa),
                       ::testing::Values(1001, 2002, 3003)));

class TightestBoundsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TightestBoundsTest, SplubMatchesIndependentReference) {
  const ObjectId n = 20;
  ResolverStack stack = MakeRandomStack(n, GetParam());
  ResolveRandomPairs(stack.resolver.get(), 50, GetParam() + 5);
  SplubBounder splub(stack.graph.get());
  ReferenceBounds reference(*stack.graph);
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      if (stack.graph->Has(i, j)) continue;
      const Interval b = splub.Bounds(i, j);
      if (reference.Tub(i, j) == kInfDistance) {
        EXPECT_EQ(b.hi, kInfDistance);
      } else {
        EXPECT_NEAR(b.hi, reference.Tub(i, j), 1e-12);
      }
      EXPECT_NEAR(b.lo, reference.Tlb(*stack.graph, i, j), 1e-12);
    }
  }
}

TEST_P(TightestBoundsTest, AdmProducesExactlySplubBounds) {
  // Paper Section 5.2(2): SPLUB produces *the exact* bounds as ADM.
  const ObjectId n = 20;
  ResolverStack stack = MakeRandomStack(n, GetParam() + 100);
  AdmBounder adm(stack.graph.get());
  stack.resolver->SetBounder(&adm);
  ResolveRandomPairs(stack.resolver.get(), 60, GetParam() + 6);
  SplubBounder splub(stack.graph.get());
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      if (stack.graph->Has(i, j)) continue;
      const Interval a = adm.Bounds(i, j);
      const Interval s = splub.Bounds(i, j);
      if (s.hi == kInfDistance) {
        EXPECT_EQ(a.hi, kInfDistance);
      } else {
        ASSERT_NEAR(a.hi, s.hi, 1e-9) << "(" << i << "," << j << ")";
      }
      ASSERT_NEAR(a.lo, s.lo, 1e-9) << "(" << i << "," << j << ")";
    }
  }
}

TEST_P(TightestBoundsTest, TriIsNeverTighterThanSplub) {
  const ObjectId n = 20;
  ResolverStack stack = MakeRandomStack(n, GetParam() + 200);
  ResolveRandomPairs(stack.resolver.get(), 70, GetParam() + 7);
  TriBounder tri(stack.graph.get());
  SplubBounder splub(stack.graph.get());
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      if (stack.graph->Has(i, j)) continue;
      const Interval t = tri.Bounds(i, j);
      const Interval s = splub.Bounds(i, j);
      ASSERT_LE(t.lo, s.lo + 1e-12);
      ASSERT_GE(t.hi, s.hi - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TightestBoundsTest,
                         ::testing::Values(31, 62, 93));

TEST(AdmBounderTest, FoldsEdgesResolvedBeforeAttachment) {
  ResolverStack stack = MakeRandomStack(10, 404);
  // Resolve some edges with no bounder attached, then attach ADM: its
  // constructor must fold the existing graph in.
  ResolveRandomPairs(stack.resolver.get(), 12, 3);
  AdmBounder adm(stack.graph.get());
  SplubBounder splub(stack.graph.get());
  for (ObjectId i = 0; i < 10; ++i) {
    for (ObjectId j = i + 1; j < 10; ++j) {
      if (stack.graph->Has(i, j)) continue;
      const Interval a = adm.Bounds(i, j);
      const Interval s = splub.Bounds(i, j);
      if (s.hi == kInfDistance) {
        EXPECT_EQ(a.hi, kInfDistance);
      } else {
        EXPECT_NEAR(a.hi, s.hi, 1e-9);
      }
    }
  }
}

TEST(LaesaBounderTest, PivotRowsGiveClassicPivotBounds) {
  ResolverStack stack = MakeRandomStack(12, 505);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  auto laesa = LaesaBounder::Build(12, 3, resolve, 1);
  ASSERT_EQ(laesa->num_pivots(), 3u);
  const PivotTable& table = laesa->table();
  for (ObjectId i = 0; i < 12; ++i) {
    for (ObjectId j = i + 1; j < 12; ++j) {
      double lb = 0.0;
      double ub = kInfDistance;
      for (uint32_t p = 0; p < 3; ++p) {
        lb = std::max(lb, std::abs(table.At(p, i) - table.At(p, j)));
        ub = std::min(ub, table.At(p, i) + table.At(p, j));
      }
      const Interval b = laesa->Bounds(i, j);
      EXPECT_DOUBLE_EQ(b.lo, std::min(lb, ub));
      EXPECT_DOUBLE_EQ(b.hi, ub);
    }
  }
}

TEST(TlaesaBounderTest, BoundsValidAndRootPivotShared) {
  ResolverStack stack = MakeRandomStack(40, 606);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  TlaesaBounder::Options options;
  options.leaf_size = 4;
  auto tlaesa = TlaesaBounder::Build(40, options, resolve);
  EXPECT_GT(tlaesa->table_entries(), 40u);  // deeper than just the root
  for (ObjectId i = 0; i < 40; ++i) {
    for (ObjectId j = i + 1; j < 40; ++j) {
      const Interval b = tlaesa->Bounds(i, j);
      const double truth = stack.oracle->Distance(i, j);
      ASSERT_LE(b.lo, truth + 1e-9);
      ASSERT_GE(b.hi, truth - 1e-9);
      // The root representative is a common ancestor of every pair, so the
      // upper bound is always finite.
      ASSERT_LT(b.hi, kInfDistance);
    }
  }
}

TEST(AdmClassicBounderTest, NeverTighterThanQueryTimeAdm) {
  // Classic incremental LBs can go stale but must stay valid and can never
  // beat the query-time tightest bounds.
  ResolverStack stack = MakeRandomStack(18, 505);
  AdmClassicBounder classic(stack.graph.get());
  stack.resolver->SetBounder(&classic);
  ResolveRandomPairs(stack.resolver.get(), 50, 6);
  AdmBounder tight(stack.graph.get());
  for (ObjectId i = 0; i < 18; ++i) {
    for (ObjectId j = i + 1; j < 18; ++j) {
      if (stack.graph->Has(i, j)) continue;
      const Interval c = classic.Bounds(i, j);
      const Interval t = tight.Bounds(i, j);
      ASSERT_LE(c.lo, t.lo + 1e-9) << "(" << i << "," << j << ")";
      // Upper bounds are exact shortest paths in both variants.
      if (t.hi == kInfDistance) {
        ASSERT_EQ(c.hi, kInfDistance);
      } else {
        ASSERT_NEAR(c.hi, t.hi, 1e-9);
      }
    }
  }
}

TEST(AdmClassicBounderTest, KnownEdgeBecomesExact) {
  PartialDistanceGraph graph(5);
  AdmClassicBounder classic(&graph);
  graph.Insert(1, 3, 0.4);
  classic.OnEdgeResolved(1, 3, 0.4);
  const Interval b = classic.Bounds(1, 3);
  EXPECT_TRUE(b.IsExact());
  EXPECT_DOUBLE_EQ(b.lo, 0.4);
}

TEST(HybridBounderTest, IntersectionIsAtLeastAsTightAsBothParts) {
  ResolverStack stack = MakeRandomStack(20, 606);
  SchemeOptions options;
  auto hybrid =
      MakeAndAttachScheme(SchemeKind::kHybrid, stack.resolver.get(), options);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status();
  EXPECT_EQ((*hybrid)->name(), "tri+laesa");
  ResolveRandomPairs(stack.resolver.get(), 40, 7);

  // Rebuild the parts over the same graph/pivot seed for comparison.
  TriBounder tri(stack.graph.get());
  const ResolveFn raw = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  auto laesa = LaesaBounder::Build(20, DefaultNumLandmarks(20), raw,
                                   options.seed);
  for (ObjectId i = 0; i < 20; ++i) {
    for (ObjectId j = i + 1; j < 20; ++j) {
      if (stack.graph->Has(i, j)) continue;
      const Interval h = (*hybrid)->Bounds(i, j);
      const double truth = stack.oracle->Distance(i, j);
      ASSERT_LE(h.lo, truth + 1e-9);
      ASSERT_GE(h.hi, truth - 1e-9);
      const Interval t = tri.Bounds(i, j);
      const Interval l = laesa->Bounds(i, j);
      ASSERT_GE(h.lo + 1e-12, std::max(t.lo, l.lo));
      ASSERT_LE(h.hi - 1e-12, std::min(t.hi, l.hi));
    }
  }
}

TEST(NullBounderTest, AlwaysUnbounded) {
  NullBounder null;
  EXPECT_EQ(null.Bounds(0, 1), Interval::Unbounded());
  EXPECT_FALSE(null.DecideLessThan(0, 1, 0.5).has_value());
  EXPECT_FALSE(null.DecidePairLess(0, 1, 2, 3).has_value());
  // Only a clearly negative threshold is decidable from [0, inf) — a
  // threshold of exactly 0 falls inside the fp-safety margin.
  EXPECT_FALSE(null.DecideLessThan(0, 1, 0.0).has_value());
  auto decided = null.DecideLessThan(0, 1, -0.5);
  ASSERT_TRUE(decided.has_value());
  EXPECT_FALSE(*decided);
}

TEST(SchemeFactoryTest, NamesRoundTrip) {
  for (SchemeKind kind :
       {SchemeKind::kNone, SchemeKind::kTri, SchemeKind::kSplub,
        SchemeKind::kAdm, SchemeKind::kAdmClassic, SchemeKind::kLaesa,
        SchemeKind::kTlaesa, SchemeKind::kDft, SchemeKind::kHybrid}) {
    auto parsed = ParseSchemeKind(SchemeKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseSchemeKind("bogus").ok());
}

TEST(SchemeFactoryTest, LaesaConstructionChargesResolver) {
  ResolverStack stack = MakeRandomStack(16, 707);
  SchemeOptions options;
  options.num_landmarks = 4;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kLaesa, stack.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  // 4 pivots x up-to-15 others, minus pivot-pivot pairs resolved once.
  EXPECT_GT(stack.resolver->stats().oracle_calls, 0u);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, stack.graph->num_edges());
}

TEST(BootstrapTest, ResolvesLandmarkStarIntoGraph) {
  ResolverStack stack = MakeRandomStack(20, 808);
  const uint64_t calls = BootstrapWithLandmarks(stack.resolver.get(), 3, 9);
  EXPECT_EQ(calls, stack.graph->num_edges());
  EXPECT_GT(calls, 0u);
  // Each landmark's star is fully resolved: some node must now have a
  // degree of at least n-3 (a landmark reaches all but the other pivots'
  // shared pairs).
  size_t max_degree = 0;
  for (ObjectId v = 0; v < 20; ++v) {
    max_degree = std::max(max_degree, stack.graph->Degree(v));
  }
  EXPECT_GE(max_degree, 17u);
}

}  // namespace
}  // namespace metricprox
