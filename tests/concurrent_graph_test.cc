// ConcurrentDistanceGraph: the striped shared data plane of the session
// layer. These tests pin (a) exact semantic parity with the single-threaded
// PartialDistanceGraph (duplicate skip, conflicting-edge CHECK, adjacency
// contents), (b) linearizable final state under concurrent writers over
// disjoint and overlapping shards, and (c) the snapshot invariants bound
// scans rely on — sorted, consistent columns and per-node batch atomicity —
// while a writer hammers the same node. The last two tests are the
// regression layer for the satellite bugfix: the SIMD dispatch tier is read
// concurrently with SetTier (fails under TSan on the pre-atomic layout),
// and per-bounder TriMergeBounds scratch no longer aliases across bounders
// sharing a thread.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bounds/tri.h"
#include "core/simd.h"
#include "core/types.h"
#include "graph/concurrent_graph.h"
#include "graph/partial_graph.h"

namespace metricprox {
namespace {

/// Deterministic pseudo-distance for edge (u, v): strictly positive and a
/// pure function of the pair, so racing threads inserting the same edge
/// always agree (the exact-duplicate case, never the conflicting one).
double EdgeWeight(ObjectId u, ObjectId v) {
  const EdgeKey key(u, v);
  return 1.0 + static_cast<double>(key.lo()) * 0.25 +
         static_cast<double>(key.hi()) * 0.0625;
}

std::vector<WeightedEdge> CompleteGraphEdges(ObjectId n) {
  std::vector<WeightedEdge> edges;
  for (ObjectId u = 0; u < n; ++u) {
    for (ObjectId v = u + 1; v < n; ++v) {
      edges.push_back(WeightedEdge{u, v, EdgeWeight(u, v)});
    }
  }
  return edges;
}

std::vector<WeightedEdge> CanonicalSort(std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return EdgeKey(a.u, a.v) < EdgeKey(b.u, b.v);
            });
  return edges;
}

/// Checks the concurrent graph holds exactly the same state the
/// single-threaded graph reaches from the same edge set.
void ExpectParity(const ConcurrentDistanceGraph& got,
                  const PartialDistanceGraph& want) {
  ASSERT_EQ(got.num_objects(), want.num_objects());
  EXPECT_EQ(got.num_edges(), want.num_edges());
  const std::vector<WeightedEdge> got_edges = got.Edges();
  const std::vector<WeightedEdge> want_edges = CanonicalSort(want.edges());
  ASSERT_EQ(got_edges.size(), want_edges.size());
  for (size_t k = 0; k < got_edges.size(); ++k) {
    EXPECT_EQ(got_edges[k].u, want_edges[k].u);
    EXPECT_EQ(got_edges[k].v, want_edges[k].v);
    EXPECT_EQ(got_edges[k].weight, want_edges[k].weight);
  }
  for (ObjectId i = 0; i < got.num_objects(); ++i) {
    const ConcurrentDistanceGraph::Snapshot snap = got.AdjacencySnapshot(i);
    const PartialDistanceGraph::AdjacencyColumns cols = want.AdjacencyView(i);
    ASSERT_EQ(snap->ids.size(), cols.ids.size()) << "node " << i;
    for (size_t k = 0; k < cols.ids.size(); ++k) {
      EXPECT_EQ(snap->ids[k], cols.ids[k]) << "node " << i;
      EXPECT_EQ(snap->distances[k], cols.distances[k]) << "node " << i;
    }
  }
}

TEST(ConcurrentGraphTest, SingleThreadedParityWithPartialGraph) {
  const ObjectId n = 24;
  const std::vector<WeightedEdge> edges = CompleteGraphEdges(n);
  ConcurrentDistanceGraph concurrent(n, /*num_shards=*/4);
  PartialDistanceGraph reference(n);
  EXPECT_EQ(concurrent.InsertEdges(edges), edges.size());
  reference.InsertEdges(std::vector<ResolvedEdge>(edges.begin(), edges.end()));
  ExpectParity(concurrent, reference);
  EXPECT_TRUE(concurrent.Has(0, 1));
  EXPECT_FALSE(concurrent.Has(0, 0));
  EXPECT_EQ(concurrent.Get(2, 7), EdgeWeight(2, 7));
  EXPECT_EQ(concurrent.Degree(0), static_cast<size_t>(n - 1));
}

TEST(ConcurrentGraphTest, DuplicateSemanticsMatchSingleThreadedGraph) {
  ConcurrentDistanceGraph graph(8);
  EXPECT_TRUE(graph.Insert(1, 2, 3.5));
  // Exact duplicate (either orientation): skipped, reported as stale.
  EXPECT_FALSE(graph.Insert(1, 2, 3.5));
  EXPECT_FALSE(graph.Insert(2, 1, 3.5));
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_EQ(graph.Degree(1), 1u);
  // A batch replay mixing stale and fresh edges counts only the fresh ones,
  // exactly like PartialDistanceGraph::InsertEdges.
  const std::vector<WeightedEdge> batch = {
      {1, 2, 3.5}, {2, 3, 1.0}, {3, 4, 2.0}};
  EXPECT_EQ(graph.InsertEdges(batch), 2u);
  EXPECT_EQ(graph.num_edges(), 3u);
}

TEST(ConcurrentGraphDeathTest, ConflictingDuplicateChecks) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ConcurrentDistanceGraph graph(8);
  ASSERT_TRUE(graph.Insert(1, 2, 3.5));
  EXPECT_DEATH(graph.Insert(1, 2, 4.0), "conflicting duplicate edge");
  EXPECT_DEATH(graph.Insert(2, 1, 4.0), "conflicting duplicate edge");
  EXPECT_DEATH(graph.Insert(3, 3, 1.0), "self-edge");
  EXPECT_DEATH(graph.Insert(1, 2, -1.0), "negative distance");
}

TEST(ConcurrentGraphTest, ConcurrentDisjointShardInserts) {
  // Each worker owns a disjoint node range, so its node shards (i % shards)
  // and edge keys never collide with another worker's: the pure
  // partitioned-write case.
  const ObjectId nodes_per_worker = 16;
  const unsigned workers = 4;
  const ObjectId n = nodes_per_worker * workers;
  ConcurrentDistanceGraph graph(n, /*num_shards=*/workers* nodes_per_worker);
  std::vector<std::thread> threads;
  std::vector<size_t> fresh(workers, 0);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const ObjectId base = w * nodes_per_worker;
      std::vector<WeightedEdge> mine;
      for (ObjectId u = base; u < base + nodes_per_worker; ++u) {
        for (ObjectId v = u + 1; v < base + nodes_per_worker; ++v) {
          mine.push_back(WeightedEdge{u, v, EdgeWeight(u, v)});
        }
      }
      fresh[w] = graph.InsertEdges(mine);
    });
  }
  for (std::thread& t : threads) t.join();

  PartialDistanceGraph reference(n);
  size_t expected = 0;
  for (unsigned w = 0; w < workers; ++w) {
    const ObjectId base = w * nodes_per_worker;
    for (ObjectId u = base; u < base + nodes_per_worker; ++u) {
      for (ObjectId v = u + 1; v < base + nodes_per_worker; ++v) {
        reference.Insert(u, v, EdgeWeight(u, v));
        ++expected;
      }
    }
    EXPECT_EQ(fresh[w], nodes_per_worker * (nodes_per_worker - 1) / 2u);
  }
  EXPECT_EQ(graph.num_edges(), expected);
  ExpectParity(graph, reference);
}

TEST(ConcurrentGraphTest, ConcurrentOverlappingExactDuplicates) {
  // Every worker inserts the SAME complete graph: the racing-sessions case.
  // Exactly one thread wins each edge, the rest observe a silent skip, and
  // the final state equals a single sequential insertion.
  const ObjectId n = 20;
  const unsigned workers = 4;
  const std::vector<WeightedEdge> edges = CompleteGraphEdges(n);
  ConcurrentDistanceGraph graph(n, /*num_shards=*/3);  // forced collisions
  std::vector<size_t> fresh(workers, 0);
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      // Different insertion orders maximize interleavings.
      std::vector<WeightedEdge> mine = edges;
      if (w % 2 == 1) std::reverse(mine.begin(), mine.end());
      fresh[w] = graph.InsertEdges(mine);
    });
  }
  for (std::thread& t : threads) t.join();

  size_t total_fresh = 0;
  for (const size_t f : fresh) total_fresh += f;
  EXPECT_EQ(total_fresh, edges.size());  // each edge won exactly once
  PartialDistanceGraph reference(n);
  reference.InsertEdges(std::vector<ResolvedEdge>(edges.begin(), edges.end()));
  ExpectParity(graph, reference);
}

TEST(ConcurrentGraphTest, SnapshotInvariantsUnderHammeringWriter) {
  // A writer inserts batches of edges incident to node 0 — each batch
  // tagged by its weight — while readers snapshot node 0 continuously.
  // Every snapshot must be sorted and consistent, sizes must only grow, and
  // a batch must appear atomically (all of its edges or none).
  const ObjectId batch_size = 8;
  const ObjectId batches = 40;
  const ObjectId n = 1 + batch_size * batches;
  ConcurrentDistanceGraph graph(n, /*num_shards=*/4);
  std::atomic<bool> done{false};

  auto batch_of = [&](ObjectId id) { return (id - 1) / batch_size; };
  auto weight_of = [&](ObjectId id) {
    return 1.0 + static_cast<double>(batch_of(id));
  };

  std::vector<std::thread> readers;
  std::atomic<uint64_t> snapshots_seen{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      size_t last_size = 0;
      while (!done.load(std::memory_order_acquire)) {
        const ConcurrentDistanceGraph::Snapshot snap =
            graph.AdjacencySnapshot(0);
        ASSERT_EQ(snap->ids.size(), snap->distances.size());
        ASSERT_GE(snap->ids.size(), last_size);  // columns only grow
        last_size = snap->ids.size();
        ASSERT_EQ(snap->ids.size() % batch_size, 0u)
            << "snapshot observed a half-inserted batch";
        std::vector<ObjectId> per_batch(batches, 0);
        for (size_t k = 0; k < snap->ids.size(); ++k) {
          if (k > 0) {
            ASSERT_LT(snap->ids[k - 1], snap->ids[k])
                << "snapshot ids not strictly ascending";
          }
          ASSERT_EQ(snap->distances[k], weight_of(snap->ids[k]))
              << "snapshot pairs a neighbor with another batch's distance";
          ++per_batch[batch_of(snap->ids[k])];
        }
        for (ObjectId g = 0; g < batches; ++g) {
          ASSERT_TRUE(per_batch[g] == 0 || per_batch[g] == batch_size)
              << "batch " << g << " observed partially (" << per_batch[g]
              << " of " << batch_size << " edges)";
        }
        snapshots_seen.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (ObjectId g = 0; g < batches; ++g) {
    std::vector<WeightedEdge> batch;
    for (ObjectId k = 0; k < batch_size; ++k) {
      const ObjectId v = 1 + g * batch_size + k;
      batch.push_back(WeightedEdge{0, v, weight_of(v)});
    }
    ASSERT_EQ(graph.InsertEdges(batch), batch.size());
  }
  // The writer can outrun a cold reader; keep readers sampling the (now
  // complete) columns until every one of them has reported snapshots.
  while (snapshots_seen.load(std::memory_order_relaxed) < 10) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(snapshots_seen.load(), 0u);
  EXPECT_EQ(graph.Degree(0), static_cast<size_t>(batch_size * batches));
  // A snapshot taken before the writer finished stays frozen even though
  // the graph moved on — immutability of published epochs.
  const ConcurrentDistanceGraph::Snapshot final_snap =
      graph.AdjacencySnapshot(0);
  graph.Insert(1, 2, EdgeWeight(1, 2));
  EXPECT_EQ(final_snap->ids.size(), static_cast<size_t>(batch_size * batches));
}

// ---------------------------------------------------------------------------
// Satellite-bugfix regression layer: mutable state on the bound path.
// ---------------------------------------------------------------------------

// The SIMD dispatch tier is process-global and read on every bound scan;
// SetTier may legitimately run while other threads (concurrent sessions)
// are scanning. On the pre-fix layout the tier lived in a plain static and
// this test is a data race under TSan; with the atomic tier every reader
// observes either the old or the new tier — both valid kernel tables.
TEST(SimdDispatchRaceTest, ConcurrentSetTierAndBoundScans) {
  const simd::Tier original = simd::ActiveTier();
  PartialDistanceGraph graph(16);
  for (ObjectId u = 0; u < 16; ++u) {
    for (ObjectId v = u + 1; v < 16; ++v) {
      graph.Insert(u, v, EdgeWeight(u, v));
    }
  }
  // The unique correct answer, computed before any concurrency: tri merges
  // only the COMMON neighbors of (0, 1), so the interval is not a point
  // even though the direct edge exists — but it is bit-identical on every
  // tier, so scans racing a tier switch must reproduce it exactly.
  TriBounder reference_bounder(&graph);
  const Interval reference = reference_bounder.Bounds(0, 1);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> scans{0};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 3; ++t) {
    scanners.emplace_back([&] {
      TriBounder bounder(&graph);
      while (!done.load(std::memory_order_acquire)) {
        const simd::Tier tier = simd::ActiveTier();
        bool valid = false;
        for (const simd::Tier known : simd::kAllTiers) {
          valid = valid || tier == known;
        }
        // EXPECT (not ASSERT): a failing scanner must keep looping and
        // bumping `scans`, or the main thread below could spin forever.
        EXPECT_TRUE(valid);
        const Interval bounds = bounder.Bounds(0, 1);
        EXPECT_EQ(bounds.lo, reference.lo);
        EXPECT_EQ(bounds.hi, reference.hi);
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Keep flipping until every scanner had real work overlapping the flips —
  // otherwise fast main-thread scheduling ends the test before a single
  // racing scan happened and the assertions above are vacuous.
  int flip = 0;
  while (flip < 200 || scans.load(std::memory_order_relaxed) < 30) {
    simd::SetTier(simd::kAllTiers[flip % 3]);
    ++flip;
    if (flip >= 200) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : scanners) t.join();
  EXPECT_GE(scans.load(), 30u);
  simd::SetTier(original);
}

// Two TriBounders driven alternately from ONE thread must not share merge
// scratch: with the old thread_local buffers both bounders aliased the same
// per-thread vectors (harmless then, a lifetime trap under sessions); the
// scratch is now owned per bounder instance. Interleaved scans must equal
// fresh isolated scans bit for bit.
TEST(TriScratchTest, InterleavedBoundersDoNotShareScratch) {
  PartialDistanceGraph a(8);
  PartialDistanceGraph b(8);
  for (ObjectId u = 0; u < 8; ++u) {
    for (ObjectId v = u + 1; v < 8; ++v) {
      if ((u + v) % 3 != 0) a.Insert(u, v, EdgeWeight(u, v));
      if ((u + v) % 2 != 0) b.Insert(u, v, 2.0 * EdgeWeight(u, v));
    }
  }
  TriBounder bounder_a(&a);
  TriBounder bounder_b(&b);
  for (ObjectId u = 0; u < 8; ++u) {
    for (ObjectId v = u + 1; v < 8; ++v) {
      const Interval ia = bounder_a.Bounds(u, v);
      const Interval ib = bounder_b.Bounds(u, v);  // interleaved on purpose
      TriBounder fresh_a(&a);
      TriBounder fresh_b(&b);
      const Interval ra = fresh_a.Bounds(u, v);
      const Interval rb = fresh_b.Bounds(u, v);
      EXPECT_EQ(ia.lo, ra.lo);
      EXPECT_EQ(ia.hi, ra.hi);
      EXPECT_EQ(ib.lo, rb.lo);
      EXPECT_EQ(ib.hi, rb.hi);
    }
  }
}

// And from MANY threads: one TriBounder per thread over a shared immutable
// graph, scanning concurrently while the dispatch tier flips. TSan-clean
// only with per-instance scratch and the atomic tier.
TEST(TriScratchTest, ConcurrentPerSessionBoundersAreRaceFree) {
  const simd::Tier original = simd::ActiveTier();
  const ObjectId n = 24;
  PartialDistanceGraph graph(n);
  for (ObjectId u = 0; u < n; ++u) {
    for (ObjectId v = u + 1; v < n; ++v) {
      if ((u * 7 + v) % 5 != 0) graph.Insert(u, v, EdgeWeight(u, v));
    }
  }
  // Reference intervals computed single-threaded.
  std::vector<Interval> want;
  {
    TriBounder bounder(&graph);
    for (ObjectId u = 0; u < n; ++u) {
      for (ObjectId v = u + 1; v < n; ++v) {
        want.push_back(bounder.Bounds(u, v));
      }
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      TriBounder bounder(&graph);
      size_t k = 0;
      for (ObjectId u = 0; u < n; ++u) {
        for (ObjectId v = u + 1; v < n; ++v, ++k) {
          const Interval got = bounder.Bounds(u, v);
          ASSERT_EQ(got.lo, want[k].lo);
          ASSERT_EQ(got.hi, want[k].hi);
        }
      }
    });
  }
  std::thread flipper([&] {
    for (int flip = 0; flip < 100; ++flip) {
      simd::SetTier(simd::kAllTiers[flip % 3]);
    }
  });
  for (std::thread& t : threads) t.join();
  flipper.join();
  simd::SetTier(original);
}

}  // namespace
}  // namespace metricprox
