#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "algo/kcenter.h"
#include "algo/prim.h"
#include "algo/tsp.h"
#include "bounds/scheme.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

TEST(KCenterTest, RadiusMatchesBruteForceRecount) {
  ResolverStack stack = MakeRandomStack(30, 61);
  const KCenterResult result = KCenterCluster(stack.resolver.get(), 4);
  ASSERT_EQ(result.centers.size(), 4u);
  double radius = 0.0;
  for (ObjectId j = 0; j < 30; ++j) {
    double best = kInfDistance;
    for (ObjectId c : result.centers) {
      best = std::min(best, j == c ? 0.0 : stack.oracle->Distance(j, c));
    }
    radius = std::max(radius, best);
  }
  EXPECT_NEAR(result.radius, radius, 1e-9);
}

TEST(KCenterTest, CentersAreDistinct) {
  ResolverStack stack = MakeRandomStack(25, 62);
  const KCenterResult result = KCenterCluster(stack.resolver.get(), 6);
  std::set<ObjectId> unique(result.centers.begin(), result.centers.end());
  EXPECT_EQ(unique.size(), result.centers.size());
}

class KCenterSchemeEquivalenceTest
    : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(KCenterSchemeEquivalenceTest, SameCentersUnderEveryScheme) {
  const SchemeKind kind = GetParam();
  ResolverStack vanilla = MakeRandomStack(28, 63);
  const KCenterResult expected = KCenterCluster(vanilla.resolver.get(), 5);

  ResolverStack plugged = MakeRandomStack(28, 63);
  SchemeOptions options;
  auto bounder = MakeAndAttachScheme(kind, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const KCenterResult got = KCenterCluster(plugged.resolver.get(), 5);
  EXPECT_EQ(got.centers, expected.centers)
      << "scheme " << SchemeKindName(kind);
  EXPECT_NEAR(got.radius, expected.radius, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, KCenterSchemeEquivalenceTest,
                         ::testing::Values(SchemeKind::kTri,
                                           SchemeKind::kSplub,
                                           SchemeKind::kLaesa,
                                           SchemeKind::kTlaesa));

TEST(KCenterTest, SingleCenterIsJustTheSeed) {
  ResolverStack stack = MakeRandomStack(10, 64);
  const KCenterResult result = KCenterCluster(stack.resolver.get(), 1, 3);
  ASSERT_EQ(result.centers.size(), 1u);
  EXPECT_EQ(result.centers[0], 3u);
  EXPECT_GT(result.radius, 0.0);
}

TEST(TspTest, TourIsAPermutation) {
  ResolverStack stack = MakeRandomStack(21, 65);
  const TspTour tour = TspTwoApproximation(stack.resolver.get());
  ASSERT_EQ(tour.order.size(), 21u);
  std::set<ObjectId> unique(tour.order.begin(), tour.order.end());
  EXPECT_EQ(unique.size(), 21u);
}

TEST(TspTest, LengthMatchesRecountAndTwoApproxBound) {
  ResolverStack stack = MakeRandomStack(18, 66);
  const TspTour tour = TspTwoApproximation(stack.resolver.get());
  double recount = 0.0;
  for (size_t i = 0; i < tour.order.size(); ++i) {
    recount += stack.oracle->Distance(
        tour.order[i], tour.order[(i + 1) % tour.order.size()]);
  }
  EXPECT_NEAR(tour.length, recount, 1e-9);

  ResolverStack mst_stack = MakeRandomStack(18, 66);
  const MstResult mst = PrimMst(mst_stack.resolver.get());
  // Preorder shortcutting over a metric never exceeds twice the MST, and
  // any tour is at least the MST weight.
  EXPECT_LE(tour.length, 2.0 * mst.total_weight + 1e-9);
  EXPECT_GE(tour.length, mst.total_weight - 1e-9);
}

TEST(TspTest, SchemeDoesNotChangeTheTour) {
  ResolverStack vanilla = MakeRandomStack(16, 67);
  const TspTour expected = TspTwoApproximation(vanilla.resolver.get());

  ResolverStack plugged = MakeRandomStack(16, 67);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const TspTour got = TspTwoApproximation(plugged.resolver.get());
  EXPECT_EQ(got.order, expected.order);
  EXPECT_NEAR(got.length, expected.length, 1e-9);
}

}  // namespace
}  // namespace metricprox
