#include "algo/dbscan.h"

#include <set>

#include <gtest/gtest.h>

#include "algo/reference.h"
#include "algo/search.h"
#include "bounds/scheme.h"
#include "data/synthetic.h"
#include "oracle/vector_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeFamilyStack;
using testing_util::MakeRandomStack;
using testing_util::MetricFamily;
using testing_util::ResolverStack;

ResolverStack MakeClusteredStack(ObjectId n, uint64_t seed) {
  ResolverStack stack;
  stack.oracle = std::make_unique<VectorOracle>(
      GaussianMixturePoints(n, 2, /*num_clusters=*/4, /*range=*/100.0,
                            /*spread=*/1.5, seed),
      VectorMetric::kEuclidean);
  stack.graph = std::make_unique<PartialDistanceGraph>(n);
  stack.resolver =
      std::make_unique<BoundedResolver>(stack.oracle.get(), stack.graph.get());
  return stack;
}

TEST(DbscanTest, RecoversPlantedClustersAndNoise) {
  // Four well-separated Gaussian blobs with tight spread: DBSCAN with a
  // matching eps must find exactly 4 clusters and little/no noise.
  ResolverStack stack = MakeClusteredStack(80, 6);
  DbscanOptions options;
  options.eps = 8.0;
  options.min_pts = 4;
  const DbscanResult result = DbscanCluster(stack.resolver.get(), options);
  EXPECT_EQ(result.num_clusters, 4u);
  int noise = 0;
  for (const int32_t label : result.labels) {
    if (label == DbscanResult::kNoise) ++noise;
  }
  EXPECT_LT(noise, 4);
}

TEST(DbscanTest, MatchesReferenceImplementation) {
  for (uint64_t seed : {2ull, 3ull, 4ull}) {
    ResolverStack stack = MakeRandomStack(40, seed);
    DbscanOptions options;
    options.eps = 0.55 + 0.05 * static_cast<double>(seed);
    options.min_pts = 3;
    const DbscanResult expected =
        ReferenceDbscan(stack.oracle.get(), options);
    const DbscanResult got = DbscanCluster(stack.resolver.get(), options);
    EXPECT_EQ(got.num_clusters, expected.num_clusters) << "seed " << seed;
    EXPECT_EQ(got.labels, expected.labels) << "seed " << seed;
  }
}

class DbscanSchemeEquivalenceTest
    : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(DbscanSchemeEquivalenceTest, IdenticalLabelsUnderEveryScheme) {
  ResolverStack vanilla = MakeClusteredStack(60, 5);
  DbscanOptions options;
  options.eps = 7.0;
  options.min_pts = 4;
  const DbscanResult expected =
      DbscanCluster(vanilla.resolver.get(), options);

  ResolverStack plugged = MakeClusteredStack(60, 5);
  SchemeOptions scheme_options;
  auto bounder =
      MakeAndAttachScheme(GetParam(), plugged.resolver.get(), scheme_options);
  ASSERT_TRUE(bounder.ok());
  const DbscanResult got = DbscanCluster(plugged.resolver.get(), options);
  EXPECT_EQ(got.labels, expected.labels)
      << "scheme " << SchemeKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DbscanSchemeEquivalenceTest,
                         ::testing::Values(SchemeKind::kTri,
                                           SchemeKind::kSplub,
                                           SchemeKind::kLaesa,
                                           SchemeKind::kTlaesa,
                                           SchemeKind::kHybrid));

TEST(DbscanTest, TriSavesCallsOnClusteredData) {
  ResolverStack vanilla = MakeClusteredStack(96, 6);
  DbscanOptions options;
  options.eps = 7.0;
  options.min_pts = 4;
  DbscanCluster(vanilla.resolver.get(), options);
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = MakeClusteredStack(96, 6);
  BootstrapWithLandmarks(plugged.resolver.get(), 7, 1);
  SchemeOptions scheme_options;
  auto bounder = MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(),
                                     scheme_options);
  ASSERT_TRUE(bounder.ok());
  DbscanCluster(plugged.resolver.get(), options);
  EXPECT_LT(plugged.resolver->stats().oracle_calls, baseline / 2)
      << "range-query workloads should be a best case for triangle pruning";
}

// ---------------------------------------------------------------------------
// Tie semantics at the range boundary. The near-degenerate family quantizes
// raw weights to a 0.01 grid, so after closure many pairs share *exact*
// distance values; picking the radius as one of those values forces
// d == radius boundary points through both the reference scan and the
// framework's triage (ProvenGreaterThan discard + inclusive include). The
// differential tests pin that both classify every boundary point
// identically — the bugfix contract for the range/DBSCAN path.
// ---------------------------------------------------------------------------

TEST(RangeSearchTieTest, BoundaryPointsClassifyIdentically) {
  for (uint64_t seed : {11ull, 12ull, 13ull}) {
    ResolverStack stack =
        MakeFamilyStack(MetricFamily::kNearDegenerate, 36, seed);
    const ObjectId n = stack.oracle->num_objects();
    for (ObjectId query : {ObjectId{0}, ObjectId{7}, ObjectId{19}}) {
      // An exactly achieved distance, so at least one point sits on the
      // boundary (typically several, thanks to the quantized grid).
      const double radius =
          stack.oracle->Distance(query, (query + 5) % n);
      const std::vector<KnnNeighbor> expected =
          ReferenceRangeSearch(stack.oracle.get(), query, radius);
      size_t boundary = 0;
      for (const KnnNeighbor& nb : expected) {
        if (nb.distance == radius) ++boundary;
      }
      ASSERT_GE(boundary, 1u) << "tie test is vacuous";
      const std::vector<KnnNeighbor> got =
          RangeSearch(stack.resolver.get(), query, radius);
      EXPECT_EQ(got, expected)
          << "seed " << seed << " query " << query << " radius " << radius;
    }
  }
}

TEST(RangeSearchTieTest, BoundaryTiesSurviveBoundTriage) {
  // Same differential, but with real bound schemes triaging candidates: a
  // scheme that discarded d == radius (or included d > radius) would
  // diverge from the oracle-only reference here.
  for (const SchemeKind scheme : {SchemeKind::kTri, SchemeKind::kSplub}) {
    for (uint64_t seed : {21ull, 22ull}) {
      ResolverStack stack =
          MakeFamilyStack(MetricFamily::kNearDegenerate, 36, seed);
      const ObjectId n = stack.oracle->num_objects();
      BootstrapWithLandmarks(stack.resolver.get(), 5, seed);
      SchemeOptions options;
      auto bounder =
          MakeAndAttachScheme(scheme, stack.resolver.get(), options);
      ASSERT_TRUE(bounder.ok());
      for (ObjectId query : {ObjectId{2}, ObjectId{13}}) {
        const double radius =
            stack.oracle->Distance(query, (query + 9) % n);
        EXPECT_EQ(RangeSearch(stack.resolver.get(), query, radius),
                  ReferenceRangeSearch(stack.oracle.get(), query, radius))
            << SchemeKindName(scheme) << " seed " << seed << " query "
            << query;
      }
    }
  }
}

TEST(DbscanTieTest, BoundaryEpsClassifiesIdentically) {
  // DBSCAN with eps picked as an exactly achieved distance: core/border
  // membership of d == eps points must match the oracle-only reference,
  // vanilla and under bound schemes alike.
  for (uint64_t seed : {31ull, 32ull, 33ull}) {
    ResolverStack stack =
        MakeFamilyStack(MetricFamily::kNearDegenerate, 40, seed);
    DbscanOptions options;
    options.eps = stack.oracle->Distance(0, 1);
    options.min_pts = 3;
    const DbscanResult expected =
        ReferenceDbscan(stack.oracle.get(), options);
    const DbscanResult vanilla =
        DbscanCluster(stack.resolver.get(), options);
    EXPECT_EQ(vanilla.num_clusters, expected.num_clusters) << "seed " << seed;
    EXPECT_EQ(vanilla.labels, expected.labels) << "seed " << seed;

    for (const SchemeKind scheme : {SchemeKind::kTri, SchemeKind::kSplub}) {
      ResolverStack plugged =
          MakeFamilyStack(MetricFamily::kNearDegenerate, 40, seed);
      SchemeOptions scheme_options;
      auto bounder =
          MakeAndAttachScheme(scheme, plugged.resolver.get(), scheme_options);
      ASSERT_TRUE(bounder.ok());
      const DbscanResult got = DbscanCluster(plugged.resolver.get(), options);
      EXPECT_EQ(got.labels, expected.labels)
          << SchemeKindName(scheme) << " seed " << seed;
    }
  }
}

TEST(DbscanTest, AllNoiseWhenEpsTiny) {
  ResolverStack stack = MakeRandomStack(20, 7);
  DbscanOptions options;
  options.eps = 1e-6;
  options.min_pts = 3;
  const DbscanResult result = DbscanCluster(stack.resolver.get(), options);
  EXPECT_EQ(result.num_clusters, 0u);
  for (const int32_t label : result.labels) {
    EXPECT_EQ(label, DbscanResult::kNoise);
  }
}

TEST(DbscanTest, OneClusterWhenEpsHuge) {
  ResolverStack stack = MakeRandomStack(20, 8);
  DbscanOptions options;
  options.eps = 10.0;  // metric is normalized to diameter 1
  options.min_pts = 3;
  const DbscanResult result = DbscanCluster(stack.resolver.get(), options);
  EXPECT_EQ(result.num_clusters, 1u);
  for (const int32_t label : result.labels) EXPECT_EQ(label, 0);
}

}  // namespace
}  // namespace metricprox
