#include "algo/dbscan.h"

#include <deque>
#include <set>

#include <gtest/gtest.h>

#include "bounds/scheme.h"
#include "data/synthetic.h"
#include "oracle/vector_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

// Straightforward textbook DBSCAN over the raw oracle, as the ground truth.
DbscanResult ReferenceDbscan(DistanceOracle* oracle,
                             const DbscanOptions& options) {
  const ObjectId n = oracle->num_objects();
  auto neighbors = [&](ObjectId p) {
    std::vector<ObjectId> out;
    for (ObjectId v = 0; v < n; ++v) {
      if (v != p && oracle->Distance(p, v) <= options.eps) out.push_back(v);
    }
    return out;
  };

  DbscanResult result;
  constexpr int32_t kUnvisited = -2;
  std::vector<int32_t> state(n, kUnvisited);
  for (ObjectId p = 0; p < n; ++p) {
    if (state[p] != kUnvisited) continue;
    const auto hood = neighbors(p);
    if (hood.size() + 1 < options.min_pts) {
      state[p] = DbscanResult::kNoise;
      continue;
    }
    const int32_t cluster = static_cast<int32_t>(result.num_clusters++);
    state[p] = cluster;
    std::deque<ObjectId> frontier(hood.begin(), hood.end());
    while (!frontier.empty()) {
      const ObjectId q = frontier.front();
      frontier.pop_front();
      if (state[q] == DbscanResult::kNoise) state[q] = cluster;
      if (state[q] != kUnvisited) continue;
      state[q] = cluster;
      const auto reach = neighbors(q);
      if (reach.size() + 1 >= options.min_pts) {
        for (const ObjectId nb : reach) {
          if (state[nb] == kUnvisited || state[nb] == DbscanResult::kNoise) {
            frontier.push_back(nb);
          }
        }
      }
    }
  }
  result.labels.assign(n, DbscanResult::kNoise);
  for (ObjectId o = 0; o < n; ++o) {
    if (state[o] != kUnvisited) result.labels[o] = state[o];
  }
  return result;
}

ResolverStack MakeClusteredStack(ObjectId n, uint64_t seed) {
  ResolverStack stack;
  stack.oracle = std::make_unique<VectorOracle>(
      GaussianMixturePoints(n, 2, /*num_clusters=*/4, /*range=*/100.0,
                            /*spread=*/1.5, seed),
      VectorMetric::kEuclidean);
  stack.graph = std::make_unique<PartialDistanceGraph>(n);
  stack.resolver =
      std::make_unique<BoundedResolver>(stack.oracle.get(), stack.graph.get());
  return stack;
}

TEST(DbscanTest, RecoversPlantedClustersAndNoise) {
  // Four well-separated Gaussian blobs with tight spread: DBSCAN with a
  // matching eps must find exactly 4 clusters and little/no noise.
  ResolverStack stack = MakeClusteredStack(80, 6);
  DbscanOptions options;
  options.eps = 8.0;
  options.min_pts = 4;
  const DbscanResult result = DbscanCluster(stack.resolver.get(), options);
  EXPECT_EQ(result.num_clusters, 4u);
  int noise = 0;
  for (const int32_t label : result.labels) {
    if (label == DbscanResult::kNoise) ++noise;
  }
  EXPECT_LT(noise, 4);
}

TEST(DbscanTest, MatchesReferenceImplementation) {
  for (uint64_t seed : {2ull, 3ull, 4ull}) {
    ResolverStack stack = MakeRandomStack(40, seed);
    DbscanOptions options;
    options.eps = 0.55 + 0.05 * static_cast<double>(seed);
    options.min_pts = 3;
    const DbscanResult expected =
        ReferenceDbscan(stack.oracle.get(), options);
    const DbscanResult got = DbscanCluster(stack.resolver.get(), options);
    EXPECT_EQ(got.num_clusters, expected.num_clusters) << "seed " << seed;
    EXPECT_EQ(got.labels, expected.labels) << "seed " << seed;
  }
}

class DbscanSchemeEquivalenceTest
    : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(DbscanSchemeEquivalenceTest, IdenticalLabelsUnderEveryScheme) {
  ResolverStack vanilla = MakeClusteredStack(60, 5);
  DbscanOptions options;
  options.eps = 7.0;
  options.min_pts = 4;
  const DbscanResult expected =
      DbscanCluster(vanilla.resolver.get(), options);

  ResolverStack plugged = MakeClusteredStack(60, 5);
  SchemeOptions scheme_options;
  auto bounder =
      MakeAndAttachScheme(GetParam(), plugged.resolver.get(), scheme_options);
  ASSERT_TRUE(bounder.ok());
  const DbscanResult got = DbscanCluster(plugged.resolver.get(), options);
  EXPECT_EQ(got.labels, expected.labels)
      << "scheme " << SchemeKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DbscanSchemeEquivalenceTest,
                         ::testing::Values(SchemeKind::kTri,
                                           SchemeKind::kSplub,
                                           SchemeKind::kLaesa,
                                           SchemeKind::kTlaesa,
                                           SchemeKind::kHybrid));

TEST(DbscanTest, TriSavesCallsOnClusteredData) {
  ResolverStack vanilla = MakeClusteredStack(96, 6);
  DbscanOptions options;
  options.eps = 7.0;
  options.min_pts = 4;
  DbscanCluster(vanilla.resolver.get(), options);
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = MakeClusteredStack(96, 6);
  BootstrapWithLandmarks(plugged.resolver.get(), 7, 1);
  SchemeOptions scheme_options;
  auto bounder = MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(),
                                     scheme_options);
  ASSERT_TRUE(bounder.ok());
  DbscanCluster(plugged.resolver.get(), options);
  EXPECT_LT(plugged.resolver->stats().oracle_calls, baseline / 2)
      << "range-query workloads should be a best case for triangle pruning";
}

TEST(DbscanTest, AllNoiseWhenEpsTiny) {
  ResolverStack stack = MakeRandomStack(20, 7);
  DbscanOptions options;
  options.eps = 1e-6;
  options.min_pts = 3;
  const DbscanResult result = DbscanCluster(stack.resolver.get(), options);
  EXPECT_EQ(result.num_clusters, 0u);
  for (const int32_t label : result.labels) {
    EXPECT_EQ(label, DbscanResult::kNoise);
  }
}

TEST(DbscanTest, OneClusterWhenEpsHuge) {
  ResolverStack stack = MakeRandomStack(20, 8);
  DbscanOptions options;
  options.eps = 10.0;  // metric is normalized to diameter 1
  options.min_pts = 3;
  const DbscanResult result = DbscanCluster(stack.resolver.get(), options);
  EXPECT_EQ(result.num_clusters, 1u);
  for (const int32_t label : result.labels) EXPECT_EQ(label, 0);
}

}  // namespace
}  // namespace metricprox
