#include "oracle/set_oracle.h"

#include <random>
#include <set>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

// ---- Hausdorff ----

TEST(HausdorffOracleTest, HandComputedCase) {
  // A = {(0,0), (1,0)}, B = {(0,1)}:
  //   h(A,B) = max(1, sqrt(2)) = sqrt(2); h(B,A) = 1  ->  H = sqrt(2).
  std::vector<PointSet> sets = {
      {{0.0, 0.0}, {1.0, 0.0}},
      {{0.0, 1.0}},
  };
  HausdorffOracle oracle(std::move(sets));
  EXPECT_NEAR(oracle.Distance(0, 1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(oracle.Distance(1, 0), std::sqrt(2.0), 1e-12);
}

TEST(HausdorffOracleTest, SubsetHasOneSidedZero) {
  // B subset of A: h(B, A) = 0 but h(A, B) > 0; H takes the max.
  std::vector<PointSet> sets = {
      {{0.0, 0.0}, {10.0, 0.0}},
      {{0.0, 0.0}},
  };
  HausdorffOracle oracle(std::move(sets));
  EXPECT_NEAR(oracle.Distance(0, 1), 10.0, 1e-12);
}

TEST(HausdorffOracleTest, MetricPropertySweep) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> coord(0.0, 10.0);
  std::vector<PointSet> sets;
  for (int s = 0; s < 20; ++s) {
    PointSet set(2 + rng() % 6, std::vector<double>(2));
    for (auto& p : set) {
      p[0] = coord(rng);
      p[1] = coord(rng);
    }
    sets.push_back(std::move(set));
  }
  HausdorffOracle oracle(std::move(sets));
  for (ObjectId i = 0; i < 20; ++i) {
    for (ObjectId j = 0; j < 20; ++j) {
      if (i == j) continue;
      const double dij = oracle.Distance(i, j);
      ASSERT_GT(dij, 0.0);
      ASSERT_DOUBLE_EQ(dij, oracle.Distance(j, i));
      for (ObjectId k = 0; k < 20; ++k) {
        if (k == i || k == j) continue;
        ASSERT_LE(dij,
                  oracle.Distance(i, k) + oracle.Distance(k, j) + 1e-9);
      }
    }
  }
}

TEST(HausdorffOracleTest, RaggedSetsDie) {
  std::vector<PointSet> ragged = {{{0.0, 0.0}}, {{1.0}}};
  EXPECT_DEATH({ HausdorffOracle o(std::move(ragged)); }, "ragged");
}

// ---- Jaccard ----

TEST(JaccardOracleTest, HandComputedCases) {
  std::vector<std::vector<uint32_t>> sets = {
      {1, 2, 3},
      {2, 3, 4},
      {7, 8},
      {1, 2, 3, 4},
  };
  JaccardOracle oracle(std::move(sets));
  EXPECT_NEAR(oracle.Distance(0, 1), 1.0 - 2.0 / 4.0, 1e-12);  // {2,3}/{1..4}
  EXPECT_NEAR(oracle.Distance(0, 2), 1.0, 1e-12);  // disjoint
  EXPECT_NEAR(oracle.Distance(0, 3), 1.0 - 3.0 / 4.0, 1e-12);
}

TEST(JaccardOracleTest, MetricPropertySweep) {
  std::mt19937_64 rng(5);
  std::vector<std::vector<uint32_t>> sets;
  std::set<std::vector<uint32_t>> seen;
  while (sets.size() < 24) {
    std::vector<uint32_t> set;
    for (uint32_t e = 0; e < 20; ++e) {
      if (rng() % 3 == 0) set.push_back(e);
    }
    if (set.empty()) continue;
    if (!seen.insert(set).second) continue;  // identity needs distinct sets
    sets.push_back(std::move(set));
  }
  JaccardOracle oracle(std::move(sets));
  for (ObjectId i = 0; i < 24; ++i) {
    for (ObjectId j = i + 1; j < 24; ++j) {
      const double dij = oracle.Distance(i, j);
      ASSERT_GT(dij, 0.0);
      ASSERT_LE(dij, 1.0);
      ASSERT_DOUBLE_EQ(dij, oracle.Distance(j, i));
      for (ObjectId k = 0; k < 24; ++k) {
        if (k == i || k == j) continue;
        ASSERT_LE(dij,
                  oracle.Distance(i, k) + oracle.Distance(k, j) + 1e-12);
      }
    }
  }
}

TEST(JaccardOracleTest, UnsortedInputDies) {
  std::vector<std::vector<uint32_t>> bad = {{3, 1, 2}};
  EXPECT_DEATH({ JaccardOracle o(std::move(bad)); }, "Check");
}

}  // namespace
}  // namespace metricprox
