// Kernel-tier equivalence: the runtime-dispatched SIMD bound kernels
// (core/simd.h) must be drop-in replacements for their scalar references —
// bit-identical intervals from the kernels themselves, and byte-identical
// outputs, decisions and counters from full workload runs under every tier
// the host supports. Two layers of pinning:
//
//  1. Direct kernel A/B: random operands through pivot_scan / tri_reduce /
//     batch_distance on every supported tier, compared to the scalar tier
//     as raw doubles (EXPECT_EQ, no tolerance). Lengths sweep across the
//     vector width so full blocks, tails and empty inputs are all hit.
//  2. The audit-matrix discipline of trace_equivalence_test: each
//     kNN/Prim/Borůvka/PAM x Tri/SPLUB/LAESA cell runs once per tier from
//     a fresh graph, and the scalar run's output blob and every decision
//     counter must match exactly. TLAESA rides along as a fifth scheme
//     since its base scan shares the pivot kernel.
//
// Tiers the hardware cannot execute are skipped (SetTier clamps), so the
// test is green on any host while proving as much as the host allows.

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/knn_graph.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "core/logging.h"
#include "core/simd.h"
#include "data/datasets.h"
#include "graph/partial_graph.h"

namespace metricprox {
namespace {

/// Restores the entry tier on scope exit so tier switches cannot leak into
/// other tests in the same process.
class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::SetTier(saved_); }

 private:
  simd::Tier saved_;
};

std::vector<simd::Tier> SupportedTiers() {
  std::vector<simd::Tier> tiers;
  for (const simd::Tier tier : simd::kAllTiers) {
    if (tier <= simd::DetectedTier()) tiers.push_back(tier);
  }
  return tiers;
}

std::vector<double> RandomRow(std::mt19937_64* rng, size_t len) {
  std::uniform_real_distribution<double> dist(0.0, 2.0);
  std::vector<double> row(len);
  for (double& v : row) v = dist(*rng);
  // Sprinkle exact ties and zeros — the regime where a sloppy kernel's
  // -0.0 or NaN handling would surface.
  if (len > 2) {
    row[len / 2] = row[0];
    row[len - 1] = 0.0;
  }
  return row;
}

TEST(KernelBitIdentityTest, PivotScanMatchesScalarOnEveryTier) {
  const simd::KernelTable& scalar = simd::KernelsForTier(simd::Tier::kScalar);
  std::mt19937_64 rng(7);
  for (size_t len = 0; len <= 67; ++len) {
    const std::vector<double> a = RandomRow(&rng, len);
    const std::vector<double> b = RandomRow(&rng, len);
    const Interval want = scalar.pivot_scan(a.data(), b.data(), len);
    for (const simd::Tier tier : SupportedTiers()) {
      const Interval got =
          simd::KernelsForTier(tier).pivot_scan(a.data(), b.data(), len);
      EXPECT_EQ(got.lo, want.lo) << simd::TierName(tier) << " len=" << len;
      EXPECT_EQ(got.hi, want.hi) << simd::TierName(tier) << " len=" << len;
    }
  }
}

TEST(KernelBitIdentityTest, TriReduceMatchesScalarOnEveryTier) {
  const simd::KernelTable& scalar = simd::KernelsForTier(simd::Tier::kScalar);
  std::mt19937_64 rng(11);
  for (const double rho : {1.0, 2.0}) {
    const double inv_rho = 1.0 / rho;
    for (size_t len = 0; len <= 67; ++len) {
      const std::vector<double> di = RandomRow(&rng, len);
      const std::vector<double> dj = RandomRow(&rng, len);
      const Interval want =
          scalar.tri_reduce(di.data(), dj.data(), len, rho, inv_rho);
      for (const simd::Tier tier : SupportedTiers()) {
        const Interval got = simd::KernelsForTier(tier).tri_reduce(
            di.data(), dj.data(), len, rho, inv_rho);
        EXPECT_EQ(got.lo, want.lo)
            << simd::TierName(tier) << " len=" << len << " rho=" << rho;
        EXPECT_EQ(got.hi, want.hi)
            << simd::TierName(tier) << " len=" << len << " rho=" << rho;
      }
    }
  }
}

TEST(KernelBitIdentityTest, BatchDistanceMatchesScalarOnEveryTier) {
  const simd::KernelTable& scalar = simd::KernelsForTier(simd::Tier::kScalar);
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> coord(-1.0, 1.0);
  for (const size_t dim : {1u, 2u, 3u, 7u, 16u}) {
    const ObjectId n = 10;
    std::vector<double> points(static_cast<size_t>(n) * dim);
    for (double& v : points) v = coord(rng);
    for (const size_t count : {0u, 1u, 2u, 3u, 4u, 5u, 9u, 33u}) {
      std::vector<IdPair> pairs(count);
      for (IdPair& p : pairs) {
        p.i = static_cast<ObjectId>(rng() % n);
        p.j = static_cast<ObjectId>(rng() % n);
      }
      for (const simd::DistanceKind kind :
           {simd::DistanceKind::kL2, simd::DistanceKind::kSquaredL2,
            simd::DistanceKind::kL1, simd::DistanceKind::kLinf}) {
        std::vector<double> want(count, -1.0);
        scalar.batch_distance(points.data(), dim, pairs.data(), count,
                              want.data(), kind);
        for (const simd::Tier tier : SupportedTiers()) {
          std::vector<double> got(count, -2.0);
          simd::KernelsForTier(tier).batch_distance(
              points.data(), dim, pairs.data(), count, got.data(), kind);
          for (size_t k = 0; k < count; ++k) {
            EXPECT_EQ(got[k], want[k])
                << simd::TierName(tier) << " dim=" << dim
                << " count=" << count << " kind=" << static_cast<int>(kind)
                << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(KernelBitIdentityTest, TriMergeBoundsMatchesLambdaWalkOnEveryTier) {
  TierGuard guard;
  // A partially resolved graph with overlapping neighborhoods.
  const ObjectId n = 24;
  PartialDistanceGraph graph(n);
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> dist(0.1, 1.0);
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      if (rng() % 3 != 0) continue;
      graph.Insert(i, j, dist(rng));
    }
  }
  for (const double rho : {1.0, 2.0}) {
    const double inv_rho = 1.0 / rho;
    for (ObjectId i = 0; i < n; ++i) {
      for (ObjectId j = i + 1; j < n; ++j) {
        // The historical templated lambda walk, verbatim.
        double lb = 0.0;
        double ub = kInfDistance;
        graph.ForEachCommonNeighbor(
            i, j, [&](ObjectId, double di, double dj) {
              const double gap_ij = di * inv_rho - dj;
              const double gap_ji = dj * inv_rho - di;
              const double gap = gap_ij > gap_ji ? gap_ij : gap_ji;
              if (gap > lb) lb = gap;
              const double sum = rho * (di + dj);
              if (sum < ub) ub = sum;
            });
        if (lb > ub) lb = ub;
        for (const simd::Tier tier : SupportedTiers()) {
          simd::SetTier(tier);
          const PartialDistanceGraph::AdjacencyColumns a =
              graph.AdjacencyView(i);
          const PartialDistanceGraph::AdjacencyColumns b =
              graph.AdjacencyView(j);
          simd::TriScratch scratch;
          const Interval got = simd::TriMergeBounds(
              a.ids.data(), a.distances.data(), a.ids.size(), b.ids.data(),
              b.distances.data(), b.ids.size(), rho, &scratch);
          EXPECT_EQ(got.lo, lb) << simd::TierName(tier) << " (" << i << ","
                                << j << ") rho=" << rho;
          EXPECT_EQ(got.hi, ub) << simd::TierName(tier) << " (" << i << ","
                                << j << ") rho=" << rho;
        }
      }
    }
  }
}

TEST(KernelDispatchTest, EnvOverrideParsesAndClamps) {
  TierGuard guard;
  EXPECT_EQ(simd::TierName(simd::Tier::kScalar), "scalar");
  EXPECT_EQ(simd::TierName(simd::Tier::kSse2), "sse2");
  EXPECT_EQ(simd::TierName(simd::Tier::kAvx2), "avx2");
  ASSERT_TRUE(simd::ParseTier("scalar").ok());
  ASSERT_TRUE(simd::ParseTier("sse2").ok());
  ASSERT_TRUE(simd::ParseTier("avx2").ok());
  EXPECT_FALSE(simd::ParseTier("auto").ok());  // "auto" is the caller's job
  EXPECT_FALSE(simd::ParseTier("AVX2").ok());
  EXPECT_FALSE(simd::ParseTier("").ok());
  // SetTier clamps to the hardware and reports what it applied.
  const simd::Tier applied = simd::SetTier(simd::Tier::kAvx2);
  EXPECT_LE(applied, simd::DetectedTier());
  EXPECT_EQ(applied, simd::ActiveTier());
  EXPECT_EQ(simd::SetTier(simd::Tier::kScalar), simd::Tier::kScalar);
  EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
}

// ---------------------------------------------------------------------------
// Workload matrix: full runs per tier, compared to the scalar run.
// ---------------------------------------------------------------------------

struct RunOutput {
  std::vector<double> blob;  // flattened algorithm output
  ResolverStats stats;
};

RunOutput RunOnce(const Dataset& dataset, const std::string& algorithm,
                  SchemeKind scheme, uint64_t seed) {
  PartialDistanceGraph graph(dataset.oracle->num_objects());
  BoundedResolver resolver(dataset.oracle.get(), &graph);
  // Batch transport so vector datasets route undecided pairs through the
  // batch-distance kernel, not just the bounder-side kernels.
  resolver.SetBatchTransport(true);

  RunOutput run;
  auto push_edge = [&run](const WeightedEdge& e) {
    run.blob.push_back(e.u);
    run.blob.push_back(e.v);
    run.blob.push_back(e.weight);
  };
  std::unique_ptr<Bounder> bounder_keepalive;
  const StatusOr<double> outcome =
      resolver.RunFallible([&](BoundedResolver* r) -> double {
        SchemeOptions options;
        options.seed = seed;
        options.max_distance = dataset.max_distance;
        StatusOr<std::unique_ptr<Bounder>> bounder =
            MakeAndAttachScheme(scheme, r, options);
        CHECK(bounder.ok()) << bounder.status();
        bounder_keepalive = std::move(bounder).value();

        if (algorithm == "prim") {
          for (const WeightedEdge& e : PrimMst(r).edges) push_edge(e);
        } else if (algorithm == "boruvka") {
          for (const WeightedEdge& e : BoruvkaMst(r).edges) push_edge(e);
        } else if (algorithm == "knn") {
          for (const auto& row : BuildKnnGraph(r, KnnGraphOptions{3})) {
            for (const KnnNeighbor& nb : row) {
              run.blob.push_back(nb.id);
              run.blob.push_back(nb.distance);
            }
          }
        } else {  // pam
          PamOptions options_pam;
          options_pam.num_medoids = 4;
          const ClusteringResult c = PamCluster(r, options_pam);
          for (const ObjectId m : c.medoids) run.blob.push_back(m);
          for (const uint32_t a : c.assignment) run.blob.push_back(a);
          run.blob.push_back(c.total_deviation);
        }
        return 0.0;
      });
  CHECK(outcome.ok()) << outcome.status();
  run.stats = resolver.stats();
  return run;
}

void ExpectIdentical(const RunOutput& scalar, const RunOutput& tiered,
                     simd::Tier tier, const std::string& context) {
  // Byte-identical outputs: compare the raw doubles, not within tolerance.
  ASSERT_EQ(scalar.blob.size(), tiered.blob.size()) << context;
  for (size_t k = 0; k < scalar.blob.size(); ++k) {
    EXPECT_EQ(scalar.blob[k], tiered.blob[k])
        << context << " blob[" << k << "]";
  }
  const ResolverStats& a = scalar.stats;
  const ResolverStats& b = tiered.stats;
  EXPECT_EQ(a.oracle_calls, b.oracle_calls) << context;
  EXPECT_EQ(a.comparisons, b.comparisons) << context;
  EXPECT_EQ(a.decided_by_bounds, b.decided_by_bounds) << context;
  EXPECT_EQ(a.decided_by_cache, b.decided_by_cache) << context;
  EXPECT_EQ(a.decided_by_oracle, b.decided_by_oracle) << context;
  EXPECT_EQ(a.undecided, b.undecided) << context;
  EXPECT_EQ(a.bound_queries, b.bound_queries) << context;
  EXPECT_EQ(a.batch_calls, b.batch_calls) << context;
  EXPECT_EQ(a.batch_resolved_pairs, b.batch_resolved_pairs) << context;
  // The one field that SHOULD differ: it records the executed tier.
  EXPECT_EQ(a.kernel_dispatch,
            static_cast<uint64_t>(simd::Tier::kScalar)) << context;
  EXPECT_EQ(b.kernel_dispatch, static_cast<uint64_t>(tier)) << context;
}

Dataset MakeNamedDataset(const std::string& name, ObjectId n, uint64_t seed) {
  if (name == "sf") return MakeSfPoiLike(n, seed);
  return MakeRandomMetric(n, seed);
}

class KernelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(KernelEquivalenceTest, TierSwitchIsByteIdentical) {
  TierGuard guard;
  const std::string dataset_name = std::get<0>(GetParam());
  const std::string algorithm = std::get<1>(GetParam());
  const uint64_t seed = 42;
  // "sf" is a vector-space (Euclidean) oracle, so its batch path exercises
  // the batch-distance kernel; "random" is a matrix oracle, isolating the
  // bounder-side kernels.
  const ObjectId n = dataset_name == "sf" ? 40 : 32;
  const Dataset dataset = MakeNamedDataset(dataset_name, n, seed);

  for (const SchemeKind scheme :
       {SchemeKind::kTri, SchemeKind::kSplub, SchemeKind::kLaesa,
        SchemeKind::kTlaesa}) {
    const std::string scheme_name(SchemeKindName(scheme));
    ASSERT_EQ(simd::SetTier(simd::Tier::kScalar), simd::Tier::kScalar);
    const RunOutput scalar = RunOnce(dataset, algorithm, scheme, seed);
    for (const simd::Tier tier : SupportedTiers()) {
      if (tier == simd::Tier::kScalar) continue;
      ASSERT_EQ(simd::SetTier(tier), tier);
      const RunOutput tiered = RunOnce(dataset, algorithm, scheme, seed);
      ExpectIdentical(scalar, tiered, tier,
                      dataset_name + "/" + algorithm + "/" + scheme_name +
                          "/" + std::string(simd::TierName(tier)));
    }
  }
  if (SupportedTiers().size() == 1) {
    GTEST_SKIP() << "host has no SIMD tier; scalar-only run proves nothing";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AuditMatrix, KernelEquivalenceTest,
    ::testing::Combine(::testing::Values("sf", "random"),
                       ::testing::Values("prim", "boruvka", "knn", "pam")),
    [](const ::testing::TestParamInfo<KernelEquivalenceTest::ParamType>&
           info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace metricprox
