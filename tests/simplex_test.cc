#include "lp/simplex.h"

#include <random>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

TEST(SimplexTest, RejectsMalformedInput) {
  SimplexSolver solver;
  DenseLp lp;
  lp.num_vars = 0;
  EXPECT_FALSE(solver.Solve(lp).ok());

  lp.num_vars = 2;
  lp.a = {{1.0}};  // wrong arity
  lp.b = {1.0};
  EXPECT_FALSE(solver.Solve(lp).ok());

  lp.a = {{1.0, 1.0}};
  lp.b = {1.0, 2.0};  // row count mismatch
  EXPECT_FALSE(solver.Solve(lp).ok());
}

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  optimum 36 at
  // (2, 6). Minimize the negation.
  DenseLp lp;
  lp.num_vars = 2;
  lp.a = {{1, 0}, {0, 2}, {3, 2}};
  lp.b = {4, 12, 18};
  lp.objective = {-3, -5};
  SimplexSolver solver;
  auto result = solver.Solve(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->kind, LpResult::Kind::kOptimal);
  EXPECT_NEAR(result->objective_value, -36.0, 1e-9);
  EXPECT_NEAR(result->x[0], 2.0, 1e-9);
  EXPECT_NEAR(result->x[1], 6.0, 1e-9);
}

TEST(SimplexTest, MinimizationWithNegativeRhsNeedsPhase1) {
  // min x + y  s.t. x + y >= 2 (i.e. -x - y <= -2), x <= 5, y <= 5.
  DenseLp lp;
  lp.num_vars = 2;
  lp.a = {{-1, -1}, {1, 0}, {0, 1}};
  lp.b = {-2, 5, 5};
  lp.objective = {1, 1};
  auto result = SimplexSolver().Solve(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->kind, LpResult::Kind::kOptimal);
  EXPECT_NEAR(result->objective_value, 2.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x <= 1 and x >= 3 cannot both hold.
  DenseLp lp;
  lp.num_vars = 1;
  lp.a = {{1}, {-1}};
  lp.b = {1, -3};
  auto result = SimplexSolver().Solve(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->kind, LpResult::Kind::kInfeasible);
  auto feasible = SimplexSolver().IsFeasible(lp);
  ASSERT_TRUE(feasible.ok());
  EXPECT_FALSE(*feasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  // min -x with only x >= 1: x can grow without bound.
  DenseLp lp;
  lp.num_vars = 1;
  lp.a = {{-1}};
  lp.b = {-1};
  lp.objective = {-1};
  auto result = SimplexSolver().Solve(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->kind, LpResult::Kind::kUnbounded);
}

TEST(SimplexTest, FeasibilityOnlySolveReturnsAPoint) {
  DenseLp lp;
  lp.num_vars = 2;
  lp.a = {{-1, 0}, {0, -1}, {1, 1}};
  lp.b = {-0.5, -0.25, 2.0};
  auto result = SimplexSolver().Solve(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->kind, LpResult::Kind::kOptimal);
  // The returned point must satisfy every constraint.
  ASSERT_EQ(result->x.size(), 2u);
  EXPECT_GE(result->x[0], 0.5 - 1e-9);
  EXPECT_GE(result->x[1], 0.25 - 1e-9);
  EXPECT_LE(result->x[0] + result->x[1], 2.0 + 1e-9);
}

TEST(SimplexTest, DegenerateConstraintsTerminate) {
  // Multiple redundant copies of the same constraint — classic degeneracy.
  DenseLp lp;
  lp.num_vars = 2;
  lp.a = {{1, 1}, {1, 1}, {1, 1}, {-1, 0}};
  lp.b = {1, 1, 1, 0};
  lp.objective = {-1, -1};
  auto result = SimplexSolver().Solve(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->kind, LpResult::Kind::kOptimal);
  EXPECT_NEAR(result->objective_value, -1.0, 1e-9);
}

TEST(SimplexTest, EqualityEncodedAsTwoInequalities) {
  // x + y == 1 (two rows), minimize x -> x = 0, y = 1.
  DenseLp lp;
  lp.num_vars = 2;
  lp.a = {{1, 1}, {-1, -1}};
  lp.b = {1, -1};
  lp.objective = {1, 0};
  auto result = SimplexSolver().Solve(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->kind, LpResult::Kind::kOptimal);
  EXPECT_NEAR(result->objective_value, 0.0, 1e-9);
  EXPECT_NEAR(result->x[1], 1.0, 1e-9);
}

// Property sweep: random box-bounded systems. Feasibility of
// {l_i <= x_i <= u_i, sum x_i <= s} is decidable by inspection, so we can
// cross-check the solver's verdict exactly.
class SimplexRandomBoxTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexRandomBoxTest, BoxPlusBudgetVerdictMatchesClosedForm) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int round = 0; round < 40; ++round) {
    const int k = 2 + static_cast<int>(rng() % 4);
    DenseLp lp;
    lp.num_vars = k;
    double min_sum = 0.0;
    for (int v = 0; v < k; ++v) {
      const double lo = unit(rng);
      const double hi = lo + unit(rng);
      std::vector<double> up(k, 0.0);
      up[v] = 1.0;
      lp.a.push_back(up);
      lp.b.push_back(hi);
      std::vector<double> down(k, 0.0);
      down[v] = -1.0;
      lp.a.push_back(down);
      lp.b.push_back(-lo);
      min_sum += lo;
    }
    const double budget = unit(rng) * 2.0 * static_cast<double>(k);
    lp.a.push_back(std::vector<double>(k, 1.0));
    lp.b.push_back(budget);

    auto verdict = SimplexSolver().IsFeasible(lp);
    ASSERT_TRUE(verdict.ok()) << verdict.status();
    EXPECT_EQ(*verdict, min_sum <= budget + 1e-9)
        << "min_sum=" << min_sum << " budget=" << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomBoxTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace metricprox
