#include "data/synthetic.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "oracle/matrix_oracle.h"

namespace metricprox {
namespace {

TEST(SyntheticTest, UniformPointsShapeAndRange) {
  const PointSet points = UniformPoints(50, 3, 10.0, 1);
  ASSERT_EQ(points.size(), 50u);
  for (const auto& p : points) {
    ASSERT_EQ(p.size(), 3u);
    for (double c : p) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 10.0);
    }
  }
}

TEST(SyntheticTest, UniformPointsDeterministicPerSeed) {
  EXPECT_EQ(UniformPoints(10, 2, 1.0, 7), UniformPoints(10, 2, 1.0, 7));
  EXPECT_NE(UniformPoints(10, 2, 1.0, 7), UniformPoints(10, 2, 1.0, 8));
}

TEST(SyntheticTest, GaussianMixtureClustersAreTight) {
  // With tiny spread relative to the range, points concentrate near few
  // centers: the max nearest-neighbor distance should be much smaller than
  // the overall diameter.
  const PointSet points =
      GaussianMixturePoints(80, 2, 4, /*range=*/100.0, /*spread=*/0.5, 3);
  double diameter = 0.0;
  double max_nn = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    double nn = 1e300;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      const double dx = points[i][0] - points[j][0];
      const double dy = points[i][1] - points[j][1];
      const double d = std::sqrt(dx * dx + dy * dy);
      diameter = std::max(diameter, d);
      nn = std::min(nn, d);
    }
    max_nn = std::max(max_nn, nn);
  }
  EXPECT_LT(max_nn * 5.0, diameter);
}

TEST(SyntheticTest, DnaStringsDistinctAndAlphabetRestricted) {
  const std::vector<std::string> strings = DnaFamilyStrings(40, 32, 4, 4, 5);
  ASSERT_EQ(strings.size(), 40u);
  std::set<std::string> unique(strings.begin(), strings.end());
  EXPECT_EQ(unique.size(), 40u);
  for (const std::string& s : strings) {
    EXPECT_GE(s.size(), 4u);
    for (char c : s) {
      EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
    }
  }
}

TEST(SyntheticTest, RandomShortestPathMetricIsAValidMetric) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    std::vector<double> m = RandomShortestPathMetric(16, 0.9, seed);
    auto oracle = MatrixOracle::Create(std::move(m), 16);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
  }
}

TEST(SyntheticTest, RandomMetricNormalizedToUnitDiameter) {
  const std::vector<double> m = RandomShortestPathMetric(12, 0.9, 4);
  double max = 0.0;
  for (double v : m) max = std::max(max, v);
  EXPECT_DOUBLE_EQ(max, 1.0);
}

TEST(SyntheticTest, LowRoughnessStaysNearUniform) {
  // roughness -> 0 gives nearly-equal weights, so closure rarely shortcuts:
  // all distances should stay within the raw band [1-r, 1+r] normalized.
  const std::vector<double> m = RandomShortestPathMetric(10, 0.05, 5);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 10; ++j) {
      if (i == j) continue;
      EXPECT_GT(m[i * 10 + j], 0.8);
    }
  }
}

}  // namespace
}  // namespace metricprox
