#include "data/synthetic.h"

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "oracle/matrix_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::FamilyMetric;
using testing_util::kAllMetricFamilies;
using testing_util::MetricFamily;
using testing_util::MetricFamilyName;

// ---------------------------------------------------------------------------
// Generator shape checks (cheap invariants of the point/string generators).
// ---------------------------------------------------------------------------

TEST(SyntheticTest, UniformPointsShapeAndRange) {
  const PointSet points = UniformPoints(50, 3, 10.0, 1);
  ASSERT_EQ(points.size(), 50u);
  for (const auto& p : points) {
    ASSERT_EQ(p.size(), 3u);
    for (double c : p) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 10.0);
    }
  }
}

TEST(SyntheticTest, UniformPointsDeterministicPerSeed) {
  EXPECT_EQ(UniformPoints(10, 2, 1.0, 7), UniformPoints(10, 2, 1.0, 7));
  EXPECT_NE(UniformPoints(10, 2, 1.0, 7), UniformPoints(10, 2, 1.0, 8));
}

TEST(SyntheticTest, GaussianMixtureClustersAreTight) {
  // With tiny spread relative to the range, points concentrate near few
  // centers: the max nearest-neighbor distance should be much smaller than
  // the overall diameter.
  const PointSet points =
      GaussianMixturePoints(80, 2, 4, /*range=*/100.0, /*spread=*/0.5, 3);
  double diameter = 0.0;
  double max_nn = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    double nn = 1e300;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      const double dx = points[i][0] - points[j][0];
      const double dy = points[i][1] - points[j][1];
      const double d = std::sqrt(dx * dx + dy * dy);
      diameter = std::max(diameter, d);
      nn = std::min(nn, d);
    }
    max_nn = std::max(max_nn, nn);
  }
  EXPECT_LT(max_nn * 5.0, diameter);
}

TEST(SyntheticTest, DnaStringsDistinctAndAlphabetRestricted) {
  const std::vector<std::string> strings = DnaFamilyStrings(40, 32, 4, 4, 5);
  ASSERT_EQ(strings.size(), 40u);
  std::set<std::string> unique(strings.begin(), strings.end());
  EXPECT_EQ(unique.size(), 40u);
  for (const std::string& s : strings) {
    EXPECT_GE(s.size(), 4u);
    for (char c : s) {
      EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
    }
  }
}

TEST(SyntheticTest, LowRoughnessStaysNearUniform) {
  // roughness -> 0 gives nearly-equal weights, so closure rarely shortcuts:
  // all distances should stay within the raw band [1-r, 1+r] normalized.
  const std::vector<double> m = RandomShortestPathMetric(10, 0.05, 5);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 10; ++j) {
      if (i == j) continue;
      EXPECT_GT(m[i * 10 + j], 0.8);
    }
  }
}

// ---------------------------------------------------------------------------
// Property tests over the metric families: each property is checked for
// every (family, seed) combination, not a single hand-picked instance.
// ---------------------------------------------------------------------------

constexpr uint64_t kSeeds[] = {1, 2, 3, 17, 99};
constexpr ObjectId kPropertyN = 14;

TEST(MetricFamilyProperty, IsAValidMetric) {
  // MatrixOracle::Create validates symmetry, identity, positivity and the
  // triangle inequality; a non-OK status names the violated axiom.
  for (MetricFamily family : kAllMetricFamilies) {
    for (uint64_t seed : kSeeds) {
      std::vector<double> m = FamilyMetric(family, kPropertyN, seed);
      auto oracle = MatrixOracle::Create(std::move(m), kPropertyN);
      ASSERT_TRUE(oracle.ok()) << MetricFamilyName(family) << " seed " << seed
                               << ": " << oracle.status();
    }
  }
}

TEST(MetricFamilyProperty, TriangleInequalityExplicit) {
  // Belt and braces: re-check the axiom with an explicit triple loop so the
  // property does not depend on MatrixOracle's validator.
  const ObjectId n = kPropertyN;
  for (MetricFamily family : kAllMetricFamilies) {
    for (uint64_t seed : kSeeds) {
      const std::vector<double> m = FamilyMetric(family, n, seed);
      for (ObjectId i = 0; i < n; ++i) {
        for (ObjectId j = 0; j < n; ++j) {
          for (ObjectId k = 0; k < n; ++k) {
            ASSERT_LE(m[i * n + j], m[i * n + k] + m[k * n + j] + 1e-12)
                << MetricFamilyName(family) << " seed " << seed << " triple ("
                << i << "," << j << "," << k << ")";
          }
        }
      }
    }
  }
}

TEST(MetricFamilyProperty, UnitDiameterAndPositive) {
  const ObjectId n = kPropertyN;
  for (MetricFamily family : kAllMetricFamilies) {
    for (uint64_t seed : kSeeds) {
      const std::vector<double> m = FamilyMetric(family, n, seed);
      double diameter = 0.0;
      for (ObjectId i = 0; i < n; ++i) {
        for (ObjectId j = 0; j < n; ++j) {
          if (i == j) {
            ASSERT_EQ(m[i * n + j], 0.0);
          } else {
            ASSERT_GT(m[i * n + j], 0.0)
                << MetricFamilyName(family) << " seed " << seed;
          }
          diameter = std::max(diameter, m[i * n + j]);
        }
      }
      EXPECT_DOUBLE_EQ(diameter, 1.0)
          << MetricFamilyName(family) << " seed " << seed;
    }
  }
}

TEST(MetricFamilyProperty, DeterministicPerSeedDistinctAcrossSeeds) {
  for (MetricFamily family : kAllMetricFamilies) {
    EXPECT_EQ(FamilyMetric(family, kPropertyN, 7),
              FamilyMetric(family, kPropertyN, 7))
        << MetricFamilyName(family);
    EXPECT_NE(FamilyMetric(family, kPropertyN, 7),
              FamilyMetric(family, kPropertyN, 8))
        << MetricFamilyName(family);
  }
}

TEST(MetricFamilyProperty, ClusteredFamilyHasBlockStructure) {
  // Intra-cluster distances (i % k == j % k, matching the generator's
  // assignment) must sit well below inter-cluster ones on every seed.
  const ObjectId n = 24;
  const ObjectId k = std::max<ObjectId>(2, n / 6);
  for (uint64_t seed : kSeeds) {
    const std::vector<double> m =
        FamilyMetric(MetricFamily::kClustered, n, seed);
    double max_intra = 0.0;
    double min_inter = 1e300;
    for (ObjectId i = 0; i < n; ++i) {
      for (ObjectId j = i + 1; j < n; ++j) {
        if (i % k == j % k) {
          max_intra = std::max(max_intra, m[i * n + j]);
        } else {
          min_inter = std::min(min_inter, m[i * n + j]);
        }
      }
    }
    EXPECT_LT(max_intra * 2.0, min_inter) << "seed " << seed;
  }
}

TEST(MetricFamilyProperty, NearDegenerateFamilyHasManyExactTies) {
  // The quantized generator should produce many pairs of pairs at exactly
  // the same distance — the regime the family exists to stress.
  const ObjectId n = kPropertyN;
  for (uint64_t seed : kSeeds) {
    const std::vector<double> m =
        FamilyMetric(MetricFamily::kNearDegenerate, n, seed);
    std::map<double, int> counts;
    for (ObjectId i = 0; i < n; ++i) {
      for (ObjectId j = i + 1; j < n; ++j) ++counts[m[i * n + j]];
    }
    int tied_pairs = 0;
    for (const auto& [value, count] : counts) {
      if (count > 1) tied_pairs += count;
    }
    const int total_pairs = n * (n - 1) / 2;
    EXPECT_GT(tied_pairs * 2, total_pairs) << "seed " << seed;
  }
}

}  // namespace
}  // namespace metricprox
