#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/join.h"
#include "algo/prim.h"
#include "algo/reference.h"
#include "bounds/scheme.h"
#include "data/synthetic.h"
#include "oracle/string_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

std::set<EdgeKey> EdgeSet(const MstResult& mst) {
  std::set<EdgeKey> keys;
  for (const WeightedEdge& e : mst.edges) keys.insert(EdgeKey(e.u, e.v));
  return keys;
}

TEST(BoruvkaTest, MatchesReferenceKruskal) {
  const ObjectId n = 22;
  ResolverStack stack = MakeRandomStack(n, 71);
  const MstResult boruvka = BoruvkaMst(stack.resolver.get());
  const MstResult reference = ReferenceKruskalMst(stack.oracle.get());
  ASSERT_EQ(boruvka.edges.size(), static_cast<size_t>(n - 1));
  EXPECT_NEAR(boruvka.total_weight, reference.total_weight, 1e-9);
  EXPECT_EQ(EdgeSet(boruvka), EdgeSet(reference));
}

TEST(BoruvkaTest, TieHeavyIntegerMetricStaysAcyclicAndOptimal) {
  // Edit distances create many exact weight ties — the case Borůvka's
  // contraction must survive via the strict total edge order.
  std::vector<std::string> strings =
      DnaFamilyStrings(24, 20, /*num_families=*/3, /*mutations=*/2, 55);
  LevenshteinOracle oracle(strings);
  PartialDistanceGraph graph(24);
  BoundedResolver resolver(&oracle, &graph);
  const MstResult boruvka = BoruvkaMst(&resolver);

  LevenshteinOracle oracle2(strings);
  const MstResult reference = ReferenceKruskalMst(&oracle2);
  ASSERT_EQ(boruvka.edges.size(), 23u);
  EXPECT_NEAR(boruvka.total_weight, reference.total_weight, 1e-9);
}

class BoruvkaSchemeEquivalenceTest
    : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(BoruvkaSchemeEquivalenceTest, SameTreeUnderEveryScheme) {
  const ObjectId n = 18;
  ResolverStack vanilla = MakeRandomStack(n, 72);
  const MstResult expected = BoruvkaMst(vanilla.resolver.get());

  ResolverStack plugged = MakeRandomStack(n, 72);
  SchemeOptions options;
  auto bounder = MakeAndAttachScheme(GetParam(), plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const MstResult got = BoruvkaMst(plugged.resolver.get());
  EXPECT_NEAR(got.total_weight, expected.total_weight, 1e-9);
  EXPECT_EQ(EdgeSet(got), EdgeSet(expected))
      << "scheme " << SchemeKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, BoruvkaSchemeEquivalenceTest,
                         ::testing::Values(SchemeKind::kTri,
                                           SchemeKind::kSplub,
                                           SchemeKind::kLaesa,
                                           SchemeKind::kTlaesa));

TEST(BoruvkaTest, TriSavesCallsOnClusteredData) {
  const ObjectId n = 64;
  auto make_stack = [&]() {
    ResolverStack stack;
    stack.oracle = std::make_unique<VectorOracle>(
        GaussianMixturePoints(n, 2, 4, 100.0, 1.5, 12),
        VectorMetric::kEuclidean);
    stack.graph = std::make_unique<PartialDistanceGraph>(n);
    stack.resolver = std::make_unique<BoundedResolver>(stack.oracle.get(),
                                                       stack.graph.get());
    return stack;
  };
  ResolverStack vanilla = make_stack();
  BoruvkaMst(vanilla.resolver.get());
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = make_stack();
  BootstrapWithLandmarks(plugged.resolver.get(), 6, 1);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  BoruvkaMst(plugged.resolver.get());
  EXPECT_LT(plugged.resolver->stats().oracle_calls, baseline);
}

// ---- SimilarityJoin ----

TEST(SimilarityJoinTest, MatchesBruteForce) {
  const ObjectId n = 26;
  ResolverStack stack = MakeRandomStack(n, 73);
  for (const double radius : {0.0, 0.4, 0.7, 1.0}) {
    const auto matches = SimilarityJoin(stack.resolver.get(), radius);
    std::vector<WeightedEdge> brute;
    for (ObjectId u = 0; u < n; ++u) {
      for (ObjectId v = u + 1; v < n; ++v) {
        const double d = stack.oracle->Distance(u, v);
        if (d <= radius) brute.push_back(WeightedEdge{u, v, d});
      }
    }
    ASSERT_EQ(matches.size(), brute.size()) << "radius " << radius;
    for (size_t m = 0; m < matches.size(); ++m) {
      EXPECT_EQ(matches[m], brute[m]);
    }
  }
}

TEST(SimilarityJoinTest, SchemeIndependentMatches) {
  const ObjectId n = 22;
  ResolverStack vanilla = MakeRandomStack(n, 74);
  const auto expected = SimilarityJoin(vanilla.resolver.get(), 0.6);

  for (const SchemeKind kind :
       {SchemeKind::kTri, SchemeKind::kSplub, SchemeKind::kLaesa}) {
    ResolverStack plugged = MakeRandomStack(n, 74);
    SchemeOptions options;
    auto bounder = MakeAndAttachScheme(kind, plugged.resolver.get(), options);
    ASSERT_TRUE(bounder.ok());
    const auto got = SimilarityJoin(plugged.resolver.get(), 0.6);
    ASSERT_EQ(got.size(), expected.size()) << SchemeKindName(kind);
    for (size_t m = 0; m < got.size(); ++m) {
      EXPECT_EQ(got[m], expected[m]);
    }
  }
}

TEST(SimilarityJoinTest, TriSavesCallsOnClusteredData) {
  const ObjectId n = 64;
  auto make_stack = [&]() {
    ResolverStack stack;
    stack.oracle = std::make_unique<VectorOracle>(
        GaussianMixturePoints(n, 2, 4, 100.0, 1.5, 13),
        VectorMetric::kEuclidean);
    stack.graph = std::make_unique<PartialDistanceGraph>(n);
    stack.resolver = std::make_unique<BoundedResolver>(stack.oracle.get(),
                                                       stack.graph.get());
    return stack;
  };
  ResolverStack vanilla = make_stack();
  SimilarityJoin(vanilla.resolver.get(), 5.0);
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = make_stack();
  BootstrapWithLandmarks(plugged.resolver.get(), 6, 1);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const uint64_t before = plugged.resolver->stats().oracle_calls;
  SimilarityJoin(plugged.resolver.get(), 5.0);
  EXPECT_LT(plugged.resolver->stats().oracle_calls - before, baseline);
}

TEST(SimilarityJoinTest, ZeroRadiusFindsNothingOnDistinctObjects) {
  ResolverStack stack = MakeRandomStack(10, 75);
  EXPECT_TRUE(SimilarityJoin(stack.resolver.get(), 0.0).empty());
}

}  // namespace
}  // namespace metricprox
