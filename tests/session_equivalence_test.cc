// Session-layer equivalence: N ResolverSessions running the algorithm
// matrix (k-NN / Prim / Borůvka / PAM) concurrently over ONE shared
// SessionPool — shared striped graph, shared store, optionally a
// cross-session coalescer — must produce byte-identical outputs and
// identical per-session decision counters to the same workloads run
// sequentially and to plain unshared single-session runs. Sharing may only
// change WHERE a resolution is answered (shared graph / store / coalesced
// batch instead of the base oracle), never an answer or a per-session
// count. The concurrent variants are the TSan payload of the
// concurrency-smoke CI matrix.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/knn_graph.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "bounds/resolver.h"
#include "bounds/tri.h"
#include "data/datasets.h"
#include "graph/partial_graph.h"
#include "oracle/wrappers.h"
#include "service/session.h"
#include "store/distance_store.h"

namespace metricprox {
namespace {

constexpr const char* kAlgorithms[] = {"knn", "prim", "boruvka", "pam"};

/// Flattened output + counters of one workload run (same blob encoding as
/// chaos_test so equality is bytewise over every emitted value).
struct SessionRun {
  std::vector<double> blob;
  ResolverStats stats;
};

void RunAlgorithm(BoundedResolver* r, const std::string& algorithm,
                  std::vector<double>* blob) {
  auto push_edge = [blob](const WeightedEdge& e) {
    blob->push_back(e.u);
    blob->push_back(e.v);
    blob->push_back(e.weight);
  };
  if (algorithm == "prim") {
    for (const WeightedEdge& e : PrimMst(r).edges) push_edge(e);
  } else if (algorithm == "boruvka") {
    for (const WeightedEdge& e : BoruvkaMst(r).edges) push_edge(e);
  } else if (algorithm == "knn") {
    for (const auto& row : BuildKnnGraph(r, KnnGraphOptions{3})) {
      for (const KnnNeighbor& nb : row) {
        blob->push_back(nb.id);
        blob->push_back(nb.distance);
      }
    }
  } else {  // pam
    PamOptions options;
    options.num_medoids = 4;
    const ClusteringResult c = PamCluster(r, options);
    for (const ObjectId m : c.medoids) blob->push_back(m);
    for (const uint32_t a : c.assignment) blob->push_back(a);
    blob->push_back(c.total_deviation);
  }
}

/// The unshared single-session reference: a private graph + resolver +
/// TriBounder straight on the oracle, exactly as pre-session code wrote it.
SessionRun RunUnshared(DistanceOracle* oracle, const std::string& algorithm,
                       bool batch_transport) {
  PartialDistanceGraph graph(oracle->num_objects());
  BoundedResolver resolver(oracle, &graph);
  TriBounder bounder(&graph);
  resolver.SetBounder(&bounder);
  resolver.SetBatchTransport(batch_transport);
  SessionRun run;
  RunAlgorithm(&resolver, algorithm, &run.blob);
  run.stats = resolver.stats();
  return run;
}

SessionRun RunInSession(ResolverSession* session, const std::string& algorithm,
                        bool batch_transport) {
  session->UseTriBounds();
  session->resolver().SetBatchTransport(batch_transport);
  SessionRun run;
  RunAlgorithm(&session->resolver(), algorithm, &run.blob);
  run.stats = session->Stats();
  return run;
}

/// Compares the schedule-independent integer counters (timing doubles and
/// the schedule-dependent shared_graph_hits are deliberately excluded).
void ExpectSameCounters(const ResolverStats& got, const ResolverStats& want,
                        const std::string& context) {
  EXPECT_EQ(got.comparisons, want.comparisons) << context;
  EXPECT_EQ(got.oracle_calls, want.oracle_calls) << context;
  EXPECT_EQ(got.bound_queries, want.bound_queries) << context;
  EXPECT_EQ(got.decided_by_cache, want.decided_by_cache) << context;
  EXPECT_EQ(got.decided_by_bounds, want.decided_by_bounds) << context;
  EXPECT_EQ(got.decided_by_oracle, want.decided_by_oracle) << context;
  EXPECT_EQ(got.undecided, want.undecided) << context;
  EXPECT_EQ(got.batch_calls, want.batch_calls) << context;
  EXPECT_EQ(got.batch_resolved_pairs, want.batch_resolved_pairs) << context;
  EXPECT_EQ(got.oracle_failures, want.oracle_failures) << context;
}

class SessionEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

// The tentpole property: the full algorithm matrix run CONCURRENTLY (one
// session per algorithm, one thread per session) over one pool equals the
// unshared sequential reference — outputs bytewise, counters exactly —
// under both transports, with and without the cross-session coalescer.
TEST_P(SessionEquivalenceTest, ConcurrentMatrixMatchesUnsharedRuns) {
  const auto [batch_transport, enable_coalescer] = GetParam();
  const ObjectId n = 36;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/1234);

  std::vector<SessionRun> want;
  uint64_t unshared_base_pairs = 0;
  for (const char* algorithm : kAlgorithms) {
    want.push_back(
        RunUnshared(dataset.oracle.get(), algorithm, batch_transport));
    unshared_base_pairs += want.back().stats.oracle_calls;
  }

  CountingOracle counting(dataset.oracle.get());
  SessionPoolOptions pool_options;
  pool_options.enable_coalescer = enable_coalescer;
  SessionPool pool(&counting, pool_options);
  std::vector<std::unique_ptr<ResolverSession>> sessions;
  for (const char* algorithm : kAlgorithms) {
    SessionOptions options;
    options.tag = algorithm;
    sessions.push_back(pool.OpenSession(options));
  }

  std::vector<SessionRun> got(sessions.size());
  std::vector<std::thread> threads;
  for (size_t s = 0; s < sessions.size(); ++s) {
    threads.emplace_back([&, s] {
      got[s] = RunInSession(sessions[s].get(), kAlgorithms[s], batch_transport);
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t s = 0; s < sessions.size(); ++s) {
    EXPECT_EQ(got[s].blob, want[s].blob)
        << kAlgorithms[s] << " diverged under concurrent shared resolution";
    ExpectSameCounters(got[s].stats, want[s].stats, kAlgorithms[s]);
    // Shared hits are still charged as oracle calls, never on top of them.
    EXPECT_LE(got[s].stats.shared_graph_hits, got[s].stats.oracle_calls);
  }
  // Sharing can only REMOVE base-oracle traffic relative to independent
  // runs (each session ships each unique pair at most once).
  EXPECT_LE(counting.calls(), unshared_base_pairs);

  const SessionPoolCounters counters = pool.counters();
  EXPECT_EQ(counters.sessions_opened, sessions.size());
  EXPECT_EQ(counters.sessions_peak, sessions.size());
  if (enable_coalescer) {
    // Submissions may exceed wire pairs by exactly the cross-session
    // dedup joins; what shipped is what the base oracle billed.
    ASSERT_NE(pool.coalescer(), nullptr);
    const CoalescerCounters cc = pool.coalescer()->counters();
    EXPECT_EQ(cc.pairs_shipped, counting.calls());
    EXPECT_EQ(counters.base_pairs_shipped, cc.pairs_shipped + cc.dedup_hits);
  } else {
    EXPECT_EQ(counters.base_pairs_shipped, counting.calls());
  }

  // The merged report: session stats + pool stats must satisfy the
  // validate_telemetry.py session invariants.
  ResolverStats total;
  for (const SessionRun& run : got) total += run.stats;
  pool.AccumulateStats(&total);
  EXPECT_EQ(total.sessions_active, sessions.size());
  EXPECT_LE(total.shared_graph_hits, total.oracle_calls);
  if (!enable_coalescer) {
    EXPECT_EQ(total.coalesced_batches, 0u);
    EXPECT_EQ(total.cross_session_dedup_hits, 0u);
  }

  sessions.clear();
  EXPECT_EQ(pool.counters().sessions_active, 0u);
  EXPECT_EQ(pool.counters().sessions_peak, 4u);
}

INSTANTIATE_TEST_SUITE_P(TransportByCoalescing, SessionEquivalenceTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

// Sequential sessions over one pool: deterministic cache accounting. The
// first session pays every pair to the base oracle; later sessions running
// the same workload are answered entirely from the shared graph.
TEST(SessionPoolTest, SequentialSessionsShareEveryResolution) {
  const ObjectId n = 32;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/99);
  const SessionRun want =
      RunUnshared(dataset.oracle.get(), "knn", /*batch_transport=*/true);

  CountingOracle counting(dataset.oracle.get());
  SessionPool pool(&counting);
  for (int s = 0; s < 3; ++s) {
    std::unique_ptr<ResolverSession> session = pool.OpenSession();
    const SessionRun got =
        RunInSession(session.get(), "knn", /*batch_transport=*/true);
    EXPECT_EQ(got.blob, want.blob);
    ExpectSameCounters(got.stats, want.stats, "sequential session");
    if (s == 0) {
      EXPECT_EQ(got.stats.shared_graph_hits, 0u);
    } else {
      // Every pair the resolver shipped was already in the shared graph.
      EXPECT_EQ(got.stats.shared_graph_hits, got.stats.oracle_calls);
    }
  }
  // Base traffic equals ONE unshared run: sessions 2 and 3 were free.
  EXPECT_EQ(counting.calls(), want.stats.oracle_calls);
  EXPECT_EQ(pool.counters().shared_graph_hits, 2 * want.stats.oracle_calls);
  EXPECT_EQ(pool.counters().sessions_peak, 1u);
  EXPECT_EQ(pool.counters().sessions_opened, 3u);
}

// Run sequentially, coalescing cannot cost extra base calls: the coalesced
// pool ships exactly as many pairs as the uncoalesced one (the ISSUE's
// "total oracle calls with coalescing <= without" in its deterministic
// form; the concurrent form is covered by the <= unshared bound above).
TEST(SessionPoolTest, CoalescingNeverAddsBaseCalls) {
  const ObjectId n = 28;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/7);

  uint64_t base_calls[2] = {0, 0};
  for (const bool coalesce : {false, true}) {
    CountingOracle counting(dataset.oracle.get());
    SessionPoolOptions options;
    options.enable_coalescer = coalesce;
    SessionPool pool(&counting, options);
    for (int s = 0; s < 2; ++s) {
      std::unique_ptr<ResolverSession> session = pool.OpenSession();
      RunInSession(session.get(), "prim", /*batch_transport=*/true);
    }
    base_calls[coalesce ? 1 : 0] = counting.calls();
  }
  EXPECT_LE(base_calls[1], base_calls[0]);
  EXPECT_GT(base_calls[0], 0u);
}

// Shared DistanceStore: a pool records every base resolution durably; a
// SECOND pool over the same store answers the whole workload without one
// base-oracle call, and outputs stay byte-identical.
TEST(SessionPoolTest, StoreWarmStartsAcrossPools) {
  const ObjectId n = 30;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/4242);
  const SessionRun want =
      RunUnshared(dataset.oracle.get(), "boruvka", /*batch_transport=*/true);

  const std::string base_path =
      ::testing::TempDir() + "/session_shared_store";
  std::filesystem::remove(DistanceStore::SnapshotPath(base_path));
  std::filesystem::remove(DistanceStore::WalPath(base_path));
  SessionPoolOptions fp_options;  // fingerprint via a storeless pool
  SessionPool fp_pool(dataset.oracle.get(), fp_options);
  const StoreFingerprint fp = fp_pool.TenantFingerprint("dataset=random;n=30");

  uint64_t cold_calls = 0;
  {
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(base_path, fp);
    ASSERT_TRUE(store.ok()) << store.status();
    CountingOracle counting(dataset.oracle.get());
    SessionPoolOptions options;
    options.store = store.value().get();
    SessionPool pool(&counting, options);
    std::unique_ptr<ResolverSession> session = pool.OpenSession();
    const SessionRun got =
        RunInSession(session.get(), "boruvka", /*batch_transport=*/true);
    EXPECT_EQ(got.blob, want.blob);
    cold_calls = counting.calls();
    EXPECT_EQ(cold_calls, want.stats.oracle_calls);
    ASSERT_TRUE(store.value()->Close().ok());
  }
  {
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(base_path, fp);
    ASSERT_TRUE(store.ok()) << store.status();
    CountingOracle counting(dataset.oracle.get());
    SessionPoolOptions options;
    options.store = store.value().get();
    SessionPool pool(&counting, options);
    std::unique_ptr<ResolverSession> session = pool.OpenSession();
    const SessionRun got =
        RunInSession(session.get(), "boruvka", /*batch_transport=*/true);
    EXPECT_EQ(got.blob, want.blob);
    ExpectSameCounters(got.stats, want.stats, "warm store session");
    EXPECT_EQ(counting.calls(), 0u);  // everything answered by the store
    EXPECT_EQ(pool.counters().store_hits, want.stats.oracle_calls);
  }
}

// Tenant fingerprints namespace the store machinery: the same identity
// under two tenants must not validate against each other's files.
TEST(SessionPoolTest, TenantFingerprintsIsolateStores) {
  const ObjectId n = 16;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/5);
  SessionPoolOptions tenant_a;
  tenant_a.tenant = "tenant-a";
  SessionPoolOptions tenant_b;
  tenant_b.tenant = "tenant-b";
  SessionPool pool_a(dataset.oracle.get(), tenant_a);
  SessionPool pool_b(dataset.oracle.get(), tenant_b);
  const StoreFingerprint fp_a = pool_a.TenantFingerprint("dataset=x;n=16");
  const StoreFingerprint fp_b = pool_b.TenantFingerprint("dataset=x;n=16");
  EXPECT_NE(fp_a.identity_hash, fp_b.identity_hash);

  const std::string base_path = ::testing::TempDir() + "/tenant_a_store";
  std::filesystem::remove(DistanceStore::SnapshotPath(base_path));
  std::filesystem::remove(DistanceStore::WalPath(base_path));
  {
    StatusOr<std::unique_ptr<DistanceStore>> store =
        DistanceStore::Open(base_path, fp_a);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(store.value()->Record(0, 1, 1.5).ok());
    ASSERT_TRUE(store.value()->Close().ok());
  }
  StatusOr<std::unique_ptr<DistanceStore>> cross =
      DistanceStore::Open(base_path, fp_b);
  EXPECT_FALSE(cross.ok());
  EXPECT_EQ(cross.status().code(), StatusCode::kFailedPrecondition);
}

// Per-session fingerprints come from the pool's tenant namespace.
TEST(SessionPoolTest, SessionFingerprintMatchesPoolNamespace) {
  const ObjectId n = 12;
  Dataset dataset = MakeRandomMetric(n, /*seed=*/11);
  SessionPoolOptions options;
  options.tenant = "acme";
  SessionPool pool(dataset.oracle.get(), options);
  std::unique_ptr<ResolverSession> session = pool.OpenSession();
  EXPECT_TRUE(session->Fingerprint("ds=z") == pool.TenantFingerprint("ds=z"));
  EXPECT_FALSE(session->Fingerprint("ds=z") ==
               MakeStoreFingerprint("ds=z", n));
}

}  // namespace
}  // namespace metricprox
