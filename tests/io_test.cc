#include "data/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, RoundTripPreservesPoints) {
  const PointSet points = {{1.5, -2.25, 0.0}, {3.125, 4.0, 1e-7}};
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SavePointsCsv(path, points).ok());
  auto loaded = LoadPointsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, points);
}

TEST_F(IoTest, LoadSkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  WriteFile(path, "1,2\n\n3,4\n");
  auto loaded = LoadPointsCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST_F(IoTest, LoadRejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "1,2\n3,4,5\n");
  auto loaded = LoadPointsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, LoadRejectsGarbageFields) {
  const std::string path = TempPath("garbage.csv");
  WriteFile(path, "1,two\n");
  auto loaded = LoadPointsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("two"), std::string::npos);
}

TEST_F(IoTest, LoadMissingFileIsIoError) {
  auto loaded = LoadPointsCsv(TempPath("does-not-exist.csv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, LoadEmptyFileIsInvalid) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  EXPECT_FALSE(LoadPointsCsv(path).ok());
}

TEST_F(IoTest, LoadLinesSkipsBlanks) {
  const std::string path = TempPath("lines.txt");
  WriteFile(path, "ACGT\n\nTTTT\n");
  auto lines = LoadLines(path);
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines, (std::vector<std::string>{"ACGT", "TTTT"}));
}

}  // namespace
}  // namespace metricprox
