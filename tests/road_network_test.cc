#include "oracle/road_network.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

RoadNetworkConfig SmallConfig(uint64_t seed) {
  RoadNetworkConfig config;
  config.grid_width = 12;
  config.grid_height = 10;
  config.seed = seed;
  return config;
}

TEST(RoadNetworkTest, GeneratesExpectedNodeCount) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig(1));
  EXPECT_EQ(net.num_nodes(), 120u);
  EXPECT_GT(net.num_edges(), 0u);
}

TEST(RoadNetworkTest, FullyConnectedAfterThinning) {
  // Aggressive thinning still must yield one component.
  RoadNetworkConfig config = SmallConfig(3);
  config.edge_keep_probability = 0.05;
  const RoadNetwork net = RoadNetwork::Generate(config);
  const std::vector<double> d = net.ShortestPathsFrom(0);
  for (uint32_t v = 0; v < net.num_nodes(); ++v) {
    EXPECT_TRUE(std::isfinite(d[v])) << "node " << v << " unreachable";
  }
}

TEST(RoadNetworkTest, ShortestPathsSatisfyMetricAxiomsOnSamples) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig(5));
  std::mt19937_64 rng(17);
  // Precompute a few source rows and sample triangles among them.
  const uint32_t num_sources = 8;
  std::vector<uint32_t> sources;
  std::vector<std::vector<double>> rows;
  for (uint32_t s = 0; s < num_sources; ++s) {
    const uint32_t node = static_cast<uint32_t>(rng() % net.num_nodes());
    sources.push_back(node);
    rows.push_back(net.ShortestPathsFrom(node));
  }
  for (uint32_t a = 0; a < num_sources; ++a) {
    for (uint32_t b = 0; b < num_sources; ++b) {
      if (sources[a] == sources[b]) continue;
      const double dab = rows[a][sources[b]];
      EXPECT_GT(dab, 0.0);
      EXPECT_NEAR(dab, rows[b][sources[a]], 1e-9);  // symmetry
      for (uint32_t c = 0; c < num_sources; ++c) {
        EXPECT_LE(dab, rows[a][sources[c]] + rows[c][sources[b]] + 1e-9);
      }
    }
  }
}

TEST(RoadNetworkTest, DeterministicForFixedSeed) {
  const RoadNetwork a = RoadNetwork::Generate(SmallConfig(42));
  const RoadNetwork b = RoadNetwork::Generate(SmallConfig(42));
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.ShortestPathsFrom(7), b.ShortestPathsFrom(7));
}

TEST(RoadNetworkTest, NearestNodeFindsAnActualMinimizer) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig(9));
  const uint32_t found = net.NearestNode(3.3, 4.7);
  const auto& coords = net.coordinates();
  const auto dist2 = [&](uint32_t v) {
    const double dx = coords[v].first - 3.3;
    const double dy = coords[v].second - 4.7;
    return dx * dx + dy * dy;
  };
  for (uint32_t v = 0; v < net.num_nodes(); ++v) {
    EXPECT_LE(dist2(found), dist2(v) + 1e-12);
  }
}

TEST(RoadNetworkOracleTest, ServesSymmetricCachedDistances) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig(11));
  RoadNetworkOracle oracle(&net, {3, 17, 44, 90});
  EXPECT_EQ(oracle.num_objects(), 4u);
  const double d01 = oracle.Distance(0, 1);
  EXPECT_GT(d01, 0.0);
  // The reverse lookup must serve from object 0's cached row and agree.
  EXPECT_DOUBLE_EQ(oracle.Distance(1, 0), d01);
  // Unrelated pair triggers a new Dijkstra but stays consistent.
  const double d23 = oracle.Distance(2, 3);
  EXPECT_DOUBLE_EQ(oracle.Distance(3, 2), d23);
}

TEST(RoadNetworkOracleTest, DuplicateJunctionsDie) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig(13));
  EXPECT_DEATH({ RoadNetworkOracle oracle(&net, {5, 9, 5}); }, "distinct");
}

TEST(RoadNetworkOracleTest, MatchesDirectShortestPath) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig(15));
  RoadNetworkOracle oracle(&net, {2, 50, 80});
  const std::vector<double> from2 = net.ShortestPathsFrom(2);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 1), from2[50]);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 2), from2[80]);
}

TEST(RoadNetworkOracleTest, BatchDistanceMatchesScalar) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig(21));
  // Two oracles over the same network: one answers a single batch (rows
  // computed by parallel Dijkstras), the other answers scalar calls. The
  // min(i, j) source convention must make them bit-identical.
  RoadNetworkOracle batched(&net, {3, 17, 44, 90, 61, 108});
  RoadNetworkOracle scalar(&net, {3, 17, 44, 90, 61, 108});
  const ObjectId n = batched.num_objects();
  std::vector<IdPair> pairs;
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = 0; j < n; ++j) {
      if (i != j) pairs.push_back(IdPair{i, j});
    }
  }
  std::vector<double> out(pairs.size());
  batched.BatchDistance(pairs, out);
  for (size_t k = 0; k < pairs.size(); ++k) {
    EXPECT_DOUBLE_EQ(out[k], scalar.Distance(pairs[k].i, pairs[k].j))
        << "pair (" << pairs[k].i << ", " << pairs[k].j << ")";
  }
}

}  // namespace
}  // namespace metricprox
