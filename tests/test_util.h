#ifndef METRICPROX_TESTS_TEST_UTIL_H_
#define METRICPROX_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "bounds/resolver.h"
#include "core/oracle.h"
#include "core/types.h"
#include "data/synthetic.h"
#include "graph/partial_graph.h"
#include "oracle/matrix_oracle.h"

namespace metricprox {
namespace testing_util {

/// A self-owning oracle + graph + resolver stack for tests.
struct ResolverStack {
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<PartialDistanceGraph> graph;
  std::unique_ptr<BoundedResolver> resolver;
  std::unique_ptr<Bounder> bounder;  // optional, attached when non-null
};

/// Random shortest-path-closure metric stack of n objects.
inline ResolverStack MakeRandomStack(ObjectId n, uint64_t seed,
                                     double roughness = 0.9) {
  ResolverStack stack;
  stack.oracle = std::make_unique<MatrixOracle>(
      RandomShortestPathMetric(n, roughness, seed), n);
  stack.graph = std::make_unique<PartialDistanceGraph>(n);
  stack.resolver =
      std::make_unique<BoundedResolver>(stack.oracle.get(), stack.graph.get());
  return stack;
}

/// Families of random metrics for property-based tests. Every family goes
/// through a shortest-path closure, so the output is always a valid metric,
/// normalized to unit diameter. The families stress different regimes:
///   kUniform        — i.i.d. rough weights; generic position, few ties.
///   kClustered      — tight blocks far apart; the structure LAESA-style
///                     pivots and clustering workloads exploit.
///   kNearDegenerate — quantized near-equal weights; many exact ties and
///                     razor-thin decision margins.
enum class MetricFamily { kUniform, kClustered, kNearDegenerate };

inline constexpr MetricFamily kAllMetricFamilies[] = {
    MetricFamily::kUniform,
    MetricFamily::kClustered,
    MetricFamily::kNearDegenerate,
};

inline const char* MetricFamilyName(MetricFamily family) {
  switch (family) {
    case MetricFamily::kUniform:
      return "uniform";
    case MetricFamily::kClustered:
      return "clustered";
    case MetricFamily::kNearDegenerate:
      return "near-degenerate";
  }
  return "?";
}

/// In-place Floyd–Warshall closure followed by unit-diameter normalization.
/// Turns any symmetric, positively weighted complete graph into a metric
/// (closure only shortens, so positivity survives).
inline void CloseAndNormalizeMetric(std::vector<double>* d, ObjectId n) {
  std::vector<double>& m = *d;
  for (ObjectId k = 0; k < n; ++k) {
    for (ObjectId i = 0; i < n; ++i) {
      const double dik = m[i * n + k];
      for (ObjectId j = 0; j < n; ++j) {
        const double via = dik + m[k * n + j];
        if (via < m[i * n + j]) m[i * n + j] = via;
      }
    }
  }
  double diameter = 0.0;
  for (double v : m) diameter = std::max(diameter, v);
  for (double& v : m) v /= diameter;
}

/// Dense n*n metric from one of the three families, deterministic per
/// (family, n, seed).
inline std::vector<double> FamilyMetric(MetricFamily family, ObjectId n,
                                        uint64_t seed) {
  switch (family) {
    case MetricFamily::kUniform:
      return RandomShortestPathMetric(n, 0.9, seed);
    case MetricFamily::kClustered: {
      // Points fall into ~n/6 tight clusters; intra-cluster raw weights are
      // an order of magnitude below inter-cluster ones, and the closure
      // preserves that gap (an inter path must cross between clusters).
      const ObjectId k = std::max<ObjectId>(2, n / 6);
      std::mt19937_64 rng(seed);
      std::uniform_real_distribution<double> intra(0.02, 0.08);
      std::uniform_real_distribution<double> inter(0.8, 1.2);
      std::vector<ObjectId> cluster(n);
      for (ObjectId i = 0; i < n; ++i) cluster[i] = i % k;
      std::vector<double> d(static_cast<size_t>(n) * n, 0.0);
      for (ObjectId i = 0; i < n; ++i) {
        for (ObjectId j = i + 1; j < n; ++j) {
          const double w =
              cluster[i] == cluster[j] ? intra(rng) : inter(rng);
          d[i * n + j] = w;
          d[j * n + i] = w;
        }
      }
      CloseAndNormalizeMetric(&d, n);
      return d;
    }
    case MetricFamily::kNearDegenerate: {
      // Raw weights quantized to a 0.01 grid in [0.90, 1.10]: lots of exact
      // ties and near-zero comparison margins, the regime where sloppy
      // tie-breaking or epsilon misuse in bound schemes shows up.
      std::mt19937_64 rng(seed);
      std::vector<double> d(static_cast<size_t>(n) * n, 0.0);
      for (ObjectId i = 0; i < n; ++i) {
        for (ObjectId j = i + 1; j < n; ++j) {
          const double w = 0.90 + 0.01 * static_cast<double>(rng() % 21);
          d[i * n + j] = w;
          d[j * n + i] = w;
        }
      }
      CloseAndNormalizeMetric(&d, n);
      return d;
    }
  }
  return {};
}

/// ResolverStack over a family metric (the property-test workhorse).
inline ResolverStack MakeFamilyStack(MetricFamily family, ObjectId n,
                                     uint64_t seed) {
  ResolverStack stack;
  stack.oracle =
      std::make_unique<MatrixOracle>(FamilyMetric(family, n, seed), n);
  stack.graph = std::make_unique<PartialDistanceGraph>(n);
  stack.resolver =
      std::make_unique<BoundedResolver>(stack.oracle.get(), stack.graph.get());
  return stack;
}

/// Full ground-truth matrix read straight from the oracle (bypasses any
/// resolver accounting).
inline std::vector<double> GroundTruth(DistanceOracle* oracle) {
  const ObjectId n = oracle->num_objects();
  std::vector<double> d(static_cast<size_t>(n) * n, 0.0);
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = 0; j < n; ++j) {
      if (i != j) d[i * n + j] = oracle->Distance(i, j);
    }
  }
  return d;
}

/// Resolves `m` distinct random pairs through the resolver (populating the
/// partial graph the way a proximity algorithm would).
inline void ResolveRandomPairs(BoundedResolver* resolver, size_t m,
                               uint64_t seed) {
  const ObjectId n = resolver->num_objects();
  std::mt19937_64 rng(seed);
  size_t resolved = 0;
  size_t attempts = 0;
  const size_t max_pairs = static_cast<size_t>(n) * (n - 1) / 2;
  while (resolved < m && resolved < max_pairs && attempts < 100 * m + 1000) {
    ++attempts;
    const ObjectId i = static_cast<ObjectId>(rng() % n);
    const ObjectId j = static_cast<ObjectId>(rng() % n);
    if (i == j || resolver->Known(i, j)) continue;
    resolver->Distance(i, j);
    ++resolved;
  }
}

/// Reference tightest bounds computed independently of every bounder:
/// Floyd–Warshall over the known edges for TUB, brute-force wrap over every
/// known edge for TLB.
struct ReferenceBounds {
  std::vector<double> sp;  // n*n shortest-path (TUB) matrix
  ObjectId n;

  explicit ReferenceBounds(const PartialDistanceGraph& graph)
      : n(graph.num_objects()) {
    sp.assign(static_cast<size_t>(n) * n, kInfDistance);
    for (ObjectId i = 0; i < n; ++i) sp[i * n + i] = 0.0;
    for (const WeightedEdge& e : graph.edges()) {
      sp[e.u * n + e.v] = std::min(sp[e.u * n + e.v], e.weight);
      sp[e.v * n + e.u] = sp[e.u * n + e.v];
    }
    for (ObjectId k = 0; k < n; ++k) {
      for (ObjectId i = 0; i < n; ++i) {
        const double dik = sp[i * n + k];
        if (dik == kInfDistance) continue;
        for (ObjectId j = 0; j < n; ++j) {
          const double via = dik + sp[k * n + j];
          if (via < sp[i * n + j]) sp[i * n + j] = via;
        }
      }
    }
  }

  double Tub(ObjectId i, ObjectId j) const { return sp[i * n + j]; }

  double Tlb(const PartialDistanceGraph& graph, ObjectId i,
             ObjectId j) const {
    double lb = 0.0;
    for (const WeightedEdge& e : graph.edges()) {
      lb = std::max(lb, e.weight - sp[i * n + e.u] - sp[e.v * n + j]);
      lb = std::max(lb, e.weight - sp[i * n + e.v] - sp[e.u * n + j]);
    }
    return std::min(lb, Tub(i, j));
  }
};

}  // namespace testing_util
}  // namespace metricprox

#endif  // METRICPROX_TESTS_TEST_UTIL_H_
