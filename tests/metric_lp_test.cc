#include "lp/metric_lp.h"

#include <random>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ReferenceBounds;
using testing_util::ResolveRandomPairs;
using testing_util::ResolverStack;

TEST(MetricLpTest, PaperRunningExampleBounds) {
  // Figure 1 / Section 3.1: with dist(1,3) = 0.8 and dist(3,4) = 0.1 known
  // (distances normalized into [0,1]), the tightest bounds on dist(1,4) are
  // [0.7, 0.9].
  PartialDistanceGraph graph(7);
  graph.Insert(1, 3, 0.8);
  graph.Insert(3, 4, 0.1);
  MetricFeasibilitySystem system(graph, 1.0);
  auto bounds = system.LpBounds(1, 4);
  ASSERT_TRUE(bounds.ok()) << bounds.status();
  EXPECT_NEAR(bounds->lo, 0.7, 1e-7);
  EXPECT_NEAR(bounds->hi, 0.9, 1e-7);
}

TEST(MetricLpTest, KnownPairReturnsExactBounds) {
  PartialDistanceGraph graph(4);
  graph.Insert(0, 1, 0.4);
  MetricFeasibilitySystem system(graph, 1.0);
  auto bounds = system.LpBounds(0, 1);
  ASSERT_TRUE(bounds.ok());
  EXPECT_TRUE(bounds->IsExact());
  EXPECT_DOUBLE_EQ(bounds->lo, 0.4);
}

TEST(MetricLpTest, EmptyGraphGivesBoxBounds) {
  PartialDistanceGraph graph(5);
  MetricFeasibilitySystem system(graph, 1.0);
  auto bounds = system.LpBounds(2, 3);
  ASSERT_TRUE(bounds.ok());
  EXPECT_NEAR(bounds->lo, 0.0, 1e-9);
  EXPECT_NEAR(bounds->hi, 1.0, 1e-9);
}

TEST(MetricLpTest, FullyConstantExtraConstraintIsSignTest) {
  PartialDistanceGraph graph(3);
  graph.Insert(0, 1, 0.5);
  graph.Insert(1, 2, 0.2);
  MetricFeasibilitySystem system(graph, 1.0);
  // 0.5 <= 0.6 holds; 0.5 <= 0.4 does not.
  auto yes = system.FeasibleWith({DistanceTerm{0, 1, 1.0}}, 0.6);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = system.FeasibleWith({DistanceTerm{0, 1, 1.0}}, 0.4);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(MetricLpTest, FeasibilityConsistentWithGroundTruth) {
  // The true metric always satisfies the base system, so any extra
  // constraint satisfied by the truth must be feasible.
  ResolverStack stack = MakeRandomStack(8, 77);
  ResolveRandomPairs(stack.resolver.get(), 10, 3);
  MetricFeasibilitySystem system(*stack.graph, 1.0);
  std::mt19937_64 rng(9);
  for (int t = 0; t < 50; ++t) {
    const ObjectId a = static_cast<ObjectId>(rng() % 8);
    ObjectId b = static_cast<ObjectId>(rng() % 8);
    if (a == b) b = (b + 1) % 8;
    const double truth = stack.oracle->Distance(a, b);
    auto feasible =
        system.FeasibleWith({DistanceTerm{a, b, 1.0}}, truth + 1e-9);
    ASSERT_TRUE(feasible.ok());
    EXPECT_TRUE(*feasible) << "true assignment declared infeasible";
  }
}

// Key structural property (DESIGN.md): for a single unknown edge, the
// LP-tight bounds coincide with the graph-theoretic tightest bounds
// (shortest-path TUB, wrap TLB) — the LP only wins on *joint* comparisons.
class MetricLpVsGraphBoundsTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(MetricLpVsGraphBoundsTest, LpBoundsEqualSplubBounds) {
  ResolverStack stack = MakeRandomStack(7, GetParam());
  ResolveRandomPairs(stack.resolver.get(), 8, GetParam() + 1);
  MetricFeasibilitySystem system(*stack.graph, 1.0);
  ReferenceBounds reference(*stack.graph);

  const ObjectId n = 7;
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      if (stack.graph->Has(i, j)) continue;
      auto lp = system.LpBounds(i, j);
      ASSERT_TRUE(lp.ok());
      const double tub = std::min(reference.Tub(i, j), 1.0);
      const double tlb = reference.Tlb(*stack.graph, i, j);
      EXPECT_NEAR(lp->hi, tub, 1e-7) << "(" << i << "," << j << ")";
      EXPECT_NEAR(lp->lo, tlb, 1e-7) << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricLpVsGraphBoundsTest,
                         ::testing::Values(21, 42, 63, 84));

TEST(MetricLpTest, SystemCountsShrinkWithKnownEdges) {
  PartialDistanceGraph empty(6);
  MetricFeasibilitySystem all_unknown(empty, 1.0);
  EXPECT_EQ(all_unknown.num_variables(), 15);

  PartialDistanceGraph partial(6);
  partial.Insert(0, 1, 0.5);
  partial.Insert(2, 3, 0.5);
  MetricFeasibilitySystem fewer(partial, 1.0);
  EXPECT_EQ(fewer.num_variables(), 13);
  EXPECT_LT(fewer.num_rows(), all_unknown.num_rows());
}

}  // namespace
}  // namespace metricprox
