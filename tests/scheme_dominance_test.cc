// Differential scheme-tightness tests: on the same resolved edge set the
// schemes form a decision hierarchy — whatever Tri decides, SPLUB decides
// the same way (its shortest paths subsume Tri's 2-hop paths), and whatever
// SPLUB decides, DFT decides the same way (the LP contains every path and
// wrap constraint). And no scheme, ever, decides against ground truth.
//
// Thresholds are kept >= 1e-3 away from every attainable interval bound and
// from the true distance: DFT's simplex works with ~1e-7 feasibility
// tolerances, so dominance at thresholds inside that band is not a property
// the paper promises (the decision margin sends those to the oracle).

#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "bounds/adm.h"
#include "bounds/dft.h"
#include "bounds/laesa.h"
#include "bounds/pivots.h"
#include "bounds/scheme.h"
#include "bounds/splub.h"
#include "bounds/tri.h"
#include "bounds/weak.h"
#include "check/certificate.h"
#include "check/verifier.h"
#include "core/status.h"
#include "oracle/weak_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::GroundTruth;
using testing_util::kAllMetricFamilies;
using testing_util::MakeFamilyStack;
using testing_util::MetricFamily;
using testing_util::MetricFamilyName;
using testing_util::ResolveRandomPairs;
using testing_util::ResolverStack;

/// One prepared comparison scenario: a stack with a partially resolved
/// graph plus every bounder built over the same edge set.
struct Scenario {
  ResolverStack stack;
  PivotTable table;
  std::unique_ptr<TriBounder> tri;
  std::unique_ptr<SplubBounder> splub;
  std::unique_ptr<AdmBounder> adm;
  std::unique_ptr<LaesaBounder> laesa;
  std::unique_ptr<DftBounder> dft;
  std::vector<double> truth;
};

Scenario MakeScenario(ObjectId n, uint64_t seed, size_t extra_pairs) {
  Scenario s;
  s.stack = MakeFamilyStack(MetricFamily::kUniform, n, seed);
  BoundedResolver* r = s.stack.resolver.get();
  // Landmark rows plus scattered extra pairs — the edge sets proximity
  // algorithms actually produce.
  s.table = SelectMaxMinPivots(
      n, 3, [r](ObjectId a, ObjectId b) { return r->Distance(a, b); }, seed);
  ResolveRandomPairs(r, extra_pairs, seed + 1);
  const PartialDistanceGraph* graph = s.stack.graph.get();
  s.tri = std::make_unique<TriBounder>(graph);
  s.splub = std::make_unique<SplubBounder>(graph);
  s.adm = std::make_unique<AdmBounder>(graph);
  s.laesa = std::make_unique<LaesaBounder>(s.table);
  s.dft = std::make_unique<DftBounder>(graph, 1.0);
  s.truth = GroundTruth(s.stack.oracle.get());
  return s;
}

/// Thresholds to probe for pair (i, j): a coarse global grid, minus any
/// value within `gap` of an attainable bound or of the true distance.
std::vector<double> SafeThresholds(const Scenario& s, ObjectId i, ObjectId j,
                                   double gap = 1e-3) {
  const ObjectId n = s.stack.graph->num_objects();
  std::vector<double> anchors = {s.truth[i * n + j]};
  for (Bounder* b :
       {static_cast<Bounder*>(s.tri.get()), static_cast<Bounder*>(s.splub.get()),
        static_cast<Bounder*>(s.adm.get()),
        static_cast<Bounder*>(s.laesa.get())}) {
    const Interval bounds = b->Bounds(i, j);
    anchors.push_back(bounds.lo);
    if (bounds.hi != kInfDistance) anchors.push_back(bounds.hi);
  }
  std::vector<double> out;
  for (double t = 0.1; t < 1.35; t += 0.155) {
    bool safe = true;
    for (double a : anchors) {
      if (std::abs(t - a) < gap) safe = false;
    }
    if (safe) out.push_back(t);
  }
  return out;
}

/// Unresolved pairs of the scenario's graph, in id order.
std::vector<IdPair> UnresolvedPairs(const Scenario& s, size_t limit) {
  std::vector<IdPair> pairs;
  const ObjectId n = s.stack.graph->num_objects();
  for (ObjectId i = 0; i < n && pairs.size() < limit; ++i) {
    for (ObjectId j = i + 1; j < n && pairs.size() < limit; ++j) {
      if (!s.stack.graph->Has(i, j)) pairs.push_back({i, j});
    }
  }
  return pairs;
}

void ExpectDominates(const std::optional<bool>& weaker,
                     const std::optional<bool>& stronger, const char* label,
                     ObjectId i, ObjectId j, double t) {
  if (!weaker.has_value()) return;
  ASSERT_TRUE(stronger.has_value())
      << label << " undecided where the weaker scheme decided: pair (" << i
      << "," << j << ") t=" << t;
  EXPECT_EQ(*stronger, *weaker)
      << label << " contradicts the weaker scheme: pair (" << i << "," << j
      << ") t=" << t;
}

TEST(SchemeDominanceTest, TriSubsetOfSplubOnLessAndGreater) {
  for (uint64_t seed : {1ull, 5ull, 9ull}) {
    Scenario s = MakeScenario(20, seed, 30);
    for (const IdPair& p : UnresolvedPairs(s, 60)) {
      for (double t : SafeThresholds(s, p.i, p.j)) {
        ExpectDominates(s.tri->DecideLessThan(p.i, p.j, t),
                        s.splub->DecideLessThan(p.i, p.j, t), "splub(<)",
                        p.i, p.j, t);
        ExpectDominates(s.tri->DecideGreaterThan(p.i, p.j, t),
                        s.splub->DecideGreaterThan(p.i, p.j, t), "splub(>)",
                        p.i, p.j, t);
      }
    }
  }
}

TEST(SchemeDominanceTest, SplubSubsetOfDftOnLessAndGreater) {
  // DFT decisions are LP solves, so this runs on a smaller instance.
  Scenario s = MakeScenario(12, 3, 15);
  for (const IdPair& p : UnresolvedPairs(s, 14)) {
    for (double t : SafeThresholds(s, p.i, p.j)) {
      ExpectDominates(s.splub->DecideLessThan(p.i, p.j, t),
                      s.dft->DecideLessThan(p.i, p.j, t), "dft(<)", p.i, p.j,
                      t);
      ExpectDominates(s.splub->DecideGreaterThan(p.i, p.j, t),
                      s.dft->DecideGreaterThan(p.i, p.j, t), "dft(>)", p.i,
                      p.j, t);
    }
  }
}

TEST(SchemeDominanceTest, SplubIntervalsContainTriIntervals) {
  // The interval form of dominance, checked densely (no thresholds needed):
  // SPLUB's interval nests inside Tri's on every unresolved pair.
  for (uint64_t seed : {2ull, 6ull}) {
    Scenario s = MakeScenario(24, seed, 40);
    for (const IdPair& p : UnresolvedPairs(s, 1000)) {
      const Interval tri = s.tri->Bounds(p.i, p.j);
      const Interval splub = s.splub->Bounds(p.i, p.j);
      EXPECT_GE(splub.lo, tri.lo - 1e-12) << p.i << "," << p.j;
      EXPECT_LE(splub.hi, tri.hi + 1e-12) << p.i << "," << p.j;
    }
  }
}

TEST(SchemeDominanceTest, NoSchemeContradictsGroundTruth) {
  for (uint64_t seed : {4ull, 8ull}) {
    Scenario s = MakeScenario(18, seed, 25);
    const ObjectId n = s.stack.graph->num_objects();
    struct Named {
      const char* name;
      Bounder* bounder;
    };
    const Named schemes[] = {
        {"tri", s.tri.get()},     {"splub", s.splub.get()},
        {"adm", s.adm.get()},     {"laesa", s.laesa.get()},
    };
    for (const IdPair& p : UnresolvedPairs(s, 40)) {
      const double d = s.truth[p.i * n + p.j];
      for (double t : SafeThresholds(s, p.i, p.j)) {
        for (const Named& scheme : schemes) {
          const std::optional<bool> less =
              scheme.bounder->DecideLessThan(p.i, p.j, t);
          if (less.has_value()) {
            EXPECT_EQ(*less, d < t)
                << scheme.name << " pair (" << p.i << "," << p.j
                << ") t=" << t << " true d=" << d;
          }
          const std::optional<bool> greater =
              scheme.bounder->DecideGreaterThan(p.i, p.j, t);
          if (greater.has_value()) {
            EXPECT_EQ(*greater, d > t)
                << scheme.name << " pair (" << p.i << "," << p.j
                << ") t=" << t << " true d=" << d;
          }
        }
      }
    }
  }
}

TEST(SchemeDominanceTest, DftDoesNotContradictGroundTruth) {
  Scenario s = MakeScenario(12, 7, 15);
  const ObjectId n = s.stack.graph->num_objects();
  for (const IdPair& p : UnresolvedPairs(s, 12)) {
    const double d = s.truth[p.i * n + p.j];
    for (double t : SafeThresholds(s, p.i, p.j)) {
      const std::optional<bool> less = s.dft->DecideLessThan(p.i, p.j, t);
      if (less.has_value()) {
        EXPECT_EQ(*less, d < t) << "dft pair (" << p.i << "," << p.j
                                << ") t=" << t << " true d=" << d;
      }
    }
  }
}

// --- dual-oracle dominance -------------------------------------------------
//
// The weak oracle joins the intersection as a third bound source, so the
// Hybrid+Weak interval nests inside the Hybrid interval: whatever Hybrid
// decides, Hybrid+Weak decides identically, Hybrid+Weak decides strictly
// more, and (with an honest weak oracle) nothing it decides contradicts
// ground truth — across all three metric families.

/// Intersection of two certified intervals. Both sources are honest here,
/// so any disagreement is sub-margin fp noise; clamp like the resolver.
Interval Meet(const Interval& a, const Interval& b) {
  double lo = std::max(a.lo, b.lo);
  double hi = std::min(a.hi, b.hi);
  if (lo > hi) lo = hi;
  return Interval(lo, hi);
}

/// The resolver's threshold rule applied to a certified interval.
std::optional<bool> DecideAt(const Interval& b, double t) {
  const double margin = BoundDecisionMargin(t);
  if (b.hi < t - margin) return true;
  if (b.lo >= t + margin) return false;
  return std::nullopt;
}

TEST(SchemeDominanceTest, HybridWeakDecidesSupersetAcrossFamilies) {
  for (MetricFamily family : kAllMetricFamilies) {
    ResolverStack stack = MakeFamilyStack(family, 20, 13);
    BoundedResolver* r = stack.resolver.get();
    const PivotTable table = SelectMaxMinPivots(
        20, 3, [r](ObjectId a, ObjectId b) { return r->Distance(a, b); },
        13);
    ResolveRandomPairs(r, 30, 14);
    TriBounder tri(stack.graph.get());
    LaesaBounder laesa(table);
    WeakOracle::Options options;
    options.alpha = 1.25;
    options.seed = 99;
    WeakOracle weak_oracle(stack.oracle.get(), options);
    WeakBounder weak(&weak_oracle);
    const std::vector<double> truth = GroundTruth(stack.oracle.get());
    const ObjectId n = 20;

    size_t extra_decisions = 0;
    for (ObjectId i = 0; i < n; ++i) {
      for (ObjectId j = i + 1; j < n; ++j) {
        if (stack.graph->Has(i, j)) continue;
        const double d = truth[i * n + j];
        const Interval hybrid = Meet(tri.Bounds(i, j), laesa.Bounds(i, j));
        const Interval with_weak = Meet(hybrid, weak.Bounds(i, j));
        // An honest weak interval contains the truth, so the intersection
        // is a valid certified interval too.
        ASSERT_LE(with_weak.lo, d + 1e-9) << MetricFamilyName(family);
        ASSERT_GE(with_weak.hi, d - 1e-9) << MetricFamilyName(family);
        std::vector<double> anchors = {d, hybrid.lo, with_weak.lo,
                                       with_weak.lo};
        if (hybrid.hi != kInfDistance) anchors.push_back(hybrid.hi);
        if (with_weak.hi != kInfDistance) anchors.push_back(with_weak.hi);
        for (double t = 0.1; t < 1.35; t += 0.155) {
          bool safe = true;
          for (double a : anchors) {
            if (std::abs(t - a) < 1e-3) safe = false;
          }
          if (!safe) continue;
          const std::optional<bool> alone = DecideAt(hybrid, t);
          const std::optional<bool> joined = DecideAt(with_weak, t);
          if (alone.has_value()) {
            ASSERT_TRUE(joined.has_value())
                << MetricFamilyName(family) << " pair (" << i << "," << j
                << ") t=" << t;
            EXPECT_EQ(*joined, *alone)
                << MetricFamilyName(family) << " pair (" << i << "," << j
                << ") t=" << t;
          }
          if (joined.has_value()) {
            EXPECT_EQ(*joined, d < t)
                << MetricFamilyName(family) << " weak-joined decision "
                << "contradicts ground truth: pair (" << i << "," << j
                << ") t=" << t << " true d=" << d;
            if (!alone.has_value()) ++extra_decisions;
          }
        }
      }
    }
    EXPECT_GT(extra_decisions, 0u)
        << MetricFamilyName(family)
        << ": the weak interval decided nothing Hybrid could not";
  }
}

/// A weak oracle whose actual error (factor 2) blows through its advertised
/// model (alpha = 1.05) on every pair — the understated-alpha adversary.
class LyingWeakOracle : public WeakOracle {
 public:
  LyingWeakOracle(DistanceOracle* base, const Options& options)
      : WeakOracle(base, options) {}
  double Estimate(ObjectId i, ObjectId j) override {
    ChargeCall();
    return base()->Distance(i, j) * 2.0;
  }
};

TEST(SchemeDominanceTest, AdversarialWeakOracleFailsLoudlyNotWrongly) {
  for (MetricFamily family : kAllMetricFamilies) {
    ResolverStack stack = MakeFamilyStack(family, 16, 23);
    BoundedResolver* r = stack.resolver.get();
    WeakOracle::Options options;
    options.alpha = 1.05;  // advertised; the actual factor is 2.0
    LyingWeakOracle lying(stack.oracle.get(), options);
    WeakBounder weak(&lying);
    r->SetWeakBounder(&weak);

    const double d = stack.oracle->Distance(0, 1);
    // A threshold inside the advertised interval [w/1.05, 1.05*w] =
    // [~1.90*d, 2.10*d]: the lie cannot decide this comparison, so the
    // resolver pays a strong call — and the resolved distance lands far
    // outside the advertised interval, which must fail the run before any
    // answer is produced, never corrupt one.
    const StatusOr<double> outcome =
        r->RunFallible([&](BoundedResolver* rr) -> double {
          return rr->LessThan(0, 1, 2.0 * d) ? 1.0 : 0.0;
        });
    ASSERT_FALSE(outcome.ok()) << MetricFamilyName(family);
    EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition)
        << MetricFamilyName(family) << ": " << outcome.status();
    EXPECT_NE(outcome.status().ToString().find("weak oracle violated"),
              std::string::npos)
        << outcome.status();
    EXPECT_TRUE(weak.violated()) << MetricFamilyName(family);
  }
}

TEST(SchemeDominanceTest, VerifierRejectsUnderstatedAlphaCertificate) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, 10, 3);
  const double d = stack.resolver->Distance(2, 7);  // ground truth on record
  const Verifier verifier(stack.graph.get(), Verifier::Options{1.0});

  // The adversary's certificate: weak answer 2*d advertised at alpha=1.05,
  // "proving" d >= 1.9*d. The verifier recomputes the advertised interval
  // and sees the resolved distance outside it.
  CertifiedDecision cd;
  cd.decision.verb = DecisionVerb::kLessThan;
  cd.decision.outcome = false;
  cd.decision.i = 2;
  cd.decision.j = 7;
  cd.decision.threshold = 1.9 * d;
  cd.cert_ij.kind = BoundCertificate::Kind::kWeak;
  cd.cert_ij.weak = WeakWitness{2.0 * d, 1.05, 0.0};
  const Status lying = verifier.Check(cd);
  EXPECT_FALSE(lying.ok());

  // Control: the same weak answer honestly advertised (alpha wide enough
  // to contain the truth) supports a decision its interval really proves.
  CertifiedDecision honest;
  honest.decision.verb = DecisionVerb::kLessThan;
  honest.decision.outcome = true;
  honest.decision.i = 2;
  honest.decision.j = 7;
  honest.decision.threshold = 6.0 * d;
  honest.cert_ij.kind = BoundCertificate::Kind::kWeak;
  honest.cert_ij.weak = WeakWitness{2.0 * d, 2.5, 0.0};
  const Status ok = verifier.Check(honest);
  EXPECT_TRUE(ok.ok()) << ok;
}

TEST(SchemeDominanceTest, DftPairLessAgreesWithSplubAndTruth) {
  Scenario s = MakeScenario(12, 11, 15);
  const ObjectId n = s.stack.graph->num_objects();
  const std::vector<IdPair> pairs = UnresolvedPairs(s, 8);
  for (size_t a = 0; a < pairs.size(); ++a) {
    for (size_t b = a + 1; b < pairs.size(); ++b) {
      const IdPair& ij = pairs[a];
      const IdPair& kl = pairs[b];
      const double dij = s.truth[ij.i * n + ij.j];
      const double dkl = s.truth[kl.i * n + kl.j];
      // Stay out of the LP tolerance band around equality.
      if (std::abs(dij - dkl) < 1e-3) continue;
      const std::optional<bool> splub =
          s.splub->DecidePairLess(ij.i, ij.j, kl.i, kl.j);
      const std::optional<bool> dft =
          s.dft->DecidePairLess(ij.i, ij.j, kl.i, kl.j);
      if (dft.has_value()) {
        EXPECT_EQ(*dft, dij < dkl)
            << "(" << ij.i << "," << ij.j << ") vs (" << kl.i << "," << kl.j
            << ")";
      }
      if (splub.has_value()) {
        ASSERT_TRUE(dft.has_value())
            << "dft undecided where splub decided: (" << ij.i << "," << ij.j
            << ") vs (" << kl.i << "," << kl.j << ")";
        EXPECT_EQ(*dft, *splub);
      }
    }
  }
}

}  // namespace
}  // namespace metricprox
