#include <algorithm>

#include <gtest/gtest.h>

#include "algo/clarans.h"
#include "algo/pam.h"
#include "bounds/scheme.h"
#include "data/synthetic.h"
#include "oracle/vector_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

ResolverStack MakeClusteredStack(ObjectId n, uint64_t seed) {
  ResolverStack stack;
  stack.oracle = std::make_unique<VectorOracle>(
      GaussianMixturePoints(n, 2, /*num_clusters=*/4, /*range=*/100.0,
                            /*spread=*/2.0, seed),
      VectorMetric::kEuclidean);
  stack.graph = std::make_unique<PartialDistanceGraph>(n);
  stack.resolver =
      std::make_unique<BoundedResolver>(stack.oracle.get(), stack.graph.get());
  return stack;
}

double BruteTotalDeviation(DistanceOracle* oracle,
                           const std::vector<ObjectId>& medoids) {
  double td = 0.0;
  for (ObjectId j = 0; j < oracle->num_objects(); ++j) {
    double best = kInfDistance;
    for (ObjectId m : medoids) {
      best = std::min(best, j == m ? 0.0 : oracle->Distance(j, m));
    }
    td += best;
  }
  return td;
}

TEST(PamTest, TotalDeviationMatchesBruteForceRecount) {
  ResolverStack stack = MakeClusteredStack(40, 1);
  PamOptions options;
  options.num_medoids = 4;
  const ClusteringResult result = PamCluster(stack.resolver.get(), options);
  ASSERT_EQ(result.medoids.size(), 4u);
  EXPECT_NEAR(result.total_deviation,
              BruteTotalDeviation(stack.oracle.get(), result.medoids), 1e-9);
}

TEST(PamTest, AssignmentPointsToNearestMedoid) {
  ResolverStack stack = MakeClusteredStack(30, 2);
  PamOptions options;
  options.num_medoids = 3;
  const ClusteringResult result = PamCluster(stack.resolver.get(), options);
  for (ObjectId j = 0; j < 30; ++j) {
    const ObjectId assigned = result.medoids[result.assignment[j]];
    const double d_assigned =
        j == assigned ? 0.0 : stack.oracle->Distance(j, assigned);
    for (ObjectId m : result.medoids) {
      const double dm = j == m ? 0.0 : stack.oracle->Distance(j, m);
      EXPECT_LE(d_assigned, dm + 1e-9);
    }
  }
}

TEST(PamTest, SwapPhaseReachesALocalOptimum) {
  ResolverStack stack = MakeClusteredStack(30, 3);
  PamOptions options;
  options.num_medoids = 3;
  const ClusteringResult result = PamCluster(stack.resolver.get(), options);
  // No single swap may improve the deviation (checked brute force).
  const double td = result.total_deviation;
  for (uint32_t out = 0; out < result.medoids.size(); ++out) {
    for (ObjectId h = 0; h < 30; ++h) {
      if (std::find(result.medoids.begin(), result.medoids.end(), h) !=
          result.medoids.end()) {
        continue;
      }
      std::vector<ObjectId> swapped = result.medoids;
      swapped[out] = h;
      EXPECT_GE(BruteTotalDeviation(stack.oracle.get(), swapped), td - 1e-9);
    }
  }
}

class PamSchemeEquivalenceTest
    : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(PamSchemeEquivalenceTest, IdenticalMedoidsUnderEveryScheme) {
  const SchemeKind kind = GetParam();
  ResolverStack vanilla = MakeClusteredStack(36, 4);
  PamOptions options;
  options.num_medoids = 4;
  const ClusteringResult expected = PamCluster(vanilla.resolver.get(), options);

  ResolverStack plugged = MakeClusteredStack(36, 4);
  SchemeOptions scheme_options;
  auto bounder = MakeAndAttachScheme(kind, plugged.resolver.get(), scheme_options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  const ClusteringResult got = PamCluster(plugged.resolver.get(), options);

  EXPECT_EQ(got.medoids, expected.medoids)
      << "scheme " << SchemeKindName(kind);
  EXPECT_NEAR(got.total_deviation, expected.total_deviation, 1e-9);
  EXPECT_EQ(got.assignment, expected.assignment);
  EXPECT_EQ(got.iterations, expected.iterations);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PamSchemeEquivalenceTest,
                         ::testing::Values(SchemeKind::kTri,
                                           SchemeKind::kSplub,
                                           SchemeKind::kLaesa,
                                           SchemeKind::kTlaesa));

TEST(PamTest, TriSavesCallsVsWithoutPlug) {
  ResolverStack vanilla = MakeClusteredStack(48, 5);
  PamOptions options;
  options.num_medoids = 4;
  PamCluster(vanilla.resolver.get(), options);
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = MakeClusteredStack(48, 5);
  SchemeOptions scheme_options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), scheme_options);
  ASSERT_TRUE(bounder.ok());
  PamCluster(plugged.resolver.get(), options);
  EXPECT_LT(plugged.resolver->stats().oracle_calls, baseline);
}

TEST(ClaransTest, DeterministicForFixedSeed) {
  ResolverStack a = MakeClusteredStack(40, 6);
  ResolverStack b = MakeClusteredStack(40, 6);
  ClaransOptions options;
  options.num_medoids = 4;
  options.seed = 123;
  const ClusteringResult ra = ClaransCluster(a.resolver.get(), options);
  const ClusteringResult rb = ClaransCluster(b.resolver.get(), options);
  EXPECT_EQ(ra.medoids, rb.medoids);
  EXPECT_DOUBLE_EQ(ra.total_deviation, rb.total_deviation);
}

TEST(ClaransTest, TotalDeviationMatchesBruteForce) {
  ResolverStack stack = MakeClusteredStack(40, 7);
  ClaransOptions options;
  options.num_medoids = 4;
  const ClusteringResult result = ClaransCluster(stack.resolver.get(), options);
  EXPECT_NEAR(result.total_deviation,
              BruteTotalDeviation(stack.oracle.get(), result.medoids), 1e-9);
}

class ClaransSchemeEquivalenceTest
    : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(ClaransSchemeEquivalenceTest, SameTrajectoryUnderEveryScheme) {
  const SchemeKind kind = GetParam();
  ClaransOptions options;
  options.num_medoids = 4;
  options.seed = 321;
  ResolverStack vanilla = MakeClusteredStack(36, 8);
  const ClusteringResult expected =
      ClaransCluster(vanilla.resolver.get(), options);

  ResolverStack plugged = MakeClusteredStack(36, 8);
  SchemeOptions scheme_options;
  auto bounder = MakeAndAttachScheme(kind, plugged.resolver.get(), scheme_options);
  ASSERT_TRUE(bounder.ok());
  const ClusteringResult got = ClaransCluster(plugged.resolver.get(), options);
  EXPECT_EQ(got.medoids, expected.medoids)
      << "scheme " << SchemeKindName(kind);
  EXPECT_NEAR(got.total_deviation, expected.total_deviation, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ClaransSchemeEquivalenceTest,
                         ::testing::Values(SchemeKind::kTri,
                                           SchemeKind::kSplub,
                                           SchemeKind::kLaesa,
                                           SchemeKind::kTlaesa));

TEST(ClaransTest, TriSavesCallsVsWithoutPlug) {
  ClaransOptions options;
  options.num_medoids = 4;
  ResolverStack vanilla = MakeClusteredStack(48, 9);
  ClaransCluster(vanilla.resolver.get(), options);
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = MakeClusteredStack(48, 9);
  SchemeOptions scheme_options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), scheme_options);
  ASSERT_TRUE(bounder.ok());
  ClaransCluster(plugged.resolver.get(), options);
  EXPECT_LT(plugged.resolver->stats().oracle_calls, baseline);
}

TEST(MedoidCommonTest, SwapDeltaMatchesBruteForceDifference) {
  ResolverStack stack = MakeClusteredStack(24, 10);
  const std::vector<ObjectId> medoids = {1, 7, 15};
  auto table =
      medoid_internal::ComputeAssignment(stack.resolver.get(), medoids);
  for (ObjectId h = 0; h < 24; ++h) {
    if (medoid_internal::IsMedoid(medoids, h)) continue;
    for (uint32_t out = 0; out < medoids.size(); ++out) {
      const double delta = medoid_internal::SwapDelta(stack.resolver.get(),
                                                      medoids, table, out, h);
      std::vector<ObjectId> swapped = medoids;
      swapped[out] = h;
      const double expected =
          BruteTotalDeviation(stack.oracle.get(), swapped) -
          BruteTotalDeviation(stack.oracle.get(), medoids);
      ASSERT_NEAR(delta, expected, 1e-9)
          << "out=" << out << " h=" << h;
    }
  }
}

}  // namespace
}  // namespace metricprox
