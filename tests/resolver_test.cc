#include "bounds/resolver.h"

#include <cmath>
#include <limits>
#include <random>

#include <gtest/gtest.h>

#include "bounds/scheme.h"
#include "bounds/tri.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolveRandomPairs;
using testing_util::ResolverStack;

TEST(ResolverTest, DistanceResolvesOnceAndCaches) {
  ResolverStack stack = MakeRandomStack(6, 1);
  const double d = stack.resolver->Distance(0, 1);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 1u);
  EXPECT_TRUE(stack.resolver->Known(0, 1));
  EXPECT_DOUBLE_EQ(stack.resolver->Distance(1, 0), d);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 1u);  // cache hit
}

TEST(ResolverTest, SelfDistanceIsZeroWithoutOracle) {
  ResolverStack stack = MakeRandomStack(6, 2);
  EXPECT_DOUBLE_EQ(stack.resolver->Distance(3, 3), 0.0);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 0u);
  EXPECT_TRUE(stack.resolver->Known(3, 3));
  EXPECT_EQ(stack.resolver->Bounds(3, 3), Interval::Exact(0.0));
}

TEST(ResolverTest, BoundsExactForKnownPairs) {
  ResolverStack stack = MakeRandomStack(6, 3);
  const double d = stack.resolver->Distance(2, 4);
  const Interval b = stack.resolver->Bounds(2, 4);
  EXPECT_TRUE(b.IsExact());
  EXPECT_DOUBLE_EQ(b.lo, d);
}

TEST(ResolverTest, NoBounderMeansEveryComparisonHitsOracle) {
  ResolverStack stack = MakeRandomStack(8, 4);
  const double truth = stack.oracle->Distance(0, 1);
  EXPECT_EQ(stack.resolver->LessThan(0, 1, truth + 0.1), true);
  EXPECT_EQ(stack.resolver->stats().decided_by_oracle, 1u);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 1u);
  // Second identical comparison is served by the cache.
  EXPECT_EQ(stack.resolver->LessThan(0, 1, truth + 0.1), true);
  EXPECT_EQ(stack.resolver->stats().decided_by_cache, 1u);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 1u);
}

TEST(ResolverTest, TriSchemeSavesProvableComparisons) {
  ResolverStack stack = MakeRandomStack(10, 5);
  TriBounder tri(stack.graph.get());
  stack.resolver->SetBounder(&tri);
  // Resolve two sides of a triangle; the third is then bounded.
  const double d01 = stack.resolver->Distance(0, 1);
  const double d02 = stack.resolver->Distance(0, 2);
  const double ub = d01 + d02;
  // dist(1,2) <= d01 + d02, so this comparison must be decided by bounds.
  EXPECT_TRUE(stack.resolver->LessThan(1, 2, ub + 0.001));
  EXPECT_EQ(stack.resolver->stats().decided_by_bounds, 1u);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 2u);  // no third call
}

TEST(ResolverTest, StatsComparisonsAddUp) {
  ResolverStack stack = MakeRandomStack(12, 6);
  TriBounder tri(stack.graph.get());
  stack.resolver->SetBounder(&tri);
  std::mt19937_64 rng(7);
  for (int t = 0; t < 300; ++t) {
    const ObjectId i = static_cast<ObjectId>(rng() % 12);
    const ObjectId j = static_cast<ObjectId>(rng() % 12);
    if (i == j) continue;
    const double threshold = 0.1 * static_cast<double>(rng() % 12);
    // Mix the two-sided comparison with the one-sided proof verbs so the
    // partition below also covers the undecided bucket.
    switch (t % 3) {
      case 0:
        stack.resolver->LessThan(i, j, threshold);
        break;
      case 1:
        stack.resolver->ProvenGreaterThan(i, j, threshold);
        break;
      default:
        stack.resolver->ProvenGreaterOrEqual(i, j, threshold);
        break;
    }
  }
  const ResolverStats& s = stack.resolver->stats();
  EXPECT_EQ(s.comparisons, s.decided_by_cache + s.decided_by_bounds +
                               s.decided_by_oracle + s.undecided);
  // Every comparison charged to the oracle really reached it: with no
  // batching in play here, decided_by_oracle can never exceed oracle_calls.
  EXPECT_LE(s.decided_by_oracle, s.oracle_calls);
}

// The core exactness property of the whole framework: under every scheme,
// LessThan and PairLess return the ground-truth comparison outcome.
class ResolverExactnessTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, uint64_t>> {};

TEST_P(ResolverExactnessTest, ComparisonsMatchGroundTruth) {
  const auto [kind, seed] = GetParam();
  // DFT solves one or two dense LPs per undecided comparison and rebuilds
  // its constraint system after every resolution; a smaller instance keeps
  // this test meaningful without dominating the suite (especially under
  // sanitizers).
  const bool lp_heavy = kind == SchemeKind::kDft;
  const ObjectId n = lp_heavy ? 10 : 14;
  const int trials = lp_heavy ? 150 : 400;
  ResolverStack stack = MakeRandomStack(n, seed);
  SchemeOptions options;
  options.seed = seed;
  options.max_distance = 1.0;
  auto bounder = MakeAndAttachScheme(kind, stack.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();

  std::mt19937_64 rng(seed + 1);
  for (int t = 0; t < trials; ++t) {
    const ObjectId i = static_cast<ObjectId>(rng() % n);
    const ObjectId j = static_cast<ObjectId>(rng() % n);
    const ObjectId k = static_cast<ObjectId>(rng() % n);
    const ObjectId l = static_cast<ObjectId>(rng() % n);
    if (i == j || k == l) continue;
    const double truth_ij = stack.oracle->Distance(i, j);
    const double truth_kl = stack.oracle->Distance(k, l);
    if (t % 2 == 0) {
      const double threshold = 0.05 * static_cast<double>(rng() % 25);
      ASSERT_EQ(stack.resolver->LessThan(i, j, threshold),
                truth_ij < threshold)
          << SchemeKindName(kind) << " LessThan(" << i << "," << j << ","
          << threshold << ")";
    } else {
      ASSERT_EQ(stack.resolver->PairLess(i, j, k, l), truth_ij < truth_kl)
          << SchemeKindName(kind) << " PairLess(" << i << "," << j << ","
          << k << "," << l << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ResolverExactnessTest,
    ::testing::Combine(::testing::Values(SchemeKind::kNone, SchemeKind::kTri,
                                         SchemeKind::kSplub, SchemeKind::kAdm,
                                         SchemeKind::kLaesa,
                                         SchemeKind::kTlaesa,
                                         SchemeKind::kDft),
                       ::testing::Values(11, 17)));

TEST(ResolverTest, ProvenGreaterThanNeverCallsOracle) {
  ResolverStack stack = MakeRandomStack(10, 8);
  TriBounder tri(stack.graph.get());
  stack.resolver->SetBounder(&tri);
  const double d01 = stack.resolver->Distance(0, 1);
  const double d02 = stack.resolver->Distance(0, 2);
  const uint64_t calls = stack.resolver->stats().oracle_calls;
  // Wrap bound: dist(1,2) >= |d01 - d02|; anything below that is proven.
  const double gap = std::abs(d01 - d02);
  if (gap > 0.01) {
    EXPECT_TRUE(stack.resolver->ProvenGreaterThan(1, 2, gap * 0.5));
    EXPECT_EQ(stack.resolver->stats().decided_by_bounds, 1u);
  }
  // An unprovable threshold returns false without resolving.
  EXPECT_FALSE(stack.resolver->ProvenGreaterThan(1, 2, d01 + d02));
  EXPECT_EQ(stack.resolver->stats().oracle_calls, calls);
  // Known pairs answer exactly from the cache.
  EXPECT_EQ(stack.resolver->ProvenGreaterThan(0, 1, d01 - 0.001), true);
  EXPECT_EQ(stack.resolver->ProvenGreaterThan(0, 1, d01), false);
}

TEST(ResolverTest, ProvenVerbsChargeUndecidedNotOracle) {
  ResolverStack stack = MakeRandomStack(10, 8);
  TriBounder tri(stack.graph.get());
  stack.resolver->SetBounder(&tri);
  const double d01 = stack.resolver->Distance(0, 1);
  const double d02 = stack.resolver->Distance(0, 2);
  stack.resolver->ResetStats();
  // Unprovable thresholds: both verbs fail to prove the discard without an
  // oracle call — that is an *undecided* comparison, not an oracle one.
  EXPECT_FALSE(stack.resolver->ProvenGreaterThan(1, 2, d01 + d02));
  EXPECT_FALSE(stack.resolver->ProvenGreaterOrEqual(1, 2, d01 + d02));
  const ResolverStats& s = stack.resolver->stats();
  EXPECT_EQ(s.undecided, 2u);
  EXPECT_EQ(s.decided_by_oracle, 0u);
  EXPECT_EQ(s.oracle_calls, 0u);
  EXPECT_EQ(s.comparisons, 2u);
}

TEST(ResolverTest, PairLessWithBothKnownUsesCache) {
  ResolverStack stack = MakeRandomStack(6, 9);
  stack.resolver->Distance(0, 1);
  stack.resolver->Distance(2, 3);
  const uint64_t calls = stack.resolver->stats().oracle_calls;
  stack.resolver->PairLess(0, 1, 2, 3);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, calls);
  EXPECT_EQ(stack.resolver->stats().decided_by_cache, 1u);
}

TEST(ResolverTest, MismatchedGraphSizeDies) {
  ResolverStack stack = MakeRandomStack(6, 10);
  PartialDistanceGraph wrong(7);
  EXPECT_DEATH({ BoundedResolver r(stack.oracle.get(), &wrong); }, "Check");
}

TEST(ResolverBatchTest, ResolveAllDeduplicatesBeforeTheOracle) {
  ResolverStack stack = MakeRandomStack(8, 20);
  // (0,1) four times — twice reversed — plus a self pair: one oracle call.
  const std::vector<IdPair> pairs = {IdPair{0, 1}, IdPair{1, 0}, IdPair{3, 3},
                                     IdPair{0, 1}, IdPair{1, 0}};
  stack.resolver->ResolveAll(pairs);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 1u);
  EXPECT_EQ(stack.resolver->stats().batch_calls, 1u);
  EXPECT_EQ(stack.resolver->stats().batch_resolved_pairs, 1u);
  EXPECT_TRUE(stack.resolver->Known(0, 1));
  // Already-cached pairs never reach the oracle again (no double billing).
  stack.resolver->ResolveAll(std::vector<IdPair>{IdPair{1, 0}, IdPair{0, 1}});
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 1u);
  EXPECT_EQ(stack.resolver->stats().batch_calls, 1u);
}

TEST(ResolverBatchTest, ResolveAllValuesMatchOracle) {
  ResolverStack stack = MakeRandomStack(10, 21);
  std::vector<IdPair> pairs;
  for (ObjectId i = 0; i < 10; ++i) {
    for (ObjectId j = i + 1; j < 10; ++j) pairs.push_back(IdPair{i, j});
  }
  stack.resolver->ResolveAll(pairs);
  for (const IdPair& p : pairs) {
    EXPECT_DOUBLE_EQ(stack.resolver->Distance(p.i, p.j),
                     stack.oracle->Distance(p.i, p.j));
  }
  EXPECT_EQ(stack.resolver->stats().oracle_calls, pairs.size());
}

TEST(ResolverBatchTest, StatsInvariantsHoldForBatchVerbs) {
  ResolverStack stack = MakeRandomStack(12, 22);
  TriBounder tri(stack.graph.get());
  stack.resolver->SetBounder(&tri);
  std::mt19937_64 rng(23);
  for (int round = 0; round < 20; ++round) {
    std::vector<IdPair> pairs;
    std::vector<double> thresholds;
    for (int k = 0; k < 15; ++k) {
      pairs.push_back(IdPair{static_cast<ObjectId>(rng() % 12),
                             static_cast<ObjectId>(rng() % 12)});
      thresholds.push_back(0.1 * static_cast<double>(rng() % 14));
    }
    stack.resolver->FilterLessThan(pairs, thresholds);
    const ResolverStats& s = stack.resolver->stats();
    // The decided-by partition covers every comparison, batch or scalar...
    ASSERT_EQ(s.comparisons, s.decided_by_cache + s.decided_by_bounds +
                                 s.decided_by_oracle + s.undecided);
    // ...and each batch-resolved pair is also billed as an oracle call.
    ASSERT_LE(s.batch_resolved_pairs, s.oracle_calls);
  }
  EXPECT_GT(stack.resolver->stats().batch_calls, 0u);
}

TEST(ResolverBatchTest, FilterLessThanInfThresholdDecidedByBounds) {
  ResolverStack stack = MakeRandomStack(6, 24);
  const std::vector<IdPair> pairs = {IdPair{0, 1}};
  const std::vector<bool> out =
      stack.resolver->FilterLessThan(pairs, kInfDistance);
  EXPECT_TRUE(out[0]);
  EXPECT_EQ(stack.resolver->stats().decided_by_bounds, 1u);
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 0u);
}

TEST(ResolverBatchTest, FilterLessThanDuplicateAndSymmetricPairsBillOnce) {
  ResolverStack stack = MakeRandomStack(8, 30);
  const double truth = stack.oracle->Distance(0, 1);
  // The same unordered pair three times — once reversed — in one batch:
  // exactly one resolution happens, so exactly one comparison may be
  // attributed to the oracle; the repeats are answered by the cache the
  // scalar loop would have hit.
  const std::vector<IdPair> pairs = {IdPair{0, 1}, IdPair{1, 0}, IdPair{0, 1}};
  const std::vector<bool> out =
      stack.resolver->FilterLessThan(pairs, truth + 0.1);
  EXPECT_EQ(out, std::vector<bool>({true, true, true}));
  const ResolverStats& s = stack.resolver->stats();
  EXPECT_EQ(s.oracle_calls, 1u);
  EXPECT_EQ(s.decided_by_oracle, 1u);
  EXPECT_EQ(s.decided_by_cache, 2u);
  EXPECT_EQ(s.comparisons, 3u);
  EXPECT_EQ(s.comparisons, s.decided_by_cache + s.decided_by_bounds +
                               s.decided_by_oracle + s.undecided);
}

TEST(ResolverBatchTest, FilterLessThanNanThresholdIsAlwaysFalse) {
  ResolverStack stack = MakeRandomStack(8, 31);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // No comparison against NaN holds, including the self pair's 0 < NaN.
  const std::vector<IdPair> pairs = {IdPair{0, 1}, IdPair{2, 2}, IdPair{3, 4}};
  for (const bool batch_transport : {true, false}) {
    stack.resolver->SetBatchTransport(batch_transport);
    const std::vector<bool> out = stack.resolver->FilterLessThan(pairs, nan);
    EXPECT_EQ(out, std::vector<bool>({false, false, false}));
  }
}

TEST(ResolverBatchTest, FilterLessThanNegativeAndZeroThresholds) {
  ResolverStack stack = MakeRandomStack(8, 32);
  // Metric distances are positive for distinct objects and zero for self
  // pairs, so nothing is below a zero or negative threshold.
  const std::vector<IdPair> pairs = {IdPair{0, 1}, IdPair{2, 2}, IdPair{3, 4}};
  EXPECT_EQ(stack.resolver->FilterLessThan(pairs, 0.0),
            std::vector<bool>({false, false, false}));
  EXPECT_EQ(stack.resolver->FilterLessThan(pairs, -1.0),
            std::vector<bool>({false, false, false}));
  // The verb still answers exactly, not heuristically: a threshold above a
  // resolved distance flips back to true.
  const double truth = stack.oracle->Distance(0, 1);
  EXPECT_EQ(stack.resolver->FilterLessThan(
                std::vector<IdPair>{IdPair{0, 1}}, truth + 1.0),
            std::vector<bool>({true}));
}

TEST(ResolverBatchTest, OutOfRangeIdsDie) {
  ResolverStack stack = MakeRandomStack(6, 25);
  EXPECT_DEATH(stack.resolver->Distance(0, 6), "Check");
  EXPECT_DEATH(
      stack.resolver->ResolveAll(std::vector<IdPair>{IdPair{0, 6}}),
      "Check");
  EXPECT_DEATH(stack.resolver->FilterLessThan(
                   std::vector<IdPair>{IdPair{6, 0}}, 1.0),
               "Check");
}

// Batched comparisons must return ground truth under every scheme — and
// flipping the transport (one BatchDistance round-trip vs a per-pair
// Distance loop) must change neither the answers nor a single counter.
class ResolverBatchExactnessTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, bool>> {};

TEST_P(ResolverBatchExactnessTest, FilterLessThanMatchesGroundTruth) {
  const auto [kind, batch_transport] = GetParam();
  const ObjectId n = 12;
  ResolverStack stack = MakeRandomStack(n, 26);
  SchemeOptions options;
  options.seed = 26;
  options.max_distance = 1.0;
  auto bounder = MakeAndAttachScheme(kind, stack.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  stack.resolver->SetBatchTransport(batch_transport);

  std::mt19937_64 rng(27);
  for (int round = 0; round < 12; ++round) {
    std::vector<IdPair> pairs;
    std::vector<double> thresholds;
    for (int k = 0; k < 10; ++k) {
      pairs.push_back(IdPair{static_cast<ObjectId>(rng() % n),
                             static_cast<ObjectId>(rng() % n)});
      thresholds.push_back(0.05 * static_cast<double>(rng() % 25));
    }
    const std::vector<bool> out =
        stack.resolver->FilterLessThan(pairs, thresholds);
    for (size_t k = 0; k < pairs.size(); ++k) {
      const double truth = pairs[k].i == pairs[k].j
                               ? 0.0
                               : stack.oracle->Distance(pairs[k].i, pairs[k].j);
      ASSERT_EQ(out[k], truth < thresholds[k])
          << SchemeKindName(kind) << " pair (" << pairs[k].i << ","
          << pairs[k].j << ") vs " << thresholds[k];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ResolverBatchExactnessTest,
    ::testing::Combine(::testing::Values(SchemeKind::kNone, SchemeKind::kTri,
                                         SchemeKind::kSplub, SchemeKind::kAdm,
                                         SchemeKind::kLaesa,
                                         SchemeKind::kTlaesa,
                                         SchemeKind::kDft),
                       ::testing::Bool()));

TEST(ResolverBatchTest, TransportsAgreeOnAnswersAndCounters) {
  const ObjectId n = 14;
  auto run = [&](bool batch_transport) {
    ResolverStack stack = MakeRandomStack(n, 28);
    TriBounder tri(stack.graph.get());
    stack.resolver->SetBounder(&tri);
    stack.resolver->SetBatchTransport(batch_transport);
    std::vector<std::vector<bool>> outcomes;
    std::mt19937_64 rng(29);
    for (int round = 0; round < 15; ++round) {
      std::vector<IdPair> pairs;
      std::vector<double> thresholds;
      for (int k = 0; k < 12; ++k) {
        pairs.push_back(IdPair{static_cast<ObjectId>(rng() % n),
                               static_cast<ObjectId>(rng() % n)});
        thresholds.push_back(0.08 * static_cast<double>(rng() % 16));
      }
      outcomes.push_back(stack.resolver->FilterLessThan(pairs, thresholds));
    }
    return std::make_pair(outcomes, stack.resolver->stats());
  };
  const auto [batched, batched_stats] = run(true);
  const auto [scalar, scalar_stats] = run(false);
  EXPECT_EQ(batched, scalar);
  EXPECT_EQ(batched_stats.oracle_calls, scalar_stats.oracle_calls);
  EXPECT_EQ(batched_stats.comparisons, scalar_stats.comparisons);
  EXPECT_EQ(batched_stats.decided_by_bounds, scalar_stats.decided_by_bounds);
  EXPECT_EQ(batched_stats.decided_by_cache, scalar_stats.decided_by_cache);
  EXPECT_EQ(batched_stats.decided_by_oracle, scalar_stats.decided_by_oracle);
  EXPECT_EQ(batched_stats.bound_queries, scalar_stats.bound_queries);
  // Only the transport-attribution counters may differ.
  EXPECT_GT(batched_stats.batch_calls, 0u);
  EXPECT_EQ(scalar_stats.batch_calls, 0u);
  EXPECT_EQ(scalar_stats.batch_resolved_pairs, 0u);
}

}  // namespace
}  // namespace metricprox
