#include "data/datasets.h"

#include <random>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

// Samples symmetry, positivity, triangle inequality and the max_distance
// bound on a generated dataset.
void CheckDatasetIsMetric(Dataset* dataset, ObjectId n, uint64_t seed) {
  ASSERT_EQ(dataset->oracle->num_objects(), n);
  std::mt19937_64 rng(seed);
  for (int t = 0; t < 300; ++t) {
    const ObjectId i = static_cast<ObjectId>(rng() % n);
    const ObjectId j = static_cast<ObjectId>(rng() % n);
    const ObjectId k = static_cast<ObjectId>(rng() % n);
    if (i == j || j == k || i == k) continue;
    const double dij = dataset->oracle->Distance(i, j);
    ASSERT_GT(dij, 0.0) << dataset->name;
    ASSERT_LE(dij, dataset->max_distance) << dataset->name;
    ASSERT_DOUBLE_EQ(dij, dataset->oracle->Distance(j, i)) << dataset->name;
    ASSERT_LE(dij, dataset->oracle->Distance(i, k) +
                       dataset->oracle->Distance(k, j) + 1e-9)
        << dataset->name;
  }
}

TEST(DatasetsTest, SfPoiLikeIsMetric) {
  Dataset d = MakeSfPoiLike(60, 1);
  EXPECT_EQ(d.name, "sf-poi-like");
  ASSERT_NE(d.network, nullptr);
  CheckDatasetIsMetric(&d, 60, 11);
}

TEST(DatasetsTest, UrbanGbLikeIsMetric) {
  Dataset d = MakeUrbanGbLike(60, 2);
  EXPECT_EQ(d.name, "urbangb-like");
  CheckDatasetIsMetric(&d, 60, 12);
}

TEST(DatasetsTest, FlickrLikeIsMetric) {
  Dataset d = MakeFlickrLike(50, 64, 3);
  EXPECT_EQ(d.name, "flickr-like");
  CheckDatasetIsMetric(&d, 50, 13);
}

TEST(DatasetsTest, DnaLikeIsMetric) {
  Dataset d = MakeDnaLike(40, 48, 4);
  EXPECT_EQ(d.name, "dna-like");
  CheckDatasetIsMetric(&d, 40, 14);
}

TEST(DatasetsTest, ClusteredEuclideanIsMetric) {
  Dataset d = MakeClusteredEuclidean(40, 2, 3, 0.04, 6);
  EXPECT_EQ(d.name, "clustered-euclidean");
  CheckDatasetIsMetric(&d, 40, 16);
}

TEST(DatasetsTest, RandomMetricIsMetric) {
  Dataset d = MakeRandomMetric(30, 5);
  CheckDatasetIsMetric(&d, 30, 15);
  EXPECT_DOUBLE_EQ(d.max_distance, 1.0);
}

TEST(DatasetsTest, GeneratorsAreDeterministic) {
  Dataset a = MakeSfPoiLike(40, 9);
  Dataset b = MakeSfPoiLike(40, 9);
  std::mt19937_64 rng(1);
  for (int t = 0; t < 50; ++t) {
    const ObjectId i = static_cast<ObjectId>(rng() % 40);
    const ObjectId j = static_cast<ObjectId>(rng() % 40);
    if (i == j) continue;
    EXPECT_DOUBLE_EQ(a.oracle->Distance(i, j), b.oracle->Distance(i, j));
  }
}

TEST(DatasetsTest, DifferentSeedsDiffer) {
  Dataset a = MakeFlickrLike(20, 8, 10);
  Dataset b = MakeFlickrLike(20, 8, 11);
  bool any_diff = false;
  for (ObjectId j = 1; j < 20 && !any_diff; ++j) {
    any_diff = a.oracle->Distance(0, j) != b.oracle->Distance(0, j);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace metricprox
