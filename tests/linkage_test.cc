#include "algo/linkage.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "bounds/scheme.h"
#include "graph/union_find.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

// Naive O(n^3) single-linkage agglomeration straight from the definition:
// repeatedly merge the two clusters with the minimum inter-point distance.
std::vector<double> BruteMergeHeights(DistanceOracle* oracle) {
  const ObjectId n = oracle->num_objects();
  std::vector<std::set<ObjectId>> clusters(n);
  for (ObjectId o = 0; o < n; ++o) clusters[o].insert(o);

  std::vector<double> heights;
  while (clusters.size() > 1) {
    double best = kInfDistance;
    size_t bi = 0;
    size_t bj = 1;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        for (const ObjectId a : clusters[i]) {
          for (const ObjectId b : clusters[j]) {
            const double d = oracle->Distance(a, b);
            if (d < best) {
              best = d;
              bi = i;
              bj = j;
            }
          }
        }
      }
    }
    heights.push_back(best);
    clusters[bi].insert(clusters[bj].begin(), clusters[bj].end());
    clusters.erase(clusters.begin() + bj);
  }
  return heights;
}

TEST(SingleLinkageTest, MergeHeightsMatchNaiveAgglomeration) {
  const ObjectId n = 14;
  ResolverStack stack = MakeRandomStack(n, 91);
  const SingleLinkageResult result =
      SingleLinkageCluster(stack.resolver.get());
  ASSERT_EQ(result.merges.size(), static_cast<size_t>(n - 1));
  const std::vector<double> brute = BruteMergeHeights(stack.oracle.get());
  for (size_t m = 0; m < brute.size(); ++m) {
    ASSERT_NEAR(result.merges[m].height, brute[m], 1e-12) << "merge " << m;
  }
}

TEST(SingleLinkageTest, MergeHeightsNonDecreasing) {
  ResolverStack stack = MakeRandomStack(20, 92);
  const SingleLinkageResult result =
      SingleLinkageCluster(stack.resolver.get());
  for (size_t m = 1; m < result.merges.size(); ++m) {
    ASSERT_GE(result.merges[m].height, result.merges[m - 1].height);
  }
}

TEST(SingleLinkageTest, LabelsForKPartitionProperties) {
  const ObjectId n = 18;
  ResolverStack stack = MakeRandomStack(n, 93);
  const SingleLinkageResult result =
      SingleLinkageCluster(stack.resolver.get());

  for (const uint32_t k : {1u, 2u, 5u, 18u}) {
    const std::vector<uint32_t> labels = result.LabelsForK(k);
    ASSERT_EQ(labels.size(), static_cast<size_t>(n));
    std::set<uint32_t> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), k);
    // Dense labels 0..k-1, first occurrences in ascending order.
    uint32_t next = 0;
    for (const uint32_t label : labels) {
      ASSERT_LE(label, next);
      if (label == next) ++next;
    }
  }
}

TEST(SingleLinkageTest, CutIsConsistentWithMerges) {
  // The k-cluster partition must equal the components of the first n-k
  // merge edges.
  const ObjectId n = 16;
  ResolverStack stack = MakeRandomStack(n, 94);
  const SingleLinkageResult result =
      SingleLinkageCluster(stack.resolver.get());
  const uint32_t k = 4;
  const std::vector<uint32_t> labels = result.LabelsForK(k);
  UnionFind uf(n);
  for (size_t m = 0; m < static_cast<size_t>(n - k); ++m) {
    uf.Union(result.merges[m].u, result.merges[m].v);
  }
  for (ObjectId a = 0; a < n; ++a) {
    for (ObjectId b = a + 1; b < n; ++b) {
      ASSERT_EQ(labels[a] == labels[b], uf.Connected(a, b));
    }
  }
}

TEST(SingleLinkageTest, SchemeIndependentDendrogram) {
  const ObjectId n = 16;
  ResolverStack vanilla = MakeRandomStack(n, 95);
  const SingleLinkageResult expected =
      SingleLinkageCluster(vanilla.resolver.get());

  ResolverStack plugged = MakeRandomStack(n, 95);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const SingleLinkageResult got =
      SingleLinkageCluster(plugged.resolver.get());
  ASSERT_EQ(got.merges.size(), expected.merges.size());
  for (size_t m = 0; m < got.merges.size(); ++m) {
    EXPECT_EQ(got.merges[m].u, expected.merges[m].u);
    EXPECT_EQ(got.merges[m].v, expected.merges[m].v);
    EXPECT_DOUBLE_EQ(got.merges[m].height, expected.merges[m].height);
  }
}

TEST(SingleLinkageTest, TrivialSizes) {
  ResolverStack stack = MakeRandomStack(2, 96);
  const SingleLinkageResult result =
      SingleLinkageCluster(stack.resolver.get());
  ASSERT_EQ(result.merges.size(), 1u);
  EXPECT_EQ(result.LabelsForK(2), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(result.LabelsForK(1), (std::vector<uint32_t>{0, 0}));
}

}  // namespace
}  // namespace metricprox
