#include "graph/graph_io.h"

#include <fstream>

#include <gtest/gtest.h>

#include "bounds/resolver.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolveRandomPairs;
using testing_util::ResolverStack;

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(GraphIoTest, RoundTripPreservesEverything) {
  ResolverStack stack = MakeRandomStack(20, 31);
  ResolveRandomPairs(stack.resolver.get(), 40, 1);
  const std::string path = TempPath("graph.mpg");
  ASSERT_TRUE(SaveGraph(*stack.graph, path).ok());

  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_objects(), stack.graph->num_objects());
  ASSERT_EQ(loaded->num_edges(), stack.graph->num_edges());
  for (const WeightedEdge& e : stack.graph->edges()) {
    auto d = loaded->Get(e.u, e.v);
    ASSERT_TRUE(d.has_value());
    EXPECT_DOUBLE_EQ(*d, e.weight);  // full precision survives
  }
}

TEST_F(GraphIoTest, ResumedRunPaysNothingForOldEdges) {
  // Checkpoint-resume workflow: resolve, save, reload, wrap a resolver
  // around the loaded graph — previously paid pairs are cache hits.
  ResolverStack first = MakeRandomStack(12, 32);
  ResolveRandomPairs(first.resolver.get(), 20, 2);
  const std::string path = TempPath("resume.mpg");
  ASSERT_TRUE(SaveGraph(*first.graph, path).ok());
  const size_t paid = first.graph->num_edges();

  auto resumed_graph = LoadGraph(path);
  ASSERT_TRUE(resumed_graph.ok());
  ResolverStack second = MakeRandomStack(12, 32);  // same metric
  BoundedResolver resumed(second.oracle.get(), &*resumed_graph);
  for (const WeightedEdge& e : first.graph->edges()) {
    resumed.Distance(e.u, e.v);
  }
  EXPECT_EQ(resumed.stats().oracle_calls, 0u);
  EXPECT_EQ(resumed_graph->num_edges(), paid);
}

TEST_F(GraphIoTest, EmptyGraphRoundTrips) {
  PartialDistanceGraph graph(5);
  const std::string path = TempPath("empty.mpg");
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_objects(), 5u);
  EXPECT_EQ(loaded->num_edges(), 0u);
}

TEST_F(GraphIoTest, MissingFileIsIoError) {
  auto loaded = LoadGraph(TempPath("nope.mpg"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(GraphIoTest, BadMagicRejected) {
  const std::string path = TempPath("magic.mpg");
  WriteFile(path, "not-a-graph v1 3 0\n");
  auto loaded = LoadGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, UnsupportedVersionRejected) {
  const std::string path = TempPath("version.mpg");
  WriteFile(path, "metricprox-graph v9 3 0\n");
  EXPECT_FALSE(LoadGraph(path).ok());
}

TEST_F(GraphIoTest, TruncatedEdgeListRejected) {
  const std::string path = TempPath("truncated.mpg");
  WriteFile(path, "metricprox-graph v1 4 2\n0 1 0.5\n");
  auto loaded = LoadGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST_F(GraphIoTest, OutOfRangeAndDuplicateEdgesRejected) {
  const std::string bad_id = TempPath("badid.mpg");
  WriteFile(bad_id, "metricprox-graph v1 3 1\n0 7 0.5\n");
  EXPECT_FALSE(LoadGraph(bad_id).ok());

  const std::string dup = TempPath("dup.mpg");
  WriteFile(dup, "metricprox-graph v1 3 2\n0 1 0.5\n1 0 0.5\n");
  auto loaded = LoadGraph(dup);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("duplicate"), std::string::npos);
}

TEST_F(GraphIoTest, NegativeWeightRejected) {
  const std::string path = TempPath("negative.mpg");
  WriteFile(path, "metricprox-graph v1 3 1\n0 1 -0.5\n");
  EXPECT_FALSE(LoadGraph(path).ok());
}

}  // namespace
}  // namespace metricprox
