// Edge cases cutting across modules: degenerate sizes, boundary
// parameters, and configuration corners the per-module tests don't reach.

#include <gtest/gtest.h>

#include "algo/knn_graph.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "algo/reference.h"
#include "bounds/scheme.h"
#include "data/synthetic.h"
#include "harness/flags.h"
#include "harness/table.h"
#include "lp/metric_lp.h"
#include "lp/simplex.h"
#include "oracle/road_network.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

// ---- RoadNetwork configuration corners ----

TEST(RoadNetworkEdgeTest, NoDiagonalsStillConnected) {
  RoadNetworkConfig config;
  config.grid_width = 10;
  config.grid_height = 10;
  config.diagonals = false;
  config.seed = 3;
  const RoadNetwork net = RoadNetwork::Generate(config);
  const std::vector<double> d = net.ShortestPathsFrom(0);
  for (uint32_t v = 0; v < net.num_nodes(); ++v) {
    ASSERT_TRUE(std::isfinite(d[v]));
  }
}

TEST(RoadNetworkEdgeTest, HighwaysShortenLongHauls) {
  RoadNetworkConfig base;
  base.grid_width = 24;
  base.grid_height = 24;
  base.seed = 4;
  RoadNetworkConfig fast = base;
  fast.highway_fraction = 0.3;
  fast.highway_factor = 0.2;
  const RoadNetwork slow_net = RoadNetwork::Generate(base);
  const RoadNetwork fast_net = RoadNetwork::Generate(fast);
  // Same topology seed, so compare the mean distance from a corner.
  const auto mean = [](const std::vector<double>& d) {
    double acc = 0.0;
    for (const double v : d) acc += v;
    return acc / static_cast<double>(d.size());
  };
  EXPECT_LT(mean(fast_net.ShortestPathsFrom(0)),
            mean(slow_net.ShortestPathsFrom(0)));
}

TEST(RoadNetworkEdgeTest, InvalidConfigDies) {
  RoadNetworkConfig bad;
  bad.grid_width = 1;  // below the 2-minimum
  EXPECT_DEATH({ RoadNetwork::Generate(bad); }, "Check");
}

// ---- Resolver corners ----

TEST(ResolverEdgeTest, ResetStatsClearsEverything) {
  ResolverStack stack = MakeRandomStack(8, 201);
  stack.resolver->Distance(0, 1);
  stack.resolver->LessThan(2, 3, 0.5);
  EXPECT_GT(stack.resolver->stats().oracle_calls, 0u);
  stack.resolver->ResetStats();
  EXPECT_EQ(stack.resolver->stats().oracle_calls, 0u);
  EXPECT_EQ(stack.resolver->stats().comparisons, 0u);
  // The graph still remembers the resolved pair (stats are counters only).
  EXPECT_TRUE(stack.resolver->Known(0, 1));
}

TEST(ResolverEdgeTest, DetachingBounderRestoresNullBehavior) {
  ResolverStack stack = MakeRandomStack(8, 202);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, stack.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  stack.resolver->SetBounder(nullptr);
  const Interval b = stack.resolver->Bounds(0, 1);
  EXPECT_EQ(b, Interval::Unbounded());
}

TEST(ResolverEdgeTest, PairLessSharedEndpointsAndSelfPairs) {
  ResolverStack stack = MakeRandomStack(8, 203);
  // dist(i,i) = 0 < dist(k,l) for distinct k, l.
  EXPECT_TRUE(stack.resolver->PairLess(2, 2, 0, 1));
  EXPECT_FALSE(stack.resolver->PairLess(0, 1, 2, 2));
  // Identical pairs compare equal: strictly-less is false.
  stack.resolver->Distance(0, 1);
  EXPECT_FALSE(stack.resolver->PairLess(0, 1, 1, 0));
}

// ---- Algorithm boundary parameters ----

TEST(AlgorithmEdgeTest, KnnWithKEqualNMinusOne) {
  const ObjectId n = 10;
  ResolverStack stack = MakeRandomStack(n, 204);
  const KnnGraph g = BuildKnnGraph(stack.resolver.get(), KnnGraphOptions{9});
  const KnnGraph expected = ReferenceKnnGraph(stack.oracle.get(), 9);
  for (ObjectId u = 0; u < n; ++u) ASSERT_EQ(g[u], expected[u]);
}

TEST(AlgorithmEdgeTest, PamWithZeroSwapRoundsIsBuildOnly) {
  ResolverStack stack = MakeRandomStack(20, 205);
  PamOptions options;
  options.num_medoids = 3;
  options.max_swap_rounds = 0;
  const ClusteringResult result = PamCluster(stack.resolver.get(), options);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.medoids.size(), 3u);
  EXPECT_GT(result.total_deviation, 0.0);
}

TEST(AlgorithmEdgeTest, TwoObjectMst) {
  ResolverStack stack = MakeRandomStack(2, 206);
  const MstResult mst = PrimMst(stack.resolver.get());
  ASSERT_EQ(mst.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(mst.total_weight, stack.oracle->Distance(0, 1));
}

// ---- LP corners ----

TEST(LpEdgeTest, NoConstraintsMinimizesAtOrigin) {
  DenseLp lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 2.0};
  auto result = SimplexSolver().Solve(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->kind, LpResult::Kind::kOptimal);
  EXPECT_DOUBLE_EQ(result->objective_value, 0.0);
}

TEST(LpEdgeTest, NoConstraintsNegativeCostIsUnbounded) {
  DenseLp lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  auto result = SimplexSolver().Solve(lp);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, LpResult::Kind::kUnbounded);
}

TEST(LpEdgeTest, WrongObjectiveArityRejected) {
  DenseLp lp;
  lp.num_vars = 2;
  lp.a = {{1.0, 1.0}};
  lp.b = {1.0};
  lp.objective = {1.0};  // arity 1 != 2
  EXPECT_FALSE(SimplexSolver().Solve(lp).ok());
}

TEST(MetricLpEdgeTest, CompleteGraphHasNoVariables) {
  // Every pair resolved: FeasibleWith degrades to a constant sign test and
  // never touches the solver.
  ResolverStack stack = MakeRandomStack(5, 207);
  for (ObjectId i = 0; i < 5; ++i) {
    for (ObjectId j = i + 1; j < 5; ++j) stack.resolver->Distance(i, j);
  }
  MetricFeasibilitySystem system(*stack.graph, 1.0);
  EXPECT_EQ(system.num_variables(), 0);
  const double d01 = stack.oracle->Distance(0, 1);
  auto yes = system.FeasibleWith({DistanceTerm{0, 1, 1.0}}, d01 + 0.01);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = system.FeasibleWith({DistanceTerm{0, 1, 1.0}}, d01 - 0.01);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

// ---- Harness corners ----

TEST(FlagsEdgeTest, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=1", "--b=yes", "--c=false", "--d=0"};
  auto flags = Flags::Parse(5, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("a", false));
  EXPECT_TRUE(flags->GetBool("b", false));
  EXPECT_FALSE(flags->GetBool("c", true));
  EXPECT_FALSE(flags->GetBool("d", true));
}

TEST(FlagsEdgeTest, NegativeNumbers) {
  const char* argv[] = {"prog", "--n=-3", "--x=-0.5"};
  auto flags = Flags::Parse(3, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 0), -3);
  EXPECT_DOUBLE_EQ(flags->GetDouble("x", 0.0), -0.5);
}

TEST(TablePrinterEdgeTest, EmptyTableRendersHeaderOnly) {
  TablePrinter table({"a", "bb"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| a | bb |"), std::string::npos);
  EXPECT_NE(out.find("|---|----|"), std::string::npos);
}

TEST(TablePrinterEdgeTest, ShortRowPadsMissingCells) {
  TablePrinter table({"x", "y"});
  table.NewRow().AddCell("only");
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

// ---- Generators ----

TEST(SyntheticEdgeTest, SingleFamilyDnaStillDistinct) {
  const auto strings = DnaFamilyStrings(12, 24, 1, 3, 208);
  std::set<std::string> unique(strings.begin(), strings.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(SyntheticEdgeTest, MinimumSizeRandomMetric) {
  const std::vector<double> m = RandomShortestPathMetric(2, 0.5, 209);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_DOUBLE_EQ(m[1], m[2]);
  EXPECT_GT(m[1], 0.0);
}

}  // namespace
}  // namespace metricprox
