#include "graph/indexed_heap.h"

#include <algorithm>
#include <queue>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

TEST(IndexedMinHeapTest, PushPopOrders) {
  IndexedMinHeap heap(10);
  heap.Push(3, 0.5);
  heap.Push(1, 0.2);
  heap.Push(7, 0.9);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.Top(), 1u);
  EXPECT_DOUBLE_EQ(heap.TopKey(), 0.2);
  EXPECT_EQ(heap.Pop(), 1u);
  EXPECT_EQ(heap.Pop(), 3u);
  EXPECT_EQ(heap.Pop(), 7u);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMinHeapTest, DecreaseKeyReorders) {
  IndexedMinHeap heap(4);
  heap.Push(0, 1.0);
  heap.Push(1, 2.0);
  heap.Push(2, 3.0);
  heap.DecreaseKey(2, 0.5);
  EXPECT_EQ(heap.Top(), 2u);
  EXPECT_DOUBLE_EQ(heap.KeyOf(2), 0.5);
}

TEST(IndexedMinHeapTest, PushOrDecreaseIgnoresWorseKey) {
  IndexedMinHeap heap(4);
  heap.Push(0, 1.0);
  heap.PushOrDecrease(0, 2.0);  // worse: no-op
  EXPECT_DOUBLE_EQ(heap.KeyOf(0), 1.0);
  heap.PushOrDecrease(0, 0.25);  // better: decrease
  EXPECT_DOUBLE_EQ(heap.KeyOf(0), 0.25);
  heap.PushOrDecrease(3, 0.75);  // absent: insert
  EXPECT_TRUE(heap.Contains(3));
}

TEST(IndexedMinHeapTest, TiesBreakBySmallerId) {
  IndexedMinHeap heap(8);
  heap.Push(5, 1.0);
  heap.Push(2, 1.0);
  heap.Push(7, 1.0);
  EXPECT_EQ(heap.Pop(), 2u);
  EXPECT_EQ(heap.Pop(), 5u);
  EXPECT_EQ(heap.Pop(), 7u);
}

TEST(IndexedMinHeapTest, ContainsTracksMembership) {
  IndexedMinHeap heap(4);
  EXPECT_FALSE(heap.Contains(1));
  heap.Push(1, 0.1);
  EXPECT_TRUE(heap.Contains(1));
  heap.Pop();
  EXPECT_FALSE(heap.Contains(1));
}

// Property sweep: random interleavings of push / decrease / pop agree with
// a reference sorted structure.
class HeapRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapRandomizedTest, MatchesReferenceOrdering) {
  std::mt19937_64 rng(GetParam());
  const uint32_t universe = 200;
  IndexedMinHeap heap(universe);
  std::vector<double> key(universe, 0.0);
  std::vector<bool> present(universe, false);

  auto reference_top = [&]() {
    uint32_t best = universe;
    for (uint32_t i = 0; i < universe; ++i) {
      if (!present[i]) continue;
      if (best == universe || key[i] < key[best] ||
          (key[i] == key[best] && i < best)) {
        best = i;
      }
    }
    return best;
  };

  std::uniform_real_distribution<double> keys(0.0, 1.0);
  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng() % 3);
    const uint32_t id = static_cast<uint32_t>(rng() % universe);
    if (op == 0 && !present[id]) {
      key[id] = keys(rng);
      present[id] = true;
      heap.Push(id, key[id]);
    } else if (op == 1 && present[id]) {
      const double lower = key[id] * 0.5;
      key[id] = lower;
      heap.DecreaseKey(id, lower);
    } else if (op == 2 && !heap.empty()) {
      const uint32_t expected = reference_top();
      const uint32_t got = heap.Pop();
      ASSERT_EQ(got, expected);
      present[expected] = false;
    }
  }
  while (!heap.empty()) {
    const uint32_t expected = reference_top();
    ASSERT_EQ(heap.Pop(), expected);
    present[expected] = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapRandomizedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace metricprox
