#include "bounds/pivots.h"

#include <set>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

TEST(PivotsTest, DefaultNumLandmarksIsCeilLog2) {
  EXPECT_EQ(DefaultNumLandmarks(2), 1u);
  EXPECT_EQ(DefaultNumLandmarks(3), 2u);
  EXPECT_EQ(DefaultNumLandmarks(4), 2u);
  EXPECT_EQ(DefaultNumLandmarks(5), 3u);
  EXPECT_EQ(DefaultNumLandmarks(1024), 10u);
  EXPECT_EQ(DefaultNumLandmarks(1025), 11u);
}

TEST(PivotsTest, SelectsRequestedDistinctPivots) {
  ResolverStack stack = MakeRandomStack(20, 71);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable table = SelectMaxMinPivots(20, 5, resolve, 1);
  ASSERT_EQ(table.pivots.size(), 5u);
  ASSERT_EQ(table.dist.size(), 5u);
  std::set<ObjectId> unique(table.pivots.begin(), table.pivots.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(PivotsTest, TableRowsAreExactDistances) {
  ResolverStack stack = MakeRandomStack(15, 72);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable table = SelectMaxMinPivots(15, 3, resolve, 2);
  for (size_t p = 0; p < table.pivots.size(); ++p) {
    for (ObjectId o = 0; o < 15; ++o) {
      if (o == table.pivots[p]) {
        EXPECT_DOUBLE_EQ(table.dist[p][o], 0.0);
      } else {
        EXPECT_DOUBLE_EQ(table.dist[p][o],
                         stack.oracle->Distance(table.pivots[p], o));
      }
    }
  }
}

TEST(PivotsTest, GreedyChoiceMaximizesMinDistance) {
  ResolverStack stack = MakeRandomStack(18, 73);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable table = SelectMaxMinPivots(18, 4, resolve, 3);
  // Pivot r+1 must maximize min-distance to pivots 0..r among non-pivots.
  for (size_t r = 0; r + 1 < table.pivots.size(); ++r) {
    const ObjectId chosen = table.pivots[r + 1];
    auto min_to_prefix = [&](ObjectId o) {
      double best = kInfDistance;
      for (size_t p = 0; p <= r; ++p) {
        best = std::min(best, o == table.pivots[p]
                                  ? 0.0
                                  : stack.oracle->Distance(table.pivots[p], o));
      }
      return best;
    };
    const double chosen_gap = min_to_prefix(chosen);
    for (ObjectId o = 0; o < 18; ++o) {
      bool is_prefix_pivot = false;
      for (size_t p = 0; p <= r; ++p) {
        if (table.pivots[p] == o) is_prefix_pivot = true;
      }
      if (is_prefix_pivot) continue;
      EXPECT_LE(min_to_prefix(o), chosen_gap + 1e-12);
    }
  }
}

TEST(PivotsTest, KClampedToN) {
  ResolverStack stack = MakeRandomStack(4, 74);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable table = SelectMaxMinPivots(4, 10, resolve, 4);
  EXPECT_EQ(table.pivots.size(), 4u);
}

TEST(PivotsTest, DeterministicForFixedSeed) {
  ResolverStack stack = MakeRandomStack(16, 75);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable a = SelectMaxMinPivots(16, 4, resolve, 5);
  const PivotTable b = SelectMaxMinPivots(16, 4, resolve, 5);
  EXPECT_EQ(a.pivots, b.pivots);
}

}  // namespace
}  // namespace metricprox
