#include "bounds/pivots.h"

#include <set>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

TEST(PivotsTest, DefaultNumLandmarksIsCeilLog2) {
  EXPECT_EQ(DefaultNumLandmarks(2), 1u);
  EXPECT_EQ(DefaultNumLandmarks(3), 2u);
  EXPECT_EQ(DefaultNumLandmarks(4), 2u);
  EXPECT_EQ(DefaultNumLandmarks(5), 3u);
  EXPECT_EQ(DefaultNumLandmarks(1024), 10u);
  EXPECT_EQ(DefaultNumLandmarks(1025), 11u);
}

TEST(PivotsTest, SelectsRequestedDistinctPivots) {
  ResolverStack stack = MakeRandomStack(20, 71);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable table = SelectMaxMinPivots(20, 5, resolve, 1);
  ASSERT_EQ(table.num_pivots(), 5u);
  ASSERT_EQ(table.flat().size(), 5u * 20u);
  ASSERT_EQ(table.stride(), 5u);
  std::set<ObjectId> unique(table.pivots().begin(), table.pivots().end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(PivotsTest, TableRowsAreExactDistances) {
  ResolverStack stack = MakeRandomStack(15, 72);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable table = SelectMaxMinPivots(15, 3, resolve, 2);
  for (uint32_t p = 0; p < table.num_pivots(); ++p) {
    for (ObjectId o = 0; o < 15; ++o) {
      if (o == table.pivot(p)) {
        EXPECT_DOUBLE_EQ(table.At(p, o), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(table.At(p, o),
                         stack.oracle->Distance(table.pivot(p), o));
      }
    }
  }
}

TEST(PivotsTest, GreedyChoiceMaximizesMinDistance) {
  ResolverStack stack = MakeRandomStack(18, 73);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable table = SelectMaxMinPivots(18, 4, resolve, 3);
  // Pivot r+1 must maximize min-distance to pivots 0..r among non-pivots.
  for (uint32_t r = 0; r + 1 < table.num_pivots(); ++r) {
    const ObjectId chosen = table.pivot(r + 1);
    auto min_to_prefix = [&](ObjectId o) {
      double best = kInfDistance;
      for (uint32_t p = 0; p <= r; ++p) {
        best = std::min(best, o == table.pivot(p)
                                  ? 0.0
                                  : stack.oracle->Distance(table.pivot(p), o));
      }
      return best;
    };
    const double chosen_gap = min_to_prefix(chosen);
    for (ObjectId o = 0; o < 18; ++o) {
      bool is_prefix_pivot = false;
      for (uint32_t p = 0; p <= r; ++p) {
        if (table.pivot(p) == o) is_prefix_pivot = true;
      }
      if (is_prefix_pivot) continue;
      EXPECT_LE(min_to_prefix(o), chosen_gap + 1e-12);
    }
  }
}

TEST(PivotsTest, KClampedToN) {
  ResolverStack stack = MakeRandomStack(4, 74);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable table = SelectMaxMinPivots(4, 10, resolve, 4);
  EXPECT_EQ(table.num_pivots(), 4u);
}

TEST(PivotsTest, DeterministicForFixedSeed) {
  ResolverStack stack = MakeRandomStack(16, 75);
  const ResolveFn resolve = [&](ObjectId a, ObjectId b) {
    return stack.oracle->Distance(a, b);
  };
  const PivotTable a = SelectMaxMinPivots(16, 4, resolve, 5);
  const PivotTable b = SelectMaxMinPivots(16, 4, resolve, 5);
  ASSERT_EQ(a.num_pivots(), b.num_pivots());
  for (uint32_t p = 0; p < a.num_pivots(); ++p) {
    EXPECT_EQ(a.pivot(p), b.pivot(p));
  }
}

}  // namespace
}  // namespace metricprox
