#include "bounds/dft.h"

#include <random>

#include <gtest/gtest.h>

#include "bounds/splub.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolveRandomPairs;
using testing_util::ResolverStack;

TEST(DftBounderTest, DecidesFromTriangleKnowledge) {
  PartialDistanceGraph graph(4);
  graph.Insert(0, 1, 0.9);
  graph.Insert(1, 2, 0.1);
  DftBounder dft(&graph, 1.0);
  // dist(0,2) >= 0.8 by the wrap bound, so "dist(0,2) < 0.5" is certainly
  // false and "dist(0,2) < 1.01" certainly true (box bound).
  auto below = dft.DecideLessThan(0, 2, 0.5);
  ASSERT_TRUE(below.has_value());
  EXPECT_FALSE(*below);
  auto above = dft.DecideLessThan(0, 2, 1.0001);
  ASSERT_TRUE(above.has_value());
  EXPECT_TRUE(*above);
  // Inside the feasible interval nothing can be decided.
  EXPECT_FALSE(dft.DecideLessThan(0, 2, 0.9).has_value());
}

TEST(DftBounderTest, GreaterThanMirrorsLessThan) {
  PartialDistanceGraph graph(4);
  graph.Insert(0, 1, 0.9);
  graph.Insert(1, 2, 0.1);
  DftBounder dft(&graph, 1.0);
  auto above = dft.DecideGreaterThan(0, 2, 0.5);
  ASSERT_TRUE(above.has_value());
  EXPECT_TRUE(*above);  // dist(0,2) >= 0.8 > 0.5
  auto below = dft.DecideGreaterThan(0, 2, 1.0001);
  ASSERT_TRUE(below.has_value());
  EXPECT_FALSE(*below);
  EXPECT_FALSE(dft.DecideGreaterThan(0, 2, 0.9).has_value());
}

TEST(DftBounderTest, JointComparisonBeatsIntervalReasoning) {
  // Two unknown edges sharing structure: x_02 in [0.8, 1.0] via the wrap,
  // x_03 <= x_02's slack... construct a case where intervals overlap but
  // the joint system still decides.
  //
  // Known: d(0,1) = 0.9, d(1,2) = 0.1, d(1,3) = 0.45.
  //   x_02 in [0.8, 1.0];  x_03 in [0.45, 1.0] (wrap 0.9-0.45, cap 1.35->1).
  // Intervals overlap on [0.8, 1.0], yet the triangle on (0,2),(0,3),(2,3)
  // with x_23 <= d(2,1)+d(1,3) = 0.55 forces x_03 >= x_02 - 0.55 <= ...
  // The feasibility test explores exactly such joint constraints; here we
  // only assert it never contradicts the ground truth while deciding at
  // least as many comparisons as interval logic.
  ResolverStack stack = MakeRandomStack(8, 909);
  ResolveRandomPairs(stack.resolver.get(), 12, 5);
  DftBounder dft(stack.graph.get(), 1.0);
  SplubBounder splub(stack.graph.get());

  std::mt19937_64 rng(6);
  int dft_decided = 0;
  int splub_decided = 0;
  for (int t = 0; t < 120; ++t) {
    const ObjectId i = static_cast<ObjectId>(rng() % 8);
    const ObjectId j = static_cast<ObjectId>(rng() % 8);
    const ObjectId k = static_cast<ObjectId>(rng() % 8);
    const ObjectId l = static_cast<ObjectId>(rng() % 8);
    if (i == j || k == l || EdgeKey(i, j) == EdgeKey(k, l)) continue;
    const bool truth =
        stack.oracle->Distance(i, j) < stack.oracle->Distance(k, l);
    const auto dft_verdict = dft.DecidePairLess(i, j, k, l);
    const auto splub_verdict = splub.DecidePairLess(i, j, k, l);
    if (dft_verdict.has_value()) {
      ++dft_decided;
      ASSERT_EQ(*dft_verdict, truth) << "DFT contradicted ground truth";
    }
    if (splub_verdict.has_value()) {
      ++splub_decided;
      ASSERT_EQ(*splub_verdict, truth);
      // Anything interval logic decides, the LP must also decide: the LP
      // polytope is contained in the interval box.
      ASSERT_TRUE(dft_verdict.has_value())
          << "SPLUB decided but DFT did not";
    }
  }
  EXPECT_GE(dft_decided, splub_decided);
}

TEST(DftBounderTest, LpBoundsServeAsBounderInterface) {
  PartialDistanceGraph graph(7);
  graph.Insert(1, 3, 0.8);
  graph.Insert(3, 4, 0.1);
  DftBounder dft(&graph, 1.0);
  const Interval b = dft.Bounds(1, 4);
  EXPECT_NEAR(b.lo, 0.7, 1e-7);
  EXPECT_NEAR(b.hi, 0.9, 1e-7);
  EXPECT_GT(dft.total_pivots(), 0u);
}

TEST(DftBounderTest, SystemRebuildsAfterEdgeResolution) {
  PartialDistanceGraph graph(5);
  graph.Insert(0, 1, 0.6);
  DftBounder dft(&graph, 1.0);
  const Interval before = dft.Bounds(0, 2);
  EXPECT_NEAR(before.hi, 1.0, 1e-7);  // only the box binds
  graph.Insert(1, 2, 0.2);
  dft.OnEdgeResolved(1, 2, 0.2);
  const Interval after = dft.Bounds(0, 2);
  EXPECT_NEAR(after.hi, 0.8, 1e-7);  // 0-1-2 path now caps it
  EXPECT_NEAR(after.lo, 0.4, 1e-7);  // wrap of the 0.6 edge
}

}  // namespace
}  // namespace metricprox
