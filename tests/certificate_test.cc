// Tests for the certification subsystem (src/check): Verifier unit tests on
// hand-built witnesses (valid and corrupted), CertifyingBounder log
// inspection, and the audit acceptance matrix — kNN-graph, Prim, Borůvka and
// PAM audited under Tri, SPLUB and DFT with 100% of bound-decided
// comparisons verified and byte-identical outputs.

#include <cstdint>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "algo/boruvka.h"
#include "algo/knn_graph.h"
#include "algo/pam.h"
#include "algo/prim.h"
#include "bounds/scheme.h"
#include "check/certify.h"
#include "check/verifier.h"
#include "graph/partial_graph.h"
#include "harness/experiment.h"
#include "oracle/matrix_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::kAllMetricFamilies;
using testing_util::MakeFamilyStack;
using testing_util::MetricFamily;
using testing_util::MetricFamilyName;
using testing_util::ResolverStack;

// ---------------------------------------------------------------------------
// Verifier unit tests on a tiny hand-built graph. Resolved edges:
// (0,1)=0.4, (1,2)=0.3, (2,3)=0.5; pairs (0,2), (0,3), (1,3) unresolved.
// ---------------------------------------------------------------------------

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() : graph_(4), verifier_(&graph_, {.max_distance = 1.0}) {
    graph_.Insert(0, 1, 0.4);
    graph_.Insert(1, 2, 0.3);
    graph_.Insert(2, 3, 0.5);
  }

  static BoundCertificate IntervalCert() {
    BoundCertificate cert;
    cert.kind = BoundCertificate::Kind::kInterval;
    return cert;
  }

  PartialDistanceGraph graph_;
  Verifier verifier_;
};

TEST_F(VerifierTest, PathWitnessValueIsRhoTimesEdgeSum) {
  BoundCertificate cert = IntervalCert();
  cert.has_upper = true;
  cert.upper.nodes = {0, 1, 2};
  StatusOr<double> ub = verifier_.UpperValue(cert, 0, 2);
  ASSERT_TRUE(ub.ok()) << ub.status();
  EXPECT_DOUBLE_EQ(*ub, 0.7);

  cert.upper.rho = 1.5;
  ub = verifier_.UpperValue(cert, 0, 2);
  ASSERT_TRUE(ub.ok()) << ub.status();
  EXPECT_DOUBLE_EQ(*ub, 1.5 * 0.7);
}

TEST_F(VerifierTest, MissingWitnessesGiveTrivialBounds) {
  const BoundCertificate cert = IntervalCert();
  StatusOr<double> ub = verifier_.UpperValue(cert, 0, 2);
  ASSERT_TRUE(ub.ok());
  EXPECT_EQ(*ub, kInfDistance);
  StatusOr<double> lb = verifier_.LowerValue(cert, 0, 2);
  ASSERT_TRUE(lb.ok());
  EXPECT_EQ(*lb, 0.0);
}

TEST_F(VerifierTest, PathThroughUnresolvedEdgeIsFailedPrecondition) {
  BoundCertificate cert = IntervalCert();
  cert.has_upper = true;
  cert.upper.nodes = {0, 3, 2};  // (0,3) never resolved
  const StatusOr<double> ub = verifier_.UpperValue(cert, 0, 2);
  ASSERT_FALSE(ub.ok());
  EXPECT_EQ(ub.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(VerifierTest, PathWithWrongEndpointsIsInvalid) {
  BoundCertificate cert = IntervalCert();
  cert.has_upper = true;
  cert.upper.nodes = {1, 2};  // claims pair (0,2)
  const StatusOr<double> ub = verifier_.UpperValue(cert, 0, 2);
  ASSERT_FALSE(ub.ok());
  EXPECT_EQ(ub.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(VerifierTest, RelaxedPathWithThreeEdgesIsInvalid) {
  BoundCertificate cert = IntervalCert();
  cert.has_upper = true;
  cert.upper.nodes = {0, 1, 2, 3};  // all edges resolved, but rho > 1
  cert.upper.rho = 2.0;
  const StatusOr<double> ub = verifier_.UpperValue(cert, 0, 3);
  ASSERT_FALSE(ub.ok());
  EXPECT_EQ(ub.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(VerifierTest, WrapWitnessValueIsEdgeMinusPaths) {
  // lb on d(0,2) via edge (0,1): d(0,1) - len(1..2) = 0.4 - 0.3 = 0.1.
  BoundCertificate cert = IntervalCert();
  cert.has_lower = true;
  cert.lower.u = 0;
  cert.lower.v = 1;
  cert.lower.path_iu = {0};
  cert.lower.path_vj = {1, 2};
  const StatusOr<double> lb = verifier_.LowerValue(cert, 0, 2);
  ASSERT_TRUE(lb.ok()) << lb.status();
  EXPECT_DOUBLE_EQ(*lb, 0.1);
}

TEST_F(VerifierTest, WrapWithWrongPathEndpointsIsInvalid) {
  BoundCertificate cert = IntervalCert();
  cert.has_lower = true;
  cert.lower.u = 0;
  cert.lower.v = 1;
  cert.lower.path_iu = {0};
  cert.lower.path_vj = {2};  // must start at v == 1
  const StatusOr<double> lb = verifier_.LowerValue(cert, 0, 2);
  ASSERT_FALSE(lb.ok());
  EXPECT_EQ(lb.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(VerifierTest, IntervalDecisionAcceptedWhenWitnessImpliesIt) {
  CertifiedDecision cd;
  cd.decision = {DecisionVerb::kLessThan, true, 0, 2, kInvalidObject,
                 kInvalidObject, 0.8};
  cd.cert_ij = IntervalCert();
  cd.cert_ij.has_upper = true;
  cd.cert_ij.upper.nodes = {0, 1, 2};  // ub 0.7 < 0.8
  EXPECT_TRUE(verifier_.Check(cd).ok());
}

TEST_F(VerifierTest, IntervalDecisionRejectedWhenWitnessTooLoose) {
  CertifiedDecision cd;
  cd.decision = {DecisionVerb::kLessThan, true, 0, 2, kInvalidObject,
                 kInvalidObject, 0.6};
  cd.cert_ij = IntervalCert();
  cd.cert_ij.has_upper = true;
  cd.cert_ij.upper.nodes = {0, 1, 2};  // ub 0.7, not < 0.6
  const Status status = verifier_.Check(cd);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(VerifierTest, PairLessNeedsBothCertificates) {
  CertifiedDecision cd;
  cd.decision = {DecisionVerb::kPairLess, true, 0, 2, 1, 3, 0.0};
  cd.cert_ij = IntervalCert();
  cd.cert_ij.has_upper = true;
  cd.cert_ij.upper.nodes = {0, 1, 2};
  // cert_kl left kNone.
  const Status status = verifier_.Check(cd);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(VerifierTest, FarkasBoxUpperProvesLessThan) {
  // x_02 <= d(0,1) + d(1,2) = 0.7, claim refutes x_02 >= 0.8: the weighted
  // sum is 0 <= -0.1, violated everywhere in the box.
  CertifiedDecision cd;
  cd.decision = {DecisionVerb::kLessThan, true, 0, 2, kInvalidObject,
                 kInvalidObject, 0.8};
  cd.cert_ij.kind = BoundCertificate::Kind::kFarkas;
  cd.cert_ij.farkas.claim_weight = 1.0;
  cd.cert_ij.farkas.rows = {
      {FarkasRow::Kind::kBoxUpper, 0, 2, 1, 1.0},
  };
  EXPECT_TRUE(verifier_.Check(cd).ok()) << verifier_.Check(cd);
}

TEST_F(VerifierTest, FarkasRejectsNonInfeasibleCombination) {
  // Same row but the claim refutes x_02 >= 0.6 — x_02 = 0.65 satisfies
  // both, so the combination is not box-infeasible.
  CertifiedDecision cd;
  cd.decision = {DecisionVerb::kLessThan, true, 0, 2, kInvalidObject,
                 kInvalidObject, 0.6};
  cd.cert_ij.kind = BoundCertificate::Kind::kFarkas;
  cd.cert_ij.farkas.claim_weight = 1.0;
  cd.cert_ij.farkas.rows = {
      {FarkasRow::Kind::kBoxUpper, 0, 2, 1, 1.0},
  };
  const Status status = verifier_.Check(cd);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(VerifierTest, FarkasRejectsZeroClaimWeightAndNegativeMultipliers) {
  CertifiedDecision cd;
  cd.decision = {DecisionVerb::kLessThan, true, 0, 2, kInvalidObject,
                 kInvalidObject, 0.8};
  cd.cert_ij.kind = BoundCertificate::Kind::kFarkas;
  cd.cert_ij.farkas.rows = {
      {FarkasRow::Kind::kBoxUpper, 0, 2, 1, 1.0},
  };
  cd.cert_ij.farkas.claim_weight = 0.0;
  EXPECT_EQ(verifier_.Check(cd).code(), StatusCode::kInvalidArgument);

  cd.cert_ij.farkas.claim_weight = 1.0;
  cd.cert_ij.farkas.rows[0].weight = -1.0;
  EXPECT_EQ(verifier_.Check(cd).code(), StatusCode::kInvalidArgument);
}

TEST_F(VerifierTest, FarkasRejectsClaimOnResolvedPair) {
  // Deciding a pair that is already resolved cannot be a bound decision;
  // checking such a certificate late (after resolution) must be flagged.
  CertifiedDecision cd;
  cd.decision = {DecisionVerb::kLessThan, true, 0, 1, kInvalidObject,
                 kInvalidObject, 0.8};
  cd.cert_ij.kind = BoundCertificate::Kind::kFarkas;
  cd.cert_ij.farkas.claim_weight = 1.0;
  cd.cert_ij.farkas.rows = {
      {FarkasRow::Kind::kBoxUpper, 0, 1, 2, 1.0},
  };
  EXPECT_EQ(verifier_.Check(cd).code(), StatusCode::kFailedPrecondition);
}

TEST_F(VerifierTest, DecisionWithoutCertificateIsInvalid) {
  CertifiedDecision cd;
  cd.decision = {DecisionVerb::kLessThan, true, 0, 2, kInvalidObject,
                 kInvalidObject, 0.8};
  EXPECT_EQ(verifier_.Check(cd).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// CertifyingBounder: the shim certifies real decisions and keeps a log.
// ---------------------------------------------------------------------------

TEST(CertifyingBounderTest, LogsVerifiedIntervalCertificates) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, 16, 3);
  SchemeOptions options;
  StatusOr<std::unique_ptr<Bounder>> bounder =
      MakeAndAttachScheme(SchemeKind::kTri, stack.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  stack.bounder = std::move(bounder).value();

  stack.resolver->Distance(0, 1);
  stack.resolver->Distance(1, 2);

  CertifyingResolver certifying(stack.resolver.get(), /*max_distance=*/1.0);
  certifying.shim().set_keep_log(true);

  // Distances are normalized into (0, 1], and ub(0,2) <= d(0,1) + d(1,2)
  // <= 2, so this comparison is always bound-decided true.
  EXPECT_TRUE(stack.resolver->LessThan(0, 2, 3.0));

  const CertificationStats& stats = certifying.stats();
  EXPECT_EQ(stats.emitted, 1u);
  EXPECT_EQ(stats.verified, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.uncertified, 0u);

  ASSERT_EQ(certifying.shim().log().size(), 1u);
  const CertifiedDecision& cd = certifying.shim().log()[0];
  EXPECT_EQ(cd.decision.verb, DecisionVerb::kLessThan);
  EXPECT_TRUE(cd.decision.outcome);
  EXPECT_EQ(cd.cert_ij.kind, BoundCertificate::Kind::kInterval);
  EXPECT_TRUE(cd.cert_ij.has_upper);
}

TEST(CertifyingBounderTest, LogsVerifiedPairLessCertificates) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, 16, 7);
  SchemeOptions options;
  StatusOr<std::unique_ptr<Bounder>> bounder =
      MakeAndAttachScheme(SchemeKind::kSplub, stack.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  stack.bounder = std::move(bounder).value();
  testing_util::ResolveRandomPairs(stack.resolver.get(), 60, 19);

  CertifyingResolver certifying(stack.resolver.get(), /*max_distance=*/1.0);
  certifying.shim().set_keep_log(true);

  // Sweep pair-vs-pair comparisons where BOTH pairs are unresolved at call
  // time — the only shape the resolver routes to DecidePairLess — until
  // SPLUB separates some intervals. Each bound-decided PairLess must log
  // one certificate per pair, both independently verified.
  const ObjectId n = 16;
  const PartialDistanceGraph* graph = stack.graph.get();
  size_t pair_less_logged = 0;
  for (ObjectId i = 0; i < n && pair_less_logged == 0; ++i) {
    for (ObjectId j = i + 1; j < n && pair_less_logged == 0; ++j) {
      if (graph->Has(i, j)) continue;
      for (ObjectId k = 0; k < n && pair_less_logged == 0; ++k) {
        for (ObjectId l = k + 1; l < n; ++l) {
          if ((k == i && l == j) || graph->Has(k, l)) continue;
          stack.resolver->PairLess(i, j, k, l);
          for (const CertifiedDecision& cd : certifying.shim().log()) {
            if (cd.decision.verb == DecisionVerb::kPairLess) {
              ++pair_less_logged;
              EXPECT_EQ(cd.cert_ij.kind, BoundCertificate::Kind::kInterval);
              EXPECT_EQ(cd.cert_kl.kind, BoundCertificate::Kind::kInterval);
            }
          }
          // An undecided comparison resolves (i, j) via the oracle; move on
          // to the next left pair in that case.
          if (graph->Has(i, j)) break;
        }
      }
    }
  }
  const CertificationStats& stats = certifying.stats();
  ASSERT_GT(pair_less_logged, 0u) << "no PairLess comparison was bound-decided";
  EXPECT_EQ(stats.verified, stats.emitted);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(CertifyingBounderTest, RestoresInnerBounderOnDestruction) {
  ResolverStack stack = MakeFamilyStack(MetricFamily::kUniform, 12, 5);
  SchemeOptions options;
  StatusOr<std::unique_ptr<Bounder>> bounder =
      MakeAndAttachScheme(SchemeKind::kTri, stack.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  stack.bounder = std::move(bounder).value();

  {
    CertifyingResolver certifying(stack.resolver.get(), 1.0);
    EXPECT_EQ(certifying.shim().inner(), stack.bounder.get());
  }
  // After the shim is gone the resolver must keep working against the
  // original scheme (a dangling shim pointer would crash here).
  stack.resolver->Distance(0, 1);
  EXPECT_TRUE(stack.resolver->LessThan(0, 1, 2.0));
}

// ---------------------------------------------------------------------------
// Audit acceptance matrix: kNN-graph, Prim, Borůvka and PAM audited under
// Tri, SPLUB and DFT. Every cell must verify 100% of its bound-decided
// comparisons with byte-identical outputs and identical oracle_calls.
// DFT solves one or two dense LPs per decision, so its cells run on small n.
// ---------------------------------------------------------------------------

struct NamedWorkload {
  const char* name;
  Workload fn;
};

std::vector<NamedWorkload> AcceptanceWorkloads() {
  return {
      {"knn", [](BoundedResolver* r) {
         const KnnGraph g = BuildKnnGraph(r, {.k = 3});
         double sum = 0.0;
         for (const auto& neighbors : g) {
           for (const KnnNeighbor& nb : neighbors) sum += nb.distance;
         }
         return sum;
       }},
      {"prim", [](BoundedResolver* r) { return PrimMst(r).total_weight; }},
      {"boruvka",
       [](BoundedResolver* r) { return BoruvkaMst(r).total_weight; }},
      {"pam", [](BoundedResolver* r) {
         return PamCluster(r, {.num_medoids = 3}).total_deviation;
       }},
  };
}

void RunAcceptanceCell(SchemeKind scheme, bool bootstrap, ObjectId n,
                       uint64_t seed, const NamedWorkload& workload) {
  SCOPED_TRACE(::testing::Message()
               << SchemeKindName(scheme) << "/" << workload.name << " n=" << n
               << " seed=" << seed);
  const std::vector<double> metric =
      testing_util::FamilyMetric(MetricFamily::kUniform, n, seed);
  MatrixOracle oracle(metric, n);

  WorkloadConfig config;
  config.scheme = scheme;
  config.bootstrap = bootstrap;
  config.seed = seed;

  const StatusOr<AuditReport> report =
      AuditWorkload(&oracle, config, workload.fn);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->outputs_identical);
  EXPECT_TRUE(report->calls_identical);
  EXPECT_EQ(report->certification.failed, 0u)
      << report->certification.first_failure;
  EXPECT_EQ(report->certification.uncertified, 0u);
  EXPECT_GT(report->certification.emitted, 0u);
  EXPECT_EQ(report->certification.verified, report->certification.emitted);
  EXPECT_TRUE(report->passed());
}

TEST(AuditAcceptanceTest, TriVerifiesAllWorkloads) {
  for (const NamedWorkload& w : AcceptanceWorkloads()) {
    RunAcceptanceCell(SchemeKind::kTri, /*bootstrap=*/true, 32, 11, w);
  }
}

TEST(AuditAcceptanceTest, SplubVerifiesAllWorkloads) {
  for (const NamedWorkload& w : AcceptanceWorkloads()) {
    RunAcceptanceCell(SchemeKind::kSplub, /*bootstrap=*/true, 32, 11, w);
  }
}

TEST(AuditAcceptanceTest, DftVerifiesAllWorkloads) {
  // No bootstrap: landmark rows would inflate every LP. PAM runs at the
  // smallest n (its SWAP phase is the LP-heaviest of the four workloads).
  for (const NamedWorkload& w : AcceptanceWorkloads()) {
    const ObjectId n = std::string_view(w.name) == "pam" ? 10 : 12;
    RunAcceptanceCell(SchemeKind::kDft, /*bootstrap=*/false, n, 11, w);
  }
}

TEST(AuditAcceptanceTest, AuditHoldsAcrossMetricFamilies) {
  // The cheap schemes also audit cleanly on the clustered and
  // near-degenerate families (exact ties are the dangerous regime for
  // strict-inequality certificates).
  const Workload prim = [](BoundedResolver* r) {
    return PrimMst(r).total_weight;
  };
  for (MetricFamily family : kAllMetricFamilies) {
    for (SchemeKind scheme : {SchemeKind::kTri, SchemeKind::kSplub}) {
      SCOPED_TRACE(::testing::Message() << MetricFamilyName(family) << "/"
                                        << SchemeKindName(scheme));
      const std::vector<double> metric =
          testing_util::FamilyMetric(family, 28, 23);
      MatrixOracle oracle(metric, 28);
      WorkloadConfig config;
      config.scheme = scheme;
      config.bootstrap = true;
      const StatusOr<AuditReport> report =
          AuditWorkload(&oracle, config, prim);
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_TRUE(report->passed())
          << report->certification.first_failure;
      // Near-degenerate metrics can be all ties: the schemes then decide
      // nothing and the audit legitimately emits zero certificates. The
      // structured families must produce real decisions.
      if (family != MetricFamily::kNearDegenerate) {
        EXPECT_GT(report->certification.emitted, 0u);
      }
    }
  }
}

TEST(AuditAcceptanceTest, UncertifiableSchemeCountsNotFails) {
  // ADM has no certification support: its decisions land in `uncertified`,
  // and the decision-parity half of the audit still passes.
  const Workload prim = [](BoundedResolver* r) {
    return PrimMst(r).total_weight;
  };
  const std::vector<double> metric =
      testing_util::FamilyMetric(MetricFamily::kUniform, 24, 7);
  MatrixOracle oracle(metric, 24);
  WorkloadConfig config;
  config.scheme = SchemeKind::kAdm;
  config.bootstrap = true;
  const StatusOr<AuditReport> report = AuditWorkload(&oracle, config, prim);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->passed());
  EXPECT_EQ(report->certification.emitted, 0u);
  EXPECT_GT(report->certification.uncertified, 0u);
}

TEST(AuditAcceptanceTest, RejectsConfigsWithAStore) {
  // A store would let the audited pass replay the unaudited pass's edges
  // with zero oracle calls, voiding the A-B comparison.
  const std::vector<double> metric =
      testing_util::FamilyMetric(MetricFamily::kUniform, 8, 1);
  MatrixOracle oracle(metric, 8);
  WorkloadConfig config;
  config.store = reinterpret_cast<DistanceStore*>(0x1);  // never dereferenced
  const StatusOr<AuditReport> report = AuditWorkload(
      &oracle, config, [](BoundedResolver* r) { return PrimMst(r).total_weight; });
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace metricprox
