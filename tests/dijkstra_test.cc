#include "graph/dijkstra.h"

#include <random>
#include <set>

#include <gtest/gtest.h>

#include "core/types.h"
#include "graph/partial_graph.h"

namespace metricprox {
namespace {

TEST(DijkstraTest, PathThroughIntermediateBeatsNothing) {
  PartialDistanceGraph g(4);
  g.Insert(0, 1, 1.0);
  g.Insert(1, 2, 2.0);
  g.Insert(0, 2, 5.0);

  const std::vector<double> d = DijkstraSolver::ShortestPaths(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);  // 0-1-2 beats the direct 5.0 edge
  EXPECT_EQ(d[3], kInfDistance);  // unreachable
}

TEST(DijkstraTest, SourceOnlyGraph) {
  PartialDistanceGraph g(3);
  const std::vector<double> d = DijkstraSolver::ShortestPaths(g, 1);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_EQ(d[0], kInfDistance);
  EXPECT_EQ(d[2], kInfDistance);
}

TEST(DijkstraTest, ReusableSolverMatchesOneShot) {
  PartialDistanceGraph g(5);
  g.Insert(0, 1, 0.3);
  g.Insert(1, 2, 0.4);
  g.Insert(2, 3, 0.5);
  DijkstraSolver solver(5);
  std::vector<double> out;
  solver.Solve(g, 0, &out);
  EXPECT_EQ(out, DijkstraSolver::ShortestPaths(g, 0));
  solver.Solve(g, 3, &out);  // second use must reset state correctly
  EXPECT_EQ(out, DijkstraSolver::ShortestPaths(g, 3));
}

class DijkstraRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraRandomizedTest, MatchesFloydWarshall) {
  std::mt19937_64 rng(GetParam());
  const ObjectId n = 40;
  PartialDistanceGraph g(n);
  std::set<std::pair<ObjectId, ObjectId>> used;
  for (int e = 0; e < 200; ++e) {
    ObjectId a = static_cast<ObjectId>(rng() % n);
    ObjectId b = static_cast<ObjectId>(rng() % n);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!used.insert({a, b}).second) continue;
    g.Insert(a, b, 0.001 * static_cast<double>(rng() % 1000 + 1));
  }

  // Floyd–Warshall reference.
  std::vector<double> fw(static_cast<size_t>(n) * n, kInfDistance);
  for (ObjectId i = 0; i < n; ++i) fw[i * n + i] = 0.0;
  for (const WeightedEdge& e : g.edges()) {
    fw[e.u * n + e.v] = std::min(fw[e.u * n + e.v], e.weight);
    fw[e.v * n + e.u] = fw[e.u * n + e.v];
  }
  for (ObjectId k = 0; k < n; ++k) {
    for (ObjectId i = 0; i < n; ++i) {
      for (ObjectId j = 0; j < n; ++j) {
        fw[i * n + j] = std::min(fw[i * n + j], fw[i * n + k] + fw[k * n + j]);
      }
    }
  }

  for (ObjectId s = 0; s < n; ++s) {
    const std::vector<double> d = DijkstraSolver::ShortestPaths(g, s);
    for (ObjectId t = 0; t < n; ++t) {
      if (fw[s * n + t] == kInfDistance) {
        ASSERT_EQ(d[t], kInfDistance) << "source " << s << " target " << t;
      } else {
        ASSERT_NEAR(d[t], fw[s * n + t], 1e-12)
            << "source " << s << " target " << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandomizedTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace metricprox
