#include "core/types.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace metricprox {
namespace {

TEST(EdgeKeyTest, UnorderedPairNormalization) {
  const EdgeKey a(3, 7);
  const EdgeKey b(7, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.lo(), 3u);
  EXPECT_EQ(a.hi(), 7u);
}

TEST(EdgeKeyTest, DistinctPairsDiffer) {
  EXPECT_FALSE(EdgeKey(1, 2) == EdgeKey(1, 3));
  EXPECT_FALSE(EdgeKey(0, 5) == EdgeKey(1, 5));
}

TEST(EdgeKeyTest, OrderingIsLexicographicOnNormalizedPair) {
  EXPECT_LT(EdgeKey(0, 9).packed(), EdgeKey(1, 2).packed());
  EXPECT_TRUE(EdgeKey(0, 9) < EdgeKey(1, 2));
}

TEST(EdgeKeyTest, HashSpreadsOverBuckets) {
  EdgeKeyHash hasher;
  std::unordered_set<size_t> hashes;
  for (ObjectId i = 0; i < 40; ++i) {
    for (ObjectId j = i + 1; j < 40; ++j) {
      hashes.insert(hasher(EdgeKey(i, j)));
    }
  }
  // All 780 pairs should hash distinctly for a decent mixer.
  EXPECT_EQ(hashes.size(), 40u * 39u / 2u);
}

TEST(IntervalTest, ExactAndUnbounded) {
  const Interval e = Interval::Exact(0.25);
  EXPECT_TRUE(e.IsExact());
  EXPECT_EQ(e.width(), 0.0);
  EXPECT_TRUE(e.Contains(0.25));
  EXPECT_FALSE(e.Contains(0.2500001));

  const Interval u = Interval::Unbounded();
  EXPECT_FALSE(u.IsExact());
  EXPECT_TRUE(u.Contains(1e100));
  EXPECT_FALSE(u.Contains(-0.1));
}

TEST(IntervalTest, IntersectionTightens) {
  const Interval a(0.2, 0.9);
  const Interval b(0.4, 1.5);
  const Interval c = a.IntersectedWith(b);
  EXPECT_DOUBLE_EQ(c.lo, 0.4);
  EXPECT_DOUBLE_EQ(c.hi, 0.9);
}

TEST(IntervalTest, DisjointIntersectionDies) {
  const Interval a(0.0, 0.3);
  const Interval b(0.5, 0.8);
  EXPECT_DEATH({ (void)a.IntersectedWith(b); }, "disjoint");
}

TEST(IntervalTest, SelfEdgeKeyDisallowed) {
  // EdgeKey(i, i) is a programming error; it must die in debug builds and
  // is simply undefined in release, so only assert the DCHECK contract when
  // active.
#if METRICPROX_DCHECK_ACTIVE
  EXPECT_DEATH({ EdgeKey key(4, 4); }, "self-edge");
#else
  GTEST_SKIP() << "DCHECKs compiled out";
#endif
}

}  // namespace
}  // namespace metricprox
