#include <cmath>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/matrix_oracle.h"
#include "oracle/string_oracle.h"
#include "oracle/vector_oracle.h"
#include "oracle/wrappers.h"

namespace metricprox {
namespace {

// ---- Vector oracles ----

PointSet TinyPoints() {
  return {{0.0, 0.0}, {3.0, 4.0}, {1.0, 1.0}};
}

TEST(VectorOracleTest, EuclideanMatchesHand) {
  VectorOracle oracle(TinyPoints(), VectorMetric::kEuclidean);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 2), std::sqrt(2.0));
  EXPECT_EQ(oracle.num_objects(), 3u);
  EXPECT_EQ(oracle.name(), "euclidean");
}

TEST(VectorOracleTest, ManhattanMatchesHand) {
  VectorOracle oracle(TinyPoints(), VectorMetric::kManhattan);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(oracle.Distance(1, 2), 2.0 + 3.0);
}

TEST(VectorOracleTest, ChebyshevMatchesHand) {
  VectorOracle oracle(TinyPoints(), VectorMetric::kChebyshev);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(oracle.Distance(1, 2), 3.0);
}

TEST(VectorOracleTest, SymmetricByConstruction) {
  VectorOracle oracle(TinyPoints(), VectorMetric::kEuclidean);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 2), oracle.Distance(2, 0));
}

TEST(VectorOracleTest, RaggedPointSetDies) {
  PointSet ragged = {{0.0, 0.0}, {1.0}};
  EXPECT_DEATH({ VectorOracle o(std::move(ragged), VectorMetric::kEuclidean); },
               "ragged");
}

// Metric property sweep across all three vector metrics.
class VectorMetricPropertyTest
    : public ::testing::TestWithParam<VectorMetric> {};

TEST_P(VectorMetricPropertyTest, SampledTriangleInequalityHolds) {
  std::mt19937_64 rng(5);
  PointSet points(40, std::vector<double>(6));
  std::uniform_real_distribution<double> coord(-2.0, 2.0);
  for (auto& p : points) {
    for (double& c : p) c = coord(rng);
  }
  VectorOracle oracle(std::move(points), GetParam());
  for (int t = 0; t < 400; ++t) {
    const ObjectId i = static_cast<ObjectId>(rng() % 40);
    const ObjectId j = static_cast<ObjectId>(rng() % 40);
    const ObjectId k = static_cast<ObjectId>(rng() % 40);
    if (i == j || j == k || i == k) continue;
    const double dij = oracle.Distance(i, j);
    EXPECT_GE(dij, 0.0);
    EXPECT_DOUBLE_EQ(dij, oracle.Distance(j, i));
    EXPECT_LE(dij, oracle.Distance(i, k) + oracle.Distance(k, j) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, VectorMetricPropertyTest,
                         ::testing::Values(VectorMetric::kEuclidean,
                                           VectorMetric::kManhattan,
                                           VectorMetric::kChebyshev,
                                           VectorMetric::kAngular));

TEST(VectorOracleTest, AngularMatchesHand) {
  PointSet points = {{1.0, 0.0}, {0.0, 2.0}, {-3.0, 0.0}, {1.0, 1.0}};
  VectorOracle oracle(std::move(points), VectorMetric::kAngular);
  const double pi = std::acos(-1.0);
  EXPECT_NEAR(oracle.Distance(0, 1), pi / 2.0, 1e-12);   // orthogonal
  EXPECT_NEAR(oracle.Distance(0, 2), pi, 1e-12);         // opposite
  EXPECT_NEAR(oracle.Distance(0, 3), pi / 4.0, 1e-12);   // 45 degrees
  // Magnitude is irrelevant: only the direction matters.
  EXPECT_NEAR(oracle.Distance(1, 3), pi / 4.0, 1e-12);
  EXPECT_EQ(oracle.name(), "angular");
}

// ---- Levenshtein oracle ----

TEST(LevenshteinTest, HandCases) {
  EXPECT_EQ(LevenshteinOracle::EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinOracle::EditDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinOracle::EditDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinOracle::EditDistance("same", "same"), 0u);
  EXPECT_EQ(LevenshteinOracle::EditDistance("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, SymmetricAndTriangle) {
  std::vector<std::string> strings = {"ACGTACGT", "ACGTTCGT", "TTTTACGT",
                                      "ACG",      "GGGGGGGG", "ACGTACGA"};
  LevenshteinOracle oracle(strings);
  const ObjectId n = oracle.num_objects();
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dij = oracle.Distance(i, j);
      EXPECT_GT(dij, 0.0);  // strings are pairwise distinct
      EXPECT_DOUBLE_EQ(dij, oracle.Distance(j, i));
      for (ObjectId k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        EXPECT_LE(dij, oracle.Distance(i, k) + oracle.Distance(k, j));
      }
    }
  }
}

// ---- Matrix oracle ----

TEST(MatrixOracleTest, CreateValidatesSymmetry) {
  std::vector<double> m = {0, 1, 2, 0};  // 2x2 asymmetric (m[1]=1, m[2]=2)
  auto result = MatrixOracle::Create(std::move(m), 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixOracleTest, CreateValidatesTriangle) {
  // d(0,2)=5 > d(0,1)+d(1,2)=2: violates the triangle inequality.
  std::vector<double> m = {0, 1, 5,  //
                           1, 0, 1,  //
                           5, 1, 0};
  auto result = MatrixOracle::Create(std::move(m), 3);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("triangle"), std::string::npos);
}

TEST(MatrixOracleTest, CreateValidatesDiagonalAndSize) {
  std::vector<double> bad_diag = {0.5, 1, 1, 0};
  EXPECT_FALSE(MatrixOracle::Create(std::move(bad_diag), 2).ok());
  std::vector<double> bad_size = {0, 1, 1};
  EXPECT_FALSE(MatrixOracle::Create(std::move(bad_size), 2).ok());
}

TEST(MatrixOracleTest, AcceptsValidMetricAndServesLookups) {
  std::vector<double> m = {0, 1, 2,  //
                           1, 0, 1,  //
                           2, 1, 0};
  auto result = MatrixOracle::Create(std::move(m), 3);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->Distance(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(result->At(1, 2), 1.0);
}

// ---- Wrappers ----

TEST(CountingOracleTest, CountsEveryCall) {
  VectorOracle base(TinyPoints(), VectorMetric::kEuclidean);
  CountingOracle counting(&base);
  EXPECT_EQ(counting.calls(), 0u);
  counting.Distance(0, 1);
  counting.Distance(0, 1);  // repeated calls still count
  counting.Distance(1, 2);
  EXPECT_EQ(counting.calls(), 3u);
  counting.ResetCalls();
  EXPECT_EQ(counting.calls(), 0u);
  EXPECT_EQ(counting.num_objects(), base.num_objects());
}

TEST(SimulatedCostOracleTest, AccumulatesVirtualLatency) {
  VectorOracle base(TinyPoints(), VectorMetric::kEuclidean);
  SimulatedCostOracle costed(&base, 1.2);
  costed.Distance(0, 1);
  costed.Distance(1, 2);
  EXPECT_DOUBLE_EQ(costed.simulated_seconds(), 2.4);
  EXPECT_DOUBLE_EQ(costed.Distance(0, 2), base.Distance(0, 2));
  costed.Reset();
  EXPECT_DOUBLE_EQ(costed.simulated_seconds(), 0.0);
}

TEST(VerifyingOracleTest, PassesThroughAValidMetric) {
  VectorOracle base(TinyPoints(), VectorMetric::kEuclidean);
  VerifyingOracle verified(&base, /*check_every=*/1);
  for (int round = 0; round < 10; ++round) {
    EXPECT_DOUBLE_EQ(verified.Distance(0, 1), base.Distance(0, 1));
    verified.Distance(1, 2);
    verified.Distance(0, 2);
  }
  EXPECT_GT(verified.checks_performed(), 0u);
}

namespace {

// A deliberately broken "oracle": asymmetric distances.
class AsymmetricOracle : public DistanceOracle {
 public:
  double Distance(ObjectId i, ObjectId j) override {
    return i < j ? 1.0 : 2.0;
  }
  ObjectId num_objects() const override { return 4; }
  std::string_view name() const override { return "asymmetric"; }
};

// Violates the triangle inequality: one pair is far beyond any detour.
class NonTriangleOracle : public DistanceOracle {
 public:
  double Distance(ObjectId i, ObjectId j) override {
    const EdgeKey key(i, j);
    return (key.lo() == 0 && key.hi() == 1) ? 100.0 : 1.0;
  }
  ObjectId num_objects() const override { return 4; }
  std::string_view name() const override { return "non-triangle"; }
};

}  // namespace

TEST(VerifyingOracleTest, CatchesAsymmetry) {
  AsymmetricOracle bad;
  VerifyingOracle verified(&bad, /*check_every=*/1);
  EXPECT_DEATH(verified.Distance(0, 1), "asymmetric");
}

TEST(VerifyingOracleTest, CatchesTriangleViolation) {
  NonTriangleOracle bad;
  VerifyingOracle verified(&bad, /*check_every=*/1);
  EXPECT_DEATH(
      {
        for (int round = 0; round < 32; ++round) {
          verified.Distance(0, 1);  // eventually samples a witness k
        }
      },
      "triangle");
}

TEST(CachingOracleTest, SecondLookupIsAHit) {
  VectorOracle base(TinyPoints(), VectorMetric::kEuclidean);
  CachingOracle cached(&base);
  const double d1 = cached.Distance(0, 1);
  const double d2 = cached.Distance(1, 0);  // symmetric key: cache hit
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.hits(), 1u);
}

// ---- BatchDistance ----

// Every pair, both orientations, plus repeats: the batch entry point must
// return bit-identical values to the scalar one regardless of the oracle's
// internal parallel grain.
std::vector<IdPair> AllOrientedPairs(ObjectId n) {
  std::vector<IdPair> pairs;
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = 0; j < n; ++j) {
      if (i != j) pairs.push_back(IdPair{i, j});
    }
  }
  pairs.push_back(IdPair{0, 1});  // duplicate entries are legal
  return pairs;
}

void ExpectBatchMatchesScalar(DistanceOracle* oracle) {
  const std::vector<IdPair> pairs = AllOrientedPairs(oracle->num_objects());
  std::vector<double> out(pairs.size());
  oracle->BatchDistance(pairs, out);
  for (size_t k = 0; k < pairs.size(); ++k) {
    EXPECT_DOUBLE_EQ(out[k], oracle->Distance(pairs[k].i, pairs[k].j))
        << "pair (" << pairs[k].i << ", " << pairs[k].j << ")";
  }
}

TEST(VectorOracleTest, BatchDistanceMatchesScalar) {
  std::mt19937_64 rng(23);
  PointSet points(130, std::vector<double>(5));
  std::uniform_real_distribution<double> coord(-1.0, 1.0);
  for (auto& p : points) {
    for (double& x : p) x = coord(rng);
  }
  VectorOracle oracle(std::move(points), VectorMetric::kEuclidean);
  // 130 objects -> well past the parallel grain of 64 pairs.
  ExpectBatchMatchesScalar(&oracle);
}

TEST(LevenshteinTest, BatchDistanceMatchesScalar) {
  std::vector<std::string> strings = {"ACGTACGT", "ACGTTCGT", "TTTTACGT",
                                      "ACG",      "GGGGGGGG", "ACGTACGA",
                                      "CCCCACGT", "ACGTCCCC"};
  LevenshteinOracle oracle(strings);
  ExpectBatchMatchesScalar(&oracle);
}

TEST(MatrixOracleTest, BatchDistanceMatchesScalar) {
  // 4-point metric: unit square with diagonals sqrt(2).
  const double r2 = std::sqrt(2.0);
  std::vector<double> m = {0, 1, r2, 1,   //
                           1, 0, 1,  r2,  //
                           r2, 1, 0, 1,   //
                           1, r2, 1, 0};
  auto result = MatrixOracle::Create(std::move(m), 4);
  ASSERT_TRUE(result.ok());
  ExpectBatchMatchesScalar(&*result);
}

TEST(CountingOracleTest, BatchBillsEveryPair) {
  VectorOracle base(TinyPoints(), VectorMetric::kEuclidean);
  CountingOracle counting(&base);
  const std::vector<IdPair> pairs = {{0, 1}, {1, 2}, {0, 1}};
  std::vector<double> out(pairs.size());
  counting.BatchDistance(pairs, out);
  EXPECT_EQ(counting.calls(), 3u);  // duplicates still count
  EXPECT_DOUBLE_EQ(out[0], base.Distance(0, 1));
  EXPECT_DOUBLE_EQ(out[1], base.Distance(1, 2));
}

TEST(SimulatedCostOracleTest, BatchAccumulatesPerPairLatency) {
  VectorOracle base(TinyPoints(), VectorMetric::kEuclidean);
  SimulatedCostOracle costed(&base, 0.5);
  const std::vector<IdPair> pairs = {{0, 1}, {1, 2}, {0, 2}};
  std::vector<double> out(pairs.size());
  costed.BatchDistance(pairs, out);
  EXPECT_DOUBLE_EQ(costed.simulated_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(out[2], base.Distance(0, 2));
}

}  // namespace
}  // namespace metricprox
