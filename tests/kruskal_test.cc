#include "algo/kruskal.h"

#include <set>

#include <gtest/gtest.h>

#include "algo/prim.h"
#include "algo/reference.h"
#include "bounds/scheme.h"
#include "data/synthetic.h"
#include "graph/union_find.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::MakeRandomStack;
using testing_util::ResolverStack;

std::set<EdgeKey> EdgeSet(const MstResult& mst) {
  std::set<EdgeKey> keys;
  for (const WeightedEdge& e : mst.edges) keys.insert(EdgeKey(e.u, e.v));
  return keys;
}

TEST(KruskalTest, MatchesReferenceWithoutPlug) {
  const ObjectId n = 20;
  ResolverStack stack = MakeRandomStack(n, 12);
  const MstResult mst = KruskalMst(stack.resolver.get());
  const MstResult reference = ReferenceKruskalMst(stack.oracle.get());
  EXPECT_NEAR(mst.total_weight, reference.total_weight, 1e-9);
  EXPECT_EQ(EdgeSet(mst), EdgeSet(reference));
}

TEST(KruskalTest, AgreesWithPrimOnWeight) {
  const ObjectId n = 26;
  ResolverStack a = MakeRandomStack(n, 13);
  ResolverStack b = MakeRandomStack(n, 13);
  EXPECT_NEAR(KruskalMst(a.resolver.get()).total_weight,
              PrimMst(b.resolver.get()).total_weight, 1e-9);
}

TEST(KruskalTest, ProducesASpanningForestMerge) {
  const ObjectId n = 17;
  ResolverStack stack = MakeRandomStack(n, 14);
  const MstResult mst = KruskalMst(stack.resolver.get());
  ASSERT_EQ(mst.edges.size(), static_cast<size_t>(n - 1));
  UnionFind uf(n);
  for (const WeightedEdge& e : mst.edges) {
    EXPECT_TRUE(uf.Union(e.u, e.v));
    EXPECT_DOUBLE_EQ(e.weight, stack.oracle->Distance(e.u, e.v));
  }
}

class KruskalSchemeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, uint64_t>> {};

TEST_P(KruskalSchemeEquivalenceTest, SameTreeUnderEveryScheme) {
  const auto [kind, seed] = GetParam();
  const ObjectId n = 16;
  ResolverStack stack = MakeRandomStack(n, seed);
  const MstResult reference = ReferenceKruskalMst(stack.oracle.get());

  ResolverStack plugged = MakeRandomStack(n, seed);
  SchemeOptions options;
  options.seed = seed;
  auto bounder = MakeAndAttachScheme(kind, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  const MstResult mst = KruskalMst(plugged.resolver.get());
  EXPECT_NEAR(mst.total_weight, reference.total_weight, 1e-9);
  EXPECT_EQ(EdgeSet(mst), EdgeSet(reference))
      << "scheme " << SchemeKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, KruskalSchemeEquivalenceTest,
    ::testing::Combine(::testing::Values(SchemeKind::kNone, SchemeKind::kTri,
                                         SchemeKind::kSplub, SchemeKind::kAdm,
                                         SchemeKind::kLaesa,
                                         SchemeKind::kTlaesa),
                       ::testing::Values(3, 9)));

TEST(KruskalTest, LazySweepNeverResolvesMoreThanAllPairs) {
  const ObjectId n = 22;
  ResolverStack stack = MakeRandomStack(n, 15);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, stack.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  KruskalMst(stack.resolver.get());
  EXPECT_LE(stack.resolver->stats().oracle_calls,
            static_cast<uint64_t>(n) * (n - 1) / 2);
}

TEST(KruskalTest, TriSavesCallsOnClusteredData) {
  const ObjectId n = 64;
  auto make_stack = [&]() {
    ResolverStack stack;
    stack.oracle = std::make_unique<VectorOracle>(
        GaussianMixturePoints(n, 2, 4, 100.0, 1.5, 6),
        VectorMetric::kEuclidean);
    stack.graph = std::make_unique<PartialDistanceGraph>(n);
    stack.resolver = std::make_unique<BoundedResolver>(stack.oracle.get(),
                                                       stack.graph.get());
    return stack;
  };
  ResolverStack vanilla = make_stack();
  const MstResult reference = KruskalMst(vanilla.resolver.get());
  const uint64_t baseline = vanilla.resolver->stats().oracle_calls;

  ResolverStack plugged = make_stack();
  BootstrapWithLandmarks(plugged.resolver.get(), 6, 1);
  SchemeOptions options;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const MstResult mst = KruskalMst(plugged.resolver.get());
  EXPECT_NEAR(mst.total_weight, reference.total_weight, 1e-9);
  EXPECT_LT(plugged.resolver->stats().oracle_calls, baseline);
}

}  // namespace
}  // namespace metricprox
