// Relaxed triangle inequality support (the paper's Characteristic 1 admits
// "triangle inequality or relaxed triangle inequality"): squared Euclidean
// distance is a rho=2 semimetric, and the Tri Scheme parameterized with
// rho stays valid — so the whole framework, exactness guarantee included,
// carries over.

#include <memory>

#include <gtest/gtest.h>

#include "algo/knn_graph.h"
#include "algo/prim.h"
#include "algo/reference.h"
#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "bounds/tri.h"
#include "data/synthetic.h"
#include "oracle/vector_oracle.h"
#include "tests/test_util.h"

namespace metricprox {
namespace {

using testing_util::ResolverStack;

ResolverStack MakeSquaredStack(ObjectId n, uint64_t seed) {
  ResolverStack stack;
  stack.oracle = std::make_unique<VectorOracle>(
      GaussianMixturePoints(n, 2, /*num_clusters=*/4, /*range=*/10.0,
                            /*spread=*/0.4, seed),
      VectorMetric::kSquaredEuclidean);
  stack.graph = std::make_unique<PartialDistanceGraph>(n);
  stack.resolver =
      std::make_unique<BoundedResolver>(stack.oracle.get(), stack.graph.get());
  return stack;
}

TEST(SquaredEuclideanTest, IsSquareOfEuclidean) {
  PointSet points = {{0.0, 0.0}, {3.0, 4.0}};
  VectorOracle squared(points, VectorMetric::kSquaredEuclidean);
  VectorOracle plain(points, VectorMetric::kEuclidean);
  EXPECT_DOUBLE_EQ(squared.Distance(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(plain.Distance(0, 1), 5.0);
  EXPECT_EQ(squared.name(), "squared-euclidean");
  EXPECT_DOUBLE_EQ(VectorMetricRho(VectorMetric::kSquaredEuclidean), 2.0);
  EXPECT_DOUBLE_EQ(VectorMetricRho(VectorMetric::kEuclidean), 1.0);
}

TEST(SquaredEuclideanTest, ViolatesPlainTriangleButSatisfiesRho2) {
  // Collinear points 0 - 1 - 2: d(0,2) = 4 > d(0,1) + d(1,2) = 2, but
  // 4 <= 2 * 2.
  PointSet points = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  VectorOracle oracle(std::move(points), VectorMetric::kSquaredEuclidean);
  const double d02 = oracle.Distance(0, 2);
  const double via = oracle.Distance(0, 1) + oracle.Distance(1, 2);
  EXPECT_GT(d02, via);
  EXPECT_LE(d02, 2.0 * via);
}

TEST(RelaxedTriTest, BoundsContainTruthAtRho2) {
  const ObjectId n = 30;
  ResolverStack stack = MakeSquaredStack(n, 301);
  TriBounder tri(stack.graph.get(), /*rho=*/2.0);
  stack.resolver->SetBounder(&tri);
  testing_util::ResolveRandomPairs(stack.resolver.get(), 90, 5);
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      const double truth = stack.oracle->Distance(i, j);
      const Interval b = stack.resolver->Bounds(i, j);
      ASSERT_LE(b.lo, truth + 1e-9) << "(" << i << "," << j << ")";
      ASSERT_GE(b.hi, truth - 1e-9) << "(" << i << "," << j << ")";
    }
  }
}

TEST(RelaxedTriTest, PlainTriBoundsWouldBeWrongAtRho1) {
  // Sanity for the test above: on the same data, an (incorrect) rho=1
  // TriBounder produces intervals that miss the truth somewhere — i.e. the
  // relaxation is load-bearing, not slack.
  const ObjectId n = 30;
  ResolverStack stack = MakeSquaredStack(n, 301);
  TriBounder wrong(stack.graph.get(), /*rho=*/1.0);
  stack.resolver->SetBounder(&wrong);
  testing_util::ResolveRandomPairs(stack.resolver.get(), 90, 5);
  int violations = 0;
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      if (stack.graph->Has(i, j)) continue;
      const double truth = stack.oracle->Distance(i, j);
      const Interval b = wrong.Bounds(i, j);
      if (b.lo > truth + 1e-9 || b.hi < truth - 1e-9) ++violations;
    }
  }
  EXPECT_GT(violations, 0);
}

TEST(RelaxedTriTest, PrimExactOnSquaredEuclidean) {
  const ObjectId n = 40;
  ResolverStack vanilla = MakeSquaredStack(n, 302);
  const MstResult reference = ReferencePrimMst(vanilla.oracle.get());

  ResolverStack plugged = MakeSquaredStack(n, 302);
  SchemeOptions options;
  options.rho = 2.0;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok()) << bounder.status();
  const MstResult mst = PrimMst(plugged.resolver.get());
  EXPECT_NEAR(mst.total_weight, reference.total_weight, 1e-9);
  // Clustered data: even through a rho=2 relaxation the scheme must save.
  EXPECT_LT(plugged.resolver->stats().oracle_calls,
            static_cast<uint64_t>(n) * (n - 1) / 2);
}

TEST(RelaxedTriTest, KnnExactOnSquaredEuclidean) {
  const ObjectId n = 32;
  ResolverStack vanilla = MakeSquaredStack(n, 303);
  const KnnGraph expected = ReferenceKnnGraph(vanilla.oracle.get(), 4);

  ResolverStack plugged = MakeSquaredStack(n, 303);
  SchemeOptions options;
  options.rho = 2.0;
  auto bounder =
      MakeAndAttachScheme(SchemeKind::kTri, plugged.resolver.get(), options);
  ASSERT_TRUE(bounder.ok());
  const KnnGraph got = BuildKnnGraph(plugged.resolver.get(), KnnGraphOptions{4});
  for (ObjectId u = 0; u < n; ++u) {
    ASSERT_EQ(got[u], expected[u]) << "object " << u;
  }
}

TEST(RelaxedTriTest, FactoryRejectsRhoForOtherSchemes) {
  ResolverStack stack = MakeSquaredStack(8, 304);
  SchemeOptions options;
  options.rho = 2.0;
  EXPECT_FALSE(
      MakeAndAttachScheme(SchemeKind::kSplub, stack.resolver.get(), options)
          .ok());
  EXPECT_FALSE(
      MakeAndAttachScheme(SchemeKind::kLaesa, stack.resolver.get(), options)
          .ok());
  options.rho = 0.5;
  EXPECT_FALSE(
      MakeAndAttachScheme(SchemeKind::kTri, stack.resolver.get(), options)
          .ok());
}

TEST(RelaxedTriTest, RhoOneIsTheClassicScheme) {
  // With rho = 1 the relaxed formulas reduce exactly to the paper's.
  PartialDistanceGraph graph(7);
  graph.Insert(1, 3, 0.8);
  graph.Insert(3, 4, 0.1);
  TriBounder tri(&graph, 1.0);
  const Interval b = tri.Bounds(1, 4);
  EXPECT_NEAR(b.lo, 0.7, 1e-12);
  EXPECT_NEAR(b.hi, 0.9, 1e-12);
}

}  // namespace
}  // namespace metricprox
