// Unit tests for the fault-tolerance middleware: the fallible oracle verbs,
// the deterministic fault injector, the retrying wrapper (including partial-
// batch re-ship), and the resolver's failure-aware entry point.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bounds/resolver.h"
#include "core/oracle.h"
#include "core/status.h"
#include "core/types.h"
#include "data/synthetic.h"
#include "graph/partial_graph.h"
#include "oracle/fault_injection.h"
#include "oracle/matrix_oracle.h"
#include "oracle/retry.h"
#include "oracle/wrappers.h"

namespace metricprox {
namespace {

MatrixOracle MakeMatrix(ObjectId n, uint64_t seed) {
  return MatrixOracle(RandomShortestPathMetric(n, 0.9, seed), n);
}

// ---- Default Try adapters on an infallible oracle ----

TEST(TryVerbTest, DefaultTryDistanceNeverFailsAndMatchesDistance) {
  MatrixOracle oracle = MakeMatrix(8, 7);
  for (ObjectId i = 0; i < 8; ++i) {
    for (ObjectId j = i + 1; j < 8; ++j) {
      StatusOr<double> got = oracle.TryDistance(i, j);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, oracle.Distance(i, j));
    }
  }
}

TEST(TryVerbTest, DefaultTryBatchDistanceReportsAllOk) {
  MatrixOracle oracle = MakeMatrix(8, 7);
  const std::vector<IdPair> pairs = {{0, 1}, {2, 5}, {6, 3}};
  std::vector<double> out(pairs.size(), -1.0);
  std::vector<Status> statuses(pairs.size());
  ASSERT_TRUE(oracle.TryBatchDistance(pairs, out, statuses).ok());
  for (size_t k = 0; k < pairs.size(); ++k) {
    EXPECT_TRUE(statuses[k].ok());
    EXPECT_EQ(out[k], oracle.Distance(pairs[k].i, pairs[k].j));
  }
}

// ---- FaultInjectingOracle ----

TEST(FaultInjectionTest, SameSeedSameCallSequenceSameFaultPattern) {
  MatrixOracle base = MakeMatrix(10, 3);
  FaultInjectionOptions options;
  options.failure_rate = 0.5;
  options.max_consecutive_failures = 3;
  options.seed = 99;
  FaultInjectingOracle a(&base, options);
  FaultInjectingOracle b(&base, options);

  uint64_t failures_seen = 0;
  for (int rep = 0; rep < 20; ++rep) {
    for (ObjectId i = 0; i < 10; ++i) {
      for (ObjectId j = i + 1; j < 10; ++j) {
        const StatusOr<double> ra = a.TryDistance(i, j);
        const StatusOr<double> rb = b.TryDistance(i, j);
        ASSERT_EQ(ra.ok(), rb.ok()) << "pair (" << i << ", " << j << ")";
        if (ra.ok()) {
          EXPECT_EQ(*ra, *rb);
        } else {
          EXPECT_EQ(ra.status().code(), rb.status().code());
          ++failures_seen;
        }
      }
    }
  }
  EXPECT_GT(failures_seen, 0u);
  EXPECT_EQ(a.injected_failures(), b.injected_failures());
}

TEST(FaultInjectionTest, DifferentSeedsProduceDifferentPatterns) {
  MatrixOracle base = MakeMatrix(10, 3);
  FaultInjectionOptions options;
  options.failure_rate = 0.5;
  options.seed = 1;
  FaultInjectingOracle a(&base, options);
  options.seed = 2;
  FaultInjectingOracle b(&base, options);

  bool diverged = false;
  for (ObjectId i = 0; i < 10 && !diverged; ++i) {
    for (ObjectId j = i + 1; j < 10 && !diverged; ++j) {
      diverged = a.TryDistance(i, j).ok() != b.TryDistance(i, j).ok();
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectionTest, TransienceCapForcesPeriodicSuccess) {
  MatrixOracle base = MakeMatrix(4, 3);
  FaultInjectionOptions options;
  options.failure_rate = 1.0;  // every uncapped attempt fails...
  options.max_consecutive_failures = 3;  // ...but never 4 in a row
  FaultInjectingOracle faulty(&base, options);

  // Pattern per pair must be F F F OK, repeating.
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int k = 0; k < 3; ++k) {
      const StatusOr<double> r = faulty.TryDistance(0, 1);
      ASSERT_FALSE(r.ok()) << "cycle " << cycle << " attempt " << k;
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    }
    EXPECT_TRUE(faulty.TryDistance(0, 1).ok()) << "cycle " << cycle;
  }
  EXPECT_EQ(faulty.injected_failures(), 9u);
}

TEST(FaultInjectionTest, ZeroCapMeansPermanentOutage) {
  MatrixOracle base = MakeMatrix(4, 3);
  FaultInjectionOptions options;
  options.failure_rate = 1.0;
  options.max_consecutive_failures = 0;  // unbounded: fails forever
  FaultInjectingOracle faulty(&base, options);
  for (int k = 0; k < 10; ++k) {
    ASSERT_FALSE(faulty.TryDistance(0, 1).ok());
  }
  EXPECT_EQ(faulty.injected_failures(), 10u);
}

TEST(FaultInjectionTest, SpikeOverTimeoutBecomesDeadlineExceeded) {
  MatrixOracle base = MakeMatrix(4, 3);
  FaultInjectionOptions options;
  options.spike_rate = 1.0;
  options.spike_seconds = 2.0;
  options.per_call_timeout_seconds = 1.0;
  FaultInjectingOracle faulty(&base, options);

  const StatusOr<double> r = faulty.TryDistance(0, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(faulty.injected_spikes(), 1u);
  EXPECT_EQ(faulty.injected_timeouts(), 1u);
  EXPECT_DOUBLE_EQ(faulty.injected_spike_seconds(), 2.0);
}

TEST(FaultInjectionTest, SpikeUnderTimeoutIsBilledButSucceeds) {
  MatrixOracle base = MakeMatrix(4, 3);
  FaultInjectionOptions options;
  options.spike_rate = 1.0;
  options.spike_seconds = 0.5;
  options.per_call_timeout_seconds = 1.0;  // spike fits inside the budget
  FaultInjectingOracle faulty(&base, options);

  EXPECT_TRUE(faulty.TryDistance(0, 1).ok());
  EXPECT_EQ(faulty.injected_spikes(), 1u);
  EXPECT_EQ(faulty.injected_timeouts(), 0u);
  EXPECT_DOUBLE_EQ(faulty.injected_spike_seconds(), 0.5);
}

TEST(FaultInjectionTest, BatchFatesMatchScalarFates) {
  // The fate of attempt k of a pair is transport-independent: shipping the
  // same pairs through TryBatchDistance must fail exactly where a scalar
  // loop with the same per-pair attempt history would.
  MatrixOracle base = MakeMatrix(8, 3);
  FaultInjectionOptions options;
  options.failure_rate = 0.4;
  options.seed = 17;
  FaultInjectingOracle scalar_side(&base, options);
  FaultInjectingOracle batch_side(&base, options);

  std::vector<IdPair> pairs;
  for (ObjectId i = 0; i < 8; ++i) {
    for (ObjectId j = i + 1; j < 8; ++j) pairs.push_back({i, j});
  }
  for (int round = 0; round < 4; ++round) {
    std::vector<double> out(pairs.size(), -1.0);
    std::vector<Status> statuses(pairs.size());
    batch_side.TryBatchDistance(pairs, out, statuses);
    for (size_t k = 0; k < pairs.size(); ++k) {
      const StatusOr<double> r =
          scalar_side.TryDistance(pairs[k].i, pairs[k].j);
      ASSERT_EQ(r.ok(), statuses[k].ok()) << "round " << round << " k " << k;
      if (r.ok()) {
        EXPECT_EQ(out[k], *r);
      }
    }
  }
}

// ---- RetryingOracle ----

TEST(RetryTest, TransientFailuresAreRetriedToSuccess) {
  MatrixOracle base = MakeMatrix(12, 5);
  FaultInjectionOptions fault;
  fault.failure_rate = 0.5;
  fault.max_consecutive_failures = 2;  // < max_attempts, so success is sure
  fault.seed = 21;
  FaultInjectingOracle faulty(&base, fault);
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_seconds = 1e-7;
  retry.max_backoff_seconds = 1e-6;
  RetryingOracle retrying(&faulty, retry);

  for (ObjectId i = 0; i < 12; ++i) {
    for (ObjectId j = i + 1; j < 12; ++j) {
      const StatusOr<double> got = retrying.TryDistance(i, j);
      ASSERT_TRUE(got.ok()) << "pair (" << i << ", " << j << ")";
      EXPECT_EQ(*got, base.Distance(i, j));
    }
  }
  EXPECT_GT(retrying.retry_stats().retries, 0u);
  EXPECT_EQ(retrying.retry_stats().failures, 0u);
  EXPECT_EQ(retrying.retry_stats().attempts,
            66u + retrying.retry_stats().retries);
}

TEST(RetryTest, RetriesExhaustedKeepsCodeAndAnnotatesMessage) {
  MatrixOracle base = MakeMatrix(4, 5);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 0;  // permanent outage
  FaultInjectingOracle faulty(&base, fault);
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_seconds = 1e-7;
  retry.max_backoff_seconds = 1e-6;
  RetryingOracle retrying(&faulty, retry);

  const StatusOr<double> got = retrying.TryDistance(0, 1);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(got.status().message().find("retries exhausted"),
            std::string::npos);
  EXPECT_EQ(retrying.retry_stats().attempts, 3u);
  EXPECT_EQ(retrying.retry_stats().retries, 2u);
  EXPECT_EQ(retrying.retry_stats().failures, 1u);
}

TEST(RetryTest, DeadlineShortCircuitsBackoff) {
  MatrixOracle base = MakeMatrix(4, 5);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 0;
  FaultInjectingOracle faulty(&base, fault);
  RetryOptions retry;
  retry.max_attempts = 100;
  retry.initial_backoff_seconds = 1e-3;  // every backoff overruns...
  retry.deadline_seconds = 1e-4;         // ...this budget immediately
  RetryingOracle retrying(&faulty, retry);

  const StatusOr<double> got = retrying.TryDistance(0, 1);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(got.status().message().find("retry deadline exhausted"),
            std::string::npos);
  EXPECT_EQ(retrying.retry_stats().failures, 1u);
  // No retry was ever shipped: the deadline fired before the first backoff.
  EXPECT_EQ(retrying.retry_stats().retries, 0u);
}

TEST(RetryTest, BatchDeadlineFailsAllRemainingPairs) {
  MatrixOracle base = MakeMatrix(6, 5);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 0;
  FaultInjectingOracle faulty(&base, fault);
  RetryOptions retry;
  retry.max_attempts = 100;
  retry.initial_backoff_seconds = 1e-3;
  retry.deadline_seconds = 1e-4;
  RetryingOracle retrying(&faulty, retry);

  const std::vector<IdPair> pairs = {{0, 1}, {2, 3}};
  std::vector<double> out(pairs.size(), 0.0);
  std::vector<Status> statuses(pairs.size());
  const Status overall = retrying.TryBatchDistance(pairs, out, statuses);
  ASSERT_FALSE(overall.ok());
  EXPECT_EQ(overall.code(), StatusCode::kDeadlineExceeded);
  for (const Status& s : statuses) {
    EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(retrying.retry_stats().failures, 2u);
}

TEST(RetryTest, PerAttemptTimeoutsAreCountedAndRetried) {
  MatrixOracle base = MakeMatrix(4, 5);
  FaultInjectionOptions fault;
  fault.spike_rate = 1.0;
  fault.spike_seconds = 2.0;
  fault.per_call_timeout_seconds = 1.0;  // every uncapped attempt times out
  fault.max_consecutive_failures = 2;
  FaultInjectingOracle faulty(&base, fault);
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_seconds = 1e-7;
  retry.max_backoff_seconds = 1e-6;
  RetryingOracle retrying(&faulty, retry);

  const StatusOr<double> got = retrying.TryDistance(0, 1);
  ASSERT_TRUE(got.ok());  // third attempt is forced through by the cap
  EXPECT_EQ(retrying.retry_stats().timeouts, 2u);
  EXPECT_EQ(retrying.retry_stats().retries, 2u);
}

// Records every batch the retrying wrapper ships and fails one chosen pair
// exactly once — the probe for partial-batch retry.
class FlakyOnceRecordingOracle : public DistanceOracle {
 public:
  FlakyOnceRecordingOracle(DistanceOracle* base, IdPair flaky)
      : base_(base), flaky_(flaky) {}

  double Distance(ObjectId i, ObjectId j) override {
    return base_->Distance(i, j);
  }
  Status TryBatchDistance(std::span<const IdPair> pairs, std::span<double> out,
                          std::span<Status> statuses) override {
    shipments_.emplace_back(pairs.begin(), pairs.end());
    Status overall = Status::OK();
    for (size_t k = 0; k < pairs.size(); ++k) {
      if (!tripped_ && pairs[k].i == flaky_.i && pairs[k].j == flaky_.j) {
        tripped_ = true;
        statuses[k] = Status::Unavailable("flaky pair");
        overall = statuses[k];
        continue;
      }
      out[k] = base_->Distance(pairs[k].i, pairs[k].j);
      statuses[k] = Status::OK();
    }
    return overall;
  }
  ObjectId num_objects() const override { return base_->num_objects(); }
  std::string_view name() const override { return "flaky-once"; }

  const std::vector<std::vector<IdPair>>& shipments() const {
    return shipments_;
  }

 private:
  DistanceOracle* base_;  // not owned
  IdPair flaky_;
  bool tripped_ = false;
  std::vector<std::vector<IdPair>> shipments_;
};

TEST(RetryTest, PartialBatchRetryReshipsOnlyTheFailedPair) {
  MatrixOracle base = MakeMatrix(8, 5);
  FlakyOnceRecordingOracle flaky(&base, IdPair{2, 5});
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_seconds = 1e-7;
  retry.max_backoff_seconds = 1e-6;
  RetryingOracle retrying(&flaky, retry);

  const std::vector<IdPair> pairs = {{0, 1}, {2, 5}, {6, 3}, {4, 7}};
  std::vector<double> out(pairs.size(), -1.0);
  std::vector<Status> statuses(pairs.size());
  ASSERT_TRUE(retrying.TryBatchDistance(pairs, out, statuses).ok());

  // Round one shipped all four pairs; round two re-shipped only the flaky
  // one — the three answered pairs were never bought twice.
  ASSERT_EQ(flaky.shipments().size(), 2u);
  EXPECT_EQ(flaky.shipments()[0].size(), 4u);
  ASSERT_EQ(flaky.shipments()[1].size(), 1u);
  EXPECT_EQ(flaky.shipments()[1][0].i, 2u);
  EXPECT_EQ(flaky.shipments()[1][0].j, 5u);

  for (size_t k = 0; k < pairs.size(); ++k) {
    EXPECT_TRUE(statuses[k].ok());
    EXPECT_EQ(out[k], base.Distance(pairs[k].i, pairs[k].j));
  }
  EXPECT_EQ(retrying.retry_stats().retries, 1u);
  EXPECT_EQ(retrying.retry_stats().attempts, 5u);
  EXPECT_EQ(retrying.retry_stats().failures, 0u);
}

TEST(RetryTest, AccumulateStatsMergesRetryCountersNotFailures) {
  MatrixOracle base = MakeMatrix(4, 5);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 2;
  FaultInjectingOracle faulty(&base, fault);
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_seconds = 1e-7;
  retry.max_backoff_seconds = 1e-6;
  RetryingOracle retrying(&faulty, retry);
  ASSERT_TRUE(retrying.TryDistance(0, 1).ok());

  ResolverStats stats;
  retrying.AccumulateStats(&stats);
  EXPECT_EQ(stats.oracle_retries, retrying.retry_stats().retries);
  EXPECT_EQ(stats.oracle_timeouts, retrying.retry_stats().timeouts);
  EXPECT_DOUBLE_EQ(stats.retry_backoff_seconds,
                   retrying.retry_stats().backoff_seconds);
  // oracle_failures is owned by the resolver's transport-failure path.
  EXPECT_EQ(stats.oracle_failures, 0u);
}

// ---- Wrapper forwarding of the fallible verbs and the workers knob ----

TEST(WrapperForwardingTest, CountingOracleBillsFailedAttempts) {
  MatrixOracle base = MakeMatrix(6, 5);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 0;
  FaultInjectingOracle faulty(&base, fault);
  CountingOracle counting(&faulty);

  EXPECT_FALSE(counting.TryDistance(0, 1).ok());
  EXPECT_EQ(counting.calls(), 1u);

  const std::vector<IdPair> pairs = {{0, 1}, {2, 3}, {4, 5}};
  std::vector<double> out(pairs.size());
  std::vector<Status> statuses(pairs.size());
  EXPECT_FALSE(counting.TryBatchDistance(pairs, out, statuses).ok());
  EXPECT_EQ(counting.calls(), 4u);
}

TEST(WrapperForwardingTest, SimulatedCostBillsFailedAttempts) {
  MatrixOracle base = MakeMatrix(6, 5);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 0;
  FaultInjectingOracle faulty(&base, fault);
  SimulatedCostOracle costed(&faulty, 1.5);

  EXPECT_FALSE(costed.TryDistance(0, 1).ok());
  const std::vector<IdPair> pairs = {{0, 1}, {2, 3}};
  std::vector<double> out(pairs.size());
  std::vector<Status> statuses(pairs.size());
  EXPECT_FALSE(costed.TryBatchDistance(pairs, out, statuses).ok());
  EXPECT_DOUBLE_EQ(costed.simulated_seconds(), 1.5 * 3);
}

TEST(WrapperForwardingTest, BatchWorkersKnobReachesTheBaseOracle) {
  MatrixOracle base = MakeMatrix(6, 5);
  CountingOracle counting(&base);
  FaultInjectionOptions fault;
  FaultInjectingOracle faulty(&counting, fault);
  RetryingOracle retrying(&faulty, RetryOptions{});

  retrying.set_batch_workers(3);
  EXPECT_EQ(base.batch_workers(), 3u);
  EXPECT_EQ(retrying.batch_workers(), 3u);
  EXPECT_EQ(faulty.batch_workers(), 3u);
}

// ---- BoundedResolver failure path ----

TEST(ResolverFallibleTest, PermanentOutageSurfacesAsStatusInsideScope) {
  MatrixOracle base = MakeMatrix(8, 9);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 0;
  FaultInjectingOracle faulty(&base, fault);
  PartialDistanceGraph graph(8);
  BoundedResolver resolver(&faulty, &graph);

  const StatusOr<double> got = resolver.RunFallible(
      [](BoundedResolver* r) { return r->Distance(0, 1); });
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(resolver.oracle_status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(resolver.stats().oracle_failures, 1u);
}

TEST(ResolverFallibleTest, BatchOutageCountsEveryFailedPair) {
  MatrixOracle base = MakeMatrix(8, 9);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 0;
  FaultInjectingOracle faulty(&base, fault);
  PartialDistanceGraph graph(8);
  BoundedResolver resolver(&faulty, &graph);

  const std::vector<IdPair> pairs = {{0, 1}, {2, 3}, {4, 5}};
  const StatusOr<double> got =
      resolver.RunFallible([&pairs](BoundedResolver* r) {
        r->ResolveAll(pairs);
        return 0.0;
      });
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(resolver.stats().oracle_failures, 3u);
}

TEST(ResolverFallibleTest, RecoversAfterFailureWithoutRepayingEdges) {
  MatrixOracle base = MakeMatrix(8, 9);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 2;
  FaultInjectingOracle faulty(&base, fault);
  PartialDistanceGraph graph(8);
  BoundedResolver resolver(&faulty, &graph);

  // First run: (0, 1) resolves on the pair's forced-success attempt only if
  // retried; without a retry layer the first injected failure kills it.
  StatusOr<double> got = resolver.RunFallible(
      [](BoundedResolver* r) { return r->Distance(0, 1); });
  ASSERT_FALSE(got.ok());
  // Re-running against the same resolver eventually lands on the forced
  // success (attempt 3 of the pair) and the edge persists.
  got = resolver.RunFallible(
      [](BoundedResolver* r) { return r->Distance(0, 1); });
  ASSERT_FALSE(got.ok());
  got = resolver.RunFallible(
      [](BoundedResolver* r) { return r->Distance(0, 1); });
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, base.Distance(0, 1));
  EXPECT_TRUE(resolver.oracle_status().ok());
  EXPECT_TRUE(resolver.Known(0, 1));
  // A fourth run reads the cache: no oracle traffic, value unchanged.
  const uint64_t calls_before = resolver.stats().oracle_calls;
  got = resolver.RunFallible(
      [](BoundedResolver* r) { return r->Distance(0, 1); });
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(resolver.stats().oracle_calls, calls_before);
}

TEST(ResolverFallibleTest, RetryLayerHidesTransientFaultsEntirely) {
  MatrixOracle base = MakeMatrix(8, 9);
  FaultInjectionOptions fault;
  fault.failure_rate = 0.5;
  fault.max_consecutive_failures = 2;
  fault.seed = 13;
  FaultInjectingOracle faulty(&base, fault);
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_seconds = 1e-7;
  retry.max_backoff_seconds = 1e-6;
  RetryingOracle retrying(&faulty, retry);
  PartialDistanceGraph graph(8);
  BoundedResolver resolver(&retrying, &graph);

  const StatusOr<double> got =
      resolver.RunFallible([](BoundedResolver* r) {
        double acc = 0.0;
        for (ObjectId i = 0; i < 8; ++i) {
          for (ObjectId j = i + 1; j < 8; ++j) acc += r->Distance(i, j);
        }
        return acc;
      });
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(resolver.stats().oracle_failures, 0u);
  EXPECT_EQ(resolver.stats().oracle_calls, 28u);
}

TEST(ResolverFallibleDeathTest, OutageOutsideRunFallibleAborts) {
  MatrixOracle base = MakeMatrix(8, 9);
  FaultInjectionOptions fault;
  fault.failure_rate = 1.0;
  fault.max_consecutive_failures = 0;
  FaultInjectingOracle faulty(&base, fault);
  PartialDistanceGraph graph(8);
  BoundedResolver resolver(&faulty, &graph);
  EXPECT_DEATH((void)resolver.Distance(0, 1),
               "oracle transport failed outside RunFallible");
}

}  // namespace
}  // namespace metricprox
