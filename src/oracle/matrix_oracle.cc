#include "oracle/matrix_oracle.h"

#include <cmath>
#include <sstream>

#include "core/logging.h"
#include "core/parallel.h"

namespace metricprox {

MatrixOracle::MatrixOracle(std::vector<double> matrix, ObjectId n)
    : matrix_(std::move(matrix)), n_(n) {
  CHECK_EQ(matrix_.size(), static_cast<size_t>(n) * n);
}

StatusOr<MatrixOracle> MatrixOracle::Create(std::vector<double> matrix,
                                            ObjectId n) {
  if (matrix.size() != static_cast<size_t>(n) * n) {
    return Status::InvalidArgument("matrix size does not match n*n");
  }
  auto at = [&](ObjectId i, ObjectId j) { return matrix[i * n + j]; };
  for (ObjectId i = 0; i < n; ++i) {
    if (at(i, i) != 0.0) {
      return Status::InvalidArgument("nonzero diagonal entry");
    }
    for (ObjectId j = i + 1; j < n; ++j) {
      if (at(i, j) != at(j, i)) {
        return Status::InvalidArgument("matrix not symmetric");
      }
      if (!(at(i, j) > 0.0) || !std::isfinite(at(i, j))) {
        return Status::InvalidArgument(
            "off-diagonal distances must be finite and positive");
      }
    }
  }
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      for (ObjectId k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        // Tolerate tiny floating-point slack.
        if (at(i, j) > at(i, k) + at(k, j) + 1e-12) {
          std::ostringstream os;
          os << "triangle inequality violated for (" << i << ", " << j
             << ") via " << k;
          return Status::InvalidArgument(os.str());
        }
      }
    }
  }
  return MatrixOracle(std::move(matrix), n);
}

double MatrixOracle::Distance(ObjectId i, ObjectId j) {
  DCHECK_NE(i, j);
  DCHECK_LT(i, n_);
  DCHECK_LT(j, n_);
  return matrix_[i * n_ + j];
}

void MatrixOracle::BatchDistance(std::span<const IdPair> pairs,
                                 std::span<double> out) {
  CHECK_EQ(pairs.size(), out.size());
  ParallelFor(pairs.size(), /*grain=*/65536, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      out[k] = Distance(pairs[k].i, pairs[k].j);
    }
  }, batch_workers());
}

}  // namespace metricprox
