#ifndef METRICPROX_ORACLE_WEAK_ORACLE_H_
#define METRICPROX_ORACLE_WEAK_ORACLE_H_

#include <cstdint>

#include "core/oracle.h"
#include "core/types.h"

namespace metricprox {

/// A cheap, noisy distance estimator derived from any exact oracle plus a
/// deterministic, seeded error model — the "weak oracle" of the dual-oracle
/// regime (Bateni et al., arXiv 2310.15863). For a true distance d, the
/// weak answer is
///
///     w = max(0, d * m + a)
///
/// with a per-pair stable multiplicative factor m in [1/alpha, alpha]
/// (log-uniform) and additive perturbation a in [-floor, +floor]
/// (uniform), both pure functions of (seed, pair). The same pair therefore
/// always yields the same estimate, independent of query order — the
/// property that makes weak-informed runs reproducible and auditable.
///
/// The advertised contract (WeakModel / WeakModelInterval in
/// core/bounder.h): d lies in [max(0, w - floor)/alpha, (w + floor)*alpha].
/// An honest WeakOracle satisfies it by construction; an adversarial
/// subclass (or a caller advertising a smaller alpha than the truth) is
/// the violation case the WeakBounder and the Verifier must detect.
///
/// This is deliberately *not* a DistanceOracle: its answers are estimates,
/// never cacheable facts, so it must not be mistakable for a resolution
/// source. It reads the base oracle directly — stack it over the raw
/// dataset oracle, below the cost/fault/retry middleware, so weak peeks
/// are neither billed as strong calls nor subjected to injected faults.
class WeakOracle {
 public:
  struct Options {
    /// Advertised multiplicative error factor, >= 1 (1 = exact).
    double alpha = 1.0;
    /// Advertised additive error floor, >= 0.
    double floor = 0.0;
    /// Noise seed; estimates are a pure function of (seed, pair).
    uint64_t seed = 0;
    /// Simulated latency per fresh estimate (the "cheap" price; compare
    /// SimulatedCostOracle's per-call strong price).
    double cost_seconds = 0.0;
  };

  WeakOracle(DistanceOracle* base, const Options& options);

  /// The weak estimate for dist(i, j); requires i != j. Every call is a
  /// fresh evaluation (memoize per pair at the caller — WeakBounder does).
  virtual double Estimate(ObjectId i, ObjectId j);

  virtual ~WeakOracle() = default;

  double alpha() const { return options_.alpha; }
  double floor() const { return options_.floor; }

  /// Fresh estimate evaluations performed (pre-memoization).
  uint64_t calls() const { return calls_; }
  /// cost_seconds * calls(): the simulated price of the weak channel.
  double simulated_seconds() const { return simulated_seconds_; }

 protected:
  DistanceOracle* base() const { return base_; }
  /// Bills one fresh evaluation (subclasses overriding Estimate call this).
  void ChargeCall();

 private:
  DistanceOracle* base_;  // not owned
  Options options_;
  uint64_t calls_ = 0;
  double simulated_seconds_ = 0.0;
};

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_WEAK_ORACLE_H_
