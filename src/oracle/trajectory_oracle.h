#ifndef METRICPROX_ORACLE_TRAJECTORY_ORACLE_H_
#define METRICPROX_ORACLE_TRAJECTORY_ORACLE_H_

#include <string_view>
#include <utility>
#include <vector>

#include "core/oracle.h"
#include "core/types.h"

namespace metricprox {

/// A 2-D polyline (GPS trace, video-object track, handwriting stroke).
using Trajectory = std::vector<std::pair<double, double>>;

/// Discrete Fréchet distance between trajectories — the "dog leash"
/// distance over vertex sequences, computed by the classic O(|P| * |Q|)
/// dynamic program:
///     F(i, j) = max(||p_i - q_j||,
///                   min(F(i-1, j), F(i, j-1), F(i-1, j-1))).
/// Satisfies the triangle inequality (it is the sup-metric over coupled
/// walks); identity requires trajectories to be pairwise distinct up to
/// point repetition, which the shipped generators guarantee. Models the
/// video-database / GPS-trace search applications from the paper's intro.
class FrechetOracle : public DistanceOracle {
 public:
  /// Each trajectory must be non-empty.
  explicit FrechetOracle(std::vector<Trajectory> trajectories);

  double Distance(ObjectId i, ObjectId j) override;
  ObjectId num_objects() const override {
    return static_cast<ObjectId>(trajectories_.size());
  }
  std::string_view name() const override { return "discrete-frechet"; }

  const std::vector<Trajectory>& trajectories() const {
    return trajectories_;
  }

  /// Exposed for direct unit testing of the DP.
  static double DiscreteFrechet(const Trajectory& p, const Trajectory& q);

 private:
  std::vector<Trajectory> trajectories_;
};

/// Random-walk trajectory families: `num_families` anchor walks, each
/// instance a jittered copy (optionally sub-sampled), so same-family
/// trajectories are Fréchet-close and cross-family ones far — the cluster
/// structure proximity workloads need.
std::vector<Trajectory> RandomWalkTrajectories(ObjectId n, size_t length,
                                               uint32_t num_families,
                                               double jitter, uint64_t seed);

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_TRAJECTORY_ORACLE_H_
