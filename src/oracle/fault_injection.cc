#include "oracle/fault_injection.h"

#include <vector>

#include "core/logging.h"

namespace metricprox {
namespace {

// splitmix64 finalizer — the same mixer as EdgeKeyHash, reused here to map
// (seed, pair, attempt) to an independent uniform deviate per attempt.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from a mixed 64-bit state.
double UnitUniform(uint64_t x) {
  return static_cast<double>(Mix(x) >> 11) * 0x1.0p-53;
}

constexpr uint64_t kFailureSalt = 0x7f4a7c15f39cc060ULL;
constexpr uint64_t kSpikeSalt = 0x9e6c586e6a9e35d5ULL;

}  // namespace

Status FaultInjectingOracle::FateFor(EdgeKey key) {
  const uint32_t attempt = attempt_index_[key.packed()]++;
  uint32_t& consecutive = consecutive_failures_[key.packed()];
  if (options_.max_consecutive_failures > 0 &&
      consecutive >= options_.max_consecutive_failures) {
    // Transience guarantee: the fault model never starves a retrying caller.
    consecutive = 0;
    return Status::OK();
  }
  const uint64_t h =
      Mix(options_.seed ^ Mix(key.packed())) ^
      (static_cast<uint64_t>(attempt) + 1) * 0xd1342543de82ef95ULL;
  if (UnitUniform(h ^ kSpikeSalt) < options_.spike_rate) {
    ++injected_spikes_;
    injected_spike_seconds_ += options_.spike_seconds;
    if (options_.per_call_timeout_seconds > 0.0 &&
        options_.spike_seconds >= options_.per_call_timeout_seconds) {
      ++injected_timeouts_;
      ++consecutive;
      return Status::DeadlineExceeded(
          "injected latency spike exceeded the per-call timeout");
    }
  }
  if (UnitUniform(h ^ kFailureSalt) < options_.failure_rate) {
    ++injected_failures_;
    ++consecutive;
    return Status::Unavailable("injected transient failure");
  }
  consecutive = 0;
  return Status::OK();
}

StatusOr<double> FaultInjectingOracle::TryDistance(ObjectId i, ObjectId j) {
  Status fate = FateFor(EdgeKey(i, j));
  if (!fate.ok()) return fate;
  return base_->TryDistance(i, j);
}

Status FaultInjectingOracle::TryBatchDistance(std::span<const IdPair> pairs,
                                              std::span<double> out,
                                              std::span<Status> statuses) {
  CHECK_EQ(pairs.size(), out.size());
  CHECK_EQ(pairs.size(), statuses.size());
  // Decide every fate up front on the calling thread, then ship the
  // surviving subset through the base in one (still parallel) batch.
  std::vector<size_t> shipped;
  std::vector<IdPair> ship_pairs;
  shipped.reserve(pairs.size());
  ship_pairs.reserve(pairs.size());
  for (size_t k = 0; k < pairs.size(); ++k) {
    statuses[k] = FateFor(EdgeKey(pairs[k].i, pairs[k].j));
    if (statuses[k].ok()) {
      shipped.push_back(k);
      ship_pairs.push_back(pairs[k]);
    }
  }
  if (!ship_pairs.empty()) {
    std::vector<double> ship_out(ship_pairs.size());
    std::vector<Status> ship_statuses(ship_pairs.size());
    base_->TryBatchDistance(ship_pairs, ship_out, ship_statuses);
    for (size_t s = 0; s < shipped.size(); ++s) {
      statuses[shipped[s]] = ship_statuses[s];
      if (ship_statuses[s].ok()) out[shipped[s]] = ship_out[s];
    }
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace metricprox
