#ifndef METRICPROX_ORACLE_FAULT_INJECTION_H_
#define METRICPROX_ORACLE_FAULT_INJECTION_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>

#include "core/oracle.h"
#include "core/status.h"
#include "core/types.h"

namespace metricprox {

/// Knobs of the deterministic fault model. All probabilities are in [0, 1].
struct FaultInjectionOptions {
  /// Probability that a given attempt fails with kUnavailable (a transient
  /// transport error: connection reset, 503, ...).
  double failure_rate = 0.0;
  /// Probability that a given attempt incurs a *virtual* latency spike of
  /// spike_seconds (tail latency of a remote oracle). Spikes are accounted,
  /// not slept, so chaos tests stay fast.
  double spike_rate = 0.0;
  /// Virtual duration of one latency spike.
  double spike_seconds = 0.0;
  /// Per-attempt timeout: a spiked attempt whose spike_seconds reaches this
  /// budget fails with kDeadlineExceeded instead of merely being slow.
  /// 0 disables the timeout.
  double per_call_timeout_seconds = 0.0;
  /// Transience guarantee: after this many consecutive failures of the same
  /// pair the next attempt is forced to succeed, so a retrying caller always
  /// makes progress. 0 means unbounded — a pair can fail forever, which is
  /// how deadline-exhaustion paths are exercised.
  uint32_t max_consecutive_failures = 3;
  /// Seed of the fault pattern. The fate of attempt k of pair (i, j) is a
  /// pure function of (seed, EdgeKey(i, j), k): two runs with the same seed
  /// see the same faults in the same places regardless of batch shapes.
  uint64_t seed = 0;
};

/// Test/chaos middleware that makes the fallible verbs of a reliable oracle
/// fail on purpose. Stacks between the real oracle and a RetryingOracle:
///
///   base -> SimulatedCostOracle -> FaultInjectingOracle -> RetryingOracle
///
/// Only TryDistance / TryBatchDistance inject faults; the infallible verbs
/// delegate untouched, since they have no channel to report a failure (and
/// CHECK-aborting a chaos run would defeat its purpose). Fault fates are
/// decided on the calling thread before the surviving subset is shipped to
/// the base oracle, so the base keeps its parallel BatchDistance and the
/// bookkeeping needs no synchronization (the resolver drives all Try verbs
/// from one thread).
class FaultInjectingOracle : public DistanceOracle {
 public:
  FaultInjectingOracle(DistanceOracle* base,
                       const FaultInjectionOptions& options)
      : base_(base), options_(options) {}

  double Distance(ObjectId i, ObjectId j) override {
    return base_->Distance(i, j);
  }
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override {
    base_->BatchDistance(pairs, out);
  }

  StatusOr<double> TryDistance(ObjectId i, ObjectId j) override;
  Status TryBatchDistance(std::span<const IdPair> pairs, std::span<double> out,
                          std::span<Status> statuses) override;

  ObjectId num_objects() const override { return base_->num_objects(); }
  std::string_view name() const override { return base_->name(); }
  void set_batch_workers(unsigned workers) override {
    base_->set_batch_workers(workers);
  }
  unsigned batch_workers() const override { return base_->batch_workers(); }

  uint64_t injected_failures() const { return injected_failures_; }
  uint64_t injected_timeouts() const { return injected_timeouts_; }
  uint64_t injected_spikes() const { return injected_spikes_; }
  double injected_spike_seconds() const { return injected_spike_seconds_; }

 private:
  /// Decides the fate of the next attempt of `key` and advances the per-pair
  /// attempt / consecutive-failure bookkeeping.
  Status FateFor(EdgeKey key);

  DistanceOracle* base_;  // not owned
  FaultInjectionOptions options_;
  std::unordered_map<uint64_t, uint32_t> attempt_index_;
  std::unordered_map<uint64_t, uint32_t> consecutive_failures_;
  uint64_t injected_failures_ = 0;
  uint64_t injected_timeouts_ = 0;
  uint64_t injected_spikes_ = 0;
  double injected_spike_seconds_ = 0.0;
};

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_FAULT_INJECTION_H_
