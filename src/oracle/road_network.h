#ifndef METRICPROX_ORACLE_ROAD_NETWORK_H_
#define METRICPROX_ORACLE_ROAD_NETWORK_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/oracle.h"
#include "core/types.h"

namespace metricprox {

/// Parameters for synthetic road-network generation.
struct RoadNetworkConfig {
  /// Grid dimensions; the network has width*height junction nodes.
  uint32_t grid_width = 48;
  uint32_t grid_height = 48;
  /// Probability that a grid edge survives thinning (connectivity is
  /// restored afterwards, so any value in (0, 1] yields a connected net).
  double edge_keep_probability = 0.82;
  /// Also connect diagonal neighbors (with the same keep probability).
  bool diagonals = true;
  /// Per-edge detour factor range: weight = euclidean_length * U[min, max].
  double detour_min = 1.05;
  double detour_max = 1.45;
  /// Fraction of grid rows/columns designated as highways; edges along a
  /// highway get their weight multiplied by `highway_factor`. Highways make
  /// the shortest-path metric strongly non-Euclidean (travel time depends
  /// on ramp access, not straight-line geometry), which is what road
  /// metrics look like in practice. 0 disables highways.
  double highway_fraction = 0.0;
  double highway_factor = 0.35;
  /// Junction coordinates are jittered by +-jitter cell widths.
  double jitter = 0.25;
  uint64_t seed = 1;
};

/// A connected, positively-weighted road graph. Shortest-path distances
/// over such a graph form a genuine metric on its nodes, which is how this
/// library simulates "Google Maps API" driving distances (SF POI / UrbanGB
/// in the paper) without network access.
class RoadNetwork {
 public:
  /// Generates a connected network from the config.
  static RoadNetwork Generate(const RoadNetworkConfig& config);

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(coordinates_.size());
  }
  uint32_t num_edges() const { return num_edges_; }

  /// Planar coordinates of each junction (for snapping points to nodes).
  const std::vector<std::pair<double, double>>& coordinates() const {
    return coordinates_;
  }

  /// Shortest-path distances from `node` to every node (Dijkstra over the
  /// road graph; one call models one expensive routing request).
  std::vector<double> ShortestPathsFrom(uint32_t node) const;

  /// Node nearest (euclidean) to the given planar location.
  uint32_t NearestNode(double x, double y) const;

 private:
  RoadNetwork() = default;

  // CSR adjacency.
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> targets_;
  std::vector<double> weights_;
  std::vector<std::pair<double, double>> coordinates_;
  uint32_t num_edges_ = 0;
};

/// DistanceOracle exposing road-network shortest paths between a set of
/// objects pinned to distinct junctions. The first call with a given source
/// runs Dijkstra over the whole network (the expensive step) and caches the
/// source's row of object-to-object distances; accounting of "calls" is done
/// by the resolver regardless of this cache, mirroring a real API where
/// every request is billed even if the provider could have batched them.
class RoadNetworkOracle : public DistanceOracle {
 public:
  /// `object_nodes[i]` is the junction hosting object i; entries must be
  /// distinct, valid node ids.
  RoadNetworkOracle(const RoadNetwork* network,
                    std::vector<uint32_t> object_nodes);

  double Distance(ObjectId i, ObjectId j) override;
  /// Parallel batch evaluation. Distance() mutates the row cache, so the
  /// batch path cannot simply fan Distance() out across threads; instead
  /// it groups the pairs by source row (min endpoint, the same convention
  /// Distance uses), runs the missing Dijkstras concurrently — the network
  /// itself is immutable — and commits the rows to the cache sequentially.
  /// Answers are bit-identical to the scalar path.
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override;
  ObjectId num_objects() const override {
    return static_cast<ObjectId>(object_nodes_.size());
  }
  std::string_view name() const override { return "road-network"; }

  const std::vector<uint32_t>& object_nodes() const { return object_nodes_; }

 private:
  /// One routing request: Dijkstra from object `src`'s junction, remapped
  /// to object-to-object distances. Const (pure) so batches can run it
  /// concurrently.
  std::vector<double> BuildRow(ObjectId src) const;

  const RoadNetwork* network_;  // not owned
  std::vector<uint32_t> object_nodes_;
  // source object id -> distances to every object (lazily filled).
  std::unordered_map<ObjectId, std::vector<double>> row_cache_;
};

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_ROAD_NETWORK_H_
