#ifndef METRICPROX_ORACLE_VECTOR_ORACLE_H_
#define METRICPROX_ORACLE_VECTOR_ORACLE_H_

#include <span>
#include <string_view>
#include <vector>

#include "core/oracle.h"
#include "core/types.h"

namespace metricprox {

/// A dense set of equal-dimension points backing the vector-space oracles.
using PointSet = std::vector<std::vector<double>>;

/// Which L_p-style metric a VectorOracle evaluates.
enum class VectorMetric {
  kEuclidean,   // L2
  kManhattan,   // L1
  kChebyshev,   // L_inf
  kAngular,     // geodesic angle on the unit sphere, in [0, pi]
  /// Squared L2 — NOT a metric, but a rho=2 relaxed semimetric
  /// ((a+b)^2 <= 2a^2 + 2b^2). Usable only with rho-aware schemes
  /// (TriBounder with rho=2); see bounds/tri.h.
  kSquaredEuclidean,
};

/// Relaxation factor rho for a vector metric (1 for the true metrics,
/// 2 for squared Euclidean).
double VectorMetricRho(VectorMetric metric);

std::string_view VectorMetricName(VectorMetric metric);

/// Exact vector-space distances. Although coordinates exist here, the
/// framework never looks at them: this oracle models datasets like
/// Flickr1M (256-dim, Euclidean) where evaluating the distance is the
/// expensive step and the algorithms operate purely in metric-space terms.
class VectorOracle : public DistanceOracle {
 public:
  /// Takes ownership of the points. All points must share one dimension and
  /// be pairwise distinct (metric identity); verified with CHECKs on the
  /// dimension and lazily on distance-zero results. The angular metric —
  /// the proper metrization of cosine similarity — additionally requires
  /// nonzero, pairwise non-parallel points (it measures directions).
  VectorOracle(PointSet points, VectorMetric metric);

  double Distance(ObjectId i, ObjectId j) override;
  /// Parallel batch evaluation: Distance() is pure, so the pairs are split
  /// across worker threads. Results are bit-identical to the scalar path.
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override;
  ObjectId num_objects() const override {
    return static_cast<ObjectId>(points_.size());
  }
  std::string_view name() const override { return VectorMetricName(metric_); }

  size_t dimension() const { return dimension_; }
  const PointSet& points() const { return points_; }

 private:
  PointSet points_;
  VectorMetric metric_;
  size_t dimension_;
  /// Row-major n x dimension copy of the points, built once at
  /// construction: the batch path feeds it to the dispatched
  /// batch-distance kernel (core/simd.h), which wants every coordinate in
  /// one contiguous block instead of one heap allocation per point.
  std::vector<double> flat_points_;
};

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_VECTOR_ORACLE_H_
