#ifndef METRICPROX_ORACLE_MATRIX_ORACLE_H_
#define METRICPROX_ORACLE_MATRIX_ORACLE_H_

#include <span>
#include <string_view>
#include <vector>

#include "core/oracle.h"
#include "core/status.h"
#include "core/types.h"

namespace metricprox {

/// Oracle backed by a precomputed symmetric distance matrix — the setting of
/// the paper's experiments, where "the actual pairwise distances (i.e.,
/// ground truth) are known" and each lookup is *accounted* as an expensive
/// call. Also the workhorse of the test suite (arbitrary random metrics).
class MatrixOracle : public DistanceOracle {
 public:
  /// `matrix` is a dense n*n row-major symmetric matrix with zero diagonal.
  /// Use Create() to validate untrusted input; the constructor only
  /// DCHECK-validates shape.
  explicit MatrixOracle(std::vector<double> matrix, ObjectId n);

  /// Validates symmetry, zero diagonal, positivity off the diagonal and the
  /// triangle inequality (O(n^3); intended for tests and small inputs).
  static StatusOr<MatrixOracle> Create(std::vector<double> matrix, ObjectId n);

  double Distance(ObjectId i, ObjectId j) override;
  /// Batch lookup. Matrix reads are nearly free, so the high grain keeps
  /// small batches inline; only very large sweeps fan out across threads.
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override;
  ObjectId num_objects() const override { return n_; }
  std::string_view name() const override { return "matrix"; }

  double At(ObjectId i, ObjectId j) const { return matrix_[i * n_ + j]; }

 private:
  std::vector<double> matrix_;
  ObjectId n_;
};

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_MATRIX_ORACLE_H_
