#include "oracle/weak_oracle.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace metricprox {
namespace {

// splitmix64 finalizer — the same mixer as EdgeKeyHash / the fault layer,
// mapping (seed, pair, salt) to independent uniform deviates per pair.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from a mixed 64-bit state.
double UnitUniform(uint64_t x) {
  return static_cast<double>(Mix(x) >> 11) * 0x1.0p-53;
}

constexpr uint64_t kFactorSalt = 0x6c62272e07bb0142ULL;
constexpr uint64_t kAdditiveSalt = 0x27d4eb2f165667c5ULL;

}  // namespace

WeakOracle::WeakOracle(DistanceOracle* base, const Options& options)
    : base_(base), options_(options) {
  CHECK(base_ != nullptr);
  CHECK(std::isfinite(options_.alpha) && options_.alpha >= 1.0)
      << "weak alpha must be finite and >= 1, got " << options_.alpha;
  CHECK(std::isfinite(options_.floor) && options_.floor >= 0.0)
      << "weak floor must be finite and >= 0, got " << options_.floor;
  CHECK(std::isfinite(options_.cost_seconds) && options_.cost_seconds >= 0.0)
      << "weak cost must be finite and >= 0, got " << options_.cost_seconds;
}

void WeakOracle::ChargeCall() {
  ++calls_;
  simulated_seconds_ += options_.cost_seconds;
}

double WeakOracle::Estimate(ObjectId i, ObjectId j) {
  ChargeCall();
  const double d = base_->Distance(i, j);
  const uint64_t pair = Mix(options_.seed ^ Mix(EdgeKey(i, j).packed()));
  // m = alpha^(2u-1): log-uniform over [1/alpha, alpha], so under- and
  // over-estimation are symmetric in log space and m is exactly 1 when
  // alpha is 1 (the degenerate exact model).
  const double m =
      std::pow(options_.alpha, 2.0 * UnitUniform(pair ^ kFactorSalt) - 1.0);
  const double a =
      options_.floor * (2.0 * UnitUniform(pair ^ kAdditiveSalt) - 1.0);
  return std::max(0.0, d * m + a);
}

}  // namespace metricprox
