#include "oracle/string_oracle.h"

#include <algorithm>
#include <vector>

#include "core/logging.h"
#include "core/parallel.h"

namespace metricprox {

LevenshteinOracle::LevenshteinOracle(std::vector<std::string> strings)
    : strings_(std::move(strings)) {
  CHECK(!strings_.empty()) << "empty string set";
}

size_t LevenshteinOracle::EditDistance(std::string_view a,
                                       std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter row
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double LevenshteinOracle::Distance(ObjectId i, ObjectId j) {
  DCHECK_NE(i, j);
  DCHECK_LT(i, strings_.size());
  DCHECK_LT(j, strings_.size());
  return static_cast<double>(EditDistance(strings_[i], strings_[j]));
}

void LevenshteinOracle::BatchDistance(std::span<const IdPair> pairs,
                                      std::span<double> out) {
  CHECK_EQ(pairs.size(), out.size());
  ParallelFor(pairs.size(), /*grain=*/4, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      out[k] = Distance(pairs[k].i, pairs[k].j);
    }
  }, batch_workers());
}

}  // namespace metricprox
