#include "oracle/road_network.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "core/logging.h"
#include "core/parallel.h"
#include "graph/indexed_heap.h"
#include "graph/union_find.h"

namespace metricprox {

namespace {

struct RawEdge {
  uint32_t a;
  uint32_t b;
  double weight;
};

double Euclid(const std::pair<double, double>& p,
              const std::pair<double, double>& q) {
  const double dx = p.first - q.first;
  const double dy = p.second - q.second;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

RoadNetwork RoadNetwork::Generate(const RoadNetworkConfig& config) {
  CHECK_GE(config.grid_width, 2u);
  CHECK_GE(config.grid_height, 2u);
  CHECK_GT(config.edge_keep_probability, 0.0);
  CHECK_LE(config.edge_keep_probability, 1.0);
  CHECK_GE(config.detour_min, 1.0);
  CHECK_GE(config.detour_max, config.detour_min);

  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> jitter(-config.jitter,
                                                config.jitter);
  std::uniform_real_distribution<double> detour(config.detour_min,
                                                config.detour_max);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  const uint32_t w = config.grid_width;
  const uint32_t h = config.grid_height;
  const uint32_t n = w * h;

  // Highway designation: whole rows/columns travel at highway_factor of
  // normal cost, so the shortest-path field becomes multi-scale.
  std::vector<bool> highway_row(h, false);
  std::vector<bool> highway_col(w, false);
  if (config.highway_fraction > 0.0) {
    std::uniform_real_distribution<double> pick(0.0, 1.0);
    for (uint32_t y = 0; y < h; ++y) {
      highway_row[y] = pick(rng) < config.highway_fraction;
    }
    for (uint32_t x = 0; x < w; ++x) {
      highway_col[x] = pick(rng) < config.highway_fraction;
    }
  }

  RoadNetwork net;
  net.coordinates_.reserve(n);
  for (uint32_t y = 0; y < h; ++y) {
    for (uint32_t x = 0; x < w; ++x) {
      net.coordinates_.emplace_back(x + jitter(rng), y + jitter(rng));
    }
  }
  auto node_at = [w](uint32_t x, uint32_t y) { return y * w + x; };

  // Enumerate candidate edges; keep each with the configured probability.
  std::vector<RawEdge> kept;
  std::vector<RawEdge> dropped;
  auto consider = [&](uint32_t a, uint32_t b, bool on_highway) {
    double weight =
        Euclid(net.coordinates_[a], net.coordinates_[b]) * detour(rng);
    if (on_highway) weight *= config.highway_factor;
    RawEdge e{a, b, weight};
    if (unit(rng) < config.edge_keep_probability) {
      kept.push_back(e);
    } else {
      dropped.push_back(e);
    }
  };
  for (uint32_t y = 0; y < h; ++y) {
    for (uint32_t x = 0; x < w; ++x) {
      if (x + 1 < w) {
        consider(node_at(x, y), node_at(x + 1, y), highway_row[y]);
      }
      if (y + 1 < h) {
        consider(node_at(x, y), node_at(x, y + 1), highway_col[x]);
      }
      if (config.diagonals && x + 1 < w && y + 1 < h) {
        consider(node_at(x, y), node_at(x + 1, y + 1), false);
      }
    }
  }

  // Restore connectivity: re-add dropped edges whose endpoints are still in
  // different components. The full grid is connected, so this terminates
  // with a single component.
  UnionFind uf(n);
  for (const RawEdge& e : kept) uf.Union(e.a, e.b);
  std::shuffle(dropped.begin(), dropped.end(), rng);
  for (const RawEdge& e : dropped) {
    if (uf.num_components() == 1) break;
    if (uf.Union(e.a, e.b)) kept.push_back(e);
  }
  CHECK_EQ(uf.num_components(), 1u) << "grid closure failed";

  // Build CSR (each undirected edge stored in both directions).
  std::vector<uint32_t> degree(n, 0);
  for (const RawEdge& e : kept) {
    ++degree[e.a];
    ++degree[e.b];
  }
  net.offsets_.assign(n + 1, 0);
  for (uint32_t i = 0; i < n; ++i) {
    net.offsets_[i + 1] = net.offsets_[i] + degree[i];
  }
  net.targets_.resize(net.offsets_[n]);
  net.weights_.resize(net.offsets_[n]);
  std::vector<uint32_t> cursor(net.offsets_.begin(), net.offsets_.end() - 1);
  for (const RawEdge& e : kept) {
    net.targets_[cursor[e.a]] = e.b;
    net.weights_[cursor[e.a]++] = e.weight;
    net.targets_[cursor[e.b]] = e.a;
    net.weights_[cursor[e.b]++] = e.weight;
  }
  net.num_edges_ = static_cast<uint32_t>(kept.size());
  return net;
}

std::vector<double> RoadNetwork::ShortestPathsFrom(uint32_t node) const {
  CHECK_LT(node, num_nodes());
  std::vector<double> dist(num_nodes(), kInfDistance);
  dist[node] = 0.0;
  IndexedMinHeap heap(num_nodes());
  heap.Push(node, 0.0);
  while (!heap.empty()) {
    const double du = heap.TopKey();
    const uint32_t u = heap.Pop();
    for (uint32_t k = offsets_[u]; k < offsets_[u + 1]; ++k) {
      const uint32_t v = targets_[k];
      const double candidate = du + weights_[k];
      if (candidate < dist[v]) {
        dist[v] = candidate;
        heap.PushOrDecrease(v, candidate);
      }
    }
  }
  return dist;
}

uint32_t RoadNetwork::NearestNode(double x, double y) const {
  uint32_t best = 0;
  double best_dist = kInfDistance;
  for (uint32_t i = 0; i < num_nodes(); ++i) {
    const double d = Euclid(coordinates_[i], {x, y});
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

RoadNetworkOracle::RoadNetworkOracle(const RoadNetwork* network,
                                     std::vector<uint32_t> object_nodes)
    : network_(network), object_nodes_(std::move(object_nodes)) {
  CHECK(network_ != nullptr);
  CHECK(!object_nodes_.empty());
  std::vector<uint32_t> sorted = object_nodes_;
  std::sort(sorted.begin(), sorted.end());
  CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "objects must occupy distinct junctions (metric identity)";
  CHECK_LT(sorted.back(), network_->num_nodes());
}

std::vector<double> RoadNetworkOracle::BuildRow(ObjectId src) const {
  const std::vector<double> all =
      network_->ShortestPathsFrom(object_nodes_[src]);
  std::vector<double> row(object_nodes_.size());
  for (size_t k = 0; k < object_nodes_.size(); ++k) {
    row[k] = all[object_nodes_[k]];
    DCHECK(std::isfinite(row[k])) << "network not connected";
  }
  return row;
}

double RoadNetworkOracle::Distance(ObjectId i, ObjectId j) {
  DCHECK_NE(i, j);
  DCHECK_LT(i, object_nodes_.size());
  DCHECK_LT(j, object_nodes_.size());
  // Always answer from the smaller endpoint's row: Dijkstra from i and
  // from j sum the same shortest path in opposite orders, which can differ
  // in the last bit — and a distance oracle must be *exactly* symmetric.
  const ObjectId src = i < j ? i : j;
  const ObjectId dst = i < j ? j : i;
  auto it = row_cache_.find(src);
  if (it != row_cache_.end()) return it->second[dst];
  it = row_cache_.emplace(src, BuildRow(src)).first;
  return it->second[dst];
}

void RoadNetworkOracle::BatchDistance(std::span<const IdPair> pairs,
                                      std::span<double> out) {
  CHECK_EQ(pairs.size(), out.size());
  // Missing source rows, in first-occurrence order (min endpoint, matching
  // Distance's convention so the two paths answer from the same row).
  std::vector<ObjectId> missing;
  for (const IdPair& p : pairs) {
    const ObjectId src = p.i < p.j ? p.i : p.j;
    if (row_cache_.find(src) != row_cache_.end()) continue;
    if (std::find(missing.begin(), missing.end(), src) != missing.end()) {
      continue;
    }
    missing.push_back(src);
  }

  // Run the missing routing requests concurrently (BuildRow is const —
  // only the network and the object table are read), then commit them to
  // the cache on this thread.
  std::vector<std::vector<double>> rows(missing.size());
  ParallelFor(missing.size(), /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      rows[k] = BuildRow(missing[k]);
    }
  }, batch_workers());
  for (size_t k = 0; k < missing.size(); ++k) {
    row_cache_.emplace(missing[k], std::move(rows[k]));
  }

  for (size_t k = 0; k < pairs.size(); ++k) {
    const ObjectId src = pairs[k].i < pairs[k].j ? pairs[k].i : pairs[k].j;
    const ObjectId dst = pairs[k].i < pairs[k].j ? pairs[k].j : pairs[k].i;
    out[k] = row_cache_.at(src)[dst];
  }
}

}  // namespace metricprox
