#ifndef METRICPROX_ORACLE_STRING_ORACLE_H_
#define METRICPROX_ORACLE_STRING_ORACLE_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/oracle.h"
#include "core/types.h"

namespace metricprox {

/// Levenshtein (unit-cost edit) distance between strings — a genuine metric
/// and a genuinely expensive oracle (O(|a| * |b|) dynamic program per call).
/// Models the DNA / protein sequence applications from the paper's intro.
class LevenshteinOracle : public DistanceOracle {
 public:
  /// Takes ownership of the strings. Strings should be pairwise distinct so
  /// the metric identity axiom holds.
  explicit LevenshteinOracle(std::vector<std::string> strings);

  double Distance(ObjectId i, ObjectId j) override;
  /// Parallel batch evaluation: the DP uses per-call scratch, so pairs are
  /// split across worker threads. The per-call cost is the highest of all
  /// shipped oracles, so even small batches parallelize profitably.
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override;
  ObjectId num_objects() const override {
    return static_cast<ObjectId>(strings_.size());
  }
  std::string_view name() const override { return "levenshtein"; }

  const std::vector<std::string>& strings() const { return strings_; }

  /// Exposed for direct unit testing of the DP.
  static size_t EditDistance(std::string_view a, std::string_view b);

 private:
  std::vector<std::string> strings_;
};

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_STRING_ORACLE_H_
