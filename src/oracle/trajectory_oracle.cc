#include "oracle/trajectory_oracle.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "core/logging.h"

namespace metricprox {

namespace {

double PointDistance(const std::pair<double, double>& a,
                     const std::pair<double, double>& b) {
  const double dx = a.first - b.first;
  const double dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

FrechetOracle::FrechetOracle(std::vector<Trajectory> trajectories)
    : trajectories_(std::move(trajectories)) {
  CHECK(!trajectories_.empty());
  for (const Trajectory& t : trajectories_) {
    CHECK(!t.empty()) << "empty trajectory";
  }
}

double FrechetOracle::DiscreteFrechet(const Trajectory& p,
                                      const Trajectory& q) {
  // Two-row DP; row[j] = F(i, j).
  std::vector<double> prev(q.size());
  std::vector<double> cur(q.size());

  prev[0] = PointDistance(p[0], q[0]);
  for (size_t j = 1; j < q.size(); ++j) {
    prev[j] = std::max(prev[j - 1], PointDistance(p[0], q[j]));
  }
  for (size_t i = 1; i < p.size(); ++i) {
    cur[0] = std::max(prev[0], PointDistance(p[i], q[0]));
    for (size_t j = 1; j < q.size(); ++j) {
      const double reach = std::min({prev[j], cur[j - 1], prev[j - 1]});
      cur[j] = std::max(reach, PointDistance(p[i], q[j]));
    }
    std::swap(prev, cur);
  }
  return prev[q.size() - 1];
}

double FrechetOracle::Distance(ObjectId i, ObjectId j) {
  DCHECK_NE(i, j);
  DCHECK_LT(i, trajectories_.size());
  DCHECK_LT(j, trajectories_.size());
  return DiscreteFrechet(trajectories_[i], trajectories_[j]);
}

std::vector<Trajectory> RandomWalkTrajectories(ObjectId n, size_t length,
                                               uint32_t num_families,
                                               double jitter, uint64_t seed) {
  CHECK_GE(n, 1u);
  CHECK_GE(length, 2u);
  CHECK_GE(num_families, 1u);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> start(0.0, 100.0);
  std::normal_distribution<double> step(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, jitter);

  std::vector<Trajectory> anchors(num_families);
  for (Trajectory& anchor : anchors) {
    double x = start(rng);
    double y = start(rng);
    anchor.reserve(length);
    for (size_t s = 0; s < length; ++s) {
      anchor.emplace_back(x, y);
      x += step(rng);
      y += step(rng);
    }
  }

  std::vector<Trajectory> out;
  out.reserve(n);
  for (ObjectId i = 0; i < n; ++i) {
    const Trajectory& anchor = anchors[rng() % num_families];
    Trajectory t;
    t.reserve(anchor.size());
    for (const auto& [x, y] : anchor) {
      t.emplace_back(x + noise(rng), y + noise(rng));
    }
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace metricprox
