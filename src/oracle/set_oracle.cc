#include "oracle/set_oracle.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace metricprox {

namespace {

double SquaredEuclid(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

HausdorffOracle::HausdorffOracle(std::vector<PointSet> sets)
    : sets_(std::move(sets)) {
  CHECK(!sets_.empty());
  CHECK(!sets_[0].empty()) << "empty point set";
  dimension_ = sets_[0][0].size();
  for (const PointSet& set : sets_) {
    CHECK(!set.empty()) << "empty point set";
    for (const std::vector<double>& p : set) {
      CHECK_EQ(p.size(), dimension_) << "ragged point set";
    }
  }
}

double HausdorffOracle::DirectedDistance(const PointSet& a,
                                         const PointSet& b) const {
  double worst = 0.0;
  for (const std::vector<double>& pa : a) {
    double nearest = kInfDistance;
    for (const std::vector<double>& pb : b) {
      const double d2 = SquaredEuclid(pa, pb);
      if (d2 < nearest) nearest = d2;
      // Early exit: this a is already served better than the current worst.
      if (nearest <= worst) break;
    }
    if (nearest > worst) worst = nearest;
  }
  return worst;  // still squared
}

double HausdorffOracle::Distance(ObjectId i, ObjectId j) {
  DCHECK_NE(i, j);
  DCHECK_LT(i, sets_.size());
  DCHECK_LT(j, sets_.size());
  const double forward = DirectedDistance(sets_[i], sets_[j]);
  const double backward = DirectedDistance(sets_[j], sets_[i]);
  return std::sqrt(forward > backward ? forward : backward);
}

JaccardOracle::JaccardOracle(std::vector<std::vector<uint32_t>> sets)
    : sets_(std::move(sets)) {
  CHECK(!sets_.empty());
  for (const std::vector<uint32_t>& set : sets_) {
    CHECK(!set.empty()) << "empty set";
    CHECK(std::is_sorted(set.begin(), set.end()));
    CHECK(std::adjacent_find(set.begin(), set.end()) == set.end())
        << "duplicate element";
  }
}

double JaccardOracle::Distance(ObjectId i, ObjectId j) {
  DCHECK_NE(i, j);
  DCHECK_LT(i, sets_.size());
  DCHECK_LT(j, sets_.size());
  const std::vector<uint32_t>& a = sets_[i];
  const std::vector<uint32_t>& b = sets_[j];
  size_t x = 0;
  size_t y = 0;
  size_t intersection = 0;
  while (x < a.size() && y < b.size()) {
    if (a[x] == b[y]) {
      ++intersection;
      ++x;
      ++y;
    } else if (a[x] < b[y]) {
      ++x;
    } else {
      ++y;
    }
  }
  const size_t union_size = a.size() + b.size() - intersection;
  return 1.0 - static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

}  // namespace metricprox
