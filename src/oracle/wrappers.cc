#include "oracle/wrappers.h"

#include <cmath>

#include "core/logging.h"

namespace metricprox {

VerifyingOracle::VerifyingOracle(DistanceOracle* base, uint32_t check_every,
                                 double tolerance)
    : base_(base),
      check_every_(check_every),
      tolerance_(tolerance),
      rng_state_(0x9e3779b97f4a7c15ULL) {
  CHECK(base != nullptr);
  CHECK_GE(check_every, 1u);
  CHECK_GE(tolerance, 0.0);
}

double VerifyingOracle::Distance(ObjectId i, ObjectId j) {
  const double d = base_->Distance(i, j);
  CHECK(std::isfinite(d)) << name() << " returned a non-finite distance";
  CHECK_GE(d, 0.0) << name() << " returned a negative distance for (" << i
                   << ", " << j << ")";
  CHECK_GT(d, 0.0) << name() << " returned zero for distinct objects (" << i
                   << ", " << j << ") — metric identity violated";

  if (++calls_ % check_every_ != 0) return d;
  ++checks_;

  // Symmetry.
  const double reverse = base_->Distance(j, i);
  CHECK_LE(std::abs(d - reverse), tolerance_)
      << name() << " is asymmetric on (" << i << ", " << j << "): " << d
      << " vs " << reverse;

  // Triangle inequality through a pseudo-random witness (splitmix64 step).
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  const ObjectId k =
      static_cast<ObjectId>((z ^ (z >> 31)) % base_->num_objects());
  if (k != i && k != j) {
    const double via =
        base_->Distance(i, k) + base_->Distance(k, j);
    CHECK_LE(d, via + tolerance_)
        << name() << " violates the triangle inequality: dist(" << i << ","
        << j << ")=" << d << " > dist(" << i << "," << k << ") + dist(" << k
        << "," << j << ")=" << via;
  }
  return d;
}

}  // namespace metricprox
