#include "oracle/retry.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "core/logging.h"
#include "obs/span.h"

namespace metricprox {
namespace {

// splitmix64 finalizer (same mixer as EdgeKeyHash) driving the jitter
// sequence.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double UnitUniform(uint64_t x) {
  return static_cast<double>(Mix(x) >> 11) * 0x1.0p-53;
}

}  // namespace

double RetryingOracle::NextBackoffSeconds(uint32_t round) {
  double backoff = options_.initial_backoff_seconds;
  for (uint32_t r = 0; r < round && backoff < options_.max_backoff_seconds;
       ++r) {
    backoff *= options_.backoff_multiplier;
  }
  backoff = std::min(backoff, options_.max_backoff_seconds);
  if (options_.jitter > 0.0) {
    const double u = UnitUniform(options_.seed ^ ++jitter_counter_);
    backoff *= 1.0 + options_.jitter * (2.0 * u - 1.0);
    backoff = std::min(backoff, options_.max_backoff_seconds);
  }
  return std::max(backoff, 0.0);
}

void RetryingOracle::Backoff(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  stats_.backoff_seconds += seconds;
  TraceEvent event;
  event.kind = TraceEventKind::kBackoff;
  event.seconds = seconds;
  // Fan-out: a backoff taken while shipping a coalesced batch belongs in
  // every waiting session's trace, not just the shipping thread's.
  FanoutEmit(telemetry_, event);
}

StatusOr<double> RetryingOracle::TryDistance(ObjectId i, ObjectId j) {
  const uint32_t max_attempts = std::max<uint32_t>(options_.max_attempts, 1);
  Stopwatch deadline_watch;
  Status last;
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const double sleep = NextBackoffSeconds(attempt - 1);
      if (options_.deadline_seconds > 0.0 &&
          deadline_watch.ElapsedSeconds() + sleep >
              options_.deadline_seconds) {
        ++stats_.failures;
        return Status::DeadlineExceeded("retry deadline exhausted after " +
                                        std::string(last.ToString()));
      }
      Backoff(sleep);
      ++stats_.retries;
      TraceEvent event;
      event.kind = TraceEventKind::kRetry;
      event.i = i;
      event.j = j;
      event.count = attempt;  // retry round, 1-based
      FanoutEmit(telemetry_, event);
    }
    ++stats_.attempts;
    StatusOr<double> result = base_->TryDistance(i, j);
    if (result.ok()) return result;
    last = result.status();
    if (last.code() == StatusCode::kDeadlineExceeded) ++stats_.timeouts;
    if (!IsRetryableStatus(last)) break;
  }
  ++stats_.failures;
  return Status(last.code(), "retries exhausted: " + last.message());
}

Status RetryingOracle::TryBatchDistance(std::span<const IdPair> pairs,
                                        std::span<double> out,
                                        std::span<Status> statuses) {
  CHECK_EQ(pairs.size(), out.size());
  CHECK_EQ(pairs.size(), statuses.size());
  const uint32_t max_attempts = std::max<uint32_t>(options_.max_attempts, 1);
  Stopwatch deadline_watch;

  // Indices still awaiting a successful answer. Each round re-ships only
  // these (partial-batch retry); answered pairs keep their round-one result.
  std::vector<size_t> active(pairs.size());
  std::iota(active.begin(), active.end(), size_t{0});

  std::vector<IdPair> round_pairs;
  std::vector<double> round_out;
  std::vector<Status> round_statuses;
  for (uint32_t round = 0; !active.empty(); ++round) {
    if (round > 0) {
      const double sleep = NextBackoffSeconds(round - 1);
      if (options_.deadline_seconds > 0.0 &&
          deadline_watch.ElapsedSeconds() + sleep >
              options_.deadline_seconds) {
        for (const size_t k : active) {
          statuses[k] = Status::DeadlineExceeded(
              "retry deadline exhausted after " + statuses[k].ToString());
        }
        stats_.failures += active.size();
        break;
      }
      Backoff(sleep);
      stats_.retries += active.size();
      TraceEvent event;
      event.kind = TraceEventKind::kRetry;
      event.count = active.size();  // pairs re-shipped this round
      FanoutEmit(telemetry_, event);
    }

    round_pairs.clear();
    for (const size_t k : active) round_pairs.push_back(pairs[k]);
    round_out.assign(round_pairs.size(), 0.0);
    round_statuses.assign(round_pairs.size(), Status::OK());
    stats_.attempts += round_pairs.size();
    base_->TryBatchDistance(round_pairs, round_out, round_statuses);

    std::vector<size_t> still_failing;
    for (size_t s = 0; s < active.size(); ++s) {
      const size_t k = active[s];
      statuses[k] = round_statuses[s];
      if (round_statuses[s].ok()) {
        out[k] = round_out[s];
        continue;
      }
      if (round_statuses[s].code() == StatusCode::kDeadlineExceeded) {
        ++stats_.timeouts;
      }
      if (IsRetryableStatus(round_statuses[s])) {
        still_failing.push_back(k);
      } else {
        ++stats_.failures;  // permanent: not worth another round
      }
    }
    active = std::move(still_failing);
    if (!active.empty() && round + 1 >= max_attempts) {
      for (const size_t k : active) {
        statuses[k] = Status(statuses[k].code(),
                             "retries exhausted: " + statuses[k].message());
      }
      stats_.failures += active.size();
      break;
    }
  }

  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

double RetryingOracle::Distance(ObjectId i, ObjectId j) {
  StatusOr<double> result = TryDistance(i, j);
  CHECK(result.ok()) << "oracle failed with retries exhausted on pair (" << i
                     << ", " << j << "): " << result.status();
  return result.value();
}

void RetryingOracle::BatchDistance(std::span<const IdPair> pairs,
                                   std::span<double> out) {
  std::vector<Status> statuses(pairs.size());
  const Status status = TryBatchDistance(pairs, out, statuses);
  CHECK(status.ok()) << "batch oracle failed with retries exhausted: "
                     << status;
}

void RetryingOracle::AccumulateStats(ResolverStats* stats) const {
  CHECK(stats != nullptr);
  stats->oracle_retries += stats_.retries;
  stats->oracle_timeouts += stats_.timeouts;
  stats->retry_backoff_seconds += stats_.backoff_seconds;
}

}  // namespace metricprox
