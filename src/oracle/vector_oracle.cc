#include "oracle/vector_oracle.h"

#include <cmath>
#include <optional>

#include "core/logging.h"
#include "core/parallel.h"
#include "core/simd.h"

namespace metricprox {

namespace {

/// The kernel DistanceKind for a metric, or nullopt for metrics that stay
/// on the scalar path (angular: the acos/clamp sequence has no bit-exact
/// vector form worth maintaining).
std::optional<simd::DistanceKind> KernelKind(VectorMetric metric) {
  switch (metric) {
    case VectorMetric::kEuclidean:
      return simd::DistanceKind::kL2;
    case VectorMetric::kSquaredEuclidean:
      return simd::DistanceKind::kSquaredL2;
    case VectorMetric::kManhattan:
      return simd::DistanceKind::kL1;
    case VectorMetric::kChebyshev:
      return simd::DistanceKind::kLinf;
    case VectorMetric::kAngular:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::string_view VectorMetricName(VectorMetric metric) {
  switch (metric) {
    case VectorMetric::kEuclidean:
      return "euclidean";
    case VectorMetric::kManhattan:
      return "manhattan";
    case VectorMetric::kChebyshev:
      return "chebyshev";
    case VectorMetric::kAngular:
      return "angular";
    case VectorMetric::kSquaredEuclidean:
      return "squared-euclidean";
  }
  return "unknown";
}

double VectorMetricRho(VectorMetric metric) {
  return metric == VectorMetric::kSquaredEuclidean ? 2.0 : 1.0;
}

VectorOracle::VectorOracle(PointSet points, VectorMetric metric)
    : points_(std::move(points)), metric_(metric) {
  CHECK(!points_.empty()) << "empty point set";
  dimension_ = points_[0].size();
  CHECK_GT(dimension_, 0u);
  for (const std::vector<double>& p : points_) {
    CHECK_EQ(p.size(), dimension_) << "ragged point set";
  }
  flat_points_.reserve(points_.size() * dimension_);
  for (const std::vector<double>& p : points_) {
    flat_points_.insert(flat_points_.end(), p.begin(), p.end());
  }
}

double VectorOracle::Distance(ObjectId i, ObjectId j) {
  DCHECK_NE(i, j);
  DCHECK_LT(i, points_.size());
  DCHECK_LT(j, points_.size());
  const std::vector<double>& a = points_[i];
  const std::vector<double>& b = points_[j];
  double acc = 0.0;
  switch (metric_) {
    case VectorMetric::kEuclidean:
      for (size_t d = 0; d < dimension_; ++d) {
        const double diff = a[d] - b[d];
        acc += diff * diff;
      }
      return std::sqrt(acc);
    case VectorMetric::kSquaredEuclidean:
      for (size_t d = 0; d < dimension_; ++d) {
        const double diff = a[d] - b[d];
        acc += diff * diff;
      }
      return acc;
    case VectorMetric::kManhattan:
      for (size_t d = 0; d < dimension_; ++d) {
        acc += std::abs(a[d] - b[d]);
      }
      return acc;
    case VectorMetric::kChebyshev:
      for (size_t d = 0; d < dimension_; ++d) {
        const double diff = std::abs(a[d] - b[d]);
        if (diff > acc) acc = diff;
      }
      return acc;
    case VectorMetric::kAngular: {
      // Geodesic distance on the unit sphere: the angle between the two
      // directions. Unlike raw "1 - cosine similarity" (which violates the
      // triangle inequality), the angle is a true metric.
      double dot = 0.0;
      double na = 0.0;
      double nb = 0.0;
      for (size_t d = 0; d < dimension_; ++d) {
        dot += a[d] * b[d];
        na += a[d] * a[d];
        nb += b[d] * b[d];
      }
      DCHECK_GT(na, 0.0) << "angular metric requires nonzero vectors";
      DCHECK_GT(nb, 0.0) << "angular metric requires nonzero vectors";
      const double denom = std::sqrt(na * nb);
      double cosine = denom > 0.0 ? dot / denom : 1.0;
      cosine = std::min(1.0, std::max(-1.0, cosine));
      return std::acos(cosine);
    }
  }
  LOG(Fatal) << "unreachable metric kind";
  return 0.0;
}

void VectorOracle::BatchDistance(std::span<const IdPair> pairs,
                                 std::span<double> out) {
  CHECK_EQ(pairs.size(), out.size());
  const std::optional<simd::DistanceKind> kind = KernelKind(metric_);
  // Grain sized so a chunk covers thousands of coordinate ops even in low
  // dimension; chunks only read points, so they are independent. Inside a
  // chunk the dispatched batch-distance kernel evaluates one pair per SIMD
  // lane over the flat matrix; each lane accumulates dimensions in scalar
  // order, so results are bit-identical to Distance() on every tier.
  ParallelFor(pairs.size(), /*grain=*/64, [&](size_t begin, size_t end) {
    if (kind.has_value()) {
      simd::ActiveKernels().batch_distance(flat_points_.data(), dimension_,
                                           pairs.data() + begin, end - begin,
                                           out.data() + begin, *kind);
      return;
    }
    for (size_t k = begin; k < end; ++k) {
      out[k] = Distance(pairs[k].i, pairs[k].j);
    }
  }, batch_workers());
}

}  // namespace metricprox
