#ifndef METRICPROX_ORACLE_WRAPPERS_H_
#define METRICPROX_ORACLE_WRAPPERS_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>

#include "core/oracle.h"
#include "core/types.h"
#include "obs/telemetry.h"

namespace metricprox {

/// Counts calls to the wrapped oracle. Useful when an oracle is exercised
/// outside a BoundedResolver (e.g. during LAESA pivot-table construction),
/// so bootstrap calls are charged like any other call.
class CountingOracle : public DistanceOracle {
 public:
  explicit CountingOracle(DistanceOracle* base) : base_(base) {}

  double Distance(ObjectId i, ObjectId j) override {
    ++calls_;
    return base_->Distance(i, j);
  }
  // Each pair is billed as one call (batching amortizes latency, not
  // price), and the base keeps its parallel implementation.
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override {
    calls_ += pairs.size();
    base_->BatchDistance(pairs, out);
  }
  // The fallible verbs bill the same way: one call per attempted pair.
  StatusOr<double> TryDistance(ObjectId i, ObjectId j) override {
    ++calls_;
    return base_->TryDistance(i, j);
  }
  Status TryBatchDistance(std::span<const IdPair> pairs, std::span<double> out,
                          std::span<Status> statuses) override {
    calls_ += pairs.size();
    return base_->TryBatchDistance(pairs, out, statuses);
  }
  ObjectId num_objects() const override { return base_->num_objects(); }
  std::string_view name() const override { return base_->name(); }
  void set_batch_workers(unsigned workers) override {
    base_->set_batch_workers(workers);
  }
  unsigned batch_workers() const override { return base_->batch_workers(); }

  uint64_t calls() const { return calls_; }
  void ResetCalls() { calls_ = 0; }

 private:
  DistanceOracle* base_;  // not owned
  uint64_t calls_ = 0;
};

/// Adds a fixed *virtual* latency per call (the paper's 1.2 s / 2.5 s map-API
/// costs) without actually sleeping: accumulated simulated seconds are read
/// back by the experiment harness and added to measured CPU time. This
/// reproduces the completion-time figures (7d, 8a, 8b) in minutes instead of
/// days.
class SimulatedCostOracle : public DistanceOracle {
 public:
  SimulatedCostOracle(DistanceOracle* base, double seconds_per_call)
      : base_(base), seconds_per_call_(seconds_per_call) {}

  double Distance(ObjectId i, ObjectId j) override {
    simulated_seconds_ += seconds_per_call_;
    RecordCost(1);
    return base_->Distance(i, j);
  }
  // Simulated latency stays per pair: the modeled API bills every request
  // even when shipped in one round-trip, matching oracle_calls accounting.
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override {
    simulated_seconds_ += seconds_per_call_ * static_cast<double>(pairs.size());
    RecordCost(pairs.size());
    base_->BatchDistance(pairs, out);
  }
  // Fallible verbs bill per attempted pair too: the modeled API charges for
  // a request whether or not the answer arrives.
  StatusOr<double> TryDistance(ObjectId i, ObjectId j) override {
    simulated_seconds_ += seconds_per_call_;
    RecordCost(1);
    return base_->TryDistance(i, j);
  }
  Status TryBatchDistance(std::span<const IdPair> pairs, std::span<double> out,
                          std::span<Status> statuses) override {
    simulated_seconds_ += seconds_per_call_ * static_cast<double>(pairs.size());
    RecordCost(pairs.size());
    return base_->TryBatchDistance(pairs, out, statuses);
  }
  ObjectId num_objects() const override { return base_->num_objects(); }
  std::string_view name() const override { return base_->name(); }
  void set_batch_workers(unsigned workers) override {
    base_->set_batch_workers(workers);
  }
  unsigned batch_workers() const override { return base_->batch_workers(); }

  double simulated_seconds() const { return simulated_seconds_; }
  double seconds_per_call() const { return seconds_per_call_; }
  void Reset() { simulated_seconds_ = 0.0; }

  /// Attaches (or with nullptr, detaches) telemetry: the per-pair simulated
  /// cost feeds the simulated_cost_seconds histogram.
  void SetTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

 private:
  void RecordCost(size_t pairs) {
    if (telemetry_ == nullptr || seconds_per_call_ <= 0.0) return;
    for (size_t k = 0; k < pairs; ++k) {
      telemetry_->simulated_cost_seconds.Record(seconds_per_call_);
    }
  }

  DistanceOracle* base_;  // not owned
  double seconds_per_call_;
  double simulated_seconds_ = 0.0;
  Telemetry* telemetry_ = nullptr;  // not owned; nullptr = telemetry off
};

/// Memoizes results of the wrapped oracle. Note that a BoundedResolver
/// already caches every resolution in its PartialDistanceGraph; this wrapper
/// exists for components that bypass the resolver (pivot selection, ground
/// truth computation in tests).
class CachingOracle : public DistanceOracle {
 public:
  explicit CachingOracle(DistanceOracle* base) : base_(base) {}

  double Distance(ObjectId i, ObjectId j) override {
    const EdgeKey key(i, j);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    const double d = base_->Distance(i, j);
    cache_.emplace(key, d);
    return d;
  }
  ObjectId num_objects() const override { return base_->num_objects(); }
  std::string_view name() const override { return base_->name(); }
  void set_batch_workers(unsigned workers) override {
    base_->set_batch_workers(workers);
  }
  unsigned batch_workers() const override { return base_->batch_workers(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  DistanceOracle* base_;  // not owned
  std::unordered_map<EdgeKey, double, EdgeKeyHash> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Debug wrapper that spot-checks the metric axioms online: every Kth call
/// re-evaluates the symmetric direction and a random triangle through the
/// new pair, CHECK-failing on a violation. Every bound scheme silently
/// returns wrong answers on non-metric inputs, so wiring a user-provided
/// oracle through this wrapper in staging catches the #1 integration bug
/// (asymmetric or non-triangle "distances") at its source.
class VerifyingOracle : public DistanceOracle {
 public:
  /// `check_every` = N means one verification burst per N calls (1 = every
  /// call). `tolerance` absorbs the oracle's own floating-point noise.
  VerifyingOracle(DistanceOracle* base, uint32_t check_every = 16,
                  double tolerance = 1e-9);

  double Distance(ObjectId i, ObjectId j) override;
  ObjectId num_objects() const override { return base_->num_objects(); }
  std::string_view name() const override { return base_->name(); }
  void set_batch_workers(unsigned workers) override {
    base_->set_batch_workers(workers);
  }
  unsigned batch_workers() const override { return base_->batch_workers(); }

  uint64_t checks_performed() const { return checks_; }

 private:
  DistanceOracle* base_;  // not owned
  uint32_t check_every_;
  double tolerance_;
  uint64_t calls_ = 0;
  uint64_t checks_ = 0;
  uint64_t rng_state_;
};

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_WRAPPERS_H_
