#ifndef METRICPROX_ORACLE_RETRY_H_
#define METRICPROX_ORACLE_RETRY_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "core/oracle.h"
#include "core/stats.h"
#include "core/status.h"
#include "core/types.h"
#include "obs/telemetry.h"

namespace metricprox {

/// Retry policy of a RetryingOracle.
struct RetryOptions {
  /// Total attempts per pair, first try included (1 = never retry).
  uint32_t max_attempts = 4;
  /// Backoff slept before retry round r is
  /// min(initial * multiplier^r, max_backoff), scaled by a deterministic
  /// jitter factor in [1 - jitter, 1 + jitter].
  double initial_backoff_seconds = 1e-4;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1e-2;
  double jitter = 0.5;
  /// Overall wall-clock budget of one top-level Try verb, backoff included.
  /// When the next backoff would overrun it, the remaining pairs fail with
  /// kDeadlineExceeded instead of sleeping. 0 disables the deadline.
  double deadline_seconds = 0.0;
  /// Seed of the jitter sequence (kept deterministic for reproducible runs).
  uint64_t seed = 0;
};

/// Counters of a RetryingOracle, merged into ResolverStats after a run.
struct RetryStats {
  /// Pair attempts shipped to the base oracle (first tries + retries).
  uint64_t attempts = 0;
  /// Pair attempts that were re-ships after a transient failure.
  uint64_t retries = 0;
  /// Per-attempt kDeadlineExceeded outcomes observed from the base.
  uint64_t timeouts = 0;
  /// Pairs that failed permanently (non-retryable error, retry budget
  /// exhausted, or the overall deadline expired).
  uint64_t failures = 0;
  /// Wall time spent sleeping in backoff.
  double backoff_seconds = 0.0;
};

/// True for codes worth retrying: transient unavailability and timeouts.
inline bool IsRetryableStatus(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded;
}

/// Reliability middleware: retries transient failures of the wrapped
/// oracle's fallible verbs with capped exponential backoff and jitter,
/// under an overall deadline. The batch verb retries *partially* — only the
/// pairs that failed are re-shipped, so successful answers from an earlier
/// round are never bought twice and PR 1's one-call-per-unique-pair
/// accounting survives faults unchanged.
///
/// The infallible verbs route through the retry loop too and CHECK-fail on
/// exhaustion, preserving the legacy abort contract for callers that never
/// opted into failure handling.
class RetryingOracle : public DistanceOracle {
 public:
  RetryingOracle(DistanceOracle* base, const RetryOptions& options)
      : base_(base), options_(options) {}

  double Distance(ObjectId i, ObjectId j) override;
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override;

  StatusOr<double> TryDistance(ObjectId i, ObjectId j) override;
  Status TryBatchDistance(std::span<const IdPair> pairs, std::span<double> out,
                          std::span<Status> statuses) override;

  ObjectId num_objects() const override { return base_->num_objects(); }
  std::string_view name() const override { return base_->name(); }
  void set_batch_workers(unsigned workers) override {
    base_->set_batch_workers(workers);
  }
  unsigned batch_workers() const override { return base_->batch_workers(); }

  const RetryStats& retry_stats() const { return stats_; }
  void ResetRetryStats() { stats_ = RetryStats(); }

  /// Merges the retry counters into a run's ResolverStats (the harness and
  /// the CLI call this once per workload).
  void AccumulateStats(ResolverStats* stats) const;

  /// Attaches (or with nullptr, detaches) telemetry: retry and backoff
  /// events. Pure observation — retry behavior and counters are unchanged.
  void SetTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

 private:
  /// Jittered, capped backoff for retry round `round` (0-based). Advances
  /// the deterministic jitter sequence.
  double NextBackoffSeconds(uint32_t round);
  /// Sleeps and bills the backoff.
  void Backoff(double seconds);

  DistanceOracle* base_;  // not owned
  RetryOptions options_;
  RetryStats stats_;
  Telemetry* telemetry_ = nullptr;  // not owned; nullptr = telemetry off
  uint64_t jitter_counter_ = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_RETRY_H_
