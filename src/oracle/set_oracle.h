#ifndef METRICPROX_ORACLE_SET_ORACLE_H_
#define METRICPROX_ORACLE_SET_ORACLE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/oracle.h"
#include "core/types.h"
#include "oracle/vector_oracle.h"

namespace metricprox {

/// Hausdorff distance between finite point sets under the Euclidean ground
/// metric:
///     H(A, B) = max( max_a min_b ||a-b||,  max_b min_a ||a-b|| ).
/// A true metric on non-empty compact sets and an expensive one —
/// O(|A| * |B|) ground-distance evaluations per call — modelling the
/// image-comparison applications from the paper's introduction
/// (Huttenlocher et al., "Comparing images using the Hausdorff distance").
class HausdorffOracle : public DistanceOracle {
 public:
  /// Each object is a non-empty point set; all points share one dimension.
  /// Sets must be pairwise distinct as *sets* for metric identity.
  explicit HausdorffOracle(std::vector<PointSet> sets);

  double Distance(ObjectId i, ObjectId j) override;
  ObjectId num_objects() const override {
    return static_cast<ObjectId>(sets_.size());
  }
  std::string_view name() const override { return "hausdorff"; }

  const std::vector<PointSet>& sets() const { return sets_; }

 private:
  // One-sided h(A, B) = max over a of min over b of ||a - b||.
  double DirectedDistance(const PointSet& a, const PointSet& b) const;

  std::vector<PointSet> sets_;
  size_t dimension_;
};

/// Jaccard distance between finite element-id sets:
///     J(A, B) = 1 - |A ∩ B| / |A ∪ B|
/// A metric on distinct sets (the Steinhaus/Tanimoto distance), common in
/// deduplication and document similarity; intersection is a linear merge
/// over the sorted elements.
class JaccardOracle : public DistanceOracle {
 public:
  /// Each object is a non-empty set given as a strictly ascending element
  /// list; sets must be pairwise distinct for metric identity.
  explicit JaccardOracle(std::vector<std::vector<uint32_t>> sets);

  double Distance(ObjectId i, ObjectId j) override;
  ObjectId num_objects() const override {
    return static_cast<ObjectId>(sets_.size());
  }
  std::string_view name() const override { return "jaccard"; }

  const std::vector<std::vector<uint32_t>>& sets() const { return sets_; }

 private:
  std::vector<std::vector<uint32_t>> sets_;
};

}  // namespace metricprox

#endif  // METRICPROX_ORACLE_SET_ORACLE_H_
