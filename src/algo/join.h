#ifndef METRICPROX_ALGO_JOIN_H_
#define METRICPROX_ALGO_JOIN_H_

#include <vector>

#include "bounds/resolver.h"
#include "core/types.h"

namespace metricprox {

/// Exact metric similarity self-join: every unordered pair (u, v) with
/// dist(u, v) <= radius, sorted by (u, v), with exact distances attached.
/// The classic SIGMOD workload for expensive distance functions
/// (near-duplicate detection, record linkage): the scheme discards a pair
/// without an oracle call whenever its lower bound provably exceeds the
/// radius, which on clustered data is the vast majority of the n(n-1)/2
/// candidates.
std::vector<WeightedEdge> SimilarityJoin(BoundedResolver* resolver,
                                         double radius);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_JOIN_H_
