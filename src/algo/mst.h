#ifndef METRICPROX_ALGO_MST_H_
#define METRICPROX_ALGO_MST_H_

#include <vector>

#include "core/types.h"

namespace metricprox {

/// A minimum spanning tree over the complete distance graph.
struct MstResult {
  /// n-1 tree edges with exact weights.
  std::vector<WeightedEdge> edges;
  double total_weight = 0.0;
};

}  // namespace metricprox

#endif  // METRICPROX_ALGO_MST_H_
