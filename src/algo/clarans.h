#ifndef METRICPROX_ALGO_CLARANS_H_
#define METRICPROX_ALGO_CLARANS_H_

#include <cstdint>

#include "algo/medoid_common.h"
#include "bounds/resolver.h"

namespace metricprox {

struct ClaransOptions {
  /// Number of medoids (the paper's `l`).
  uint32_t num_medoids = 10;
  /// Independent randomized restarts (CLARANS `numlocal`).
  uint32_t num_local = 2;
  /// Consecutive non-improving random neighbors before a restart is
  /// declared a local optimum (CLARANS `maxneighbor`).
  uint32_t max_neighbor = 64;
  /// Seed for medoid initialization and neighbor sampling.
  uint64_t seed = 7;
};

/// CLARANS (Ng & Han 2002) re-authored against the bound framework
/// (Figures 7a, 7c, 8b, 8d, 9c workloads).
///
/// Each step samples a random (medoid, non-medoid) exchange and accepts it
/// iff its exact total-deviation delta is negative; the delta is evaluated
/// with the same per-object pruning as PAM's SWAP phase, which is where the
/// oracle calls are saved. Randomness is fully seeded, and pruning never
/// changes a delta, so for a fixed seed the search trajectory — and hence
/// the output — is identical to oracle-only CLARANS.
ClusteringResult ClaransCluster(BoundedResolver* resolver,
                                const ClaransOptions& options);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_CLARANS_H_
