#include "algo/reference.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "core/logging.h"
#include "graph/union_find.h"

namespace metricprox {

MstResult ReferencePrimMst(DistanceOracle* oracle) {
  CHECK(oracle != nullptr);
  const ObjectId n = oracle->num_objects();
  MstResult result;
  if (n <= 1) return result;

  std::vector<bool> in_tree(n, false);
  std::vector<double> key(n, kInfDistance);
  std::vector<ObjectId> parent(n, kInvalidObject);

  ObjectId current = 0;
  in_tree[0] = true;
  for (ObjectId round = 1; round < n; ++round) {
    for (ObjectId v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double d = oracle->Distance(current, v);
      if (d < key[v]) {
        key[v] = d;
        parent[v] = current;
      }
    }
    ObjectId next = kInvalidObject;
    for (ObjectId v = 0; v < n; ++v) {
      if (!in_tree[v] && (next == kInvalidObject || key[v] < key[next])) {
        next = v;
      }
    }
    in_tree[next] = true;
    result.edges.push_back(WeightedEdge{parent[next], next, key[next]});
    result.total_weight += key[next];
    current = next;
  }
  return result;
}

MstResult ReferenceKruskalMst(DistanceOracle* oracle) {
  CHECK(oracle != nullptr);
  const ObjectId n = oracle->num_objects();
  MstResult result;
  if (n <= 1) return result;

  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (ObjectId u = 0; u < n; ++u) {
    for (ObjectId v = u + 1; v < n; ++v) {
      edges.push_back(WeightedEdge{u, v, oracle->Distance(u, v)});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.weight != b.weight) return a.weight < b.weight;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });

  UnionFind forest(n);
  for (const WeightedEdge& e : edges) {
    if (forest.Union(e.u, e.v)) {
      result.edges.push_back(e);
      result.total_weight += e.weight;
      if (forest.num_components() == 1) break;
    }
  }
  return result;
}

KnnGraph ReferenceKnnGraph(DistanceOracle* oracle, uint32_t k) {
  CHECK(oracle != nullptr);
  const ObjectId n = oracle->num_objects();
  CHECK_GT(n, k);
  KnnGraph graph(n);
  std::vector<KnnNeighbor> all;
  for (ObjectId u = 0; u < n; ++u) {
    all.clear();
    for (ObjectId v = 0; v < n; ++v) {
      if (v == u) continue;
      all.push_back(KnnNeighbor{v, oracle->Distance(u, v)});
    }
    std::sort(all.begin(), all.end(),
              [](const KnnNeighbor& a, const KnnNeighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.id < b.id;
              });
    graph[u].assign(all.begin(), all.begin() + k);
  }
  return graph;
}

std::vector<KnnNeighbor> ReferenceRangeSearch(DistanceOracle* oracle,
                                              ObjectId query, double radius) {
  CHECK(oracle != nullptr);
  const ObjectId n = oracle->num_objects();
  CHECK_LT(query, n);
  std::vector<KnnNeighbor> hits;
  for (ObjectId v = 0; v < n; ++v) {
    if (v == query) continue;
    const double d = oracle->Distance(query, v);
    // Inclusive boundary: d == radius is a hit, the pinned tie rule.
    if (d <= radius) hits.push_back(KnnNeighbor{v, d});
  }
  std::sort(hits.begin(), hits.end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  return hits;
}

DbscanResult ReferenceDbscan(DistanceOracle* oracle,
                             const DbscanOptions& options) {
  CHECK(oracle != nullptr);
  CHECK_GE(options.eps, 0.0);
  CHECK_GE(options.min_pts, 1u);
  const ObjectId n = oracle->num_objects();

  DbscanResult result;
  result.labels.assign(n, DbscanResult::kNoise);
  constexpr int32_t kUnvisited = -2;
  std::vector<int32_t> state(n, kUnvisited);

  for (ObjectId p = 0; p < n; ++p) {
    if (state[p] != kUnvisited) continue;
    const std::vector<KnnNeighbor> neighborhood =
        ReferenceRangeSearch(oracle, p, options.eps);
    if (neighborhood.size() + 1 < options.min_pts) {
      state[p] = DbscanResult::kNoise;
      continue;
    }

    const int32_t cluster = static_cast<int32_t>(result.num_clusters++);
    state[p] = cluster;
    std::deque<ObjectId> frontier;
    for (const KnnNeighbor& nb : neighborhood) frontier.push_back(nb.id);

    while (!frontier.empty()) {
      const ObjectId q = frontier.front();
      frontier.pop_front();
      if (state[q] == DbscanResult::kNoise) {
        state[q] = cluster;  // former noise becomes a border point
      }
      if (state[q] != kUnvisited) continue;
      state[q] = cluster;
      const std::vector<KnnNeighbor> reach =
          ReferenceRangeSearch(oracle, q, options.eps);
      if (reach.size() + 1 >= options.min_pts) {
        for (const KnnNeighbor& nb : reach) {
          if (state[nb.id] == kUnvisited ||
              state[nb.id] == DbscanResult::kNoise) {
            frontier.push_back(nb.id);
          }
        }
      }
    }
  }

  for (ObjectId o = 0; o < n; ++o) {
    result.labels[o] = state[o] == kUnvisited ? DbscanResult::kNoise : state[o];
  }
  return result;
}

}  // namespace metricprox
