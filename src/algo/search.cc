#include "algo/search.h"

#include <algorithm>
#include <queue>

#include "core/logging.h"

namespace metricprox {

namespace {

struct Candidate {
  double lower_bound;
  ObjectId id;
};

std::vector<Candidate> CandidatesByLowerBound(BoundedResolver* resolver,
                                              ObjectId query) {
  const ObjectId n = resolver->num_objects();
  std::vector<Candidate> candidates;
  candidates.reserve(n - 1);
  for (ObjectId v = 0; v < n; ++v) {
    if (v == query) continue;
    candidates.push_back(Candidate{resolver->Bounds(query, v).lo, v});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.lower_bound != b.lower_bound) {
                return a.lower_bound < b.lower_bound;
              }
              return a.id < b.id;
            });
  return candidates;
}

struct HeapLess {
  bool operator()(const KnnNeighbor& a, const KnnNeighbor& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

// Candidates triaged between two oracle round-trips. The running k-th
// distance only shrinks, so a candidate proven farther at triage time stays
// discardable after later admits — chunking never costs exactness, it only
// trades incumbent freshness for batch size.
constexpr size_t kKnnChunk = 32;

}  // namespace

std::vector<KnnNeighbor> KnnSearch(BoundedResolver* resolver, ObjectId query,
                                   uint32_t k) {
  CHECK(resolver != nullptr);
  CHECK_GE(k, 1u);
  const ObjectId n = resolver->num_objects();
  CHECK_GT(n, k);
  CHECK_LT(query, n);

  const std::vector<Candidate> candidates =
      CandidatesByLowerBound(resolver, query);

  // Seed the heap with the first k candidates, resolved in one batch.
  std::priority_queue<KnnNeighbor, std::vector<KnnNeighbor>, HeapLess> best;
  std::vector<IdPair> batch;
  for (size_t c = 0; c < k; ++c) {
    batch.push_back(IdPair{query, candidates[c].id});
  }
  resolver->ResolveAll(batch);
  for (size_t c = 0; c < k; ++c) {
    const ObjectId v = candidates[c].id;
    best.push(KnnNeighbor{v, resolver->Distance(query, v)});
  }

  // Chunked rounds over the remaining candidates: a bounds-only sweep
  // against the current k-th distance, one batched resolution of the
  // survivors, then sequential admits under the (distance, id) tie rule.
  std::vector<ObjectId> survivors;
  for (size_t begin = k; begin < candidates.size(); begin += kKnnChunk) {
    const size_t end = std::min(candidates.size(), begin + kKnnChunk);
    const double t = best.top().distance;
    batch.clear();
    survivors.clear();
    for (size_t c = begin; c < end; ++c) {
      const ObjectId v = candidates[c].id;
      if (resolver->ProvenGreaterThan(query, v, t)) continue;
      batch.push_back(IdPair{query, v});
      survivors.push_back(v);
    }
    resolver->ResolveAll(batch);
    for (const ObjectId v : survivors) {
      const double d = resolver->Distance(query, v);
      const double top = best.top().distance;
      const ObjectId tid = best.top().id;
      if (d < top || (d == top && v < tid)) {
        best.pop();
        best.push(KnnNeighbor{v, d});
      }
    }
  }

  std::vector<KnnNeighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

std::vector<KnnNeighbor> RangeSearch(BoundedResolver* resolver,
                                     ObjectId query, double radius) {
  CHECK(resolver != nullptr);
  CHECK_GE(radius, 0.0);
  const ObjectId n = resolver->num_objects();
  CHECK_LT(query, n);

  // The radius is fixed, so the whole query is one triage sweep plus one
  // batched resolution of everything not provably outside the ball.
  std::vector<IdPair> batch;
  std::vector<ObjectId> survivors;
  for (ObjectId v = 0; v < n; ++v) {
    if (v == query) continue;
    // Provably outside the ball: no oracle call.
    if (resolver->ProvenGreaterThan(query, v, radius)) continue;
    batch.push_back(IdPair{query, v});
    survivors.push_back(v);
  }
  resolver->ResolveAll(batch);
  std::vector<KnnNeighbor> hits;
  for (const ObjectId v : survivors) {
    const double d = resolver->Distance(query, v);
    if (d <= radius) hits.push_back(KnnNeighbor{v, d});
  }
  std::sort(hits.begin(), hits.end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  return hits;
}

DiameterEstimate ApproximateDiameter(BoundedResolver* resolver,
                                     ObjectId anchor) {
  CHECK(resolver != nullptr);
  const ObjectId n = resolver->num_objects();
  CHECK_GE(n, 2u);
  CHECK_LT(anchor, n);

  // One farthest-point sweep: skip candidates whose upper bound proves
  // they cannot beat the incumbent (LessThan decided true by bounds).
  const auto sweep = [resolver, n](ObjectId from) {
    ObjectId arg = kInvalidObject;
    double best = -1.0;
    for (ObjectId v = 0; v < n; ++v) {
      if (v == from) continue;
      if (best >= 0.0 && resolver->LessThan(from, v, best)) continue;
      const double d = resolver->Distance(from, v);
      if (d > best) {
        best = d;
        arg = v;
      }
    }
    return std::pair<ObjectId, double>{arg, best};
  };

  const auto [p, dp] = sweep(anchor);
  const auto [q, dq] = sweep(p);
  DiameterEstimate out;
  if (dq >= dp) {
    out.u = p;
    out.v = q;
    out.distance = dq;
  } else {
    out.u = anchor;
    out.v = p;
    out.distance = dp;
  }
  return out;
}

WeightedEdge ClosestPair(BoundedResolver* resolver) {
  CHECK(resolver != nullptr);
  const ObjectId n = resolver->num_objects();
  CHECK_GE(n, 2u);

  // All pairs, ascending by current lower bound: near pairs resolve first
  // and collapse the incumbent quickly.
  struct PairCandidate {
    double lower_bound;
    ObjectId u;
    ObjectId v;
  };
  std::vector<PairCandidate> candidates;
  candidates.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (ObjectId u = 0; u < n; ++u) {
    for (ObjectId v = u + 1; v < n; ++v) {
      candidates.push_back(PairCandidate{resolver->Bounds(u, v).lo, u, v});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PairCandidate& a, const PairCandidate& b) {
              if (a.lower_bound != b.lower_bound) {
                return a.lower_bound < b.lower_bound;
              }
              return EdgeKey(a.u, a.v) < EdgeKey(b.u, b.v);
            });

  WeightedEdge best{kInvalidObject, kInvalidObject, kInfDistance};
  for (const PairCandidate& c : candidates) {
    // Provably not closer: skip without an oracle call. (A tie cannot win
    // unless its pair key is smaller, which ProvenGreaterThan's strictness
    // already leaves to the resolve path below.)
    if (best.u != kInvalidObject &&
        resolver->ProvenGreaterThan(c.u, c.v, best.weight)) {
      continue;
    }
    const double d = resolver->Distance(c.u, c.v);
    if (d < best.weight ||
        (d == best.weight && EdgeKey(c.u, c.v) < EdgeKey(best.u, best.v))) {
      best = WeightedEdge{c.u, c.v, d};
    }
  }
  return best;
}

}  // namespace metricprox
