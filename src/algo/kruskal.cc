#include "algo/kruskal.h"

#include <queue>
#include <vector>

#include "core/logging.h"
#include "graph/union_find.h"

namespace metricprox {

namespace {

struct QueueEntry {
  double key;
  ObjectId u;
  ObjectId v;
  bool exact;

  // Min-heap order; deterministic tie-break by pair then exactness (exact
  // entries first so a resolved edge beats an equal stale bound).
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    if (a.key != b.key) return a.key > b.key;
    if (a.u != b.u) return a.u > b.u;
    if (a.v != b.v) return a.v > b.v;
    return a.exact < b.exact;
  }
};

}  // namespace

MstResult KruskalMst(BoundedResolver* resolver) {
  CHECK(resolver != nullptr);
  const ObjectId n = resolver->num_objects();
  MstResult result;
  if (n <= 1) return result;
  result.edges.reserve(n - 1);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  // Lower-bound keys are shaved by the fp-safety margin so a bound that
  // strays a few ulps above the true distance can never overtake an exact
  // key it mathematically equals.
  const auto lb_key = [](const Interval& b) {
    const double key = b.lo - BoundDecisionMargin(b.lo);
    return key > 0.0 ? key : 0.0;
  };
  for (ObjectId u = 0; u < n; ++u) {
    for (ObjectId v = u + 1; v < n; ++v) {
      if (resolver->Known(u, v)) {
        queue.push(QueueEntry{resolver->Distance(u, v), u, v, true});
      } else {
        queue.push(QueueEntry{lb_key(resolver->Bounds(u, v)), u, v, false});
      }
    }
  }

  UnionFind forest(n);
  while (forest.num_components() > 1) {
    CHECK(!queue.empty()) << "ran out of pairs before the forest connected";
    const QueueEntry e = queue.top();
    queue.pop();
    if (forest.Connected(e.u, e.v)) continue;  // discarded unresolved
    if (e.exact) {
      // Every queued key lower-bounds its true distance, so this edge is a
      // minimum-weight edge across the current partition: take it.
      forest.Union(e.u, e.v);
      result.edges.push_back(WeightedEdge{e.u, e.v, e.key});
      result.total_weight += e.key;
      continue;
    }
    if (resolver->Known(e.u, e.v)) {
      // Resolved as a side effect of scheme construction or bootstrap.
      queue.push(QueueEntry{resolver->Distance(e.u, e.v), e.u, e.v, true});
      continue;
    }
    const double improved = lb_key(resolver->Bounds(e.u, e.v));
    if (improved > e.key) {
      // The scheme learned something since this entry was queued; requeue
      // lazily instead of paying the oracle.
      queue.push(QueueEntry{improved, e.u, e.v, false});
    } else {
      const double d = resolver->Distance(e.u, e.v);
      queue.push(QueueEntry{d, e.u, e.v, true});
    }
  }
  return result;
}

}  // namespace metricprox
