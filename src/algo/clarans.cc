#include "algo/clarans.h"

#include <algorithm>
#include <random>
#include <vector>

#include "core/logging.h"

namespace metricprox {

using medoid_internal::AssignmentTable;
using medoid_internal::ComputeAssignment;
using medoid_internal::IsMedoid;
using medoid_internal::SwapDelta;

namespace {

std::vector<ObjectId> SampleDistinct(ObjectId n, uint32_t k,
                                     std::mt19937_64* rng) {
  std::vector<ObjectId> picked;
  picked.reserve(k);
  while (picked.size() < k) {
    const ObjectId candidate = static_cast<ObjectId>((*rng)() % n);
    if (std::find(picked.begin(), picked.end(), candidate) == picked.end()) {
      picked.push_back(candidate);
    }
  }
  return picked;
}

}  // namespace

ClusteringResult ClaransCluster(BoundedResolver* resolver,
                                const ClaransOptions& options) {
  CHECK(resolver != nullptr);
  CHECK_GE(options.num_medoids, 2u);
  CHECK_GE(options.num_local, 1u);
  const ObjectId n = resolver->num_objects();
  CHECK_GT(n, options.num_medoids);

  std::mt19937_64 rng(options.seed);
  ClusteringResult best;
  best.total_deviation = kInfDistance;

  for (uint32_t local = 0; local < options.num_local; ++local) {
    std::vector<ObjectId> medoids =
        SampleDistinct(n, options.num_medoids, &rng);
    AssignmentTable table = ComputeAssignment(resolver, medoids);
    uint32_t accepted = 0;

    uint32_t stale = 0;
    while (stale < options.max_neighbor) {
      const uint32_t out = static_cast<uint32_t>(rng() % medoids.size());
      ObjectId h = static_cast<ObjectId>(rng() % n);
      if (IsMedoid(medoids, h)) {
        // Count the draw but retry; keeps the RNG stream identical between
        // the plugged and oracle-only runs.
        continue;
      }
      const double delta = SwapDelta(resolver, medoids, table, out, h);
      if (delta < 0.0) {
        medoids[out] = h;
        table = ComputeAssignment(resolver, medoids);
        ++accepted;
        stale = 0;
      } else {
        ++stale;
      }
    }

    if (table.total_deviation < best.total_deviation) {
      best.medoids = medoids;
      best.assignment = table.nearest;
      best.total_deviation = table.total_deviation;
      best.iterations = accepted;
    }
  }
  return best;
}

}  // namespace metricprox
