#ifndef METRICPROX_ALGO_PAM_H_
#define METRICPROX_ALGO_PAM_H_

#include <cstdint>

#include "algo/medoid_common.h"
#include "bounds/resolver.h"

namespace metricprox {

struct PamOptions {
  /// Number of medoids (the paper's `l`; its experiments use 10).
  uint32_t num_medoids = 10;
  /// Cap on SWAP rounds (each round scans all medoid/non-medoid swaps).
  uint32_t max_swap_rounds = 64;
};

/// PAM (Kaufman & Rousseeuw) k-medoid clustering re-authored against the
/// bound framework (Figures 6c, 6d, 7b, 8a, 8c, 9b workloads).
///
/// BUILD selects the first medoid by branch-and-bound over candidate
/// distance sums (early-abandoning a candidate once its partial sum plus the
/// remaining lower bounds reaches the incumbent) and each further medoid by
/// gain maximization, pruning objects whose lower bound proves they cannot
/// benefit. SWAP repeatedly applies the best strictly-improving
/// (medoid, non-medoid) exchange, evaluating each exchange's exact delta
/// via medoid_internal::SwapDelta with per-object pruning.
///
/// Both phases make the same decisions as oracle-only PAM, so the medoids,
/// assignment and total deviation are identical.
ClusteringResult PamCluster(BoundedResolver* resolver,
                            const PamOptions& options);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_PAM_H_
