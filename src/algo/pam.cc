#include "algo/pam.h"

#include <vector>

#include "core/logging.h"

namespace metricprox {

using medoid_internal::AssignmentTable;
using medoid_internal::ComputeAssignment;
using medoid_internal::IsMedoid;
using medoid_internal::SwapDelta;

namespace {

// Lower bound shaved by the fp-safety margin, so early-abandon sums can
// never discard a candidate that mathematically ties the incumbent.
double SafeLowerBound(BoundedResolver* resolver, ObjectId a, ObjectId b) {
  const double lo = resolver->Bounds(a, b).lo;
  const double safe = lo - BoundDecisionMargin(lo);
  return safe > 0.0 ? safe : 0.0;
}

// BUILD step 1: the object minimizing its distance sum to everything,
// with branch-and-bound early abandon on partial sums.
ObjectId SelectFirstMedoid(BoundedResolver* resolver) {
  const ObjectId n = resolver->num_objects();
  ObjectId best = kInvalidObject;
  double best_sum = kInfDistance;
  std::vector<double> lbs(n);

  for (ObjectId c = 0; c < n; ++c) {
    double remaining_lb = 0.0;
    for (ObjectId j = 0; j < n; ++j) {
      lbs[j] = (j == c) ? 0.0 : SafeLowerBound(resolver, c, j);
      remaining_lb += lbs[j];
    }
    double sum = 0.0;
    bool abandoned = false;
    for (ObjectId j = 0; j < n; ++j) {
      remaining_lb -= lbs[j];
      if (j != c) sum += resolver->Distance(c, j);
      if (sum + remaining_lb >= best_sum) {
        abandoned = true;  // cannot be strictly better than the incumbent
        break;
      }
    }
    if (!abandoned && sum < best_sum) {
      best_sum = sum;
      best = c;
    }
  }
  CHECK_NE(best, kInvalidObject);
  return best;
}

// BUILD steps 2..k: add the candidate maximizing the total-deviation gain
// against the current nearest-medoid distances `dn`, pruning per object and
// early-abandoning per candidate.
ObjectId SelectNextMedoid(BoundedResolver* resolver,
                          const std::vector<ObjectId>& medoids,
                          const std::vector<double>& dn) {
  const ObjectId n = resolver->num_objects();
  ObjectId best = kInvalidObject;
  double best_gain = -1.0;  // a valid candidate always has gain >= 0
  std::vector<double> lbs(n);

  for (ObjectId c = 0; c < n; ++c) {
    if (IsMedoid(medoids, c)) continue;
    double potential = 0.0;
    for (ObjectId j = 0; j < n; ++j) {
      if (dn[j] <= 0.0) {
        lbs[j] = 0.0;
        continue;
      }
      lbs[j] = (j == c) ? 0.0 : SafeLowerBound(resolver, c, j);
      const double p = dn[j] - lbs[j];
      if (p > 0.0) potential += p;
    }
    double gain = 0.0;
    bool abandoned = false;
    for (ObjectId j = 0; j < n; ++j) {
      if (dn[j] <= 0.0) continue;  // already served at cost 0
      const double p = dn[j] - lbs[j];
      if (p > 0.0) potential -= p;
      if (resolver->LessThan(c, j, dn[j])) {
        gain += dn[j] - resolver->Distance(c, j);
      }
      if (gain + potential <= best_gain) {
        abandoned = true;
        break;
      }
    }
    if (!abandoned && gain > best_gain) {
      best_gain = gain;
      best = c;
    }
  }
  CHECK_NE(best, kInvalidObject);
  return best;
}

}  // namespace

ClusteringResult PamCluster(BoundedResolver* resolver,
                            const PamOptions& options) {
  CHECK(resolver != nullptr);
  CHECK_GE(options.num_medoids, 2u);
  const ObjectId n = resolver->num_objects();
  CHECK_GT(n, options.num_medoids);

  // ---- BUILD ----
  std::vector<ObjectId> medoids;
  medoids.reserve(options.num_medoids);
  medoids.push_back(SelectFirstMedoid(resolver));

  std::vector<double> dn(n);
  for (ObjectId j = 0; j < n; ++j) {
    dn[j] = resolver->Distance(medoids[0], j);
  }
  while (medoids.size() < options.num_medoids) {
    const ObjectId next = SelectNextMedoid(resolver, medoids, dn);
    medoids.push_back(next);
    for (ObjectId j = 0; j < n; ++j) {
      // `LessThan == false` proves the minimum is unchanged — no call.
      if (resolver->LessThan(next, j, dn[j])) {
        dn[j] = resolver->Distance(next, j);
      }
    }
  }

  // ---- SWAP ----
  ClusteringResult result;
  AssignmentTable table = ComputeAssignment(resolver, medoids);
  for (uint32_t round = 0; round < options.max_swap_rounds; ++round) {
    double best_delta = 0.0;
    uint32_t best_out = 0;
    ObjectId best_h = kInvalidObject;
    for (uint32_t out = 0; out < medoids.size(); ++out) {
      for (ObjectId h = 0; h < n; ++h) {
        if (IsMedoid(medoids, h)) continue;
        const double delta = SwapDelta(resolver, medoids, table, out, h);
        if (delta < best_delta) {  // strictly improving, first-wins ties
          best_delta = delta;
          best_out = out;
          best_h = h;
        }
      }
    }
    if (best_h == kInvalidObject) break;  // local optimum
    medoids[best_out] = best_h;
    table = ComputeAssignment(resolver, medoids);
    ++result.iterations;
  }

  result.medoids = medoids;
  result.assignment = table.nearest;
  result.total_deviation = table.total_deviation;
  return result;
}

}  // namespace metricprox
