#ifndef METRICPROX_ALGO_MEDOID_COMMON_H_
#define METRICPROX_ALGO_MEDOID_COMMON_H_

#include <cstdint>
#include <vector>

#include "bounds/resolver.h"
#include "core/types.h"

namespace metricprox {

/// Output of a k-medoid clustering (PAM / CLARANS).
struct ClusteringResult {
  std::vector<ObjectId> medoids;
  /// assignment[j] = index into `medoids` of j's nearest medoid.
  std::vector<uint32_t> assignment;
  /// Sum over all objects of the distance to their nearest medoid (TD).
  double total_deviation = 0.0;
  /// Swap rounds executed (PAM) or accepted moves (CLARANS).
  uint32_t iterations = 0;
};

namespace medoid_internal {

/// Per-object nearest / second-nearest medoid bookkeeping used by the swap
/// evaluations of PAM and CLARANS.
struct AssignmentTable {
  /// Index into the medoid vector of the nearest medoid (for a medoid
  /// object: itself).
  std::vector<uint32_t> nearest;
  /// Distance to the nearest medoid (0 for medoids).
  std::vector<double> dist_nearest;
  /// Distance to the second-nearest medoid.
  std::vector<double> dist_second;
  double total_deviation = 0.0;
};

/// Computes the table by resolving object-to-medoid distances (cached in the
/// shared graph, so successive rounds only pay for new medoids).
AssignmentTable ComputeAssignment(BoundedResolver* resolver,
                                  const std::vector<ObjectId>& medoids);

/// Exact change in total deviation if medoids[out_index] is swapped with
/// non-medoid h, evaluated with per-object bound pruning:
///   * nearest(j) != out and LB(j,h) >= dn(j)  -> contributes 0, no call;
///   * nearest(j) == out and LB(j,h) >= ds(j)  -> contributes ds(j) - dn(j),
///     no call;
///   * otherwise d(j,h) is resolved.
/// This is the paper's re-authored IF statement inside PAM/CLARANS; the
/// returned value equals the oracle-only computation exactly.
double SwapDelta(BoundedResolver* resolver,
                 const std::vector<ObjectId>& medoids,
                 const AssignmentTable& table, uint32_t out_index, ObjectId h);

/// True if `object` appears in `medoids`.
bool IsMedoid(const std::vector<ObjectId>& medoids, ObjectId object);

}  // namespace medoid_internal

}  // namespace metricprox

#endif  // METRICPROX_ALGO_MEDOID_COMMON_H_
