#include "algo/tsp.h"

#include <algorithm>
#include <vector>

#include "algo/prim.h"
#include "core/logging.h"

namespace metricprox {

TspTour TspTwoApproximation(BoundedResolver* resolver) {
  CHECK(resolver != nullptr);
  const ObjectId n = resolver->num_objects();
  TspTour tour;
  if (n == 0) return tour;
  if (n == 1) {
    tour.order.push_back(0);
    return tour;
  }

  const MstResult mst = PrimMst(resolver);
  std::vector<std::vector<ObjectId>> children(n);
  for (const WeightedEdge& e : mst.edges) {
    children[e.u].push_back(e.v);
    children[e.v].push_back(e.u);
  }
  for (std::vector<ObjectId>& c : children) std::sort(c.begin(), c.end());

  // Iterative preorder DFS from object 0.
  tour.order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<ObjectId> stack{0};
  while (!stack.empty()) {
    const ObjectId u = stack.back();
    stack.pop_back();
    if (visited[u]) continue;
    visited[u] = true;
    tour.order.push_back(u);
    // Push in reverse so smaller ids are visited first.
    for (auto it = children[u].rbegin(); it != children[u].rend(); ++it) {
      if (!visited[*it]) stack.push_back(*it);
    }
  }
  CHECK_EQ(tour.order.size(), static_cast<size_t>(n));

  for (size_t i = 0; i < tour.order.size(); ++i) {
    const ObjectId a = tour.order[i];
    const ObjectId b = tour.order[(i + 1) % tour.order.size()];
    tour.length += resolver->Distance(a, b);
  }
  return tour;
}

}  // namespace metricprox
