#include "algo/kcenter.h"

#include "core/logging.h"

namespace metricprox {

KCenterResult KCenterCluster(BoundedResolver* resolver, uint32_t k,
                             ObjectId first_center) {
  CHECK(resolver != nullptr);
  CHECK_GE(k, 1u);
  const ObjectId n = resolver->num_objects();
  CHECK_LE(k, n);
  CHECK_LT(first_center, n);

  KCenterResult result;
  result.centers.reserve(k);
  std::vector<double> d2c(n, kInfDistance);
  std::vector<bool> is_center(n, false);

  ObjectId center = first_center;
  for (uint32_t round = 0; round < k; ++round) {
    result.centers.push_back(center);
    is_center[center] = true;
    for (ObjectId j = 0; j < n; ++j) {
      if (is_center[j]) {
        d2c[j] = 0.0;
        continue;
      }
      // Keep d2c exact while skipping oracle calls the scheme rules out.
      if (resolver->LessThan(center, j, d2c[j])) {
        d2c[j] = resolver->Distance(center, j);
      }
    }
    // Farthest-first: the next center is the worst-served object.
    ObjectId farthest = kInvalidObject;
    double worst = -1.0;
    for (ObjectId j = 0; j < n; ++j) {
      if (!is_center[j] && d2c[j] > worst) {
        worst = d2c[j];
        farthest = j;
      }
    }
    if (round + 1 == k || farthest == kInvalidObject) {
      result.radius = worst < 0.0 ? 0.0 : worst;
      break;
    }
    center = farthest;
  }
  return result;
}

}  // namespace metricprox
