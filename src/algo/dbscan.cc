#include "algo/dbscan.h"

#include <deque>

#include "algo/search.h"
#include "core/logging.h"

namespace metricprox {

DbscanResult DbscanCluster(BoundedResolver* resolver,
                           const DbscanOptions& options) {
  CHECK(resolver != nullptr);
  CHECK_GE(options.eps, 0.0);
  CHECK_GE(options.min_pts, 1u);
  const ObjectId n = resolver->num_objects();

  DbscanResult result;
  result.labels.assign(n, DbscanResult::kNoise);
  // kUnvisited below noise so "already claimed" checks stay simple.
  constexpr int32_t kUnvisited = -2;
  std::vector<int32_t> state(n, kUnvisited);

  for (ObjectId p = 0; p < n; ++p) {
    if (state[p] != kUnvisited) continue;
    const std::vector<KnnNeighbor> neighborhood =
        RangeSearch(resolver, p, options.eps);
    if (neighborhood.size() + 1 < options.min_pts) {
      state[p] = DbscanResult::kNoise;
      continue;
    }

    // p is a core point: grow a new cluster breadth-first.
    const int32_t cluster = static_cast<int32_t>(result.num_clusters++);
    state[p] = cluster;
    std::deque<ObjectId> frontier;
    for (const KnnNeighbor& nb : neighborhood) frontier.push_back(nb.id);

    while (!frontier.empty()) {
      const ObjectId q = frontier.front();
      frontier.pop_front();
      if (state[q] == DbscanResult::kNoise) {
        state[q] = cluster;  // former noise becomes a border point
      }
      if (state[q] != kUnvisited) continue;
      state[q] = cluster;
      const std::vector<KnnNeighbor> reach =
          RangeSearch(resolver, q, options.eps);
      if (reach.size() + 1 >= options.min_pts) {
        for (const KnnNeighbor& nb : reach) {
          if (state[nb.id] == kUnvisited ||
              state[nb.id] == DbscanResult::kNoise) {
            frontier.push_back(nb.id);
          }
        }
      }
    }
  }

  for (ObjectId o = 0; o < n; ++o) {
    result.labels[o] = state[o] == kUnvisited ? DbscanResult::kNoise : state[o];
  }
  return result;
}

}  // namespace metricprox
