#ifndef METRICPROX_ALGO_BORUVKA_H_
#define METRICPROX_ALGO_BORUVKA_H_

#include "algo/mst.h"
#include "bounds/resolver.h"

namespace metricprox {

/// Borůvka's MST algorithm over the complete metric graph, re-authored
/// against the bound framework: each round, every component scans for its
/// minimum outgoing edge, and the scheme discards candidates whose lower
/// bound proves they cannot beat the component's incumbent.
///
/// Edges are compared in the strict total order (weight, min id, max id),
/// which makes Borůvka's contraction cycle-safe even under exact weight
/// ties — near-ties inside the bound scheme's safety margin simply fall
/// back to the oracle, so the tree equals the one classical Borůvka picks
/// under the same order (and the weight equals Prim/Kruskal's always).
MstResult BoruvkaMst(BoundedResolver* resolver);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_BORUVKA_H_
