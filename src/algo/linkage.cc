#include "algo/linkage.h"

#include <algorithm>
#include <map>

#include "algo/prim.h"
#include "core/logging.h"
#include "graph/union_find.h"

namespace metricprox {

SingleLinkageResult SingleLinkageCluster(BoundedResolver* resolver) {
  CHECK(resolver != nullptr);
  SingleLinkageResult result;
  result.num_objects = resolver->num_objects();
  if (result.num_objects <= 1) return result;

  MstResult mst = PrimMst(resolver);
  std::sort(mst.edges.begin(), mst.edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.weight != b.weight) return a.weight < b.weight;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  result.merges.reserve(mst.edges.size());
  for (const WeightedEdge& e : mst.edges) {
    result.merges.push_back(LinkageMerge{e.u, e.v, e.weight});
  }
  return result;
}

std::vector<uint32_t> SingleLinkageResult::LabelsForK(uint32_t k) const {
  CHECK_GE(k, 1u);
  CHECK_LE(k, num_objects);
  UnionFind forest(num_objects);
  const size_t merges_to_apply = num_objects - k;
  CHECK_LE(merges_to_apply, merges.size());
  for (size_t m = 0; m < merges_to_apply; ++m) {
    forest.Union(merges[m].u, merges[m].v);
  }
  // Dense labels ordered by each component's smallest member.
  std::map<uint32_t, uint32_t> root_to_label;
  std::vector<uint32_t> labels(num_objects);
  for (ObjectId o = 0; o < num_objects; ++o) {
    const uint32_t root = forest.Find(o);
    labels[o] = root_to_label
                    .emplace(root, static_cast<uint32_t>(root_to_label.size()))
                    .first->second;
  }
  return labels;
}

}  // namespace metricprox
