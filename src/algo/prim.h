#ifndef METRICPROX_ALGO_PRIM_H_
#define METRICPROX_ALGO_PRIM_H_

#include "algo/mst.h"
#include "bounds/resolver.h"

namespace metricprox {

/// Prim's algorithm over the complete metric graph, re-authored against the
/// bound framework (the paper's Tables 2 and 3 workload).
///
/// The inner comparison `dist(u, v) < key[v]` goes through
/// BoundedResolver::LessThan: when the plugged scheme proves
/// `LB(u, v) >= key[v]` the oracle call is saved; otherwise the distance is
/// resolved and the key updated. With no scheme attached this is exactly
/// classical Prim and resolves all n(n-1)/2 pairs (the tables'
/// "Without Plug" column).
///
/// Output is identical to classical Prim for any scheme (keys stay exact;
/// ties break toward the earlier-attached parent in both variants).
MstResult PrimMst(BoundedResolver* resolver);

/// Lazy-key Prim: keys are kept as *unresolved* candidate edges and every
/// decision — both the minimum-key extraction and the relaxation — is a
/// two-edge comparison `dist(i,j) < dist(k,l)` issued through PairLess.
/// This is the paper's general IF-statement form, and the variant where
/// DFT's joint feasibility reasoning can decide comparisons that interval
/// bounds cannot (Figure 4); only the n-1 chosen tree edges are ever
/// resolved unconditionally.
///
/// Output is identical to PrimMst (ties break toward smaller ids in both).
MstResult PrimMstLazy(BoundedResolver* resolver);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_PRIM_H_
