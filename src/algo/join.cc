#include "algo/join.h"

#include "core/logging.h"

namespace metricprox {

std::vector<WeightedEdge> SimilarityJoin(BoundedResolver* resolver,
                                         double radius) {
  CHECK(resolver != nullptr);
  CHECK_GE(radius, 0.0);
  const ObjectId n = resolver->num_objects();

  std::vector<WeightedEdge> matches;
  for (ObjectId u = 0; u < n; ++u) {
    for (ObjectId v = u + 1; v < n; ++v) {
      // Provably outside the join radius: no oracle call. Matches resolved
      // earlier in the scan tighten the bounds for later candidates, so the
      // join gets cheaper as it proceeds.
      if (resolver->ProvenGreaterThan(u, v, radius)) continue;
      const double d = resolver->Distance(u, v);
      if (d <= radius) matches.push_back(WeightedEdge{u, v, d});
    }
  }
  return matches;  // (u, v)-sorted by construction
}

}  // namespace metricprox
