#include "algo/medoid_common.h"

#include <algorithm>

#include "core/logging.h"

namespace metricprox {
namespace medoid_internal {

bool IsMedoid(const std::vector<ObjectId>& medoids, ObjectId object) {
  return std::find(medoids.begin(), medoids.end(), object) != medoids.end();
}

AssignmentTable ComputeAssignment(BoundedResolver* resolver,
                                  const std::vector<ObjectId>& medoids) {
  const ObjectId n = resolver->num_objects();
  CHECK_GE(medoids.size(), 2u) << "second-nearest undefined for k < 2";
  AssignmentTable table;
  table.nearest.assign(n, 0);
  table.dist_nearest.assign(n, kInfDistance);
  table.dist_second.assign(n, kInfDistance);

  // Every object-to-medoid distance is needed, so ship the whole j x m grid
  // to the oracle in one batch (already-cached pairs cost nothing), then run
  // the nearest / second-nearest bookkeeping on cache reads.
  std::vector<IdPair> grid;
  grid.reserve(static_cast<size_t>(n) * medoids.size());
  for (ObjectId j = 0; j < n; ++j) {
    for (const ObjectId m : medoids) {
      grid.push_back(IdPair{j, m});
    }
  }
  resolver->ResolveAll(grid);

  for (ObjectId j = 0; j < n; ++j) {
    for (uint32_t m = 0; m < medoids.size(); ++m) {
      const double d = resolver->Distance(j, medoids[m]);  // 0 for j itself
      if (d < table.dist_nearest[j] ||
          (d == table.dist_nearest[j] && medoids[m] < medoids[table.nearest[j]])) {
        table.dist_second[j] = table.dist_nearest[j];
        table.dist_nearest[j] = d;
        table.nearest[j] = m;
      } else if (d < table.dist_second[j]) {
        table.dist_second[j] = d;
      }
    }
    table.total_deviation += table.dist_nearest[j];
  }
  return table;
}

double SwapDelta(BoundedResolver* resolver,
                 [[maybe_unused]] const std::vector<ObjectId>& medoids,
                 const AssignmentTable& table, uint32_t out_index,
                 ObjectId h) {
  DCHECK_LT(out_index, medoids.size());
  DCHECK(!IsMedoid(medoids, h));
  const ObjectId n = resolver->num_objects();

  // One batched sweep decides every per-object comparison (against ds(j)
  // when j loses its medoid, against dn(j) otherwise); the objects h got
  // strictly closer to are then resolved in one oracle round-trip.
  std::vector<IdPair> pairs;
  std::vector<double> thresholds;
  pairs.reserve(n);
  thresholds.reserve(n);
  for (ObjectId j = 0; j < n; ++j) {
    if (j == h) continue;
    pairs.push_back(IdPair{j, h});
    thresholds.push_back(table.nearest[j] == out_index
                             ? table.dist_second[j]
                             : table.dist_nearest[j]);
  }
  const std::vector<bool> closer = resolver->FilterLessThan(pairs, thresholds);
  std::vector<IdPair> winners;
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (closer[k]) winners.push_back(pairs[k]);
  }
  resolver->ResolveAll(winners);

  double delta = 0.0;
  size_t k = 0;
  for (ObjectId j = 0; j < n; ++j) {
    if (j == h) {
      // h becomes a medoid: its old contribution disappears.
      delta -= table.dist_nearest[j];
      continue;
    }
    const double dn = table.dist_nearest[j];
    const double ds = table.dist_second[j];
    const bool moves_to_h = closer[k++];
    if (table.nearest[j] == out_index) {
      // j loses its medoid: it moves to h or to its old second-nearest.
      // (The outgoing medoid itself falls in this case with dn = 0.)
      if (moves_to_h) {
        delta += resolver->Distance(j, h) - dn;
      } else {
        delta += ds - dn;  // decided without resolving d(j, h)
      }
    } else {
      // j keeps its medoid unless h is strictly closer.
      if (moves_to_h) {
        delta += resolver->Distance(j, h) - dn;
      }
      // else: contributes 0 — the common case the scheme prunes for free.
    }
  }
  return delta;
}

}  // namespace medoid_internal
}  // namespace metricprox
