#ifndef METRICPROX_ALGO_SEARCH_H_
#define METRICPROX_ALGO_SEARCH_H_

#include <cstdint>
#include <vector>

#include "algo/knn_graph.h"
#include "bounds/resolver.h"
#include "core/types.h"

namespace metricprox {

/// Exact k-nearest-neighbor query for a single object — the workload LAESA
/// was originally designed for, re-authored against the bound framework.
/// Candidates are visited in ascending lower-bound order; each is admitted
/// through a proven-farther test, so the scheme discards most of them
/// without an oracle call once the running k-th distance is small.
///
/// Returns the k nearest (distance, id)-lexicographic neighbors of `query`,
/// ascending — identical to a brute-force scan.
std::vector<KnnNeighbor> KnnSearch(BoundedResolver* resolver, ObjectId query,
                                   uint32_t k);

/// Exact metric range query: every object within `radius` of `query`
/// (inclusive), ascending by (distance, id). Objects whose lower bound
/// provably exceeds the radius are discarded without an oracle call.
std::vector<KnnNeighbor> RangeSearch(BoundedResolver* resolver,
                                     ObjectId query, double radius);

/// A farthest pair found by the classic two-sweep heuristic (anchor ->
/// farthest-from-anchor p -> farthest-from-p q); its distance is a lower
/// bound on the true diameter and at least half of it. Sweeps prune
/// candidates whose upper bound proves they cannot beat the incumbent.
struct DiameterEstimate {
  ObjectId u = kInvalidObject;
  ObjectId v = kInvalidObject;
  double distance = 0.0;
};

DiameterEstimate ApproximateDiameter(BoundedResolver* resolver,
                                     ObjectId anchor = 0);

/// The globally closest pair of objects (exact). Candidates are scanned in
/// ascending current-lower-bound order with a shrinking incumbent, so the
/// scheme discards most pairs without an oracle call once one tight pair
/// has been resolved. Ties break toward the smaller (u, v).
WeightedEdge ClosestPair(BoundedResolver* resolver);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_SEARCH_H_
