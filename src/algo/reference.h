#ifndef METRICPROX_ALGO_REFERENCE_H_
#define METRICPROX_ALGO_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "algo/dbscan.h"
#include "algo/knn_graph.h"
#include "algo/mst.h"
#include "core/oracle.h"

namespace metricprox {

/// Textbook implementations that talk to the oracle directly, with no
/// framework involvement. They exist so the test suite can verify the
/// paper's headline invariant — a bound-augmented algorithm returns exactly
/// the original algorithm's output — against code that shares nothing with
/// the augmented paths. They resolve all n(n-1)/2 distances, so keep n
/// small.

/// Classical Prim on the full distance matrix (ties toward smaller ids,
/// matching PrimMst).
MstResult ReferencePrimMst(DistanceOracle* oracle);

/// Classical Kruskal: full sort, then union-find (ties by (weight, u, v)).
MstResult ReferenceKruskalMst(DistanceOracle* oracle);

/// Brute-force k-NN graph under (distance, id) ordering.
KnnGraph ReferenceKnnGraph(DistanceOracle* oracle, uint32_t k);

/// Brute-force range query with the pinned tie semantics of RangeSearch:
/// the radius is INCLUSIVE (d == radius is a hit), results ascending by
/// (distance, id). The differential tests drive both paths over
/// exact-tie-producing metrics to prove boundary points classify
/// identically.
std::vector<KnnNeighbor> ReferenceRangeSearch(DistanceOracle* oracle,
                                              ObjectId query, double radius);

/// Oracle-only DBSCAN, structurally identical to DbscanCluster (same
/// ascending-id expansion, same inclusive-eps neighborhoods, same
/// border-point tie rule), so labels — not just cluster counts — must match
/// the framework path exactly.
DbscanResult ReferenceDbscan(DistanceOracle* oracle,
                             const DbscanOptions& options);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_REFERENCE_H_
