#include "algo/prim.h"

#include <vector>

#include "core/logging.h"

namespace metricprox {

MstResult PrimMst(BoundedResolver* resolver) {
  CHECK(resolver != nullptr);
  const ObjectId n = resolver->num_objects();
  MstResult result;
  if (n <= 1) return result;
  result.edges.reserve(n - 1);

  std::vector<bool> in_tree(n, false);
  std::vector<double> key(n, kInfDistance);
  std::vector<ObjectId> parent(n, kInvalidObject);

  ObjectId current = 0;
  in_tree[0] = true;
  std::vector<IdPair> pairs;
  std::vector<double> thresholds;
  std::vector<ObjectId> verts;
  std::vector<IdPair> winners;
  for (ObjectId round = 1; round < n; ++round) {
    // Relax every out-of-tree vertex against the newly added one, as one
    // batched sweep: FilterLessThan decides every `d(current, v) < key[v]`
    // in a single cache + bounder pass (the bound scheme earns its keep
    // here — a proven LB >= key[v] skips the oracle), and the winners are
    // then resolved in one oracle round-trip.
    pairs.clear();
    thresholds.clear();
    verts.clear();
    for (ObjectId v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      pairs.push_back(IdPair{current, v});
      thresholds.push_back(key[v]);
      verts.push_back(v);
    }
    const std::vector<bool> improves =
        resolver->FilterLessThan(pairs, thresholds);
    winners.clear();
    for (size_t k = 0; k < pairs.size(); ++k) {
      if (improves[k]) winners.push_back(pairs[k]);
    }
    resolver->ResolveAll(winners);
    for (size_t k = 0; k < pairs.size(); ++k) {
      if (!improves[k]) continue;
      key[verts[k]] = resolver->Distance(current, verts[k]);
      parent[verts[k]] = current;
    }
    // Extract the minimum-key vertex (ties toward the smallest id, matching
    // the classical implementation).
    ObjectId next = kInvalidObject;
    for (ObjectId v = 0; v < n; ++v) {
      if (!in_tree[v] && (next == kInvalidObject || key[v] < key[next])) {
        next = v;
      }
    }
    CHECK_NE(next, kInvalidObject);
    CHECK_NE(parent[next], kInvalidObject) << "disconnected metric graph?";
    in_tree[next] = true;
    result.edges.push_back(WeightedEdge{parent[next], next, key[next]});
    result.total_weight += key[next];
    current = next;
  }
  return result;
}

MstResult PrimMstLazy(BoundedResolver* resolver) {
  CHECK(resolver != nullptr);
  const ObjectId n = resolver->num_objects();
  MstResult result;
  if (n <= 1) return result;
  result.edges.reserve(n - 1);

  std::vector<bool> in_tree(n, false);
  // candidate[v] = tree endpoint of v's current best connecting edge; the
  // edge's weight stays unresolved until a comparison forces it.
  std::vector<ObjectId> candidate(n, 0);
  in_tree[0] = true;

  for (ObjectId round = 1; round < n; ++round) {
    // Extract the vertex with the minimum candidate edge by pairwise
    // comparisons (strict <, so the smallest id wins ties, matching the
    // eager variant).
    ObjectId best = kInvalidObject;
    for (ObjectId v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      if (best == kInvalidObject ||
          resolver->PairLess(candidate[v], v, candidate[best], best)) {
        best = v;
      }
    }
    CHECK_NE(best, kInvalidObject);
    const double weight = resolver->Distance(candidate[best], best);
    in_tree[best] = true;
    result.edges.push_back(WeightedEdge{candidate[best], best, weight});
    result.total_weight += weight;

    // Relax every remaining vertex against the newly added one.
    for (ObjectId v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      if (resolver->PairLess(best, v, candidate[v], v)) {
        candidate[v] = best;
      }
    }
  }
  return result;
}

}  // namespace metricprox
