#ifndef METRICPROX_ALGO_DBSCAN_H_
#define METRICPROX_ALGO_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "bounds/resolver.h"
#include "core/types.h"

namespace metricprox {

struct DbscanOptions {
  /// Neighborhood radius (inclusive).
  double eps = 1.0;
  /// Minimum neighborhood size — *including* the point itself — for a
  /// core point (the scikit-learn convention).
  uint32_t min_pts = 4;
};

struct DbscanResult {
  /// Number of clusters found (labels 0 .. num_clusters-1).
  uint32_t num_clusters = 0;
  /// Per-object cluster label, or kNoise.
  std::vector<int32_t> labels;

  static constexpr int32_t kNoise = -1;
};

/// DBSCAN (Ester et al. 1996) over a general metric space, re-authored
/// against the bound framework: every eps-neighborhood is an exact
/// RangeSearch, so candidates the scheme proves farther than eps cost no
/// oracle call — density clustering is *all* range queries, which makes it
/// one of the framework's best customers.
///
/// Deterministic: points are expanded in ascending id order, so cluster
/// labels — including the classic border-point tie (a border point joins
/// the first core cluster that reaches it) — are identical across schemes
/// and match the oracle-only run.
DbscanResult DbscanCluster(BoundedResolver* resolver,
                           const DbscanOptions& options);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_DBSCAN_H_
