#ifndef METRICPROX_ALGO_KNN_GRAPH_H_
#define METRICPROX_ALGO_KNN_GRAPH_H_

#include <cstdint>
#include <vector>

#include "bounds/resolver.h"
#include "core/types.h"

namespace metricprox {

/// One directed k-NN edge.
struct KnnNeighbor {
  ObjectId id;
  double distance;

  friend bool operator==(const KnnNeighbor& a, const KnnNeighbor& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// result[u] = u's k nearest neighbors, sorted ascending by (distance, id).
using KnnGraph = std::vector<std::vector<KnnNeighbor>>;

struct KnnGraphOptions {
  uint32_t k = 5;
};

/// k-NN graph construction in the spirit of KNNrp (Paredes et al., WEA'06),
/// re-authored against the bound framework (Figures 6b, 9a).
///
/// For each object u, candidates are visited in ascending order of their
/// current lower bound, so near neighbors are resolved early and shrink the
/// running k-th-distance threshold t; every remaining candidate is admitted
/// through `LessThan(u, v, t)`, which lets the scheme discard it without an
/// oracle call once LB(u, v) >= t. Distances resolved while scanning u are
/// cached in the shared graph and reused for free when scanning v
/// (the symmetry the original algorithm also exploits).
///
/// Output is exactly the brute-force k-NN graph (ties broken by id).
KnnGraph BuildKnnGraph(BoundedResolver* resolver,
                       const KnnGraphOptions& options);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_KNN_GRAPH_H_
