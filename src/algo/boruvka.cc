#include "algo/boruvka.h"

#include <vector>

#include "core/logging.h"
#include "graph/union_find.h"

namespace metricprox {

namespace {

// Strict total order on (weight, EdgeKey) used for all comparisons.
bool EdgeLess(double wa, ObjectId au, ObjectId av, double wb, ObjectId bu,
              ObjectId bv) {
  if (wa != wb) return wa < wb;
  return EdgeKey(au, av) < EdgeKey(bu, bv);
}

bool KeyLess(ObjectId au, ObjectId av, ObjectId bu, ObjectId bv) {
  return EdgeKey(au, av) < EdgeKey(bu, bv);
}

}  // namespace

MstResult BoruvkaMst(BoundedResolver* resolver) {
  CHECK(resolver != nullptr);
  const ObjectId n = resolver->num_objects();
  MstResult result;
  if (n <= 1) return result;
  result.edges.reserve(n - 1);

  UnionFind forest(n);
  while (forest.num_components() > 1) {
    // Per component root: the best outgoing edge found this round.
    std::vector<WeightedEdge> best(n,
                                   WeightedEdge{kInvalidObject, kInvalidObject,
                                                kInfDistance});
    for (ObjectId u = 0; u < n; ++u) {
      const uint32_t cu = forest.Find(u);
      for (ObjectId v = u + 1; v < n; ++v) {
        const uint32_t cv = forest.Find(v);
        if (cu == cv) continue;
        // Try to beat both components' incumbents under (w, key) order,
        // resolving the distance only when the scheme cannot refute it.
        for (const uint32_t c : {cu, cv}) {
          WeightedEdge& incumbent = best[c];
          if (incumbent.u == kInvalidObject) {
            const double d = resolver->Distance(u, v);
            incumbent = WeightedEdge{u, v, d};
            continue;
          }
          bool resolve;
          if (KeyLess(u, v, incumbent.u, incumbent.v)) {
            // A tie would also win: only a *strictly greater* distance can
            // be discarded without resolving.
            resolve = !resolver->ProvenGreaterThan(u, v, incumbent.weight);
          } else {
            // A tie loses: discard unless strictly smaller is possible.
            resolve = resolver->LessThan(u, v, incumbent.weight);
          }
          if (!resolve) continue;
          const double d = resolver->Distance(u, v);
          if (EdgeLess(d, u, v, incumbent.weight, incumbent.u,
                       incumbent.v)) {
            incumbent = WeightedEdge{u, v, d};
          }
        }
      }
    }
    // Contract: add every component's best edge (skipping the duplicate
    // when two components chose the same edge).
    bool progressed = false;
    for (ObjectId c = 0; c < n; ++c) {
      const WeightedEdge& e = best[c];
      if (e.u == kInvalidObject) continue;
      if (forest.Union(e.u, e.v)) {
        result.edges.push_back(e);
        result.total_weight += e.weight;
        progressed = true;
      }
    }
    CHECK(progressed) << "Borůvka round made no progress";
  }
  return result;
}

}  // namespace metricprox
