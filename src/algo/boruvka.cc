#include "algo/boruvka.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/logging.h"
#include "graph/union_find.h"

namespace metricprox {

namespace {

// Strict total order on (weight, EdgeKey) used for all comparisons.
bool EdgeLess(double wa, ObjectId au, ObjectId av, double wb, ObjectId bu,
              ObjectId bv) {
  if (wa != wb) return wa < wb;
  return EdgeKey(au, av) < EdgeKey(bu, bv);
}

bool KeyLess(ObjectId au, ObjectId av, ObjectId bu, ObjectId bv) {
  return EdgeKey(au, av) < EdgeKey(bu, bv);
}

// Pairs triaged between two oracle round-trips. Small enough to keep
// incumbents fresh (stale incumbents admit pairs a sequential scan would
// have discarded), large enough to amortize a BatchDistance call.
constexpr size_t kTriageChunk = 64;

}  // namespace

MstResult BoruvkaMst(BoundedResolver* resolver) {
  CHECK(resolver != nullptr);
  const ObjectId n = resolver->num_objects();
  MstResult result;
  if (n <= 1) return result;
  result.edges.reserve(n - 1);

  UnionFind forest(n);
  std::vector<IdPair> cross;
  std::vector<IdPair> to_resolve;
  while (forest.num_components() > 1) {
    // Per component root: the best outgoing edge found this round, under
    // the strict (weight, EdgeKey) total order — so the per-round winner
    // for each component is unique and independent of scan order.
    std::vector<WeightedEdge> best(n,
                                   WeightedEdge{kInvalidObject, kInvalidObject,
                                                kInfDistance});
    auto update = [&](ObjectId u, ObjectId v, double d) {
      for (const uint32_t c : {forest.Find(u), forest.Find(v)}) {
        WeightedEdge& incumbent = best[c];
        if (incumbent.u == kInvalidObject ||
            EdgeLess(d, u, v, incumbent.weight, incumbent.u, incumbent.v)) {
          incumbent = WeightedEdge{u, v, d};
        }
      }
    };

    // Enumerate this round's cross-component pairs; seed every incumbent
    // from the cache (free — these distances are already resolved).
    cross.clear();
    for (ObjectId u = 0; u < n; ++u) {
      const uint32_t cu = forest.Find(u);
      for (ObjectId v = u + 1; v < n; ++v) {
        if (cu == forest.Find(v)) continue;
        cross.push_back(IdPair{u, v});
        if (resolver->Known(u, v)) update(u, v, resolver->Distance(u, v));
      }
    }

    // Components still without an incumbent take their first cross pair in
    // scan order, resolved in one batch (a component cannot triage against
    // nothing).
    to_resolve.clear();
    std::vector<bool> has_seed(n, false);
    for (const IdPair& p : cross) {
      const uint32_t cu = forest.Find(p.i);
      const uint32_t cv = forest.Find(p.j);
      const bool cu_ok = best[cu].u != kInvalidObject || has_seed[cu];
      const bool cv_ok = best[cv].u != kInvalidObject || has_seed[cv];
      if (cu_ok && cv_ok) continue;
      to_resolve.push_back(p);
      has_seed[cu] = true;
      has_seed[cv] = true;
    }
    resolver->ResolveAll(to_resolve);
    for (const IdPair& p : to_resolve) {
      update(p.i, p.j, resolver->Distance(p.i, p.j));
    }

    // Chunked triage: within each chunk, try to refute every unresolved
    // pair against both incumbents using bounds only (the tie rule follows
    // the (weight, key) order: a key-smaller pair survives ties, so only a
    // strictly greater distance discards it; a key-greater pair loses
    // ties, so >= discards). Survivors resolve in one batch, then the
    // incumbents absorb the chunk's exact distances in scan order.
    for (size_t begin = 0; begin < cross.size(); begin += kTriageChunk) {
      const size_t end = std::min(cross.size(), begin + kTriageChunk);
      to_resolve.clear();
      for (size_t k = begin; k < end; ++k) {
        const IdPair p = cross[k];
        if (resolver->Known(p.i, p.j)) continue;
        bool needed = false;
        for (const uint32_t c : {forest.Find(p.i), forest.Find(p.j)}) {
          const WeightedEdge& incumbent = best[c];
          if (KeyLess(p.i, p.j, incumbent.u, incumbent.v)) {
            // A tie would also win: only a *strictly greater* distance
            // can be discarded without resolving.
            if (!resolver->ProvenGreaterThan(p.i, p.j, incumbent.weight)) {
              needed = true;
            }
          } else {
            // A tie loses: discard once >= the incumbent is proven.
            if (!resolver->ProvenGreaterOrEqual(p.i, p.j,
                                                incumbent.weight)) {
              needed = true;
            }
          }
        }
        if (needed) to_resolve.push_back(p);
      }
      resolver->ResolveAll(to_resolve);
      for (const IdPair& p : to_resolve) {
        update(p.i, p.j, resolver->Distance(p.i, p.j));
      }
    }
    // Contract: add every component's best edge (skipping the duplicate
    // when two components chose the same edge).
    bool progressed = false;
    for (ObjectId c = 0; c < n; ++c) {
      const WeightedEdge& e = best[c];
      if (e.u == kInvalidObject) continue;
      if (forest.Union(e.u, e.v)) {
        result.edges.push_back(e);
        result.total_weight += e.weight;
        progressed = true;
      }
    }
    CHECK(progressed) << "Borůvka round made no progress";
  }
  return result;
}

}  // namespace metricprox
