#ifndef METRICPROX_ALGO_KCENTER_H_
#define METRICPROX_ALGO_KCENTER_H_

#include <cstdint>
#include <vector>

#include "bounds/resolver.h"
#include "core/types.h"

namespace metricprox {

struct KCenterResult {
  std::vector<ObjectId> centers;
  /// Max over objects of the distance to the nearest center (the 2-approx
  /// objective value).
  double radius = 0.0;
};

/// Gonzalez's farthest-first 2-approximation for metric k-center,
/// re-authored against the bound framework — one of the "more sophisticated
/// optimization problems" (facility allocation) the paper's conclusion
/// proposes as future work.
///
/// The maintained per-object distance-to-nearest-center array is updated
/// after each new center c through `LessThan(c, j, d2c[j])`: a proven
/// LB(c, j) >= d2c[j] keeps the entry without an oracle call. The chosen
/// centers are exactly those of the oracle-only algorithm (the array stays
/// exact; ties break toward smaller ids in both).
KCenterResult KCenterCluster(BoundedResolver* resolver, uint32_t k,
                             ObjectId first_center = 0);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_KCENTER_H_
