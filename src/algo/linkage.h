#ifndef METRICPROX_ALGO_LINKAGE_H_
#define METRICPROX_ALGO_LINKAGE_H_

#include <cstdint>
#include <vector>

#include "bounds/resolver.h"
#include "core/types.h"

namespace metricprox {

/// One agglomeration step: the clusters containing `u` and `v` merged at
/// distance `height`.
struct LinkageMerge {
  ObjectId u;
  ObjectId v;
  double height;
};

/// A single-linkage dendrogram over the complete metric graph.
struct SingleLinkageResult {
  ObjectId num_objects = 0;
  /// n-1 merges in non-decreasing height order.
  std::vector<LinkageMerge> merges;

  /// Flat clustering with `k` clusters: stop after n-k merges and label the
  /// resulting components 0..k-1 (labels ordered by smallest member id).
  std::vector<uint32_t> LabelsForK(uint32_t k) const;
};

/// Single-linkage hierarchical agglomerative clustering, computed through
/// the minimum spanning tree (the classical equivalence: processing MST
/// edges by ascending weight IS single linkage). The MST comes from the
/// bound-augmented Prim, so the whole dendrogram inherits the framework's
/// oracle-call savings and exactness guarantee.
SingleLinkageResult SingleLinkageCluster(BoundedResolver* resolver);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_LINKAGE_H_
