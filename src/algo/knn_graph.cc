#include "algo/knn_graph.h"

#include "algo/search.h"
#include "core/logging.h"

namespace metricprox {

KnnGraph BuildKnnGraph(BoundedResolver* resolver,
                       const KnnGraphOptions& options) {
  CHECK(resolver != nullptr);
  CHECK_GE(options.k, 1u);
  const ObjectId n = resolver->num_objects();
  CHECK_GT(n, options.k) << "need more objects than neighbors";

  // One exact k-NN query per object, each running the batched triage
  // rounds in KnnSearch; distances resolved while scanning u are cached in
  // the shared graph and reused for free when scanning v — the symmetry
  // KNNrp also exploits.
  KnnGraph graph(n);
  for (ObjectId u = 0; u < n; ++u) {
    graph[u] = KnnSearch(resolver, u, options.k);
  }
  return graph;
}

}  // namespace metricprox
