#ifndef METRICPROX_ALGO_KRUSKAL_H_
#define METRICPROX_ALGO_KRUSKAL_H_

#include "algo/mst.h"
#include "bounds/resolver.h"

namespace metricprox {

/// Kruskal's algorithm over the complete metric graph, re-authored as a
/// *lazy* bound-ordered sweep (Figure 6a workload).
///
/// Classical Kruskal must resolve all n(n-1)/2 distances just to sort them.
/// The re-authored version keeps a priority queue keyed by each pair's
/// current lower bound and repeatedly pops the smallest key:
///   * endpoints already connected  -> discard without ever resolving;
///   * key is an exact distance     -> it is globally minimal (every other
///     entry's key lower-bounds its true distance), process the edge;
///   * key is a stale lower bound   -> requeue with the improved bound, or
///     resolve via the oracle if the bound did not improve.
/// Pairs still queued when the forest connects are never resolved at all.
///
/// The resulting tree weight always equals classical Kruskal's; the edge
/// set itself is identical whenever distances are pairwise distinct.
MstResult KruskalMst(BoundedResolver* resolver);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_KRUSKAL_H_
