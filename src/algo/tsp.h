#ifndef METRICPROX_ALGO_TSP_H_
#define METRICPROX_ALGO_TSP_H_

#include <vector>

#include "bounds/resolver.h"
#include "core/types.h"

namespace metricprox {

struct TspTour {
  /// Visiting order over all objects (a permutation; the tour closes back
  /// to tour[0]).
  std::vector<ObjectId> order;
  double length = 0.0;
};

/// The classical MST-based 2-approximation for metric TSP — the second
/// future-work adaptation from the paper's conclusion.
///
/// Builds the MST with bound-augmented Prim, walks it in preorder (children
/// visited in id order) and charges the tour edges via the resolver (mostly
/// cache hits, since tree edges are already resolved). Tour quality and
/// order match the oracle-only pipeline because the MST does.
TspTour TspTwoApproximation(BoundedResolver* resolver);

}  // namespace metricprox

#endif  // METRICPROX_ALGO_TSP_H_
