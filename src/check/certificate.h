#ifndef METRICPROX_CHECK_CERTIFICATE_H_
#define METRICPROX_CHECK_CERTIFICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace metricprox {

/// Witness for an upper bound on dist(i, j): a path of *resolved* edges
/// from i to j. Its value is
///     rho * sum of the edge weights (left to right),
/// valid by (relaxed) triangle inequality. `nodes` lists the path including
/// both endpoints, so it has at least 2 entries. With rho > 1 the
/// relaxation composes only once, so the path may have at most 2 edges
/// (the Tri Scheme shape); rho = 1 allows any length (SPLUB shortest
/// paths).
struct PathWitness {
  std::vector<ObjectId> nodes;
  double rho = 1.0;
};

/// Witness for a lower bound on dist(i, j): a resolved edge (u, v) "wrapped"
/// by two resolved paths i..u and v..j (the paper's Equation 4). Its value
/// is
///     d(u, v) / rho - len(path_iu) - len(path_vj),
/// valid because any completion satisfies
///     d(u, v) <= rho * (len(i..u) + dist(i, j) + len(v..j))  [rho = 1]
/// and, for rho > 1, the single-application Tri shapes (at most one edge
/// across both paths combined). `path_iu` runs i..u inclusive (a single
/// node when i == u), `path_vj` runs v..j inclusive.
struct WrapWitness {
  ObjectId u = kInvalidObject;
  ObjectId v = kInvalidObject;
  std::vector<ObjectId> path_iu;
  std::vector<ObjectId> path_vj;
  double rho = 1.0;
};

/// One row of a Farkas infeasibility witness: a valid metric inequality
/// together with its nonnegative multiplier. The verifier re-derives the
/// row's coefficients and right-hand side purely from the kind, the object
/// ids and the resolved distances — nothing about the LP is trusted.
struct FarkasRow {
  enum class Kind : uint8_t {
    /// x_ab <= x_ac + x_cb (triangle inequality through c).
    kTriangle,
    /// x_ab <= d(a,c) + d(c,b) when c is valid (a box tightened by a
    /// one-unknown triangle), else x_ab <= max_distance (the normalization
    /// bound).
    kBoxUpper,
    /// -x_ab <= -|d(a,c) - d(c,b)| (lower box from a one-unknown triangle;
    /// c must be valid).
    kBoxLower,
  };

  Kind kind = Kind::kTriangle;
  ObjectId a = kInvalidObject;
  ObjectId b = kInvalidObject;
  ObjectId c = kInvalidObject;
  /// Farkas multiplier, >= 0.
  double weight = 0.0;
};

/// Farkas witness that a metric constraint system plus one extra "claim"
/// row is infeasible: nonnegative multipliers over valid metric
/// inequalities (`rows`) plus a strictly positive multiplier on the claim
/// row, whose weighted sum is violated by *every* point of the variable
/// box [0, max_distance]^V. The claim row itself is reconstructed by the
/// verifier from the DecisionRecord, so a certificate cannot smuggle in a
/// different claim than the decision it backs.
struct FarkasCertificate {
  std::vector<FarkasRow> rows;
  double claim_weight = 0.0;
};

/// Witness for an approximate (slack) decision under a ResolutionPolicy:
/// the bound interval the comparison was settled against, the policy's eps
/// and the advertised relative error (the interval's relative gap at
/// decision time). The verifier recomputes the gap from `lo`/`hi`, confirms
/// the advertised error, and re-derives the midpoint outcome; when the
/// enclosing certificate also carries path/wrap witnesses, those prove the
/// true distance really lies in [lo, hi]. `advertised_error` may exceed
/// `eps` only for budget-forced decisions.
struct SlackWitness {
  double lo = 0.0;
  double hi = kInfDistance;
  double eps = 0.0;
  double advertised_error = 0.0;
};

/// Witness for a dual-oracle (weak) decision: the weak estimate `w` plus
/// the error model (`alpha`, `floor`) the weak oracle advertised at
/// decision time. The verifier recomputes the certified interval
/// [max(0, w - floor)/alpha, (w + floor)*alpha] from these three numbers
/// alone, intersects it with whatever path/wrap witnesses the enclosing
/// certificate carries, and re-derives the decision — so an understated
/// alpha (a weak oracle lying about its own accuracy) is rejected whenever
/// the witnessed scheme bounds or a since-resolved distance contradict the
/// advertised interval.
struct WeakWitness {
  double w = 0.0;
  double alpha = 1.0;
  double floor = 0.0;
};

/// A self-contained proof that a bound-decided comparison is consistent
/// with the exact distances. Interval certificates carry constructive
/// witnesses; Farkas certificates carry an LP infeasibility combination
/// (the DFT scheme); slack certificates bound the error of an approximate
/// decision (and reuse the interval witnesses to prove containment when
/// the scheme can produce them); weak certificates carry the weak oracle's
/// advertised error model so the interval it implied can be recomputed.
/// `lb`/`ub` are the claimed bound values, kept for diagnostics only — the
/// verifier recomputes everything from the witnesses and the resolved
/// edges.
struct BoundCertificate {
  enum class Kind : uint8_t { kNone, kInterval, kFarkas, kSlack, kWeak };

  Kind kind = Kind::kNone;

  // kInterval (and, for containment, kSlack):
  double lb = 0.0;
  double ub = kInfDistance;
  bool has_upper = false;
  PathWitness upper;
  bool has_lower = false;
  WrapWitness lower;

  // kFarkas:
  FarkasCertificate farkas;

  // kSlack:
  SlackWitness slack;

  // kWeak:
  WeakWitness weak;
};

/// Which comparison verb a bound decision answered.
enum class DecisionVerb : uint8_t {
  kLessThan,     // dist(i, j) < threshold
  kGreaterThan,  // dist(i, j) > threshold
  kPairLess,     // dist(i, j) < dist(k, l)
};

/// One bound-decided comparison, as observed at the Bounder interface.
struct DecisionRecord {
  DecisionVerb verb = DecisionVerb::kLessThan;
  bool outcome = false;
  ObjectId i = kInvalidObject;
  ObjectId j = kInvalidObject;
  /// Second pair, kPairLess only.
  ObjectId k = kInvalidObject;
  ObjectId l = kInvalidObject;
  /// Threshold, kLessThan / kGreaterThan only.
  double threshold = 0.0;
};

/// A decision plus the certificate(s) backing it. Farkas certificates prove
/// the joint claim in `cert_ij` alone; interval kPairLess decisions need
/// one certificate per pair.
struct CertifiedDecision {
  DecisionRecord decision;
  BoundCertificate cert_ij;
  BoundCertificate cert_kl;
};

/// Counters of the audit pipeline. `emitted == verified + failed`;
/// `uncertified` counts decisions by schemes without certification support
/// (ADM, TLAESA) — those are still exercised by the decision-parity half of
/// the audit, just not independently re-proved.
struct CertificationStats {
  uint64_t emitted = 0;
  uint64_t verified = 0;
  uint64_t failed = 0;
  uint64_t uncertified = 0;
  /// Human-readable detail of the first failed certificate (empty if none).
  std::string first_failure;

  CertificationStats& operator+=(const CertificationStats& o) {
    emitted += o.emitted;
    verified += o.verified;
    failed += o.failed;
    uncertified += o.uncertified;
    if (first_failure.empty()) first_failure = o.first_failure;
    return *this;
  }
};

}  // namespace metricprox

#endif  // METRICPROX_CHECK_CERTIFICATE_H_
