#ifndef METRICPROX_CHECK_VERIFIER_H_
#define METRICPROX_CHECK_VERIFIER_H_

#include "check/certificate.h"
#include "core/status.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// Independent re-checker of bound certificates: replays every witness
/// against the resolved edge set of a PartialDistanceGraph and confirms
/// that the claimed decision follows from known distances and arithmetic
/// alone. Nothing about the Bounder implementations is trusted — a broken
/// scheme cannot produce a certificate that passes, because the verifier
/// recomputes every path length, wrap value and Farkas combination itself.
///
/// Certificates must be checked against the decision-time edge set, i.e.
/// online, before the resolver performs further resolutions (the
/// CertifyingBounder does exactly that). The graph is append-only and
/// values are immutable, so path/wrap witnesses also verify against any
/// later superset; only Farkas claim rows require the claim pairs to still
/// be unresolved.
class Verifier {
 public:
  struct Options {
    /// Upper bound on every true distance (the DFT normalization bound);
    /// used only by Farkas box rows.
    double max_distance = 1.0;
  };

  Verifier(const PartialDistanceGraph* graph, const Options& options)
      : graph_(graph), options_(options) {}

  /// OK iff the certificate is structurally valid against the graph AND its
  /// recomputed witness values imply the recorded decision.
  Status Check(const CertifiedDecision& cd) const;

  /// Recomputed witness upper bound on dist(i, j): the rho-scaled length of
  /// the path witness, or +inf when the certificate carries none.
  StatusOr<double> UpperValue(const BoundCertificate& cert, ObjectId i,
                              ObjectId j) const;

  /// Recomputed witness lower bound on dist(i, j): the wrap value, or 0
  /// (always valid) when the certificate carries none.
  StatusOr<double> LowerValue(const BoundCertificate& cert, ObjectId i,
                              ObjectId j) const;

 private:
  StatusOr<double> PathValue(const PathWitness& w, ObjectId i,
                             ObjectId j) const;
  StatusOr<double> WrapValue(const WrapWitness& w, ObjectId i,
                             ObjectId j) const;
  Status CheckInterval(const CertifiedDecision& cd) const;
  Status CheckFarkas(const DecisionRecord& decision,
                     const FarkasCertificate& cert) const;
  Status CheckSlack(const CertifiedDecision& cd) const;
  /// Structural + containment checks shared by both sides of a slack
  /// decision; returns the certified interval midpoint on success.
  StatusOr<double> CheckSlackCert(const BoundCertificate& cert, ObjectId i,
                                  ObjectId j) const;
  Status CheckWeak(const CertifiedDecision& cd) const;
  /// Structural checks for one side of a weak decision: recomputes the
  /// advertised interval [max(0, w - floor)/alpha, (w + floor)*alpha] from
  /// the certificate's error model, rejects it if a resolved distance for
  /// the pair falls outside it (an understated alpha cannot survive any
  /// resolved pair), rejects it if it is disjoint from the recomputed
  /// witness bounds, and returns the effective (intersected) interval the
  /// decision must follow from.
  StatusOr<Interval> CheckWeakCert(const BoundCertificate& cert, ObjectId i,
                                   ObjectId j) const;
  StatusOr<double> KnownDistance(ObjectId a, ObjectId b) const;

  const PartialDistanceGraph* graph_;  // not owned
  Options options_;
};

}  // namespace metricprox

#endif  // METRICPROX_CHECK_VERIFIER_H_
