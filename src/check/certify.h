#ifndef METRICPROX_CHECK_CERTIFY_H_
#define METRICPROX_CHECK_CERTIFY_H_

#include <string>
#include <vector>

#include "check/certificate.h"
#include "check/verifier.h"
#include "core/bounder.h"
#include "graph/partial_graph.h"

namespace metricprox {

class BoundedResolver;

/// Transparent audit shim around a bound scheme. It forwards every Bounder
/// verb to the wrapped scheme unchanged — decisions, bounds and update
/// notifications are bit-identical to running the scheme bare, which is what
/// makes the audit's "same outputs, same oracle_calls" guarantee possible —
/// and, for every comparison the scheme decides, obtains a certificate
/// (through the certified decision verbs for DFT, through CertifyBounds for
/// the interval schemes) and checks it on the spot with an independent
/// Verifier against the decision-time edge set.
///
/// Counters: every decided comparison increments exactly one of
///   emitted  -> then verified or failed   (scheme can certify)
///   uncertified                           (scheme has no certification)
/// A nonzero `failed` means a scheme produced a bound its own witnesses
/// cannot justify — a real bug, never fp noise (decision margins dwarf the
/// recomputation error of the witness values).
class CertifyingBounder : public Bounder {
 public:
  CertifyingBounder(Bounder* inner, const PartialDistanceGraph* graph,
                    const Verifier::Options& options)
      : inner_(inner),
        graph_(graph),
        verifier_(graph, options),
        name_(std::string(inner->name()) + "+audit") {}

  Bounder* inner() { return inner_; }
  const CertificationStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CertificationStats(); }

  /// When enabled, every certified decision is also retained in log() —
  /// used by tests that want to inspect the certificates themselves.
  void set_keep_log(bool keep) { keep_log_ = keep; }
  const std::vector<CertifiedDecision>& log() const { return log_; }

  // --- transparent forwarding -----------------------------------------
  std::string_view name() const override { return name_; }
  Interval Bounds(ObjectId i, ObjectId j) override {
    return inner_->Bounds(i, j);
  }
  void OnEdgeResolved(ObjectId i, ObjectId j, double d) override {
    inner_->OnEdgeResolved(i, j, d);
  }
  void OnEdgesResolved(std::span<const ResolvedEdge> edges) override {
    inner_->OnEdgesResolved(edges);
  }
  bool CertifyBounds(ObjectId i, ObjectId j, BoundCertificate* cert) override {
    return inner_->CertifyBounds(i, j, cert);
  }

  // --- intercepted decision verbs -------------------------------------
  std::optional<bool> DecideLessThan(ObjectId i, ObjectId j,
                                     double t) override;
  std::optional<bool> DecideGreaterThan(ObjectId i, ObjectId j,
                                        double t) override;
  std::optional<bool> DecidePairLess(ObjectId i, ObjectId j, ObjectId k,
                                     ObjectId l) override;
  /// Loops this shim's own DecideLessThan so every batched decision is
  /// certified too. The Bounder contract requires batch overrides to equal
  /// the sequential loop, so decisions (and therefore outputs and
  /// oracle_calls) are unchanged; only the scheme's batch amortization is
  /// bypassed while auditing.
  void DecideBatch(std::span<const IdPair> pairs,
                   std::span<const double> thresholds,
                   std::span<std::optional<bool>> out) override;

  /// Approximate-mode interception: every slack decision the resolver
  /// reports is wrapped in a kSlack certificate (with containment
  /// witnesses grafted from CertifyBounds when the scheme supports them),
  /// verified on the spot, and forwarded to the inner scheme.
  void ObserveSlackLessThan(ObjectId i, ObjectId j, double t,
                            const Interval& bounds, double eps,
                            bool outcome) override;
  void ObserveSlackPairLess(ObjectId i, ObjectId j, ObjectId k, ObjectId l,
                            const Interval& bij, const Interval& bkl,
                            double eps, bool outcome) override;

  /// Dual-oracle interception: every weak-decided comparison the resolver
  /// reports is wrapped in a kWeak certificate carrying the advertised
  /// error model (plus containment witnesses grafted from CertifyBounds
  /// when the scheme supports them), verified on the spot — the verifier
  /// recomputes the interval from the model, so an understated alpha is
  /// rejected, never silently trusted — and forwarded to the inner scheme.
  void ObserveWeakLessThan(ObjectId i, ObjectId j, double t,
                           const WeakModel& model, bool outcome) override;
  void ObserveWeakGreaterThan(ObjectId i, ObjectId j, double t,
                              const WeakModel& model, bool outcome) override;
  void ObserveWeakPairLess(ObjectId i, ObjectId j, ObjectId k, ObjectId l,
                           const WeakModel& mij, const WeakModel& mkl,
                           bool outcome) override;

 private:
  /// Completes certification of a decided comparison: fills interval
  /// certificates via CertifyBounds when the certified verb left none,
  /// verifies, and bumps the counters.
  void Record(const DecisionRecord& decision, BoundCertificate&& from_verb);

  /// Verifies an assembled certified decision and bumps the counters (the
  /// shared tail of Record and the slack observation hooks).
  void Finish(CertifiedDecision&& cd);

  /// Builds the kSlack certificate for one side of a slack decision.
  BoundCertificate MakeSlackCert(ObjectId i, ObjectId j, const Interval& b,
                                 double eps);

  /// Builds the kWeak certificate for one side of a weak decision.
  BoundCertificate MakeWeakCert(ObjectId i, ObjectId j,
                                const WeakModel& model);

  Bounder* inner_;                     // not owned
  const PartialDistanceGraph* graph_;  // not owned
  Verifier verifier_;
  std::string name_;
  CertificationStats stats_;
  bool keep_log_ = false;
  std::vector<CertifiedDecision> log_;
};

/// RAII installer: wraps whatever bounder a BoundedResolver currently has
/// with a CertifyingBounder for the lifetime of this object, restoring the
/// original scheme on destruction. The resolver's pipeline is untouched —
/// interception happens entirely behind its bounder pointer.
class CertifyingResolver {
 public:
  CertifyingResolver(BoundedResolver* resolver, double max_distance);
  ~CertifyingResolver();

  CertifyingResolver(const CertifyingResolver&) = delete;
  CertifyingResolver& operator=(const CertifyingResolver&) = delete;

  CertifyingBounder& shim() { return shim_; }
  const CertificationStats& stats() const { return shim_.stats(); }

 private:
  BoundedResolver* resolver_;  // not owned
  CertifyingBounder shim_;
};

}  // namespace metricprox

#endif  // METRICPROX_CHECK_CERTIFY_H_
