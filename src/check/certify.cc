#include "check/certify.h"

#include <sstream>
#include <utility>

#include "bounds/resolver.h"

namespace metricprox {

namespace {

const char* VerbName(DecisionVerb verb) {
  switch (verb) {
    case DecisionVerb::kLessThan:
      return "LessThan";
    case DecisionVerb::kGreaterThan:
      return "GreaterThan";
    case DecisionVerb::kPairLess:
      return "PairLess";
  }
  return "?";
}

}  // namespace

std::optional<bool> CertifyingBounder::DecideLessThan(ObjectId i, ObjectId j,
                                                      double t) {
  BoundCertificate cert;
  const std::optional<bool> decided =
      inner_->DecideLessThanCertified(i, j, t, &cert);
  if (decided.has_value()) {
    DecisionRecord dec;
    dec.verb = DecisionVerb::kLessThan;
    dec.outcome = *decided;
    dec.i = i;
    dec.j = j;
    dec.threshold = t;
    Record(dec, std::move(cert));
  }
  return decided;
}

std::optional<bool> CertifyingBounder::DecideGreaterThan(ObjectId i,
                                                         ObjectId j,
                                                         double t) {
  BoundCertificate cert;
  const std::optional<bool> decided =
      inner_->DecideGreaterThanCertified(i, j, t, &cert);
  if (decided.has_value()) {
    DecisionRecord dec;
    dec.verb = DecisionVerb::kGreaterThan;
    dec.outcome = *decided;
    dec.i = i;
    dec.j = j;
    dec.threshold = t;
    Record(dec, std::move(cert));
  }
  return decided;
}

std::optional<bool> CertifyingBounder::DecidePairLess(ObjectId i, ObjectId j,
                                                      ObjectId k, ObjectId l) {
  BoundCertificate cert;
  const std::optional<bool> decided =
      inner_->DecidePairLessCertified(i, j, k, l, &cert);
  if (decided.has_value()) {
    DecisionRecord dec;
    dec.verb = DecisionVerb::kPairLess;
    dec.outcome = *decided;
    dec.i = i;
    dec.j = j;
    dec.k = k;
    dec.l = l;
    Record(dec, std::move(cert));
  }
  return decided;
}

void CertifyingBounder::DecideBatch(std::span<const IdPair> pairs,
                                    std::span<const double> thresholds,
                                    std::span<std::optional<bool>> out) {
  for (size_t k = 0; k < pairs.size(); ++k) {
    out[k] = DecideLessThan(pairs[k].i, pairs[k].j, thresholds[k]);
  }
}

void CertifyingBounder::Record(const DecisionRecord& decision,
                               BoundCertificate&& from_verb) {
  CertifiedDecision cd;
  cd.decision = decision;
  if (from_verb.kind != BoundCertificate::Kind::kNone) {
    // The certified verb produced a proof of the whole decision (DFT's
    // Farkas path, or a scheme that chooses to certify inline).
    cd.cert_ij = std::move(from_verb);
  } else {
    // Interval scheme: re-derive the bounds with witnesses. CertifyBounds
    // reproduces Bounds() bit-for-bit, so the witnesses justify exactly the
    // interval the decision was made from.
    if (!inner_->CertifyBounds(decision.i, decision.j, &cd.cert_ij)) {
      ++stats_.uncertified;
      return;
    }
    if (decision.verb == DecisionVerb::kPairLess &&
        !inner_->CertifyBounds(decision.k, decision.l, &cd.cert_kl)) {
      ++stats_.uncertified;
      return;
    }
  }
  Finish(std::move(cd));
}

void CertifyingBounder::Finish(CertifiedDecision&& cd) {
  const DecisionRecord& decision = cd.decision;
  ++stats_.emitted;
  const Status status = verifier_.Check(cd);
  if (status.ok()) {
    ++stats_.verified;
  } else {
    ++stats_.failed;
    if (stats_.first_failure.empty()) {
      std::ostringstream os;
      os << inner_->name() << " " << VerbName(decision.verb) << "("
         << decision.i << "," << decision.j;
      if (decision.verb == DecisionVerb::kPairLess) {
        os << ";" << decision.k << "," << decision.l;
      } else {
        os << ";t=" << decision.threshold;
      }
      os << ")=" << (decision.outcome ? "true" : "false") << ": "
         << status.message();
      stats_.first_failure = os.str();
    }
  }
  if (keep_log_) log_.push_back(std::move(cd));
}

BoundCertificate CertifyingBounder::MakeSlackCert(ObjectId i, ObjectId j,
                                                  const Interval& b,
                                                  double eps) {
  BoundCertificate cert;
  cert.kind = BoundCertificate::Kind::kSlack;
  cert.lb = b.lo;
  cert.ub = b.hi;
  cert.slack = SlackWitness{b.lo, b.hi, eps, SlackRelativeGap(b)};
  if (i == j) return cert;  // exact self-pair; nothing to witness
  if (b.IsExact() && graph_->Get(i, j) == std::optional<double>(b.hi)) {
    // Exact side read from the cache: the resolved edge itself is both the
    // upper witness (the 1-edge path) and the lower witness (the edge
    // wrapped by two trivial paths).
    cert.has_upper = true;
    cert.upper = PathWitness{{i, j}, 1.0};
    cert.has_lower = true;
    cert.lower = WrapWitness{i, j, {i}, {j}, 1.0};
    return cert;
  }
  BoundCertificate interval_cert;
  if (inner_->CertifyBounds(i, j, &interval_cert)) {
    // Graft the containment witnesses: CertifyBounds reproduces Bounds()
    // bit-for-bit, so they justify exactly the recorded interval. Schemes
    // without certification support leave the slack certificate
    // witness-less; the verifier then checks its arithmetic alone.
    cert.has_upper = interval_cert.has_upper;
    cert.upper = std::move(interval_cert.upper);
    cert.has_lower = interval_cert.has_lower;
    cert.lower = std::move(interval_cert.lower);
  }
  return cert;
}

void CertifyingBounder::ObserveSlackLessThan(ObjectId i, ObjectId j, double t,
                                             const Interval& bounds,
                                             double eps, bool outcome) {
  CertifiedDecision cd;
  cd.decision.verb = DecisionVerb::kLessThan;
  cd.decision.outcome = outcome;
  cd.decision.i = i;
  cd.decision.j = j;
  cd.decision.threshold = t;
  cd.cert_ij = MakeSlackCert(i, j, bounds, eps);
  Finish(std::move(cd));
  inner_->ObserveSlackLessThan(i, j, t, bounds, eps, outcome);
}

void CertifyingBounder::ObserveSlackPairLess(ObjectId i, ObjectId j,
                                             ObjectId k, ObjectId l,
                                             const Interval& bij,
                                             const Interval& bkl, double eps,
                                             bool outcome) {
  CertifiedDecision cd;
  cd.decision.verb = DecisionVerb::kPairLess;
  cd.decision.outcome = outcome;
  cd.decision.i = i;
  cd.decision.j = j;
  cd.decision.k = k;
  cd.decision.l = l;
  cd.cert_ij = MakeSlackCert(i, j, bij, eps);
  cd.cert_kl = MakeSlackCert(k, l, bkl, eps);
  Finish(std::move(cd));
  inner_->ObserveSlackPairLess(i, j, k, l, bij, bkl, eps, outcome);
}

BoundCertificate CertifyingBounder::MakeWeakCert(ObjectId i, ObjectId j,
                                                 const WeakModel& model) {
  BoundCertificate cert;
  cert.kind = BoundCertificate::Kind::kWeak;
  cert.weak = WeakWitness{model.w, model.alpha, model.floor};
  // Diagnostics only: the verifier recomputes the interval from the model.
  const Interval advertised = WeakModelInterval(model);
  cert.lb = advertised.lo;
  cert.ub = advertised.hi;
  if (i == j) return cert;
  if (model.alpha == 1.0 && model.floor == 0.0 &&
      graph_->Get(i, j) == std::optional<double>(model.w)) {
    // Cached side of a pair decision (the resolver reports it as the exact
    // model {d, 1, 0}): the resolved edge itself witnesses both sides.
    cert.has_upper = true;
    cert.upper = PathWitness{{i, j}, 1.0};
    cert.has_lower = true;
    cert.lower = WrapWitness{i, j, {i}, {j}, 1.0};
    return cert;
  }
  BoundCertificate interval_cert;
  if (inner_->CertifyBounds(i, j, &interval_cert)) {
    // Graft the scheme's containment witnesses: the resolver decided from
    // the weak interval *intersected* with the scheme's bounds, and
    // CertifyBounds reproduces those bounds bit-for-bit.
    cert.has_upper = interval_cert.has_upper;
    cert.upper = std::move(interval_cert.upper);
    cert.has_lower = interval_cert.has_lower;
    cert.lower = std::move(interval_cert.lower);
  }
  return cert;
}

void CertifyingBounder::ObserveWeakLessThan(ObjectId i, ObjectId j, double t,
                                            const WeakModel& model,
                                            bool outcome) {
  CertifiedDecision cd;
  cd.decision.verb = DecisionVerb::kLessThan;
  cd.decision.outcome = outcome;
  cd.decision.i = i;
  cd.decision.j = j;
  cd.decision.threshold = t;
  cd.cert_ij = MakeWeakCert(i, j, model);
  Finish(std::move(cd));
  inner_->ObserveWeakLessThan(i, j, t, model, outcome);
}

void CertifyingBounder::ObserveWeakGreaterThan(ObjectId i, ObjectId j,
                                               double t,
                                               const WeakModel& model,
                                               bool outcome) {
  CertifiedDecision cd;
  cd.decision.verb = DecisionVerb::kGreaterThan;
  cd.decision.outcome = outcome;
  cd.decision.i = i;
  cd.decision.j = j;
  cd.decision.threshold = t;
  cd.cert_ij = MakeWeakCert(i, j, model);
  Finish(std::move(cd));
  inner_->ObserveWeakGreaterThan(i, j, t, model, outcome);
}

void CertifyingBounder::ObserveWeakPairLess(ObjectId i, ObjectId j, ObjectId k,
                                            ObjectId l, const WeakModel& mij,
                                            const WeakModel& mkl,
                                            bool outcome) {
  CertifiedDecision cd;
  cd.decision.verb = DecisionVerb::kPairLess;
  cd.decision.outcome = outcome;
  cd.decision.i = i;
  cd.decision.j = j;
  cd.decision.k = k;
  cd.decision.l = l;
  cd.cert_ij = MakeWeakCert(i, j, mij);
  cd.cert_kl = MakeWeakCert(k, l, mkl);
  Finish(std::move(cd));
  inner_->ObserveWeakPairLess(i, j, k, l, mij, mkl, outcome);
}

CertifyingResolver::CertifyingResolver(BoundedResolver* resolver,
                                       double max_distance)
    : resolver_(resolver),
      shim_(&resolver->bounder(), &resolver->graph(),
            Verifier::Options{max_distance}) {
  resolver_->SetBounder(&shim_);
}

CertifyingResolver::~CertifyingResolver() {
  resolver_->SetBounder(shim_.inner());
}

}  // namespace metricprox
