#include "check/verifier.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/bounder.h"

namespace metricprox {

namespace {

std::string PairStr(ObjectId a, ObjectId b) {
  std::ostringstream os;
  os << "(" << a << "," << b << ")";
  return os.str();
}

Status ImplicationFailure(const char* need, double witness, double against) {
  std::ostringstream os;
  os << "certificate does not imply the decision: need " << need
     << " but witness value " << witness << " vs " << against;
  return Status::Internal(os.str());
}

}  // namespace

StatusOr<double> Verifier::KnownDistance(ObjectId a, ObjectId b) const {
  const ObjectId n = graph_->num_objects();
  if (a >= n || b >= n) {
    return Status::InvalidArgument("certificate references out-of-range pair " +
                                   PairStr(a, b));
  }
  if (a == b) {
    return Status::InvalidArgument("certificate references self-pair " +
                                   PairStr(a, b));
  }
  const std::optional<double> d = graph_->Get(a, b);
  if (!d.has_value()) {
    return Status::FailedPrecondition(
        "certificate references unresolved pair " + PairStr(a, b));
  }
  return *d;
}

StatusOr<double> Verifier::PathValue(const PathWitness& w, ObjectId i,
                                     ObjectId j) const {
  if (w.nodes.size() < 2) {
    return Status::InvalidArgument("path witness has fewer than 2 nodes");
  }
  if (w.nodes.front() != i || w.nodes.back() != j) {
    return Status::InvalidArgument("path witness endpoints " +
                                   PairStr(w.nodes.front(), w.nodes.back()) +
                                   " do not match pair " + PairStr(i, j));
  }
  if (w.rho < 1.0) {
    return Status::InvalidArgument("path witness has rho < 1");
  }
  // A relaxed inequality composes only once, so rho > 1 admits only the
  // 2-edge Tri shape (see bounds/tri.h).
  if (w.rho > 1.0 && w.nodes.size() > 3) {
    return Status::InvalidArgument(
        "relaxed-metric path witness has more than 2 edges");
  }
  double sum = 0.0;
  for (size_t s = 0; s + 1 < w.nodes.size(); ++s) {
    StatusOr<double> d = KnownDistance(w.nodes[s], w.nodes[s + 1]);
    if (!d.ok()) return d.status();
    sum += *d;
  }
  return w.rho * sum;
}

StatusOr<double> Verifier::WrapValue(const WrapWitness& w, ObjectId i,
                                     ObjectId j) const {
  if (w.path_iu.empty() || w.path_vj.empty()) {
    return Status::InvalidArgument("wrap witness has an empty path");
  }
  if (w.path_iu.front() != i || w.path_iu.back() != w.u) {
    return Status::InvalidArgument("wrap witness i..u path endpoints wrong");
  }
  if (w.path_vj.front() != w.v || w.path_vj.back() != j) {
    return Status::InvalidArgument("wrap witness v..j path endpoints wrong");
  }
  if (w.rho < 1.0) {
    return Status::InvalidArgument("wrap witness has rho < 1");
  }
  const size_t wrap_edges =
      (w.path_iu.size() - 1) + (w.path_vj.size() - 1);
  if (w.rho > 1.0 && wrap_edges > 1) {
    return Status::InvalidArgument(
        "relaxed-metric wrap witness has more than 1 path edge");
  }
  StatusOr<double> duv = KnownDistance(w.u, w.v);
  if (!duv.ok()) return duv.status();
  double len_iu = 0.0;
  for (size_t s = 0; s + 1 < w.path_iu.size(); ++s) {
    StatusOr<double> d = KnownDistance(w.path_iu[s], w.path_iu[s + 1]);
    if (!d.ok()) return d.status();
    len_iu += *d;
  }
  double len_vj = 0.0;
  for (size_t s = 0; s + 1 < w.path_vj.size(); ++s) {
    StatusOr<double> d = KnownDistance(w.path_vj[s], w.path_vj[s + 1]);
    if (!d.ok()) return d.status();
    len_vj += *d;
  }
  return *duv / w.rho - len_iu - len_vj;
}

StatusOr<double> Verifier::UpperValue(const BoundCertificate& cert, ObjectId i,
                                      ObjectId j) const {
  if (cert.kind != BoundCertificate::Kind::kInterval) {
    return Status::InvalidArgument("not an interval certificate");
  }
  if (!cert.has_upper) return kInfDistance;
  return PathValue(cert.upper, i, j);
}

StatusOr<double> Verifier::LowerValue(const BoundCertificate& cert, ObjectId i,
                                      ObjectId j) const {
  if (cert.kind != BoundCertificate::Kind::kInterval) {
    return Status::InvalidArgument("not an interval certificate");
  }
  if (!cert.has_lower) return 0.0;  // 0 is always a valid lower bound
  return WrapValue(cert.lower, i, j);
}

Status Verifier::Check(const CertifiedDecision& cd) const {
  switch (cd.cert_ij.kind) {
    case BoundCertificate::Kind::kFarkas:
      return CheckFarkas(cd.decision, cd.cert_ij.farkas);
    case BoundCertificate::Kind::kInterval:
      return CheckInterval(cd);
    case BoundCertificate::Kind::kSlack:
      return CheckSlack(cd);
    case BoundCertificate::Kind::kWeak:
      return CheckWeak(cd);
    case BoundCertificate::Kind::kNone:
      return Status::InvalidArgument("decision carries no certificate");
  }
  return Status::Internal("unknown certificate kind");
}

Status Verifier::CheckInterval(const CertifiedDecision& cd) const {
  const DecisionRecord& dec = cd.decision;
  switch (dec.verb) {
    case DecisionVerb::kLessThan: {
      if (dec.outcome) {
        StatusOr<double> ub = UpperValue(cd.cert_ij, dec.i, dec.j);
        if (!ub.ok()) return ub.status();
        if (!(*ub < dec.threshold)) {
          return ImplicationFailure("ub < t for LessThan=true", *ub,
                                    dec.threshold);
        }
      } else {
        StatusOr<double> lb = LowerValue(cd.cert_ij, dec.i, dec.j);
        if (!lb.ok()) return lb.status();
        if (!(*lb >= dec.threshold)) {
          return ImplicationFailure("lb >= t for LessThan=false", *lb,
                                    dec.threshold);
        }
      }
      return Status::OK();
    }
    case DecisionVerb::kGreaterThan: {
      if (dec.outcome) {
        StatusOr<double> lb = LowerValue(cd.cert_ij, dec.i, dec.j);
        if (!lb.ok()) return lb.status();
        if (!(*lb > dec.threshold)) {
          return ImplicationFailure("lb > t for GreaterThan=true", *lb,
                                    dec.threshold);
        }
      } else {
        StatusOr<double> ub = UpperValue(cd.cert_ij, dec.i, dec.j);
        if (!ub.ok()) return ub.status();
        if (!(*ub <= dec.threshold)) {
          return ImplicationFailure("ub <= t for GreaterThan=false", *ub,
                                    dec.threshold);
        }
      }
      return Status::OK();
    }
    case DecisionVerb::kPairLess: {
      if (cd.cert_kl.kind != BoundCertificate::Kind::kInterval) {
        return Status::InvalidArgument(
            "pair-less decision lacks a certificate for its second pair");
      }
      if (dec.outcome) {
        StatusOr<double> ub = UpperValue(cd.cert_ij, dec.i, dec.j);
        if (!ub.ok()) return ub.status();
        StatusOr<double> lb = LowerValue(cd.cert_kl, dec.k, dec.l);
        if (!lb.ok()) return lb.status();
        if (!(*ub < *lb)) {
          return ImplicationFailure("ub(i,j) < lb(k,l) for PairLess=true",
                                    *ub, *lb);
        }
      } else {
        StatusOr<double> lb = LowerValue(cd.cert_ij, dec.i, dec.j);
        if (!lb.ok()) return lb.status();
        StatusOr<double> ub = UpperValue(cd.cert_kl, dec.k, dec.l);
        if (!ub.ok()) return ub.status();
        if (!(*lb >= *ub)) {
          return ImplicationFailure("lb(i,j) >= ub(k,l) for PairLess=false",
                                    *lb, *ub);
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown decision verb");
}

StatusOr<double> Verifier::CheckSlackCert(const BoundCertificate& cert,
                                          ObjectId i, ObjectId j) const {
  if (cert.kind != BoundCertificate::Kind::kSlack) {
    return Status::InvalidArgument("not a slack certificate");
  }
  const SlackWitness& w = cert.slack;
  if (!(w.hi >= w.lo) || !std::isfinite(w.hi)) {
    return Status::InvalidArgument(
        "slack witness interval is not lo <= hi < inf");
  }
  if (!(w.eps >= 0.0) || !(w.eps < 1.0)) {
    return Status::InvalidArgument("slack witness eps outside [0, 1)");
  }
  // The advertised error must cover the gap recomputed from the interval
  // itself (it exceeds eps only on budget-forced decisions; the audit layer
  // separately checks realized error <= eps when the budget never bit).
  const double gap = SlackRelativeGap(Interval(w.lo, w.hi));
  if (gap > w.advertised_error + 1e-12 * (1.0 + gap)) {
    return ImplicationFailure("advertised error >= recomputed gap",
                              w.advertised_error, gap);
  }
  // When the scheme produced constructive witnesses, they must prove the
  // true distance really lies in [lo, hi]; witness-less slack certificates
  // (schemes without CertifyBounds support) pass on arithmetic alone.
  if (cert.has_upper) {
    StatusOr<double> ub = PathValue(cert.upper, i, j);
    if (!ub.ok()) return ub.status();
    if (!(*ub <= w.hi + 1e-9 * (1.0 + std::abs(w.hi)))) {
      return ImplicationFailure("witness ub <= slack hi", *ub, w.hi);
    }
  }
  if (cert.has_lower) {
    StatusOr<double> lb = WrapValue(cert.lower, i, j);
    if (!lb.ok()) return lb.status();
    if (!(*lb >= w.lo - 1e-9 * (1.0 + std::abs(w.lo)))) {
      return ImplicationFailure("witness lb >= slack lo", *lb, w.lo);
    }
  }
  // The surrogate the resolver compared: bitwise-identical recomputation of
  // BoundedResolver::SlackMidpoint over the recorded interval.
  return 0.5 * (std::max(w.lo, 0.0) + w.hi);
}

Status Verifier::CheckSlack(const CertifiedDecision& cd) const {
  const DecisionRecord& dec = cd.decision;
  StatusOr<double> mid_ij = CheckSlackCert(cd.cert_ij, dec.i, dec.j);
  if (!mid_ij.ok()) return mid_ij.status();
  switch (dec.verb) {
    case DecisionVerb::kLessThan: {
      if (dec.outcome != (*mid_ij < dec.threshold)) {
        return ImplicationFailure("outcome == (midpoint < t)", *mid_ij,
                                  dec.threshold);
      }
      return Status::OK();
    }
    case DecisionVerb::kPairLess: {
      if (cd.cert_kl.kind != BoundCertificate::Kind::kSlack) {
        return Status::InvalidArgument(
            "slack pair-less decision lacks a slack certificate for its "
            "second pair");
      }
      StatusOr<double> mid_kl = CheckSlackCert(cd.cert_kl, dec.k, dec.l);
      if (!mid_kl.ok()) return mid_kl.status();
      if (dec.outcome != (*mid_ij < *mid_kl)) {
        return ImplicationFailure("outcome == (mid(i,j) < mid(k,l))",
                                  *mid_ij, *mid_kl);
      }
      return Status::OK();
    }
    case DecisionVerb::kGreaterThan:
      // Proof verbs are never slack-decided by design.
      return Status::InvalidArgument(
          "slack certificates never back a GreaterThan proof verb");
  }
  return Status::Internal("unknown decision verb");
}

StatusOr<Interval> Verifier::CheckWeakCert(const BoundCertificate& cert,
                                           ObjectId i, ObjectId j) const {
  if (cert.kind != BoundCertificate::Kind::kWeak) {
    return Status::InvalidArgument("not a weak certificate");
  }
  const WeakWitness& w = cert.weak;
  if (!std::isfinite(w.w) || w.w < 0.0) {
    return Status::InvalidArgument(
        "weak witness estimate must be finite and non-negative");
  }
  if (!std::isfinite(w.alpha) || w.alpha < 1.0) {
    return Status::InvalidArgument(
        "weak witness alpha must be finite and >= 1");
  }
  if (!std::isfinite(w.floor) || w.floor < 0.0) {
    return Status::InvalidArgument(
        "weak witness floor must be finite and non-negative");
  }
  // The advertised interval is recomputed from the error model the
  // certificate itself carries — the resolver's arithmetic is not trusted.
  const Interval advertised =
      WeakModelInterval(WeakModel{w.w, w.alpha, w.floor});
  if (i != j) {
    if (const std::optional<double> d = graph_->Get(i, j)) {
      // Ground truth is available for this pair: the advertised model must
      // contain it. An understated alpha cannot survive a resolved pair.
      const double tol = 1e-9 * (1.0 + std::abs(advertised.hi));
      if (!(*d >= advertised.lo - tol && *d <= advertised.hi + tol)) {
        return ImplicationFailure(
            "resolved distance inside the advertised weak interval", *d,
            advertised.hi);
      }
    }
  }
  double ub = kInfDistance;
  if (cert.has_upper) {
    StatusOr<double> v = PathValue(cert.upper, i, j);
    if (!v.ok()) return v.status();
    ub = *v;
  }
  double lb = 0.0;
  if (cert.has_lower) {
    StatusOr<double> v = WrapValue(cert.lower, i, j);
    if (!v.ok()) return v.status();
    lb = *v;
  }
  double eff_lo = std::max(advertised.lo, lb);
  double eff_hi = std::min(advertised.hi, ub);
  const double tol = 1e-9 * (1.0 + std::abs(eff_hi));
  if (eff_lo > eff_hi + tol) {
    // The witnesses prove the true distance lies outside the advertised
    // interval entirely — the weak oracle broke its model.
    return ImplicationFailure(
        "advertised weak interval consistent with witnessed bounds", eff_lo,
        eff_hi);
  }
  if (eff_lo > eff_hi) eff_lo = eff_hi;  // sub-tolerance fp disagreement
  return Interval(eff_lo, eff_hi);
}

Status Verifier::CheckWeak(const CertifiedDecision& cd) const {
  const DecisionRecord& dec = cd.decision;
  StatusOr<Interval> eff_ij = CheckWeakCert(cd.cert_ij, dec.i, dec.j);
  if (!eff_ij.ok()) return eff_ij.status();
  switch (dec.verb) {
    case DecisionVerb::kLessThan: {
      if (dec.outcome) {
        if (!(eff_ij->hi < dec.threshold)) {
          return ImplicationFailure("eff hi < t for weak LessThan=true",
                                    eff_ij->hi, dec.threshold);
        }
      } else {
        if (!(eff_ij->lo >= dec.threshold)) {
          return ImplicationFailure("eff lo >= t for weak LessThan=false",
                                    eff_ij->lo, dec.threshold);
        }
      }
      return Status::OK();
    }
    case DecisionVerb::kGreaterThan: {
      if (dec.outcome) {
        if (!(eff_ij->lo > dec.threshold)) {
          return ImplicationFailure("eff lo > t for weak GreaterThan=true",
                                    eff_ij->lo, dec.threshold);
        }
      } else {
        if (!(eff_ij->hi <= dec.threshold)) {
          return ImplicationFailure("eff hi <= t for weak GreaterThan=false",
                                    eff_ij->hi, dec.threshold);
        }
      }
      return Status::OK();
    }
    case DecisionVerb::kPairLess: {
      if (cd.cert_kl.kind != BoundCertificate::Kind::kWeak) {
        return Status::InvalidArgument(
            "weak pair-less decision lacks a weak certificate for its "
            "second pair");
      }
      StatusOr<Interval> eff_kl = CheckWeakCert(cd.cert_kl, dec.k, dec.l);
      if (!eff_kl.ok()) return eff_kl.status();
      if (dec.outcome) {
        if (!(eff_ij->hi < eff_kl->lo)) {
          return ImplicationFailure(
              "eff hi(i,j) < eff lo(k,l) for weak PairLess=true", eff_ij->hi,
              eff_kl->lo);
        }
      } else {
        if (!(eff_ij->lo >= eff_kl->hi)) {
          return ImplicationFailure(
              "eff lo(i,j) >= eff hi(k,l) for weak PairLess=false",
              eff_ij->lo, eff_kl->hi);
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown decision verb");
}

Status Verifier::CheckFarkas(const DecisionRecord& dec,
                             const FarkasCertificate& cert) const {
  if (!(cert.claim_weight > 0.0)) {
    return Status::InvalidArgument(
        "farkas certificate must put positive weight on the claim row");
  }
  const ObjectId n = graph_->num_objects();
  // Combined inequality sum_r w_r * (row_r) <= rhs: coefficients per still-
  // unresolved pair; resolved pairs fold into the right-hand side.
  std::unordered_map<uint64_t, double> coefs;
  double rhs = 0.0;
  double weight_sum = cert.claim_weight;

  auto add_term = [&](ObjectId a, ObjectId b, double coef) -> Status {
    if (a >= n || b >= n || a == b) {
      return Status::InvalidArgument("farkas row references invalid pair " +
                                     PairStr(a, b));
    }
    const std::optional<double> d = graph_->Get(a, b);
    if (d.has_value()) {
      rhs -= coef * *d;
    } else {
      coefs[EdgeKey(a, b).packed()] += coef;
    }
    return Status::OK();
  };

  for (const FarkasRow& row : cert.rows) {
    if (row.weight < 0.0) {
      return Status::InvalidArgument("negative farkas multiplier");
    }
    if (row.weight == 0.0) continue;
    weight_sum += row.weight;
    switch (row.kind) {
      case FarkasRow::Kind::kTriangle: {
        // x_ab - x_ac - x_cb <= 0: valid for ANY three distinct objects —
        // the verifier does not care whether the LP actually had this row.
        if (row.c == row.a || row.c == row.b || row.c >= n) {
          return Status::InvalidArgument("farkas triangle row has bad via");
        }
        MP_RETURN_IF_ERROR(add_term(row.a, row.b, row.weight));
        MP_RETURN_IF_ERROR(add_term(row.a, row.c, -row.weight));
        MP_RETURN_IF_ERROR(add_term(row.c, row.b, -row.weight));
        break;
      }
      case FarkasRow::Kind::kBoxUpper: {
        MP_RETURN_IF_ERROR(add_term(row.a, row.b, row.weight));
        if (row.c == kInvalidObject) {
          rhs += row.weight * options_.max_distance;
        } else {
          StatusOr<double> dac = KnownDistance(row.a, row.c);
          if (!dac.ok()) return dac.status();
          StatusOr<double> dcb = KnownDistance(row.c, row.b);
          if (!dcb.ok()) return dcb.status();
          rhs += row.weight * (*dac + *dcb);
        }
        break;
      }
      case FarkasRow::Kind::kBoxLower: {
        if (row.c == kInvalidObject) {
          return Status::InvalidArgument("farkas lower-box row lacks a via");
        }
        MP_RETURN_IF_ERROR(add_term(row.a, row.b, -row.weight));
        StatusOr<double> dac = KnownDistance(row.a, row.c);
        if (!dac.ok()) return dac.status();
        StatusOr<double> dcb = KnownDistance(row.c, row.b);
        if (!dcb.ok()) return dcb.status();
        rhs += row.weight * (-std::abs(*dac - *dcb));
        break;
      }
    }
  }

  // The claim row is rebuilt from the decision record — mirroring exactly
  // the constraints DftBounder ships to FeasibleWith — so a certificate
  // cannot claim a different comparison than the one decided.
  struct ClaimTerm {
    ObjectId a, b;
    double coef;
  };
  std::vector<ClaimTerm> claim;
  double claim_rhs = 0.0;
  switch (dec.verb) {
    case DecisionVerb::kLessThan:
      // true: refuted "x_ij >= t" i.e. -x_ij <= -t; false: "x_ij <= t".
      claim.push_back({dec.i, dec.j, dec.outcome ? -1.0 : 1.0});
      claim_rhs = dec.outcome ? -dec.threshold : dec.threshold;
      break;
    case DecisionVerb::kGreaterThan:
      // true: refuted "x_ij <= t"; false: refuted "x_ij >= t".
      claim.push_back({dec.i, dec.j, dec.outcome ? 1.0 : -1.0});
      claim_rhs = dec.outcome ? dec.threshold : -dec.threshold;
      break;
    case DecisionVerb::kPairLess:
      if (dec.outcome) {
        // Refuted "x_kl - x_ij <= 0".
        claim.push_back({dec.k, dec.l, 1.0});
        claim.push_back({dec.i, dec.j, -1.0});
      } else {
        // Refuted "x_ij - x_kl <= 0".
        claim.push_back({dec.i, dec.j, 1.0});
        claim.push_back({dec.k, dec.l, -1.0});
      }
      claim_rhs = 0.0;
      break;
  }
  for (const ClaimTerm& t : claim) {
    if (t.a >= n || t.b >= n || t.a == t.b) {
      return Status::InvalidArgument("decision references invalid pair " +
                                     PairStr(t.a, t.b));
    }
    if (graph_->Has(t.a, t.b)) {
      return Status::FailedPrecondition(
          "farkas certificate checked after claim pair " + PairStr(t.a, t.b) +
          " was resolved; verify certificates online");
    }
    coefs[EdgeKey(t.a, t.b).packed()] += cert.claim_weight * t.coef;
  }
  rhs += cert.claim_weight * claim_rhs;

  // Minimize the combined LHS over the distance box [0, max_distance]^V:
  // positive coefficients bottom out at x = 0, negative ones at
  // x = max_distance. Coefficients below the solver's reduced-cost dust are
  // treated as exactly zero (documented fp tolerance of the audit).
  const double coef_tol = 1e-8 * (1.0 + weight_sum);
  double min_lhs = 0.0;
  for (const auto& [key, coef] : coefs) {
    (void)key;
    if (coef < -coef_tol) min_lhs += coef * options_.max_distance;
  }
  const double slack_tol = 1e-9 * (1.0 + std::abs(rhs));
  if (min_lhs > rhs + slack_tol) return Status::OK();
  std::ostringstream os;
  os << "farkas combination is not box-infeasible: min LHS " << min_lhs
     << " vs rhs " << rhs;
  return Status::Internal(os.str());
}

}  // namespace metricprox
