#include "lp/simplex.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace metricprox {

namespace {

// Full-tableau simplex state. Column order: structural | slack | artificial.
// One extra implicit column holds the right-hand side.
class Tableau {
 public:
  Tableau(const DenseLp& lp, double eps) : eps_(eps) {
    const int m = static_cast<int>(lp.a.size());
    const int n = lp.num_vars;
    num_structural_ = n;
    num_slack_ = m;

    // Rows with negative rhs get negated and receive an artificial.
    std::vector<bool> negated(m, false);
    int num_art = 0;
    for (int i = 0; i < m; ++i) {
      if (lp.b[i] < 0) {
        negated[i] = true;
        ++num_art;
      }
    }
    num_artificial_ = num_art;
    const int cols = n + m + num_art;
    rows_.assign(m, std::vector<double>(cols + 1, 0.0));
    basis_.resize(m);

    int art_cursor = 0;
    for (int i = 0; i < m; ++i) {
      const double sign = negated[i] ? -1.0 : 1.0;
      for (int j = 0; j < n; ++j) rows_[i][j] = sign * lp.a[i][j];
      rows_[i][n + i] = sign;  // slack
      rows_[i][cols] = sign * lp.b[i];
      if (negated[i]) {
        const int art_col = n + m + art_cursor++;
        rows_[i][art_col] = 1.0;
        basis_[i] = art_col;
      } else {
        basis_[i] = n + i;
      }
    }
  }

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_cols() const { return num_structural_ + num_slack_ + num_artificial_; }
  bool IsArtificial(int col) const {
    return col >= num_structural_ + num_slack_;
  }
  double rhs(int row) const { return rows_[row].back(); }
  int basis(int row) const { return basis_[row]; }

  /// Installs `costs` (indexed by column; missing = 0) as the objective and
  /// reduces it against the current basis.
  void SetObjective(const std::vector<double>& costs) {
    objective_.assign(num_cols() + 1, 0.0);
    for (size_t c = 0; c < costs.size(); ++c) objective_[c] = costs[c];
    for (int i = 0; i < num_rows(); ++i) {
      const double factor = objective_[basis_[i]];
      if (factor != 0.0) {
        for (int c = 0; c <= num_cols(); ++c) {
          objective_[c] -= factor * rows_[i][c];
        }
      }
    }
  }

  double objective_value() const { return -objective_.back(); }

  enum class StepOutcome { kOptimal, kUnbounded, kPivoted };

  /// One simplex iteration minimizing the installed objective.
  /// `allow_artificial_entering` is false in phase 2.
  StepOutcome Step(bool use_bland, bool allow_artificial_entering) {
    // Entering column: negative reduced cost.
    int enter = -1;
    double best = -eps_;
    for (int c = 0; c < num_cols(); ++c) {
      if (!allow_artificial_entering && IsArtificial(c)) continue;
      const double r = objective_[c];
      if (r < -eps_) {
        if (use_bland) {
          enter = c;
          break;
        }
        if (r < best) {
          best = r;
          enter = c;
        }
      }
    }
    if (enter < 0) return StepOutcome::kOptimal;

    // Ratio test; ties broken by smallest basis column (Bland-compatible).
    int leave = -1;
    double best_ratio = 0.0;
    for (int i = 0; i < num_rows(); ++i) {
      const double a = rows_[i][enter];
      if (a > eps_) {
        const double ratio = rhs(i) / a;
        if (leave < 0 || ratio < best_ratio - eps_ ||
            (ratio < best_ratio + eps_ && basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
    }
    if (leave < 0) return StepOutcome::kUnbounded;
    Pivot(leave, enter);
    return StepOutcome::kPivoted;
  }

  /// After phase 1, removes artificials from the basis (pivoting them out on
  /// any eligible column, or deleting redundant rows).
  void EvictArtificialsFromBasis() {
    for (int i = num_rows() - 1; i >= 0; --i) {
      if (!IsArtificial(basis_[i])) continue;
      int enter = -1;
      for (int c = 0; c < num_structural_ + num_slack_; ++c) {
        if (std::abs(rows_[i][c]) > eps_) {
          enter = c;
          break;
        }
      }
      if (enter >= 0) {
        Pivot(i, enter);
      } else {
        // Row is 0 = 0 in the original variables: redundant constraint.
        rows_.erase(rows_.begin() + i);
        basis_.erase(basis_.begin() + i);
      }
    }
  }

  /// Extracts the structural part of the current basic solution.
  std::vector<double> StructuralSolution() const {
    std::vector<double> x(num_structural_, 0.0);
    for (int i = 0; i < num_rows(); ++i) {
      if (basis_[i] < num_structural_) x[basis_[i]] = rhs(i);
    }
    return x;
  }

  int num_structural() const { return num_structural_; }
  int num_artificial() const { return num_artificial_; }

  /// Reduced cost of the slack column of original row `i` under the current
  /// objective. At the phase-1 optimum this is the Farkas multiplier of row
  /// i: with dual ŷ = c_B B⁻¹ on the (sign-normalized) tableau rows and
  /// u_i = -sign_i ŷ_i, the termination criterion rc >= -eps gives
  ///   u_i            = rc(slack_i)      >= -eps   (nonnegativity)
  ///   (uᵀA)_j        = rc(structural_j) >= -eps   (combination >= 0)
  ///   uᵀb = -ŷᵀb̂    = -(phase-1 sum of artificials) < 0.
  /// Valid only before any row eviction — the infeasible exit happens
  /// before EvictArtificialsFromBasis, so row order still matches input.
  double SlackReducedCost(int i) const {
    return objective_[num_structural_ + i];
  }

 private:
  void Pivot(int leave_row, int enter_col) {
    std::vector<double>& prow = rows_[leave_row];
    const double pivot = prow[enter_col];
    DCHECK_GT(std::abs(pivot), eps_);
    const double inv = 1.0 / pivot;
    for (double& v : prow) v *= inv;
    prow[enter_col] = 1.0;  // exact

    for (int i = 0; i < num_rows(); ++i) {
      if (i == leave_row) continue;
      const double factor = rows_[i][enter_col];
      if (factor == 0.0) continue;
      std::vector<double>& row = rows_[i];
      for (int c = 0; c <= num_cols(); ++c) row[c] -= factor * prow[c];
      row[enter_col] = 0.0;  // exact
    }
    const double ofactor = objective_[enter_col];
    if (ofactor != 0.0) {
      for (int c = 0; c <= num_cols(); ++c) {
        objective_[c] -= ofactor * prow[c];
      }
      objective_[enter_col] = 0.0;
    }
    basis_[leave_row] = enter_col;
  }

  double eps_;
  int num_structural_ = 0;
  int num_slack_ = 0;
  int num_artificial_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<int> basis_;
  std::vector<double> objective_;
};

}  // namespace

StatusOr<LpResult> SimplexSolver::Solve(const DenseLp& lp) {
  if (lp.num_vars <= 0) {
    return Status::InvalidArgument("num_vars must be positive");
  }
  if (lp.a.size() != lp.b.size()) {
    return Status::InvalidArgument("row count mismatch between a and b");
  }
  for (const std::vector<double>& row : lp.a) {
    if (static_cast<int>(row.size()) != lp.num_vars) {
      return Status::InvalidArgument("constraint row has wrong arity");
    }
  }
  if (!lp.objective.empty() &&
      static_cast<int>(lp.objective.size()) != lp.num_vars) {
    return Status::InvalidArgument("objective has wrong arity");
  }

  Tableau tableau(lp, options_.eps);
  LpResult result;

  auto run_phase = [&](bool allow_artificial) -> StatusOr<LpResult::Kind> {
    uint64_t iters = 0;
    while (true) {
      if (result.pivots + iters > options_.max_iterations) {
        return Status::Internal("simplex iteration cap exceeded");
      }
      const bool bland = iters > options_.bland_threshold;
      const Tableau::StepOutcome out = tableau.Step(bland, allow_artificial);
      if (out == Tableau::StepOutcome::kOptimal) {
        result.pivots += iters;
        return LpResult::Kind::kOptimal;
      }
      if (out == Tableau::StepOutcome::kUnbounded) {
        result.pivots += iters;
        return LpResult::Kind::kUnbounded;
      }
      ++iters;
    }
  };

  // Phase 1: minimize the sum of artificials (skip if there are none).
  if (tableau.num_artificial() > 0) {
    std::vector<double> art_costs(tableau.num_cols(), 0.0);
    for (int c = 0; c < tableau.num_cols(); ++c) {
      if (tableau.IsArtificial(c)) art_costs[c] = 1.0;
    }
    tableau.SetObjective(art_costs);
    StatusOr<LpResult::Kind> phase1 = run_phase(/*allow_artificial=*/true);
    if (!phase1.ok()) return phase1.status();
    // Sum of nonnegative artificials cannot be unbounded below.
    CHECK(*phase1 == LpResult::Kind::kOptimal);
    if (tableau.objective_value() > 1e-7) {
      result.kind = LpResult::Kind::kInfeasible;
      result.farkas.resize(lp.a.size());
      for (size_t i = 0; i < lp.a.size(); ++i) {
        // Clamp the up-to-eps negative dust so callers get a true y >= 0.
        result.farkas[i] =
            std::max(0.0, tableau.SlackReducedCost(static_cast<int>(i)));
      }
      return result;
    }
    tableau.EvictArtificialsFromBasis();
  }

  if (lp.objective.empty()) {
    result.kind = LpResult::Kind::kOptimal;
    result.objective_value = 0.0;
    result.x = tableau.StructuralSolution();
    return result;
  }

  // Phase 2: the caller's objective.
  std::vector<double> costs(tableau.num_cols(), 0.0);
  for (int c = 0; c < lp.num_vars; ++c) costs[c] = lp.objective[c];
  tableau.SetObjective(costs);
  StatusOr<LpResult::Kind> phase2 = run_phase(/*allow_artificial=*/false);
  if (!phase2.ok()) return phase2.status();
  if (*phase2 == LpResult::Kind::kUnbounded) {
    result.kind = LpResult::Kind::kUnbounded;
    return result;
  }
  result.kind = LpResult::Kind::kOptimal;
  result.objective_value = tableau.objective_value();
  result.x = tableau.StructuralSolution();
  return result;
}

StatusOr<bool> SimplexSolver::IsFeasible(const DenseLp& lp) {
  DenseLp feasibility = lp;
  feasibility.objective.clear();
  StatusOr<LpResult> result = Solve(feasibility);
  if (!result.ok()) return result.status();
  return result->kind == LpResult::Kind::kOptimal;
}

}  // namespace metricprox
