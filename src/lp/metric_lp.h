#ifndef METRICPROX_LP_METRIC_LP_H_
#define METRICPROX_LP_METRIC_LP_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "check/certificate.h"
#include "core/status.h"
#include "core/types.h"
#include "graph/partial_graph.h"
#include "lp/simplex.h"

namespace metricprox {

/// A linear term `coefficient * dist(u, v)` of a constraint over (possibly
/// unknown) pairwise distances.
struct DistanceTerm {
  ObjectId u;
  ObjectId v;
  double coefficient;
};

/// The paper's DIRECT FEASIBILITY TEST constraint system (Section 2.2):
/// one variable per *unknown* pair, box constraints [lb, max_distance], and
/// all triangle inequalities over the n objects. Distances already resolved
/// in the partial graph are substituted as constants, which removes their
/// variables and turns one- unknown triangles into tighter box constraints
/// instead of rows.
///
/// The system is a snapshot: rebuild after the graph gains edges.
class MetricFeasibilitySystem {
 public:
  /// `max_distance` is the paper's normalization bound (distances assumed in
  /// [0, max_distance]); it must upper-bound every true distance.
  MetricFeasibilitySystem(const PartialDistanceGraph& graph,
                          double max_distance);

  /// Is the base system plus the extra constraint
  ///     sum_i terms[i].coefficient * dist(terms[i].u, terms[i].v) <= rhs
  /// feasible? Known pairs in `terms` fold into the right-hand side.
  ///
  /// When `cert` is non-null and the answer is "infeasible", fills it with
  /// a Farkas witness: every base row carries a self-describing metric-
  /// inequality descriptor (see FarkasRow), so the weighted rows plus
  /// `claim_weight` times the extra constraint can be re-derived and
  /// re-combined by a Verifier from the resolved distances alone. Passing
  /// `cert` never changes the pivot sequence or the answer — extraction
  /// only reads the final phase-1 reduced costs.
  StatusOr<bool> FeasibleWith(const std::vector<DistanceTerm>& extra_terms,
                              double rhs, FarkasCertificate* cert = nullptr);

  /// Tightest LP-implied bounds on dist(u, v): minimize / maximize the
  /// variable over the base polytope. For a known pair returns the exact
  /// value.
  StatusOr<Interval> LpBounds(ObjectId u, ObjectId v);

  int num_variables() const { return base_.num_vars; }
  int num_rows() const { return static_cast<int>(base_.a.size()); }
  uint64_t total_pivots() const { return total_pivots_; }

 private:
  // Variable index for the unknown pair, or -1 if the pair is known.
  int VarOf(ObjectId u, ObjectId v) const;

  const PartialDistanceGraph& graph_;
  double max_distance_;
  DenseLp base_;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> var_index_;
  /// Metric-inequality descriptor of each base row, parallel to base_.a
  /// (weights unused here; filled when a row enters a certificate).
  /// Maintained through presolve so Farkas multipliers map 1:1.
  std::vector<FarkasRow> row_desc_;
  SimplexSolver solver_;
  uint64_t total_pivots_ = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_LP_METRIC_LP_H_
