#ifndef METRICPROX_LP_SIMPLEX_H_
#define METRICPROX_LP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace metricprox {

/// A dense linear program in the form
///     minimize    c . x
///     subject to  A x <= b,   x >= 0.
/// Rows of `a` are the constraint coefficient vectors; `b` may be negative
/// (the origin need not be feasible). When `objective` is empty the program
/// is a pure feasibility question.
struct DenseLp {
  int num_vars = 0;
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  std::vector<double> objective;  // empty => feasibility only
};

/// Outcome of solving a DenseLp.
struct LpResult {
  enum class Kind { kOptimal, kInfeasible, kUnbounded };
  Kind kind = Kind::kInfeasible;
  /// Optimal objective value (valid when kind == kOptimal).
  double objective_value = 0.0;
  /// A feasible/optimal assignment (valid when kind == kOptimal).
  std::vector<double> x;
  /// When kind == kInfeasible: one multiplier per input row — a Farkas
  /// witness of infeasibility. y >= 0, yᵀA >= 0 componentwise (both up to
  /// the solver eps) and yᵀb = -(phase-1 optimum) < 0, so the nonnegative
  /// combination yᵀ(Ax) <= yᵀb of the rows is violated by every x >= 0.
  /// Extracted for free from the phase-1 reduced costs (see simplex.cc).
  std::vector<double> farkas;
  /// Total simplex pivots performed across both phases.
  uint64_t pivots = 0;
};

/// Two-phase primal simplex over a dense tableau.
///
/// Phase 1 introduces slack variables (A x + s = b) plus artificial
/// variables for rows with negative right-hand side and minimizes the sum of
/// artificials; phase 2 optimizes the caller's objective. Pivoting uses
/// Dantzig's rule and falls back to Bland's rule (which guarantees
/// termination) once the iteration count passes a degeneracy threshold.
///
/// This is the substrate for the paper's DIRECT FEASIBILITY TEST (the role
/// CPLEX plays in the original evaluation). Intended for the small systems
/// DFT is practical on — a few thousand rows at most.
class SimplexSolver {
 public:
  struct Options {
    double eps = 1e-9;
    /// Iterations of Dantzig pivoting before switching to Bland's rule.
    uint64_t bland_threshold = 4096;
    /// Hard iteration cap (returns Internal error if exceeded).
    uint64_t max_iterations = 2000000;
  };

  SimplexSolver() : options_(Options{}) {}
  explicit SimplexSolver(const Options& options) : options_(options) {}

  /// Solves the program. Returns a Status error only on malformed input or
  /// iteration-cap blowout; infeasibility/unboundedness are ordinary
  /// LpResult outcomes.
  StatusOr<LpResult> Solve(const DenseLp& lp);

  /// Convenience: is {A x <= b, x >= 0} non-empty?
  StatusOr<bool> IsFeasible(const DenseLp& lp);

 private:
  Options options_;
};

}  // namespace metricprox

#endif  // METRICPROX_LP_SIMPLEX_H_
