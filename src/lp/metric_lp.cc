#include "lp/metric_lp.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace metricprox {

MetricFeasibilitySystem::MetricFeasibilitySystem(
    const PartialDistanceGraph& graph, double max_distance)
    : graph_(graph), max_distance_(max_distance) {
  CHECK_GT(max_distance, 0.0);
  const ObjectId n = graph.num_objects();

  // Assign a variable to each unknown pair; track per-variable boxes.
  int next = 0;
  std::vector<EdgeKey> var_pair;
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      if (!graph.Has(i, j)) {
        var_index_.emplace(EdgeKey(i, j), next++);
        var_pair.emplace_back(i, j);
      }
    }
  }
  base_.num_vars = next;
  std::vector<double> lo(next, 0.0);
  std::vector<double> hi(next, max_distance);
  // Third vertex of the one-unknown triangle that produced each box bound
  // (kInvalidObject = untightened), so box rows are certifiable.
  std::vector<ObjectId> lo_wit(next, kInvalidObject);
  std::vector<ObjectId> hi_wit(next, kInvalidObject);

  auto value_of = [&](ObjectId a, ObjectId b) { return graph.Get(a, b); };

  // Triangle constraints over all triples. For a triple with exactly one
  // unknown edge the three inequalities collapse to a box tightening; with
  // two or three unknowns they become tableau rows.
  auto add_row = [&](std::initializer_list<std::pair<int, double>> terms,
                     double rhs, const FarkasRow& desc) {
    std::vector<double> row(base_.num_vars, 0.0);
    for (const auto& [var, coeff] : terms) row[var] += coeff;
    base_.a.push_back(std::move(row));
    base_.b.push_back(rhs);
    row_desc_.push_back(desc);
  };

  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      const std::optional<double> dij = value_of(i, j);
      for (ObjectId k = j + 1; k < n; ++k) {
        const std::optional<double> dik = value_of(i, k);
        const std::optional<double> djk = value_of(j, k);
        const int unknowns = !dij + !dik + !djk;
        if (unknowns == 0) continue;  // oracle guarantees the metric holds
        if (unknowns == 1) {
          // One unknown x, two constants p, q:  |p - q| <= x <= p + q.
          int var;
          double p, q;
          ObjectId via;
          if (!dij) {
            var = VarOf(i, j);
            p = *dik;
            q = *djk;
            via = k;
          } else if (!dik) {
            var = VarOf(i, k);
            p = *dij;
            q = *djk;
            via = j;
          } else {
            var = VarOf(j, k);
            p = *dij;
            q = *dik;
            via = i;
          }
          const double tighter_lo = std::abs(p - q);
          if (tighter_lo > lo[var]) {
            lo[var] = tighter_lo;
            lo_wit[var] = via;
          }
          const double tighter_hi = p + q;
          if (tighter_hi < hi[var]) {
            hi[var] = tighter_hi;
            hi_wit[var] = via;
          }
          continue;
        }
        // Two or three unknowns: emit the three triangle rows
        //   x_ij - x_ik - x_jk <= 0   (and rotations),
        // folding any known edge into the rhs.
        struct Side {
          std::optional<double> value;
          int var;
        };
        const Side sides[3] = {
            {dij, dij ? -1 : VarOf(i, j)},
            {dik, dik ? -1 : VarOf(i, k)},
            {djk, djk ? -1 : VarOf(j, k)},
        };
        // The certifiable identity of each row: longest side (a, b) through
        // the remaining vertex c, i.e. x_ab <= x_ac + x_cb.
        const ObjectId tri_abc[3][3] = {{i, j, k}, {i, k, j}, {j, k, i}};
        for (int longest = 0; longest < 3; ++longest) {
          std::vector<std::pair<int, double>> terms;
          double rhs = 0.0;
          for (int s = 0; s < 3; ++s) {
            const double coeff = (s == longest) ? 1.0 : -1.0;
            if (sides[s].value) {
              rhs -= coeff * *sides[s].value;
            } else {
              terms.emplace_back(sides[s].var, coeff);
            }
          }
          std::vector<double> row(base_.num_vars, 0.0);
          for (const auto& [var, coeff] : terms) row[var] += coeff;
          base_.a.push_back(std::move(row));
          base_.b.push_back(rhs);
          row_desc_.push_back(FarkasRow{FarkasRow::Kind::kTriangle,
                                        tri_abc[longest][0],
                                        tri_abc[longest][1],
                                        tri_abc[longest][2], 0.0});
        }
      }
    }
  }

  // Presolve: drop triangle rows already implied by the box bounds. A row
  // a.x <= b is redundant when even the box-extreme assignment (hi for
  // positive coefficients, lo for negative ones, with the solver's
  // implicit lo >= 0) satisfies it. Partially resolved graphs tighten many
  // boxes, so this routinely removes most of the 3*C(n,3) rows and is the
  // difference between DFT being usable and not.
  {
    size_t kept = 0;
    for (size_t row = 0; row < base_.a.size(); ++row) {
      double extreme = 0.0;
      for (int v = 0; v < base_.num_vars; ++v) {
        const double coeff = base_.a[row][v];
        if (coeff > 0.0) {
          extreme += coeff * hi[v];
        } else if (coeff < 0.0) {
          extreme += coeff * lo[v];
        }
      }
      if (extreme <= base_.b[row]) continue;  // implied by the boxes
      if (kept != row) {
        base_.a[kept] = std::move(base_.a[row]);
        base_.b[kept] = base_.b[row];
        row_desc_[kept] = row_desc_[row];
      }
      ++kept;
    }
    base_.a.resize(kept);
    base_.b.resize(kept);
    row_desc_.resize(kept);
  }

  // Box rows: x <= hi always; -x <= -lo only when the lower bound is
  // informative (x >= 0 is implicit in the solver).
  for (int v = 0; v < base_.num_vars; ++v) {
    const ObjectId a = var_pair[v].lo();
    const ObjectId b = var_pair[v].hi();
    add_row({{v, 1.0}}, hi[v],
            FarkasRow{FarkasRow::Kind::kBoxUpper, a, b, hi_wit[v], 0.0});
    if (lo[v] > 0.0) {
      add_row({{v, -1.0}}, -lo[v],
              FarkasRow{FarkasRow::Kind::kBoxLower, a, b, lo_wit[v], 0.0});
    }
  }
}

int MetricFeasibilitySystem::VarOf(ObjectId u, ObjectId v) const {
  auto it = var_index_.find(EdgeKey(u, v));
  return it == var_index_.end() ? -1 : it->second;
}

StatusOr<bool> MetricFeasibilitySystem::FeasibleWith(
    const std::vector<DistanceTerm>& extra_terms, double rhs,
    FarkasCertificate* cert) {
  DenseLp lp = base_;
  std::vector<double> row(lp.num_vars, 0.0);
  for (const DistanceTerm& term : extra_terms) {
    const int var = VarOf(term.u, term.v);
    if (var >= 0) {
      row[var] += term.coefficient;
    } else {
      const std::optional<double> d = graph_.Get(term.u, term.v);
      CHECK(d.has_value());
      rhs -= term.coefficient * *d;
    }
  }
  if (std::all_of(row.begin(), row.end(),
                  [](double c) { return c == 0.0; })) {
    // Fully constant constraint: feasibility is just sign of the rhs (the
    // base system itself is always feasible — the true metric satisfies it).
    if (rhs < 0.0 && cert != nullptr) {
      // The claim row alone is violated by constants; the certificate is
      // "multiply the claim by 1, use no base rows".
      cert->rows.clear();
      cert->claim_weight = 1.0;
    }
    return rhs >= 0.0;
  }
  lp.a.push_back(std::move(row));
  lp.b.push_back(rhs);
  StatusOr<LpResult> result = solver_.Solve(lp);
  if (!result.ok()) return result.status();
  total_pivots_ += result->pivots;
  const bool feasible = result->kind == LpResult::Kind::kOptimal;
  if (!feasible && cert != nullptr) {
    // The solver's per-row Farkas multipliers map 1:1 onto the base-row
    // descriptors plus the claim row appended last.
    CHECK_EQ(result->farkas.size(), row_desc_.size() + 1);
    cert->rows.clear();
    for (size_t r = 0; r < row_desc_.size(); ++r) {
      const double weight = result->farkas[r];
      if (weight <= 0.0) continue;
      FarkasRow with_weight = row_desc_[r];
      with_weight.weight = weight;
      cert->rows.push_back(with_weight);
    }
    cert->claim_weight = result->farkas.back();
  }
  return feasible;
}

StatusOr<Interval> MetricFeasibilitySystem::LpBounds(ObjectId u, ObjectId v) {
  const std::optional<double> known = graph_.Get(u, v);
  if (known) return Interval::Exact(*known);
  const int var = VarOf(u, v);
  CHECK_GE(var, 0);

  DenseLp lp = base_;
  lp.objective.assign(lp.num_vars, 0.0);

  lp.objective[var] = 1.0;  // minimize x
  StatusOr<LpResult> low = solver_.Solve(lp);
  if (!low.ok()) return low.status();
  CHECK(low->kind == LpResult::Kind::kOptimal)
      << "base metric system must be feasible and bounded";
  total_pivots_ += low->pivots;

  lp.objective[var] = -1.0;  // maximize x
  StatusOr<LpResult> high = solver_.Solve(lp);
  if (!high.ok()) return high.status();
  CHECK(high->kind == LpResult::Kind::kOptimal);
  total_pivots_ += high->pivots;

  const double lo = std::max(0.0, low->objective_value);
  const double hi = std::min(max_distance_, -high->objective_value);
  return Interval(std::min(lo, hi), std::max(lo, hi));
}

}  // namespace metricprox
