#include "harness/flags.h"

#include <cstdlib>

namespace metricprox {

StatusOr<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --key[=value], got: " + arg);
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values_[arg.substr(2)] = "true";
    } else {
      flags.values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  used_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  used_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  used_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  used_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Status Flags::FailOnUnused() const {
  for (const auto& [key, value] : values_) {
    if (used_.find(key) == used_.end()) {
      return Status::InvalidArgument("unknown flag: --" + key);
    }
  }
  return Status::OK();
}

}  // namespace metricprox
