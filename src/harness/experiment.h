#ifndef METRICPROX_HARNESS_EXPERIMENT_H_
#define METRICPROX_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "bounds/resolver.h"
#include "bounds/scheme.h"
#include "check/certificate.h"
#include "core/oracle.h"
#include "core/stats.h"
#include "core/status.h"
#include "obs/telemetry.h"
#include "oracle/fault_injection.h"
#include "oracle/retry.h"
#include "store/distance_store.h"

namespace metricprox {

/// One configured execution of a proximity workload under a bound scheme.
struct WorkloadConfig {
  SchemeKind scheme = SchemeKind::kNone;
  /// Resolve a LAESA-style landmark table into the graph before running
  /// (the paper's bootstrapped "Tri Scheme" rows; only meaningful for
  /// graph-reading schemes: tri/splub/adm).
  bool bootstrap = false;
  /// Landmarks for bootstrap / LAESA / TLAESA; 0 = ceil(log2(n)).
  uint32_t num_landmarks = 0;
  /// Simulated per-call oracle latency in seconds (paper Figures 7d/8a/8b).
  double oracle_cost_seconds = 0.0;
  /// Normalization bound required by DFT.
  double max_distance = 1.0;
  /// Relaxed-triangle-inequality factor (Tri Scheme only; see bounds/tri.h).
  double rho = 1.0;
  /// Whether batch verbs ship undecided remainders through one
  /// BatchDistance round-trip (true) or a per-pair Distance loop (false).
  /// Flipping this changes wall time and batch_* counters only — outputs
  /// and oracle_calls are transport-independent by construction.
  bool batch_transport = true;
  uint64_t seed = 42;
  /// Stack a FaultInjectingOracle (chaos testing) between the simulated
  /// cost layer and the resolver, configured by `fault`.
  bool inject_faults = false;
  FaultInjectionOptions fault;
  /// Stack a RetryingOracle above the (possibly faulty) oracle, configured
  /// by `retry`. Retry counters are merged into the result's stats.
  bool enable_retry = false;
  RetryOptions retry;
  /// Durable distance store shared across runs and workloads (not owned;
  /// open it with a fingerprint pinning the dataset). When set, a
  /// PersistentOracle tops the middleware stack, so every resolution is
  /// answered from the store when possible and logged to its WAL otherwise.
  /// Store counters are merged into the result's stats.
  DistanceStore* store = nullptr;
  /// Bulk-load the store's edges into the partial graph before bootstrap
  /// and scheme construction (cross-run warm start): SPLUB/Tri bounds start
  /// tight and previously paid pairs are resolver cache hits.
  bool store_warm_start = true;
  /// Run with certification on: a CertifyingBounder wraps the scheme, every
  /// bound-decided comparison emits a certificate, and an independent
  /// Verifier cross-checks it against the decision-time edge set. Outputs
  /// and oracle_calls are unchanged by construction (the shim forwards all
  /// decisions verbatim); the certification counters land in
  /// WorkloadResult::certification and the certs_* stats.
  bool audit = false;
  /// Telemetry bundle (not owned) threaded through the resolver and every
  /// middleware layer this run constructs: decision/bound/retry/store events
  /// flow to its sink, and its histograms collect oracle latency, simulated
  /// cost, batch sizes and bound gaps. Pure observation — outputs and all
  /// decision counters are unchanged. Note the caller's `store` keeps its
  /// own telemetry attachment (the store outlives this run).
  Telemetry* telemetry = nullptr;
  /// Approximate-resolution slack (ResolutionPolicy::eps). 0 keeps the run
  /// exact and byte-identical to a policy-free resolver.
  double eps = 0.0;
  /// Hard oracle-call budget (ResolutionPolicy::oracle_budget); 0 means
  /// unlimited. The policy is installed after scheme construction and
  /// bootstrap, so construction-time calls are not charged against it.
  uint64_t oracle_budget = 0;
  /// Dual-oracle mode: with weak_alpha >= 1, a deterministic seeded
  /// WeakOracle is derived from the *base* oracle (below the cost / fault /
  /// retry middleware — a weak estimate is not a strong-oracle call) and
  /// attached to the resolver as a third bound source. 0 (the default)
  /// keeps the run weak-free and byte-identical to a resolver without one.
  double weak_alpha = 0.0;
  /// Additive error floor of the weak oracle's advertised model (>= 0).
  double weak_floor = 0.0;
  /// Seed of the weak oracle's per-pair error draw; 0 uses `seed`.
  uint64_t weak_seed = 0;
  /// Simulated per-call weak-oracle cost in seconds; accrues into
  /// weak_simulated_seconds and the completion time.
  double weak_cost_seconds = 0.0;
};

/// A proximity algorithm run against a resolver; returns a checksum
/// (MST weight, total deviation, ...) used to verify scheme-independence.
using Workload = std::function<double(BoundedResolver*)>;

struct WorkloadResult {
  /// All oracle calls, including scheme construction and bootstrap.
  uint64_t total_calls = 0;
  /// Calls spent before the workload started (pivot tables / bootstrap).
  uint64_t construction_calls = 0;
  ResolverStats stats;
  /// Measured wall time of construction + workload.
  double wall_seconds = 0.0;
  /// wall_seconds plus simulated oracle latency (completion time).
  double completion_seconds = 0.0;
  /// The workload's checksum.
  double value = 0.0;
  /// Audit counters (all zero unless config.audit was set).
  CertificationStats certification;
};

/// Wires oracle -> simulated-cost wrapper -> graph -> resolver -> scheme,
/// runs the workload, and collects the counters. The oracle is shared
/// across calls only through its own state (road-row caches etc.); each run
/// gets a fresh graph, so counts are independent.
WorkloadResult RunWorkload(DistanceOracle* oracle,
                           const WorkloadConfig& config,
                           const Workload& workload);

/// Failure-aware variant: the full middleware stack is
///   oracle -> SimulatedCostOracle -> [FaultInjectingOracle] ->
///   [RetryingOracle] -> resolver,
/// and bootstrap, scheme construction and the workload all run inside
/// BoundedResolver::RunFallible — an oracle whose retries or deadline are
/// exhausted surfaces here as a non-OK Status instead of aborting the
/// process. RunWorkload is this with a CHECK on the result.
StatusOr<WorkloadResult> TryRunWorkload(DistanceOracle* oracle,
                                        const WorkloadConfig& config,
                                        const Workload& workload);

/// Outcome of an audited/unaudited A-B run of one workload (see
/// AuditWorkload). `passed()` is the property the paper's exactness theorem
/// promises and `--audit` asserts: certification changes nothing observable
/// and every bound decision is independently provable.
struct AuditReport {
  WorkloadResult unaudited;
  WorkloadResult audited;
  /// The audited run's certification counters.
  CertificationStats certification;
  /// Checksums are bit-identical (compared as raw doubles, not within
  /// a tolerance).
  bool outputs_identical = false;
  /// oracle_calls are identical — the shim decided exactly what the bare
  /// scheme decided.
  bool calls_identical = false;

  bool passed() const {
    return outputs_identical && calls_identical && certification.failed == 0;
  }
};

/// Runs the workload twice from a fresh graph — once bare, once with
/// certification on — and cross-checks the two runs. Rejects configs with a
/// distance store: the first pass would warm the store and the second would
/// replay it with zero oracle calls, voiding the comparison.
StatusOr<AuditReport> AuditWorkload(DistanceOracle* oracle,
                                    const WorkloadConfig& config,
                                    const Workload& workload);

/// Fraction of calls saved by `ours` relative to `baseline`
/// (the tables' "Save (%)" columns, as a fraction).
double SaveFraction(uint64_t ours, uint64_t baseline);

}  // namespace metricprox

#endif  // METRICPROX_HARNESS_EXPERIMENT_H_
