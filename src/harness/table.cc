#include "harness/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/logging.h"

namespace metricprox {

TablePrinter& TablePrinter::NewRow() {
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

TablePrinter& TablePrinter::AddCell(std::string value) {
  CHECK(!rows_.empty()) << "call NewRow() first";
  CHECK_LT(rows_.back().size(), columns_.size()) << "row overflow";
  rows_.back().push_back(std::move(value));
  return *this;
}

TablePrinter& TablePrinter::AddInt(int64_t value) {
  return AddCell(std::to_string(value));
}

TablePrinter& TablePrinter::AddUint(uint64_t value) {
  return AddCell(std::to_string(value));
}

TablePrinter& TablePrinter::AddDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return AddCell(buf);
}

TablePrinter& TablePrinter::AddPercent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", fraction * 100.0);
  return AddCell(buf);
}

std::string TablePrinter::ToString(const std::string& title) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const std::vector<std::string>& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << title << "\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << (c == 0 ? "| " : " | ");
      os << std::string(widths[c] - cell.size(), ' ') << cell;
    }
    os << " |\n";
  };
  emit_row(columns_);
  os << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const std::vector<std::string>& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print(const std::string& title) const {
  std::cout << ToString(title) << std::flush;
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  const auto emit_cell = [&os](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (const char c : cell) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  };
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) os << ',';
    emit_cell(columns_[c]);
  }
  os << '\n';
  for (const std::vector<std::string>& row : rows_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << ',';
      emit_cell(c < row.size() ? row[c] : "");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace metricprox
