#ifndef METRICPROX_HARNESS_TABLE_H_
#define METRICPROX_HARNESS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace metricprox {

/// Right-aligned ASCII table printer used by the bench binaries to emit
/// paper-style tables (one row per configuration, one column per scheme or
/// metric).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Starts a new row; subsequent Add* calls fill it left to right.
  TablePrinter& NewRow();

  TablePrinter& AddCell(std::string value);
  TablePrinter& AddInt(int64_t value);
  TablePrinter& AddUint(uint64_t value);
  /// Fixed-point with `precision` digits.
  TablePrinter& AddDouble(double value, int precision = 2);
  /// Percentage with two digits, e.g. "42.13".
  TablePrinter& AddPercent(double fraction);

  /// Renders with a header, a separator and every row. `title` prints above
  /// the table when non-empty.
  std::string ToString(const std::string& title = "") const;

  /// Convenience: ToString to stdout.
  void Print(const std::string& title = "") const;

  /// Comma-separated rendering (header row + data rows) for piping bench
  /// output into plotting tools. Cells containing commas or quotes are
  /// quoted per RFC 4180.
  std::string ToCsv() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace metricprox

#endif  // METRICPROX_HARNESS_TABLE_H_
