#include "harness/experiment.h"

#include "bounds/pivots.h"
#include "core/logging.h"
#include "graph/partial_graph.h"
#include "oracle/wrappers.h"

namespace metricprox {

WorkloadResult RunWorkload(DistanceOracle* oracle,
                           const WorkloadConfig& config,
                           const Workload& workload) {
  CHECK(oracle != nullptr);
  CHECK(workload != nullptr);

  SimulatedCostOracle costed(oracle, config.oracle_cost_seconds);
  PartialDistanceGraph graph(oracle->num_objects());
  BoundedResolver resolver(&costed, &graph);
  resolver.SetBatchTransport(config.batch_transport);

  WorkloadResult result;
  Stopwatch watch;

  if (config.bootstrap) {
    const uint32_t landmarks = config.num_landmarks > 0
                                   ? config.num_landmarks
                                   : DefaultNumLandmarks(oracle->num_objects());
    BootstrapWithLandmarks(&resolver, landmarks, config.seed);
  }

  SchemeOptions scheme_options;
  scheme_options.num_landmarks = config.num_landmarks;
  scheme_options.max_distance = config.max_distance;
  scheme_options.rho = config.rho;
  scheme_options.seed = config.seed;
  StatusOr<std::unique_ptr<Bounder>> bounder =
      MakeAndAttachScheme(config.scheme, &resolver, scheme_options);
  CHECK(bounder.ok()) << bounder.status();

  result.construction_calls = resolver.stats().oracle_calls;
  result.value = workload(&resolver);

  result.wall_seconds = watch.ElapsedSeconds();
  result.stats = resolver.stats();
  result.stats.simulated_oracle_seconds = costed.simulated_seconds();
  result.total_calls = result.stats.oracle_calls;
  result.completion_seconds =
      result.wall_seconds + costed.simulated_seconds();
  return result;
}

double SaveFraction(uint64_t ours, uint64_t baseline) {
  if (baseline == 0) return 0.0;
  // May be negative when "ours" spends more than the baseline; the tables
  // report that honestly rather than clamping.
  return (static_cast<double>(baseline) - static_cast<double>(ours)) /
         static_cast<double>(baseline);
}

}  // namespace metricprox
