#include "harness/experiment.h"

#include <bit>
#include <memory>
#include <optional>
#include <utility>

#include "bounds/pivots.h"
#include "bounds/weak.h"
#include "check/certify.h"
#include "core/logging.h"
#include "graph/partial_graph.h"
#include "oracle/wrappers.h"
#include "store/persistent_oracle.h"

namespace metricprox {

WorkloadResult RunWorkload(DistanceOracle* oracle,
                           const WorkloadConfig& config,
                           const Workload& workload) {
  StatusOr<WorkloadResult> result = TryRunWorkload(oracle, config, workload);
  CHECK(result.ok()) << "workload failed: " << result.status();
  return *std::move(result);
}

StatusOr<WorkloadResult> TryRunWorkload(DistanceOracle* oracle,
                                        const WorkloadConfig& config,
                                        const Workload& workload) {
  CHECK(oracle != nullptr);
  CHECK(workload != nullptr);

  // Middleware stack, bottom to top. The simulated-cost layer sits below
  // the fault injector so that only attempts reaching the "real" oracle are
  // billed; retry sits on top so it sees every injected fault.
  SimulatedCostOracle costed(oracle, config.oracle_cost_seconds);
  costed.SetTelemetry(config.telemetry);
  DistanceOracle* top = &costed;
  std::optional<FaultInjectingOracle> faulty;
  if (config.inject_faults) {
    faulty.emplace(top, config.fault);
    top = &*faulty;
  }
  std::optional<RetryingOracle> retrying;
  if (config.enable_retry) {
    retrying.emplace(top, config.retry);
    retrying->SetTelemetry(config.telemetry);
    top = &*retrying;
  }
  // The persistence layer tops the stack: a store hit skips simulated cost,
  // injected faults and retries alike — it is not an oracle call at all.
  std::optional<PersistentOracle> persistent;
  if (config.store != nullptr) {
    persistent.emplace(top, config.store);
    persistent->SetTelemetry(config.telemetry);
    top = &*persistent;
  }

  PartialDistanceGraph graph(oracle->num_objects());
  uint64_t warm_loaded = 0;
  if (config.store != nullptr && config.store_warm_start) {
    const std::vector<WeightedEdge> warm = config.store->Edges();
    graph.InsertEdges(warm);
    warm_loaded = warm.size();
  }
  BoundedResolver resolver(top, &graph);
  resolver.SetBatchTransport(config.batch_transport);
  resolver.SetTelemetry(config.telemetry);

  // Dual-oracle mode: the weak oracle is derived from the *base* oracle —
  // below the cost / fault / retry middleware — because a weak estimate is
  // cheap by definition and is never a strong-oracle call (it does not hit
  // the store, cannot fault, and is not billed oracle_cost_seconds).
  std::optional<WeakOracle> weak_oracle;
  std::optional<WeakBounder> weak_bounder;
  if (config.weak_alpha > 0.0) {
    WeakOracle::Options weak_options;
    weak_options.alpha = config.weak_alpha;
    weak_options.floor = config.weak_floor;
    weak_options.seed =
        config.weak_seed != 0 ? config.weak_seed : config.seed;
    weak_options.cost_seconds = config.weak_cost_seconds;
    weak_oracle.emplace(oracle, weak_options);
    weak_bounder.emplace(&*weak_oracle);
    resolver.SetWeakBounder(&*weak_bounder);
  }

  WorkloadResult result;
  Stopwatch watch;

  // Bootstrap, scheme construction and the workload all issue oracle calls
  // through the resolver, so all three run inside the fallible scope; a
  // permanently failed oracle unwinds to the StatusOr below no matter when
  // it dies. The bounder must outlive the scope (the resolver holds a raw
  // pointer), hence the keepalive.
  std::unique_ptr<Bounder> bounder_keepalive;
  std::optional<CertifyingResolver> certifying;
  Status scheme_status = Status::OK();
  StatusOr<double> value =
      resolver.RunFallible([&](BoundedResolver* r) -> double {
        if (config.bootstrap) {
          const uint32_t landmarks =
              config.num_landmarks > 0
                  ? config.num_landmarks
                  : DefaultNumLandmarks(oracle->num_objects());
          BootstrapWithLandmarks(r, landmarks, config.seed);
        }

        SchemeOptions scheme_options;
        scheme_options.num_landmarks = config.num_landmarks;
        scheme_options.max_distance = config.max_distance;
        scheme_options.rho = config.rho;
        scheme_options.seed = config.seed;
        StatusOr<std::unique_ptr<Bounder>> bounder =
            MakeAndAttachScheme(config.scheme, r, scheme_options);
        if (!bounder.ok()) {
          scheme_status = bounder.status();
          return 0.0;
        }
        bounder_keepalive = std::move(bounder).value();

        // Audit shim wraps whatever scheme was just attached; construction
        // (pivot tables, bootstrap) is pure resolution, so wrapping after
        // it changes nothing about what gets certified.
        if (config.audit) certifying.emplace(r, config.max_distance);

        // The approximate policy goes live only now: construction calls
        // stay exact and are not charged against the budget.
        if (config.eps > 0.0 || config.oracle_budget > 0) {
          r->SetPolicy(ResolutionPolicy{config.eps, config.oracle_budget});
        }

        result.construction_calls = r->stats().oracle_calls;
        return workload(r);
      });
  MP_RETURN_IF_ERROR(scheme_status);
  if (!value.ok()) return value.status();
  result.value = *value;

  result.wall_seconds = watch.ElapsedSeconds();
  result.stats = resolver.stats();
  if (certifying.has_value()) {
    result.certification = certifying->stats();
    result.stats.certs_emitted = result.certification.emitted;
    result.stats.certs_verified = result.certification.verified;
    result.stats.certs_failed = result.certification.failed;
    result.stats.certs_uncertified = result.certification.uncertified;
  }
  result.stats.simulated_oracle_seconds = costed.simulated_seconds();
  if (weak_oracle.has_value()) {
    result.stats.weak_simulated_seconds = weak_oracle->simulated_seconds();
  }
  if (retrying.has_value()) retrying->AccumulateStats(&result.stats);
  result.stats.store_loaded_edges = warm_loaded;
  if (persistent.has_value()) persistent->AccumulateStats(&result.stats);
  result.total_calls = result.stats.oracle_calls;
  result.completion_seconds = result.wall_seconds +
                              costed.simulated_seconds() +
                              result.stats.weak_simulated_seconds;
  return result;
}

StatusOr<AuditReport> AuditWorkload(DistanceOracle* oracle,
                                    const WorkloadConfig& config,
                                    const Workload& workload) {
  if (config.store != nullptr) {
    return Status::InvalidArgument(
        "audit cannot run with a distance store attached: the unaudited "
        "pass would warm the store and the audited pass would replay it "
        "with zero oracle calls, voiding the A-B comparison");
  }
  WorkloadConfig bare = config;
  bare.audit = false;
  WorkloadConfig with_audit = config;
  with_audit.audit = true;

  StatusOr<WorkloadResult> unaudited = TryRunWorkload(oracle, bare, workload);
  if (!unaudited.ok()) return unaudited.status();
  StatusOr<WorkloadResult> audited =
      TryRunWorkload(oracle, with_audit, workload);
  if (!audited.ok()) return audited.status();

  AuditReport report;
  report.certification = audited->certification;
  report.outputs_identical = std::bit_cast<uint64_t>(unaudited->value) ==
                             std::bit_cast<uint64_t>(audited->value);
  report.calls_identical =
      unaudited->stats.oracle_calls == audited->stats.oracle_calls;
  report.unaudited = *std::move(unaudited);
  report.audited = *std::move(audited);
  return report;
}

double SaveFraction(uint64_t ours, uint64_t baseline) {
  if (baseline == 0) return 0.0;
  // May be negative when "ours" spends more than the baseline; the tables
  // report that honestly rather than clamping.
  return (static_cast<double>(baseline) - static_cast<double>(ours)) /
         static_cast<double>(baseline);
}

}  // namespace metricprox
