#ifndef METRICPROX_HARNESS_FLAGS_H_
#define METRICPROX_HARNESS_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/status.h"

namespace metricprox {

/// Minimal `--key=value` / `--flag` command-line parser for the bench and
/// example binaries (no external dependency; unknown flags are errors so
/// typos do not silently fall back to defaults).
class Flags {
 public:
  /// Parses argv. On error (malformed token) returns InvalidArgument.
  static StatusOr<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Keys consumed so far via Get*/Has. Call to reject unknown flags.
  Status FailOnUnused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace metricprox

#endif  // METRICPROX_HARNESS_FLAGS_H_
