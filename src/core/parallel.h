#ifndef METRICPROX_CORE_PARALLEL_H_
#define METRICPROX_CORE_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <thread>
#include <vector>

namespace metricprox {

namespace internal {

/// METRICPROX_THREADS, parsed once per process. 0 means "unset / invalid":
/// fall through to the hardware. Lets CI and shared machines cap the worker
/// pool without recompiling or plumbing a flag through every layer.
inline unsigned EnvThreadCap() {
  static const unsigned cap = [] {
    const char* env = std::getenv("METRICPROX_THREADS");
    if (env == nullptr) return 0u;
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<unsigned>(parsed) : 0u;
  }();
  return cap;
}

}  // namespace internal

/// Number of worker threads the parallel oracle paths may use (>= 1).
/// Precedence: explicit `requested` > METRICPROX_THREADS > hardware.
inline unsigned ParallelWorkerCount(unsigned requested = 0) {
  if (requested > 0) return requested;
  const unsigned env = internal::EnvThreadCap();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Runs fn(begin, end) over a partition of [0, n) on up to
/// ParallelWorkerCount(requested_workers) std::threads. Falls back to one
/// inline call when the work is too small to amortize thread start-up
/// (n < 2 * grain) or only one worker is available.
///
/// `fn` must be safe to invoke concurrently on disjoint ranges; this is the
/// contract the oracle BatchDistance overrides rely on (their Distance
/// implementations are pure). Exceptions are not supported — the library
/// reports fatal conditions through CHECK, which aborts.
template <typename Fn>
void ParallelFor(size_t n, size_t grain, Fn&& fn,
                 unsigned requested_workers = 0) {
  if (n == 0) return;
  const size_t min_grain = grain > 0 ? grain : 1;
  const unsigned workers = ParallelWorkerCount(requested_workers);
  const size_t max_chunks = (n + min_grain - 1) / min_grain;
  const size_t num_chunks =
      std::min<size_t>(workers, std::max<size_t>(max_chunks, 1));
  if (num_chunks <= 1 || n < 2 * min_grain) {
    fn(size_t{0}, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_chunks - 1);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = 1; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    if (begin >= n) break;
    const size_t end = std::min(n, begin + chunk);
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  fn(size_t{0}, std::min(n, chunk));
  for (std::thread& t : threads) t.join();
}

}  // namespace metricprox

#endif  // METRICPROX_CORE_PARALLEL_H_
