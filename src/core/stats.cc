#include "core/stats.h"

#include <sstream>

namespace metricprox {

std::string ResolverStats::ToString() const {
  std::ostringstream os;
  os << "oracle_calls=" << oracle_calls
     << " comparisons=" << comparisons
     << " decided_by_bounds=" << decided_by_bounds
     << " decided_by_cache=" << decided_by_cache
     << " decided_by_oracle=" << decided_by_oracle
     << " bound_queries=" << bound_queries
     << " bounder_seconds=" << bounder_seconds
     << " oracle_seconds=" << oracle_seconds;
  if (batch_calls > 0) {
    os << " batch_calls=" << batch_calls
       << " batch_resolved_pairs=" << batch_resolved_pairs
       << " batch_oracle_seconds=" << batch_oracle_seconds;
  }
  if (simulated_oracle_seconds > 0) {
    os << " simulated_oracle_seconds=" << simulated_oracle_seconds;
  }
  return os.str();
}

}  // namespace metricprox
