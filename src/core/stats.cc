#include "core/stats.h"

#include <sstream>

namespace metricprox {

std::string ResolverStats::ToString() const {
  std::ostringstream os;
  bool first = true;
  const auto emit = [&](std::string_view name, const auto& value) {
    if (!first) os << ' ';
    first = false;
    os << name << '=' << value;
  };
#define METRICPROX_STATS_PRINT_FIELD(type, name) emit(#name, name);
  METRICPROX_RESOLVER_STATS_FIELDS(METRICPROX_STATS_PRINT_FIELD)
#undef METRICPROX_STATS_PRINT_FIELD
  return os.str();
}

std::vector<std::string_view> ResolverStatsFieldNames() {
  return {
#define METRICPROX_STATS_NAME_FIELD(type, name) #name,
      METRICPROX_RESOLVER_STATS_FIELDS(METRICPROX_STATS_NAME_FIELD)
#undef METRICPROX_STATS_NAME_FIELD
  };
}

}  // namespace metricprox
