#include "core/stats.h"

#include <sstream>

namespace metricprox {

std::string ResolverStats::ToString() const {
  std::ostringstream os;
  os << "oracle_calls=" << oracle_calls
     << " comparisons=" << comparisons
     << " decided_by_bounds=" << decided_by_bounds
     << " decided_by_cache=" << decided_by_cache
     << " decided_by_oracle=" << decided_by_oracle
     << " undecided=" << undecided
     << " bound_queries=" << bound_queries
     << " bounder_seconds=" << bounder_seconds
     << " oracle_seconds=" << oracle_seconds;
  if (batch_calls > 0) {
    os << " batch_calls=" << batch_calls
       << " batch_resolved_pairs=" << batch_resolved_pairs
       << " batch_oracle_seconds=" << batch_oracle_seconds;
  }
  if (simulated_oracle_seconds > 0) {
    os << " simulated_oracle_seconds=" << simulated_oracle_seconds;
  }
  if (oracle_retries > 0 || oracle_timeouts > 0 || oracle_failures > 0) {
    os << " oracle_retries=" << oracle_retries
       << " oracle_timeouts=" << oracle_timeouts
       << " oracle_failures=" << oracle_failures
       << " retry_backoff_seconds=" << retry_backoff_seconds;
  }
  if (store_hits > 0 || store_misses > 0 || store_loaded_edges > 0 ||
      wal_appends > 0 || compactions > 0) {
    os << " store_hits=" << store_hits
       << " store_misses=" << store_misses
       << " store_loaded_edges=" << store_loaded_edges
       << " wal_appends=" << wal_appends
       << " compactions=" << compactions;
  }
  if (certs_emitted > 0 || certs_uncertified > 0) {
    os << " certs_emitted=" << certs_emitted
       << " certs_verified=" << certs_verified
       << " certs_failed=" << certs_failed
       << " certs_uncertified=" << certs_uncertified;
  }
  return os.str();
}

}  // namespace metricprox
