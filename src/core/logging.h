#ifndef METRICPROX_CORE_LOGGING_H_
#define METRICPROX_CORE_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// Minimal CHECK/LOG macros in the spirit of glog, sufficient for a library
// that forbids exceptions: invariant violations abort with a location and a
// streamed message.
//
// Usage:
//   CHECK(ptr != nullptr) << "context " << x;
//   CHECK_LT(i, n);
//   DCHECK(...)  // compiled out in NDEBUG builds
//   LOG(INFO) << "message";

namespace metricprox {

/// Called once, after the fatal message is flushed and before abort().
/// Installed by the observability hub so a CHECK failure still dumps the
/// flight recorder; must be async-signal-unsafe-tolerant only to the
/// extent abort paths are (it runs on the failing thread, normally).
using FatalHook = void (*)();

namespace internal_logging {

inline std::atomic<FatalHook>& FatalHookSlot() {
  static std::atomic<FatalHook> slot{nullptr};
  return slot;
}

enum class Severity { kInfo, kWarning, kError, kFatal };

// Accumulates a message and emits it (aborting for kFatal) on destruction.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << "[" << Label(severity) << " " << Basename(file) << ":" << line
            << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == Severity::kFatal) {
      std::cerr.flush();
      if (FatalHook hook = FatalHookSlot().load(std::memory_order_acquire);
          hook != nullptr) {
        // Disarm first: a CHECK failing inside the hook must not recurse.
        FatalHookSlot().store(nullptr, std::memory_order_release);
        hook();
      }
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* Label(Severity s) {
    switch (s) {
      case Severity::kInfo:
        return "INFO";
      case Severity::kWarning:
        return "WARN";
      case Severity::kError:
        return "ERROR";
      case Severity::kFatal:
        return "FATAL";
    }
    return "?";
  }

  static const char* Basename(const char* file) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  Severity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a DCHECK is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

/// Replaces the process-wide fatal hook; returns the previous one.
/// nullptr uninstalls. The hook self-disarms when it fires.
inline FatalHook SetFatalLogHook(FatalHook hook) {
  return internal_logging::FatalHookSlot().exchange(hook,
                                                    std::memory_order_acq_rel);
}

}  // namespace metricprox

#define MetricproxLogInfo \
  ::metricprox::internal_logging::Severity::kInfo
#define MetricproxLogWarning \
  ::metricprox::internal_logging::Severity::kWarning
#define MetricproxLogError \
  ::metricprox::internal_logging::Severity::kError
#define MetricproxLogFatal \
  ::metricprox::internal_logging::Severity::kFatal

#define LOG(severity)                                                 \
  ::metricprox::internal_logging::LogMessage(MetricproxLog##severity, \
                                             __FILE__, __LINE__)      \
      .stream()

#define CHECK(condition)                                            \
  if (!(condition))                                                  \
  ::metricprox::internal_logging::LogMessage(MetricproxLogFatal,     \
                                             __FILE__, __LINE__)     \
          .stream()                                                  \
      << "Check failed: " #condition " "

#define METRICPROX_CHECK_OP(name, op, a, b)                          \
  if (!((a)op(b)))                                                   \
  ::metricprox::internal_logging::LogMessage(MetricproxLogFatal,     \
                                             __FILE__, __LINE__)     \
          .stream()                                                  \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b) \
      << ") "

#define CHECK_EQ(a, b) METRICPROX_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) METRICPROX_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) METRICPROX_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) METRICPROX_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) METRICPROX_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) METRICPROX_CHECK_OP(GE, >=, a, b)

#ifdef NDEBUG
#define METRICPROX_DCHECK_ACTIVE 0
#else
#define METRICPROX_DCHECK_ACTIVE 1
#endif

#if METRICPROX_DCHECK_ACTIVE
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#else
#define DCHECK(condition) \
  if (false) ::metricprox::internal_logging::NullStream()
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#endif

#endif  // METRICPROX_CORE_LOGGING_H_
