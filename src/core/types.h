#ifndef METRICPROX_CORE_TYPES_H_
#define METRICPROX_CORE_TYPES_H_

#include <cstdint>
#include <limits>
#include <utility>

#include "core/logging.h"

namespace metricprox {

/// Dense index of an object in the metric space, 0-based.
using ObjectId = uint32_t;

/// Sentinel "no object".
inline constexpr ObjectId kInvalidObject =
    std::numeric_limits<ObjectId>::max();

/// Positive infinity for distances.
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// An unordered pair of objects packed into one 64-bit key
/// (min in the high word). Used as a hash-map key for resolved edges.
class EdgeKey {
 public:
  EdgeKey() : packed_(0) {}

  EdgeKey(ObjectId a, ObjectId b) {
    DCHECK_NE(a, b) << "self-edge has no distance entry";
    if (a > b) std::swap(a, b);
    packed_ = (static_cast<uint64_t>(a) << 32) | b;
  }

  ObjectId lo() const { return static_cast<ObjectId>(packed_ >> 32); }
  ObjectId hi() const { return static_cast<ObjectId>(packed_ & 0xffffffffu); }
  uint64_t packed() const { return packed_; }

  friend bool operator==(EdgeKey x, EdgeKey y) {
    return x.packed_ == y.packed_;
  }
  friend bool operator<(EdgeKey x, EdgeKey y) { return x.packed_ < y.packed_; }

 private:
  uint64_t packed_;
};

struct EdgeKeyHash {
  size_t operator()(EdgeKey k) const {
    // splitmix64 finalizer: cheap and well-distributed for packed pairs.
    uint64_t x = k.packed();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// Closed interval [lo, hi] bounding an unknown distance.
struct Interval {
  double lo = 0.0;
  double hi = kInfDistance;

  Interval() = default;
  Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {
    DCHECK_LE(lo, hi);
  }

  /// A degenerate interval for an exactly-known distance.
  static Interval Exact(double d) { return Interval(d, d); }

  /// The uninformative interval [0, inf).
  static Interval Unbounded() { return Interval(0.0, kInfDistance); }

  bool IsExact() const { return lo == hi; }
  double width() const { return hi - lo; }
  bool Contains(double d) const { return lo <= d && d <= hi; }

  /// Intersection of two intervals known to bound the same quantity.
  /// CHECK-fails if they are disjoint (which would indicate a broken bound).
  Interval IntersectedWith(const Interval& other) const {
    Interval out;
    out.lo = lo > other.lo ? lo : other.lo;
    out.hi = hi < other.hi ? hi : other.hi;
    CHECK_LE(out.lo, out.hi) << "disjoint bound intervals";
    return out;
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// One (i, j) operand of a batch verb: an object pair whose distance or
/// comparison outcome is requested. Unlike EdgeKey it is *not* normalized —
/// callers may pass (i, j) or (j, i), and i == j is allowed (distance 0);
/// the resolver deduplicates before anything reaches the oracle.
struct IdPair {
  ObjectId i = kInvalidObject;
  ObjectId j = kInvalidObject;

  friend bool operator==(IdPair a, IdPair b) { return a.i == b.i && a.j == b.j; }
};

/// A resolved edge: unordered pair plus its exact distance.
struct WeightedEdge {
  ObjectId u = kInvalidObject;
  ObjectId v = kInvalidObject;
  double weight = 0.0;

  friend bool operator==(const WeightedEdge& a, const WeightedEdge& b) {
    return a.u == b.u && a.v == b.v && a.weight == b.weight;
  }
};

/// Alias used by the batch notification path (Bounder::OnEdgesResolved):
/// a batch of resolutions is just a span of weighted edges.
using ResolvedEdge = WeightedEdge;

}  // namespace metricprox

#endif  // METRICPROX_CORE_TYPES_H_
