#ifndef METRICPROX_CORE_SIMD_H_
#define METRICPROX_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace metricprox {
namespace simd {

/// The instruction-set tiers the bound kernels are compiled for. Tiers are
/// ordered: a higher tier strictly implies the lower ones on any x86-64
/// host (AVX2 machines all have SSE2), so clamping an override to the
/// detected tier is always safe.
enum class Tier : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

inline constexpr Tier kAllTiers[] = {Tier::kScalar, Tier::kSse2, Tier::kAvx2};

std::string_view TierName(Tier tier);
StatusOr<Tier> ParseTier(std::string_view text);  // "scalar"|"sse2"|"avx2"

/// Highest tier the running CPU supports, probed once with cpuid (via
/// __builtin_cpu_supports). Non-x86 builds report kScalar.
Tier DetectedTier();

/// The tier whose kernel table ActiveKernels() currently returns. Resolved
/// on first use: the METRICPROX_SIMD environment variable ("scalar",
/// "sse2", "avx2", or "auto", the default) clamped to DetectedTier() — a
/// request the hardware cannot honor silently degrades (with a WARN log)
/// rather than faulting, so one pinned config works across a fleet of
/// heterogeneous hosts. An unparseable value CHECK-fails.
Tier ActiveTier();

/// Re-points ActiveKernels() at `tier` (clamped to DetectedTier(); the
/// clamped tier is returned). Used by the `mpx --simd=` flag and by
/// kernel_equivalence_test to A/B the tiers inside one process. The tier
/// variable itself is atomic, so a switch concurrent with in-flight kernel
/// calls is a race-free (TSan-clean) read of either the old or the new
/// tier — but for reproducible accounting still switch only between runs.
Tier SetTier(Tier tier);

/// Distance functions the batch-distance kernel can evaluate over flat
/// row-major coordinate matrices. Mirrors the vector-oracle metrics that
/// admit a bit-exact vector form; the angular (acos-based) metric does not
/// and stays on the oracle's scalar path.
enum class DistanceKind : uint8_t {
  kL2 = 0,         // sqrt of the summed squared diffs
  kSquaredL2 = 1,  // summed squared diffs
  kL1 = 2,         // summed absolute diffs
  kLinf = 3,       // max absolute diff
};

/// The runtime-dispatched kernel table. Every entry has a scalar reference
/// implementation, and every SIMD implementation is bit-identical to it by
/// construction:
///   * pivot_scan / tri_merge only combine lanes through max/min, which are
///     associative and commutative over the non-NaN doubles that reach
///     them, so lane order cannot change the result;
///   * batch_distance vectorizes ACROSS pairs — each SIMD lane accumulates
///     one pair's sum in the same dimension order as the scalar loop — so
///     per-pair rounding is untouched (a dimension-wise vectorization would
///     reassociate the sum and drift by ulps).
/// kernel_equivalence_test pins the bit-identity for every tier the host
/// supports, and the audit matrix proves decisions/counters match end to
/// end.
struct KernelTable {
  /// LAESA/TLAESA pivot scan over two contiguous pivot-distance rows
  /// (a[p] = D(pivot p, i), b[p] = D(pivot p, j)):
  ///   lb = max_p |a[p] - b[p]|,  ub = min_p (a[p] + b[p]),
  /// clamped to lb <= ub. k == 0 yields [0, +inf).
  Interval (*pivot_scan)(const double* a, const double* b, size_t k);

  /// Tri-scheme reduction over the matched columns of a merge-intersection
  /// (di[m], dj[m] = the two known sides of triangle m):
  ///   lb = max_m max(di/rho - dj, dj/rho - di),  ub = min_m rho*(di + dj),
  /// clamped to lb <= ub. Callers pass inv_rho = 1.0/rho so every tier
  /// multiplies by the same precomputed reciprocal.
  Interval (*tri_reduce)(const double* di, const double* dj, size_t m,
                         double rho, double inv_rho);

  /// Batch point-to-point distances over a flat row-major n x dim matrix:
  ///   out[p] = kind(points[pairs[p].i * dim ..], points[pairs[p].j * dim ..]).
  /// Pair ids must be in range; i == j is allowed (distance 0).
  void (*batch_distance)(const double* points, size_t dim,
                         const IdPair* pairs, size_t count, double* out,
                         DistanceKind kind);
};

/// Kernel table of the active tier (see ActiveTier()).
const KernelTable& ActiveKernels();

/// Kernel table of a specific tier, clamped to DetectedTier(). Lets tests
/// and benches compare tiers side by side without flipping the global.
const KernelTable& KernelsForTier(Tier tier);

/// Caller-owned scratch for TriMergeBounds: the matched triangle sides of
/// the merge-intersection, kept contiguous so the reduction clamps once
/// over the whole intersection. Callers (TriBounder holds one per
/// instance) reuse the same scratch across calls so the capacity is paid
/// once; distinct resolvers/sessions own distinct scratch, so concurrent
/// bound scans never share mutable state through this layer (the previous
/// function-local `thread_local` hid per-thread buffers that outlived the
/// bounders using them and coupled every resolver on a thread).
struct TriScratch {
  std::vector<double> di;
  std::vector<double> dj;
};

/// Convenience wrapper for the Tri bounder: merge-intersects two adjacency
/// columns sorted ascending by id (the graph's CSR view) into `scratch`
/// and feeds the matched distance pairs through the active tri_reduce
/// kernel. The merge itself is branchy pointer-chasing (never worth
/// vectorizing at proximity-graph degrees); the arithmetic reduction is
/// where the SIMD tiers differ.
Interval TriMergeBounds(const ObjectId* ids_a, const double* dist_a,
                        size_t na, const ObjectId* ids_b,
                        const double* dist_b, size_t nb, double rho,
                        TriScratch* scratch);

}  // namespace simd
}  // namespace metricprox

#endif  // METRICPROX_CORE_SIMD_H_
